package gts

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// DefaultShrink is the dataset down-scaling Open applies when a spec names
// a registry dataset without an explicit "@shrink" suffix. 2^12 keeps every
// registry dataset small enough for interactive use.
const DefaultShrink = 12

// Open is the one load-or-generate path shared by the CLIs, the examples,
// and the gtsd service: it turns a graph spec into a slotted-page Graph.
//
// A spec is either
//
//	a file path         — an existing file, or any spec ending in ".gts",
//	                      read with LoadGraph; or
//	a dataset name      — "RMAT27", "Twitter", ... generated at
//	                      DefaultShrink; or
//	dataset "@" shrink  — "RMAT27@12", generated at the given power-of-two
//	                      down-scaling.
func Open(spec string) (*Graph, error) {
	if spec == "" {
		return nil, fmt.Errorf("gts: empty graph spec")
	}
	if strings.HasSuffix(spec, ".gts") {
		return LoadGraph(spec)
	}
	if _, err := os.Stat(spec); err == nil {
		return LoadGraph(spec)
	}
	dataset, shrink := spec, DefaultShrink
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("gts: bad shrink in graph spec %q (want dataset@N)", spec)
		}
		dataset, shrink = spec[:at], n
	}
	g, err := Generate(dataset, shrink)
	if err != nil {
		return nil, fmt.Errorf("gts: opening spec %q: %w", spec, err)
	}
	return g, nil
}
