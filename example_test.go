package gts_test

import (
	"fmt"
	"log"

	gts "repro"
)

// Example shows the minimal end-to-end flow: generate a dataset proxy,
// run PageRank, and read the run metrics.
func Example() {
	graph, err := gts.Generate("RMAT27", 27-10) // tiny proxy for the example
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gts.NewSystem(graph, gts.Config{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.PageRank(0.85, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("iterations:", res.Metrics.Levels)
	fmt.Println("deterministic:", res.Elapsed > 0)
	// Output:
	// iterations: 10
	// deterministic: true
}

// ExampleSystem_BFS traverses from a source and reports reachability.
func ExampleSystem_BFS() {
	graph, err := gts.Generate("RMAT27", 27-10)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gts.NewSystem(graph, gts.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.BFS(0)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, l := range res.Levels {
		if l >= 0 {
			reached++
		}
	}
	fmt.Println("reached more than half:", reached > int(graph.NumVertices())/2)
	// Output:
	// reached more than half: true
}

// ExampleConfig_strategyS shows the Strategy-S configuration the paper uses
// when attribute data exceeds one GPU's memory (RMAT31-32).
func ExampleConfig_strategyS() {
	graph, err := gts.Generate("RMAT32", 32-10)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gts.NewSystem(graph, gts.Config{
		GPUs:     2,
		Storage:  gts.SSDs,
		Devices:  2,
		Strategy: gts.StrategyS,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.CC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("components computed:", len(res.Labels) == int(graph.NumVertices()))
	fmt.Println("streamed from storage:", res.StorageBytes > 0)
	// Output:
	// components computed: true
	// streamed from storage: true
}
