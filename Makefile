# Tier-1 verification lives here so CI and humans run the same thing:
#   make ci        — build + tests + race pass + vet + fuzz smoke
GO ?= go
FUZZTIME ?= 10s

.PHONY: build test test-race vet fuzz bench bench-smoke ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency-bearing packages (the gtsd service layer, the shared
# trace recorder, the host-parallel kernel path in internal/core, and the
# root package's System/SystemPool guards) must stay clean under the race
# detector. The chaos test (fault-injected gtsd under concurrent clients)
# runs here too.
test-race:
	$(GO) test -race ./internal/core/... ./internal/service/... ./internal/trace
	$(GO) test -race -run 'System|Pool|Open|Concurrent|Chaos' .

vet:
	$(GO) vet ./...

# Short fuzz smoke over the slotted-page codec: each target gets FUZZTIME
# of coverage-guided input on top of the checked-in corpora in
# internal/slottedpage/testdata/fuzz. Go allows one -fuzz target per
# invocation, hence the three runs.
fuzz:
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzStoreRead$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzPageValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzStoreRoundTrip$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke writes the per-kernel regression record BENCH_<rev>.json at a
# tiny scale: fast enough for CI, real enough to track the wall-clock and
# allocation trajectory across revisions.
bench-smoke: build
	$(GO) run ./cmd/gtsbench -json -shrink 16 -bench-runs 3

ci: build test test-race vet fuzz bench-smoke
