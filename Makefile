# Tier-1 verification lives here so CI and humans run the same thing:
#   make ci        — build + tests + race pass over the concurrent packages
GO ?= go

.PHONY: build test test-race bench ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency-bearing packages (the gtsd service layer, the shared
# trace recorder, and the root package's System/SystemPool guards) must
# stay clean under the race detector.
test-race:
	$(GO) test -race ./internal/service ./internal/trace
	$(GO) test -race -run 'System|Pool|Open|Concurrent' .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

ci: build test test-race
