# Tier-1 verification lives here so CI and humans run the same thing:
#   make ci        — build + tests + race pass + vet + coverage gate + fuzz smoke
GO ?= go
FUZZTIME ?= 10s

.PHONY: build test test-race vet cover fuzz bench bench-smoke bench-diff ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency-bearing packages (the gtsd service layer, the shared
# trace recorder and histograms, the host-parallel kernel path in
# internal/core, the shared host page pool, the write-ahead log's group
# commit, the hardware model, and the root package's System/SystemPool
# guards) must stay clean under the race detector. The chaos tests
# (fault-injected gtsd under concurrent clients; two Systems hammering one
# BufferPool under storage faults + device OOM; trace export racing live
# span emission; randomized ingest crashes under concurrent queries in
# TestChaosIngestRecovery) run here too.
test-race:
	$(GO) test -race ./internal/bufpool/... ./internal/core/... ./internal/incremental/... ./internal/kernels/... ./internal/sched/... ./internal/service/... ./internal/trace/... ./internal/hw/... ./internal/obs/... ./internal/wal/...
	$(GO) test -race -run 'System|Pool|Open|Concurrent|Chaos|Ingest' .

vet:
	$(GO) vet ./...

# Coverage gate over the observability stack, the wave-group scheduler,
# the shared host page pool, and the kernel operator layer: the trace
# recorder and exporters, the histogram math, the service job path, the
# multi-query stream scheduler, the bufpool pin/eviction machinery, and
# the kernels package (direction-optimizing BFS and delta-stepping SSSP
# included). Floors sit a few points under the measured baseline so real
# regressions fail while small refactors don't.
cover:
	@set -e; for spec in ./internal/trace=85 ./internal/obs=90 ./internal/service=80 ./internal/sched=60 ./internal/bufpool=85 ./internal/kernels=85 ./internal/wal=85 ./internal/incremental=85; do \
		pkg=$${spec%=*}; floor=$${spec#*=}; \
		$(GO) test -coverprofile=coverage.tmp.out $$pkg >/dev/null; \
		pct=$$($(GO) tool cover -func=coverage.tmp.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		rm -f coverage.tmp.out; \
		echo "coverage $$pkg: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p+0 < f+0) }' || \
			{ echo "FAIL: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done

# Short fuzz smoke over the slotted-page codec, the host page pool, and
# the direction switch: each target gets FUZZTIME of coverage-guided input
# on top of the checked-in corpora. FuzzPoolOps decodes arbitrary bytes
# into pool op scripts and replays them against the reference-model
# oracle; FuzzDirectionSwitch builds adversarial frontier densities and
# checks push-only, pull-only, and adaptive BFS agree with the plain
# kernel; FuzzDeltaExpand replays adversarial (delete-heavy) ingest batches
# through the retained-state planners against the full-recompute oracle.
# Go allows one -fuzz target per invocation, hence the separate runs.
fuzz:
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzStoreRead$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzPageValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/slottedpage -run '^$$' -fuzz '^FuzzStoreRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bufpool -run '^$$' -fuzz '^FuzzPoolOps$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzDirectionSwitch$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/incremental -run '^$$' -fuzz '^FuzzDeltaExpand$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke writes the per-kernel regression record BENCH_<rev>.json at a
# tiny scale: fast enough for CI, real enough to track the wall-clock and
# allocation trajectory across revisions.
bench-smoke: build
	$(GO) run ./cmd/gtsbench -json -shrink 16 -bench-runs 3

# bench-diff regenerates this revision's record (via bench-smoke) and fails
# when any kernel or multi-job MTEPS figure drops more than 10% below the
# previous revision's BENCH_*.json. Intentional changes are blessed with
# GTSBENCH_BLESS=1 (diff warns instead of failing) and committing the new
# record as the next baseline.
bench-diff: bench-smoke
	$(GO) run ./cmd/gtsbench -diff

ci: build test test-race vet cover fuzz bench-diff
