// Package gts is the public API of this repository's reproduction of
// "GTS: A Fast and Scalable Graph Processing Method based on Streaming
// Topology to GPUs" (Kim et al., SIGMOD 2016).
//
// GTS stores a graph's topology in the slotted page format on (simulated)
// PCI-E SSDs, keeps only the updatable attribute vectors in GPU device
// memory, and streams topology pages to thousands of GPU cores over
// asynchronous streams. This package wires the building blocks together:
//
//	g, _ := gts.Generate("RMAT27", 12)          // scaled-down proxy dataset
//	sys, _ := gts.NewSystem(g, gts.Config{GPUs: 2})
//	res, _ := sys.PageRank(0.85, 10)
//	fmt.Println(res.Elapsed, res.Ranks[0])
//
// Algorithms execute functionally (results are exact); elapsed times come
// from a deterministic discrete-event model of the paper's testbed — see
// DESIGN.md for the substitution rationale.
package gts

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// Graph is a slotted-page topology store (see internal/slottedpage).
type Graph = slottedpage.Graph

// PageConfig fixes the slotted page layout; see DefaultPageConfig.
type PageConfig = slottedpage.Config

// PageID identifies one slotted page within a Graph.
type PageID = slottedpage.PageID

// Source supplies topology to BuildGraph (internal/csr.Graph implements it).
type Source = slottedpage.Source

// Strategy selects the multi-GPU scheme of the paper's §4.
type Strategy = core.Strategy

// Multi-GPU strategies.
const (
	// StrategyP replicates attribute data and partitions topology: fastest,
	// but WA must fit one GPU's memory (§4.1).
	StrategyP = core.StrategyP
	// StrategyS partitions attribute data and broadcasts topology: scales
	// WA across GPUs (§4.2).
	StrategyS = core.StrategyS
)

// Technique selects the micro-level parallel scheme of §6.2.
type Technique = kernels.Technique

// Micro-level techniques.
const (
	EdgeCentric   = kernels.EdgeCentric
	VertexCentric = kernels.VertexCentric
	Hybrid        = kernels.Hybrid
)

// Storage selects where the graph lives during a run.
type Storage int

// Storage placements.
const (
	// InMemory serves pages from main memory (the paper's setting for
	// graphs up to RMAT30).
	InMemory Storage = iota
	// SSDs streams pages from PCI-E SSD(s) through a main-memory buffer
	// (the paper's setting for RMAT31-32).
	SSDs
	// HDDs streams from spinning disks (Figure 9's worst case).
	HDDs
)

// Config describes the machine and engine options for a System.
// The zero value means: 1 GPU, in-memory graph, Strategy-P, 32 streams,
// edge-centric kernels, page cache in all free device memory.
type Config struct {
	GPUs     int
	Storage  Storage
	Devices  int // SSD/HDD count; default 2 when Storage != InMemory
	Strategy Strategy
	Streams  int
	Tech     Technique
	// CacheBytes: 0 = all free device memory, gts.CacheDisabled = off.
	CacheBytes int64
	// MMBufBytes bounds the main-memory page buffer for storage-backed
	// runs; 0 = 20% of the topology (the paper's setting).
	MMBufBytes int64
	// Prefetch enables sequential read-ahead from storage into the
	// main-memory buffer (an extension; see core.Options.Prefetch).
	Prefetch bool
	// ScaleFactor divides all memory capacities (device + host), used to
	// run scaled-down datasets against proportionally scaled hardware.
	// 0 or 1 means the paper's full-size machine.
	ScaleFactor int64
	// Trace records per-stream copy/kernel spans when non-nil.
	Trace *trace.Recorder
	// Faults, when non-nil, injects seeded hardware failures (PCI-E
	// transfer errors/stalls, device OOM, storage errors, page corruption)
	// into every run. The engine recovers where it can — results stay
	// byte-identical to a fault-free run — and returns an error wrapping
	// ErrHardwareFault when a fault persists beyond the retry budget.
	Faults *FaultPlan
	// HostWorkers sizes the host goroutine pool executing the functional
	// kernel work. 0 = GOMAXPROCS, 1 = serial. Results are byte-identical
	// at every setting (see core.Options.HostWorkers).
	HostWorkers int
	// DirectionOpt swaps BFS and SSSP onto the direction-optimizing
	// frontier kernels (kernels.DirBFS / kernels.DeltaSSSP): BFS switches
	// per level between sparse push and dense pull on frontier-edge
	// density, and SSSP runs delta-stepping bucketed frontiers on the
	// HostWorkers parallel path. Result values are identical to the plain
	// kernels (BFS levels exactly; SSSP distances bitwise); traversal
	// schedules, data movement, and MTEPS accounting differ. Per-level
	// directions surface in Metrics.LevelDirs and on Superstep trace spans.
	DirectionOpt bool
	// ShareStreams opts the serving layer into multi-query topology
	// sharing: concurrently admitted jobs on the same graph coalesce into
	// wave groups that stream each topology page once per superstep and
	// fan the resident bytes out to every member's kernels (see
	// System.RunShared and internal/sched). Results stay byte-identical to
	// solo runs; only virtual timing and data-movement accounting change.
	ShareStreams bool
	// PoolBytes opts storage-backed runs into the shared host page pool
	// (internal/bufpool): a single pinned, ref-counted buffer replaces the
	// per-run private MMBuf, so every System sharing the pool keeps at
	// most one host copy of each hot page. > 0 sets the pool budget in
	// bytes; 0 with a non-empty PoolPolicy uses 20% of the topology (the
	// paper's MMBuf sizing); 0 with an empty PoolPolicy keeps the classic
	// private buffer. Ignored for in-memory graphs. Results are
	// byte-identical with and without the pool.
	PoolBytes int64
	// PoolPolicy selects the pool's eviction policy: "lru" (default),
	// "clock", or "2q". Setting it (with PoolBytes == 0) is enough to opt
	// into pooling.
	PoolPolicy string
	// PoolSeed seeds policy tiebreaks (the CLOCK hand's initial position).
	// Equal seeds replay identical eviction sequences.
	PoolSeed int64
	// HostPool, when non-nil, is used directly instead of building a pool
	// from PoolBytes/PoolPolicy — the way several Systems (or a
	// SystemPool, which does this automatically) share one pool.
	HostPool *BufferPool
}

// BufferPool is the shared, pinned host page pool (see internal/bufpool).
// Build one with NewHostPool and hand it to every Config that should share
// it via Config.HostPool.
type BufferPool = bufpool.Pool

// PoolStats is a point-in-time snapshot of a BufferPool's counters.
type PoolStats = bufpool.Stats

// PoolPolicies lists the eviction policies Config.PoolPolicy accepts.
func PoolPolicies() []string { return bufpool.Policies() }

// wantsPool reports whether the Config opts into the shared host pool.
func (c Config) wantsPool() bool {
	return c.HostPool != nil || c.PoolBytes > 0 || c.PoolPolicy != ""
}

// NewHostPool builds a shared host page pool for g from cfg's
// PoolBytes/PoolPolicy/PoolSeed (PoolBytes <= 0 defaults to 20% of the
// topology, mirroring the paper's MMBuf sizing; empty PoolPolicy means
// LRU). The returned pool may back any number of Systems over g.
func NewHostPool(g *Graph, cfg Config) (*BufferPool, error) {
	bytes := cfg.PoolBytes
	if bytes <= 0 {
		bytes = g.TopologyBytes() / 5
	}
	return bufpool.New(bufpool.Config{
		PageSize: int64(g.Config().PageSize),
		Bytes:    bytes,
		Policy:   cfg.PoolPolicy,
		Seed:     cfg.PoolSeed,
	})
}

// FaultPlan is a deterministic, seedable fault-injection plan (see
// internal/fault). Equal plans replay identical fault sequences.
type FaultPlan = fault.Plan

// FaultStats counts injected faults and the recovery work a run performed.
type FaultStats = fault.Stats

// ErrHardwareFault reports that a hardware fault persisted beyond the
// engine's retry budget; the run was abandoned with no partial results.
var ErrHardwareFault = core.ErrHardwareFault

// ErrWontFit reports that a configuration's working set (WA + stream
// buffers) exceeds the machine's device memory.
var ErrWontFit = core.ErrWontFit

// CacheDisabled turns the device page cache off (Config.CacheBytes).
const CacheDisabled = core.CacheDisabled

// machineSpec realizes the Config as a hardware description.
func (c Config) machineSpec() hw.MachineSpec {
	gpus := c.GPUs
	if gpus == 0 {
		gpus = 1
	}
	devices := c.Devices
	if devices == 0 {
		devices = 2
	}
	var spec hw.MachineSpec
	switch c.Storage {
	case SSDs:
		spec = hw.Workstation(gpus, devices)
	case HDDs:
		spec = hw.WorkstationHDD(gpus, devices)
	default:
		spec = hw.Workstation(gpus, 0)
	}
	if c.ScaleFactor > 1 {
		spec = spec.Scale(c.ScaleFactor)
	}
	return spec
}

// DefaultPageConfig returns the paper's (p=2,q=2) layout with 1 MB pages.
func DefaultPageConfig() PageConfig { return slottedpage.Config22() }

// LargeGraphPageConfig returns the (p=3,q=3) layout with 64 MB pages the
// paper uses for RMAT30-32.
func LargeGraphPageConfig() PageConfig { return slottedpage.Config33() }

// ScaledPageConfig returns a (p,q) layout with a custom page size, for
// scaled-down datasets.
func ScaledPageConfig(p, q, pageSize int) PageConfig {
	return slottedpage.ScaledConfig(p, q, pageSize)
}

// BuildGraph packs a topology source into slotted pages.
func BuildGraph(src Source, cfg PageConfig) (*Graph, error) {
	return slottedpage.Build(src, cfg)
}

// Generate materializes one of the paper's datasets (RMAT26..RMAT32,
// Twitter, UK2007, YahooWeb) shrunk by 2^shrink and packs it into slotted
// pages with a proportionally scaled page size.
func Generate(dataset string, shrink int) (*Graph, error) {
	d, ok := graphgen.ByName(dataset)
	if !ok {
		return nil, fmt.Errorf("gts: unknown dataset %q (see graphgen registry)", dataset)
	}
	g, err := d.Generate(shrink)
	if err != nil {
		return nil, err
	}
	return BuildGraph(g, PageConfigFor(dataset, shrink))
}

// PageConfigFor returns the layout the paper uses for the dataset — (3,3)
// with 64 MB pages for RMAT30-32, (2,2) with 1 MB pages otherwise — with
// the page size shrunk alongside the data (floor 4 KiB).
func PageConfigFor(dataset string, shrink int) PageConfig {
	cfg := DefaultPageConfig()
	switch dataset {
	case "RMAT30", "RMAT31", "RMAT32":
		cfg = LargeGraphPageConfig()
	}
	size := cfg.PageSize >> shrink
	if size < 4096 {
		size = 4096
	}
	cfg.PageSize = size
	return cfg
}

// LoadGraph reads a slotted-page store written by (*Graph).WriteFile.
func LoadGraph(path string) (*Graph, error) { return slottedpage.ReadFile(path) }

// System binds a graph to a configured machine and runs algorithms on it.
//
// Concurrency: a System runs at most one algorithm at a time. Every
// algorithm call (BFS, PageRank, RunKernel, ...) takes an internal mutex
// for the duration of the run, so concurrent calls are safe but serialize
// — the second caller blocks until the first run finishes. The serialized
// section covers the engine build and the simulation, whose shared state
// (the Config.Trace recorder, the modeled machine) must not interleave
// between runs. Callers that need true parallelism should run each
// concurrent request on its own System over the same *Graph — a Graph is
// immutable after BuildGraph and safe to share — which is what SystemPool
// packages up.
type System struct {
	graph *Graph
	cfg   Config

	// runMu serializes algorithm runs (see the type comment).
	runMu sync.Mutex
}

// NewSystem validates the configuration against the graph. A Config that
// opts into the shared host pool (PoolBytes/PoolPolicy) without supplying
// Config.HostPool gets a private pool of its own; pass the same
// NewHostPool result to several Systems (or use a SystemPool) to share.
func NewSystem(g *Graph, cfg Config) (*System, error) {
	if cfg.Storage != InMemory && cfg.HostPool == nil && cfg.wantsPool() {
		pool, err := NewHostPool(g, cfg)
		if err != nil {
			return nil, err
		}
		cfg.HostPool = pool
	}
	// Construct an engine once to surface configuration errors eagerly.
	if _, err := core.New(cfg.machineSpec(), g, cfg.options()); err != nil {
		return nil, err
	}
	return &System{graph: g, cfg: cfg}, nil
}

// Graph returns the system's graph.
func (s *System) Graph() *Graph { return s.graph }

// HostPool returns the shared host page pool backing this System's
// storage-backed runs, or nil when the classic private buffer is in use.
func (s *System) HostPool() *BufferPool { return s.cfg.HostPool }

// SetTrace swaps the recorder subsequent runs emit spans into and returns
// the previous one, serialized against in-flight runs by the same mutex
// that guards them. It is how a pooled System is retargeted to record a
// request-scoped trace for one job and restored afterwards.
func (s *System) SetTrace(rec *trace.Recorder) *trace.Recorder {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	prev := s.cfg.Trace
	s.cfg.Trace = rec
	return prev
}

func (c Config) options() core.Options {
	return core.Options{
		Strategy:    c.Strategy,
		Streams:     c.Streams,
		Technique:   c.Tech,
		CacheBytes:  c.CacheBytes,
		MMBufBytes:  c.MMBufBytes,
		Prefetch:    c.Prefetch,
		Trace:       c.Trace,
		Faults:      c.Faults,
		HostWorkers: c.HostWorkers,
		HostPool:    c.HostPool,
	}
}

// Metrics carries the run-level measurements shared by all results.
type Metrics struct {
	// Elapsed is virtual wall-clock time on the modeled hardware.
	Elapsed sim.Time
	// Levels is traversal depth (BFS-like) or iterations (PageRank-like).
	Levels int32
	// PagesStreamed, CacheHitRate, BufferHitRate, BytesToGPU, StorageBytes
	// describe the data movement; TransferTime vs KernelTime is Table 1's
	// ratio; MTEPS is millions of traversed edges per second.
	PagesStreamed int64
	CacheHitRate  float64
	BufferHitRate float64
	BytesToGPU    int64
	StorageBytes  int64
	TransferTime  sim.Time
	KernelTime    sim.Time
	WABytes       int64
	MTEPS         float64
	// LevelPages and LevelBytes record per-level streaming volume (the
	// inputs of the paper's Eq. 2).
	LevelPages []int64
	LevelBytes []int64
	// LevelDirs records each traversal level's planned direction ("push" /
	// "pull") when Config.DirectionOpt is on; empty otherwise.
	LevelDirs []string `json:",omitempty"`
	// Faults counts injected hardware faults and recovery work (all zero
	// unless Config.Faults is set).
	Faults FaultStats
	// HostWorkers is the host worker-pool size the run executed with, and
	// HostKernelWall the real (not virtual) time spent in functional kernel
	// execution on the host. HostKernelWall is excluded from JSON: it is a
	// wall-clock observation, not part of the deterministic result.
	HostWorkers    int           `json:",omitempty"`
	HostKernelWall time.Duration `json:"-"`
	// PoolHits, PoolLoads and PoolWaits are this run's shared host-pool
	// traffic (all zero unless the System uses a BufferPool): pins served
	// from a resident page, pins that paid a storage read, and pins that
	// fell back to an uncached bypass read.
	PoolHits  int64 `json:",omitempty"`
	PoolLoads int64 `json:",omitempty"`
	PoolWaits int64 `json:",omitempty"`
}

func metricsOf(r *core.Report) Metrics {
	var dirs []string
	for _, d := range r.LevelDirs {
		dirs = append(dirs, d.String())
	}
	return Metrics{
		Elapsed:        r.Elapsed,
		Levels:         r.Levels,
		PagesStreamed:  r.PagesStreamed,
		CacheHitRate:   r.CacheHitRate,
		BufferHitRate:  r.BufferHitRate,
		BytesToGPU:     r.BytesToGPU,
		StorageBytes:   r.StorageBytes,
		TransferTime:   r.TransferTime,
		KernelTime:     r.KernelTime,
		WABytes:        r.WABytes,
		MTEPS:          r.MTEPS,
		LevelPages:     r.LevelPages,
		LevelBytes:     r.LevelBytes,
		LevelDirs:      dirs,
		Faults:         r.Faults,
		HostWorkers:    r.HostWorkers,
		HostKernelWall: r.HostKernelWall,
		PoolHits:       r.PoolHits,
		PoolLoads:      r.PoolLoads,
		PoolWaits:      r.PoolWaits,
	}
}

func (s *System) run(k kernels.Kernel, source uint64) (*core.Report, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	opts := s.cfg.options()
	opts.Source = source
	eng, err := core.New(s.cfg.machineSpec(), s.graph, opts)
	if err != nil {
		return nil, err
	}
	return eng.Run(k)
}

// BFSResult holds per-vertex traversal levels (-1 = unreachable).
type BFSResult struct {
	Metrics
	Levels []int16
}

// BFS runs breadth-first search from source. With Config.DirectionOpt it
// uses the direction-optimizing kernel; levels are identical either way.
func (s *System) BFS(source uint64) (*BFSResult, error) {
	if s.cfg.DirectionOpt {
		k := kernels.NewDirBFS(s.graph)
		rep, err := s.run(k, source)
		if err != nil {
			return nil, err
		}
		return &BFSResult{Metrics: metricsOf(rep), Levels: k.Levels(rep.State)}, nil
	}
	k := kernels.NewBFS(s.graph)
	rep, err := s.run(k, source)
	if err != nil {
		return nil, err
	}
	return &BFSResult{Metrics: metricsOf(rep), Levels: k.Levels(rep.State)}, nil
}

// PageRankResult holds the final rank vector.
type PageRankResult struct {
	Metrics
	Ranks []float32
}

// PageRank runs the given number of iterations with damping factor df.
func (s *System) PageRank(df float64, iterations int) (*PageRankResult, error) {
	k := kernels.NewPageRank(s.graph, df, iterations)
	rep, err := s.run(k, 0)
	if err != nil {
		return nil, err
	}
	return &PageRankResult{Metrics: metricsOf(rep), Ranks: k.Ranks(rep.State)}, nil
}

// SSSPResult holds distances (math.MaxFloat32 = unreachable) under the
// deterministic synthetic weights of kernels.Weight.
type SSSPResult struct {
	Metrics
	Dist []float32
}

// SSSP runs single-source shortest paths from source. With
// Config.DirectionOpt it uses the delta-stepping kernel (parallel
// gather/apply path); distances are bitwise identical either way.
func (s *System) SSSP(source uint64) (*SSSPResult, error) {
	if s.cfg.DirectionOpt {
		k := kernels.NewDeltaSSSP(s.graph)
		rep, err := s.run(k, source)
		if err != nil {
			return nil, err
		}
		return &SSSPResult{Metrics: metricsOf(rep), Dist: k.Distances(rep.State)}, nil
	}
	k := kernels.NewSSSP(s.graph)
	rep, err := s.run(k, source)
	if err != nil {
		return nil, err
	}
	return &SSSPResult{Metrics: metricsOf(rep), Dist: k.Distances(rep.State)}, nil
}

// CCResult holds weakly-connected-component labels (minimum vertex ID per
// component).
type CCResult struct {
	Metrics
	Labels []uint32
}

// CC runs connected components.
func (s *System) CC() (*CCResult, error) {
	k := kernels.NewCC(s.graph)
	rep, err := s.run(k, 0)
	if err != nil {
		return nil, err
	}
	return &CCResult{Metrics: metricsOf(rep), Labels: k.Components(rep.State)}, nil
}

// BCResult holds single-source betweenness scores.
type BCResult struct {
	Metrics
	Scores []float64
}

// BC runs single-source betweenness centrality from source.
func (s *System) BC(source uint64) (*BCResult, error) {
	k := kernels.NewBC(s.graph)
	rep, err := s.run(k, source)
	if err != nil {
		return nil, err
	}
	return &BCResult{Metrics: metricsOf(rep), Scores: k.Centrality(rep.State, source)}, nil
}

// RWRResult holds Random-Walk-with-Restart proximity scores.
type RWRResult struct {
	Metrics
	Scores []float32
}

// RWR runs Random Walk with Restart from source with restart probability c
// for the given iteration count.
func (s *System) RWR(source uint64, c float64, iterations int) (*RWRResult, error) {
	k := kernels.NewRWR(s.graph, c, iterations)
	rep, err := s.run(k, source)
	if err != nil {
		return nil, err
	}
	return &RWRResult{Metrics: metricsOf(rep), Scores: k.Scores(rep.State)}, nil
}

// DegreeResult holds per-vertex out-degrees and their histogram.
type DegreeResult struct {
	Metrics
	Degrees   []int32
	Histogram []int64
}

// DegreeDistribution computes out-degrees in one full topology scan.
func (s *System) DegreeDistribution() (*DegreeResult, error) {
	k := kernels.NewDegreeDist(s.graph)
	rep, err := s.run(k, 0)
	if err != nil {
		return nil, err
	}
	return &DegreeResult{
		Metrics:   metricsOf(rep),
		Degrees:   k.Degrees(rep.State),
		Histogram: k.Histogram(rep.State),
	}, nil
}

// KCoreResult holds K-core membership.
type KCoreResult struct {
	Metrics
	InCore []bool
}

// KCore peels the graph to its K-core (multigraph undirected degree).
func (s *System) KCore(k int) (*KCoreResult, error) {
	kern := kernels.NewKCore(s.graph, k)
	rep, err := s.run(kern, 0)
	if err != nil {
		return nil, err
	}
	return &KCoreResult{Metrics: metricsOf(rep), InCore: kern.InCore(rep.State)}, nil
}

// RadiusResult holds per-vertex eccentricity estimates and the sketch state
// needed for neighborhood-size queries.
type RadiusResult struct {
	Metrics
	// Radii are per-vertex out-eccentricity estimates: the hop at which
	// each vertex's reachable-set sketch last grew.
	Radii []int32
	// EffectiveDiameter is the hop within which 90% of vertices'
	// sketches had stabilized.
	EffectiveDiameter int32
}

// Radius estimates per-vertex radii and the graph's effective diameter with
// ANF-style Flajolet-Martin sketches (the paper's 3.3 "radius estimations").
func (s *System) Radius(sketches, maxHops int) (*RadiusResult, error) {
	k := kernels.NewRadius(s.graph, sketches, maxHops)
	rep, err := s.run(k, 0)
	if err != nil {
		return nil, err
	}
	return &RadiusResult{
		Metrics:           metricsOf(rep),
		Radii:             k.Radii(rep.State),
		EffectiveDiameter: k.EffectiveDiameter(rep.State, 0.9),
	}, nil
}

// NeighborhoodResult holds k-hop ball membership.
type NeighborhoodResult struct {
	Metrics
	// Hops[v] is the distance from the source (-1 = outside the ball).
	Hops []int16
}

// Neighborhood computes the k-hop out-neighborhood of source, streaming
// only the pages inside the ball (the paper's 3.3 neighborhood/egonet
// family).
func (s *System) Neighborhood(source uint64, hops int) (*NeighborhoodResult, error) {
	k := kernels.NewNeighborhood(s.graph, hops)
	rep, err := s.run(k, source)
	if err != nil {
		return nil, err
	}
	return &NeighborhoodResult{Metrics: metricsOf(rep), Hops: k.Members(rep.State)}, nil
}

// CrossEdgesResult holds a bipartition's crossing-edge count.
type CrossEdgesResult struct {
	Metrics
	Total int64
}

// CrossEdges counts edges whose endpoints fall on different sides of the
// given predicate, in one full scan.
func (s *System) CrossEdges(side func(v uint64) bool) (*CrossEdgesResult, error) {
	k := kernels.NewCrossEdges(s.graph, side)
	rep, err := s.run(k, 0)
	if err != nil {
		return nil, err
	}
	return &CrossEdgesResult{Metrics: metricsOf(rep), Total: k.Total(rep.State)}, nil
}

// Kernel is the user-defined algorithm interface of the paper's framework:
// a pair of page kernels (small-page and large-page variants, Appendix B)
// plus state management. Implement it to run custom algorithms on the GTS
// machinery — see examples/customkernel. The five built-in algorithms and
// the extension kernels in internal/kernels are implementations of this
// same interface.
type Kernel = kernels.Kernel

// KernelArgs carries one page-kernel invocation's inputs.
type KernelArgs = kernels.Args

// KernelResult reports one page-kernel execution.
type KernelResult = kernels.Result

// KernelState is an algorithm's attribute data (the paper's WA).
type KernelState = kernels.State

// Kernel classes (see kernels.Class): traversals stream only frontier
// pages; full scans stream everything per iteration.
const (
	BFSLike      = kernels.BFSLike
	PageRankLike = kernels.PageRankLike
)

// RunKernel executes a custom kernel on the system and returns its final
// state along with the run metrics.
func (s *System) RunKernel(k Kernel, source uint64) (KernelState, Metrics, error) {
	rep, err := s.run(k, source)
	if err != nil {
		return nil, Metrics{}, err
	}
	return rep.State, metricsOf(rep), nil
}

// KernelClass separates traversal kernels from full-scan kernels.
type KernelClass = kernels.Class

// SharedJob is one member of a RunShared wave group. A nil Faults inherits
// the system's Config.Faults; a nil Trace inherits Config.Trace.
type SharedJob struct {
	Kernel Kernel
	Source uint64
	Faults *FaultPlan
	Trace  *trace.Recorder
}

// SharedOutcome is one member's result from RunShared. Exactly one of
// State/Metrics, Err, or Declined is meaningful: Declined members did not
// fit the shared machine (their WA would not fit even after dropping the
// page cache) and should be re-run solo.
type SharedOutcome struct {
	State    KernelState
	Metrics  Metrics
	Err      error
	Declined bool
}

// SharedStats aggregates a wave group's accounting (shared page copies,
// bytes saved, amortized traffic per member); see core.SharedStats.
type SharedStats = core.SharedStats

// RunShared executes jobs as one wave group on a single simulated machine:
// every superstep, the union of the members' page demands streams to the
// GPUs once and each resident page serves every demanding member's kernel.
// Each member's final state is byte-identical to what its solo run would
// produce. admit, when non-nil, is polled at wave boundaries for late
// joiners; outcomes are indexed in admission order (initial jobs first).
// Like all algorithm entry points it serializes on the System's run mutex.
func (s *System) RunShared(jobs []SharedJob, admit func() []SharedJob) ([]SharedOutcome, SharedStats, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	eng, err := core.New(s.cfg.machineSpec(), s.graph, s.cfg.options())
	if err != nil {
		return nil, SharedStats{}, err
	}
	convert := func(in []SharedJob) []core.SharedJob {
		out := make([]core.SharedJob, len(in))
		for i, j := range in {
			out[i] = core.SharedJob{Kernel: j.Kernel, Source: j.Source, Faults: j.Faults, Trace: j.Trace}
			if out[i].Faults == nil {
				out[i].Faults = s.cfg.Faults
			}
		}
		return out
	}
	var coreAdmit func() []core.SharedJob
	if admit != nil {
		coreAdmit = func() []core.SharedJob { return convert(admit()) }
	}
	outs, stats, err := eng.RunShared(convert(jobs), coreAdmit)
	if err != nil {
		return nil, SharedStats{}, err
	}
	res := make([]SharedOutcome, len(outs))
	for i, o := range outs {
		res[i] = SharedOutcome{Err: o.Err, Declined: o.Declined}
		if o.Report != nil {
			res[i].State = o.Report.State
			res[i].Metrics = metricsOf(o.Report)
		}
	}
	return res, stats, nil
}
