package gts

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/kernels"
)

// chaosFaultPlan is the storage-error + device-OOM mix the shared-pool
// chaos tests run under. Every run draws its own injector from it, so the
// fault sequence per run is deterministic even when runs interleave.
func chaosFaultPlan() *FaultPlan {
	return &FaultPlan{
		Seed:              42,
		TransferErrorRate: 0.05,
		TransferStallRate: 0.05,
		StorageErrorRate:  0.05,
		CorruptionRate:    0.10,
		OOMKernelLaunches: []int64{10},
	}
}

// TestChaosSharedPoolConcurrent is the shared-pool torture test (run under
// -race by `make test-race`): two Systems over one graph and one
// BufferPool — one serving a 16-job RunShared wave group, the other
// hammering solo BFS/PageRank — while storage faults, page corruption,
// PCI-E errors and a device OOM fire on every run. The OS-level
// interleaving of the two simulation environments is nondeterministic, so
// the pool's eviction history differs run to run; every result must STILL
// be byte-identical to the quiet solo baselines, for each eviction policy.
func TestChaosSharedPoolConcurrent(t *testing.T) {
	g := smallGraph(t)

	// Quiet, unpooled baselines.
	base, err := NewSystem(g, Config{Storage: SSDs, Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	bfs0, err := base.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	bfs512, err := base.BFS(512)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := base.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}

	for _, policy := range PoolPolicies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			// Half the topology: small enough that eviction happens, large
			// enough that the two environments contend for frames.
			cfg := Config{
				Storage: SSDs, Devices: 1, Faults: chaosFaultPlan(),
				PoolPolicy: policy, PoolBytes: g.TopologyBytes() / 2, PoolSeed: 3,
			}
			pool, err := NewHostPool(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.HostPool = pool
			sysA, err := NewSystem(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sysB, err := NewSystem(g, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// 16-job wave group on sysA: 8 BFS (alternating sources) + 8
			// PageRank, all inheriting the system's fault plan.
			jobs := make([]SharedJob, 16)
			bfsK := kernels.NewBFS(g)
			prK := kernels.NewPageRank(g, 0.85, 5)
			for i := range jobs {
				switch {
				case i < 8 && i%2 == 0:
					jobs[i] = SharedJob{Kernel: bfsK, Source: 0}
				case i < 8:
					jobs[i] = SharedJob{Kernel: bfsK, Source: 512}
				default:
					jobs[i] = SharedJob{Kernel: prK}
				}
			}

			var wg sync.WaitGroup
			var outs []SharedOutcome
			var groupErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				outs, _, groupErr = sysA.RunShared(jobs, nil)
			}()
			var soloBFS *BFSResult
			var soloPR *PageRankResult
			var errBFS, errPR error
			wg.Add(1)
			go func() {
				defer wg.Done()
				soloBFS, errBFS = sysB.BFS(0)
				soloPR, errPR = sysB.PageRank(0.85, 5)
			}()
			wg.Wait()

			if groupErr != nil {
				t.Fatalf("RunShared: %v", groupErr)
			}
			if errBFS != nil || errPR != nil {
				t.Fatalf("solo runs: bfs=%v pr=%v", errBFS, errPR)
			}
			for i, o := range outs {
				if o.Err != nil || o.Declined {
					t.Fatalf("member %d: err=%v declined=%v", i, o.Err, o.Declined)
				}
				switch {
				case i < 8 && i%2 == 0:
					if !reflect.DeepEqual(bfsK.Levels(o.State), bfs0.Levels) {
						t.Fatalf("member %d (BFS from 0) diverged under %s pool + faults", i, policy)
					}
				case i < 8:
					if !reflect.DeepEqual(bfsK.Levels(o.State), bfs512.Levels) {
						t.Fatalf("member %d (BFS from 512) diverged under %s pool + faults", i, policy)
					}
				default:
					if !reflect.DeepEqual(prK.Ranks(o.State), pr.Ranks) {
						t.Fatalf("member %d (PageRank) diverged under %s pool + faults", i, policy)
					}
				}
			}
			if !reflect.DeepEqual(soloBFS.Levels, bfs0.Levels) {
				t.Fatalf("concurrent solo BFS diverged under %s pool + faults", policy)
			}
			if !reflect.DeepEqual(soloPR.Ranks, pr.Ranks) {
				t.Fatalf("concurrent solo PageRank diverged under %s pool + faults", policy)
			}

			if err := pool.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := pool.Stats()
			if st.Pinned != 0 {
				t.Fatalf("chaos runs finished with %d pages still pinned", st.Pinned)
			}
			if st.Loads == 0 {
				t.Fatal("no pool loads recorded — the runs bypassed the pool entirely")
			}
		})
	}
}

// TestChaosWarmPoolNoDoubleBuffer pins the acceptance criterion that two
// Systems sharing one pool keep at most one host copy per hot page: after
// one System warms a whole-topology pool, the other System's run loads
// NOTHING from storage — every page pin is a hit on the copy the first
// System already paid for — even with the fault plan armed.
func TestChaosWarmPoolNoDoubleBuffer(t *testing.T) {
	g := smallGraph(t)
	cfg := Config{
		Storage: SSDs, Devices: 1, Faults: chaosFaultPlan(),
		PoolPolicy: "lru", PoolBytes: g.TopologyBytes(),
	}
	pool, err := NewHostPool(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HostPool = pool
	sysA, err := NewSystem(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSystem(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := sysA.PageRank(0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PoolLoads == 0 {
		t.Fatal("cold run loaded nothing through the pool")
	}
	warm, err := sysB.PageRank(0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PoolLoads != 0 {
		t.Fatalf("second System re-read %d pages from storage: the pool double-buffered", warm.PoolLoads)
	}
	if warm.PoolHits == 0 {
		t.Fatal("warm run reports zero pool hits")
	}
	if warm.StorageBytes != 0 {
		t.Fatalf("warm run read %d storage bytes, want 0", warm.StorageBytes)
	}
	if !reflect.DeepEqual(warm.Ranks, cold.Ranks) {
		t.Fatal("warm run diverged from cold run")
	}
}
