package fault

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestNilInjectorIsInert: a nil *Injector must be safe to consult from every
// hardware path (the trace.Recorder idiom).
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if stall, err := in.Transfer(); stall != 0 || err != nil {
		t.Fatalf("nil Transfer = (%v, %v), want (0, nil)", stall, err)
	}
	if in.KernelOOM() {
		t.Fatal("nil KernelOOM = true")
	}
	if corrupt, err := in.StorageRead(); corrupt || err != nil {
		t.Fatalf("nil StorageRead = (%v, %v), want (false, nil)", corrupt, err)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
}

func TestInertPlanYieldsNilInjector(t *testing.T) {
	if in := NewInjector(nil); in != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
	if in := NewInjector(&Plan{Seed: 7}); in != nil {
		t.Fatal("NewInjector(zero-rate plan) != nil")
	}
	if in := NewInjector(&Plan{TransferErrorRate: 0.5}); in == nil {
		t.Fatal("NewInjector(active plan) == nil")
	}
}

func TestPlanValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	good := Plan{Seed: 1, TransferErrorRate: 0.5, StallDelay: sim.Millisecond, OOMKernelLaunches: []int64{1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan: %v", err)
	}
	for _, bad := range []Plan{
		{TransferErrorRate: -0.1},
		{TransferStallRate: 1.5},
		{StorageErrorRate: 2},
		{CorruptionRate: -1},
		{StallDelay: -sim.Microsecond},
		{OOMKernelLaunches: []int64{0}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("plan %+v validated", bad)
		}
	}
}

// TestReplayDeterminism: equal plans must draw identical fault sequences —
// the property that makes every injected failure reproducible.
func TestReplayDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, TransferErrorRate: 0.3, TransferStallRate: 0.2,
		StorageErrorRate: 0.25, CorruptionRate: 0.25, OOMKernelLaunches: []int64{5, 17}}
	a, b := NewInjector(&plan), NewInjector(&plan)
	for i := 0; i < 1000; i++ {
		as, ae := a.Transfer()
		bs, be := b.Transfer()
		if as != bs || (ae == nil) != (be == nil) {
			t.Fatalf("Transfer diverged at draw %d: (%v,%v) vs (%v,%v)", i, as, ae, bs, be)
		}
		ac, aerr := a.StorageRead()
		bc, berr := b.StorageRead()
		if ac != bc || (aerr == nil) != (berr == nil) {
			t.Fatalf("StorageRead diverged at draw %d", i)
		}
		if a.KernelOOM() != b.KernelOOM() {
			t.Fatalf("KernelOOM diverged at draw %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Injected() == 0 {
		t.Fatal("no faults injected over 1000 draws at these rates")
	}
}

// TestIndependentStreams: enabling stalls must not perturb the error draw
// sequence — each kind owns its PRNG stream.
func TestIndependentStreams(t *testing.T) {
	base := Plan{Seed: 9, TransferErrorRate: 0.3}
	withStalls := base
	withStalls.TransferStallRate = 0.5
	a, b := NewInjector(&base), NewInjector(&withStalls)
	for i := 0; i < 500; i++ {
		_, ae := a.Transfer()
		_, be := b.Transfer()
		if (ae == nil) != (be == nil) {
			t.Fatalf("error stream perturbed by stall stream at draw %d", i)
		}
	}
}

// TestKernelOOMOrdinals: OOM fires at exactly the listed 1-based launch
// ordinals, counting every attempt.
func TestKernelOOMOrdinals(t *testing.T) {
	in := NewInjector(&Plan{OOMKernelLaunches: []int64{3, 5}})
	want := map[int]bool{3: true, 5: true}
	for i := 1; i <= 10; i++ {
		if got := in.KernelOOM(); got != want[i] {
			t.Errorf("launch %d: OOM = %v, want %v", i, got, want[i])
		}
	}
	if n := in.Stats().DeviceOOMs; n != 2 {
		t.Fatalf("DeviceOOMs = %d, want 2", n)
	}
}

// TestMaxPerKindCapsBursts: rate 1 with a cap injects exactly cap faults,
// then lets everything through — how tests bound persistent faults.
func TestMaxPerKindCapsBursts(t *testing.T) {
	in := NewInjector(&Plan{TransferErrorRate: 1, MaxPerKind: 4})
	var failures int
	for i := 0; i < 100; i++ {
		if _, err := in.Transfer(); err != nil {
			if !errors.Is(err, ErrTransfer) {
				t.Fatalf("wrong error type: %v", err)
			}
			failures++
		}
	}
	if failures != 4 {
		t.Fatalf("injected %d transfer errors, want 4 (capped)", failures)
	}
}

func TestStatsAddAndInjected(t *testing.T) {
	s := Stats{TransferErrors: 1, Stalls: 2, DeviceOOMs: 3, StorageErrors: 4, Corruptions: 5, Retries: 6}
	s.Add(Stats{TransferErrors: 10, Recoveries: 1, Degradations: 2})
	if s.TransferErrors != 11 || s.Recoveries != 1 || s.Degradations != 2 {
		t.Fatalf("Add: %+v", s)
	}
	if got := s.Injected(); got != 11+2+3+4+5 {
		t.Fatalf("Injected = %d", got)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "fault.Kind(0)" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
