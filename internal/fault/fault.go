// Package fault is a deterministic, seedable fault-injection layer for the
// hardware model and the engine above it. A Plan describes which failure
// modes fire and how often; an Injector draws concrete faults from the plan
// with one independent PRNG stream per fault kind, so a given (plan, run)
// pair always injects the same faults at the same points — every failure is
// replayable bit-for-bit, which is what makes the recovery paths testable.
//
// The injection points mirror what real GTS deployments see at scale:
// PCI-E transfer errors and stalls in the copy engines, device-memory
// allocation failures at kernel launch, storage read errors, and slotted-
// page corruption (detected upstream by checksum, see slottedpage).
// internal/hw consults the injector inside its copy/read/launch paths;
// internal/core owns the recovery policy (bounded retry with backoff,
// page re-read, cache spill) and accounts it in Stats.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Kind enumerates the injectable failure modes.
type Kind int

// Fault kinds.
const (
	// TransferError fails a PCI-E copy (H2D, D2H, or peer).
	TransferError Kind = iota
	// TransferStall delays a PCI-E copy by Plan.StallDelay without failing it.
	TransferStall
	// DeviceOOM fails a device-memory allocation at kernel launch.
	DeviceOOM
	// StorageError fails an SSD/HDD page read.
	StorageError
	// PageCorruption silently corrupts the data returned by a storage read;
	// the engine detects it by page checksum and re-reads.
	PageCorruption
	// NumKinds is the number of fault kinds.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TransferError:
		return "transfer-error"
	case TransferStall:
		return "transfer-stall"
	case DeviceOOM:
		return "device-oom"
	case StorageError:
		return "storage-error"
	case PageCorruption:
		return "page-corruption"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Typed injected-fault errors. Layers above wrap these; callers classify
// with errors.Is.
var (
	// ErrTransfer is the error an injected PCI-E transfer failure carries.
	ErrTransfer = errors.New("fault: injected PCI-E transfer error")
	// ErrStorage is the error an injected storage read failure carries.
	ErrStorage = errors.New("fault: injected storage read error")
)

// Plan is a declarative, seedable description of which faults to inject.
// The zero value injects nothing. Rates are per-operation probabilities in
// [0,1]; a rate of 1 makes the fault persistent (every retry fails too),
// which is how tests exercise the engine's give-up path.
type Plan struct {
	// Seed keys the per-kind PRNG streams. Two injectors built from equal
	// plans draw identical fault sequences.
	Seed int64 `json:"seed"`
	// TransferErrorRate is the probability that a PCI-E copy fails.
	TransferErrorRate float64 `json:"transfer_error_rate,omitempty"`
	// TransferStallRate is the probability that a PCI-E copy stalls for
	// StallDelay before completing normally.
	TransferStallRate float64 `json:"transfer_stall_rate,omitempty"`
	// StallDelay is the extra latency of a stalled copy (default 250 µs of
	// virtual time, roughly a link retrain).
	StallDelay sim.Time `json:"stall_delay,omitempty"`
	// StorageErrorRate is the probability that an SSD/HDD read fails.
	StorageErrorRate float64 `json:"storage_error_rate,omitempty"`
	// CorruptionRate is the probability that a storage read returns
	// checksum-corrupt page data.
	CorruptionRate float64 `json:"corruption_rate,omitempty"`
	// OOMKernelLaunches lists 1-based kernel-launch ordinals at which the
	// device allocator reports out-of-memory (e.g. []int64{10} fails the
	// tenth launch). Ordinals are counted per run across all GPUs.
	OOMKernelLaunches []int64 `json:"oom_kernel_launches,omitempty"`
	// MaxPerKind caps injections per kind; 0 means unlimited. A cap turns
	// a high rate into a bounded burst, letting recovery finish the run.
	MaxPerKind int64 `json:"max_per_kind,omitempty"`
}

// Validate reports whether the plan's parameters are in range.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transfer_error_rate", p.TransferErrorRate},
		{"transfer_stall_rate", p.TransferStallRate},
		{"storage_error_rate", p.StorageErrorRate},
		{"corruption_rate", p.CorruptionRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v out of range [0,1]", r.name, r.v)
		}
	}
	if p.StallDelay < 0 {
		return fmt.Errorf("fault: stall delay %v negative", p.StallDelay)
	}
	for _, n := range p.OOMKernelLaunches {
		if n < 1 {
			return fmt.Errorf("fault: OOM kernel launch ordinal %d must be >= 1", n)
		}
	}
	return nil
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.TransferErrorRate > 0 || p.TransferStallRate > 0 ||
		p.StorageErrorRate > 0 || p.CorruptionRate > 0 || len(p.OOMKernelLaunches) > 0)
}

// stallDelay returns the configured or default stall duration.
func (p *Plan) stallDelay() sim.Time {
	if p.StallDelay > 0 {
		return p.StallDelay
	}
	return 250 * sim.Microsecond
}

// Stats counts injected faults and the engine's recovery activity. The
// injection fields are filled by the Injector; the recovery fields
// (Retries, Recoveries, Degradations) by the engine that owns the policy.
type Stats struct {
	// TransferErrors .. Corruptions count injections per kind.
	TransferErrors int64 `json:"transfer_errors"`
	Stalls         int64 `json:"transfer_stalls"`
	DeviceOOMs     int64 `json:"device_ooms"`
	StorageErrors  int64 `json:"storage_errors"`
	Corruptions    int64 `json:"page_corruptions"`
	// Retries counts recovery re-attempts (transfer retries, page re-reads,
	// kernel relaunches).
	Retries int64 `json:"retries"`
	// Recoveries counts operations that eventually succeeded after at
	// least one injected fault.
	Recoveries int64 `json:"recoveries"`
	// Degradations counts graceful-degradation events (e.g. a device page
	// cache spilled back to the streaming path after an injected OOM).
	Degradations int64 `json:"degradations"`
}

// Injected sums the injection counters (not the recovery ones).
func (s Stats) Injected() int64 {
	return s.TransferErrors + s.Stalls + s.DeviceOOMs + s.StorageErrors + s.Corruptions
}

// Add accumulates other into s, for service-level aggregation.
func (s *Stats) Add(other Stats) {
	s.TransferErrors += other.TransferErrors
	s.Stalls += other.Stalls
	s.DeviceOOMs += other.DeviceOOMs
	s.StorageErrors += other.StorageErrors
	s.Corruptions += other.Corruptions
	s.Retries += other.Retries
	s.Recoveries += other.Recoveries
	s.Degradations += other.Degradations
}

// Injector draws concrete faults from a Plan. A nil *Injector is valid and
// injects nothing, so hardware models can consult it unconditionally (the
// trace.Recorder idiom). An Injector belongs to one engine run: the sim
// scheduler serializes all draws, and per-run ownership keeps pooled
// concurrent runs independent and individually replayable.
type Injector struct {
	plan  Plan
	rngs  [NumKinds]*rand.Rand
	stats Stats
	// launches counts kernel launches for OOMKernelLaunches matching.
	launches int64
	oomAt    map[int64]bool
}

// NewInjector builds an injector for plan. A nil or inert plan yields a nil
// injector. Each fault kind gets an independent PRNG stream keyed off
// (seed, kind), so one kind's draw sequence never perturbs another's.
func NewInjector(plan *Plan) *Injector {
	if !plan.Enabled() {
		return nil
	}
	in := &Injector{plan: *plan, oomAt: make(map[int64]bool, len(plan.OOMKernelLaunches))}
	for k := range in.rngs {
		in.rngs[k] = rand.New(rand.NewSource(plan.Seed*int64(NumKinds) + int64(k) + 1))
	}
	for _, n := range plan.OOMKernelLaunches {
		in.oomAt[n] = true
	}
	return in
}

// capped reports whether kind has hit the per-kind injection cap.
func (in *Injector) capped(k Kind) bool {
	return in.plan.MaxPerKind > 0 && in.count(k) >= in.plan.MaxPerKind
}

func (in *Injector) count(k Kind) int64 {
	switch k {
	case TransferError:
		return in.stats.TransferErrors
	case TransferStall:
		return in.stats.Stalls
	case DeviceOOM:
		return in.stats.DeviceOOMs
	case StorageError:
		return in.stats.StorageErrors
	default:
		return in.stats.Corruptions
	}
}

// draw samples kind's stream against rate, respecting the cap.
func (in *Injector) draw(k Kind, rate float64) bool {
	if in == nil || rate <= 0 || in.capped(k) {
		return false
	}
	return in.rngs[k].Float64() < rate
}

// Transfer decides one PCI-E copy's fate: a positive stall delay, an
// injected error, or neither. A copy can stall and then fail; both streams
// advance independently so error timing does not depend on stall timing.
func (in *Injector) Transfer() (stall sim.Time, err error) {
	if in == nil {
		return 0, nil
	}
	if in.draw(TransferStall, in.plan.TransferStallRate) {
		in.stats.Stalls++
		stall = in.plan.stallDelay()
	}
	if in.draw(TransferError, in.plan.TransferErrorRate) {
		in.stats.TransferErrors++
		err = ErrTransfer
	}
	return stall, err
}

// KernelOOM reports whether this kernel launch's device allocation fails.
// Every call advances the per-run launch ordinal, including retries — so a
// plan targeting ordinal n fails exactly one launch attempt.
func (in *Injector) KernelOOM() bool {
	if in == nil {
		return false
	}
	in.launches++
	if in.oomAt[in.launches] && !in.capped(DeviceOOM) {
		in.stats.DeviceOOMs++
		return true
	}
	return false
}

// StorageRead decides one storage read's fate: an injected error, or
// success with possibly corrupt data.
func (in *Injector) StorageRead() (corrupt bool, err error) {
	if in == nil {
		return false, nil
	}
	if in.draw(StorageError, in.plan.StorageErrorRate) {
		in.stats.StorageErrors++
		return false, ErrStorage
	}
	if in.draw(PageCorruption, in.plan.CorruptionRate) {
		in.stats.Corruptions++
		return true, nil
	}
	return false, nil
}

// Stats snapshots the injection counters. Recovery counters are zero; the
// engine that owns the recovery policy merges its own.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}
