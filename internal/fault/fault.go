// Package fault is a deterministic, seedable fault-injection layer for the
// hardware model and the engine above it. A Plan describes which failure
// modes fire and how often; an Injector draws concrete faults from the plan
// with one independent PRNG stream per fault kind, so a given (plan, run)
// pair always injects the same faults at the same points — every failure is
// replayable bit-for-bit, which is what makes the recovery paths testable.
//
// The injection points mirror what real GTS deployments see at scale:
// PCI-E transfer errors and stalls in the copy engines, device-memory
// allocation failures at kernel launch, storage read errors, and slotted-
// page corruption (detected upstream by checksum, see slottedpage).
// internal/hw consults the injector inside its copy/read/launch paths;
// internal/core owns the recovery policy (bounded retry with backoff,
// page re-read, cache spill) and accounts it in Stats.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Kind enumerates the injectable failure modes.
type Kind int

// Fault kinds.
const (
	// TransferError fails a PCI-E copy (H2D, D2H, or peer).
	TransferError Kind = iota
	// TransferStall delays a PCI-E copy by Plan.StallDelay without failing it.
	TransferStall
	// DeviceOOM fails a device-memory allocation at kernel launch.
	DeviceOOM
	// StorageError fails an SSD/HDD page read.
	StorageError
	// PageCorruption silently corrupts the data returned by a storage read;
	// the engine detects it by page checksum and re-reads.
	PageCorruption
	// CrashPoint kills the ingest process at a chosen point: between two
	// WAL appends, during an fsync, or during the in-memory page swap. The
	// ingestor goes dead; recovery happens by reopening from durable state.
	CrashPoint
	// TornWrite is a crash mid-record: only a strict prefix of a WAL
	// record reaches the file before the process dies.
	TornWrite
	// NumKinds is the number of fault kinds.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TransferError:
		return "transfer-error"
	case TransferStall:
		return "transfer-stall"
	case DeviceOOM:
		return "device-oom"
	case StorageError:
		return "storage-error"
	case PageCorruption:
		return "page-corruption"
	case CrashPoint:
		return "crash-point"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Typed injected-fault errors. Layers above wrap these; callers classify
// with errors.Is.
var (
	// ErrTransfer is the error an injected PCI-E transfer failure carries.
	ErrTransfer = errors.New("fault: injected PCI-E transfer error")
	// ErrStorage is the error an injected storage read failure carries.
	ErrStorage = errors.New("fault: injected storage read error")
	// ErrCrash is the error an injected crash point carries. A component
	// that observes it must treat itself as killed: no further durable
	// writes, recovery only by reopening from what already reached disk.
	ErrCrash = errors.New("fault: injected crash point")
)

// Plan is a declarative, seedable description of which faults to inject.
// The zero value injects nothing. Rates are per-operation probabilities in
// [0,1]; a rate of 1 makes the fault persistent (every retry fails too),
// which is how tests exercise the engine's give-up path.
type Plan struct {
	// Seed keys the per-kind PRNG streams. Two injectors built from equal
	// plans draw identical fault sequences.
	Seed int64 `json:"seed"`
	// TransferErrorRate is the probability that a PCI-E copy fails.
	TransferErrorRate float64 `json:"transfer_error_rate,omitempty"`
	// TransferStallRate is the probability that a PCI-E copy stalls for
	// StallDelay before completing normally.
	TransferStallRate float64 `json:"transfer_stall_rate,omitempty"`
	// StallDelay is the extra latency of a stalled copy (default 250 µs of
	// virtual time, roughly a link retrain).
	StallDelay sim.Time `json:"stall_delay,omitempty"`
	// StorageErrorRate is the probability that an SSD/HDD read fails.
	StorageErrorRate float64 `json:"storage_error_rate,omitempty"`
	// CorruptionRate is the probability that a storage read returns
	// checksum-corrupt page data.
	CorruptionRate float64 `json:"corruption_rate,omitempty"`
	// OOMKernelLaunches lists 1-based kernel-launch ordinals at which the
	// device allocator reports out-of-memory (e.g. []int64{10} fails the
	// tenth launch). Ordinals are counted per run across all GPUs.
	OOMKernelLaunches []int64 `json:"oom_kernel_launches,omitempty"`
	// MaxPerKind caps injections per kind; 0 means unlimited. A cap turns
	// a high rate into a bounded burst, letting recovery finish the run.
	MaxPerKind int64 `json:"max_per_kind,omitempty"`
	// WALCrashAppends lists 1-based WAL append ordinals at which the
	// ingest process dies cleanly BEFORE the record reaches the file — a
	// crash between two appends. Ordinals count per injector.
	WALCrashAppends []int64 `json:"wal_crash_appends,omitempty"`
	// WALTornAppends lists 1-based WAL append ordinals at which the
	// process dies mid-record: a strict prefix of the frame (chosen from
	// the TornWrite PRNG stream) reaches the file, then the log goes dead.
	WALTornAppends []int64 `json:"wal_torn_appends,omitempty"`
	// WALCrashSyncs lists 1-based WAL fsync ordinals at which the process
	// dies during the fsync: the record bytes are durable but the append
	// is never acknowledged. Recovery replays such a batch — it is on
	// disk and intact, exactly the ambiguity a real crash-during-fsync
	// leaves.
	WALCrashSyncs []int64 `json:"wal_crash_syncs,omitempty"`
	// CrashApplies lists 1-based batch-apply ordinals at which the
	// process dies during the in-memory page swap, after the WAL record
	// is durable. Recovery must replay the batch from the log.
	CrashApplies []int64 `json:"crash_applies,omitempty"`
}

// Validate reports whether the plan's parameters are in range.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transfer_error_rate", p.TransferErrorRate},
		{"transfer_stall_rate", p.TransferStallRate},
		{"storage_error_rate", p.StorageErrorRate},
		{"corruption_rate", p.CorruptionRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v out of range [0,1]", r.name, r.v)
		}
	}
	if p.StallDelay < 0 {
		return fmt.Errorf("fault: stall delay %v negative", p.StallDelay)
	}
	for _, n := range p.OOMKernelLaunches {
		if n < 1 {
			return fmt.Errorf("fault: OOM kernel launch ordinal %d must be >= 1", n)
		}
	}
	for _, ords := range [][]int64{p.WALCrashAppends, p.WALTornAppends, p.WALCrashSyncs, p.CrashApplies} {
		for _, n := range ords {
			if n < 1 {
				return fmt.Errorf("fault: crash-point ordinal %d must be >= 1", n)
			}
		}
	}
	return nil
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.TransferErrorRate > 0 || p.TransferStallRate > 0 ||
		p.StorageErrorRate > 0 || p.CorruptionRate > 0 || len(p.OOMKernelLaunches) > 0 ||
		len(p.WALCrashAppends) > 0 || len(p.WALTornAppends) > 0 ||
		len(p.WALCrashSyncs) > 0 || len(p.CrashApplies) > 0)
}

// stallDelay returns the configured or default stall duration.
func (p *Plan) stallDelay() sim.Time {
	if p.StallDelay > 0 {
		return p.StallDelay
	}
	return 250 * sim.Microsecond
}

// Stats counts injected faults and the engine's recovery activity. The
// injection fields are filled by the Injector; the recovery fields
// (Retries, Recoveries, Degradations) by the engine that owns the policy.
type Stats struct {
	// TransferErrors .. Corruptions count injections per kind.
	TransferErrors int64 `json:"transfer_errors"`
	Stalls         int64 `json:"transfer_stalls"`
	DeviceOOMs     int64 `json:"device_ooms"`
	StorageErrors  int64 `json:"storage_errors"`
	Corruptions    int64 `json:"page_corruptions"`
	// Crashes counts injected crash points (clean append crashes, fsync
	// crashes, apply crashes); TornWrites the subset that left a partial
	// record on disk.
	Crashes    int64 `json:"crashes,omitempty"`
	TornWrites int64 `json:"torn_writes,omitempty"`
	// Retries counts recovery re-attempts (transfer retries, page re-reads,
	// kernel relaunches).
	Retries int64 `json:"retries"`
	// Recoveries counts operations that eventually succeeded after at
	// least one injected fault.
	Recoveries int64 `json:"recoveries"`
	// Degradations counts graceful-degradation events (e.g. a device page
	// cache spilled back to the streaming path after an injected OOM).
	Degradations int64 `json:"degradations"`
}

// Injected sums the injection counters (not the recovery ones).
func (s Stats) Injected() int64 {
	return s.TransferErrors + s.Stalls + s.DeviceOOMs + s.StorageErrors + s.Corruptions + s.Crashes
}

// Add accumulates other into s, for service-level aggregation.
func (s *Stats) Add(other Stats) {
	s.TransferErrors += other.TransferErrors
	s.Stalls += other.Stalls
	s.DeviceOOMs += other.DeviceOOMs
	s.StorageErrors += other.StorageErrors
	s.Corruptions += other.Corruptions
	s.Crashes += other.Crashes
	s.TornWrites += other.TornWrites
	s.Retries += other.Retries
	s.Recoveries += other.Recoveries
	s.Degradations += other.Degradations
}

// Injector draws concrete faults from a Plan. A nil *Injector is valid and
// injects nothing, so hardware models can consult it unconditionally (the
// trace.Recorder idiom). An Injector belongs to one engine run: the sim
// scheduler serializes all draws, and per-run ownership keeps pooled
// concurrent runs independent and individually replayable.
type Injector struct {
	plan  Plan
	rngs  [NumKinds]*rand.Rand
	stats Stats
	// launches counts kernel launches for OOMKernelLaunches matching.
	launches int64
	oomAt    map[int64]bool
	// appends/syncs/applies count WAL appends, fsyncs, and batch applies
	// for crash-point ordinal matching.
	appends, syncs, applies   int64
	crashAt, tornAt           map[int64]bool
	crashSyncAt, crashApplyAt map[int64]bool
}

// seedStride spaces the per-kind PRNG seeds. It is frozen at the original
// kind count: deriving it from NumKinds would reseed every existing stream
// (and silently shift all seeded fault schedules, including the golden
// traces) each time a kind is appended.
const seedStride = 5

// NewInjector builds an injector for plan. A nil or inert plan yields a nil
// injector. Each fault kind gets an independent PRNG stream keyed off
// (seed, kind), so one kind's draw sequence never perturbs another's.
func NewInjector(plan *Plan) *Injector {
	if !plan.Enabled() {
		return nil
	}
	in := &Injector{plan: *plan, oomAt: make(map[int64]bool, len(plan.OOMKernelLaunches))}
	for k := range in.rngs {
		in.rngs[k] = rand.New(rand.NewSource(plan.Seed*seedStride + int64(k) + 1))
	}
	for _, n := range plan.OOMKernelLaunches {
		in.oomAt[n] = true
	}
	in.crashAt = ordinalSet(plan.WALCrashAppends)
	in.tornAt = ordinalSet(plan.WALTornAppends)
	in.crashSyncAt = ordinalSet(plan.WALCrashSyncs)
	in.crashApplyAt = ordinalSet(plan.CrashApplies)
	return in
}

func ordinalSet(ords []int64) map[int64]bool {
	m := make(map[int64]bool, len(ords))
	for _, n := range ords {
		m[n] = true
	}
	return m
}

// capped reports whether kind has hit the per-kind injection cap.
func (in *Injector) capped(k Kind) bool {
	return in.plan.MaxPerKind > 0 && in.count(k) >= in.plan.MaxPerKind
}

func (in *Injector) count(k Kind) int64 {
	switch k {
	case TransferError:
		return in.stats.TransferErrors
	case TransferStall:
		return in.stats.Stalls
	case DeviceOOM:
		return in.stats.DeviceOOMs
	case StorageError:
		return in.stats.StorageErrors
	case CrashPoint:
		return in.stats.Crashes
	case TornWrite:
		return in.stats.TornWrites
	default:
		return in.stats.Corruptions
	}
}

// draw samples kind's stream against rate, respecting the cap.
func (in *Injector) draw(k Kind, rate float64) bool {
	if in == nil || rate <= 0 || in.capped(k) {
		return false
	}
	return in.rngs[k].Float64() < rate
}

// Transfer decides one PCI-E copy's fate: a positive stall delay, an
// injected error, or neither. A copy can stall and then fail; both streams
// advance independently so error timing does not depend on stall timing.
func (in *Injector) Transfer() (stall sim.Time, err error) {
	if in == nil {
		return 0, nil
	}
	if in.draw(TransferStall, in.plan.TransferStallRate) {
		in.stats.Stalls++
		stall = in.plan.stallDelay()
	}
	if in.draw(TransferError, in.plan.TransferErrorRate) {
		in.stats.TransferErrors++
		err = ErrTransfer
	}
	return stall, err
}

// KernelOOM reports whether this kernel launch's device allocation fails.
// Every call advances the per-run launch ordinal, including retries — so a
// plan targeting ordinal n fails exactly one launch attempt.
func (in *Injector) KernelOOM() bool {
	if in == nil {
		return false
	}
	in.launches++
	if in.oomAt[in.launches] && !in.capped(DeviceOOM) {
		in.stats.DeviceOOMs++
		return true
	}
	return false
}

// StorageRead decides one storage read's fate: an injected error, or
// success with possibly corrupt data.
func (in *Injector) StorageRead() (corrupt bool, err error) {
	if in == nil {
		return false, nil
	}
	if in.draw(StorageError, in.plan.StorageErrorRate) {
		in.stats.StorageErrors++
		return false, ErrStorage
	}
	if in.draw(PageCorruption, in.plan.CorruptionRate) {
		in.stats.Corruptions++
		return true, nil
	}
	return false, nil
}

// Stats snapshots the injection counters. Recovery counters are zero; the
// engine that owns the recovery policy merges its own.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// CrashMode is one WAL append's injected fate.
type CrashMode int

// Crash modes for WAL appends.
const (
	// CrashNone: the append proceeds normally.
	CrashNone CrashMode = iota
	// CrashBefore: the process dies before any byte of the record reaches
	// the file — a crash between two appends.
	CrashBefore
	// CrashTorn: the process dies mid-record; only a strict prefix of the
	// frame reaches the file.
	CrashTorn
)

// WALAppendPoint decides one WAL append's fate. Every call advances the
// per-injector append ordinal. For CrashTorn, frac in (0,1) picks how much
// of the record reaches the file (the log scales it to a strict prefix).
func (in *Injector) WALAppendPoint() (mode CrashMode, frac float64) {
	if in == nil {
		return CrashNone, 0
	}
	in.appends++
	switch {
	case in.tornAt[in.appends] && !in.capped(TornWrite):
		in.stats.Crashes++
		in.stats.TornWrites++
		// Draw the tear point from the TornWrite stream so equal plans tear
		// at identical offsets.
		f := in.rngs[TornWrite].Float64()
		if f <= 0 {
			f = 0.5
		}
		return CrashTorn, f
	case in.crashAt[in.appends] && !in.capped(CrashPoint):
		in.stats.Crashes++
		return CrashBefore, 0
	}
	return CrashNone, 0
}

// WALSyncPoint reports whether this fsync crashes. Every call advances the
// fsync ordinal. A crashed fsync leaves the written bytes durable but the
// append unacknowledged.
func (in *Injector) WALSyncPoint() bool {
	if in == nil {
		return false
	}
	in.syncs++
	if in.crashSyncAt[in.syncs] && !in.capped(CrashPoint) {
		in.stats.Crashes++
		return true
	}
	return false
}

// ApplyPoint reports whether this batch apply (the in-memory page swap
// after the WAL record is durable) crashes. Every call advances the apply
// ordinal.
func (in *Injector) ApplyPoint() bool {
	if in == nil {
		return false
	}
	in.applies++
	if in.crashApplyAt[in.applies] && !in.capped(CrashPoint) {
		in.stats.Crashes++
		return true
	}
	return false
}
