// Package rmat generates scale-free graphs with the R-MAT recursive model
// (Chakrabarti, Zhan, Faloutsos, SDM'04) that the paper's synthetic datasets
// RMAT26-RMAT32 come from. The paper fixes the vertex:edge ratio at 1:16.
package rmat

import (
	"fmt"
	"math/rand"

	"repro/internal/csr"
)

// Params configures a generation run. Probabilities (A,B,C,D) pick the
// quadrant at each recursion level; the Graph500/paper default is the
// skewed (0.57, 0.19, 0.19, 0.05).
type Params struct {
	Scale      int     // numVertices = 1 << Scale
	EdgeFactor int     // numEdges = EdgeFactor << Scale (paper: 16)
	A, B, C, D float64 // quadrant probabilities, summing to 1
	Noise      float64 // per-level multiplicative jitter in [0,1); 0 = none
	Seed       int64
}

// Default returns the paper's RMAT parameterization at the given scale:
// E = 16*V with the standard skewed quadrant probabilities.
func Default(scale int) Params {
	return Params{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1, Seed: 1}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 31 {
		return fmt.Errorf("rmat: scale %d out of range [1,31]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("rmat: edge factor %d < 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %v, want 1", sum)
	}
	if p.Noise < 0 || p.Noise >= 1 {
		return fmt.Errorf("rmat: noise %v out of range [0,1)", p.Noise)
	}
	return nil
}

// NumVertices reports the vertex count 2^Scale.
func (p Params) NumVertices() int { return 1 << p.Scale }

// NumEdges reports the edge count EdgeFactor * 2^Scale.
func (p Params) NumEdges() int { return p.EdgeFactor << p.Scale }

// Edges generates the R-MAT edge list. The same Params always produce the
// same edges.
func Edges(p Params) ([]csr.Edge, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))
	edges := make([]csr.Edge, p.NumEdges())
	for i := range edges {
		edges[i] = oneEdge(r, p)
	}
	return edges, nil
}

// oneEdge descends Scale levels of the recursive quadrant partition.
func oneEdge(r *rand.Rand, p Params) csr.Edge {
	a, b, c := p.A, p.B, p.C
	var src, dst uint32
	for level := 0; level < p.Scale; level++ {
		u := r.Float64()
		switch {
		case u < a:
			// top-left: no bits set
		case u < a+b:
			dst |= 1 << level
		case u < a+b+c:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
		if p.Noise > 0 {
			// Jitter keeps the generator from producing an exactly
			// self-similar graph (as in the Graph500 reference code).
			a *= 1 - p.Noise/2 + p.Noise*r.Float64()
			b *= 1 - p.Noise/2 + p.Noise*r.Float64()
			c *= 1 - p.Noise/2 + p.Noise*r.Float64()
			norm := (a + b + c) / (p.A + p.B + p.C)
			a /= norm
			b /= norm
			c /= norm
		}
	}
	return csr.Edge{Src: src, Dst: dst}
}

// Generate builds the CSR graph directly.
func Generate(p Params) (*csr.Graph, error) {
	edges, err := Edges(p)
	if err != nil {
		return nil, err
	}
	return csr.FromEdges(p.NumVertices(), edges)
}

// MustGenerate is Generate, panicking on invalid parameters.
func MustGenerate(p Params) *csr.Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}
