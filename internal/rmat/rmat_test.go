package rmat

import (
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Default(10).Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{Scale: 0, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 40, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 0, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 16, A: 0.9, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestCounts(t *testing.T) {
	p := Default(12)
	if p.NumVertices() != 4096 {
		t.Errorf("NumVertices = %d", p.NumVertices())
	}
	if p.NumEdges() != 16*4096 {
		t.Errorf("NumEdges = %d", p.NumEdges())
	}
	g := MustGenerate(p)
	if g.NumVertices() != 4096 || g.NumEdges() != uint64(16*4096) {
		t.Errorf("graph V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Edges(Default(10))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Edges(Default(10))
	if !reflect.DeepEqual(a, b) {
		t.Error("same params produced different edges")
	}
	p := Default(10)
	p.Seed = 2
	c, _ := Edges(p)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical edges")
	}
}

func TestEdgesInRange(t *testing.T) {
	p := Default(9)
	edges, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(p.NumVertices())
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %v out of range %d", e, n)
		}
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// R-MAT with a = 0.57 must be much more skewed than uniform: the max
	// degree should far exceed the average.
	g := MustGenerate(Default(13))
	avg := g.AvgDegree()
	max := g.MaxDegree()
	if float64(max) < 8*avg {
		t.Errorf("max degree %d not skewed vs avg %.1f", max, avg)
	}
}

func TestNoNoiseStillValid(t *testing.T) {
	p := Default(8)
	p.Noise = 0
	g := MustGenerate(p)
	if g.NumEdges() != uint64(p.NumEdges()) {
		t.Errorf("E = %d", g.NumEdges())
	}
}

func TestMustGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid params")
		}
	}()
	MustGenerate(Params{})
}
