package csr

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Graph {
	return MustFromEdges(5, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {3, 1},
	})
}

func TestFromEdgesBasics(t *testing.T) {
	g := sample()
	if g.NumVertices() != 5 || g.NumEdges() != 7 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Out(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Errorf("Out(0) = %v", got)
	}
	if got := g.Out(3); !reflect.DeepEqual(got, []uint32{4, 1}) {
		t.Errorf("Out(3) = %v (insertion order must be kept)", got)
	}
	if g.Degree(4) != 0 {
		t.Errorf("Degree(4) = %d", g.Degree(4))
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 7.0/5.0 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := FromEdges(3, []Edge{{7, 0}}); err == nil {
		t.Error("out-of-range src accepted")
	}
}

func TestNeighborsMatchesOut(t *testing.T) {
	g := sample()
	for v := uint64(0); v < g.NumVertices(); v++ {
		var got []uint32
		g.Neighbors(v, func(d uint64) { got = append(got, uint32(d)) })
		want := g.Out(uint32(v))
		if len(got) != len(want) {
			t.Fatalf("v%d: %v vs %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("v%d: %v vs %v", v, got, want)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Property: transpose twice restores edge multiset per vertex.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		var edges []Edge
		for i := 0; i < r.Intn(200); i++ {
			edges = append(edges, Edge{uint32(r.Intn(n)), uint32(r.Intn(n))})
		}
		g := MustFromEdges(n, edges)
		tt := g.Transpose().Transpose()
		g.SortAdjacency()
		tt.SortAdjacency()
		return reflect.DeepEqual(g.targets, tt.targets) && reflect.DeepEqual(g.offsets, tt.offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeEdges(t *testing.T) {
	g := sample()
	rev := g.Transpose()
	if rev.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d", rev.NumEdges())
	}
	// Edge 2->3 must appear as 3->2 in the transpose.
	found := false
	rev.Neighbors(3, func(d uint64) {
		if d == 2 {
			found = true
		}
	})
	if !found {
		t.Error("edge 2->3 missing from transpose as 3->2")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := sample()
	g2 := MustFromEdges(int(g.NumVertices()), g.Edges())
	if !reflect.DeepEqual(g.targets, g2.targets) || !reflect.DeepEqual(g.offsets, g2.offsets) {
		t.Error("Edges() round trip changed the graph")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := sample()
	h := g.DegreeHistogram()
	// Degrees: v0=2 v1=1 v2=2 v3=2 v4=0.
	want := []int64{1, 1, 3}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("histogram = %v, want %v", h, want)
	}
}

func TestHistogramSumsToVertices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		var edges []Edge
		for i := 0; i < r.Intn(300); i++ {
			edges = append(edges, Edge{uint32(r.Intn(n)), uint32(r.Intn(n))})
		}
		g := MustFromEdges(n, edges)
		var sum int64
		for _, c := range g.DegreeHistogram() {
			sum += c
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUndirectedSymmetricAndDeduped(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 3}})
	u := g.Undirected()
	if got := u.Out(0); !reflect.DeepEqual(got, []uint32{1}) {
		t.Errorf("Out(0) = %v, want [1]", got)
	}
	if got := u.Out(1); !reflect.DeepEqual(got, []uint32{0}) {
		t.Errorf("Out(1) = %v, want [0]", got)
	}
	if got := u.Out(3); !reflect.DeepEqual(got, []uint32{2}) {
		t.Errorf("Out(3) = %v, want [2]", got)
	}
}

func TestBytesEstimate(t *testing.T) {
	g := sample()
	want := int64(6*8 + 7*4)
	if got := g.Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.AvgDegree() != 0 {
		t.Error("empty graph misbehaves")
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment
0 1
1 2  extra-column-ignored
2 0

3 1
`
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Out(3); !reflect.DeepEqual(got, []uint32{1}) {
		t.Errorf("Out(3) = %v", got)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"justone\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
		"0 99999999999\n",
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadEdgeListRoundTripsGenerated(t *testing.T) {
	g := sample()
	var sb strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.Src, e.Dst)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("round trip mismatch")
	}
}
