// Package csr provides the in-memory sparse-graph formats discussed in the
// paper's §2 — Compressed Sparse Row (CSR), Compressed Sparse Column (CSC)
// and Coordinate list (COO) — which the CPU- and GPU-resident baseline
// engines operate on. CSR also implements slottedpage.Source, so any graph
// here can be packed into the out-of-core slotted page format GTS streams.
package csr

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Edge is one directed edge (Src -> Dst) in COO form.
type Edge struct {
	Src, Dst uint32
}

// Graph is a directed graph in CSR form: offsets[v]..offsets[v+1] indexes
// the out-neighbors of v in targets.
type Graph struct {
	offsets []int64
	targets []uint32
}

// FromEdges builds a CSR graph over numVertices vertices. Edges keep their
// per-source relative order (counting sort by source); they are not deduped,
// matching how RMAT generators and real edge lists behave.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	offsets := make([]int64, numVertices+1)
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("csr: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, numVertices)
		}
		offsets[e.Src+1]++
	}
	for i := 1; i <= numVertices; i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]uint32, len(edges))
	next := make([]int64, numVertices)
	copy(next, offsets[:numVertices])
	for _, e := range edges {
		targets[next[e.Src]] = e.Dst
		next[e.Src]++
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// MustFromEdges is FromEdges, panicking on invalid input.
func MustFromEdges(numVertices int, edges []Edge) *Graph {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices reports the vertex count.
func (g *Graph) NumVertices() uint64 { return uint64(len(g.offsets) - 1) }

// NumEdges reports the directed edge count.
func (g *Graph) NumEdges() uint64 { return uint64(len(g.targets)) }

// Degree reports the out-degree of v.
func (g *Graph) Degree(v uint64) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors calls fn for every out-neighbor of v in adjacency order.
func (g *Graph) Neighbors(v uint64, fn func(dst uint64)) {
	for _, t := range g.targets[g.offsets[v]:g.offsets[v+1]] {
		fn(uint64(t))
	}
}

// Out returns the out-neighbor slice of v. The slice must not be modified.
func (g *Graph) Out(v uint32) []uint32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// MaxDegree reports the largest out-degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < int(g.NumVertices()); v++ {
		if d := g.Degree(uint64(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree reports the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// DegreeHistogram returns counts[d] = number of vertices with out-degree d,
// up to the maximum degree — the paper lists "degree distribution" among the
// PageRank-like full-scan algorithms.
func (g *Graph) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := 0; v < int(g.NumVertices()); v++ {
		h[g.Degree(uint64(v))]++
	}
	return h
}

// Transpose returns the reverse graph in CSR form (i.e. the CSC view of g):
// an edge u->v in g becomes v->u. Pull-style engines (Ligra's pull phase,
// PageRank gather) use this.
func (g *Graph) Transpose() *Graph {
	n := int(g.NumVertices())
	offsets := make([]int64, n+1)
	for _, t := range g.targets {
		offsets[t+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]uint32, len(g.targets))
	next := make([]int64, n)
	copy(next, offsets[:n])
	for v := 0; v < n; v++ {
		for _, t := range g.Out(uint32(v)) {
			targets[next[t]] = uint32(v)
			next[t]++
		}
	}
	return &Graph{offsets: offsets, targets: targets}
}

// Edges returns the graph as a COO edge list in CSR order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.targets))
	for v := 0; v < int(g.NumVertices()); v++ {
		for _, t := range g.Out(uint32(v)) {
			out = append(out, Edge{Src: uint32(v), Dst: t})
		}
	}
	return out
}

// SortAdjacency orders every adjacency list ascending. Compressed formats
// (Ligra+'s delta coding) and binary-search-based joins require this.
func (g *Graph) SortAdjacency() {
	for v := 0; v < int(g.NumVertices()); v++ {
		adj := g.targets[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
}

// Bytes estimates the resident size of the CSR structure: 8 bytes per
// offset, 4 per target. Engines use this for memory accounting.
func (g *Graph) Bytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4
}

// Undirected returns a graph with each edge mirrored (u->v and v->u),
// deduplicated per adjacency list. Connected-components engines use this.
func (g *Graph) Undirected() *Graph {
	n := int(g.NumVertices())
	edges := make([]Edge, 0, 2*len(g.targets))
	for v := 0; v < n; v++ {
		for _, t := range g.Out(uint32(v)) {
			edges = append(edges, Edge{Src: uint32(v), Dst: t}, Edge{Src: t, Dst: uint32(v)})
		}
	}
	u := MustFromEdges(n, edges)
	u.SortAdjacency()
	// Dedupe in place.
	w := 0
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		adj := u.targets[u.offsets[v]:u.offsets[v+1]]
		for i, t := range adj {
			if i > 0 && adj[i-1] == t {
				continue
			}
			u.targets[w] = t
			w++
		}
		newOffsets[v+1] = int64(w)
	}
	u.targets = u.targets[:w]
	u.offsets = newOffsets
	return u
}

// ReadEdgeList parses a whitespace-separated edge list ("src dst" per
// line, '#' or '%' comment lines ignored — the SNAP/KONECT convention) and
// builds the CSR graph. Vertex IDs must be non-negative integers; the
// vertex count is 1 + the largest ID seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("csr: line %d: want 'src dst', got %q", line, text)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csr: line %d: %w", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csr: line %d: %w", line, err)
		}
		if src < 0 || dst < 0 || src > int64(^uint32(0)) || dst > int64(^uint32(0)) {
			return nil, fmt.Errorf("csr: line %d: vertex ID out of uint32 range", line)
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{Src: uint32(src), Dst: uint32(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(int(maxID+1), edges)
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
