package bufpool

import (
	"fmt"
	"math/rand"
	"testing"
)

// The model test drives the real pool and a naive reference oracle
// through the same randomized op scripts and asserts identical observable
// state after every op: the PinState returned, the resident page set, and
// the counter snapshot. The oracle reimplements the pool spec with plain
// slices and linear searches — no index maps, no container/list — so a
// bookkeeping bug in either implementation shows up as a divergence.
// Failing scripts are shrunk to a minimal reproducer before reporting.

const modelPageSize = 64

// ---------------------------------------------------------------------------
// Reference oracle

type modelFrame struct {
	refs    int
	loading bool
}

type modelPolicy interface {
	insert(pid uint64)
	remove(pid uint64)
	victim() (uint64, bool)
}

type model struct {
	capacity int
	frames   map[uint64]*modelFrame
	pol      modelPolicy

	hits, loads, evictions, pinWaits int64
}

func newModel(policy string, capPages int, seed int64) *model {
	var pol modelPolicy
	switch policy {
	case "lru":
		pol = &modelLRU{}
	case "clock":
		pol = &modelClock{seed: uint64(seed)}
	case "2q":
		gc := capPages
		if gc < 16 {
			gc = 16
		}
		pol = &model2Q{ghostCap: gc, hot: map[uint64]bool{}}
	default:
		panic("unknown policy " + policy)
	}
	return &model{capacity: capPages, frames: map[uint64]*modelFrame{}, pol: pol}
}

func (m *model) pin(pid uint64) PinState {
	if f, ok := m.frames[pid]; ok {
		if f.loading {
			m.pinWaits++
			return Busy
		}
		if f.refs == 0 {
			m.pol.remove(pid)
		}
		f.refs++
		m.hits++
		return Hit
	}
	for len(m.frames) >= m.capacity {
		v, ok := m.pol.victim()
		if !ok {
			m.pinWaits++
			return NoFrame
		}
		delete(m.frames, v)
		m.evictions++
	}
	m.frames[pid] = &modelFrame{refs: 1, loading: true}
	m.loads++
	return Load
}

func (m *model) ready(pid uint64) { m.frames[pid].loading = false }

func (m *model) abort(pid uint64) { delete(m.frames, pid) }

func (m *model) unpin(pid uint64) {
	f := m.frames[pid]
	f.refs--
	if f.refs > 0 {
		return
	}
	if len(m.frames) > m.capacity {
		delete(m.frames, pid)
		m.evictions++
		return
	}
	m.pol.insert(pid)
}

func (m *model) resize(capPages int) {
	if capPages < 1 {
		capPages = 1
	}
	m.capacity = capPages
	for len(m.frames) > m.capacity {
		v, ok := m.pol.victim()
		if !ok {
			break
		}
		delete(m.frames, v)
		m.evictions++
	}
}

func (m *model) resident() []uint64 {
	out := make([]uint64, 0, len(m.frames))
	for pid := range m.frames {
		out = append(out, pid)
	}
	return sortPIDs(out)
}

// modelLRU: index 0 is the LRU end.
type modelLRU struct{ order []uint64 }

func (l *modelLRU) insert(pid uint64) {
	l.remove(pid)
	l.order = append(l.order, pid)
}

func (l *modelLRU) remove(pid uint64) {
	for i, p := range l.order {
		if p == pid {
			l.order = append(l.order[:i], l.order[i+1:]...)
			return
		}
	}
}

func (l *modelLRU) victim() (uint64, bool) {
	if len(l.order) == 0 {
		return 0, false
	}
	pid := l.order[0]
	l.order = l.order[1:]
	return pid, true
}

// modelClock: the same second-chance spec as the real replacer, written
// naively over a plain slice with linear search.
type modelClock struct {
	ring []struct {
		pid uint64
		ref bool
	}
	hand   int
	seed   uint64
	seeded bool
}

func (c *modelClock) normalize() {
	if len(c.ring) == 0 {
		c.hand = 0
	} else if c.hand >= len(c.ring) || c.hand < 0 {
		c.hand = ((c.hand % len(c.ring)) + len(c.ring)) % len(c.ring)
	}
}

func (c *modelClock) insert(pid uint64) {
	for i := range c.ring {
		if c.ring[i].pid == pid {
			c.ring[i].ref = true
			return
		}
	}
	pos := c.hand
	if pos > len(c.ring) {
		pos = len(c.ring)
	}
	c.ring = append(c.ring, struct {
		pid uint64
		ref bool
	}{})
	copy(c.ring[pos+1:], c.ring[pos:])
	c.ring[pos].pid, c.ring[pos].ref = pid, true
	c.hand = pos + 1
	c.normalize()
}

func (c *modelClock) remove(pid uint64) {
	for i := range c.ring {
		if c.ring[i].pid == pid {
			if i < c.hand {
				c.hand--
			}
			c.ring = append(c.ring[:i], c.ring[i+1:]...)
			c.normalize()
			return
		}
	}
}

func (c *modelClock) victim() (uint64, bool) {
	if len(c.ring) == 0 {
		return 0, false
	}
	if !c.seeded {
		c.hand = int(Splitmix64(c.seed) % uint64(len(c.ring)))
		c.seeded = true
	}
	c.normalize()
	for {
		if c.ring[c.hand].ref {
			c.ring[c.hand].ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		pid := c.ring[c.hand].pid
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		c.normalize()
		return pid, true
	}
}

// model2Q: probation FIFO + main LRU + ghost list over plain slices.
type model2Q struct {
	a1in     []uint64 // index 0 = oldest
	am       []uint64 // index 0 = MRU
	ghost    []uint64 // index 0 = oldest
	ghostCap int
	hot      map[uint64]bool
}

func (q *model2Q) ghostRemove(pid uint64) {
	for i, p := range q.ghost {
		if p == pid {
			q.ghost = append(q.ghost[:i], q.ghost[i+1:]...)
			return
		}
	}
}

func (q *model2Q) ghostPush(pid uint64) {
	q.ghostRemove(pid)
	q.ghost = append(q.ghost, pid)
	for len(q.ghost) > q.ghostCap {
		q.ghost = q.ghost[1:]
	}
}

func (q *model2Q) inGhost(pid uint64) bool {
	for _, p := range q.ghost {
		if p == pid {
			return true
		}
	}
	return false
}

func (q *model2Q) insert(pid uint64) {
	for i, p := range q.am {
		if p == pid {
			q.am = append(q.am[:i], q.am[i+1:]...)
			q.am = append([]uint64{pid}, q.am...)
			return
		}
	}
	for _, p := range q.a1in {
		if p == pid {
			return
		}
	}
	if q.hot[pid] {
		q.am = append([]uint64{pid}, q.am...)
		return
	}
	if q.inGhost(pid) {
		q.ghostRemove(pid)
		q.hot[pid] = true
		q.am = append([]uint64{pid}, q.am...)
		return
	}
	q.a1in = append(q.a1in, pid)
}

func (q *model2Q) remove(pid uint64) {
	for i, p := range q.a1in {
		if p == pid {
			q.a1in = append(q.a1in[:i], q.a1in[i+1:]...)
			return
		}
	}
	for i, p := range q.am {
		if p == pid {
			q.am = append(q.am[:i], q.am[i+1:]...)
			return
		}
	}
}

func (q *model2Q) victim() (uint64, bool) {
	total := len(q.a1in) + len(q.am)
	if total == 0 {
		return 0, false
	}
	if len(q.a1in) > 0 && (len(q.am) == 0 || len(q.a1in)*4 > total) {
		pid := q.a1in[0]
		q.a1in = q.a1in[1:]
		q.ghostPush(pid)
		return pid, true
	}
	pid := q.am[len(q.am)-1]
	q.am = q.am[:len(q.am)-1]
	delete(q.hot, pid)
	return pid, true
}

// ---------------------------------------------------------------------------
// Script harness

// scriptOp kinds. Pin ops resolve a granted Load immediately (Ready or
// Abort) except opPinHold, which leaves the frame loading so later pins
// observe Busy until an opResolve readies or aborts it.
const (
	opPinReady = iota // pin pid; on Load: read + Ready (pin kept, tracked)
	opPinAbort        // pin pid; on Load: Abort (load failure path)
	opUnpin           // unpin one tracked pin, chosen by arg
	opResize          // resize to (arg%8+1) pages
	opPinHold         // pin pid; on Load: leave loading (tracked separately)
	opResolve         // resolve one held loading frame: even arg Ready, odd Abort
	numOpKinds
)

type scriptOp struct {
	kind int
	arg  uint64
}

func (o scriptOp) String() string {
	names := []string{"pin", "pin-abort", "unpin", "resize", "pin-hold", "resolve"}
	return fmt.Sprintf("%s(%d)", names[o.kind], o.arg)
}

// runScript replays ops against a real pool and the oracle, returning a
// description of the first divergence or invariant violation.
func runScript(policy string, seed int64, capPages int, ops []scriptOp) error {
	pool, err := New(Config{PageSize: modelPageSize, Bytes: int64(capPages) * modelPageSize, Policy: policy, Seed: seed})
	if err != nil {
		return err
	}
	oracle := newModel(policy, capPages, seed)

	var outstanding []uint64 // pids with a tracked pin (ready frames)
	var held []uint64        // pids held in loading state

	for i, op := range ops {
		switch op.kind {
		case opPinReady, opPinAbort, opPinHold:
			pid := op.arg
			got, want := pool.Pin(pid), oracle.pin(pid)
			if got != want {
				return fmt.Errorf("op %d %v: pool returned %v, oracle %v", i, op, got, want)
			}
			switch got {
			case Hit:
				outstanding = append(outstanding, pid)
			case Load:
				switch op.kind {
				case opPinReady:
					pool.Ready(pid)
					oracle.ready(pid)
					outstanding = append(outstanding, pid)
				case opPinAbort:
					pool.Abort(pid)
					oracle.abort(pid)
				case opPinHold:
					held = append(held, pid)
				}
			}
		case opUnpin:
			if len(outstanding) == 0 {
				continue
			}
			idx := int(op.arg) % len(outstanding)
			pid := outstanding[idx]
			outstanding = append(outstanding[:idx], outstanding[idx+1:]...)
			pool.Unpin(pid)
			oracle.unpin(pid)
		case opResize:
			capPages := int(op.arg%8) + 1
			pool.Resize(int64(capPages) * modelPageSize)
			oracle.resize(capPages)
		case opResolve:
			if len(held) == 0 {
				continue
			}
			idx := int(op.arg/2) % len(held)
			pid := held[idx]
			held = append(held[:idx], held[idx+1:]...)
			if op.arg%2 == 0 {
				pool.Ready(pid)
				oracle.ready(pid)
				outstanding = append(outstanding, pid)
			} else {
				pool.Abort(pid)
				oracle.abort(pid)
			}
		}

		if err := pool.CheckInvariants(); err != nil {
			return fmt.Errorf("op %d %v: invariant violated: %w", i, op, err)
		}
		gotRes, wantRes := pool.ResidentPIDs(), oracle.resident()
		if !equalPIDs(gotRes, wantRes) {
			return fmt.Errorf("op %d %v: resident set %v, oracle %v", i, op, gotRes, wantRes)
		}
		st := pool.Stats()
		if st.Hits != oracle.hits || st.Loads != oracle.loads ||
			st.Evictions != oracle.evictions || st.PinWaits != oracle.pinWaits {
			return fmt.Errorf("op %d %v: stats {hits %d loads %d evict %d waits %d}, oracle {%d %d %d %d}",
				i, op, st.Hits, st.Loads, st.Evictions, st.PinWaits,
				oracle.hits, oracle.loads, oracle.evictions, oracle.pinWaits)
		}
	}
	return nil
}

func equalPIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// minimizeScript delta-debugs a failing script down to a locally minimal
// reproducer: remove chunks (halving sizes), keep any removal that still
// fails, repeat to fixpoint.
func minimizeScript(ops []scriptOp, fails func([]scriptOp) bool) []scriptOp {
	for changed := true; changed; {
		changed = false
		for sz := len(ops) / 2; sz >= 1; sz /= 2 {
			for i := 0; i+sz <= len(ops); {
				cand := make([]scriptOp, 0, len(ops)-sz)
				cand = append(cand, ops[:i]...)
				cand = append(cand, ops[i+sz:]...)
				if fails(cand) {
					ops = cand
					changed = true
				} else {
					i += sz
				}
			}
		}
	}
	return ops
}

func genScript(r *rand.Rand, n, pidSpace int) []scriptOp {
	ops := make([]scriptOp, n)
	for i := range ops {
		var op scriptOp
		switch p := r.Intn(100); {
		case p < 45:
			op = scriptOp{opPinReady, uint64(r.Intn(pidSpace))}
		case p < 52:
			op = scriptOp{opPinAbort, uint64(r.Intn(pidSpace))}
		case p < 62:
			op = scriptOp{opPinHold, uint64(r.Intn(pidSpace))}
		case p < 72:
			op = scriptOp{opResolve, uint64(r.Intn(64))}
		case p < 94:
			op = scriptOp{opUnpin, uint64(r.Intn(64))}
		default:
			op = scriptOp{opResize, uint64(r.Intn(8))}
		}
		ops[i] = op
	}
	return ops
}

// TestPoolModel is the main property test: for every policy, seeded
// random scripts replayed against the oracle, with shrink-on-failure.
func TestPoolModel(t *testing.T) {
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				r := rand.New(rand.NewSource(seed))
				capPages := 1 + r.Intn(6)
				pidSpace := 4 + r.Intn(28)
				ops := genScript(r, 500, pidSpace)
				if err := runScript(policy, seed, capPages, ops); err != nil {
					min := minimizeScript(ops, func(cand []scriptOp) bool {
						return runScript(policy, seed, capPages, cand) != nil
					})
					t.Fatalf("seed %d cap %d: %v\nminimized to %d ops: %v\nminimized failure: %v",
						seed, capPages, err, len(min), min,
						runScript(policy, seed, capPages, min))
				}
			}
		})
	}
}

// TestPoolModelDeterminism pins that identical (policy, seed, script)
// inputs produce identical eviction decisions: two independent pools end
// with identical resident sets and counters.
func TestPoolModelDeterminism(t *testing.T) {
	for _, policy := range Policies() {
		r := rand.New(rand.NewSource(99))
		ops := genScript(r, 300, 24)
		run := func() (res []uint64, st Stats) {
			pool, err := New(Config{PageSize: modelPageSize, Bytes: 4 * modelPageSize, Policy: policy, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var outstanding []uint64
			for _, op := range ops {
				switch op.kind {
				case opPinReady, opPinHold, opPinAbort:
					switch pool.Pin(op.arg) {
					case Load:
						pool.Ready(op.arg)
						outstanding = append(outstanding, op.arg)
					case Hit:
						outstanding = append(outstanding, op.arg)
					}
				case opUnpin:
					if len(outstanding) > 0 {
						idx := int(op.arg) % len(outstanding)
						pool.Unpin(outstanding[idx])
						outstanding = append(outstanding[:idx], outstanding[idx+1:]...)
					}
				}
			}
			return pool.ResidentPIDs(), pool.Stats()
		}
		resA, stA := run()
		resB, stB := run()
		if !equalPIDs(resA, resB) {
			t.Fatalf("%s: nondeterministic resident set: %v vs %v", policy, resA, resB)
		}
		if stA != stB {
			t.Fatalf("%s: nondeterministic stats: %+v vs %+v", policy, stA, stB)
		}
	}
}
