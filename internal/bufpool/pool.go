// Package bufpool provides the shared host page buffer pool: one
// pinned/ref-counted pool per registered graph, shared by every engine in
// a SystemPool and by RunShared wave groups, so concurrent queries over
// the same graph keep at most one host copy of each hot topology page.
//
// The pool mirrors the paper's main-memory buffer (GTS §3.3, Algorithm 1
// lines 18–26) but is reference-counted so concurrent runs can hold pages
// across a stream without racing eviction. Eviction policy is pluggable
// (Replacer: LRU, CLOCK, 2Q) and deterministic under a seeded tiebreak,
// which keeps golden result digests byte-stable across policies: the pool
// only ever affects *which* reads hit memory, never what a kernel
// computes.
//
// Pin never blocks. The caller contract is:
//
//	switch p.Pin(pid) {
//	case bufpool.Hit:     // page resident: use it, then Unpin.
//	case bufpool.Load:    // frame reserved for you: read the page from
//	                      // storage, then Ready (success: page is now
//	                      // resident and pinned by you — Unpin when done)
//	                      // or Abort (failure: frame released).
//	case bufpool.Busy:    // another goroutine is loading it: bypass the
//	                      // pool (read storage directly) or retry later.
//	case bufpool.NoFrame: // every frame is pinned or loading: bypass.
//	}
//
// Busy/NoFrame bypass instead of blocking because callers are processes
// inside cooperative simulation environments: a real block while holding
// an env's scheduler turn could deadlock two envs loading each other's
// pages. Same-env duplicate loads are coalesced above the pool by the
// run's inflight table; cross-env duplicates are rare enough that a
// bypass read is cheaper than a cross-env wait protocol.
package bufpool

import (
	"fmt"
	"sync"
)

// PinState is the result of a Pin call.
type PinState int

const (
	// Hit: the page is resident; the refcount was incremented.
	Hit PinState = iota
	// Load: a frame was reserved and pinned for the caller, who must
	// populate it and call Ready (or Abort on failure).
	Load
	// Busy: another caller holds the page's frame in loading state; the
	// caller should bypass the pool or retry after yielding.
	Busy
	// NoFrame: every frame is pinned or loading, so nothing can be
	// evicted to make room; the caller should bypass the pool.
	NoFrame
)

func (s PinState) String() string {
	switch s {
	case Hit:
		return "hit"
	case Load:
		return "load"
	case Busy:
		return "busy"
	case NoFrame:
		return "noframe"
	default:
		return fmt.Sprintf("pinstate(%d)", int(s))
	}
}

// Config configures a Pool.
type Config struct {
	// PageSize is the slotted page size in bytes; must be positive.
	PageSize int64
	// Bytes is the pool budget. The page capacity is Bytes/PageSize,
	// floored, with a minimum of one page.
	Bytes int64
	// Policy selects the eviction policy: "lru" (default), "clock", "2q".
	Policy string
	// Seed drives the deterministic eviction tiebreak.
	Seed int64
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Policy        string
	Hits          int64 // Pin calls answered from a resident page
	Loads         int64 // Pin calls granted a Load frame (storage reads through the pool)
	Evictions     int64 // pages evicted (replacer victims + over-budget unpins)
	PinWaits      int64 // Pin calls denied (Busy or NoFrame) — bypass reads
	Invalidations int64 // frames discarded because a graph mutation superseded their epoch
	Resident      int   // resident pages (loading frames included)
	Pinned        int   // resident pages with refcount > 0 or loading
	ResidentBytes int64 // Resident * PageSize
	BudgetBytes   int64 // current budget (Capacity * PageSize)
	Epoch         uint64
}

type frame struct {
	refs    int
	loading bool
	epoch   uint64 // pool epoch the frame's contents belong to
}

// Pool is a ref-counted host page buffer pool. All methods are safe for
// concurrent use. The pool tracks residency and refcounts only — actual
// page bytes live in the storage layer's read path; keeping the pool
// byte-free makes the model-test oracle exact and the pool reusable for
// any fixed-size page population.
type Pool struct {
	mu       sync.Mutex
	pageSize int64
	capacity int // page budget; resident may exceed it transiently when pins outlive a shrink
	policy   string
	seed     int64
	frames   map[uint64]*frame
	rep      Replacer
	epoch    uint64 // current graph version; frames from older epochs are stale

	hits, loads, evictions, pinWaits, invalidations int64
}

// New builds a pool. The capacity is cfg.Bytes/cfg.PageSize pages,
// minimum one.
func New(cfg Config) (*Pool, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("bufpool: page size must be positive, got %d", cfg.PageSize)
	}
	capacity := int(cfg.Bytes / cfg.PageSize)
	if capacity < 1 {
		capacity = 1
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "lru"
	}
	rep, err := NewReplacer(policy, capacity, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Pool{
		pageSize: cfg.PageSize,
		capacity: capacity,
		policy:   policy,
		seed:     cfg.Seed,
		frames:   make(map[uint64]*frame),
		rep:      rep,
	}, nil
}

// Pin requests the page. See the package comment for the state contract.
func (p *Pool) Pin(pid uint64) PinState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pid]; ok {
		if f.loading || f.epoch != p.epoch {
			// Loading, or pinned with contents from a superseded graph
			// version (stale unpinned frames are evicted by AdvanceEpoch,
			// so a stale frame here is necessarily pinned): bypass.
			p.pinWaits++
			return Busy
		}
		if f.refs == 0 {
			p.rep.Remove(pid)
		}
		f.refs++
		p.hits++
		return Hit
	}
	// Make room for a new frame.
	for len(p.frames) >= p.capacity {
		v, ok := p.rep.Victim()
		if !ok {
			p.pinWaits++
			return NoFrame
		}
		delete(p.frames, v)
		p.evictions++
	}
	p.frames[pid] = &frame{refs: 1, loading: true, epoch: p.epoch}
	p.loads++
	return Load
}

// Ready marks a Load frame populated. The caller still holds its pin.
func (p *Pool) Ready(pid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok || !f.loading {
		panic(fmt.Sprintf("bufpool: Ready(%d) without a loading frame", pid))
	}
	f.loading = false
}

// Abort releases a Load frame whose population failed. The pin is
// dropped and the page is not resident afterwards.
func (p *Pool) Abort(pid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok || !f.loading {
		panic(fmt.Sprintf("bufpool: Abort(%d) without a loading frame", pid))
	}
	delete(p.frames, pid)
}

// Unpin drops one reference. When the count reaches zero the page becomes
// evictable — or is evicted immediately if a shrink left the pool over
// budget.
func (p *Pool) Unpin(pid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok || f.refs <= 0 || f.loading {
		panic(fmt.Sprintf("bufpool: Unpin(%d) without a matching Pin", pid))
	}
	f.refs--
	if f.refs > 0 {
		return
	}
	if f.epoch != p.epoch {
		// The pin outlived a graph mutation: the frame's bytes belong to a
		// superseded epoch, so it dies here instead of becoming evictable.
		delete(p.frames, pid)
		p.evictions++
		p.invalidations++
		return
	}
	if len(p.frames) > p.capacity {
		delete(p.frames, pid)
		p.evictions++
		return
	}
	p.rep.Insert(pid)
}

// AdvanceEpoch declares a new graph version: every resident frame from the
// old epoch is stale. Unpinned stale frames are evicted immediately;
// pinned (or loading) frames stay resident for their current holders —
// readers of the old snapshot remain correct — but stop serving hits and
// are discarded at their final Unpin. Returns how many frames were evicted
// eagerly.
func (p *Pool) AdvanceEpoch() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	evicted := 0
	for pid, f := range p.frames {
		if f.refs > 0 || f.loading {
			continue
		}
		p.rep.Remove(pid)
		delete(p.frames, pid)
		p.evictions++
		p.invalidations++
		evicted++
	}
	return evicted
}

// Epoch reports the pool's current graph version.
func (p *Pool) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Resize sets a new byte budget (minimum one page) and evicts unpinned
// pages until the pool fits, returning how many it evicted. Pinned pages
// are never evicted; a pool shrunk below its pinned set stays over budget
// until those pins drop, at which point Unpin evicts immediately.
func (p *Pool) Resize(bytes int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	capacity := int(bytes / p.pageSize)
	if capacity < 1 {
		capacity = 1
	}
	p.capacity = capacity
	evicted := 0
	for len(p.frames) > p.capacity {
		v, ok := p.rep.Victim()
		if !ok {
			break
		}
		delete(p.frames, v)
		p.evictions++
		evicted++
	}
	return evicted
}

// PageSize reports the configured page size in bytes.
func (p *Pool) PageSize() int64 { return p.pageSize }

// Policy reports the eviction policy name.
func (p *Pool) Policy() string { return p.policy }

// Seed reports the deterministic-tiebreak seed.
func (p *Pool) Seed() int64 { return p.seed }

// Capacity reports the current page budget.
func (p *Pool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Budget reports the current byte budget.
func (p *Pool) Budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.capacity) * p.pageSize
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	pinned := 0
	for _, f := range p.frames {
		if f.refs > 0 || f.loading {
			pinned++
		}
	}
	return Stats{
		Policy:        p.policy,
		Hits:          p.hits,
		Loads:         p.loads,
		Evictions:     p.evictions,
		PinWaits:      p.pinWaits,
		Invalidations: p.invalidations,
		Epoch:         p.epoch,
		Resident:      len(p.frames),
		Pinned:        pinned,
		ResidentBytes: int64(len(p.frames)) * p.pageSize,
		BudgetBytes:   int64(p.capacity) * p.pageSize,
	}
}

// ResidentPIDs returns the sorted set of resident page IDs (loading
// frames included). For tests and diagnostics.
func (p *Pool) ResidentPIDs() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, 0, len(p.frames))
	for pid := range p.frames {
		out = append(out, pid)
	}
	return sortPIDs(out)
}

// CheckInvariants verifies the pool's structural invariants:
// every refcount is non-negative, loading frames are exclusively pinned,
// the replacer's evictable set is exactly the resident unpinned set
// (pinned ∉ evictable), and the pool is only over budget when the excess
// is entirely pinned (resident ≤ budget modulo pins). Stress tests call
// it after every operation.
func (p *Pool) CheckInvariants() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	evictable := make(map[uint64]struct{})
	for _, pid := range p.rep.PIDs() {
		if _, dup := evictable[pid]; dup {
			return fmt.Errorf("replacer lists page %d twice", pid)
		}
		evictable[pid] = struct{}{}
	}
	if len(evictable) != p.rep.Len() {
		return fmt.Errorf("replacer Len %d != PIDs count %d", p.rep.Len(), len(evictable))
	}
	wantEvictable := 0
	for pid, f := range p.frames {
		if f.refs < 0 {
			return fmt.Errorf("page %d refcount %d < 0", pid, f.refs)
		}
		if f.epoch > p.epoch {
			return fmt.Errorf("page %d has epoch %d beyond pool epoch %d", pid, f.epoch, p.epoch)
		}
		if f.epoch != p.epoch && f.refs == 0 && !f.loading {
			return fmt.Errorf("stale page %d (epoch %d < %d) is unpinned but still resident", pid, f.epoch, p.epoch)
		}
		if f.loading && f.refs != 1 {
			return fmt.Errorf("loading page %d has refcount %d, want 1", pid, f.refs)
		}
		_, inRep := evictable[pid]
		if f.refs > 0 || f.loading {
			if inRep {
				return fmt.Errorf("pinned page %d is in the evictable set", pid)
			}
			continue
		}
		wantEvictable++
		if !inRep {
			return fmt.Errorf("unpinned resident page %d missing from the evictable set", pid)
		}
	}
	for pid := range evictable {
		if _, ok := p.frames[pid]; !ok {
			return fmt.Errorf("replacer tracks non-resident page %d", pid)
		}
	}
	if wantEvictable != len(evictable) {
		return fmt.Errorf("evictable set size %d, want %d", len(evictable), wantEvictable)
	}
	if len(p.frames) > p.capacity && wantEvictable > 0 {
		return fmt.Errorf("pool over budget (%d resident, capacity %d) with %d evictable pages",
			len(p.frames), p.capacity, wantEvictable)
	}
	return nil
}
