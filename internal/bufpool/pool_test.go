package bufpool

import (
	"strings"
	"testing"
)

func mustPool(t *testing.T, pages int, policy string, seed int64) *Pool {
	t.Helper()
	p, err := New(Config{PageSize: modelPageSize, Bytes: int64(pages) * modelPageSize, Policy: policy, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// pinReady pins pid and resolves a Load immediately, failing the test on
// Busy/NoFrame.
func pinReady(t *testing.T, p *Pool, pid uint64) {
	t.Helper()
	switch s := p.Pin(pid); s {
	case Hit:
	case Load:
		p.Ready(pid)
	default:
		t.Fatalf("Pin(%d) = %v, want Hit or Load", pid, s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{PageSize: 0, Bytes: 1}); err == nil {
		t.Fatal("want error for zero page size")
	}
	if _, err := New(Config{PageSize: 64, Bytes: 64, Policy: "fifo"}); err == nil {
		t.Fatal("want error for unknown policy")
	}
	p, err := New(Config{PageSize: 64, Bytes: 0}) // budget below one page: clamped
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 1 {
		t.Fatalf("Capacity() = %d, want clamp to 1", p.Capacity())
	}
	if p.Policy() != "lru" {
		t.Fatalf("default policy = %q, want lru", p.Policy())
	}
}

func TestPinStateString(t *testing.T) {
	for s, want := range map[PinState]string{Hit: "hit", Load: "load", Busy: "busy", NoFrame: "noframe", PinState(9): "pinstate(9)"} {
		if got := s.String(); got != want {
			t.Fatalf("PinState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestLRUOrder pins the LRU eviction order: the least recently unpinned
// page goes first.
func TestLRUOrder(t *testing.T) {
	p := mustPool(t, 3, "lru", 0)
	for pid := uint64(1); pid <= 3; pid++ {
		pinReady(t, p, pid)
	}
	p.Unpin(2)
	p.Unpin(1)
	p.Unpin(3) // LRU order now: 2, 1, 3
	pinReady(t, p, 4)
	want := []uint64{1, 3, 4}
	if got := p.ResidentPIDs(); !equalPIDs(got, want) {
		t.Fatalf("resident after evicting LRU = %v, want %v", got, want)
	}
}

// TestClockSecondChance: pages re-pinned while evictable get their
// reference bit back and survive one sweep.
func TestClockSecondChance(t *testing.T) {
	p := mustPool(t, 2, "clock", 0)
	pinReady(t, p, 1)
	pinReady(t, p, 2)
	p.Unpin(1)
	p.Unpin(2)
	// Re-reference 1 while it sits on the ring: ref bit set again.
	pinReady(t, p, 1)
	p.Unpin(1)
	pinReady(t, p, 3) // must evict 2 or 1 deterministically; run twice below
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("stats after clock eviction: %+v", st)
	}
}

// TestClockSeededHand: different seeds may choose different victims, the
// same seed always chooses the same one.
func TestClockSeededHand(t *testing.T) {
	evictOrder := func(seed int64) []uint64 {
		p := mustPool(t, 4, "clock", seed)
		for pid := uint64(1); pid <= 4; pid++ {
			pinReady(t, p, pid)
			p.Unpin(pid)
		}
		var order []uint64
		for pid := uint64(5); pid <= 8; pid++ {
			before := p.ResidentPIDs()
			pinReady(t, p, pid)
			after := p.ResidentPIDs()
			for _, b := range before {
				found := false
				for _, a := range after {
					if a == b {
						found = true
					}
				}
				if !found {
					order = append(order, b)
				}
			}
			p.Unpin(pid)
		}
		return order
	}
	for seed := int64(0); seed < 4; seed++ {
		a, b := evictOrder(seed), evictOrder(seed)
		if !equalPIDs(a, b) {
			t.Fatalf("seed %d: eviction order not deterministic: %v vs %v", seed, a, b)
		}
	}
}

// TestTwoQScanResistance: a one-shot scan over cold pages must not evict
// the hot set once it has been promoted to Am.
func TestTwoQScanResistance(t *testing.T) {
	p := mustPool(t, 4, "2q", 0)
	// Establish 1 and 2 as hot: load, unpin (→A1in), evict through
	// probation into the ghost list, then re-load (→Am).
	for _, pid := range []uint64{1, 2, 3, 4, 5, 6} {
		pinReady(t, p, pid)
		p.Unpin(pid)
	}
	// 1 and 2 went through A1in and (for the earliest) into the ghost list.
	pinReady(t, p, 1)
	p.Unpin(1)
	pinReady(t, p, 2)
	p.Unpin(2)
	hot := map[uint64]bool{1: true, 2: true}
	// Scan 20 cold pages; the hot set must survive.
	for pid := uint64(100); pid < 120; pid++ {
		pinReady(t, p, pid)
		p.Unpin(pid)
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range p.ResidentPIDs() {
		delete(hot, pid)
	}
	if len(hot) != 0 {
		t.Fatalf("scan evicted hot pages %v (resident %v)", hot, p.ResidentPIDs())
	}
}

// TestPinnedNeverEvicted: with every frame pinned, new pins get NoFrame
// and the pinned set survives a shrink to one page.
func TestPinnedNeverEvicted(t *testing.T) {
	p := mustPool(t, 3, "lru", 0)
	for pid := uint64(1); pid <= 3; pid++ {
		pinReady(t, p, pid)
	}
	if s := p.Pin(4); s != NoFrame {
		t.Fatalf("Pin over a fully pinned pool = %v, want NoFrame", s)
	}
	if n := p.Resize(modelPageSize); n != 0 {
		t.Fatalf("Resize evicted %d pinned pages", n)
	}
	if got := p.ResidentPIDs(); !equalPIDs(got, []uint64{1, 2, 3}) {
		t.Fatalf("pinned pages evicted: resident %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// As pins drop while over budget, pages are evicted immediately.
	p.Unpin(2)
	p.Unpin(3)
	if got := p.ResidentPIDs(); !equalPIDs(got, []uint64{1}) {
		t.Fatalf("over-budget unpin kept %v, want [1]", got)
	}
	st := p.Stats()
	if st.Evictions != 2 || st.PinWaits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBusyAndAbort: a loading frame answers Busy to other pinners; Abort
// releases it without residency.
func TestBusyAndAbort(t *testing.T) {
	p := mustPool(t, 2, "clock", 1)
	if s := p.Pin(7); s != Load {
		t.Fatalf("first Pin = %v, want Load", s)
	}
	if s := p.Pin(7); s != Busy {
		t.Fatalf("Pin of loading page = %v, want Busy", s)
	}
	p.Abort(7)
	if got := p.ResidentPIDs(); len(got) != 0 {
		t.Fatalf("aborted page still resident: %v", got)
	}
	if s := p.Pin(7); s != Load {
		t.Fatalf("re-Pin after Abort = %v, want Load", s)
	}
	p.Ready(7)
	p.Unpin(7)
	if s := p.Pin(7); s != Hit {
		t.Fatalf("Pin after Ready+Unpin = %v, want Hit", s)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Loads != 2 || st.PinWaits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestResizeGrow: growing the budget stops evictions.
func TestResizeGrow(t *testing.T) {
	p := mustPool(t, 2, "lru", 0)
	p.Resize(8 * modelPageSize)
	if p.Capacity() != 8 || p.Budget() != 8*modelPageSize {
		t.Fatalf("Capacity/Budget after grow: %d/%d", p.Capacity(), p.Budget())
	}
	for pid := uint64(1); pid <= 8; pid++ {
		pinReady(t, p, pid)
		p.Unpin(pid)
	}
	if st := p.Stats(); st.Evictions != 0 || st.Resident != 8 {
		t.Fatalf("stats after grow: %+v", st)
	}
	if n := p.Resize(2 * modelPageSize); n != 6 {
		t.Fatalf("shrink evicted %d, want 6", n)
	}
	if st := p.Stats(); st.Resident != 2 || st.ResidentBytes != 2*modelPageSize {
		t.Fatalf("stats after shrink: %+v", st)
	}
}

func TestUnpinPanics(t *testing.T) {
	for name, fn := range map[string]func(p *Pool){
		"unpin-unknown":  func(p *Pool) { p.Unpin(9) },
		"ready-unknown":  func(p *Pool) { p.Ready(9) },
		"abort-unknown":  func(p *Pool) { p.Abort(9) },
		"double-unpin":   func(p *Pool) { pinReady(t, p, 1); p.Unpin(1); p.Unpin(1) },
		"unpin-loading":  func(p *Pool) { p.Pin(2); p.Unpin(2) },
		"ready-resident": func(p *Pool) { pinReady(t, p, 3); p.Ready(3) },
	} {
		p := mustPool(t, 2, "lru", 0)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: want panic", name)
				} else if !strings.Contains(r.(string), "bufpool") {
					t.Fatalf("%s: unexpected panic %v", name, r)
				}
			}()
			fn(p)
		}()
	}
}

func TestReplacerDirect(t *testing.T) {
	if _, err := NewReplacer("nope", 4, 0); err == nil {
		t.Fatal("want error for unknown replacer")
	}
	for _, policy := range Policies() {
		r, err := NewReplacer(policy, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != policy {
			t.Fatalf("Name() = %q, want %q", r.Name(), policy)
		}
		if _, ok := r.Victim(); ok {
			t.Fatalf("%s: Victim() on empty replacer returned ok", policy)
		}
		r.Remove(99) // no-op on absent pid
		r.Insert(1)
		r.Insert(2)
		r.Insert(1) // duplicate insert is a refresh, not a dup entry
		if r.Len() != 2 {
			t.Fatalf("%s: Len() = %d, want 2", policy, r.Len())
		}
		if got := sortPIDs(r.PIDs()); !equalPIDs(got, []uint64{1, 2}) {
			t.Fatalf("%s: PIDs() = %v", policy, got)
		}
		r.Remove(1)
		v, ok := r.Victim()
		if !ok || v != 2 {
			t.Fatalf("%s: Victim() = %d,%v, want 2,true", policy, v, ok)
		}
		if r.Len() != 0 {
			t.Fatalf("%s: Len() = %d after drain", policy, r.Len())
		}
	}
}

func TestSplitmix64(t *testing.T) {
	if Splitmix64(0) == Splitmix64(1) {
		t.Fatal("Splitmix64 collision on 0/1")
	}
	if Splitmix64(42) != Splitmix64(42) {
		t.Fatal("Splitmix64 not deterministic")
	}
}
