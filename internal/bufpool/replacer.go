package bufpool

import (
	"container/list"
	"fmt"
	"sort"
)

// A Replacer tracks the evictable pages of a Pool — resident pages whose
// refcount is zero — and picks eviction victims. The Pool guarantees that
// Insert is only called for pages not currently tracked and Remove only
// for tracked pages, so implementations may treat violations as they like
// (the built-in policies are defensive). Replacers are not safe for
// concurrent use; the Pool serializes access under its own mutex.
type Replacer interface {
	// Name reports the policy name ("lru", "clock", "2q").
	Name() string
	// Insert marks pid evictable (its refcount just dropped to zero).
	Insert(pid uint64)
	// Remove withdraws pid from the evictable set (it was pinned, or the
	// Pool evicted it without consulting Victim).
	Remove(pid uint64)
	// Victim selects, removes, and returns the next page to evict.
	// ok is false when no page is evictable.
	Victim() (pid uint64, ok bool)
	// Len reports how many pages are currently evictable.
	Len() int
	// PIDs returns the evictable set in unspecified order. It exists so
	// invariant checks and model tests can compare exact sets; it is not
	// on any hot path.
	PIDs() []uint64
}

// Policies lists the selectable replacement policies.
func Policies() []string { return []string{"lru", "clock", "2q"} }

// NewReplacer builds a replacer for the named policy. capacity is the
// pool's page budget at construction time (2Q sizes its ghost list from
// it); seed drives the deterministic tiebreak (CLOCK derives its initial
// hand position from it). An empty policy defaults to "lru".
func NewReplacer(policy string, capacity int, seed int64) (Replacer, error) {
	switch policy {
	case "", "lru":
		return newLRUReplacer(), nil
	case "clock":
		return newClockReplacer(seed), nil
	case "2q":
		return newTwoQReplacer(capacity), nil
	default:
		return nil, fmt.Errorf("bufpool: unknown policy %q (want one of %v)", policy, Policies())
	}
}

// Splitmix64 is the mixing function of the splitmix64 generator. The pool
// uses it to turn the user seed into deterministic tiebreak decisions
// (e.g. CLOCK's initial hand position) without pulling in math/rand state.
func Splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// lruReplacer evicts the least recently unpinned page. Recency is set at
// Insert time: a page re-pinned and later unpinned re-enters at the MRU
// end, so the order is total and needs no tiebreak.
type lruReplacer struct {
	ll  *list.List // front = MRU, back = LRU
	idx map[uint64]*list.Element
}

func newLRUReplacer() *lruReplacer {
	return &lruReplacer{ll: list.New(), idx: make(map[uint64]*list.Element)}
}

func (r *lruReplacer) Name() string { return "lru" }

func (r *lruReplacer) Insert(pid uint64) {
	if e, ok := r.idx[pid]; ok {
		r.ll.MoveToFront(e)
		return
	}
	r.idx[pid] = r.ll.PushFront(pid)
}

func (r *lruReplacer) Remove(pid uint64) {
	if e, ok := r.idx[pid]; ok {
		r.ll.Remove(e)
		delete(r.idx, pid)
	}
}

func (r *lruReplacer) Victim() (uint64, bool) {
	e := r.ll.Back()
	if e == nil {
		return 0, false
	}
	pid := e.Value.(uint64)
	r.ll.Remove(e)
	delete(r.idx, pid)
	return pid, true
}

func (r *lruReplacer) Len() int { return r.ll.Len() }

func (r *lruReplacer) PIDs() []uint64 {
	out := make([]uint64, 0, r.ll.Len())
	for e := r.ll.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(uint64))
	}
	return out
}

// clockReplacer is the classic second-chance sweep: evictable pages sit on
// a ring with a reference bit, the hand clears set bits until it finds a
// clear one. New pages are inserted just behind the hand with the bit set,
// so a full sweep passes every other page first. The initial hand position
// is derived from the pool seed on the first Victim call, which is the
// only nondeterminism CLOCK would otherwise have; after that every
// decision is a pure function of the op sequence.
type clockReplacer struct {
	ring   []clockEntry
	idx    map[uint64]int
	hand   int
	seed   uint64
	seeded bool
}

type clockEntry struct {
	pid uint64
	ref bool
}

func newClockReplacer(seed int64) *clockReplacer {
	return &clockReplacer{idx: make(map[uint64]int), seed: uint64(seed)}
}

func (r *clockReplacer) Name() string { return "clock" }

func (r *clockReplacer) normalize() {
	if len(r.ring) == 0 {
		r.hand = 0
	} else if r.hand >= len(r.ring) || r.hand < 0 {
		r.hand = ((r.hand % len(r.ring)) + len(r.ring)) % len(r.ring)
	}
}

func (r *clockReplacer) Insert(pid uint64) {
	if pos, ok := r.idx[pid]; ok {
		r.ring[pos].ref = true
		return
	}
	pos := r.hand
	if pos > len(r.ring) {
		pos = len(r.ring)
	}
	r.ring = append(r.ring, clockEntry{})
	copy(r.ring[pos+1:], r.ring[pos:])
	r.ring[pos] = clockEntry{pid: pid, ref: true}
	for i := pos; i < len(r.ring); i++ {
		r.idx[r.ring[i].pid] = i
	}
	r.hand = pos + 1
	r.normalize()
}

func (r *clockReplacer) removeAt(pos int) {
	delete(r.idx, r.ring[pos].pid)
	r.ring = append(r.ring[:pos], r.ring[pos+1:]...)
	for i := pos; i < len(r.ring); i++ {
		r.idx[r.ring[i].pid] = i
	}
}

func (r *clockReplacer) Remove(pid uint64) {
	pos, ok := r.idx[pid]
	if !ok {
		return
	}
	if pos < r.hand {
		r.hand--
	}
	r.removeAt(pos)
	r.normalize()
}

func (r *clockReplacer) Victim() (uint64, bool) {
	if len(r.ring) == 0 {
		return 0, false
	}
	if !r.seeded {
		r.hand = int(Splitmix64(r.seed) % uint64(len(r.ring)))
		r.seeded = true
	}
	r.normalize()
	// At most two sweeps: the first clears every set bit, the second must
	// find a clear one.
	for i := 0; i <= 2*len(r.ring); i++ {
		e := &r.ring[r.hand]
		if e.ref {
			e.ref = false
			r.hand = (r.hand + 1) % len(r.ring)
			continue
		}
		pid := e.pid
		r.removeAt(r.hand)
		r.normalize()
		return pid, true
	}
	return 0, false // unreachable
}

func (r *clockReplacer) Len() int { return len(r.ring) }

func (r *clockReplacer) PIDs() []uint64 {
	out := make([]uint64, 0, len(r.ring))
	for _, e := range r.ring {
		out = append(out, e.pid)
	}
	return out
}

// twoQReplacer implements a pragmatic 2Q: first-time pages enter a FIFO
// probation queue (A1in); pages re-admitted after a probation eviction —
// tracked by a bounded ghost list (A1out) — or pages that have ever proven
// hot are kept in an LRU main queue (Am). Victims come from A1in while it
// holds more than a quarter of the evictable set (or Am is empty),
// otherwise from Am's LRU end; an Am eviction forgets the page entirely,
// so it must re-earn its place through probation. Scans churn A1in and
// the ghost list without displacing Am's hot set.
type twoQReplacer struct {
	a1in  *list.List // front = oldest (FIFO head)
	a1idx map[uint64]*list.Element
	am    *list.List // front = MRU
	amIdx map[uint64]*list.Element

	ghost    []uint64 // A1out: pages recently evicted from probation, oldest first
	ghostIdx map[uint64]struct{}
	ghostCap int

	hot map[uint64]struct{} // pages currently entitled to Am on re-insert
}

func newTwoQReplacer(capacity int) *twoQReplacer {
	gc := capacity
	if gc < 16 {
		gc = 16
	}
	return &twoQReplacer{
		a1in:     list.New(),
		a1idx:    make(map[uint64]*list.Element),
		am:       list.New(),
		amIdx:    make(map[uint64]*list.Element),
		ghostIdx: make(map[uint64]struct{}),
		ghostCap: gc,
		hot:      make(map[uint64]struct{}),
	}
}

func (r *twoQReplacer) Name() string { return "2q" }

func (r *twoQReplacer) ghostRemove(pid uint64) {
	if _, ok := r.ghostIdx[pid]; !ok {
		return
	}
	delete(r.ghostIdx, pid)
	for i, g := range r.ghost {
		if g == pid {
			r.ghost = append(r.ghost[:i], r.ghost[i+1:]...)
			break
		}
	}
}

func (r *twoQReplacer) ghostPush(pid uint64) {
	r.ghostRemove(pid)
	r.ghost = append(r.ghost, pid)
	r.ghostIdx[pid] = struct{}{}
	for len(r.ghost) > r.ghostCap {
		old := r.ghost[0]
		r.ghost = r.ghost[1:]
		delete(r.ghostIdx, old)
	}
}

func (r *twoQReplacer) Insert(pid uint64) {
	if e, ok := r.amIdx[pid]; ok {
		r.am.MoveToFront(e)
		return
	}
	if e, ok := r.a1idx[pid]; ok {
		// Already on probation; FIFO position is kept.
		_ = e
		return
	}
	if _, ok := r.hot[pid]; ok {
		r.amIdx[pid] = r.am.PushFront(pid)
		return
	}
	if _, ok := r.ghostIdx[pid]; ok {
		// Re-admitted within the ghost window: promote to the main queue.
		r.ghostRemove(pid)
		r.hot[pid] = struct{}{}
		r.amIdx[pid] = r.am.PushFront(pid)
		return
	}
	r.a1idx[pid] = r.a1in.PushBack(pid)
}

func (r *twoQReplacer) Remove(pid uint64) {
	if e, ok := r.a1idx[pid]; ok {
		r.a1in.Remove(e)
		delete(r.a1idx, pid)
		return
	}
	if e, ok := r.amIdx[pid]; ok {
		r.am.Remove(e)
		delete(r.amIdx, pid)
	}
}

func (r *twoQReplacer) Victim() (uint64, bool) {
	total := r.a1in.Len() + r.am.Len()
	if total == 0 {
		return 0, false
	}
	if r.a1in.Len() > 0 && (r.am.Len() == 0 || r.a1in.Len()*4 > total) {
		e := r.a1in.Front()
		pid := e.Value.(uint64)
		r.a1in.Remove(e)
		delete(r.a1idx, pid)
		r.ghostPush(pid)
		return pid, true
	}
	e := r.am.Back()
	pid := e.Value.(uint64)
	r.am.Remove(e)
	delete(r.amIdx, pid)
	delete(r.hot, pid) // must re-earn Am through probation
	return pid, true
}

func (r *twoQReplacer) Len() int { return r.a1in.Len() + r.am.Len() }

func (r *twoQReplacer) PIDs() []uint64 {
	out := make([]uint64, 0, r.Len())
	for e := r.a1in.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(uint64))
	}
	for e := r.am.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(uint64))
	}
	return out
}

// sortPIDs sorts in place and returns its argument; shared by tests and
// invariant checks that compare sets.
func sortPIDs(pids []uint64) []uint64 {
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
