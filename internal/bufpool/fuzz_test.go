package bufpool

import "testing"

// decodeScript turns fuzz bytes into a (policy, seed, capacity, ops)
// tuple: byte 0 selects the policy, byte 1 the tiebreak seed, byte 2 the
// capacity in pages; the rest decode pairwise into ops. Every byte string
// is a valid script — the harness interprets args modulo current state —
// so the fuzzer can mutate freely.
func decodeScript(data []byte) (policy string, seed int64, capPages int, ops []scriptOp) {
	policies := Policies()
	policy = policies[int(data[0])%len(policies)]
	seed = int64(data[1])
	capPages = int(data[2]%7) + 1
	body := data[3:]
	for i := 0; i+1 < len(body); i += 2 {
		ops = append(ops, scriptOp{kind: int(body[i]) % numOpKinds, arg: uint64(body[i+1])})
	}
	return policy, seed, capPages, ops
}

// FuzzPoolOps cross-checks the pool against the reference oracle on
// fuzzer-generated op scripts. Wired into `make fuzz`.
func FuzzPoolOps(f *testing.F) {
	// Seed corpus: one script per policy exercising pin/unpin/evict,
	// loading holds, aborts, and resizes.
	f.Add([]byte{0, 1, 2, 0, 1, 0, 2, 0, 3, 2, 0, 0, 4, 3, 1, 5, 2, 2, 0})
	f.Add([]byte{1, 42, 1, 0, 7, 0, 8, 2, 0, 0, 9, 3, 0, 0, 7, 2, 1})
	f.Add([]byte{2, 9, 3, 0, 1, 0, 2, 0, 3, 0, 4, 2, 0, 2, 0, 0, 1, 0, 2, 4, 5, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		policy, seed, capPages, ops := decodeScript(data)
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		if err := runScript(policy, seed, capPages, ops); err != nil {
			t.Fatalf("policy %s seed %d cap %d: %v", policy, seed, capPages, err)
		}
	})
}
