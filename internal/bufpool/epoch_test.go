package bufpool

import "testing"

func newEpochPool(t *testing.T, pages int) *Pool {
	t.Helper()
	p, err := New(Config{PageSize: 1, Bytes: int64(pages)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func check(t *testing.T, p *Pool) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceEpochEvictsUnpinned(t *testing.T) {
	p := newEpochPool(t, 8)
	for pid := uint64(0); pid < 4; pid++ {
		if st := p.Pin(pid); st != Load {
			t.Fatalf("Pin(%d) = %v, want Load", pid, st)
		}
		p.Ready(pid)
		p.Unpin(pid)
	}
	check(t, p)
	if n := p.AdvanceEpoch(); n != 4 {
		t.Fatalf("AdvanceEpoch evicted %d, want 4", n)
	}
	check(t, p)
	st := p.Stats()
	if st.Resident != 0 || st.Invalidations != 4 || st.Epoch != 1 {
		t.Fatalf("stats after advance = %+v", st)
	}
	// The next pin of an evicted page is a fresh load at the new epoch.
	if got := p.Pin(2); got != Load {
		t.Fatalf("Pin after advance = %v, want Load", got)
	}
	p.Ready(2)
	if got := p.Pin(2); got != Hit {
		t.Fatalf("repin at current epoch = %v, want Hit", got)
	}
	p.Unpin(2)
	p.Unpin(2)
	check(t, p)
}

func TestAdvanceEpochStalePinnedFrame(t *testing.T) {
	p := newEpochPool(t, 8)
	if st := p.Pin(7); st != Load {
		t.Fatalf("Pin = %v, want Load", st)
	}
	p.Ready(7)
	// Reader still holds page 7 across the mutation.
	if n := p.AdvanceEpoch(); n != 0 {
		t.Fatalf("AdvanceEpoch evicted %d pinned frames", n)
	}
	check(t, p)
	// New readers must not be served the stale bytes: Pin bypasses.
	if st := p.Pin(7); st != Busy {
		t.Fatalf("Pin of stale pinned page = %v, want Busy", st)
	}
	// The old reader's final Unpin discards the frame instead of making it
	// evictable.
	p.Unpin(7)
	check(t, p)
	st := p.Stats()
	if st.Resident != 0 || st.Invalidations != 1 {
		t.Fatalf("stats after stale unpin = %+v", st)
	}
	if got := p.Pin(7); got != Load {
		t.Fatalf("Pin after stale discard = %v, want Load", got)
	}
	p.Abort(7)
	check(t, p)
}

func TestAdvanceEpochDuringLoad(t *testing.T) {
	p := newEpochPool(t, 4)
	if st := p.Pin(3); st != Load {
		t.Fatalf("Pin = %v, want Load", st)
	}
	p.AdvanceEpoch()
	check(t, p)
	// The in-flight load belongs to the old epoch: Ready keeps the holder's
	// pin valid, but the frame dies at Unpin and never serves a hit.
	p.Ready(3)
	if st := p.Pin(3); st != Busy {
		t.Fatalf("Pin of stale loaded page = %v, want Busy", st)
	}
	p.Unpin(3)
	check(t, p)
	if st := p.Stats(); st.Resident != 0 {
		t.Fatalf("stale frame survived its final unpin: %+v", st)
	}
}
