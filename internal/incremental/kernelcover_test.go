package incremental_test

import (
	"math"
	"path/filepath"
	"testing"

	gts "repro"
	"repro/internal/bitset"
	"repro/internal/csr"
	"repro/internal/incremental"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// buildLPSpec writes a two-hub graph whose hub adjacencies overflow the
// small-page capacity, so the build emits large-page runs. Hub A (vertex 0)
// anchors the BFS-reachable cluster; hub B (vertex 1600) anchors a second
// cluster that is unreachable from the source until a bridge edge lands.
func buildLPSpec(t testing.TB) string {
	t.Helper()
	const n = 3200
	var edges []csr.Edge
	for i := uint32(1); i <= 1400; i++ {
		edges = append(edges, csr.Edge{Src: 0, Dst: i})
	}
	edges = append(edges, csr.Edge{Src: 1, Dst: 2}, csr.Edge{Src: 2, Dst: 3})
	for i := uint32(1601); i <= 3000; i++ {
		edges = append(edges, csr.Edge{Src: 1600, Dst: i})
	}
	g, err := gts.BuildGraph(csr.MustFromEdges(n, edges), gts.ScaledPageConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "star.gts")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLargePageDeltaExpansion runs the full differential check on a graph
// with large-page vertices: a bridge insert pulls hub B onto every
// kernel's frontier, so the LP streaming paths (RunLP at one worker,
// GatherLP under the parallel gather) execute for all three algorithms.
func TestLargePageDeltaExpansion(t *testing.T) {
	spec := buildLPSpec(t)
	h := newHarness(t, spec)
	g0 := h.mg.Snapshot()
	if lp := kernels.LPDegrees(g0); len(lp) < 2 {
		t.Fatalf("expected both hubs as large vertices, got %v", lp)
	}
	o := computeOracle(t, g0, 8, nil)
	h.capture(t, o)

	if _, err := h.mg.Ingest([]gts.EdgeOp{{Src: 1, Dst: 1600}}); err != nil {
		t.Fatal(err)
	}
	g := h.mg.Snapshot()
	want := computeOracle(t, g, 8, nil)

	for _, workers := range differentialWorkers {
		prior, delta, ok := h.st.Lookup("bfs")
		if !ok {
			t.Fatal("bfs entry not replayable")
		}
		kb, reason := incremental.PlanBFS(g, prior, delta)
		if reason != "" {
			t.Fatalf("bfs fallback %q on insert-only bridge", reason)
		}
		st, _ := runKernel(t, g, kb, bfsSource, workers, nil)
		if i := cmpLevels(want.levels, kb.Levels(st)); i >= 0 {
			t.Fatalf("bfs diverges at vertex %d (workers=%d)", i, workers)
		}

		prior, delta, ok = h.st.Lookup("cc")
		if !ok {
			t.Fatal("cc entry not replayable")
		}
		kc, reason := incremental.PlanCC(g, prior, delta)
		if reason != "" {
			t.Fatalf("cc fallback %q on insert-only bridge", reason)
		}
		st, _ = runKernel(t, g, kc, 0, workers, nil)
		if i := cmpLabels(want.labels, kc.Components(st)); i >= 0 {
			t.Fatalf("cc diverges at vertex %d (workers=%d)", i, workers)
		}

		prior, delta, ok = h.st.Lookup("pagerank")
		if !ok {
			t.Fatal("pagerank entry not replayable")
		}
		kp, reason := incremental.PlanPageRank(g, prior, delta, prDamping, prIters)
		if reason != "" {
			t.Fatalf("pagerank fallback %q on insert-only bridge", reason)
		}
		st, _ = runKernel(t, g, kp, 0, workers, nil)
		if i := cmpRanks(want.ranks, kp.Ranks(st)); i >= 0 {
			t.Fatalf("pagerank diverges at vertex %d (workers=%d)", i, workers)
		}
	}
}

// planFixpoint plans all three kernels from a clean fixpoint with an empty
// delta, failing the test on any fallback.
func planFixpoint(t testing.TB, g *gts.Graph, o *oracle) (*incremental.IncBFS, *incremental.IncCC, *incremental.IncPR) {
	t.Helper()
	kb, r := incremental.PlanBFS(g, &incremental.Entry{Kind: incremental.KindBFS,
		Source: bfsSource, Levels: o.levels}, incremental.Delta{})
	if r != "" {
		t.Fatalf("bfs plan: %q", r)
	}
	kc, r := incremental.PlanCC(g, &incremental.Entry{Kind: incremental.KindCC,
		Labels: o.labels}, incremental.Delta{})
	if r != "" {
		t.Fatalf("cc plan: %q", r)
	}
	kp, r := incremental.PlanPageRank(g, &incremental.Entry{Kind: incremental.KindPageRank,
		Traj: o.traj, Damping: prDamping, Iterations: prIters}, incremental.Delta{}, prDamping, prIters)
	if r != "" {
		t.Fatalf("pagerank plan: %q", r)
	}
	return kb, kc, kp
}

// TestKernelSurface pins the parts of the Kernel contract the engine only
// exercises in specific configurations: state cloning, multi-replica
// merges, the deferred-apply re-test, and the metadata accessors.
func TestKernelSurface(t *testing.T) {
	g := openBase(t)
	o := computeOracle(t, g, 1, nil)
	kb, kc, kp := planFixpoint(t, g, o)

	for _, k := range []gts.Kernel{kb, kc, kp} {
		if k.Name() == "" {
			t.Fatal("empty kernel name")
		}
		if k.Class() != kernels.BFSLike {
			t.Fatalf("%s: incremental kernels must be frontier-class", k.Name())
		}
		if k.RAPerVertex() != 0 {
			t.Fatalf("%s: unexpected RA vector", k.Name())
		}
		k.BeginLevel(nil, 0)
		if k.EndIteration(nil, true) {
			t.Fatalf("%s: EndIteration must defer termination to the planner", k.Name())
		}
		st := k.NewState()
		if st.RABytes() != 0 || st.WABytes() == 0 {
			t.Fatalf("%s: state byte accounting (RA=%d WA=%d)", k.Name(), st.RABytes(), st.WABytes())
		}
	}

	// Clone independence, observed through the result accessors.
	st := kb.NewState()
	kb.Init(st, bfsSource)
	clone := st.Clone()
	kb.Levels(st)[0] = 99
	if kb.Levels(clone)[0] == 99 {
		t.Fatal("bfs clone aliases its parent's levels")
	}
	cs := kc.NewState()
	kc.Init(cs, 0)
	cclone := cs.Clone()
	kc.Components(cs)[0] = 99
	if kc.Components(cclone)[0] == 99 {
		t.Fatal("cc clone aliases its parent's labels")
	}

	// BFS replicas merge by minimum level with unvisited as the identity.
	a, b := kb.NewState(), kb.NewState()
	la, lb := kb.Levels(a), kb.Levels(b)
	for i := range la {
		la[i], lb[i] = unvisitedLevel, unvisitedLevel
	}
	la[1], lb[1] = 5, 3
	la[2], lb[2] = unvisitedLevel, 7
	la[3], lb[3] = 2, unvisitedLevel
	kb.MergeStates([]kernels.State{a, b})
	if la[1] != 3 || la[2] != 7 || la[3] != 2 {
		t.Fatalf("bfs merge: got (%d,%d,%d), want (3,7,2)", la[1], la[2], la[3])
	}
	if i := cmpLevels(la, lb); i >= 0 {
		t.Fatalf("bfs merge left replicas diverged at %d", i)
	}
	kb.MergeStates([]kernels.State{a}) // single replica: no-op

	// CC replicas merge by minimum label.
	ca, cb := kc.NewState(), kc.NewState()
	for i := range kc.Components(ca) {
		kc.Components(ca)[i] = uint32(i)
		kc.Components(cb)[i] = uint32(i)
	}
	kc.Components(ca)[4] = 1
	kc.Components(cb)[5] = 2
	kc.MergeStates([]kernels.State{ca, cb})
	if kc.Components(ca)[4] != 1 || kc.Components(ca)[5] != 2 {
		t.Fatal("cc merge lost a lowered label")
	}
	if i := cmpLabels(kc.Components(ca), kc.Components(cb)); i >= 0 {
		t.Fatalf("cc merge left replicas diverged at %d", i)
	}
	kc.MergeStates([]kernels.State{ca})

	// PR replicas only ever exist singly (the service gates multi-GPU);
	// the merge's copy semantics just have to hold together.
	pa, pb := kp.NewState(), kp.NewState()
	kp.Init(pa, 0)
	kp.MergeStates([]kernels.State{pa, pb, pb.Clone()})
	kp.MergeStates([]kernels.State{pa})

	// Deferred apply re-tests each op: a superseded (higher) BFS level and
	// a superseded (higher) CC label must not overwrite the better value.
	kb.Init(st, bfsSource)
	lv := kb.Levels(st)
	lv[1] = unvisitedLevel
	var d kernels.Deferred
	d.Push(kernels.Op{Idx: 1, Val: uint64(uint16(3))})
	d.Push(kernels.Op{Idx: 1, Val: uint64(uint16(7))})
	var res kernels.Result
	kb.Apply(&kernels.Args{State: st}, &d, &res)
	if lv[1] != 3 || res.Updates != 1 {
		t.Fatalf("bfs apply: level %d after %d updates, want 3 after 1", lv[1], res.Updates)
	}

	kc.Init(cs, 0)
	labels := kc.Components(cs)
	labels[2] = 50
	d.Reset()
	d.Push(kernels.Op{Idx: 2, Val: 40})
	d.Push(kernels.Op{Idx: 2, Val: 45})
	res = kernels.Result{}
	kc.Apply(&kernels.Args{State: cs}, &d, &res)
	if labels[2] != 40 || res.Updates != 1 {
		t.Fatalf("cc apply: label %d after %d updates, want 40 after 1", labels[2], res.Updates)
	}

	ps := kp.NewState()
	d.Reset()
	d.Push(kernels.Op{Idx: 0, Val: uint64(math.Float32bits(0.25))})
	res = kernels.Result{}
	kp.Apply(&kernels.Args{State: ps}, &d, &res)
	if res.Updates != 1 {
		t.Fatalf("pagerank apply: %d updates, want 1", res.Updates)
	}
}

// TestEmptyDeltaTrajectory checks that an empty-delta PageRank run reuses
// the retained trajectory verbatim: every level of Trajectory() must be
// bitwise-equal to the prior entry's, making re-capture after a no-op
// requery free.
func TestEmptyDeltaTrajectory(t *testing.T) {
	g := openBase(t)
	o := computeOracle(t, g, 1, nil)
	_, _, kp := planFixpoint(t, g, o)
	st, m := runKernel(t, g, kp, 0, 1, nil)
	if m.PagesStreamed != 0 {
		t.Fatalf("empty delta streamed %d pages", m.PagesStreamed)
	}
	if i := cmpRanks(o.ranks, kp.Ranks(st)); i >= 0 {
		t.Fatalf("ranks diverge at vertex %d", i)
	}
	traj := kp.Trajectory()
	if len(traj) != prIters+1 {
		t.Fatalf("trajectory has %d levels, want %d", len(traj), prIters+1)
	}
	for lvl := range traj {
		if i := cmpRanks(o.traj[lvl], traj[lvl]); i >= 0 {
			t.Fatalf("trajectory level %d diverges at vertex %d", lvl, i)
		}
	}
}

// TestOwnershipBounds drives each kernel's page function directly with an
// empty owned range, the strategy-S configuration where another GPU owns
// every attribute entry: no update may land.
func TestOwnershipBounds(t *testing.T) {
	g := openBase(t)
	o := computeOracle(t, g, 1, nil)
	n := g.NumVertices()

	// A fabricated stale entry plus an op over an existing edge gives each
	// planner a genuine seed, so PlanLevel marks real pages.
	var dst uint64
	foundDst := false
	g.NeighborsOf(0, func(v uint64) {
		if !foundDst && v != 0 {
			dst, foundDst = v, true
		}
	})
	if !foundDst {
		t.Skip("vertex 0 has no out-edges in the test graph")
	}
	op := gts.EdgeOp{Src: 0, Dst: dst}
	delta := incremental.Delta{Ops: []gts.EdgeOp{op}, OldNumVertices: n,
		OldAdj: map[uint64][]uint64{0: nil}}

	staleLv := append([]int16(nil), o.levels...)
	staleLv[dst] = unvisitedLevel
	kb, r := incremental.PlanBFS(g, &incremental.Entry{Kind: incremental.KindBFS,
		Source: bfsSource, Levels: staleLv}, delta)
	if r != "" || kb.Seeds == 0 {
		t.Fatalf("bfs plan: reason %q, %d seeds", r, kb.Seeds)
	}
	staleLb := append([]uint32(nil), o.labels...)
	staleLb[dst] = uint32(dst)
	if staleLb[0] >= staleLb[dst] {
		t.Fatalf("label fixture needs labels[0] < %d", dst)
	}
	kc, r := incremental.PlanCC(g, &incremental.Entry{Kind: incremental.KindCC,
		Labels: staleLb}, delta)
	if r != "" || kc.Seeds == 0 {
		t.Fatalf("cc plan: reason %q, %d seeds", r, kc.Seeds)
	}
	kp, r := incremental.PlanPageRank(g, &incremental.Entry{Kind: incremental.KindPageRank,
		Traj: o.traj, Damping: prDamping, Iterations: prIters}, delta, prDamping, prIters)
	if r != "" || kp.Seeds == 0 {
		t.Fatalf("pagerank plan: reason %q, %d seeds", r, kp.Seeds)
	}

	run := func(name string, k gts.Kernel) {
		st := k.NewState()
		k.Init(st, bfsSource)
		next := bitset.New(g.NumPages())
		if dir := k.(kernels.FrontierKernel).PlanLevel([]kernels.State{st}, 0, next); dir != kernels.DirPush {
			t.Fatalf("%s: PlanLevel direction %v with live seeds", name, dir)
		}
		updates := int64(0)
		next.ForEach(func(i int) {
			pid := slottedpage.PageID(i)
			args := kernels.Args{Graph: g, PID: pid, Page: g.Page(pid), State: st,
				OwnedLo: 0, OwnedHi: 0}
			var res kernels.Result
			if g.Kind(pid) == slottedpage.LargePage {
				res = k.RunLP(&args)
			} else {
				res = k.RunSP(&args)
			}
			updates += res.Updates
		})
		if updates != 0 {
			t.Fatalf("%s: %d updates landed outside the owned range", name, updates)
		}
	}
	run("bfs", kb)
	run("cc", kc)
	run("pagerank", kp)
}

// TestPlannerShapeFallbacks pins the remaining invalidation-matrix rows:
// retained state over more vertices than the graph, and a delta whose
// pre-image vertex count disagrees with the current graph.
func TestPlannerShapeFallbacks(t *testing.T) {
	g := openBase(t)
	n := g.NumVertices()
	longLv := make([]int16, n+1)
	if _, r := incremental.PlanBFS(g, &incremental.Entry{Kind: incremental.KindBFS,
		Levels: longLv}, incremental.Delta{}); r != "vertex-shrink" {
		t.Fatalf("bfs shrink reason = %q", r)
	}
	longLb := make([]uint32, n+1)
	if _, r := incremental.PlanCC(g, &incremental.Entry{Kind: incremental.KindCC,
		Labels: longLb}, incremental.Delta{}); r != "vertex-shrink" {
		t.Fatalf("cc shrink reason = %q", r)
	}
	if _, r := incremental.PlanPageRank(g, &incremental.Entry{Kind: incremental.KindCC},
		incremental.Delta{}, prDamping, prIters); r != "wrong-kind" {
		t.Fatalf("pagerank wrong-kind reason = %q", r)
	}
	traj := make([][]float32, prIters+1)
	for i := range traj {
		traj[i] = make([]float32, n)
	}
	grown := incremental.Delta{Ops: []gts.EdgeOp{{Src: 1, Dst: 2}}, OldNumVertices: n - 1}
	if _, r := incremental.PlanPageRank(g, &incremental.Entry{Kind: incremental.KindPageRank,
		Traj: traj, Damping: prDamping, Iterations: prIters}, grown, prDamping, prIters); r != "vertex-growth" {
		t.Fatalf("pagerank growth reason = %q", r)
	}
}
