package incremental_test

import (
	"testing"

	gts "repro"
	"repro/internal/incremental"
	"repro/internal/slottedpage"
)

// decodeFuzzOps turns a fuzz byte stream into an edge-op script: three
// bytes per op (flags, src, dst). Bit 0 of the flags selects delete; bit 1
// lets the op address a handful of vertices past the base graph, so the
// corpus reaches the vertex-growth planner paths. Deleting an absent edge
// is a legal no-op, so every decoded script is applyable.
func decodeFuzzOps(data []byte, n uint64) []gts.EdgeOp {
	const maxOps = 48
	var ops []gts.EdgeOp
	for i := 0; i+2 < len(data) && len(ops) < maxOps; i += 3 {
		m := n
		if data[i]&2 != 0 {
			m = n + 4
		}
		ops = append(ops, gts.EdgeOp{
			Del: data[i]&1 != 0,
			Src: uint64(data[i+1]) % m,
			Dst: uint64(data[i+2]) % m,
		})
	}
	return ops
}

// FuzzDeltaExpand feeds adversarial edge batches through the retained-state
// store and the delta-expansion planners, holding every accepted plan to
// the byte-identical-to-full-recompute contract. Delete-heavy inputs drive
// the fallback matrix (any CC delete, tight BFS deletes); the planner must
// either refuse with a reason or match the oracle exactly.
func FuzzDeltaExpand(f *testing.F) {
	base := openBase(f)
	n := base.NumVertices()
	o := computeOracle(f, base, 1, nil)

	f.Add([]byte{})                                   // empty: requery at the same epoch
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0, 5, 6})          // insert-only
	f.Add([]byte{1, 0, 1, 1, 0, 2, 1, 1, 2, 1, 2, 3}) // delete-heavy
	f.Add([]byte{0, 1, 2, 1, 1, 2, 0, 2, 9, 1, 4, 5}) // insert-then-delete churn
	f.Add([]byte{2, 200, 10, 2, 10, 250, 0, 0, 7})    // growth past the base vertex count

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data, n)
		mut := slottedpage.NewMutable(base)
		st := incremental.NewStore(0)
		st.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: 0,
			Source: bfsSource, Levels: o.levels})
		st.Capture("cc", &incremental.Entry{Kind: incremental.KindCC, Epoch: 0,
			Labels: o.labels})
		st.Capture("pagerank", &incremental.Entry{Kind: incremental.KindPageRank, Epoch: 0,
			Traj: o.traj, Damping: prDamping, Iterations: prIters})

		epoch := uint64(0)
		for len(ops) > 0 {
			batch := ops
			if len(batch) > 8 {
				batch = batch[:8]
			}
			ops = ops[len(batch):]
			old := mut.Snapshot()
			if _, err := mut.ApplyBatch(batch); err != nil {
				t.Fatalf("batch rejected: %v", err)
			}
			st.Commit(epoch, epoch+1, batch, old)
			epoch++
		}
		g := mut.Snapshot()
		want := computeOracle(t, g, 1, nil)

		if prior, delta, ok := st.Lookup("bfs"); ok {
			if k, reason := incremental.PlanBFS(g, prior, delta); reason == "" {
				res, _ := runKernel(t, g, k, bfsSource, 1, nil)
				if i := cmpLevels(want.levels, k.Levels(res)); i >= 0 {
					t.Fatalf("bfs diverges at vertex %d for ops %v", i, decodeFuzzOps(data, n))
				}
			}
		}
		if prior, delta, ok := st.Lookup("cc"); ok {
			if k, reason := incremental.PlanCC(g, prior, delta); reason == "" {
				res, _ := runKernel(t, g, k, 0, 1, nil)
				if i := cmpLabels(want.labels, k.Components(res)); i >= 0 {
					t.Fatalf("cc diverges at vertex %d for ops %v", i, decodeFuzzOps(data, n))
				}
			}
		}
		if prior, delta, ok := st.Lookup("pagerank"); ok {
			if k, reason := incremental.PlanPageRank(g, prior, delta, prDamping, prIters); reason == "" {
				res, _ := runKernel(t, g, k, 0, 1, nil)
				if i := cmpRanks(want.ranks, k.Ranks(res)); i >= 0 {
					t.Fatalf("pagerank diverges at vertex %d for ops %v", i, decodeFuzzOps(data, n))
				}
			}
		}
	})
}
