package incremental_test

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	gts "repro"
	"repro/internal/incremental"
	"repro/internal/kernels"
)

const (
	testSpec  = "RMAT27@20" // 2^7 = 128 vertices, 4 KiB pages
	prDamping = 0.85
	prIters   = 10
	bfsSource = uint64(0)
)

// differentialWorkers is the HostWorkers sweep every incremental run is
// checked at: serialized and racy-parallel must both be byte-identical to
// the oracle.
var differentialWorkers = []int{1, 8}

// chaosPlan is the fault plan the faulted differential lane runs under.
func chaosPlan() *gts.FaultPlan {
	return &gts.FaultPlan{Seed: 7, TransferErrorRate: 0.05, TransferStallRate: 0.05,
		StorageErrorRate: 0.05, CorruptionRate: 0.05}
}

// harness couples a mutable graph with a retained-state store wired the
// way the service wires them: every ingest commit extends the store's
// chain with the batch and its pre-image adjacency.
type harness struct {
	mg *gts.MutableGraph
	st *incremental.Store
}

func newHarness(t testing.TB, spec string) *harness {
	t.Helper()
	mg, err := gts.OpenMutable(spec, filepath.Join(t.TempDir(), "g.wal"), gts.MutableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mg.Close() })
	st := incremental.NewStore(mg.Epoch())
	mg.OnCommitOps(func(prev, epoch uint64, ops []gts.EdgeOp, old, _ *gts.Graph) {
		st.Commit(prev, epoch, ops, old)
	})
	return &harness{mg: mg, st: st}
}

func runKernel(t testing.TB, g *gts.Graph, k gts.Kernel, source uint64, workers int, faults *gts.FaultPlan) (gts.KernelState, gts.Metrics) {
	t.Helper()
	sys, err := gts.NewSystem(g, gts.Config{HostWorkers: workers, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	st, m, err := sys.RunKernel(k, source)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// oracle is one epoch's from-scratch truth for all three algorithms.
type oracle struct {
	levels   []int16
	labels   []uint32
	ranks    []float32
	traj     [][]float32
	bfsPages int64
	ccPages  int64
	prPages  int64
}

func computeOracle(t testing.TB, g *gts.Graph, workers int, faults *gts.FaultPlan) *oracle {
	t.Helper()
	var o oracle
	bk := kernels.NewBFS(g)
	st, m := runKernel(t, g, bk, bfsSource, workers, faults)
	o.levels = append([]int16(nil), bk.Levels(st)...)
	o.bfsPages = m.PagesStreamed
	ck := kernels.NewCC(g)
	st, m = runKernel(t, g, ck, 0, workers, faults)
	o.labels = append([]uint32(nil), ck.Components(st)...)
	o.ccPages = m.PagesStreamed
	pk := incremental.NewRecordingPageRank(g, prDamping, prIters)
	st, m = runKernel(t, g, pk, 0, workers, faults)
	o.ranks = append([]float32(nil), pk.Ranks(st)...)
	o.traj = pk.Traj
	o.prPages = m.PagesStreamed
	return &o
}

// capture retains the oracle's state in the store at the current epoch,
// exactly what the service does after a full run.
func (h *harness) capture(t testing.TB, o *oracle) {
	t.Helper()
	epoch := h.mg.Epoch()
	if !h.st.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: epoch,
		Source: bfsSource, Levels: o.levels, FullPages: o.bfsPages}) {
		t.Fatalf("bfs capture rejected at epoch %d", epoch)
	}
	if !h.st.Capture("cc", &incremental.Entry{Kind: incremental.KindCC, Epoch: epoch,
		Labels: o.labels, FullPages: o.ccPages}) {
		t.Fatalf("cc capture rejected at epoch %d", epoch)
	}
	if !h.st.Capture("pagerank", &incremental.Entry{Kind: incremental.KindPageRank, Epoch: epoch,
		Traj: o.traj, Damping: prDamping, Iterations: prIters, FullPages: o.prPages}) {
		t.Fatalf("pagerank capture rejected at epoch %d", epoch)
	}
}

func cmpLevels(a, b []int16) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func cmpLabels(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func cmpRanks(a, b []float32) int {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

// script is a deterministic ingest sequence against a base spec.
type script struct {
	spec    string
	batches [][]gts.EdgeOp
}

// tally counts per-algorithm incremental outcomes across a replay.
type tally struct{ hits, fallbacks map[string]int }

func newTally() *tally {
	return &tally{hits: make(map[string]int), fallbacks: make(map[string]int)}
}

// replayCheck replays sc on a fresh harness and verifies, after every
// batch, that every plannable incremental run is byte-identical to the
// from-scratch oracle at every worker count. It returns "" on full
// equivalence or a description of the first divergence (engine errors
// still fail t directly). State is captured from the oracle after each
// epoch, so each incremental run spans exactly one commit unless
// captureEvery > 1.
func replayCheck(t testing.TB, sc script, faults *gts.FaultPlan, captureEvery int, tl *tally) string {
	t.Helper()
	if captureEvery <= 0 {
		captureEvery = 1
	}
	if tl == nil {
		tl = newTally()
	}
	h := newHarness(t, sc.spec)
	o := computeOracle(t, h.mg.Snapshot(), 8, faults)
	h.capture(t, o)

	for bi, ops := range sc.batches {
		if _, err := h.mg.Ingest(ops); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		snap := h.mg.Snapshot()
		o = computeOracle(t, snap, 8, faults)

		if prior, delta, ok := h.st.Lookup("bfs"); ok {
			if _, reason := incremental.PlanBFS(snap, prior, delta); reason != "" {
				tl.fallbacks["bfs"]++
			} else {
				tl.hits["bfs"]++
				for _, w := range differentialWorkers {
					k, _ := incremental.PlanBFS(snap, prior, delta)
					st, _ := runKernel(t, snap, k, bfsSource, w, faults)
					if i := cmpLevels(o.levels, k.Levels(st)); i >= 0 {
						return fmt.Sprintf("batch %d: bfs diverges at vertex %d (workers=%d): full=%d inc=%d",
							bi, i, w, o.levels[i], k.Levels(st)[i])
					}
				}
			}
		}
		if prior, delta, ok := h.st.Lookup("cc"); ok {
			if _, reason := incremental.PlanCC(snap, prior, delta); reason != "" {
				tl.fallbacks["cc"]++
			} else {
				tl.hits["cc"]++
				for _, w := range differentialWorkers {
					k, _ := incremental.PlanCC(snap, prior, delta)
					st, _ := runKernel(t, snap, k, 0, w, faults)
					if i := cmpLabels(o.labels, k.Components(st)); i >= 0 {
						return fmt.Sprintf("batch %d: cc diverges at vertex %d (workers=%d): full=%d inc=%d",
							bi, i, w, o.labels[i], k.Components(st)[i])
					}
				}
			}
		}
		if prior, delta, ok := h.st.Lookup("pagerank"); ok {
			if _, reason := incremental.PlanPageRank(snap, prior, delta, prDamping, prIters); reason != "" {
				tl.fallbacks["pagerank"]++
			} else {
				tl.hits["pagerank"]++
				for _, w := range differentialWorkers {
					k, _ := incremental.PlanPageRank(snap, prior, delta, prDamping, prIters)
					st, _ := runKernel(t, snap, k, 0, w, faults)
					if i := cmpRanks(o.ranks, k.Ranks(st)); i >= 0 {
						return fmt.Sprintf("batch %d: pagerank diverges at vertex %d (workers=%d): full=%x inc=%x",
							bi, i, w, math.Float32bits(o.ranks[i]), math.Float32bits(k.Ranks(st)[i]))
					}
				}
			}
		}
		if (bi+1)%captureEvery == 0 {
			h.capture(t, o)
		}
	}
	return ""
}

// edgeModel shadows the graph's edge multiset so scripts can delete edges
// that actually exist.
type edgeModel struct {
	n     uint64
	edges [][2]uint64
}

func newEdgeModel(t testing.TB, spec string) *edgeModel {
	t.Helper()
	g, err := gts.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := &edgeModel{n: g.NumVertices()}
	for v := uint64(0); v < g.NumVertices(); v++ {
		g.NeighborsOf(v, func(dst uint64) { m.edges = append(m.edges, [2]uint64{v, dst}) })
	}
	return m
}

func (m *edgeModel) apply(op gts.EdgeOp) {
	if op.Del {
		kept := m.edges[:0]
		for _, e := range m.edges {
			if e[0] != op.Src || e[1] != op.Dst {
				kept = append(kept, e)
			}
		}
		m.edges = kept
		return
	}
	m.edges = append(m.edges, [2]uint64{op.Src, op.Dst})
	if op.Src >= m.n {
		m.n = op.Src + 1
	}
	if op.Dst >= m.n {
		m.n = op.Dst + 1
	}
}

// genScript builds a deterministic randomized ingest script: batches of
// inserts and (existing-edge) deletes, optionally growing the vertex set.
func genScript(t testing.TB, spec string, seed int64, batches, opsPerBatch int, delFrac, growFrac float64) script {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	model := newEdgeModel(t, spec)
	sc := script{spec: spec}
	for b := 0; b < batches; b++ {
		var ops []gts.EdgeOp
		for i := 0; i < opsPerBatch; i++ {
			var op gts.EdgeOp
			switch {
			case r.Float64() < delFrac && len(model.edges) > 0:
				e := model.edges[r.Intn(len(model.edges))]
				op = gts.EdgeOp{Del: true, Src: e[0], Dst: e[1]}
			case r.Float64() < growFrac:
				op = gts.EdgeOp{Src: uint64(r.Int63n(int64(model.n))), Dst: model.n}
			default:
				op = gts.EdgeOp{Src: uint64(r.Int63n(int64(model.n))), Dst: uint64(r.Int63n(int64(model.n)))}
			}
			model.apply(op)
			ops = append(ops, op)
		}
		sc.batches = append(sc.batches, ops)
	}
	return sc
}

// TestDifferentialRandomScripts is the equivalence suite: randomized
// ingest scripts, incremental vs from-scratch for BFS/CC/PageRank, at
// HostWorkers 1 and 8, clean and fault-injected. A divergence is
// delta-debugged down to a minimal failing script before reporting.
func TestDifferentialRandomScripts(t *testing.T) {
	cases := []struct {
		name             string
		seed             int64
		delFrac, grow    float64
		faults           *gts.FaultPlan
		captureEvery     int
		wantHits         []string // algos that must hit at least once
		wantFallbacks    []string // algos that must fall back at least once
		batches, perSize int
	}{
		{name: "clean-insert-only", seed: 1, delFrac: 0, grow: 0, captureEvery: 1,
			wantHits: []string{"bfs", "cc", "pagerank"}, batches: 5, perSize: 8},
		{name: "clean-mixed-deletes", seed: 2, delFrac: 0.4, grow: 0, captureEvery: 1,
			wantHits: []string{"pagerank"}, wantFallbacks: []string{"cc"}, batches: 5, perSize: 8},
		{name: "clean-growth", seed: 3, delFrac: 0.2, grow: 0.3, captureEvery: 1,
			wantFallbacks: []string{"pagerank"}, batches: 4, perSize: 6},
		{name: "clean-multi-commit-delta", seed: 4, delFrac: 0, grow: 0, captureEvery: 2,
			wantHits: []string{"bfs", "cc", "pagerank"}, batches: 6, perSize: 5},
		{name: "faulted-insert-only", seed: 5, delFrac: 0, grow: 0, faults: chaosPlan(), captureEvery: 1,
			wantHits: []string{"bfs", "cc", "pagerank"}, batches: 3, perSize: 8},
		{name: "faulted-mixed", seed: 6, delFrac: 0.4, grow: 0.1, faults: chaosPlan(), captureEvery: 1,
			batches: 3, perSize: 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc := genScript(t, testSpec, tc.seed, tc.batches, tc.perSize, tc.delFrac, tc.grow)
			tl := newTally()
			if diag := replayCheck(t, sc, tc.faults, tc.captureEvery, tl); diag != "" {
				min := minimizeScript(sc, func(cand script) bool {
					return replayCheck(t, cand, tc.faults, tc.captureEvery, nil) != ""
				})
				t.Fatalf("divergence: %s\nminimized script (%d batches): %v", diag, len(min.batches), min.batches)
			}
			for _, algo := range tc.wantHits {
				if tl.hits[algo] == 0 {
					t.Errorf("expected at least one %s incremental hit, got none (fallbacks=%d)", algo, tl.fallbacks[algo])
				}
			}
			for _, algo := range tc.wantFallbacks {
				if tl.fallbacks[algo] == 0 {
					t.Errorf("expected at least one %s fallback, got none (hits=%d)", algo, tl.hits[algo])
				}
			}
		})
	}
}

// TestSameEpochRequery proves the trivial delta: a retained entry at the
// current epoch replans to a run that streams zero topology pages and
// reproduces the retained answer bitwise.
func TestSameEpochRequery(t *testing.T) {
	h := newHarness(t, testSpec)
	if _, err := h.mg.Ingest([]gts.EdgeOp{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	snap := h.mg.Snapshot()
	o := computeOracle(t, snap, 8, nil)
	h.capture(t, o)

	for _, w := range differentialWorkers {
		prior, delta, ok := h.st.Lookup("bfs")
		if !ok {
			t.Fatal("bfs entry missing")
		}
		k, reason := incremental.PlanBFS(snap, prior, delta)
		if reason != "" {
			t.Fatalf("empty-delta bfs fell back: %s", reason)
		}
		st, m := runKernel(t, snap, k, bfsSource, w, nil)
		if i := cmpLevels(o.levels, k.Levels(st)); i >= 0 {
			t.Fatalf("bfs requery diverges at %d", i)
		}
		if m.PagesStreamed != 0 {
			t.Fatalf("empty-delta bfs streamed %d pages, want 0", m.PagesStreamed)
		}

		cprior, cdelta, _ := h.st.Lookup("cc")
		ck, reason := incremental.PlanCC(snap, cprior, cdelta)
		if reason != "" {
			t.Fatalf("empty-delta cc fell back: %s", reason)
		}
		st, m = runKernel(t, snap, ck, 0, w, nil)
		if i := cmpLabels(o.labels, ck.Components(st)); i >= 0 {
			t.Fatalf("cc requery diverges at %d", i)
		}
		if m.PagesStreamed != 0 {
			t.Fatalf("empty-delta cc streamed %d pages, want 0", m.PagesStreamed)
		}

		pprior, pdelta, _ := h.st.Lookup("pagerank")
		pk, reason := incremental.PlanPageRank(snap, pprior, pdelta, prDamping, prIters)
		if reason != "" {
			t.Fatalf("empty-delta pagerank fell back: %s", reason)
		}
		st, m = runKernel(t, snap, pk, 0, w, nil)
		if i := cmpRanks(o.ranks, pk.Ranks(st)); i >= 0 {
			t.Fatalf("pagerank requery diverges at %d", i)
		}
		if m.PagesStreamed != 0 {
			t.Fatalf("empty-delta pagerank streamed %d pages, want 0", m.PagesStreamed)
		}
	}
}

// runStreaming executes a kernel in the paper's streaming-topology mode
// (device page cache off), where per-superstep page scans are visible in
// Metrics.PagesStreamed instead of being absorbed by the cache.
func runStreaming(t testing.TB, g *gts.Graph, k gts.Kernel, source uint64, workers int) (gts.KernelState, gts.Metrics) {
	t.Helper()
	sys, err := gts.NewSystem(g, gts.Config{HostWorkers: workers, CacheBytes: gts.CacheDisabled})
	if err != nil {
		t.Fatal(err)
	}
	st, m, err := sys.RunKernel(k, source)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// lowDegreeTail returns vertices with out-degree <= 1, scanning from the
// high-ID end (R-MAT skew puts the periphery there).
func lowDegreeTail(g *gts.Graph, want int) []uint64 {
	var out []uint64
	for v := g.NumVertices() - 1; v > 0 && len(out) < want; v-- {
		deg := 0
		g.NeighborsOf(v, func(uint64) { deg++ })
		if deg <= 1 {
			out = append(out, v)
		}
	}
	return out
}

// TestIncrementalPageRankSavesPages is the savings acceptance at kernel
// level: in streaming mode, a single peripheral-edge batch on a
// 2048-vertex graph must stream at least 5x fewer pages incrementally
// than from scratch, while staying bitwise exact. (A hub edge saturates
// the deviation cone and approaches full cost — the exactness contract
// bounds how much a dense perturbation can be pruned.)
func TestIncrementalPageRankSavesPages(t *testing.T) {
	h := newHarness(t, "RMAT27@16")
	snap := h.mg.Snapshot()
	o := computeOracle(t, snap, 8, nil)
	h.capture(t, o)
	tail := lowDegreeTail(snap, 2)
	if len(tail) < 2 {
		t.Skip("graph has no low-degree tail")
	}
	if _, err := h.mg.Ingest([]gts.EdgeOp{{Src: tail[0], Dst: tail[1]}}); err != nil {
		t.Fatal(err)
	}
	snap = h.mg.Snapshot()
	fullK := kernels.NewPageRank(snap, prDamping, prIters)
	fst, fm := runStreaming(t, snap, fullK, 0, 8)
	fullRanks := fullK.Ranks(fst)
	prior, delta, ok := h.st.Lookup("pagerank")
	if !ok {
		t.Fatal("pagerank entry missing")
	}
	k, reason := incremental.PlanPageRank(snap, prior, delta, prDamping, prIters)
	if reason != "" {
		t.Fatalf("single-insert pagerank fell back: %s", reason)
	}
	st, m := runStreaming(t, snap, k, 0, 8)
	if i := cmpRanks(fullRanks, k.Ranks(st)); i >= 0 {
		t.Fatalf("pagerank diverges at %d: full=%x inc=%x", i,
			math.Float32bits(fullRanks[i]), math.Float32bits(k.Ranks(st)[i]))
	}
	if m.PagesStreamed*5 > fm.PagesStreamed {
		t.Fatalf("incremental pagerank streamed %d pages; want <= full/5 (full=%d)",
			m.PagesStreamed, fm.PagesStreamed)
	}
	t.Logf("pagerank pages: full=%d incremental=%d (%.1fx)", fm.PagesStreamed, m.PagesStreamed,
		float64(fm.PagesStreamed)/float64(m.PagesStreamed))
}

// minimizeScript delta-debugs a failing ingest script: first drop batch
// ranges, then op ranges inside each batch, re-testing after every
// candidate until a fixpoint (same shrink loop as bufpool's
// minimizeScript).
func minimizeScript(sc script, fails func(script) bool) script {
	// Batch-level passes.
	for {
		shrunk := false
		for sz := len(sc.batches) / 2; sz >= 1; sz /= 2 {
			for i := 0; i+sz <= len(sc.batches); i++ {
				cand := script{spec: sc.spec}
				cand.batches = append(cand.batches, sc.batches[:i]...)
				cand.batches = append(cand.batches, sc.batches[i+sz:]...)
				if len(cand.batches) > 0 && fails(cand) {
					sc = cand
					shrunk = true
					i--
				}
			}
		}
		if !shrunk {
			break
		}
	}
	// Op-level passes within each surviving batch.
	for {
		shrunk := false
		for bi := range sc.batches {
			for sz := len(sc.batches[bi]) / 2; sz >= 1; sz /= 2 {
				for i := 0; i+sz <= len(sc.batches[bi]); i++ {
					cand := script{spec: sc.spec, batches: make([][]gts.EdgeOp, len(sc.batches))}
					copy(cand.batches, sc.batches)
					ops := append([]gts.EdgeOp(nil), sc.batches[bi][:i]...)
					ops = append(ops, sc.batches[bi][i+sz:]...)
					cand.batches[bi] = ops
					if len(ops) > 0 && fails(cand) {
						sc = cand
						shrunk = true
						i--
					}
				}
			}
		}
		if !shrunk {
			break
		}
	}
	return sc
}

// TestMinimizeScript sanity-checks the delta-debugger on a synthetic
// predicate: failure iff the script still contains a marker op. The
// minimum must be exactly one batch of one op.
func TestMinimizeScript(t *testing.T) {
	marker := gts.EdgeOp{Src: 42, Dst: 43}
	var sc script
	r := rand.New(rand.NewSource(9))
	for b := 0; b < 6; b++ {
		var ops []gts.EdgeOp
		for i := 0; i < 10; i++ {
			ops = append(ops, gts.EdgeOp{Src: uint64(r.Intn(40)), Dst: uint64(r.Intn(40))})
		}
		if b == 3 {
			ops[5] = marker
		}
		sc.batches = append(sc.batches, ops)
	}
	min := minimizeScript(sc, func(cand script) bool {
		for _, b := range cand.batches {
			for _, op := range b {
				if op == marker {
					return true
				}
			}
		}
		return false
	})
	if len(min.batches) != 1 || len(min.batches[0]) != 1 || min.batches[0][0] != marker {
		t.Fatalf("minimization did not reach the 1-op core: %v", min.batches)
	}
}
