package incremental_test

import (
	"fmt"
	"testing"

	gts "repro"
	"repro/internal/incremental"
)

func openBase(t testing.TB) *gts.Graph {
	t.Helper()
	g, err := gts.Open(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreCommitAndLookup(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	if !s.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: 0, Levels: []int16{0}}) {
		t.Fatal("capture at current epoch rejected")
	}
	s.Commit(0, 1, []incremental.EdgeOp{{Src: 1, Dst: 2}}, g)
	s.Commit(1, 2, []incremental.EdgeOp{{Del: true, Src: 3, Dst: 4}, {Src: 1, Dst: 5}}, g)

	e, d, ok := s.Lookup("bfs")
	if !ok {
		t.Fatal("entry not replayable")
	}
	if e.Epoch != 0 || d.FromEpoch != 0 || d.ToEpoch != 2 {
		t.Fatalf("delta spans %d..%d from entry epoch %d", d.FromEpoch, d.ToEpoch, e.Epoch)
	}
	if len(d.Ops) != 3 {
		t.Fatalf("flattened ops = %d, want 3", len(d.Ops))
	}
	if d.OldNumVertices != g.NumVertices() {
		t.Fatalf("OldNumVertices = %d, want %d", d.OldNumVertices, g.NumVertices())
	}
	// Pre-image adjacency captured for every distinct source.
	for _, src := range []uint64{1, 3} {
		if _, ok := d.OldAdj[src]; !ok {
			t.Fatalf("missing pre-image adjacency for source %d", src)
		}
	}
}

func TestStoreOldAdjFirstOccurrenceWins(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	s.Capture("k", &incremental.Entry{Kind: incremental.KindPageRank, Epoch: 0})
	// Source 7 is touched by both commits; the delta must carry its
	// adjacency as of epoch 0 (the first commit's pre-image), captured from
	// the graph state passed to the first commit.
	s.Commit(0, 1, []incremental.EdgeOp{{Src: 7, Dst: 8}}, g)
	var want []uint64
	g.NeighborsOf(7, func(dst uint64) { want = append(want, dst) })
	s.Commit(1, 2, []incremental.EdgeOp{{Src: 7, Dst: 9}}, g)
	_, d, ok := s.Lookup("k")
	if !ok {
		t.Fatal("entry not replayable")
	}
	if fmt.Sprint(d.OldAdj[7]) != fmt.Sprint(want) {
		t.Fatalf("OldAdj[7] = %v, want first-commit pre-image %v", d.OldAdj[7], want)
	}
}

func TestStoreLineageBreakDropsEverything(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	s.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: 0})
	s.Commit(0, 1, nil, g)
	// A commit whose prev does not extend the lineage (missed commit, or a
	// recovered graph reusing LSNs) must wipe chain and entries.
	s.Commit(5, 6, nil, g)
	if s.Len() != 0 {
		t.Fatalf("entries survived a lineage break: %d", s.Len())
	}
	if _, _, ok := s.Lookup("bfs"); ok {
		t.Fatal("lookup served across a lineage break")
	}
	if s.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", s.Epoch())
	}
}

func TestStoreCaptureRejectsStaleEpoch(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	s.Commit(0, 1, nil, g)
	// A run that raced an ingest commit carries the pre-commit epoch and
	// must be discarded.
	if s.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: 0}) {
		t.Fatal("stale-epoch capture accepted")
	}
	if s.Len() != 0 {
		t.Fatal("stale entry stored")
	}
}

func TestStoreChainTrimDropsUnreplayableEntries(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	s.Capture("old", &incremental.Entry{Kind: incremental.KindCC, Epoch: 0})
	for i := 0; i < incremental.DefaultMaxChain+5; i++ {
		s.Commit(uint64(i), uint64(i+1), nil, g)
	}
	if _, _, ok := s.Lookup("old"); ok {
		t.Fatal("entry older than the chain window still served")
	}
	if s.Len() != 0 {
		t.Fatalf("unreplayable entry retained: %d", s.Len())
	}
	// A fresh capture at the current epoch still works.
	cur := s.Epoch()
	if !s.Capture("new", &incremental.Entry{Kind: incremental.KindCC, Epoch: cur}) {
		t.Fatal("current-epoch capture rejected after trim")
	}
	if _, d, ok := s.Lookup("new"); !ok || len(d.Ops) != 0 {
		t.Fatal("current-epoch entry should yield an empty delta")
	}
}

func TestStoreInvalidate(t *testing.T) {
	g := openBase(t)
	s := incremental.NewStore(0)
	s.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: 0})
	s.Commit(0, 1, nil, g)
	s.Invalidate()
	if s.Len() != 0 {
		t.Fatal("Invalidate left entries")
	}
	if _, _, ok := s.Lookup("bfs"); ok {
		t.Fatal("Invalidate left a servable entry")
	}
}

func TestStoreCounters(t *testing.T) {
	s := incremental.NewStore(0)
	s.AddHit(10)
	s.AddHit(-3) // negative savings clamp to zero
	s.AddFallback()
	hits, falls, saved := s.Counters()
	if hits != 2 || falls != 1 || saved != 10 {
		t.Fatalf("counters = (%d,%d,%d), want (2,1,10)", hits, falls, saved)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[incremental.Kind]string{
		incremental.KindBFS: "bfs", incremental.KindCC: "cc", incremental.KindPageRank: "pagerank",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if incremental.Kind(99).String() != "unknown" {
		t.Fatal("unknown kind not reported")
	}
}

// TestPlannerFallbackReasons pins the invalidation matrix: each unsafe
// delta shape must be refused with its documented reason.
func TestPlannerFallbackReasons(t *testing.T) {
	g := openBase(t)
	n := g.NumVertices()
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = unvisitedLevel
	}
	g.NeighborsOf(0, func(dst uint64) { lv[dst] = 1 })
	lv[0] = 0 // after the neighbor sweep: a self-loop must not overwrite the source level
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	traj := make([][]float32, prIters+1)
	for i := range traj {
		traj[i] = make([]float32, n)
	}

	bfsEntry := &incremental.Entry{Kind: incremental.KindBFS, Levels: lv, Source: 0}
	ccEntry := &incremental.Entry{Kind: incremental.KindCC, Labels: labels}
	prEntry := &incremental.Entry{Kind: incremental.KindPageRank, Traj: traj,
		Damping: prDamping, Iterations: prIters}

	var tight gts.EdgeOp
	found := false
	g.NeighborsOf(0, func(dst uint64) {
		if !found && dst != 0 && lv[dst] == 1 {
			tight = gts.EdgeOp{Del: true, Src: 0, Dst: dst}
			found = true
		}
	})
	if !found {
		t.Skip("source 0 has no out-edges in the test graph")
	}

	cases := []struct {
		name   string
		plan   func(d incremental.Delta) string
		delta  incremental.Delta
		reason string
	}{
		{"bfs-wrong-kind", func(d incremental.Delta) string {
			_, r := incremental.PlanBFS(g, ccEntry, d)
			return r
		}, incremental.Delta{}, "wrong-kind"},
		{"bfs-tight-delete", func(d incremental.Delta) string {
			_, r := incremental.PlanBFS(g, bfsEntry, d)
			return r
		}, incremental.Delta{Ops: []gts.EdgeOp{tight}}, "tight-delete"},
		{"cc-any-delete", func(d incremental.Delta) string {
			_, r := incremental.PlanCC(g, ccEntry, d)
			return r
		}, incremental.Delta{Ops: []gts.EdgeOp{{Del: true, Src: 1, Dst: 2}}}, "delete"},
		{"pagerank-params-mismatch", func(d incremental.Delta) string {
			_, r := incremental.PlanPageRank(g, prEntry, d, 0.5, prIters)
			return r
		}, incremental.Delta{}, "params-mismatch"},
		{"pagerank-trajectory-shape", func(d incremental.Delta) string {
			_, r := incremental.PlanPageRank(g, &incremental.Entry{Kind: incremental.KindPageRank,
				Traj: traj[:2], Damping: prDamping, Iterations: prIters}, d, prDamping, prIters)
			return r
		}, incremental.Delta{}, "trajectory-shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if r := tc.plan(tc.delta); r != tc.reason {
				t.Fatalf("reason = %q, want %q", r, tc.reason)
			}
		})
	}
}

const unvisitedLevel = int16(-1)
