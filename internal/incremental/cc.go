package incremental

import (
	"repro/internal/bitset"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// IncCC re-executes connected components from retained labels after an
// insert-only batch. Label propagation toward the minimum has a unique
// fixpoint per (weakly) connected component, and inserts only merge
// components: relaxing from the retained fixpoint with the new edges'
// endpoints seeded converges to exactly the labels a full run computes.
// Any delete can split a component — whose members would need their labels
// *raised*, which min-propagation cannot do — so PlanCC falls back.
//
// Unlike the full CC (a full-scan PageRank-like kernel), IncCC is
// frontier-driven: each round scans only vertices whose label changed last
// round plus their in-neighbors (which might now pull the lowered label),
// streaming just those vertices' pages.
type IncCC struct {
	g    *slottedpage.Graph
	rev  kernels.RevCSR
	init []uint32 // retained labels, extended, with seed relaxations applied
	base []uint32 // retained labels, extended, pre-seed (first diff baseline)
	cost incCost

	// plan state
	snap []uint32
	scan *bitset.Set

	// Seeds is how many vertices the delta directly relabeled.
	Seeds int
}

type incCCState struct {
	prev []uint32
	next []uint32
}

func (s *incCCState) WABytes() int64 { return int64(len(s.prev)) * 8 }
func (s *incCCState) RABytes() int64 { return 0 }
func (s *incCCState) Clone() kernels.State {
	c := &incCCState{prev: make([]uint32, len(s.prev)), next: make([]uint32, len(s.next))}
	copy(c.prev, s.prev)
	copy(c.next, s.next)
	return c
}

// PlanCC builds an incremental CC kernel, or reports a fallback reason
// (any delete in the chain).
func PlanCC(g *slottedpage.Graph, e *Entry, d Delta) (*IncCC, string) {
	if e.Kind != KindCC {
		return nil, "wrong-kind"
	}
	n := g.NumVertices()
	if uint64(len(e.Labels)) > n {
		return nil, "vertex-shrink"
	}
	for _, op := range d.Ops {
		if op.Del {
			return nil, "delete"
		}
	}
	base := make([]uint32, n)
	copy(base, e.Labels)
	for i := uint64(len(e.Labels)); i < n; i++ {
		base[i] = uint32(i) // new vertices: own component, as a full run inits
	}
	init := append([]uint32(nil), base...)
	seeds := 0
	for _, op := range d.Ops {
		if op.Src >= n || op.Dst >= n {
			continue
		}
		lo := init[op.Src]
		if init[op.Dst] < lo {
			lo = init[op.Dst]
		}
		if init[op.Src] != lo {
			init[op.Src] = lo
			seeds++
		}
		if init[op.Dst] != lo {
			init[op.Dst] = lo
			seeds++
		}
	}
	k := &IncCC{
		g:     g,
		rev:   kernels.NewRevCSR(g),
		init:  init,
		base:  base,
		cost:  incCost{lane: 110, slot: 50},
		snap:  append([]uint32(nil), base...),
		scan:  bitset.New(int(n)),
		Seeds: seeds,
	}
	return k, ""
}

// Name implements Kernel.
func (k *IncCC) Name() string { return "IncCC" }

// Class implements Kernel: frontier-driven, unlike the full-scan CC.
func (k *IncCC) Class() kernels.Class { return kernels.BFSLike }

// RAPerVertex implements Kernel.
func (k *IncCC) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *IncCC) NewState() kernels.State {
	n := k.g.NumVertices()
	return &incCCState{prev: make([]uint32, n), next: make([]uint32, n)}
}

// Init implements Kernel: both vectors start at the seeded retained labels.
func (k *IncCC) Init(st kernels.State, _ uint64) {
	s := st.(*incCCState)
	copy(s.prev, k.init)
	copy(s.next, k.init)
}

// BeginLevel implements Kernel.
func (k *IncCC) BeginLevel([]kernels.State, int32) {}

// PlanLevel implements FrontierKernel: the round's scan set is every
// vertex whose label changed since the last snapshot plus its
// in-neighbors (which may pull the lowered label across an edge the
// changed vertex cannot see from its own slot). prev catches up to next
// here — the plan step is the inter-round label publish.
func (k *IncCC) PlanLevel(sts []kernels.State, _ int32, next *bitset.Set) kernels.Direction {
	s := sts[0].(*incCCState)
	next.Reset()
	k.scan.Reset()
	changed := false
	for v, l := range s.next {
		if l != k.snap[v] {
			changed = true
			k.snap[v] = l
			vid := uint64(v)
			k.scan.Set(v)
			kernels.MarkVertexPages(k.g, vid, next, true)
			for _, u := range k.rev.In(vid) {
				k.scan.Set(int(u))
				kernels.MarkVertexPages(k.g, uint64(u), next, true)
			}
		}
	}
	// Publish: every replica's prev catches up to the merged next.
	for _, st := range sts {
		r := st.(*incCCState)
		copy(r.prev, s.next)
		copy(r.next, s.next)
	}
	if !changed {
		return kernels.DirNone
	}
	return kernels.DirPush
}

// RunSP relaxes labels for scan-set slots, both directions, exactly as the
// full CC's propagate does.
func (k *IncCC) RunSP(a *kernels.Args) kernels.Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: candidates read prev (published at
// plan time, stable all phase); min-writes to next are conditional-
// monotone, so Apply's re-test reproduces the serial order.
func (k *IncCC) GatherSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runSP(a, d)
}

func (k *IncCC) runSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incCCState)
	pg := a.Page
	n := pg.NumSlots()
	var res kernels.Result
	var edges int64
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if !k.scan.Get(int(vid)) {
			continue
		}
		adj := pg.Adj(slot)
		edges += int64(adj.Len())
		k.propagate(a, s, vid, adj, &res, d)
	}
	res.Edges = edges
	res.Cycles = k.cost.cycles(int64(n), edges)
	return res
}

// RunLP relaxes one large vertex's page-local adjacency.
func (k *IncCC) RunLP(a *kernels.Args) kernels.Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *IncCC) GatherLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runLP(a, d)
}

func (k *IncCC) runLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incCCState)
	vid, _ := a.Page.Slot(0)
	var res kernels.Result
	var edges int64
	if k.scan.Get(int(vid)) {
		adj := a.Page.Adj(0)
		edges = int64(adj.Len())
		k.propagate(a, s, vid, adj, &res, d)
	}
	res.Edges = edges
	res.Cycles = k.cost.cycles(1, edges)
	return res
}

func (k *IncCC) propagate(a *kernels.Args, s *incCCState, vid uint64, adj slottedpage.AdjView, res *kernels.Result, d *kernels.Deferred) {
	cv := s.prev[vid]
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if nvid >= a.OwnedLo && nvid < a.OwnedHi && cv < s.next[nvid] {
			if d != nil {
				d.Push(kernels.Op{Idx: nvid, Val: uint64(cv)})
			} else {
				s.next[nvid] = cv
				res.Updates++
				res.Active = true
			}
		}
		if cn := s.prev[nvid]; vid >= a.OwnedLo && vid < a.OwnedHi && cn < s.next[vid] {
			if d != nil {
				d.Push(kernels.Op{Idx: vid, Val: uint64(cn)})
			} else {
				s.next[vid] = cn
				res.Updates++
				res.Active = true
			}
		}
	}
}

// Apply implements GatherKernel: commit still-smaller labels in order.
func (k *IncCC) Apply(a *kernels.Args, d *kernels.Deferred, res *kernels.Result) {
	s := a.State.(*incCCState)
	for _, op := range d.Ops {
		if c := uint32(op.Val); c < s.next[op.Idx] {
			s.next[op.Idx] = c
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates implements Kernel: next merges by minimum.
func (k *IncCC) MergeStates(sts []kernels.State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*incCCState)
	for _, other := range sts[1:] {
		o := other.(*incCCState)
		for v, l := range o.next {
			if l < base.next[v] {
				base.next[v] = l
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*incCCState).next, base.next)
	}
}

// EndIteration implements Kernel: termination is the planner's.
func (k *IncCC) EndIteration([]kernels.State, bool) bool { return false }

// Components exposes the final labels of a finished run.
func (k *IncCC) Components(st kernels.State) []uint32 { return st.(*incCCState).next }
