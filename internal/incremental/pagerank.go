package incremental

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// IncPR recomputes PageRank after an edge batch without touching the
// untouched part of the graph, and still produces ranks byte-identical to
// a full run. Resuming from the prior *final* ranks cannot do that (a
// different start vector changes every float32 accumulation), so the
// retained entry keeps the full per-iteration trajectory and IncPR
// recomputes only the "delta cone": the set of vertices whose value at
// iteration t can differ from the retained trajectory.
//
//   - T (structural targets): every vertex that gained or lost an
//     in-edge, i.e. the union of old and new out-neighborhoods of each
//     op source. Their accumulation term list changed, so they must be
//     recomputed every iteration.
//   - C_1 = T; C_t = out_new(VD_{t-1}) ∪ T, where VD_{t-1} ⊆ C_{t-1} is
//     the set of candidates whose recomputed value actually deviated
//     (bitwise) from the retained trajectory at t-1.
//
// For v outside C_t, every in-neighbor u had cur[u] bitwise equal to
// traj[t-1][u] (u not in VD_{t-1}) and v's term list is unchanged (v not
// in T), so v's full-run value at t is bitwise traj[t][v] — no work
// needed. For v in C_t, the marked pages (home/LP pages of in(C_t))
// stream in the same relative order as a full scan, so v's float32 adds
// replay in the full run's exact order. Induction over t gives bitwise
// equality at every iteration, hence at the end.
type IncPR struct {
	g       *slottedpage.Graph
	rev     kernels.RevCSR
	lpDeg   map[uint64]int
	damping float64
	iters   int
	base    float32
	cost    incCost
	traj    [][]float32

	tlist []uint64 // structural targets, ascending

	// plan state
	cand     *bitset.Set
	candList []uint64
	cur      []float32
	newTraj  [][]float32
	lastVD   []uint64
	t        int
	pending  bool
	done     bool
	result   []float32

	// Seeds is the size of the structural target set (trace/metrics).
	Seeds int
}

type incPRState struct {
	acc  []float32
	base float32
}

func (s *incPRState) WABytes() int64 { return int64(len(s.acc)) * 4 }
func (s *incPRState) RABytes() int64 { return 0 }
func (s *incPRState) Clone() kernels.State {
	c := &incPRState{acc: make([]float32, len(s.acc)), base: s.base}
	copy(c.acc, s.acc)
	return c
}

// PlanPageRank builds an incremental PageRank kernel, or reports a
// fallback reason. Vertex growth falls back: it changes the teleport base
// (1-df)/|V| and the uniform start vector, deviating every vertex at once.
func PlanPageRank(g *slottedpage.Graph, e *Entry, d Delta, df float64, iterations int) (*IncPR, string) {
	if e.Kind != KindPageRank {
		return nil, "wrong-kind"
	}
	if e.Damping != df || e.Iterations != iterations {
		return nil, "params-mismatch"
	}
	n := g.NumVertices()
	if len(e.Traj) != iterations+1 || len(e.Traj[0]) == 0 {
		return nil, "trajectory-shape"
	}
	if uint64(len(e.Traj[0])) != n {
		return nil, "vertex-growth"
	}
	if len(d.Ops) > 0 && d.OldNumVertices != n {
		return nil, "vertex-growth"
	}
	// Structural targets: old ∪ new out-neighborhoods of every op source.
	tset := bitset.New(int(n))
	for _, op := range d.Ops {
		for _, dst := range d.OldAdj[op.Src] {
			if dst < n {
				tset.Set(int(dst))
			}
		}
		if op.Src < n {
			g.NeighborsOf(op.Src, func(dst uint64) { tset.Set(int(dst)) })
		}
	}
	var tlist []uint64
	tset.ForEach(func(i int) { tlist = append(tlist, uint64(i)) })
	k := &IncPR{
		g:       g,
		rev:     kernels.NewRevCSR(g),
		lpDeg:   kernels.LPDegrees(g),
		damping: df,
		iters:   iterations,
		base:    float32((1 - df) / float64(n)),
		cost:    incCost{lane: 160, slot: 50},
		traj:    e.Traj,
		tlist:   tlist,
		cand:    bitset.New(int(n)),
		Seeds:   len(tlist),
	}
	return k, ""
}

// Name implements Kernel.
func (k *IncPR) Name() string { return "IncPR" }

// Class implements Kernel: the delta cone streams only affected pages, so
// incremental PageRank runs as a frontier (BFS-like) kernel even though
// the full algorithm is a full-scan one.
func (k *IncPR) Class() kernels.Class { return kernels.BFSLike }

// RAPerVertex implements Kernel: the input vector is kernel-resident.
func (k *IncPR) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *IncPR) NewState() kernels.State {
	return &incPRState{acc: make([]float32, k.g.NumVertices()), base: k.base}
}

// Init implements Kernel: iteration 1 starts from the retained uniform
// vector (traj[0]); plan bookkeeping resets so a kernel is reusable.
func (k *IncPR) Init(st kernels.State, _ uint64) {
	s := st.(*incPRState)
	for i := range s.acc {
		s.acc[i] = k.base
	}
	k.cur = k.traj[0]
	k.newTraj = append(k.newTraj[:0], k.traj[0])
	k.lastVD = nil
	k.t = 1
	k.pending = false
	k.done = false
	k.result = nil
}

// BeginLevel implements Kernel.
func (k *IncPR) BeginLevel([]kernels.State, int32) {}

// PlanLevel implements FrontierKernel: close out the iteration whose
// superstep just ran (fold accumulators into a patched trajectory level,
// detect deviations), then set up the next iteration's candidate set and
// page frontier. Iterations whose candidate pages are empty — or whose
// candidate set is empty, meaning the rest of the trajectory is reused
// verbatim — are resolved here without streaming anything.
func (k *IncPR) PlanLevel(sts []kernels.State, _ int32, next *bitset.Set) kernels.Direction {
	if k.pending {
		k.finishIteration(sts)
	}
	for {
		next.Reset()
		if k.t > k.iters {
			if !k.done {
				k.result = k.cur
				k.done = true
			}
			return kernels.DirNone
		}
		// Candidates: structural targets every iteration, plus everything
		// downstream of the previous iteration's deviations.
		k.cand.Reset()
		for _, v := range k.tlist {
			k.cand.Set(int(v))
		}
		for _, u := range k.lastVD {
			k.g.NeighborsOf(u, func(dst uint64) { k.cand.Set(int(dst)) })
		}
		k.candList = k.candList[:0]
		k.cand.ForEach(func(i int) { k.candList = append(k.candList, uint64(i)) })
		if len(k.candList) == 0 {
			// No deviation can occur from here on: the remaining levels of
			// the retained trajectory are the answer, bitwise.
			for ; k.t <= k.iters; k.t++ {
				k.cur = k.traj[k.t]
				k.newTraj = append(k.newTraj, k.traj[k.t])
			}
			continue
		}
		for _, st := range sts {
			s := st.(*incPRState)
			for _, v := range k.candList {
				s.acc[v] = k.base
			}
		}
		for _, v := range k.candList {
			for _, u := range k.rev.In(v) {
				kernels.MarkVertexPages(k.g, uint64(u), next, true)
			}
		}
		if !next.Any() {
			// Candidates with no in-neighbors: their value is exactly the
			// teleport base, already in acc. Close the iteration inline.
			k.finishIteration(sts)
			continue
		}
		k.pending = true
		return kernels.DirPush
	}
}

// finishIteration folds the candidates' accumulators into a patched copy
// of the retained trajectory level and records which candidates deviated.
func (k *IncPR) finishIteration(sts []kernels.State) {
	s := sts[0].(*incPRState)
	newvals := append([]float32(nil), k.traj[k.t]...)
	k.lastVD = k.lastVD[:0]
	for _, v := range k.candList {
		nv := s.acc[v]
		newvals[v] = nv
		if math.Float32bits(nv) != math.Float32bits(k.traj[k.t][v]) {
			k.lastVD = append(k.lastVD, v)
		}
	}
	k.cur = newvals
	k.newTraj = append(k.newTraj, newvals)
	k.t++
	k.pending = false
}

// RunSP scatters contributions from every slot of a marked page into
// candidate accumulators, reading the patched input vector.
func (k *IncPR) RunSP(a *kernels.Args) kernels.Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: contributions read only cur (stable
// for the whole superstep) and the adds defer in adjacency order.
func (k *IncPR) GatherSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runSP(a, d)
}

func (k *IncPR) runSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incPRState)
	pg := a.Page
	n := pg.NumSlots()
	var res kernels.Result
	var edges int64
	df := float32(k.damping)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		deg := adj.Len()
		edges += int64(deg)
		if deg == 0 {
			continue
		}
		contrib := df * k.cur[vid] / float32(deg)
		k.scatter(a, s, adj, contrib, &res, d)
	}
	res.Edges = edges
	res.Cycles = k.cost.cycles(int64(n), edges)
	res.Active = true
	return res
}

// RunLP scatters one large vertex's page-local adjacency, dividing by the
// vertex's total degree.
func (k *IncPR) RunLP(a *kernels.Args) kernels.Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *IncPR) GatherLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runLP(a, d)
}

func (k *IncPR) runLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incPRState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var res kernels.Result
	edges := int64(adj.Len())
	contrib := float32(k.damping) * k.cur[vid] / float32(k.lpDeg[vid])
	k.scatter(a, s, adj, contrib, &res, d)
	res.Edges = edges
	res.Cycles = k.cost.cycles(1, edges)
	res.Active = true
	return res
}

func (k *IncPR) scatter(a *kernels.Args, s *incPRState, adj slottedpage.AdjView, contrib float32, res *kernels.Result, d *kernels.Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if !k.cand.Get(int(nvid)) {
			continue
		}
		if nvid < a.OwnedLo || nvid >= a.OwnedHi {
			continue
		}
		if d != nil {
			d.Push(kernels.Op{Idx: nvid, Val: uint64(math.Float32bits(contrib))})
			continue
		}
		s.acc[nvid] += contrib
		res.Updates++
	}
}

// Apply implements GatherKernel: replay the deferred adds in order.
func (k *IncPR) Apply(a *kernels.Args, d *kernels.Deferred, res *kernels.Result) {
	s := a.State.(*incPRState)
	for _, op := range d.Ops {
		s.acc[op.Idx] += math.Float32frombits(uint32(op.Val))
		res.Updates++
	}
}

// MergeStates implements Kernel. IncPR is planned only for single-GPU
// configurations (the service gates on that), so there is never a second
// replica to merge; the copy keeps hypothetical replicas consistent.
func (k *IncPR) MergeStates(sts []kernels.State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*incPRState)
	for _, other := range sts[1:] {
		copy(other.(*incPRState).acc, base.acc)
	}
}

// EndIteration implements Kernel: iteration advance happens in PlanLevel.
func (k *IncPR) EndIteration([]kernels.State, bool) bool { return false }

// Ranks exposes the final rank vector of a finished run.
func (k *IncPR) Ranks(kernels.State) []float32 { return k.result }

// Trajectory exposes the patched per-iteration trajectory of a finished
// run, suitable for retaining as the next epoch's entry. Unpatched levels
// alias the prior entry's slices; entries are immutable so sharing is
// safe.
func (k *IncPR) Trajectory() [][]float32 { return k.newTraj }

// RecordingPageRank wraps the full PageRank kernel and snapshots the rank
// vector after every iteration, building the trajectory a later
// incremental run resumes from. The embedded kernel's gather/apply
// methods promote, so the wrapper still satisfies GatherKernel and runs on
// the parallel path; only EndIteration is intercepted.
type RecordingPageRank struct {
	*kernels.PageRank
	Traj [][]float32
}

// NewRecordingPageRank builds the wrapper; traj[0] is the uniform start
// vector, computed exactly as the kernel's Init computes it.
func NewRecordingPageRank(g *slottedpage.Graph, df float64, iterations int) *RecordingPageRank {
	n := g.NumVertices()
	uniform := float32(1 / float64(n))
	t0 := make([]float32, n)
	for i := range t0 {
		t0[i] = uniform
	}
	return &RecordingPageRank{
		PageRank: kernels.NewPageRank(g, df, iterations),
		Traj:     [][]float32{t0},
	}
}

// EndIteration implements Kernel: snapshot the post-swap rank vector
// (bitwise, the value the full run would report if it stopped here).
func (k *RecordingPageRank) EndIteration(sts []kernels.State, active bool) bool {
	more := k.PageRank.EndIteration(sts, active)
	k.Traj = append(k.Traj, append([]float32(nil), k.PageRank.Ranks(sts[0])...))
	return more
}
