package incremental

import (
	"repro/internal/bitset"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// unvisited mirrors the BFS kernel's NULL level.
const unvisited = -1

// Incremental kernels reuse the frontier machinery but report a simple
// edge-proportional cycle cost instead of the full SIMT lane model: their
// virtual time is never compared against full-kernel goldens (only their
// output vectors are), and the simple model keeps the gather halves
// trivially phase-stable.
type incCost struct{ lane, slot float64 }

func (c incCost) cycles(slots, edges int64) float64 {
	return float64(slots)*c.slot + float64(edges)*c.lane
}

// IncBFS re-executes BFS from a retained level vector: only vertices whose
// level an edge batch can lower are re-expanded. It is a monotone
// level-lowering relaxation — levels only ever decrease from the retained
// values — which is exact when every deleted edge was non-tight in the
// retained run (PlanBFS checks; tight deletes fall back to a full run).
//
// Plan state: PlanLevel diffs the merged level vector against its last
// snapshot, pends every lowered vertex at its new level, and expands the
// pending vertices level by level in ascending order — the standard
// dynamic-BFS worklist, expressed through the FrontierKernel contract.
type IncBFS struct {
	g    *slottedpage.Graph
	init []int16 // retained levels, extended, with verified seeds applied
	base []int16 // retained levels, extended, pre-seed (first diff baseline)
	cost incCost

	// plan state (mutated only inside PlanLevel, read-only during phases)
	lvPrev []int16
	pend   map[int16][]uint64
	front  *bitset.Set
	cur    int16

	// Seeds is how many vertices the delta directly lowered (trace/metrics).
	Seeds int
}

type incBFSState struct{ lv []int16 }

func (s *incBFSState) WABytes() int64 { return int64(len(s.lv)) * 2 }
func (s *incBFSState) RABytes() int64 { return 0 }
func (s *incBFSState) Clone() kernels.State {
	c := &incBFSState{lv: make([]int16, len(s.lv))}
	copy(c.lv, s.lv)
	return c
}

// PlanBFS builds an incremental BFS kernel from a retained entry and the
// delta to the current graph, or reports a fallback reason. The safety
// argument:
//
//   - Deletes: removing an edge (u,v) that is non-tight w.r.t. the
//     retained levels (lv[v] != lv[u]+1 or u unreached) cannot change any
//     shortest distance — the retained BFS tree uses only tight edges, and
//     deleting non-tight edges leaves every tree path intact. Any tight
//     delete may disconnect or lengthen paths, so it falls back.
//   - Inserts: an edge (u,v) present in the *final* graph with
//     lv[u]+1 < lv[v] (or v unreached) seeds v at lv[u]+1; relaxation then
//     propagates. Ops whose edge did not survive the whole chain (inserted
//     then deleted) seed nothing. New distances are always <= retained
//     ones, so monotone lowering from the retained vector converges to the
//     exact new levels.
//   - Vertex growth: new vertices start unreached, exactly as a full run
//     would initialize them.
func PlanBFS(g *slottedpage.Graph, e *Entry, d Delta) (*IncBFS, string) {
	if e.Kind != KindBFS {
		return nil, "wrong-kind"
	}
	n := g.NumVertices()
	if uint64(len(e.Levels)) > n {
		return nil, "vertex-shrink"
	}
	// Tight-delete check against the retained levels.
	lvAt := func(v uint64) int16 {
		if v < uint64(len(e.Levels)) {
			return e.Levels[v]
		}
		return unvisited
	}
	for _, op := range d.Ops {
		if !op.Del {
			continue
		}
		lu, lv := lvAt(op.Src), lvAt(op.Dst)
		if lu != unvisited && lv == lu+1 {
			return nil, "tight-delete"
		}
	}
	base := make([]int16, n)
	copy(base, e.Levels)
	for i := len(e.Levels); i < int(n); i++ {
		base[i] = unvisited
	}
	init := append([]int16(nil), base...)
	// Verify insert seeds against the final adjacency, applying them in op
	// order so chained inserts compound (any ordering converges — the
	// relaxation re-expands every lowered vertex — but op order is the
	// deterministic choice).
	var adjCache map[uint64]map[uint64]bool
	hasEdge := func(u, v uint64) bool {
		if adjCache == nil {
			adjCache = make(map[uint64]map[uint64]bool)
		}
		set, ok := adjCache[u]
		if !ok {
			set = make(map[uint64]bool)
			if u < n {
				g.NeighborsOf(u, func(dst uint64) { set[dst] = true })
			}
			adjCache[u] = set
		}
		return set[v]
	}
	seeds := 0
	for _, op := range d.Ops {
		if op.Del || op.Src >= n || op.Dst >= n || !hasEdge(op.Src, op.Dst) {
			continue
		}
		lu := init[op.Src]
		if lu == unvisited {
			continue
		}
		if init[op.Dst] == unvisited || init[op.Dst] > lu+1 {
			init[op.Dst] = lu + 1
			seeds++
		}
	}
	k := &IncBFS{
		g:     g,
		init:  init,
		base:  base,
		cost:  incCost{lane: 40, slot: 10},
		pend:  make(map[int16][]uint64),
		Seeds: seeds,
	}
	k.lvPrev = append([]int16(nil), base...)
	k.front = bitset.New(int(n))
	return k, ""
}

// Name implements Kernel.
func (k *IncBFS) Name() string { return "IncBFS" }

// Class implements Kernel: incremental BFS streams only affected pages.
func (k *IncBFS) Class() kernels.Class { return kernels.BFSLike }

// RAPerVertex implements Kernel.
func (k *IncBFS) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *IncBFS) NewState() kernels.State {
	return &incBFSState{lv: make([]int16, k.g.NumVertices())}
}

// Init implements Kernel: the run starts from the retained levels with the
// delta's verified seeds already applied (source is ignored — it is baked
// into the retained vector).
func (k *IncBFS) Init(st kernels.State, _ uint64) {
	copy(st.(*incBFSState).lv, k.init)
}

// BeginLevel implements Kernel.
func (k *IncBFS) BeginLevel([]kernels.State, int32) {}

// PlanLevel implements FrontierKernel: fold newly lowered vertices into
// the pending worklist, then expand the lowest pending level.
func (k *IncBFS) PlanLevel(sts []kernels.State, _ int32, next *bitset.Set) kernels.Direction {
	lv := sts[0].(*incBFSState).lv
	for v := range lv {
		if lv[v] != k.lvPrev[v] {
			k.pend[lv[v]] = append(k.pend[lv[v]], uint64(v))
			k.lvPrev[v] = lv[v]
		}
	}
	next.Reset()
	k.front.Reset()
	for len(k.pend) > 0 {
		min, found := int16(0), false
		for l := range k.pend {
			if !found || l < min {
				min, found = l, true
			}
		}
		any := false
		for _, v := range k.pend[min] {
			if lv[v] != min { // re-lowered since pended; a fresher pend entry covers it
				continue
			}
			k.front.Set(int(v))
			kernels.MarkVertexPages(k.g, v, next, true)
			any = true
		}
		delete(k.pend, min)
		if any {
			k.cur = min
			return kernels.DirPush
		}
	}
	return kernels.DirNone
}

// RunSP implements the small-page kernel: expand pending frontier slots.
func (k *IncBFS) RunSP(a *kernels.Args) kernels.Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: the frontier (this plan's pending
// vertices at level cur) is phase-stable — applies this phase only write
// level cur+1, which can never put a vertex onto the current frontier.
func (k *IncBFS) GatherSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runSP(a, d)
}

func (k *IncBFS) runSP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incBFSState)
	pg := a.Page
	n := pg.NumSlots()
	var res kernels.Result
	var edges int64
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if !k.front.Get(int(vid)) {
			continue
		}
		adj := pg.Adj(slot)
		edges += int64(adj.Len())
		k.expand(a, s, adj, &res, d)
	}
	res.Edges = edges
	res.Cycles = k.cost.cycles(int64(n), edges)
	return res
}

// RunLP implements the large-page kernel.
func (k *IncBFS) RunLP(a *kernels.Args) kernels.Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *IncBFS) GatherLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	return k.runLP(a, d)
}

func (k *IncBFS) runLP(a *kernels.Args, d *kernels.Deferred) kernels.Result {
	s := a.State.(*incBFSState)
	vid, _ := a.Page.Slot(0)
	var res kernels.Result
	var edges int64
	if k.front.Get(int(vid)) {
		adj := a.Page.Adj(0)
		edges = int64(adj.Len())
		k.expand(a, s, adj, &res, d)
	}
	res.Edges = edges
	res.Cycles = k.cost.cycles(1, edges)
	return res
}

// expand relaxes one frontier vertex's adjacency: neighbors improve to
// cur+1 when that lowers (or first sets) their level. Superset+recheck:
// the condition only flips monotonically as applies commit cur+1 writes.
func (k *IncBFS) expand(a *kernels.Args, s *incBFSState, adj slottedpage.AdjView, res *kernels.Result, d *kernels.Deferred) {
	nl := k.cur + 1
	for i := 0; i < adj.Len(); i++ {
		rid := adj.At(i)
		nvid := k.g.VIDOf(rid)
		if nvid < a.OwnedLo || nvid >= a.OwnedHi {
			continue
		}
		if s.lv[nvid] == unvisited || s.lv[nvid] > nl {
			if d != nil {
				d.Push(kernels.Op{Idx: nvid, Val: uint64(uint16(nl)), PID: int32(rid.PID)})
				continue
			}
			s.lv[nvid] = nl
			res.Updates++
			res.Active = true
		}
	}
}

// Apply implements GatherKernel: re-test and commit lowered levels in
// recorded order.
func (k *IncBFS) Apply(a *kernels.Args, d *kernels.Deferred, res *kernels.Result) {
	s := a.State.(*incBFSState)
	for _, op := range d.Ops {
		nl := int16(uint16(op.Val))
		if s.lv[op.Idx] != unvisited && s.lv[op.Idx] <= nl {
			continue
		}
		s.lv[op.Idx] = nl
		res.Updates++
		res.Active = true
	}
}

// MergeStates implements Kernel: levels merge by minimum (unvisited is the
// identity) — lowering is the only write this kernel performs.
func (k *IncBFS) MergeStates(sts []kernels.State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*incBFSState)
	for _, other := range sts[1:] {
		o := other.(*incBFSState)
		for v, l := range o.lv {
			if l != unvisited && (base.lv[v] == unvisited || l < base.lv[v]) {
				base.lv[v] = l
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*incBFSState).lv, base.lv)
	}
}

// EndIteration implements Kernel: termination is the planner's (empty pend).
func (k *IncBFS) EndIteration([]kernels.State, bool) bool { return false }

// Levels exposes the result vector of a finished run.
func (k *IncBFS) Levels(st kernels.State) []int16 { return st.(*incBFSState).lv }
