// Package incremental retains per-graph algorithm state across ingest
// epochs and re-executes BFS, CC, and PageRank from the delta instead of
// from scratch. The contract is exactness, not approximation: every
// incremental run must produce output byte-identical to a from-scratch
// recompute on the new snapshot, at any HostWorkers count, clean or
// faulted. Where that cannot be guaranteed (tight deletes under BFS, any
// delete under CC, vertex growth under PageRank, ...) the planner refuses
// and the caller falls back to a full run.
//
// The machinery has three parts:
//
//   - Store: retained entries from completed runs, keyed by
//     (algo, params) and stamped with the epoch they were computed at,
//     plus the chain of ingest commits (ops + pre-image adjacency of the
//     touched sources) needed to replay any retained epoch forward to the
//     current one.
//   - Delta: the flattened difference between a retained entry's epoch and
//     the current epoch, handed to a planner.
//   - Planners (PlanBFS, PlanCC, PlanPageRank): decide safe vs fallback
//     and build a FrontierKernel seeded from the delta.
package incremental

import (
	"sync"

	"repro/internal/slottedpage"
)

// EdgeOp aliases the slotted-page ingest op: one edge insert or delete.
type EdgeOp = slottedpage.EdgeOp

// Kind labels which algorithm an Entry retains state for.
type Kind uint8

// Entry kinds.
const (
	KindBFS Kind = iota
	KindCC
	KindPageRank
)

func (k Kind) String() string {
	switch k {
	case KindBFS:
		return "bfs"
	case KindCC:
		return "cc"
	case KindPageRank:
		return "pagerank"
	}
	return "unknown"
}

// Entry is the retained state of one completed run: the final attribute
// arrays plus the convergence metadata a later incremental run needs.
// Entries are immutable once stored; slices they hold must never be
// written again (incremental PageRank shares unpatched trajectory levels
// between successive entries on this basis).
type Entry struct {
	Kind  Kind
	Epoch uint64 // snapshot epoch the run computed against

	// BFS: final levels (-1 unreached) and the source vertex.
	Levels []int16
	Source uint64

	// CC: final component labels.
	Labels []uint32

	// PageRank: the full per-iteration trajectory, Traj[0] = uniform
	// start vector, Traj[i] = ranks after iteration i, plus the params
	// that produced it. Retaining the trajectory (not just the final
	// ranks) is what makes incremental PageRank byte-exact: the delta
	// cone re-derives only deviated entries per iteration and copies the
	// rest bitwise.
	Traj       [][]float32
	Damping    float64
	Iterations int

	// FullPages is the page-scan cost of a from-scratch run of this
	// (algo, params) — carried forward through incremental captures so
	// saved-supersteps accounting always compares against full cost.
	FullPages int64
}

// Delta is the flattened edge difference between a retained entry's epoch
// and the store's current epoch: every op of every intervening commit, in
// commit order, plus the pre-image out-adjacency (at the entry's epoch)
// of each touched source and the entry-epoch vertex count.
type Delta struct {
	FromEpoch uint64
	ToEpoch   uint64
	Ops       []EdgeOp
	// OldAdj maps each distinct op source to its out-neighbor list at
	// FromEpoch (first-occurrence pre-image across the commit chain).
	OldAdj map[uint64][]uint64
	// OldNumVertices is the vertex count at FromEpoch.
	OldNumVertices uint64
}

// commit is one applied ingest batch: the epoch edge it spans and enough
// pre-image to extend any older delta across it.
type commit struct {
	prev, epoch uint64
	ops         []EdgeOp
	oldAdj      map[uint64][]uint64 // pre-image adjacency of op sources at prev
	oldNumVerts uint64
}

// Store holds the retained entries and the commit chain for one graph.
// A Store is bound to one uninterrupted epoch lineage: the service builds
// a fresh Store on every graph (re)load, so recovered-from-crash graphs
// can never consult pre-crash state even when the recovered epoch counter
// happens to collide.
type Store struct {
	mu       sync.Mutex
	epoch    uint64
	chain    []commit // ascending by epoch, contiguous
	maxChain int
	entries  map[string]*Entry

	hits      uint64
	fallbacks uint64
	saved     uint64
}

// DefaultMaxChain bounds how many ingest commits the store retains;
// entries older than the chain can no longer be replayed forward and are
// dropped.
const DefaultMaxChain = 64

// NewStore builds an empty store anchored at the graph's current epoch.
func NewStore(epoch uint64) *Store {
	return &Store{epoch: epoch, maxChain: DefaultMaxChain, entries: make(map[string]*Entry)}
}

// Epoch returns the current (latest committed) epoch the store tracks.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Commit records one applied ingest batch. old is the pre-commit snapshot
// (the graph the retained entries at prev were computed against); the
// store captures the out-adjacency of every op source from it so PageRank
// deltas can find targets that lost an edge. If prev does not extend the
// store's lineage (a commit was missed), all retained state is dropped —
// never serve across a gap.
func (s *Store) Commit(prev, epoch uint64, ops []EdgeOp, old *slottedpage.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev != s.epoch {
		s.chain = nil
		s.entries = make(map[string]*Entry)
	}
	c := commit{
		prev:        prev,
		epoch:       epoch,
		ops:         append([]EdgeOp(nil), ops...),
		oldAdj:      make(map[uint64][]uint64),
		oldNumVerts: old.NumVertices(),
	}
	for _, op := range ops {
		if _, ok := c.oldAdj[op.Src]; ok {
			continue
		}
		var row []uint64
		if op.Src < old.NumVertices() {
			old.NeighborsOf(op.Src, func(dst uint64) { row = append(row, dst) })
		}
		c.oldAdj[op.Src] = row
	}
	s.chain = append(s.chain, c)
	if len(s.chain) > s.maxChain {
		s.chain = s.chain[len(s.chain)-s.maxChain:]
	}
	s.epoch = epoch
	// Drop entries that fell off the replayable window.
	floor := s.chain[0].prev
	for k, e := range s.entries {
		if e.Epoch < floor {
			delete(s.entries, k)
		}
	}
}

// Capture retains a completed run's state under key. The entry is
// accepted only if it was computed at the store's current epoch — a run
// that raced with an ingest commit is silently discarded (its epoch can
// no longer be trusted as "latest", and Lookup would have to replay it
// anyway).
func (s *Store) Capture(key string, e *Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Epoch != s.epoch {
		return false
	}
	s.entries[key] = e
	return true
}

// Lookup returns the retained entry for key and the flattened delta from
// its epoch to the current one. ok is false when no entry exists or the
// chain cannot replay it forward. An entry already at the current epoch
// returns an empty delta (zero ops) — a valid, trivially convergent plan.
func (s *Store) Lookup(key string) (*Entry, Delta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return nil, Delta{}, false
	}
	d := Delta{FromEpoch: e.Epoch, ToEpoch: s.epoch, OldAdj: make(map[uint64][]uint64)}
	if e.Epoch == s.epoch {
		return e, d, true // empty delta: entry is current
	}
	// Find the chain suffix starting at the entry's epoch and check it is
	// contiguous up to the current epoch.
	i := 0
	for ; i < len(s.chain); i++ {
		if s.chain[i].prev == e.Epoch {
			break
		}
	}
	if i == len(s.chain) {
		return nil, Delta{}, false
	}
	at := e.Epoch
	for first := true; i < len(s.chain); i++ {
		c := s.chain[i]
		if c.prev != at {
			return nil, Delta{}, false
		}
		if first {
			d.OldNumVertices = c.oldNumVerts
			first = false
		}
		d.Ops = append(d.Ops, c.ops...)
		for src, row := range c.oldAdj {
			// First occurrence wins: the pre-image at the entry's epoch is
			// the earliest commit's pre-image for that source. A source
			// first touched by a later commit kept its FromEpoch adjacency
			// until then, so that commit's pre-image is still the FromEpoch
			// view.
			if _, ok := d.OldAdj[src]; !ok {
				d.OldAdj[src] = row
			}
		}
		at = c.epoch
	}
	if at != s.epoch {
		return nil, Delta{}, false
	}
	return e, d, true
}

// Invalidate drops every retained entry and the commit chain.
func (s *Store) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chain = nil
	s.entries = make(map[string]*Entry)
}

// Len reports how many entries are retained.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// AddHit records a served incremental run and the page-scans it saved
// relative to from-scratch cost.
func (s *Store) AddHit(savedPages int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	if savedPages > 0 {
		s.saved += uint64(savedPages)
	}
}

// AddFallback records an incremental request that fell back to a full run.
func (s *Store) AddFallback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fallbacks++
}

// Counters returns (hits, fallbacks, saved page-scans).
func (s *Store) Counters() (hits, fallbacks, saved uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.fallbacks, s.saved
}
