package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
)

// This file is the trace export/import layer. Two interchangeable formats:
//
//   - Chrome trace_event JSON (WriteChrome): a single JSON object whose
//     traceEvents array chrome://tracing and Perfetto load directly. The
//     run/superstep hierarchy lands on pid 0 ("gts framework"), each GPU
//     becomes a process (pid = gpu+1) and each stream a thread
//     (tid = stream+1, tid 0 being the device-level "engine" track), so
//     the viewer nests copies under kernels under supersteps visually.
//
//   - Compact JSONL (WriteJSONL): one header line carrying the trace ID
//     followed by one line per span. This is also the streaming-sink
//     format (Recorder.StreamTo) and the cheapest form to grep or diff.
//
// Both writers emit spans in insertion order with hand-formatted fields,
// so a deterministic simulation exports byte-identical files across runs
// and host-worker counts. Parse reads either format back into a Recorder.

// jsonlHeaderFormat identifies the JSONL flavor in the header line.
const jsonlHeaderFormat = "gts-trace/1"

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}

// usec renders a virtual-time instant or duration as the microsecond
// decimal Chrome's ts/dur fields expect, without float formatting so the
// output is byte-stable ("12.345", three digits of sub-microsecond).
func usec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, int64(t)/1000, int64(t)%1000)
}

func (r *Recorder) writeJSONLHeaderLocked(w io.Writer) error {
	_, err := fmt.Fprintf(w, "{\"format\":%s,\"trace_id\":%s}\n", jstr(jsonlHeaderFormat), jstr(r.id))
	return err
}

// writeSpanLine appends one JSONL span record. The dir attribute appears
// only on direction-optimized supersteps (Span.Dir != 0), so traces from
// plain kernels stay byte-identical to the pre-direction format.
func writeSpanLine(w io.Writer, s Span) error {
	dir := ""
	if d := dirName(s.Dir); d != "" {
		dir = ",\"dir\":\"" + d + "\""
	}
	_, err := fmt.Fprintf(w, "{\"kind\":%s,\"gpu\":%d,\"stream\":%d,\"page\":%d,\"level\":%d,\"start\":%d,\"end\":%d%s}\n",
		jstr(s.Kind.String()), s.GPU, s.Stream, s.Page, s.Level, int64(s.Start), int64(s.End), dir)
	return err
}

// WriteJSONL writes the compact JSONL form: a header line, then one line
// per span in insertion order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	id, spans := r.snapshot()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"format\":%s,\"trace_id\":%s}\n", jstr(jsonlHeaderFormat), jstr(id)); err != nil {
		return err
	}
	for _, s := range spans {
		if err := writeSpanLine(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// snapshot copies the recorder state under the lock.
func (r *Recorder) snapshot() (string, []Span) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return r.id, out
}

// track maps a span to its Chrome (pid, tid) coordinates: the framework
// spans (GPU -1) live on pid 0, GPU i becomes pid i+1, stream -1 the
// device-level "engine" thread (tid 0) and stream s thread tid s+1.
func track(s Span) (pid, tid int) { return s.GPU + 1, s.Stream + 1 }

// WriteChrome writes the Chrome trace_event JSON form: metadata events
// naming every process/thread in use, then one complete ("X") event per
// span — zero-duration spans (fault/retry markers) become instant ("i")
// events so viewers render them as notches instead of invisible bars.
func (r *Recorder) WriteChrome(w io.Writer) error {
	id, spans := r.snapshot()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"otherData\":{\"traceId\":%s},\"displayTimeUnit\":\"ms\",\"traceEvents\":[", jstr(id)); err != nil {
		return err
	}

	// Metadata: collect the (pid, tid) tracks in use, sorted.
	type trk struct{ pid, tid int }
	seen := map[trk]bool{}
	var tracks []trk
	for _, s := range spans {
		p, t := track(s)
		k := trk{p, t}
		if !seen[k] {
			seen[k] = true
			tracks = append(tracks, k)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(bw, "\n"+format, args...)
		return err
	}
	lastPid := -1
	for _, tk := range tracks {
		if tk.pid != lastPid {
			lastPid = tk.pid
			name := "gts framework"
			if tk.pid > 0 {
				name = fmt.Sprintf("gpu%d", tk.pid-1)
			}
			if err := emit("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%s}}", tk.pid, jstr(name)); err != nil {
				return err
			}
		}
		name := "engine"
		if tk.pid == 0 {
			name = "framework"
		} else if tk.tid > 0 {
			name = fmt.Sprintf("stream%d", tk.tid-1)
		}
		if err := emit("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", tk.pid, tk.tid, jstr(name)); err != nil {
			return err
		}
	}

	for _, s := range spans {
		pid, tid := track(s)
		kind := s.Kind.String()
		// Like the JSONL writer, the dir attribute is emitted only when set.
		dir := ""
		if d := dirName(s.Dir); d != "" {
			dir = ",\"dir\":\"" + d + "\""
		}
		if s.End <= s.Start {
			if err := emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":%s,\"cat\":%s,\"args\":{\"page\":%d,\"level\":%d%s}}",
				pid, tid, usec(s.Start), jstr(kind), jstr(kind), s.Page, s.Level, dir); err != nil {
				return err
			}
			continue
		}
		if err := emit("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s,\"cat\":%s,\"args\":{\"page\":%d,\"level\":%d%s}}",
			pid, tid, usec(s.Start), usec(s.End-s.Start), jstr(kind), jstr(kind), s.Page, s.Level, dir); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is the subset of a trace_event entry Parse consumes.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

// chromeDoc is the trace_event JSON object form.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	OtherData   struct {
		TraceID string `json:"traceId"`
	} `json:"otherData"`
}

// jsonlSpan is one JSONL span line; jsonlHeader the leading line.
type jsonlSpan struct {
	Kind   string `json:"kind"`
	GPU    int    `json:"gpu"`
	Stream int    `json:"stream"`
	Page   int64  `json:"page"`
	Level  int32  `json:"level"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Dir    string `json:"dir"`
}

type jsonlHeader struct {
	Format  string `json:"format"`
	TraceID string `json:"trace_id"`
}

// FromSpans builds a recorder holding the given spans, for rendering
// parsed traces with the usual Recorder machinery.
func FromSpans(id string, spans []Span) *Recorder {
	r := NewWithID(id)
	for _, s := range spans {
		r.Add(s)
	}
	return r
}

// Parse reads a trace exported in either format — Chrome trace_event JSON
// or JSONL — back into a Recorder. The format is auto-detected.
func Parse(data []byte) (*Recorder, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	if bytes.Contains(trimmed[:min(len(trimmed), 256)], []byte("traceEvents")) {
		return parseChrome(trimmed)
	}
	return parseJSONL(trimmed)
}

func parseChrome(data []byte) (*Recorder, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: parsing Chrome trace JSON: %w", err)
	}
	r := NewWithID(doc.OtherData.TraceID)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		kind, ok := KindByName(ev.Cat)
		if !ok {
			continue
		}
		s := Span{
			GPU:    ev.Pid - 1,
			Stream: ev.Tid - 1,
			Kind:   kind,
			Page:   argInt(ev.Args, "page", -1),
			Level:  int32(argInt(ev.Args, "level", -1)),
			Dir:    dirByName(argStr(ev.Args, "dir")),
			Start:  sim.Time(math.Round(ev.Ts * 1000)),
		}
		s.End = s.Start + sim.Time(math.Round(ev.Dur*1000))
		r.Add(s)
	}
	return r, nil
}

func argStr(args map[string]any, key string) string {
	s, _ := args[key].(string)
	return s
}

func argInt(args map[string]any, key string, def int64) int64 {
	v, ok := args[key]
	if !ok {
		return def
	}
	f, ok := v.(float64)
	if !ok {
		return def
	}
	return int64(f)
}

func parseJSONL(data []byte) (*Recorder, error) {
	r := New()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		lineNo++
		if len(line) == 0 {
			continue
		}
		if lineNo == 1 && bytes.Contains(line, []byte("\"format\"")) {
			var hdr jsonlHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, fmt.Errorf("trace: parsing JSONL header: %w", err)
			}
			r.SetID(hdr.TraceID)
			continue
		}
		var js jsonlSpan
		if err := json.Unmarshal(line, &js); err != nil {
			return nil, fmt.Errorf("trace: parsing JSONL line %d: %w", lineNo, err)
		}
		kind, ok := KindByName(js.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: JSONL line %d: unknown kind %q", lineNo, js.Kind)
		}
		r.Add(Span{GPU: js.GPU, Stream: js.Stream, Kind: kind, Page: js.Page,
			Level: js.Level, Dir: dirByName(js.Dir), Start: sim.Time(js.Start), End: sim.Time(js.End)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL: %w", err)
	}
	if r.Len() == 0 && r.ID() == "" {
		return nil, fmt.Errorf("trace: input is neither a Chrome trace nor gts JSONL")
	}
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
