package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Span{Kind: Kernel})
	if r.Spans() != nil || r.Total(Kernel) != 0 {
		t.Error("nil recorder must record nothing")
	}
	var sb strings.Builder
	if err := r.RenderTimeline(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Error("nil recorder render should say no spans")
	}
}

func TestTotals(t *testing.T) {
	r := New()
	r.Add(Span{Kind: CopyPage, Start: 0, End: sim.Second})
	r.Add(Span{Kind: CopyPage, Start: sim.Second, End: 3 * sim.Second})
	r.Add(Span{Kind: Kernel, Start: 0, End: 5 * sim.Second})
	if got := r.Total(CopyPage); got != 3*sim.Second {
		t.Errorf("copy total = %v", got)
	}
	if got := r.Total(Kernel); got != 5*sim.Second {
		t.Errorf("kernel total = %v", got)
	}
	if len(r.Spans()) != 3 {
		t.Errorf("spans = %d", len(r.Spans()))
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{CopyWA: "copyWA", CopyPage: "copy", Kernel: "kernel", StorageIO: "io", Sync: "sync"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	r := New()
	r.Add(Span{GPU: 0, Stream: 0, Kind: CopyPage, Start: 0, End: sim.Second})
	r.Add(Span{GPU: 0, Stream: 0, Kind: Kernel, Start: sim.Second, End: 4 * sim.Second})
	r.Add(Span{GPU: 0, Stream: 1, Kind: CopyPage, Start: sim.Second, End: 2 * sim.Second})
	r.Add(Span{GPU: 0, Stream: 1, Kind: Kernel, Start: 2 * sim.Second, End: 4 * sim.Second})
	var sb strings.Builder
	if err := r.RenderTimeline(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gpu0/stream0") || !strings.Contains(out, "gpu0/stream1") {
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "▒") || !strings.Contains(out, "█") {
		t.Errorf("missing copy/kernel cells:\n%s", out)
	}
}
