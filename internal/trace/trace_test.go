package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Span{Kind: Kernel})
	r.Reset()
	if r.Spans() != nil || r.Total(Kernel) != 0 || r.Len() != 0 {
		t.Error("nil recorder must record nothing")
	}
	if sum := r.Summary(); sum.Spans != 0 || sum.Makespan != 0 {
		t.Error("nil recorder summary must be zero")
	}
	var sb strings.Builder
	if err := r.RenderTimeline(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Error("nil recorder render should say no spans")
	}
}

func TestTotals(t *testing.T) {
	r := New()
	r.Add(Span{Kind: CopyPage, Start: 0, End: sim.Second})
	r.Add(Span{Kind: CopyPage, Start: sim.Second, End: 3 * sim.Second})
	r.Add(Span{Kind: Kernel, Start: 0, End: 5 * sim.Second})
	if got := r.Total(CopyPage); got != 3*sim.Second {
		t.Errorf("copy total = %v", got)
	}
	if got := r.Total(Kernel); got != 5*sim.Second {
		t.Errorf("kernel total = %v", got)
	}
	if len(r.Spans()) != 3 {
		t.Errorf("spans = %d", len(r.Spans()))
	}
}

// TestSummaryAccounting pins Summary against per-kind Totals: the one-pass
// aggregate must agree with the per-kind scans, count every span, and track
// the makespan even when spans arrive out of time order.
func TestSummaryAccounting(t *testing.T) {
	r := New()
	r.Add(Span{Kind: Kernel, Start: 2 * sim.Second, End: 9 * sim.Second})
	r.Add(Span{Kind: CopyPage, Start: 0, End: sim.Second})
	r.Add(Span{Kind: CopyPage, Start: sim.Second, End: 4 * sim.Second})
	r.Add(Span{Kind: StorageIO, Start: 0, End: 3 * sim.Second})
	r.Add(Span{Kind: CopyWA, Start: 0, End: sim.Second / 2})
	r.Add(Span{Kind: Sync, Start: 5 * sim.Second, End: 6 * sim.Second})

	sum := r.Summary()
	if sum.Spans != 6 || sum.Spans != r.Len() {
		t.Errorf("Spans = %d, Len = %d, want 6", sum.Spans, r.Len())
	}
	if sum.Makespan != 9*sim.Second {
		t.Errorf("Makespan = %v, want 9s", sum.Makespan)
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if sum.Busy[k] != r.Total(k) {
			t.Errorf("Busy[%v] = %v, Total = %v", k, sum.Busy[k], r.Total(k))
		}
	}
	if sum.Busy[CopyPage] != 4*sim.Second || sum.Busy[Kernel] != 7*sim.Second {
		t.Errorf("Busy copy/kernel = %v/%v", sum.Busy[CopyPage], sum.Busy[Kernel])
	}

	r.Reset()
	if r.Len() != 0 || r.Summary().Spans != 0 {
		t.Error("Reset did not clear the recorder")
	}
	r.Add(Span{Kind: Kernel, Start: 0, End: sim.Second})
	if r.Total(Kernel) != sim.Second {
		t.Error("recorder unusable after Reset")
	}
}

func TestMTEPS(t *testing.T) {
	cases := []struct {
		edges   int64
		elapsed sim.Time
		want    float64
	}{
		{2_000_000, sim.Second, 2},
		{68_000_000_000, 1675 * sim.Second, 68e9 / 1675 / 1e6}, // the paper's RMAT32 PageRank scale
		{1_000_000, 0, 0},                                      // no elapsed time exports 0, not +Inf
		{1_000_000, -1, 0},                                     // defensive: negative time exports 0
		{0, sim.Second, 0},
	}
	for _, c := range cases {
		if got := MTEPS(c.edges, c.elapsed); got != c.want {
			t.Errorf("MTEPS(%d, %v) = %v, want %v", c.edges, c.elapsed, got, c.want)
		}
	}
}

// TestConcurrentRecording hammers one recorder from many goroutines — the
// service layer shares a recorder across pooled engines — and checks
// nothing is lost. Run under -race via `make test-race`.
func TestConcurrentRecording(t *testing.T) {
	r := New()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Add(Span{GPU: g, Kind: Kind(i % NumKinds), Start: sim.Time(i), End: sim.Time(i + 1)})
				if i%32 == 0 {
					_ = r.Summary()
					_ = r.Total(Kernel)
					_ = r.Spans()
				}
			}
		}(g)
	}
	// Concurrent readers while writes are in flight.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.RenderTimeline(&sb, 20)
			_ = r.Len()
		}()
	}
	wg.Wait()
	sum := r.Summary()
	if sum.Spans != goroutines*perG {
		t.Errorf("recorded %d spans, want %d", sum.Spans, goroutines*perG)
	}
	var busy sim.Time
	for k := 0; k < NumKinds; k++ {
		busy += sum.Busy[k]
	}
	if want := sim.Time(goroutines * perG); busy != want {
		t.Errorf("total busy = %v, want %v", busy, want)
	}
}

// TestSpansReturnsCopy guards the export hook: mutating the returned slice
// must not corrupt the recorder.
func TestSpansReturnsCopy(t *testing.T) {
	r := New()
	r.Add(Span{Kind: Kernel, Start: 0, End: sim.Second})
	spans := r.Spans()
	spans[0].End = 100 * sim.Second
	if r.Total(Kernel) != sim.Second {
		t.Error("Spans() exposed internal storage")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{CopyWA: "copyWA", CopyPage: "copy", Kernel: "kernel",
		StorageIO: "io", Sync: "sync", Fault: "fault", Retry: "retry",
		Run: "run", Superstep: "superstep"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestKindStringExhaustive guards against the silent-fallthrough bug class:
// every declared kind must have its own unique name (none may alias the
// default case), and values outside the range must format as "kind(N)"
// rather than borrowing a real kind's name.
func TestKindStringExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); int(k) < NumKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d fell through to the default case: %q", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	for _, k := range []Kind{Kind(NumKinds), Kind(NumKinds + 7), Kind(-1)} {
		want := fmt.Sprintf("kind(%d)", int(k))
		if got := k.String(); got != want {
			t.Errorf("out-of-range kind %d.String() = %q, want %q", k, got, want)
		}
	}
	if _, ok := KindByName("kind(3)"); ok {
		t.Error("KindByName accepted the unknown-kind form")
	}
}

func TestRenderTimeline(t *testing.T) {
	r := New()
	r.Add(Span{GPU: 0, Stream: 0, Kind: CopyPage, Start: 0, End: sim.Second})
	r.Add(Span{GPU: 0, Stream: 0, Kind: Kernel, Start: sim.Second, End: 4 * sim.Second})
	r.Add(Span{GPU: 0, Stream: 1, Kind: CopyPage, Start: sim.Second, End: 2 * sim.Second})
	r.Add(Span{GPU: 0, Stream: 1, Kind: Kernel, Start: 2 * sim.Second, End: 4 * sim.Second})
	var sb strings.Builder
	if err := r.RenderTimeline(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gpu0/stream0") || !strings.Contains(out, "gpu0/stream1") {
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "▒") || !strings.Contains(out, "█") {
		t.Errorf("missing copy/kernel cells:\n%s", out)
	}
}
