// Package trace records hierarchical, request-scoped activity spans during
// a GTS run so the paper's Figure 4 timelines (copy vs. kernel bars per GPU
// stream) can be regenerated, and aggregates the transfer/kernel totals
// behind Table 1. Spans nest run → superstep → (GPU, stream) →
// copy/kernel/io/fault via the Level field and the Run/Superstep container
// kinds; export.go turns a recorder into Chrome trace_event JSON (loadable
// in chrome://tracing and Perfetto) or a compact JSONL stream, and parses
// both back. Summary and MTEPS are the metric-export hooks the service
// layer (internal/service) scrapes into its /metrics endpoint.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Kind labels a span.
type Kind int

// Span kinds.
const (
	CopyWA      Kind = iota // chunk copy of attribute data
	CopyPage                // streaming copy of a topology page (+RA)
	Kernel                  // kernel execution
	StorageIO               // SSD/HDD fetch into the main-memory buffer
	Sync                    // WA synchronization back to the host
	Fault                   // injected fault (zero-duration marker at the injection instant)
	Retry                   // recovery re-attempt (zero-duration marker)
	Run                     // the whole run, emitted once at completion
	Superstep               // one traversal level / iteration, superstep + sync
	Wave                    // one shared superstep wave of a multi-query group
	SharedCopy              // a page copy served to a member by another member's stream
	PoolHit                 // host buffer-pool pin served from a resident page (marker)
	PoolLoad                // host buffer-pool pin that loaded the page from storage (marker)
	PoolWait                // host buffer-pool pin denied (busy/no frame) — bypass read (marker)
	WALAppend               // one ingest batch appended (framed + written) to the write-ahead log
	WALFsync                // one WAL group-commit fsync
	WALReplay               // WAL recovery replay at graph-open time
	IncSeed                 // incremental run seeded from retained state (marker; Page = seed count)
	IncFallback             // incremental request fell back to a full recompute (marker)
)

// NumKinds is the count of span kinds (for Summary.Busy indexing).
const NumKinds = int(IncFallback) + 1

// String names the kind. Unknown values format as "kind(N)" rather than
// silently aliasing a real kind.
func (k Kind) String() string {
	switch k {
	case CopyWA:
		return "copyWA"
	case CopyPage:
		return "copy"
	case Kernel:
		return "kernel"
	case StorageIO:
		return "io"
	case Sync:
		return "sync"
	case Fault:
		return "fault"
	case Retry:
		return "retry"
	case Run:
		return "run"
	case Superstep:
		return "superstep"
	case Wave:
		return "wave"
	case SharedCopy:
		return "sharedcopy"
	case PoolHit:
		return "poolhit"
	case PoolLoad:
		return "poolload"
	case PoolWait:
		return "poolwait"
	case WALAppend:
		return "walappend"
	case WALFsync:
		return "walfsync"
	case WALReplay:
		return "walreplay"
	case IncSeed:
		return "incseed"
	case IncFallback:
		return "incfallback"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindByName resolves a kind name produced by Kind.String; ok is false for
// names no kind produces (including the "kind(N)" unknown form).
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Span is one recorded activity interval. GPU and Stream are -1 for spans
// that belong to the framework rather than a device track (Run, Superstep)
// or to a whole device rather than a stream (CopyWA, Sync). Level is the
// superstep (traversal level or iteration) the span belongs to, -1 for
// spans outside any superstep — it is what nests a copy/kernel/io span
// under its Superstep container, and every Superstep under the Run.
type Span struct {
	GPU    int
	Stream int
	Kind   Kind
	Page   int64 // page ID, or -1
	Level  int32 // superstep index, or -1
	// Dir is the traversal direction a direction-optimized superstep
	// executed in (1 = push, 2 = pull; see kernels.Direction). 0 for
	// non-superstep spans and plain kernels, in which case the exporters
	// omit the attribute entirely, keeping their output byte-identical to
	// pre-direction traces.
	Dir   int8
	Start sim.Time
	End   sim.Time
}

// Direction attribute values as Span.Dir carries them.
const (
	DirPush int8 = 1
	DirPull int8 = 2
)

// dirName spells a Span.Dir value as the exporters emit it ("" = omit).
func dirName(d int8) string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return ""
	}
}

// dirByName inverts dirName for the parsers; unknown spellings map to 0.
func dirByName(s string) int8 {
	switch s {
	case "push":
		return DirPush
	case "pull":
		return DirPull
	default:
		return 0
	}
}

// Recorder accumulates the spans of one traced run under a TraceID. A nil
// *Recorder is valid and records nothing, so engines can trace
// unconditionally. A Recorder is safe for concurrent use: a pooled service
// may share one recorder across parallel runs, and exports may run while
// spans are still being added.
type Recorder struct {
	mu      sync.Mutex
	id      string
	spans   []Span
	sink    io.Writer
	sinkErr error
}

// New returns an empty recorder with no trace ID.
func New() *Recorder { return &Recorder{} }

// NewWithID returns an empty recorder whose exports carry the given trace
// ID (a job ID, a benchmark name, ...).
func NewWithID(id string) *Recorder { return &Recorder{id: id} }

// ID returns the trace ID ("" when unset).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// SetID changes the trace ID carried by subsequent exports.
func (r *Recorder) SetID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.id = id
	r.mu.Unlock()
}

// StreamTo attaches a streaming JSONL sink: the header line is written
// immediately and every subsequent Add appends one span line under the
// recorder's lock, so a trace survives even if the process dies mid-run.
// Passing nil detaches the sink. The first write error latches into
// SinkErr and stops further writes.
func (r *Recorder) StreamTo(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = w
	r.sinkErr = nil
	if w == nil {
		return nil
	}
	return r.writeJSONLHeaderLocked(w)
}

// SinkErr reports the first error a streaming sink write returned.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// Add records one span.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	if r.sink != nil && r.sinkErr == nil {
		r.sinkErr = writeSpanLine(r.sink, s)
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		return nil
	}
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Reset discards all recorded spans, keeping the recorder usable.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// Total reports the summed duration of spans of the given kind.
func (r *Recorder) Total(k Kind) sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var t sim.Time
	for _, s := range r.spans {
		if s.Kind == k {
			t += s.End - s.Start
		}
	}
	return t
}

// Summary aggregates a recorder for metric export: per-kind busy time, the
// span count, and the makespan (latest span end).
type Summary struct {
	Spans    int
	Busy     [NumKinds]sim.Time
	Makespan sim.Time
}

// Summary computes the aggregate view in one pass. A nil recorder returns
// the zero Summary.
func (r *Recorder) Summary() Summary {
	var sum Summary
	if r == nil {
		return sum
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sum.Spans = len(r.spans)
	for _, s := range r.spans {
		if int(s.Kind) < NumKinds {
			sum.Busy[s.Kind] += s.End - s.Start
		}
		if s.End > sum.Makespan {
			sum.Makespan = s.End
		}
	}
	return sum
}

// MTEPS converts an edge count and a virtual elapsed time into millions of
// traversed edges per second — the paper's throughput metric. Zero elapsed
// time yields 0 rather than +Inf, so idle summaries export cleanly.
func MTEPS(edges int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(edges) / elapsed.Seconds() / 1e6
}

// RenderTimeline writes an ASCII rendering of the Figure 4 timeline: one
// row per (GPU, stream), '▒' cells for copies and '█' cells for kernel
// execution, over `width` time buckets.
func (r *Recorder) RenderTimeline(w io.Writer, width int) error {
	spans := r.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	var end sim.Time
	rows := map[[2]int][]Span{}
	var keys [][2]int
	for _, s := range spans {
		if s.Kind != CopyPage && s.Kind != Kernel {
			continue
		}
		key := [2]int{s.GPU, s.Stream}
		if _, ok := rows[key]; !ok {
			keys = append(keys, key)
		}
		rows[key] = append(rows[key], s)
		if s.End > end {
			end = s.End
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	if end == 0 {
		end = 1
	}
	bucket := func(t sim.Time) int {
		b := int(int64(t) * int64(width) / int64(end))
		if b >= width {
			b = width - 1
		}
		return b
	}
	for _, key := range keys {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '·'
		}
		for _, s := range rows[key] {
			ch := '█'
			if s.Kind == CopyPage {
				ch = '▒'
			}
			for b := bucket(s.Start); b <= bucket(s.End-1) && b < width; b++ {
				// Kernels never overwrite copies in the same bucket; both
				// being visible matters more than exact pixel ownership.
				if cells[b] == '·' || ch == '▒' {
					cells[b] = ch
				}
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d/stream%-2d %s\n", key[0], key[1], string(cells)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s\n('▒' = page copy, '█' = kernel; %d buckets over %v)\n",
		strings.Repeat("-", 14+width), width, end)
	return err
}
