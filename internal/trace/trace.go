// Package trace records per-stream activity spans during a GTS run so the
// paper's Figure 4 timelines (copy vs. kernel bars per GPU stream) can be
// regenerated, and aggregates the transfer/kernel totals behind Table 1.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind labels a span.
type Kind int

// Span kinds.
const (
	CopyWA    Kind = iota // chunk copy of attribute data
	CopyPage              // streaming copy of a topology page (+RA)
	Kernel                // kernel execution
	StorageIO             // SSD/HDD fetch into the main-memory buffer
	Sync                  // WA synchronization back to the host
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CopyWA:
		return "copyWA"
	case CopyPage:
		return "copy"
	case Kernel:
		return "kernel"
	case StorageIO:
		return "io"
	default:
		return "sync"
	}
}

// Span is one recorded activity interval.
type Span struct {
	GPU    int
	Stream int
	Kind   Kind
	Page   int64 // page ID, or -1
	Start  sim.Time
	End    sim.Time
}

// Recorder accumulates spans. A nil *Recorder is valid and records nothing,
// so engines can trace unconditionally.
type Recorder struct {
	spans []Span
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one span.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns all recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Total reports the summed duration of spans of the given kind.
func (r *Recorder) Total(k Kind) sim.Time {
	if r == nil {
		return 0
	}
	var t sim.Time
	for _, s := range r.spans {
		if s.Kind == k {
			t += s.End - s.Start
		}
	}
	return t
}

// RenderTimeline writes an ASCII rendering of the Figure 4 timeline: one
// row per (GPU, stream), '▒' cells for copies and '█' cells for kernel
// execution, over `width` time buckets.
func (r *Recorder) RenderTimeline(w io.Writer, width int) error {
	if r == nil || len(r.spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	var end sim.Time
	rows := map[[2]int][]Span{}
	var keys [][2]int
	for _, s := range r.spans {
		if s.Kind != CopyPage && s.Kind != Kernel {
			continue
		}
		key := [2]int{s.GPU, s.Stream}
		if _, ok := rows[key]; !ok {
			keys = append(keys, key)
		}
		rows[key] = append(rows[key], s)
		if s.End > end {
			end = s.End
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	if end == 0 {
		end = 1
	}
	bucket := func(t sim.Time) int {
		b := int(int64(t) * int64(width) / int64(end))
		if b >= width {
			b = width - 1
		}
		return b
	}
	for _, key := range keys {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '·'
		}
		for _, s := range rows[key] {
			ch := '█'
			if s.Kind == CopyPage {
				ch = '▒'
			}
			for b := bucket(s.Start); b <= bucket(s.End-1) && b < width; b++ {
				// Kernels never overwrite copies in the same bucket; both
				// being visible matters more than exact pixel ownership.
				if cells[b] == '·' || ch == '▒' {
					cells[b] = ch
				}
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d/stream%-2d %s\n", key[0], key[1], string(cells)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s\n('▒' = page copy, '█' = kernel; %d buckets over %v)\n",
		strings.Repeat("-", 14+width), width, end)
	return err
}
