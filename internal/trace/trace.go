// Package trace records per-stream activity spans during a GTS run so the
// paper's Figure 4 timelines (copy vs. kernel bars per GPU stream) can be
// regenerated, and aggregates the transfer/kernel totals behind Table 1.
// Summary and MTEPS are the metric-export hooks the service layer
// (internal/service) scrapes into its /metrics endpoint.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Kind labels a span.
type Kind int

// Span kinds.
const (
	CopyWA    Kind = iota // chunk copy of attribute data
	CopyPage              // streaming copy of a topology page (+RA)
	Kernel                // kernel execution
	StorageIO             // SSD/HDD fetch into the main-memory buffer
	Sync                  // WA synchronization back to the host
	Fault                 // injected fault (zero-duration marker at the injection instant)
	Retry                 // recovery re-attempt (zero-duration marker)
)

// NumKinds is the count of span kinds (for Summary.Busy indexing).
const NumKinds = int(Retry) + 1

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CopyWA:
		return "copyWA"
	case CopyPage:
		return "copy"
	case Kernel:
		return "kernel"
	case StorageIO:
		return "io"
	case Fault:
		return "fault"
	case Retry:
		return "retry"
	default:
		return "sync"
	}
}

// Span is one recorded activity interval.
type Span struct {
	GPU    int
	Stream int
	Kind   Kind
	Page   int64 // page ID, or -1
	Start  sim.Time
	End    sim.Time
}

// Recorder accumulates spans. A nil *Recorder is valid and records nothing,
// so engines can trace unconditionally. A Recorder is safe for concurrent
// use: a pooled service may share one recorder across parallel runs.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one span.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		return nil
	}
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Reset discards all recorded spans, keeping the recorder usable.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// Total reports the summed duration of spans of the given kind.
func (r *Recorder) Total(k Kind) sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var t sim.Time
	for _, s := range r.spans {
		if s.Kind == k {
			t += s.End - s.Start
		}
	}
	return t
}

// Summary aggregates a recorder for metric export: per-kind busy time, the
// span count, and the makespan (latest span end).
type Summary struct {
	Spans    int
	Busy     [NumKinds]sim.Time
	Makespan sim.Time
}

// Summary computes the aggregate view in one pass. A nil recorder returns
// the zero Summary.
func (r *Recorder) Summary() Summary {
	var sum Summary
	if r == nil {
		return sum
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sum.Spans = len(r.spans)
	for _, s := range r.spans {
		if int(s.Kind) < NumKinds {
			sum.Busy[s.Kind] += s.End - s.Start
		}
		if s.End > sum.Makespan {
			sum.Makespan = s.End
		}
	}
	return sum
}

// MTEPS converts an edge count and a virtual elapsed time into millions of
// traversed edges per second — the paper's throughput metric. Zero elapsed
// time yields 0 rather than +Inf, so idle summaries export cleanly.
func MTEPS(edges int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(edges) / elapsed.Seconds() / 1e6
}

// RenderTimeline writes an ASCII rendering of the Figure 4 timeline: one
// row per (GPU, stream), '▒' cells for copies and '█' cells for kernel
// execution, over `width` time buckets.
func (r *Recorder) RenderTimeline(w io.Writer, width int) error {
	spans := r.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	var end sim.Time
	rows := map[[2]int][]Span{}
	var keys [][2]int
	for _, s := range spans {
		if s.Kind != CopyPage && s.Kind != Kernel {
			continue
		}
		key := [2]int{s.GPU, s.Stream}
		if _, ok := rows[key]; !ok {
			keys = append(keys, key)
		}
		rows[key] = append(rows[key], s)
		if s.End > end {
			end = s.End
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	if end == 0 {
		end = 1
	}
	bucket := func(t sim.Time) int {
		b := int(int64(t) * int64(width) / int64(end))
		if b >= width {
			b = width - 1
		}
		return b
	}
	for _, key := range keys {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '·'
		}
		for _, s := range rows[key] {
			ch := '█'
			if s.Kind == CopyPage {
				ch = '▒'
			}
			for b := bucket(s.Start); b <= bucket(s.End-1) && b < width; b++ {
				// Kernels never overwrite copies in the same bucket; both
				// being visible matters more than exact pixel ownership.
				if cells[b] == '·' || ch == '▒' {
					cells[b] = ch
				}
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d/stream%-2d %s\n", key[0], key[1], string(cells)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s\n('▒' = page copy, '█' = kernel; %d buckets over %v)\n",
		strings.Repeat("-", 14+width), width, end)
	return err
}
