package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"

	"repro/internal/sim"
)

// sampleRecorder builds a small hierarchical trace covering every span
// shape the exporters must handle: framework spans (GPU -1), device-level
// spans (stream -1), stream spans, and zero-duration markers.
func sampleRecorder() *Recorder {
	r := NewWithID("test-trace-01")
	r.Add(Span{GPU: 0, Stream: -1, Kind: CopyWA, Page: -1, Level: -1, Start: 0, End: 2 * sim.Microsecond})
	r.Add(Span{GPU: 0, Stream: 0, Kind: CopyPage, Page: 3, Level: 0, Start: 2 * sim.Microsecond, End: 5 * sim.Microsecond})
	r.Add(Span{GPU: 0, Stream: 0, Kind: Kernel, Page: 3, Level: 0, Start: 5 * sim.Microsecond, End: 9 * sim.Microsecond})
	r.Add(Span{GPU: 1, Stream: 2, Kind: StorageIO, Page: 7, Level: 1, Start: 4 * sim.Microsecond, End: 6 * sim.Microsecond})
	r.Add(Span{GPU: 1, Stream: 2, Kind: Fault, Page: 7, Level: 1, Start: 6 * sim.Microsecond, End: 6 * sim.Microsecond})
	r.Add(Span{GPU: 1, Stream: 2, Kind: Retry, Page: 7, Level: 1, Start: 6 * sim.Microsecond, End: 6 * sim.Microsecond})
	r.Add(Span{GPU: 0, Stream: -1, Kind: Sync, Page: -1, Level: 1, Start: 9 * sim.Microsecond, End: 10 * sim.Microsecond})
	r.Add(Span{GPU: -1, Stream: -1, Kind: Superstep, Page: -1, Level: 0, Start: 2 * sim.Microsecond, End: 9 * sim.Microsecond})
	r.Add(Span{GPU: -1, Stream: -1, Kind: Run, Page: -1, Level: -1, Start: 0, End: 10 * sim.Microsecond})
	return r
}

func sameSpans(t *testing.T, got, want *Recorder) {
	t.Helper()
	if got.ID() != want.ID() {
		t.Errorf("trace ID = %q, want %q", got.ID(), want.ID())
	}
	gs, ws := got.Spans(), want.Spans()
	if len(gs) != len(ws) {
		t.Fatalf("span count = %d, want %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Errorf("span %d = %+v, want %+v", i, gs[i], ws[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sameSpans(t, back, r)
}

func TestChromeRoundTrip(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sameSpans(t, back, r)
}

// TestChromeIsValidJSON asserts the hand-written exporter emits a
// well-formed trace_event document: a JSON object with a traceEvents
// array, metadata naming every track, X events with microsecond ts/dur,
// and instant events for the zero-duration markers.
func TestChromeIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["traceId"] != "test-trace-01" {
		t.Errorf("traceId = %v", doc.OtherData["traceId"])
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("X event without dur: %v", ev)
			}
		case "i":
			instant++
			if ev["s"] != "t" {
				t.Errorf("instant event without thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 7 || instant != 2 {
		t.Errorf("events = %d complete + %d instant, want 7 + 2", complete, instant)
	}
	if meta == 0 {
		t.Error("no process/thread metadata emitted")
	}
	// The kernel span: ts 5us dur 4us on gpu0/stream0 (pid 1, tid 1).
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "kernel" && ev["pid"] == 1.0 && ev["tid"] == 1.0 {
			found = true
			if ev["ts"] != 5.0 || ev["dur"] != 4.0 {
				t.Errorf("kernel ts/dur = %v/%v, want 5/4", ev["ts"], ev["dur"])
			}
		}
	}
	if !found {
		t.Error("kernel event missing from gpu0/stream0 track")
	}
}

// TestExportDeterminism: the same spans export to byte-identical files,
// the property the golden-trace suite in internal/core leans on.
func TestExportDeterminism(t *testing.T) {
	var a, b, c, d bytes.Buffer
	r := sampleRecorder()
	if err := r.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&c); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome export is not deterministic")
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("JSONL export is not deterministic")
	}
}

// TestStreamingSink: spans added after StreamTo appear on the sink as
// JSONL, and the result parses to the same trace as a batch export.
func TestStreamingSink(t *testing.T) {
	var buf bytes.Buffer
	r := NewWithID("streamed")
	if err := r.StreamTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := sampleRecorder()
	for _, s := range want.Spans() {
		r.Add(s)
	}
	if err := r.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := r.StreamTo(nil); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != "streamed" {
		t.Errorf("streamed trace ID = %q", back.ID())
	}
	if back.Len() != want.Len() {
		t.Errorf("streamed %d spans, want %d", back.Len(), want.Len())
	}
}

// failAfter fails on the nth write to exercise sink error latching.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	f.n--
	return len(p), nil
}

var errSink = &sinkError{}

type sinkError struct{}

func (*sinkError) Error() string { return "sink failed" }

func TestStreamingSinkErrorLatches(t *testing.T) {
	r := New()
	if err := r.StreamTo(&failAfter{n: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Add(Span{Kind: Kernel, Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	if r.SinkErr() == nil {
		t.Fatal("sink error did not latch")
	}
	if r.Len() != 5 {
		t.Errorf("recorder dropped spans on sink failure: %d", r.Len())
	}
}

// TestConcurrentExport runs exports and streaming against concurrent Adds —
// the "export a trace mid-fault" guarantee, checked under -race by the
// `make test-race` lane.
func TestConcurrentExport(t *testing.T) {
	r := NewWithID("race")
	_ = r.StreamTo(io.Discard)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(Span{GPU: g, Stream: i % 4, Kind: Kind(i % NumKinds), Start: sim.Time(i), End: sim.Time(i + 1)})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 20; i++ {
				buf.Reset()
				_ = r.WriteChrome(&buf)
				buf.Reset()
				_ = r.WriteJSONL(&buf)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("lost spans under concurrency: %d", r.Len())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not json", "{\"foo\": 1}\n{\"bar\": 2}"} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestUsecFormatting(t *testing.T) {
	cases := map[sim.Time]string{
		0:                      "0.000",
		1:                      "0.001",
		999:                    "0.999",
		1000:                   "1.000",
		12345678:               "12345.678",
		5 * sim.Microsecond:    "5.000",
		-3*sim.Microsecond - 1: "-3.001",
	}
	for in, want := range cases {
		if got := usec(in); got != want {
			t.Errorf("usec(%d) = %q, want %q", int64(in), got, want)
		}
	}
}
