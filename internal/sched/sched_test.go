package sched_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	gts "repro"
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/trace"
)

func testGraph(t *testing.T) *gts.Graph {
	t.Helper()
	g, err := gts.Generate("RMAT27", 27-11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newSched(t *testing.T, g *gts.Graph, cfg gts.Config, scfg sched.Config) *sched.Scheduler {
	t.Helper()
	pool, err := gts.NewSystemPool(g, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(pool, scfg)
	t.Cleanup(s.Close)
	return s
}

// TestSchedulerGroupsConcurrentJobs: N concurrent submissions coalesce into
// wave groups and every result matches the solo run.
func TestSchedulerGroupsConcurrentJobs(t *testing.T) {
	g := testGraph(t)
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{Hold: 20 * time.Millisecond})

	const n = 16
	results := make([]sched.Result, n)
	errs := make([]error, n)
	kerns := make([]*kernels.BFS, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		kerns[i] = kernels.NewBFS(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Run(context.Background(), sched.Job{
				Kernel: kerns[i],
				Source: uint64(i * 128),
			})
		}()
	}
	wg.Wait()

	sys, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharedCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i].Shared {
			sharedCount++
		}
		solo, err := sys.BFS(uint64(i * 128))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kerns[i].Levels(results[i].State), solo.Levels) {
			t.Errorf("job %d differs from solo", i)
		}
	}
	if sharedCount == 0 {
		t.Error("no job was served by a wave group")
	}
	st := s.Stats()
	if st.Groups == 0 || st.GroupJobs == 0 {
		t.Errorf("stats = %+v, want grouped work", st)
	}
	if st.GroupJobs > 1 && st.SharedPageCopies == 0 {
		t.Errorf("grouped %d jobs but shared no pages: %+v", st.GroupJobs, st)
	}
	if st.AmortizedBytesPerJob() <= 0 {
		t.Errorf("AmortizedBytesPerJob = %v", st.AmortizedBytesPerJob())
	}
}

// TestSchedulerMaxGroupSplits: more concurrent jobs than MaxGroup still all
// complete (across several groups).
func TestSchedulerMaxGroupSplits(t *testing.T) {
	g := testGraph(t)
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{MaxGroup: 3, Hold: 20 * time.Millisecond})

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: uint64(i)})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.GroupJobs != n {
		t.Errorf("GroupJobs = %d, want %d", st.GroupJobs, n)
	}
}

// TestSchedulerPerJobTrace: a job's recorder receives its wave spans.
func TestSchedulerPerJobTrace(t *testing.T) {
	g := testGraph(t)
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{})

	rec := trace.NewWithID("job-1")
	if _, err := s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: 0, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	waves := 0
	for _, sp := range rec.Spans() {
		if sp.Kind == trace.Wave {
			waves++
		}
	}
	if waves == 0 {
		t.Error("job recorder has no wave spans")
	}
}

// TestSchedulerContextCancel: an expired context abandons the wait without
// sinking the scheduler.
func TestSchedulerContextCancel(t *testing.T) {
	g := testGraph(t)
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{Hold: 50 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, sched.Job{Kernel: kernels.NewBFS(g), Source: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The scheduler still serves later jobs.
	if _, err := s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: 0}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerCloseDrains: Close completes queued jobs, then further
// submissions fail with ErrClosed.
func TestSchedulerCloseDrains(t *testing.T) {
	g := testGraph(t)
	pool, err := gts.NewSystemPool(g, gts.Config{ShareStreams: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(pool, sched.Config{Hold: 20 * time.Millisecond})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: uint64(i)})
		}()
	}
	time.Sleep(5 * time.Millisecond) // let submissions queue
	s.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued job %d: %v", i, err)
		}
	}
	if _, err := s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: 0}); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
}

// TestSchedulerNoKernel: malformed jobs are rejected up front.
func TestSchedulerNoKernel(t *testing.T) {
	g := testGraph(t)
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{})
	if _, err := s.Run(context.Background(), sched.Job{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
}
