// Package sched is the per-graph topology stream scheduler: it coalesces
// concurrently submitted jobs against one graph into shared wave groups
// (gts.System.RunShared) so each topology page streams to the GPUs once per
// superstep and serves every member's kernels.
//
// One Scheduler fronts one graph (the service layer keeps one per
// graphEntry). Submissions batch for a short hold window, then launch as a
// wave group on a System claimed from the pool; jobs that arrive while a
// group is running join it at the next wave boundary through the group's
// admit callback, so a busy scheduler keeps one group open continuously
// instead of queueing convoy-style behind it. Members the shared machine
// cannot fit (their WA would not fit even after dropping the page cache)
// fall back to a private single-member run so they still honor per-job
// fault plans and trace recorders.
//
// Results are byte-identical to solo runs by construction — the engine
// precomputes each member's functional kernel work in its solo order and
// only shares the simulated data movement (see internal/core's shared-run
// commentary).
package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	gts "repro"
	"repro/internal/trace"
)

// ErrClosed reports a submission to a scheduler that has shut down.
var ErrClosed = errors.New("sched: scheduler closed")

// Job is one algorithm execution to coalesce into a wave group.
type Job struct {
	Kernel gts.Kernel
	Source uint64
	// Faults overrides the system's fault plan for this job (nil inherits).
	Faults *gts.FaultPlan
	// Trace, when non-nil, receives this job's spans (wave, copy, kernel).
	Trace *trace.Recorder
}

// Result is a completed job's output.
type Result struct {
	State   gts.KernelState
	Metrics gts.Metrics
	// Shared reports whether the job ran inside a wave group (false: it was
	// declined by the shared machine and ran as a private fallback).
	Shared bool
}

// Config tunes a Scheduler.
type Config struct {
	// MaxGroup caps members per wave group. Default 64.
	MaxGroup int
	// Hold is the batch window: after the first pending job arrives, the
	// dispatcher waits this long for companions before launching a group.
	// Jobs arriving during a running group still join it at wave
	// boundaries regardless of Hold. Default 2ms; negative disables.
	Hold time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxGroup <= 0 {
		c.MaxGroup = 64
	}
	if c.Hold == 0 {
		c.Hold = 2 * time.Millisecond
	}
	if c.Hold < 0 {
		c.Hold = 0
	}
	return c
}

// Stats counts a scheduler's lifetime activity. All byte figures come from
// the engine's group accounting.
type Stats struct {
	// Groups is how many wave groups ran; GroupJobs how many jobs they
	// served; SoloRuns how many declined jobs fell back to private runs.
	Groups    int64
	GroupJobs int64
	SoloRuns  int64
	// Waves, PageCopies, SharedPageCopies, BytesSaved and BytesToGPU
	// aggregate the groups' SharedStats.
	Waves            int64
	PageCopies       int64
	SharedPageCopies int64
	BytesSaved       int64
	BytesToGPU       int64
	// Fences counts mutation boundaries declared via Fence.
	Fences int64
}

// AmortizedBytesPerJob is the mean host-to-device traffic per group-served
// job across the scheduler's lifetime.
func (s Stats) AmortizedBytesPerJob() float64 {
	if s.GroupJobs == 0 {
		return 0
	}
	return float64(s.BytesToGPU) / float64(s.GroupJobs)
}

// pending is a submitted job waiting for (or riding in) a group.
type pending struct {
	job  Job
	gen  uint64 // fence generation at submission
	done chan struct{}
	res  Result
	err  error
}

// Scheduler coalesces jobs for one graph into wave groups over a
// SystemPool.
type Scheduler struct {
	pool *gts.SystemPool
	cfg  Config

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*pending
	gen    uint64 // current fence generation; groups never mix generations
	closed bool
	stats  Stats

	dispatcher sync.WaitGroup // the dispatcher goroutine
	solo       sync.WaitGroup // in-flight declined-job fallbacks
}

// New starts a scheduler over pool. Close must be called to stop it.
func New(pool *gts.SystemPool, cfg Config) *Scheduler {
	s := &Scheduler{pool: pool, cfg: cfg.withDefaults()}
	s.cond = sync.NewCond(&s.mu)
	s.dispatcher.Add(1)
	go func() {
		defer s.dispatcher.Done()
		s.dispatch()
	}()
	return s
}

// Run submits job and blocks until it completes or ctx is done. A context
// expiry abandons only the wait: the group keeps running its remaining
// members and the abandoned job's result is discarded.
func (s *Scheduler) Run(ctx context.Context, job Job) (Result, error) {
	if job.Kernel == nil {
		return Result{}, errors.New("sched: job has no kernel")
	}
	p := &pending{job: job, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{}, ErrClosed
	}
	p.gen = s.gen
	s.queue = append(s.queue, p)
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Stats returns a snapshot of lifetime counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close drains: queued and in-flight jobs finish, further Run calls fail
// with ErrClosed. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dispatcher.Wait()
		s.solo.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.dispatcher.Wait()
	s.solo.Wait()
}

// dispatch is the scheduler's single control loop. While a group runs, new
// arrivals are admitted into it at wave boundaries, so back-to-back load is
// served by one continuously open group per pooled System.
func (s *Scheduler) dispatch() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		closed := s.closed
		s.mu.Unlock()

		// Batch window: give concurrent submitters a moment to pile on so
		// the group forms as large as possible. Skipped when draining.
		if s.cfg.Hold > 0 && !closed {
			time.Sleep(s.cfg.Hold)
		}
		s.runGroup()
	}
}

// Fence declares a mutation boundary: jobs submitted after the fence never
// share a wave group with jobs submitted before it, so a group formed over
// one graph version is never joined by a job expecting the next version.
// Queued and running groups are unaffected — they finish against the
// snapshot they formed on.
func (s *Scheduler) Fence() {
	s.mu.Lock()
	s.gen++
	s.stats.Fences++
	s.mu.Unlock()
}

// takeHead removes up to n queued jobs of the head job's generation and
// reports that generation. A fence in the middle of the queue cuts the
// batch short; the later-generation jobs form their own group next round.
func (s *Scheduler) takeHead(n int) ([]*pending, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil, 0
	}
	gen := s.queue[0].gen
	return s.takeLocked(n, gen), gen
}

// take removes up to n queued jobs matching generation gen — the admission
// path: a running group only admits joiners from its own generation.
func (s *Scheduler) take(n int, gen uint64) []*pending {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.takeLocked(n, gen)
}

// takeLocked removes the longest prefix (≤ n) of the queue whose jobs all
// carry generation gen. Callers hold s.mu.
func (s *Scheduler) takeLocked(n int, gen uint64) []*pending {
	k := 0
	for k < len(s.queue) && k < n && s.queue[k].gen == gen {
		k++
	}
	if k == 0 {
		return nil
	}
	batch := s.queue[:k:k]
	s.queue = append([]*pending(nil), s.queue[k:]...)
	return batch
}

// runGroup claims a System and runs one wave group to completion, admitting
// late arrivals at wave boundaries. Declined members re-run privately.
func (s *Scheduler) runGroup() {
	members, gen := s.takeHead(s.cfg.MaxGroup)
	if len(members) == 0 {
		return
	}
	sys, err := s.pool.Acquire(context.Background())
	if err != nil { // pool context is never cancelled; defensive
		for _, p := range members {
			p.err = err
			close(p.done)
		}
		return
	}

	jobs := make([]gts.SharedJob, len(members))
	for i, p := range members {
		jobs[i] = gts.SharedJob{Kernel: p.job.Kernel, Source: p.job.Source, Faults: p.job.Faults, Trace: p.job.Trace}
	}
	admit := func() []gts.SharedJob {
		joiners := s.take(s.cfg.MaxGroup-len(members), gen)
		if len(joiners) == 0 {
			return nil
		}
		members = append(members, joiners...)
		out := make([]gts.SharedJob, len(joiners))
		for i, p := range joiners {
			out[i] = gts.SharedJob{Kernel: p.job.Kernel, Source: p.job.Source, Faults: p.job.Faults, Trace: p.job.Trace}
		}
		return out
	}
	outs, stats, err := sys.RunShared(jobs, admit)
	s.pool.Release(sys)

	if err != nil {
		for _, p := range members {
			p.err = err
			close(p.done)
		}
		return
	}

	s.mu.Lock()
	s.stats.Groups++
	s.stats.GroupJobs += int64(stats.Members)
	s.stats.Waves += stats.Waves
	s.stats.PageCopies += stats.PageCopies
	s.stats.SharedPageCopies += stats.SharedPageCopies
	s.stats.BytesSaved += stats.BytesSaved
	s.stats.BytesToGPU += stats.BytesToGPU
	s.mu.Unlock()

	// Outcomes pair with members by admission order (RunShared's contract).
	for i, p := range members {
		o := outs[i]
		switch {
		case o.Declined:
			s.solo.Add(1)
			go func(p *pending) {
				defer s.solo.Done()
				s.runSolo(p)
			}(p)
		case o.Err != nil:
			p.err = o.Err
			close(p.done)
		default:
			p.res = Result{State: o.State, Metrics: o.Metrics, Shared: true}
			close(p.done)
		}
	}
}

// runSolo serves one declined job on its own System as a single-member
// group: a group of one shares nothing but keeps the per-job fault and
// trace semantics, and its WA gets the whole machine to itself.
func (s *Scheduler) runSolo(p *pending) {
	defer close(p.done)
	s.mu.Lock()
	s.stats.SoloRuns++
	s.mu.Unlock()
	sys, err := s.pool.Acquire(context.Background())
	if err != nil {
		p.err = err
		return
	}
	defer s.pool.Release(sys)
	outs, _, err := sys.RunShared([]gts.SharedJob{{
		Kernel: p.job.Kernel, Source: p.job.Source, Faults: p.job.Faults, Trace: p.job.Trace,
	}}, nil)
	if err != nil {
		p.err = err
		return
	}
	o := outs[0]
	switch {
	case o.Declined:
		p.err = gts.ErrWontFit
	case o.Err != nil:
		p.err = o.Err
	default:
		p.res = Result{State: o.State, Metrics: o.Metrics}
	}
}
