package sched_test

import (
	"context"
	"sync"
	"testing"
	"time"

	gts "repro"
	"repro/internal/kernels"
	"repro/internal/sched"
)

// TestSchedulerFenceSplitsGenerations: jobs submitted across a Fence never
// coalesce into one wave group, so a group formed against one graph epoch
// is never joined by a job expecting the next epoch.
func TestSchedulerFenceSplitsGenerations(t *testing.T) {
	g := testGraph(t)
	// A long hold window so both generations are queued before any group
	// forms — without the fence they would coalesce into a single group.
	s := newSched(t, g, gts.Config{ShareStreams: true}, sched.Config{Hold: 60 * time.Millisecond})

	const perGen = 4
	var wg sync.WaitGroup
	errs := make([]error, 2*perGen)
	submit := func(base int) {
		for i := 0; i < perGen; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = s.Run(context.Background(), sched.Job{Kernel: kernels.NewBFS(g), Source: uint64(i % 8)})
			}(base + i)
		}
	}
	submit(0)
	time.Sleep(10 * time.Millisecond) // let generation-0 jobs enqueue
	s.Fence()
	submit(perGen)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Fences != 1 {
		t.Fatalf("Fences = %d, want 1", st.Fences)
	}
	if st.Groups < 2 {
		t.Fatalf("Groups = %d, want >= 2 (fence must split the generations)", st.Groups)
	}
	if st.GroupJobs+st.SoloRuns != 2*perGen {
		t.Fatalf("served %d jobs, want %d", st.GroupJobs+st.SoloRuns, 2*perGen)
	}
}
