// Package obs holds the service-layer observability primitives: mergeable
// log-bucketed latency histograms that answer p50/p90/p99 queries without
// retaining samples. A histogram is a sparse map from log-spaced buckets to
// counts — observations land in the bucket whose range covers them, and a
// quantile query walks the buckets in order and reports the upper bound of
// the bucket the target rank falls in. The relative error of any quantile
// is therefore bounded by one bucket's width: with BucketsPerOctave = 8 the
// bucket boundaries grow by 2^(1/8) ≈ 1.0905, so a reported quantile is at
// most ~9.05% above the exact sample quantile and never below it.
//
// Merging two histograms adds their bucket counts, which is exact and
// associative — shards can aggregate in any order, which is what lets the
// service keep one histogram per worker and merge on scrape.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// BucketsPerOctave is the number of log-spaced buckets per doubling of the
// value range. 8 gives a worst-case quantile overestimate of 2^(1/8)-1 ≈
// 9.05%, comparable to Prometheus native histograms' default schema.
const BucketsPerOctave = 8

// Gamma is the bucket-width growth factor, 2^(1/BucketsPerOctave). A
// quantile reported by the histogram q̂ satisfies q ≤ q̂ ≤ q·Gamma for the
// exact sample quantile q (zero and +Inf observations aside).
var Gamma = math.Pow(2, 1.0/BucketsPerOctave)

// Histogram is a mergeable log-bucketed histogram of non-negative float64
// observations. The zero value is ready to use. All methods are safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]uint64 // log-bucket index → count, finite positive values
	zeros   uint64         // observations ≤ 0 (clamped to zero)
	infs    uint64         // +Inf / NaN observations
	count   uint64
	sum     float64
}

// bucketIndex maps a finite positive value to its bucket: the integer i
// such that Gamma^i ≤ v < Gamma^(i+1), computed in log2 space so the same
// value always lands in the same bucket regardless of accumulated float
// error in a Gamma power chain.
func bucketIndex(v float64) int {
	return int(math.Floor(math.Log2(v) * BucketsPerOctave))
}

// bucketUpper is the exclusive upper bound of bucket i, Gamma^(i+1).
func bucketUpper(i int) float64 {
	return math.Pow(2, float64(i+1)/BucketsPerOctave)
}

// Observe records one observation. Values ≤ 0 count in a dedicated zero
// bucket; NaN and +Inf count in an overflow bucket (both still contribute
// to Count, and finite values to Sum).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	switch {
	case math.IsNaN(v) || math.IsInf(v, 1):
		h.infs++
	case v <= 0:
		h.zeros++
	default:
		if h.buckets == nil {
			h.buckets = make(map[int]uint64)
		}
		h.buckets[bucketIndex(v)]++
		h.sum += v
	}
}

// ObserveDuration records a wall-clock duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of all finite observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Merge adds other's observations into h. Bucket counts add exactly, so
// merging is associative and commutative; only the float sum accumulates
// rounding in the usual IEEE way. Merging a histogram into itself is safe.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		if other == h && h != nil {
			h.mu.Lock()
			for i, c := range h.buckets {
				h.buckets[i] = c * 2
			}
			h.zeros *= 2
			h.infs *= 2
			h.count *= 2
			h.sum *= 2
			h.mu.Unlock()
		}
		return
	}
	// Snapshot other first: locking both in a fixed order is not possible
	// for arbitrary pairs, and a snapshot keeps Merge deadlock-free.
	snap := other.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buckets == nil && len(snap.Buckets) > 0 {
		h.buckets = make(map[int]uint64, len(snap.Buckets))
	}
	for _, b := range snap.Buckets {
		h.buckets[b.Index] += b.Count
	}
	h.zeros += snap.Zeros
	h.infs += snap.Infs
	h.count += snap.Count
	h.sum += snap.Sum
}

// Bucket is one populated bucket in a Snapshot, covering (Lower, Upper].
type Bucket struct {
	Index int
	Upper float64 // exclusive upper bound Gamma^(Index+1)
	Count uint64
}

// Snapshot is a point-in-time copy of a histogram, ordered by bucket.
type Snapshot struct {
	Buckets []Bucket // ascending by Index
	Zeros   uint64
	Infs    uint64
	Count   uint64
	Sum     float64
}

// Snapshot copies the histogram state, with buckets sorted ascending.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	s := Snapshot{Zeros: h.zeros, Infs: h.infs, Count: h.count, Sum: h.sum}
	s.Buckets = make([]Bucket, 0, len(h.buckets))
	for i, c := range h.buckets {
		s.Buckets = append(s.Buckets, Bucket{Index: i, Upper: bucketUpper(i), Count: c})
	}
	h.mu.Unlock()
	sort.Slice(s.Buckets, func(a, b int) bool { return s.Buckets[a].Index < s.Buckets[b].Index })
	return s
}

// Quantile reports an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observed values: the upper edge of the bucket holding the target rank.
// The result never underestimates the exact sample quantile and
// overestimates it by at most a factor of Gamma. An empty histogram
// reports 0; a rank landing in the overflow bucket reports +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile on a snapshot — same contract as Histogram.Quantile, usable on
// merged or parsed snapshots without rebuilding a Histogram.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want: the
	// smallest value v such that at least ceil(q·n) observations are ≤ v
	// (the "lower" empirical quantile, matching a sorted-sample oracle
	// sample[ceil(q·n)-1]).
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	seen += s.Zeros
	if rank <= seen {
		return 0
	}
	for _, b := range s.Buckets {
		seen += b.Count
		if rank <= seen {
			return b.Upper
		}
	}
	return math.Inf(1)
}

// WritePrometheus emits the histogram as one Prometheus text-format
// histogram family: cumulative `le` buckets over the populated range, a
// +Inf bucket, and the _sum/_count pair. labels is the label set rendered
// inside the braces ("" for none). The bucket edges are the histogram's
// own log-spaced bounds, so scrapes carry the full resolution.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) error {
	s := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	cum = s.Zeros
	if s.Zeros > 0 {
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"0\"} %d\n", name, labels, sep, cum); err != nil {
			return err
		}
	}
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b.Upper, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count); err != nil {
		return err
	}
	braces := ""
	if labels != "" {
		braces = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, braces, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braces, s.Count)
	return err
}
