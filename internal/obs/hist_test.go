package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the sorted-sample oracle the histogram approximates:
// the lower empirical quantile sample[ceil(q·n)-1], with negatives clamped
// to 0 the way Observe clamps them.
func exactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	clamped := make([]float64, len(samples))
	for i, v := range samples {
		if v < 0 {
			v = 0
		}
		clamped[i] = v
	}
	sort.Float64s(clamped)
	rank := int(math.Ceil(q * float64(len(clamped))))
	if rank < 1 {
		rank = 1
	}
	return clamped[rank-1]
}

// checkBound asserts the histogram's quantile estimate brackets the exact
// oracle: never below it, and above by at most one bucket width (factor
// Gamma), the error bound the package documents.
func checkBound(t *testing.T, got, exact, q float64) {
	t.Helper()
	const eps = 1e-9
	if got < exact*(1-eps) {
		t.Errorf("q=%v: histogram %v underestimates exact %v", q, got, exact)
	}
	if exact > 0 && got > exact*Gamma*(1+eps) {
		t.Errorf("q=%v: histogram %v exceeds exact %v by more than Gamma=%v", q, got, exact, Gamma)
	}
	if exact == 0 && got != 0 {
		t.Errorf("q=%v: exact is 0 but histogram reports %v", q, got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("zero histogram has nonzero count/sum")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestObserveBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 55 {
		t.Errorf("sum = %v", h.Sum())
	}
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		checkBound(t, h.Quantile(q), exactQuantile(samples, q), q)
	}
}

func TestObserveEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	// Two zeros sort first, so p0.4 is 0; 1 is rank 3 of 5 → p0.6 is in the
	// value-1 bucket; the top ranks fall in the overflow bucket.
	if got := h.Quantile(0.4); got != 0 {
		t.Errorf("p40 = %v, want 0", got)
	}
	if got := h.Quantile(0.6); got < 1 || got > Gamma*(1+1e-9) {
		t.Errorf("p60 = %v, want within [1, Gamma]", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 = %v, want +Inf", got)
	}
	if s := h.Sum(); s != 1 {
		t.Errorf("sum = %v, want 1 (only finite positives contribute)", s)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Quantile(1); got < 0.25 || got > 0.25*Gamma*(1+1e-9) {
		t.Errorf("p100 = %v, want ≈0.25s within one bucket", got)
	}
}

// TestQuantileMonotonic: for any fixed data, Quantile must be monotone
// nondecreasing in q — the ISSUE's quantile-monotonicity property.
func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(math.Exp(rng.NormFloat64() * 3))
	}
	h.Observe(0) // include the zero bucket in the walk
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0+1e-12; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, got, prev)
		}
		prev = got
	}
}

// TestMergeAssociative: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree exactly on every
// bucket count, and their quantiles coincide — bucket merge is integer
// addition, so associativity is exact.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int) *Histogram {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Observe(rng.Float64() * 1000)
		}
		return h
	}
	fill := func(dst *Histogram, parts ...*Histogram) {
		for _, p := range parts {
			dst.Merge(p)
		}
	}
	a, b, c := mk(100), mk(250), mk(57)

	var left, right Histogram
	var ab, bc Histogram
	fill(&ab, a, b)
	fill(&left, &ab, c)
	fill(&bc, b, c)
	fill(&right, a, &bc)

	ls, rs := left.Snapshot(), right.Snapshot()
	if ls.Count != rs.Count || ls.Zeros != rs.Zeros || ls.Infs != rs.Infs {
		t.Fatalf("counts differ: %+v vs %+v", ls, rs)
	}
	if len(ls.Buckets) != len(rs.Buckets) {
		t.Fatalf("bucket sets differ: %d vs %d", len(ls.Buckets), len(rs.Buckets))
	}
	for i := range ls.Buckets {
		if ls.Buckets[i] != rs.Buckets[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, ls.Buckets[i], rs.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Errorf("q=%v: %v vs %v", q, left.Quantile(q), right.Quantile(q))
		}
	}
	if math.Abs(ls.Sum-rs.Sum) > 1e-6*math.Abs(ls.Sum) {
		t.Errorf("sums diverged beyond float tolerance: %v vs %v", ls.Sum, rs.Sum)
	}
}

// TestMergeMatchesDirect: merging shards gives the same buckets as
// observing everything into one histogram.
func TestMergeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := make([]float64, 400)
	for i := range samples {
		samples[i] = math.Exp(rng.NormFloat64()*2 + 1)
	}
	var direct, merged Histogram
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	for i, v := range samples {
		direct.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	for _, sh := range shards {
		merged.Merge(sh)
	}
	ds, ms := direct.Snapshot(), merged.Snapshot()
	if ds.Count != ms.Count || len(ds.Buckets) != len(ms.Buckets) {
		t.Fatalf("merged shape differs from direct: %d/%d buckets, %d/%d count",
			len(ds.Buckets), len(ms.Buckets), ds.Count, ms.Count)
	}
	for i := range ds.Buckets {
		if ds.Buckets[i] != ms.Buckets[i] {
			t.Errorf("bucket %d: direct %+v merged %+v", i, ds.Buckets[i], ms.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		checkBound(t, merged.Quantile(q), exactQuantile(samples, q), q)
	}
}

func TestMergeSelfAndNil(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	h.Merge(nil)
	if h.Count() != 2 {
		t.Errorf("merge(nil) changed count: %d", h.Count())
	}
	h.Merge(&h)
	if h.Count() != 4 || h.Sum() != 6 {
		t.Errorf("self-merge: count=%d sum=%v, want 4/6", h.Count(), h.Sum())
	}
}

// TestQuantileOracle sweeps several distributions against the exact
// sorted-sample oracle at many quantiles — the deterministic cousin of the
// fuzz target below.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 4) },
		"heavytail": func() float64 { return 1 / (1 - rng.Float64()) },
		"tiny":      func() float64 { return rng.Float64() * 1e-9 },
		"huge":      func() float64 { return rng.Float64() * 1e12 },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]float64, 1000)
			for i := range samples {
				samples[i] = gen()
				h.Observe(samples[i])
			}
			for q := 0.01; q < 1.0; q += 0.07 {
				checkBound(t, h.Quantile(q), exactQuantile(samples, q), q)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				checkBound(t, h.Quantile(q), exactQuantile(samples, q), q)
			}
		})
	}
}

// FuzzQuantileVsOracle feeds arbitrary byte strings, decoded as a sample
// list, through both the histogram and the exact oracle, asserting the
// documented error bound at several quantiles plus monotonicity.
func FuzzQuantileVsOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 254, 1, 128, 7, 9, 200, 33})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Decode bytes into positive floats spanning many octaves:
		// value = (1 + b%16) · 2^(b/16 - 8), range ~2^-8 .. 16·2^7.
		samples := make([]float64, 0, len(data))
		var h Histogram
		for _, b := range data {
			v := float64(1+b%16) * math.Pow(2, float64(b/16)-8)
			samples = append(samples, v)
			h.Observe(v)
		}
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("count = %d, want %d", h.Count(), len(samples))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if got < prev {
				t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, got, prev)
			}
			prev = got
			checkBound(t, got, exactQuantile(samples, q), q)
		}
	})
}

func TestConcurrentObserveAndMerge(t *testing.T) {
	var h Histogram
	var agg Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g*500+i) + 0.5)
				if i%100 == 0 {
					_ = h.Quantile(0.5)
					agg.Merge(&h)
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8*500 {
		t.Errorf("lost observations: %d", h.Count())
	}
}

func TestWritePrometheus(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(2.1)
	var sb strings.Builder
	if err := h.WritePrometheus(&sb, "gtsd_job_run_wall_seconds", `algo="bfs"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`gtsd_job_run_wall_seconds_bucket{algo="bfs",le="0"} 1`,
		`gtsd_job_run_wall_seconds_bucket{algo="bfs",le="+Inf"} 4`,
		`gtsd_job_run_wall_seconds_sum{algo="bfs"} 4.6`,
		`gtsd_job_run_wall_seconds_count{algo="bfs"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: counts never decrease down the bucket list.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		fields := strings.Fields(line)
		var c uint64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &c); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if c < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = c
	}

	// No labels: _sum/_count carry no braces.
	var h2 Histogram
	h2.Observe(1)
	sb.Reset()
	if err := h2.WritePrometheus(&sb, "m", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m_count 1") || strings.Contains(sb.String(), "m_count{}") {
		t.Errorf("unlabeled form wrong:\n%s", sb.String())
	}
}
