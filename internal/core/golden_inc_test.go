package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/incremental"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// incGoldenBatch is the fixed commit applied on top of the seeded RMAT
// fixture for the incremental golden digests: inserts among existing
// vertices only, so every planner stays on the delta-expansion path
// (deletes would legitimately push CC into fallback, which has no
// incremental digest to pin).
func incGoldenBatch() []slottedpage.EdgeOp {
	return []slottedpage.EdgeOp{
		{Src: 3, Dst: 1501}, {Src: 1501, Dst: 3},
		{Src: 7, Dst: 900}, {Src: 1200, Dst: 41},
	}
}

// incGoldenSetup captures retained entries from serial clean full runs at
// epoch 0, applies the fixed batch, and returns the post-commit graph
// plus a store whose Lookup yields a one-commit delta for every algo.
func incGoldenSetup(t *testing.T) (*slottedpage.Graph, *incremental.Store) {
	t.Helper()
	sp := buildPages(t, rmatGraph(t))
	st := incremental.NewStore(0)

	bfs := kernels.NewBFS(sp)
	rep := mustRun(t, newEngine(t, sp, Options{Source: 0, HostWorkers: 1}, 1, 0), bfs)
	st.Capture("bfs", &incremental.Entry{
		Kind: incremental.KindBFS, Epoch: 0, Source: 0,
		Levels:    append([]int16(nil), bfs.Levels(rep.State)...),
		FullPages: rep.PagesStreamed,
	})
	cc := kernels.NewCC(sp)
	rep = mustRun(t, newEngine(t, sp, Options{HostWorkers: 1}, 1, 0), cc)
	st.Capture("cc", &incremental.Entry{
		Kind: incremental.KindCC, Epoch: 0,
		Labels:    append([]uint32(nil), cc.Components(rep.State)...),
		FullPages: rep.PagesStreamed,
	})
	pr := incremental.NewRecordingPageRank(sp, 0.85, 5)
	rep = mustRun(t, newEngine(t, sp, Options{HostWorkers: 1}, 1, 0), pr)
	st.Capture("pagerank", &incremental.Entry{
		Kind: incremental.KindPageRank, Epoch: 0,
		Traj: pr.Traj, Damping: 0.85, Iterations: 5,
		FullPages: rep.PagesStreamed,
	})

	mut := slottedpage.NewMutable(sp)
	g2, err := mut.ApplyBatch(incGoldenBatch())
	if err != nil {
		t.Fatal(err)
	}
	st.Commit(0, 1, incGoldenBatch(), sp)
	return g2, st
}

// incGoldenKernel plans one algorithm's delta-expansion kernel against the
// post-commit graph. Kernels accumulate run state, so a fresh plan is
// built for every execution.
func incGoldenKernel(t *testing.T, g *slottedpage.Graph, st *incremental.Store, algo string) (kernels.Kernel, func(kernels.State) []byte, int) {
	t.Helper()
	e, d, ok := st.Lookup(algo)
	if !ok {
		t.Fatalf("%s: no retained entry", algo)
	}
	switch algo {
	case "bfs":
		k, reason := incremental.PlanBFS(g, e, d)
		if reason != "" {
			t.Fatalf("bfs plan refused: %s", reason)
		}
		return k, func(s kernels.State) []byte { return encodeVec(k.Levels(s)) }, k.Seeds
	case "cc":
		k, reason := incremental.PlanCC(g, e, d)
		if reason != "" {
			t.Fatalf("cc plan refused: %s", reason)
		}
		return k, func(s kernels.State) []byte { return encodeVec(k.Components(s)) }, k.Seeds
	case "pagerank":
		k, reason := incremental.PlanPageRank(g, e, d, 0.85, 5)
		if reason != "" {
			t.Fatalf("pagerank plan refused: %s", reason)
		}
		return k, func(s kernels.State) []byte { return encodeVec(k.Ranks(s)) }, k.Seeds
	}
	t.Fatalf("unknown algo %q", algo)
	return nil, nil, 0
}

func incGoldenDigest(t *testing.T, g *slottedpage.Graph, st *incremental.Store, algo string, workers int, faulted bool) string {
	t.Helper()
	k, enc, _ := incGoldenKernel(t, g, st, algo)
	opts := Options{Source: 0, HostWorkers: workers}
	if faulted {
		opts.Faults = chaosPlan()
	}
	rep := mustRun(t, newEngine(t, g, opts, 1, 0), k)
	sum := sha256.Sum256(enc(rep.State))
	return hex.EncodeToString(sum[:])
}

// TestGoldenIncremental pins the incremental-path result digests beside
// the full-kernel ones in golden.json, under "inc-" keys: each retained
// algorithm re-executed by delta expansion over the fixed batch must
// reproduce its checked-in digest at serial and parallel worker counts,
// fault-free and under the chaos plan. By the exactness contract these
// digests equal a from-scratch digest on the post-commit graph — which is
// asserted directly, so a drift in either path is caught even when the
// golden file is being rewritten.
func TestGoldenIncremental(t *testing.T) {
	g, st := incGoldenSetup(t)
	algos := []string{"bfs", "cc", "pagerank"}
	full := map[string]kernelCase{}
	for _, kc := range kernelCases() {
		switch kc.name {
		case "BFS":
			full["bfs"] = kc
		case "CC":
			full["cc"] = kc
		case "PageRank":
			full["pagerank"] = kc
		}
	}
	fromScratch := func(algo string) string {
		raw, _ := runDigest(t, g, full[algo], Options{Source: 0, HostWorkers: 1}, 1, 0)
		sum := sha256.Sum256(raw)
		return hex.EncodeToString(sum[:])
	}

	if *updateGolden {
		m := map[string]goldenEntry{}
		if raw, err := os.ReadFile(goldenPath); err == nil {
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("parsing %s: %v", goldenPath, err)
			}
		}
		for _, algo := range algos {
			clean := incGoldenDigest(t, g, st, algo, 1, false)
			if clean != fromScratch(algo) {
				t.Fatalf("%s: incremental digest being pinned differs from from-scratch recompute", algo)
			}
			m["inc-"+algo] = goldenEntry{
				Clean:   clean,
				Faulted: incGoldenDigest(t, g, st, algo, 1, true),
			}
		}
		raw, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(m))
		return
	}

	golden := readGolden(t)
	for _, algo := range algos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			want, ok := golden["inc-"+algo]
			if !ok {
				t.Fatalf("golden file has no inc-%s entry — re-pin with -update-golden", algo)
			}
			if want.Clean != fromScratch(algo) {
				t.Errorf("pinned clean digest differs from a from-scratch recompute on the post-commit graph")
			}
			_, _, seeds := incGoldenKernel(t, g, st, algo)
			if seeds == 0 {
				t.Errorf("delta plan has no seeds — the batch did not exercise delta expansion")
			}
			for _, workers := range []int{1, 4, 8} {
				if got := incGoldenDigest(t, g, st, algo, workers, false); got != want.Clean {
					t.Errorf("workers=%d clean digest = %s, want %s", workers, got, want.Clean)
				}
				if got := incGoldenDigest(t, g, st, algo, workers, true); got != want.Faulted {
					t.Errorf("workers=%d faulted digest = %s, want %s", workers, got, want.Faulted)
				}
			}
		})
	}
}

const incTraceName = "inc_bfs_clean"

// incTraceExports runs the incremental BFS plan with the service-shaped
// recorder — the incseed marker span first, then the engine timeline on a
// 1-GPU/1-SSD machine — and returns both export encodings.
func incTraceExports(t *testing.T, g *slottedpage.Graph, st *incremental.Store, workers int) (chrome, jsonl []byte, seeds int) {
	t.Helper()
	k, _, seeds := incGoldenKernel(t, g, st, "bfs")
	rec := trace.NewWithID(incTraceName)
	rec.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.IncSeed, Page: int64(seeds), Level: -1})
	mustRun(t, newEngine(t, g, Options{Source: 0, HostWorkers: workers, Trace: rec}, 1, 1), k)
	var cb, jb bytes.Buffer
	if err := rec.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes(), seeds
}

// TestGoldenIncrementalTrace pins a trace fixture for the incremental
// path: an incseed marker followed by the delta-expansion BFS timeline.
// Both exports must be byte-identical across worker counts and reruns,
// must survive the parser with the incseed span (and its seed count)
// intact, and the pre-existing fixtures stay untouched — this case writes
// only its own pair of files.
func TestGoldenIncrementalTrace(t *testing.T) {
	g, st := incGoldenSetup(t)

	if *updateGolden {
		chrome, jsonl, _ := incTraceExports(t, g, st, 1)
		if err := os.WriteFile(traceGoldenPath(incTraceName, "json"), chrome, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(traceGoldenPath(incTraceName, "jsonl"), jsonl, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (.json %d bytes, .jsonl %d bytes)", traceGoldenPath(incTraceName, "*"), len(chrome), len(jsonl))
		return
	}

	wantChrome, err := os.ReadFile(traceGoldenPath(incTraceName, "json"))
	if err != nil {
		t.Fatalf("reading golden (run -update-golden to create): %v", err)
	}
	wantJSONL, err := os.ReadFile(traceGoldenPath(incTraceName, "jsonl"))
	if err != nil {
		t.Fatalf("reading golden (run -update-golden to create): %v", err)
	}
	var wantSeeds int
	for _, workers := range []int{1, 8} {
		chrome, jsonl, seeds := incTraceExports(t, g, st, workers)
		wantSeeds = seeds
		if !bytes.Equal(chrome, wantChrome) {
			t.Errorf("workers=%d: Chrome export differs from golden (%d vs %d bytes)", workers, len(chrome), len(wantChrome))
		}
		if !bytes.Equal(jsonl, wantJSONL) {
			t.Errorf("workers=%d: JSONL export differs from golden (%d vs %d bytes)", workers, len(jsonl), len(wantJSONL))
		}
	}
	for _, enc := range [][]byte{wantChrome, wantJSONL} {
		rec, err := trace.Parse(enc)
		if err != nil {
			t.Fatalf("golden export unparseable: %v", err)
		}
		var incSeeds int
		for _, s := range rec.Spans() {
			if s.Kind == trace.IncSeed {
				incSeeds++
				if s.Page != int64(wantSeeds) || s.Page <= 0 {
					t.Errorf("incseed span carries seed count %d, want %d (> 0)", s.Page, wantSeeds)
				}
			}
		}
		if incSeeds != 1 {
			t.Errorf("parsed %d incseed spans, want exactly 1", incSeeds)
		}
	}
	if !bytes.Contains(wantJSONL, []byte("incseed")) {
		t.Error("JSONL fixture does not name the incseed span kind")
	}
}
