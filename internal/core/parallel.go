package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// This file implements the host-parallel side of the tentpole: the
// functional kernel work phase() precomputes is fanned out to a pool of
// HostWorkers goroutines using the kernels' gather/apply contract
// (internal/kernels/deferred.go), with deferred writes applied in the same
// deterministic (GPU, page) order the serial path uses. The simulation
// itself stays single-threaded — the pool runs between sim events, so
// virtual time, traces, and fault schedules are untouched by parallelism.

// waveFactor sizes gather waves as workers*waveFactor pages: large enough
// to amortize the barrier, small enough to bound deferred-buffer memory
// and keep Apply's cache footprint warm.
const waveFactor = 8

// deferredPool recycles per-page deferred-write buffers across waves and
// runs so steady-state gathers allocate nothing.
var deferredPool = sync.Pool{New: func() any { return new(kernels.Deferred) }}

// gatherFuncs binds one direction (forward or backward) of a kernel's
// gather/apply contract.
type gatherFuncs struct {
	sp    func(*kernels.Args, *kernels.Deferred) kernels.Result
	lp    func(*kernels.Args, *kernels.Deferred) kernels.Result
	apply func(*kernels.Args, *kernels.Deferred, *kernels.Result)
}

// gatherFor resolves the gather/apply entry points for k in the given
// direction; ok is false when the kernel only supports the serial path
// (SSSP, or any future kernel that opts out).
func gatherFor(k kernels.Kernel, backward bool) (gatherFuncs, bool) {
	if backward {
		gb, ok := k.(kernels.GatherBackwardKernel)
		if !ok {
			return gatherFuncs{}, false
		}
		return gatherFuncs{sp: gb.GatherSPBack, lp: gb.GatherLPBack, apply: gb.ApplyBack}, true
	}
	gk, ok := k.(kernels.GatherKernel)
	if !ok {
		return gatherFuncs{}, false
	}
	return gatherFuncs{sp: gk.GatherSP, lp: gk.GatherLP, apply: gk.Apply}, true
}

// kernelArgs assembles the kernels.Args for one (GPU, page) execution.
func (r *run) kernelArgs(gpuIdx int, pid slottedpage.PageID, level int32, local pidSet) kernels.Args {
	g := r.eng.graph
	return kernels.Args{
		Graph:    g,
		PID:      pid,
		Page:     g.Page(pid),
		State:    r.stateFor(gpuIdx),
		Level:    level,
		OwnedLo:  r.owned[gpuIdx][0],
		OwnedHi:  r.owned[gpuIdx][1],
		Tech:     r.eng.opts.Technique,
		NextPIDs: local,
	}
}

// computeKernels runs the phase's (GPU, page) jobs and memoizes their
// results into r.kres. With a gatherable kernel and >1 worker it proceeds
// in waves: each wave's pages gather concurrently (work-stealing off an
// atomic cursor) against the state left by all previously applied pages,
// then the wave's deferred writes are applied serially in job order.
// Otherwise it falls back to the serial loop. Both paths accrue the real
// wall-clock spent into r.hostKernelWall.
func (r *run) computeKernels(jobs []pageKey, level int32, locals []pidSet, backward bool) {
	t0 := time.Now()

	// Decide the serial fallback before resolving gather entry points:
	// binding method values allocates, and the serial hot path must not.
	// (gatherPhase is a separate method for the same reason — its goroutine
	// closure captures locals that would otherwise be heap-allocated even on
	// serial calls.)
	if r.workers >= 2 && len(jobs) >= 2 {
		if gf, ok := gatherFor(r.k, backward); ok {
			r.gatherPhase(jobs, level, locals, gf)
			r.hostKernelWall += time.Since(t0)
			return
		}
	}
	for _, job := range jobs {
		r.kres[job] = r.runKernel(job.gpu, job.pid, level, locals[job.gpu], backward)
	}
	r.hostKernelWall += time.Since(t0)
}

// gatherPhase is computeKernels' parallel body: wave-sized batches gather
// concurrently, then apply serially in job order.
func (r *run) gatherPhase(jobs []pageKey, level int32, locals []pidSet, gf gatherFuncs) {
	g := r.eng.graph
	wave := r.workers * waveFactor
	for start := 0; start < len(jobs); start += wave {
		end := start + wave
		if end > len(jobs) {
			end = len(jobs)
		}
		batch := jobs[start:end]

		if cap(r.gatherRes) < len(batch) {
			r.gatherRes = make([]kernels.Result, len(batch))
			r.gatherDefs = make([]*kernels.Deferred, len(batch))
		}
		res := r.gatherRes[:len(batch)]
		defs := r.gatherDefs[:len(batch)]
		for i := range defs {
			d := deferredPool.Get().(*kernels.Deferred)
			d.Reset()
			defs[i] = d
		}

		workers := r.workers
		if workers > len(batch) {
			workers = len(batch)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				// One Args per goroutine, not per page: &args escapes into
				// the interface call, so hoisting it caps the gather path at
				// one allocation per worker per wave.
				var args kernels.Args
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					job := batch[i]
					args = r.kernelArgs(job.gpu, job.pid, level, locals[job.gpu])
					if g.Kind(job.pid) == slottedpage.LargePage {
						res[i] = gf.lp(&args, defs[i])
					} else {
						res[i] = gf.sp(&args, defs[i])
					}
				}
			}()
		}
		wg.Wait()

		// Deterministic merge: commit each page's deferred writes in job
		// order — exactly the order the serial loop mutates state in.
		for i, job := range batch {
			r.argScratch = r.kernelArgs(job.gpu, job.pid, level, locals[job.gpu])
			kr := res[i]
			gf.apply(&r.argScratch, defs[i], &kr)
			r.kres[job] = kr
			defs[i].Reset()
			deferredPool.Put(defs[i])
			defs[i] = nil
		}
	}
}

// getPidSet takes a cleared page-ID bitset from the run's pool.
func (r *run) getPidSet() pidSet {
	s := r.pidPool.Get().(pidSet)
	s.Reset()
	return s
}

// putPidSet returns a bitset to the pool. nil is ignored.
func (r *run) putPidSet(s pidSet) {
	if s != nil {
		r.pidPool.Put(s)
	}
}
