package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// kernelCase binds a kernel constructor to a deterministic byte encoding of
// its final state, so the serial and parallel paths can be compared
// bit-for-bit without reaching into kernel internals.
type kernelCase struct {
	name string
	make func(sp *slottedpage.Graph) kernels.Kernel
	enc  func(k kernels.Kernel, st kernels.State) []byte
}

func encodeVec(t any) []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, t); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// kernelCases lists every built-in kernel: the gatherable ten plus SSSP,
// whose serial fallback must also be insensitive to HostWorkers.
func kernelCases() []kernelCase {
	return []kernelCase{
		{"BFS",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewBFS(sp) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.BFS).Levels(st)) }},
		{"SSSP",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewSSSP(sp) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.SSSP).Distances(st)) }},
		{"PageRank",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewPageRank(sp, 0.85, 5) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.PageRank).Ranks(st)) }},
		{"CC",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewCC(sp) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.CC).Components(st)) }},
		{"BC",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewBC(sp) },
			func(k kernels.Kernel, st kernels.State) []byte {
				return encodeVec(k.(*kernels.BC).Centrality(st, 0))
			}},
		{"Neighborhood",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewNeighborhood(sp, 3) },
			func(k kernels.Kernel, st kernels.State) []byte {
				return encodeVec(k.(*kernels.Neighborhood).Members(st))
			}},
		{"CrossEdges",
			func(sp *slottedpage.Graph) kernels.Kernel {
				return kernels.NewCrossEdges(sp, func(v uint64) bool { return v%2 == 0 })
			},
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.CrossEdges).Total(st)) }},
		{"RWR",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewRWR(sp, 0.15, 5) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.RWR).Scores(st)) }},
		{"DegreeDist",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewDegreeDist(sp) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.DegreeDist).Degrees(st)) }},
		{"KCore",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewKCore(sp, 3) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.KCore).InCore(st)) }},
		{"Radius",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewRadius(sp, 4, 8) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.Radius).Radii(st)) }},
		// The direction-optimizing frontier kernels, in every direction mode:
		// adaptive switching, forced push, and forced pull must each be
		// worker-count invariant (and, by TestDirOptMatchesPlainKernels,
		// agree with the plain kernels above).
		{"BFS-diropt",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewDirBFS(sp) },
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.DirBFS).Levels(st)) }},
		{"BFS-diropt-push",
			func(sp *slottedpage.Graph) kernels.Kernel {
				k := kernels.NewDirBFS(sp)
				k.SetMode(kernels.DirForcePush)
				return k
			},
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.DirBFS).Levels(st)) }},
		{"BFS-diropt-pull",
			func(sp *slottedpage.Graph) kernels.Kernel {
				k := kernels.NewDirBFS(sp)
				k.SetMode(kernels.DirForcePull)
				return k
			},
			func(k kernels.Kernel, st kernels.State) []byte { return encodeVec(k.(*kernels.DirBFS).Levels(st)) }},
		{"SSSP-delta",
			func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewDeltaSSSP(sp) },
			func(k kernels.Kernel, st kernels.State) []byte {
				return encodeVec(k.(*kernels.DeltaSSSP).Distances(st))
			}},
	}
}

// TestDirOptMatchesPlainKernels pins the direction-optimizing kernels to
// their plain counterparts: DirBFS in every mode must reproduce BFS's
// levels byte-for-byte, and DeltaSSSP must reproduce SSSP's distances,
// at serial and parallel worker counts.
func TestDirOptMatchesPlainKernels(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	cases := kernelCases()
	pairs := []struct{ plain, diropt kernelCase }{
		{cases[0], cases[11]}, // BFS vs BFS-diropt
		{cases[0], cases[12]}, // BFS vs forced push
		{cases[0], cases[13]}, // BFS vs forced pull
		{cases[1], cases[14]}, // SSSP vs SSSP-delta
	}
	for _, p := range pairs {
		t.Run(p.diropt.name, func(t *testing.T) {
			want, _ := runDigest(t, sp, p.plain, Options{Source: 0, HostWorkers: 1}, 1, 0)
			for _, workers := range []int{1, 8} {
				got, _ := runDigest(t, sp, p.diropt, Options{Source: 0, HostWorkers: workers}, 1, 0)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: %s state differs from %s", workers, p.diropt.name, p.plain.name)
				}
			}
		})
	}
}

// TestDirOptUnderChaos runs the adaptive kernels through the chaos fault
// plan: recovery replays must preserve both the values and the planned
// direction schedule across worker counts.
func TestDirOptUnderChaos(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	cases := kernelCases()
	for _, kc := range []kernelCase{cases[11], cases[14]} { // BFS-diropt, SSSP-delta
		t.Run(kc.name, func(t *testing.T) {
			base := Options{Source: 0, HostWorkers: 1, Faults: chaosPlan()}
			wantBytes, wantRep := runDigest(t, sp, kc, base, 2, 2)
			opts := base
			opts.HostWorkers = 8
			gotBytes, gotRep := runDigest(t, sp, kc, opts, 2, 2)
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Error("state not byte-identical to serial under faults")
			}
			sameRun(t, kc.name+" workers=8", wantRep, gotRep)
			if len(wantRep.LevelDirs) == 0 {
				t.Error("LevelDirs empty for a direction-planning kernel")
			}
			if fmt.Sprint(wantRep.LevelDirs) != fmt.Sprint(gotRep.LevelDirs) {
				t.Errorf("direction schedule differs: %v vs %v", wantRep.LevelDirs, gotRep.LevelDirs)
			}
		})
	}
}

// runDigest executes one kernel run and returns the encoded final state
// plus the Report, for cross-worker-count comparison.
func runDigest(t *testing.T, sp *slottedpage.Graph, kc kernelCase, opts Options, gpus, ssds int) ([]byte, *Report) {
	t.Helper()
	k := kc.make(sp)
	rep := mustRun(t, newEngine(t, sp, opts, gpus, ssds), k)
	return kc.enc(k, rep.State), rep
}

// sameRun asserts the deterministic Report fields match between a serial
// and a parallel execution: virtual time, traversal shape, data movement,
// update counts, and the fault/recovery tally must all be unaffected by
// host parallelism.
func sameRun(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.Elapsed != b.Elapsed {
		t.Errorf("%s: Elapsed %v vs %v", label, a.Elapsed, b.Elapsed)
	}
	if a.Levels != b.Levels {
		t.Errorf("%s: Levels %d vs %d", label, a.Levels, b.Levels)
	}
	if a.PagesStreamed != b.PagesStreamed {
		t.Errorf("%s: PagesStreamed %d vs %d", label, a.PagesStreamed, b.PagesStreamed)
	}
	if a.BytesToGPU != b.BytesToGPU {
		t.Errorf("%s: BytesToGPU %d vs %d", label, a.BytesToGPU, b.BytesToGPU)
	}
	if a.EdgesTraversed != b.EdgesTraversed {
		t.Errorf("%s: EdgesTraversed %d vs %d", label, a.EdgesTraversed, b.EdgesTraversed)
	}
	if a.Updates != b.Updates {
		t.Errorf("%s: Updates %d vs %d", label, a.Updates, b.Updates)
	}
	if a.Faults != b.Faults {
		t.Errorf("%s: Faults %+v vs %+v", label, a.Faults, b.Faults)
	}
}

// TestParallelMatchesSerialAllKernels is the tentpole's acceptance test:
// every kernel, run at HostWorkers=1 and HostWorkers=8, must produce
// byte-identical state and identical deterministic metrics. Run under
// `go test -race` this also exercises the gather pool for data races.
func TestParallelMatchesSerialAllKernels(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	for _, kc := range kernelCases() {
		kc := kc
		t.Run(kc.name, func(t *testing.T) {
			base := Options{Source: 0, HostWorkers: 1}
			wantBytes, wantRep := runDigest(t, sp, kc, base, 1, 0)
			for _, workers := range []int{2, 8} {
				opts := base
				opts.HostWorkers = workers
				gotBytes, gotRep := runDigest(t, sp, kc, opts, 1, 0)
				label := fmt.Sprintf("%s workers=%d", kc.name, workers)
				if !bytes.Equal(gotBytes, wantBytes) {
					t.Errorf("%s: state not byte-identical to serial", label)
				}
				sameRun(t, label, wantRep, gotRep)
			}
		})
	}
}

// TestParallelMatchesSerialAcrossConfigs widens the sweep for the two
// acceptance kernels (BFS, PageRank) over the strategy x GPU x storage
// matrix, with and without the chaos fault plan.
func TestParallelMatchesSerialAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	cases := kernelCases()
	acceptance := []kernelCase{cases[0], cases[2]} // BFS, PageRank
	for _, kc := range acceptance {
		for _, cfg := range configurations() {
			for _, plan := range []struct {
				name   string
				faults *fault.Plan
			}{{"clean", nil}, {"faulted", chaosPlan()}} {
				t.Run(fmt.Sprintf("%s/%s/%s", kc.name, cfg.name, plan.name), func(t *testing.T) {
					base := Options{Source: 0, Strategy: cfg.strategy, HostWorkers: 1, Faults: plan.faults}
					wantBytes, wantRep := runDigest(t, sp, kc, base, cfg.gpus, cfg.ssds)
					opts := base
					opts.HostWorkers = 8
					gotBytes, gotRep := runDigest(t, sp, kc, opts, cfg.gpus, cfg.ssds)
					if !bytes.Equal(gotBytes, wantBytes) {
						t.Errorf("state not byte-identical to serial")
					}
					sameRun(t, "workers=8", wantRep, gotRep)
				})
			}
		}
	}
}

// TestBCBackwardParallelMatchesSerial pins the backward-sweep gather path
// (GatherSPBack/ApplyBack) specifically, under faults, where the forward
// level sets replay in reverse.
func TestBCBackwardParallelMatchesSerial(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	kc := kernelCases()[4] // BC
	base := Options{Source: 0, HostWorkers: 1, Faults: chaosPlan()}
	wantBytes, wantRep := runDigest(t, sp, kc, base, 2, 2)
	opts := base
	opts.HostWorkers = 8
	gotBytes, gotRep := runDigest(t, sp, kc, opts, 2, 2)
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("BC centrality not byte-identical between worker counts")
	}
	sameRun(t, "BC workers=8", wantRep, gotRep)
}

// TestHostWorkersDefaultAndValidation: 0 defaults to GOMAXPROCS and lands
// in the report; out-of-range values are rejected at engine construction.
func TestHostWorkersDefaultAndValidation(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewBFS(sp)
	rep := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), k)
	if rep.HostWorkers < 1 {
		t.Errorf("defaulted HostWorkers = %d, want >= 1", rep.HostWorkers)
	}
	if rep.HostKernelWall <= 0 {
		t.Errorf("HostKernelWall = %v, want > 0", rep.HostKernelWall)
	}
	if _, err := New(hw.Workstation(1, 0), sp, Options{HostWorkers: -1}); err == nil {
		t.Error("engine accepted HostWorkers = -1")
	}
	if _, err := New(hw.Workstation(1, 0), sp, Options{HostWorkers: 2000}); err == nil {
		t.Error("engine accepted HostWorkers = 2000")
	}
}
