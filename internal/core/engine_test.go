package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
	"repro/internal/trace"
	"repro/internal/verify"
)

// testConfig keeps pages small so even tiny graphs span many pages.
func testConfig() slottedpage.Config { return slottedpage.ScaledConfig(2, 2, 4096) }

func buildPages(t *testing.T, g *csr.Graph) *slottedpage.Graph {
	t.Helper()
	sp, err := slottedpage.Build(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// rmatGraph returns a moderately sized skewed test graph.
func rmatGraph(t *testing.T) *csr.Graph {
	t.Helper()
	d, _ := graphgen.ByName("RMAT27")
	return d.MustGenerate(27 - 11) // scale 11: 2048 vertices, ~32k edges
}

func newEngine(t *testing.T, g *slottedpage.Graph, opts Options, gpus, ssds int) *Engine {
	t.Helper()
	e, err := New(hw.Workstation(gpus, ssds), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustRun(t *testing.T, e *Engine, k kernels.Kernel) *Report {
	t.Helper()
	rep, err := e.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// configurations spans the strategy x GPU-count x storage matrix all
// correctness tests run under.
type config struct {
	name     string
	strategy Strategy
	gpus     int
	ssds     int
}

func configurations() []config {
	return []config{
		{"P-1gpu-mem", StrategyP, 1, 0},
		{"P-2gpu-mem", StrategyP, 2, 0},
		{"S-2gpu-mem", StrategyS, 2, 0},
		{"P-1gpu-ssd", StrategyP, 1, 1},
		{"P-2gpu-2ssd", StrategyP, 2, 2},
		{"S-2gpu-2ssd", StrategyS, 2, 2},
	}
}

func TestBFSMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.BFS(g, 0)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy, Source: 0}, cfg.gpus, cfg.ssds)
			k := kernels.NewBFS(sp)
			rep := mustRun(t, e, k)
			got := k.Levels(rep.State)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d level = %d, want %d", v, got[v], want[v])
				}
			}
			if rep.Elapsed <= 0 {
				t.Error("no virtual time elapsed")
			}
		})
	}
}

func TestPageRankMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.PageRank(g, 0.85, 5)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
			k := kernels.NewPageRank(sp, 0.85, 5)
			rep := mustRun(t, e, k)
			got := k.Ranks(rep.State)
			for v := range want {
				if math.Abs(float64(got[v])-want[v]) > 1e-4*math.Max(want[v], 1e-9)+1e-7 {
					t.Fatalf("vertex %d rank = %v, want %v", v, got[v], want[v])
				}
			}
			if rep.Levels != 5 {
				t.Errorf("iterations = %d, want 5", rep.Levels)
			}
		})
	}
}

func TestSSSPMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.SSSP(g, 0, kernels.Weight)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy, Source: 0}, cfg.gpus, cfg.ssds)
			k := kernels.NewSSSP(sp)
			rep := mustRun(t, e, k)
			got := k.Distances(rep.State)
			for v := range want {
				if math.IsInf(want[v], 1) {
					if got[v] != float32(math.MaxFloat32) {
						t.Fatalf("vertex %d reachable (%v), want unreachable", v, got[v])
					}
					continue
				}
				if float64(got[v]) != want[v] {
					t.Fatalf("vertex %d dist = %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestCCMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.WCC(g)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
			k := kernels.NewCC(sp)
			rep := mustRun(t, e, k)
			got := k.Components(rep.State)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d component = %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestBCMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.BC(g, 0)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy, Source: 0}, cfg.gpus, cfg.ssds)
			k := kernels.NewBC(sp)
			rep := mustRun(t, e, k)
			got := k.Centrality(rep.State, 0)
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-6*math.Max(want[v], 1)+1e-9 {
					t.Fatalf("vertex %d bc = %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestBFSOnStructuredGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *csr.Graph
		src  uint64
	}{
		{"path", graphgen.Path(500), 0},
		{"cycle", graphgen.Cycle(300), 7},
		{"star", graphgen.Star(400), 0},
		{"grid", graphgen.Grid(20, 25), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sp := buildPages(t, tc.g)
			want := verify.BFS(tc.g, uint32(tc.src))
			e := newEngine(t, sp, Options{Source: tc.src}, 1, 0)
			k := kernels.NewBFS(sp)
			rep := mustRun(t, e, k)
			got := k.Levels(rep.State)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d level = %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestTechniquesAllCorrect(t *testing.T) {
	// Micro-level technique affects only time, never results (§6.2).
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.BFS(g, 0)
	for _, tech := range []kernels.Technique{kernels.EdgeCentric, kernels.VertexCentric, kernels.Hybrid} {
		e := newEngine(t, sp, Options{Source: 0, Technique: tech}, 1, 0)
		k := kernels.NewBFS(sp)
		rep := mustRun(t, e, k)
		got := k.Levels(rep.State)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: vertex %d level = %d, want %d", tech, v, got[v], want[v])
			}
		}
	}
}

func TestDeterministicElapsed(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	e := newEngine(t, sp, Options{Source: 0}, 2, 2)
	k := kernels.NewBFS(sp)
	a := mustRun(t, e, k)
	b := mustRun(t, e, k)
	if a.Elapsed != b.Elapsed || a.PagesStreamed != b.PagesStreamed {
		t.Errorf("nondeterministic: %v/%d vs %v/%d", a.Elapsed, a.PagesStreamed, b.Elapsed, b.PagesStreamed)
	}
}

func TestStrategyPWontFitSuggestsS(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	// Scale device memory down so a full CC WA replica does not fit but
	// half (Strategy-S with 2 GPUs) does.
	spec := hw.Workstation(2, 0)
	waBytes := int64(g.NumVertices()) * 8 // CC keeps prev+next labels
	bufBytes := int64(4) * (2 * 4096)     // 4 streams, SPBuf+LPBuf, no RA
	for i := range spec.GPUs {
		spec.GPUs[i].DeviceMemory = waBytes*3/4 + bufBytes // full WA won't fit; half will
	}
	eP, err := New(spec, sp, Options{Strategy: StrategyP, Streams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eP.Run(kernels.NewCC(sp)); !errors.Is(err, ErrWontFit) {
		t.Fatalf("Strategy-P err = %v, want ErrWontFit", err)
	}
	eS, err := New(spec, sp, Options{Strategy: StrategyS, Streams: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := verify.WCC(g)
	k := kernels.NewCC(sp)
	rep, err := eS.Run(k)
	if err != nil {
		t.Fatalf("Strategy-S failed: %v", err)
	}
	got := k.Components(rep.State)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d component mismatch", v)
		}
	}
}

func TestCachingReducesStreaming(t *testing.T) {
	// BFS revisits pages across levels; with a cache covering the whole
	// graph, repeat visits must be hits.
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewBFS(sp)

	noCache := mustRun(t, newEngine(t, sp, Options{Source: 0, CacheBytes: CacheDisabled}, 1, 0), k)
	bigCache := mustRun(t, newEngine(t, sp, Options{Source: 0, CacheBytes: 0}, 1, 0), k)
	if noCache.CacheHits != 0 {
		t.Errorf("cache disabled but %d hits", noCache.CacheHits)
	}
	if bigCache.CacheHits == 0 {
		t.Error("full cache produced no hits")
	}
	if bigCache.PagesStreamed >= noCache.PagesStreamed {
		t.Errorf("caching did not reduce streaming: %d vs %d", bigCache.PagesStreamed, noCache.PagesStreamed)
	}
	if bigCache.Elapsed >= noCache.Elapsed {
		t.Errorf("caching did not reduce time: %v vs %v", bigCache.Elapsed, noCache.Elapsed)
	}
}

func TestMoreStreamsNotSlower(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewPageRank(sp, 0.85, 3)
	t1 := mustRun(t, newEngine(t, sp, Options{Streams: 1}, 1, 0), k).Elapsed
	t16 := mustRun(t, newEngine(t, sp, Options{Streams: 16}, 1, 0), k).Elapsed
	if t16 > t1 {
		t.Errorf("16 streams (%v) slower than 1 (%v)", t16, t1)
	}
}

func TestStorageHierarchyOrdering(t *testing.T) {
	// In-memory < SSD < HDD elapsed time (Fig. 9's storage-type axis).
	g := rmatGraph(t)
	sp := buildPages(t, g)
	mk := func(spec hw.MachineSpec) *Report {
		e, err := New(spec, sp, Options{CacheBytes: CacheDisabled, MMBufBytes: int64(sp.Config().PageSize)})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, e, kernels.NewPageRank(sp, 0.85, 3))
	}
	mem := mk(hw.Workstation(1, 0))
	ssd := mk(hw.Workstation(1, 1))
	hdd := mk(hw.WorkstationHDD(1, 1))
	if !(mem.Elapsed < ssd.Elapsed && ssd.Elapsed < hdd.Elapsed) {
		t.Errorf("ordering violated: mem %v, ssd %v, hdd %v", mem.Elapsed, ssd.Elapsed, hdd.Elapsed)
	}
	if mem.StorageBytes != 0 || ssd.StorageBytes == 0 {
		t.Errorf("storage bytes: mem %d, ssd %d", mem.StorageBytes, ssd.StorageBytes)
	}
}

func TestTwoSSDsFasterThanOne(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	mk := func(ssds int) *Report {
		e, err := New(hw.Workstation(1, ssds), sp, Options{CacheBytes: CacheDisabled, MMBufBytes: int64(sp.Config().PageSize)})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, e, kernels.NewPageRank(sp, 0.85, 3))
	}
	one, two := mk(1), mk(2)
	if two.Elapsed >= one.Elapsed {
		t.Errorf("2 SSDs (%v) not faster than 1 (%v)", two.Elapsed, one.Elapsed)
	}
}

func TestPageRankRAStreamsWithPages(t *testing.T) {
	// PageRank streams 4 bytes of prevPR per vertex along with each page;
	// BytesToGPU must exceed pure topology traffic.
	g := rmatGraph(t)
	sp := buildPages(t, g)
	rep := mustRun(t, newEngine(t, sp, Options{CacheBytes: CacheDisabled}, 1, 0), kernels.NewPageRank(sp, 0.85, 1))
	topo := int64(rep.PagesStreamed) * int64(sp.Config().PageSize)
	if rep.BytesToGPU <= topo {
		t.Errorf("BytesToGPU %d does not include RA beyond topology %d", rep.BytesToGPU, topo)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	rec := trace.New()
	e := newEngine(t, sp, Options{Trace: rec, Streams: 4}, 1, 0)
	mustRun(t, e, kernels.NewPageRank(sp, 0.85, 1))
	if rec.Total(trace.Kernel) == 0 || rec.Total(trace.CopyPage) == 0 {
		t.Error("trace missing kernel or copy spans")
	}
}

func TestReportMetricsSane(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	rep := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), kernels.NewBFS(sp))
	if rep.MTEPS <= 0 {
		t.Error("MTEPS not positive")
	}
	if rep.WABytes != int64(g.NumVertices())*2 {
		t.Errorf("WABytes = %d", rep.WABytes)
	}
	if rep.KernelTime <= 0 || rep.TransferTime <= 0 {
		t.Error("missing kernel/transfer accounting")
	}
	if rep.EdgesTraversed == 0 {
		t.Error("no edges traversed")
	}
}

func TestOptionsValidation(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	if _, err := New(hw.Workstation(1, 0), sp, Options{Streams: 64}); err == nil {
		t.Error("64 streams accepted")
	}
	if _, err := New(hw.MachineSpec{}, sp, Options{}); err == nil {
		t.Error("empty machine accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyP.String() != "Strategy-P" || StrategyS.String() != "Strategy-S" {
		t.Error("Strategy.String wrong")
	}
}

func TestRWRMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.RWR(g, 3, 0.15, 5)
	for _, cfg := range configurations() {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy, Source: 3}, cfg.gpus, cfg.ssds)
			k := kernels.NewRWR(sp, 0.15, 5)
			rep := mustRun(t, e, k)
			got := k.Scores(rep.State)
			for v := range want {
				if math.Abs(float64(got[v])-want[v]) > 1e-4*math.Max(want[v], 1e-9)+1e-7 {
					t.Fatalf("vertex %d score = %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestDegreeDistMatchesGraph(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	for _, cfg := range configurations()[:3] { // in-memory configs suffice
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
			k := kernels.NewDegreeDist(sp)
			rep := mustRun(t, e, k)
			got := k.Degrees(rep.State)
			for v := uint64(0); v < g.NumVertices(); v++ {
				if int(got[v]) != g.Degree(v) {
					t.Fatalf("vertex %d degree = %d, want %d", v, got[v], g.Degree(v))
				}
			}
			h := k.Histogram(rep.State)
			var sum int64
			for _, c := range h {
				sum += c
			}
			if sum != int64(g.NumVertices()) {
				t.Errorf("histogram sums to %d", sum)
			}
		})
	}
}

func TestKCoreMatchesReferenceAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	for _, kk := range []int{2, 8} {
		want := verify.KCore(g, kk)
		for _, cfg := range configurations()[:3] {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
			kern := kernels.NewKCore(sp, kk)
			rep := mustRun(t, e, kern)
			got := kern.InCore(rep.State)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s k=%d: vertex %d in-core = %v, want %v", cfg.name, kk, v, got[v], want[v])
				}
			}
		}
	}
}

func TestLevelStatsRecorded(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	rep := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), kernels.NewBFS(sp))
	if int32(len(rep.LevelPages)) != rep.Levels || len(rep.LevelBytes) != len(rep.LevelPages) {
		t.Fatalf("level stats %d/%d vs %d levels", len(rep.LevelPages), len(rep.LevelBytes), rep.Levels)
	}
	var pages, bytes int64
	for i := range rep.LevelPages {
		pages += rep.LevelPages[i]
		bytes += rep.LevelBytes[i]
	}
	if pages != rep.PagesStreamed {
		t.Errorf("level pages sum %d != total %d", pages, rep.PagesStreamed)
	}
	if bytes != rep.BytesToGPU-rep.WABytes { // WA upload precedes level 0
		t.Errorf("level bytes sum %d != streamed %d", bytes, rep.BytesToGPU-rep.WABytes)
	}
}

func TestEngineMatchesReferenceOnRandomGraphs(t *testing.T) {
	// Property: for random skewed graphs, the engine's BFS equals the
	// reference under a randomly drawn configuration.
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 8; iter++ {
		n := 200 + r.Intn(800)
		var edges []csr.Edge
		for i := 0; i < n*6; i++ {
			src := uint32(r.Intn(n))
			if r.Intn(10) == 0 {
				src = uint32(r.Intn(5)) // hubs
			}
			edges = append(edges, csr.Edge{Src: src, Dst: uint32(r.Intn(n))})
		}
		g := csr.MustFromEdges(n, edges)
		sp := buildPages(t, g)
		src := uint64(r.Intn(n))
		strat := Strategy(r.Intn(2))
		gpus := 1 + r.Intn(2)
		want := verify.BFS(g, uint32(src))
		e := newEngine(t, sp, Options{Strategy: strat, Source: src, Streams: 1 + r.Intn(32)}, gpus, r.Intn(2))
		k := kernels.NewBFS(sp)
		rep := mustRun(t, e, k)
		got := k.Levels(rep.State)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("iter %d (%v, %d gpus): vertex %d = %d, want %d", iter, strat, gpus, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPOnRandomGraphsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for iter := 0; iter < 5; iter++ {
		n := 100 + r.Intn(400)
		var edges []csr.Edge
		for i := 0; i < n*5; i++ {
			edges = append(edges, csr.Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))})
		}
		g := csr.MustFromEdges(n, edges)
		sp := buildPages(t, g)
		src := uint32(r.Intn(n))
		want := verify.SSSP(g, src, kernels.Weight)
		e := newEngine(t, sp, Options{Source: uint64(src), Strategy: Strategy(r.Intn(2))}, 1+r.Intn(2), 0)
		k := kernels.NewSSSP(sp)
		rep := mustRun(t, e, k)
		got := k.Distances(rep.State)
		for v := range want {
			if math.IsInf(want[v], 1) {
				if got[v] != float32(math.MaxFloat32) {
					t.Fatalf("iter %d: vertex %d reachable, want not", iter, v)
				}
				continue
			}
			if float64(got[v]) != want[v] {
				t.Fatalf("iter %d: vertex %d dist %v, want %v", iter, v, got[v], want[v])
			}
		}
	}
}

func TestIsolatedVerticesDontPerturbBFS(t *testing.T) {
	// Metamorphic: appending isolated vertices must not change the levels
	// of existing ones.
	base := rmatGraph(t)
	spBase := buildPages(t, base)
	kBase := kernels.NewBFS(spBase)
	repBase := mustRun(t, newEngine(t, spBase, Options{Source: 0}, 1, 0), kBase)

	bigger := csr.MustFromEdges(int(base.NumVertices())+500, base.Edges())
	spBig := buildPages(t, bigger)
	kBig := kernels.NewBFS(spBig)
	repBig := mustRun(t, newEngine(t, spBig, Options{Source: 0}, 1, 0), kBig)

	a, b := kBase.Levels(repBase.State), kBig.Levels(repBig.State)
	for v := 0; v < int(base.NumVertices()); v++ {
		if a[v] != b[v] {
			t.Fatalf("vertex %d level changed %d -> %d after padding", v, a[v], b[v])
		}
	}
	for v := int(base.NumVertices()); v < len(b); v++ {
		if b[v] != -1 {
			t.Fatalf("isolated vertex %d reached (level %d)", v, b[v])
		}
	}
}

func TestPrefetchCorrectAndHelpsOnHDD(t *testing.T) {
	// With a single stream, on-demand fetches serialize against copies and
	// kernels; the prefetcher overlaps storage I/O with them. (With many
	// streams the engine already overlaps I/O via concurrency, and
	// prefetching is a wash — which the ablation experiment shows.)
	g := rmatGraph(t)
	sp := buildPages(t, g)
	want := verify.PageRank(g, 0.85, 3)
	mk := func(prefetch bool) *Report {
		e, err := New(hw.WorkstationHDD(1, 2), sp, Options{
			CacheBytes: CacheDisabled,
			MMBufBytes: int64(sp.Config().PageSize) * 8,
			Streams:    1,
			Prefetch:   prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		k := kernels.NewPageRank(sp, 0.85, 3)
		rep := mustRun(t, e, k)
		got := k.Ranks(rep.State)
		for v := range want {
			if math.Abs(float64(got[v])-want[v]) > 1e-4*math.Max(want[v], 1e-9)+1e-7 {
				t.Fatalf("prefetch=%v: vertex %d rank mismatch", prefetch, v)
			}
		}
		return rep
	}
	demand := mk(false)
	ahead := mk(true)
	if ahead.Elapsed >= demand.Elapsed {
		t.Errorf("prefetch (%v) not faster than on-demand (%v) on HDDs", ahead.Elapsed, demand.Elapsed)
	}
}

func TestRadiusConsistentAcrossConfigs(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	var baseline []int32
	for _, cfg := range configurations()[:3] {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
			k := kernels.NewRadius(sp, 8, 64)
			rep := mustRun(t, e, k)
			radii := k.Radii(rep.State)
			if baseline == nil {
				baseline = append([]int32(nil), radii...)
				return
			}
			for v := range baseline {
				if radii[v] != baseline[v] {
					t.Fatalf("vertex %d radius %d differs from baseline %d", v, radii[v], baseline[v])
				}
			}
		})
	}
}

func TestRadiusBoundedByEccentricity(t *testing.T) {
	// The sketch can stop growing early (bit collisions) but never grows
	// after the true out-eccentricity.
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewRadius(sp, 8, 64)
	rep := mustRun(t, newEngine(t, sp, Options{}, 1, 0), k)
	radii := k.Radii(rep.State)
	for v := uint32(0); v < 64; v++ {
		lv := verify.BFS(g, v)
		ecc := int32(0)
		for _, l := range lv {
			if int32(l) > ecc {
				ecc = int32(l)
			}
		}
		if radii[v] > ecc {
			t.Fatalf("vertex %d radius %d exceeds eccentricity %d", v, radii[v], ecc)
		}
	}
}

func TestRadiusNeighborhoodEstimates(t *testing.T) {
	// Star: the hub reaches everything, spokes only themselves.
	star := graphgen.Star(512)
	sp := buildPages(t, star)
	k := kernels.NewRadius(sp, 16, 8)
	rep := mustRun(t, newEngine(t, sp, Options{}, 1, 0), k)
	hub := k.NeighborhoodEstimate(rep.State, 0)
	spoke := k.NeighborhoodEstimate(rep.State, 1)
	if hub < 128 || hub > 2048 {
		t.Errorf("hub estimate %v far from 512", hub)
	}
	if spoke > 8 {
		t.Errorf("spoke estimate %v far from 1", spoke)
	}
	if hub < 10*spoke {
		t.Errorf("hub (%v) not clearly above spoke (%v)", hub, spoke)
	}
	// Cycle: every vertex reaches the same set, so estimates coincide.
	cyc := graphgen.Cycle(256)
	spc := buildPages(t, cyc)
	kc := kernels.NewRadius(spc, 8, 512)
	repc := mustRun(t, newEngine(t, spc, Options{}, 1, 0), kc)
	first := kc.NeighborhoodEstimate(repc.State, 0)
	for v := uint64(1); v < 256; v++ {
		if got := kc.NeighborhoodEstimate(repc.State, v); got != first {
			t.Fatalf("cycle vertex %d estimate %v != %v", v, got, first)
		}
	}
	if d := kc.EffectiveDiameter(repc.State, 1.0); d < 1 {
		t.Errorf("effective diameter = %d", d)
	}
}

func TestNeighborhoodMatchesCappedBFS(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	full := verify.BFS(g, 0)
	for _, hops := range []int{1, 2, 3} {
		for _, cfg := range configurations()[:3] {
			e := newEngine(t, sp, Options{Strategy: cfg.strategy, Source: 0}, cfg.gpus, cfg.ssds)
			k := kernels.NewNeighborhood(sp, hops)
			rep := mustRun(t, e, k)
			got := k.Members(rep.State)
			for v := range full {
				want := full[v]
				if int(want) > hops {
					want = -1
				}
				if got[v] != want {
					t.Fatalf("%s hops=%d: vertex %d = %d, want %d", cfg.name, hops, v, got[v], want)
				}
			}
		}
	}
}

func TestNeighborhoodStreamsFewerPagesThanBFS(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	bfs := mustRun(t, newEngine(t, sp, Options{Source: 0, CacheBytes: CacheDisabled}, 1, 0), kernels.NewBFS(sp))
	ball := mustRun(t, newEngine(t, sp, Options{Source: 0, CacheBytes: CacheDisabled}, 1, 0), kernels.NewNeighborhood(sp, 1))
	if ball.PagesStreamed >= bfs.PagesStreamed {
		t.Errorf("1-hop ball streamed %d pages, full BFS %d", ball.PagesStreamed, bfs.PagesStreamed)
	}
}

func TestCrossEdgesMatchesDirectCount(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pivot := g.NumVertices() / 3
	side := func(v uint64) bool { return v < pivot }
	var want int64
	for v := uint64(0); v < g.NumVertices(); v++ {
		vs := side(v)
		g.Neighbors(v, func(d uint64) {
			if side(d) != vs {
				want++
			}
		})
	}
	for _, cfg := range configurations()[:3] {
		e := newEngine(t, sp, Options{Strategy: cfg.strategy}, cfg.gpus, cfg.ssds)
		k := kernels.NewCrossEdges(sp, side)
		rep := mustRun(t, e, k)
		if got := k.Total(rep.State); got != want {
			t.Fatalf("%s: cross edges = %d, want %d", cfg.name, got, want)
		}
	}
}
