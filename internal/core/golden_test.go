package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite internal/core/testdata/golden.json from the serial path")

// goldenEntry pins one kernel's expected result digests: SHA-256 over the
// kernel's encoded final state for a fault-free run and for a run under the
// chaos fault plan (which must recover to the same bytes).
type goldenEntry struct {
	Clean   string `json:"clean"`
	Faulted string `json:"faulted"`
}

const goldenPath = "testdata/golden.json"

// goldenDigest runs one kernel and hashes its encoded final state. The
// fixture is fixed: the seeded RMAT27 proxy graph (2048 vertices), source
// 0, one in-memory GPU — every quantity on that path is deterministic, so
// the digests are stable across machines and Go versions.
func goldenDigest(t *testing.T, kc kernelCase, workers int, faulted bool) string {
	t.Helper()
	g := rmatGraph(t)
	sp := buildPages(t, g)
	opts := Options{Source: 0, HostWorkers: workers}
	if faulted {
		opts.Faults = chaosPlan()
	}
	raw, _ := runDigest(t, sp, kc, opts, 1, 0)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

func readGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run `go test ./internal/core/ -run Golden -update-golden` to create it): %v", goldenPath, err)
	}
	var m map[string]goldenEntry
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return m
}

// TestGoldenResults asserts every kernel (the direction-optimizing
// variants included) reproduces its checked-in result digest on the
// serial (HostWorkers=1) and parallel (HostWorkers=4 and 8) paths,
// fault-free and under the chaos plan. A digest change means the
// functional results drifted — either a kernel bug or an intentional
// change that must be re-pinned with -update-golden.
func TestGoldenResults(t *testing.T) {
	if *updateGolden {
		// Keep the incremental-path entries (TestGoldenIncremental re-pins
		// those); rewrite only the kernel digests here.
		m := map[string]goldenEntry{}
		if raw, err := os.ReadFile(goldenPath); err == nil {
			var old map[string]goldenEntry
			if json.Unmarshal(raw, &old) == nil {
				for name, e := range old {
					if strings.HasPrefix(name, "inc-") {
						m[name] = e
					}
				}
			}
		}
		for _, kc := range kernelCases() {
			m[kc.name] = goldenEntry{
				Clean:   goldenDigest(t, kc, 1, false),
				Faulted: goldenDigest(t, kc, 1, true),
			}
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(m))
		return
	}

	golden := readGolden(t)
	var names []string
	for name := range golden {
		// "inc-" entries pin the incremental path; TestGoldenIncremental
		// owns them.
		if !strings.HasPrefix(name, "inc-") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cases := map[string]kernelCase{}
	for _, kc := range kernelCases() {
		cases[kc.name] = kc
	}
	if len(names) != len(cases) {
		t.Errorf("golden file has %d kernel entries, kernelCases has %d — re-pin with -update-golden", len(names), len(cases))
	}
	for _, name := range names {
		kc, ok := cases[name]
		if !ok {
			t.Errorf("golden entry %q has no kernel case", name)
			continue
		}
		want := golden[name]
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4, 8} {
				if got := goldenDigest(t, kc, workers, false); got != want.Clean {
					t.Errorf("workers=%d clean digest = %s, want %s", workers, got, want.Clean)
				}
				if got := goldenDigest(t, kc, workers, true); got != want.Faulted {
					t.Errorf("workers=%d faulted digest = %s, want %s", workers, got, want.Faulted)
				}
			}
		})
	}
}
