package core

// Multi-query topology sharing: several kernels over the same graph execute
// inside one simulation as a "wave group". Every superstep the group runs
// one shared wave: each member's functional kernel work is precomputed
// exactly as a solo run would (same deterministic (GPU, page) order, same
// state mutations), then the union of the members' page demands streams to
// the GPUs once — the first live demander of a page pays the PCI-E copy and
// every other demander's kernel consumes the resident bytes for free. Member
// writes stay separated because each member owns its attribute states and
// the kernels' gather/apply contract defers writes into those states only.
//
// Because streaming, caching and faults only perturb virtual timing — never
// functional results (see phase) — a member's final state is byte-identical
// to its solo run's, no matter who else shares its waves.
//
// Membership changes at wave boundaries: the admit callback is polled
// between waves, joiners upload their WA and enter the next wave, finished
// members copy their WA out and retire. A member whose WA does not fit even
// after dropping the shared page cache is declined (the caller falls back
// to a solo run); a member whose fault budget is exhausted aborts alone —
// the next live demander of each page it was serving takes over the copy
// with a fresh retry budget, so a faulted member never stalls its group.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/bufpool"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// sharedRABudget sizes the group RABuf per page slot. Members' RA widths
// differ per kernel; the group reserves a fixed per-slot allowance instead
// of any one kernel's exact width (memory accounting, not correctness).
const sharedRABudget = 16

// SharedJob describes one member of a shared run. Faults and Trace are
// per-member: each member draws from its own injector and emits spans into
// its own recorder (nil Trace falls back to the engine's recorder).
type SharedJob struct {
	Kernel kernels.Kernel
	Source uint64
	Faults *fault.Plan
	Trace  *trace.Recorder
}

// SharedOutcome is one member's result. Exactly one of Report, Err, or
// Declined is meaningful: Declined means the member could not be admitted
// (its WA did not fit the shared machine) and should run solo instead.
type SharedOutcome struct {
	Report   *Report
	Err      error
	Declined bool
}

// SharedStats aggregates group-level accounting across the whole run.
type SharedStats struct {
	// Members admitted (excludes declined); Declined counts WA-won't-fit
	// rejections; Waves is how many shared supersteps the group executed.
	Members  int
	Declined int
	Waves    int64
	// PageCopies counts topology page copies paid over PCI-E;
	// SharedPageCopies is how many of those served more than one member;
	// Servings counts member-kernel consumptions of streamed pages (the
	// fan-out total; Servings/PageCopies is the amortization factor).
	PageCopies       int64
	SharedPageCopies int64
	Servings         int64
	// PageBytesStreamed is topology bytes paid once; BytesSaved is the
	// host-to-device traffic fan-out avoided ((n-1) x pageSize per shared
	// copy); BytesToGPU sums every member's actual paid traffic (WA + RA +
	// topology); StorageBytes sums member storage reads.
	PageBytesStreamed int64
	BytesSaved        int64
	BytesToGPU        int64
	StorageBytes      int64
	// EdgesTraversed sums member edge work; Elapsed is the group's virtual
	// makespan; CacheShrinks counts page-cache drops made to fit a joining
	// member's WA.
	EdgesTraversed int64
	CacheShrinks   int64
	Elapsed        sim.Time
}

// AmortizedBytesPerJob is the mean host-to-device traffic each member paid.
func (s SharedStats) AmortizedBytesPerJob() float64 {
	if s.Members == 0 {
		return 0
	}
	return float64(s.BytesToGPU) / float64(s.Members)
}

// AggregateMTEPS is the group's combined traversal throughput over its
// virtual makespan.
func (s SharedStats) AggregateMTEPS() float64 {
	return trace.MTEPS(s.EdgesTraversed, s.Elapsed)
}

// groupMember is one job's per-wave traversal state inside a group.
type groupMember struct {
	r   *run
	idx int // index into sharedDriver.outcomes

	bfsLike      bool
	wantBackward bool
	backKernel   kernels.BackwardKernel

	next      pidSet   // current frontier (BFS-like) or the full set (scans)
	locals    []pidSet // per-GPU next-page accumulation for the running wave
	levelSets []pidSet // recorded forward frontiers for the backward sweep
	level     int32
	backward  bool
	backIdx   int

	joinedAt    sim.Time
	stepStart   sim.Time
	stepActive  bool
	beforePages int64
	beforeBytes int64
	// parts[phase][gpu] is this wave's page partition (phase 0 = small
	// pages, 1 = large pages), in the same order a solo phase() builds.
	parts [2][][]slottedpage.PageID
	done  bool
}

// waveLevel is the superstep index the current wave runs at for this
// member: the traversal level forward, the replayed level backward.
func (m *groupMember) waveLevel() int32 {
	if m.backward {
		return int32(m.backIdx)
	}
	return m.level
}

// sharedDriver owns one shared run: the single simulated machine, the
// shared plant (caches, main-memory buffer, inflight reads) and the member
// roster.
type sharedDriver struct {
	eng     *Engine
	env     *sim.Env
	machine *hw.Machine

	caches      []*hw.BufferPool
	cacheBytes  []int64
	cacheTarget []int64
	buffer      *hw.BufferPool
	pool        *bufpool.Pool
	inMemory    bool
	inflight    map[slottedpage.PageID]*sim.Signal

	active   []*groupMember
	pending  []SharedJob
	admit    func() []SharedJob
	outcomes []SharedOutcome
	stats    SharedStats
	wave     int64
}

// RunShared executes jobs as one wave group on a single simulated machine.
// admit, when non-nil, is polled at every wave boundary for late joiners
// (it must return quickly and never block on virtual time; return nil when
// nothing is waiting). Outcomes are indexed by admission order: the initial
// jobs first, then admitted batches in the order admit returned them.
func (e *Engine) RunShared(jobs []SharedJob, admit func() []SharedJob) ([]SharedOutcome, SharedStats, error) {
	if len(jobs) == 0 && admit == nil {
		return nil, SharedStats{}, fmt.Errorf("core: RunShared needs at least one job or an admit callback")
	}
	env := sim.NewEnv()
	pageSize := int64(e.graph.Config().PageSize)
	machine, err := hw.NewMachine(env, e.spec, pageSize)
	if err != nil {
		return nil, SharedStats{}, err
	}
	d := &sharedDriver{
		eng:      e,
		env:      env,
		machine:  machine,
		inflight: map[slottedpage.PageID]*sim.Signal{},
		pending:  jobs,
		admit:    admit,
	}

	// Group stream buffers: one set of SPBuf/LPBuf/RABuf per stream serves
	// every member, since the wave protocol streams each page once.
	raBuf := int64(e.graph.Config().MaxSlotsPerPage()) * sharedRABudget
	bufBytes := int64(e.opts.Streams) * (2*pageSize + raBuf)
	for _, g := range machine.GPUs {
		if err := g.Alloc(bufBytes); err != nil {
			return nil, SharedStats{}, fmt.Errorf("%w: shared stream buffers %d on %s: %v",
				ErrWontFit, bufBytes, g.Spec.Name, err)
		}
	}
	// The machine plant (page caches, main-memory buffer) is built once and
	// shared by every member. A solo run sizes its auto page cache from the
	// memory left after its own WA; a shared run cannot know its members'
	// WA needs up front, so it holds back half the free device memory as WA
	// headroom while the cache is sized. Members whose WA outgrows the
	// headroom still fall back to shrinking the cache (see newMember).
	reserves := make([]int64, len(machine.GPUs))
	for i, g := range machine.GPUs {
		reserves[i] = g.MemFree() / 2
		if err := g.Alloc(reserves[i]); err != nil {
			return nil, SharedStats{}, err
		}
	}
	plant := &run{eng: e, env: env, machine: machine}
	if err := plant.setupMachine(); err != nil {
		return nil, SharedStats{}, err
	}
	for i, g := range machine.GPUs {
		g.Free(reserves[i])
	}
	d.caches, d.cacheBytes, d.cacheTarget = plant.caches, plant.cacheBytes, plant.cacheTarget
	d.buffer, d.pool, d.inMemory = plant.buffer, plant.pool, plant.inMemory

	env.Process("gts-shared", func(p *sim.Proc) { d.loop(p) })
	elapsed, err := env.Run()
	if err != nil {
		return nil, SharedStats{}, err
	}
	d.stats.Elapsed = elapsed
	return d.outcomes, d.stats, nil
}

// loop is the group's controlling process: admit at every wave boundary,
// then run shared waves until the roster empties.
func (d *sharedDriver) loop(p *sim.Proc) {
	d.admitJobs(p, d.pending)
	d.pending = nil
	for {
		if d.admit != nil {
			d.admitJobs(p, d.admit())
		}
		if len(d.active) == 0 {
			return
		}
		d.wave++
		d.stats.Waves++
		for _, m := range d.active {
			d.beginWave(m)
		}
		d.streamPhase(p, 0) // small pages
		d.streamPhase(p, 1) // large pages
		for _, m := range d.active {
			d.endWave(p, m)
		}
		d.retireFinished()
	}
}

// admitJobs turns jobs into members: build the member run, allocate its WA
// (shrinking the shared cache if needed), upload its WA and seed its
// frontier. Jobs whose WA cannot fit are declined; jobs that fault out
// during WA upload get an error outcome.
func (d *sharedDriver) admitJobs(p *sim.Proc, jobs []SharedJob) {
	for _, job := range jobs {
		idx := len(d.outcomes)
		d.outcomes = append(d.outcomes, SharedOutcome{})
		m, err := d.newMember(job, idx)
		if err != nil {
			if errors.Is(err, ErrWontFit) {
				d.outcomes[idx] = SharedOutcome{Declined: true}
				d.stats.Declined++
			} else {
				d.outcomes[idx] = SharedOutcome{Err: err}
			}
			continue
		}
		d.stats.Members++
		d.beginMember(p, m)
		if m.r.abort != nil {
			d.freeMemberWA(m)
			d.outcomes[idx] = SharedOutcome{Err: m.r.abort}
			continue
		}
		d.active = append(d.active, m)
	}
}

// newMember builds the member's run over the shared machine and allocates
// its per-GPU WA. The member clones the engine options with its own source,
// fault plan and recorder, but shares the plant by reference: cache and
// cacheBytes slice elements, the main-memory buffer and the inflight map
// are the group's, so a cache drop by one member is visible to all.
func (d *sharedDriver) newMember(job SharedJob, idx int) (*groupMember, error) {
	if job.Kernel == nil {
		return nil, fmt.Errorf("core: shared job has no kernel")
	}
	if err := job.Faults.Validate(); err != nil {
		return nil, err
	}
	e := d.eng
	opts := e.opts
	opts.Source = job.Source
	opts.Faults = job.Faults
	if job.Trace != nil {
		opts.Trace = job.Trace
	}
	me := &Engine{spec: e.spec, graph: e.graph, opts: opts}
	r := &run{
		eng:         me,
		k:           job.Kernel,
		env:         d.env,
		machine:     d.machine,
		inflight:    d.inflight,
		caches:      d.caches,
		cacheBytes:  d.cacheBytes,
		cacheTarget: d.cacheTarget,
		buffer:      d.buffer,
		pool:        d.pool,
		inMemory:    d.inMemory,
		curLevel:    -1,
		sharedMode:  true,
	}
	r.workers = opts.HostWorkers
	numPages := e.graph.NumPages()
	r.pidPool.New = func() any { return bitset.New(numPages) }
	r.inj = fault.NewInjector(opts.Faults)
	r.setupStates()

	// Per-member WA allocation. If it does not fit, drop that GPU's shared
	// page cache (the same degradation an OOM launch performs) and retry;
	// still no fit means decline.
	for i, g := range d.machine.GPUs {
		if g.Alloc(r.perGPUWA) == nil {
			continue
		}
		if d.caches[i] != nil {
			g.Free(d.cacheBytes[i])
			d.caches[i] = nil
			d.cacheBytes[i] = 0
			d.stats.CacheShrinks++
			if g.Alloc(r.perGPUWA) == nil {
				continue
			}
		}
		for j := 0; j < i; j++ {
			d.machine.GPUs[j].Free(r.perGPUWA)
		}
		return nil, fmt.Errorf("%w: member WA %d on %s in shared run", ErrWontFit, r.perGPUWA, g.Spec.Name)
	}
	return &groupMember{r: r, idx: idx, locals: make([]pidSet, len(d.machine.GPUs))}, nil
}

// freeMemberWA releases a member's per-GPU WA reservation.
func (d *sharedDriver) freeMemberWA(m *groupMember) {
	for _, g := range d.machine.GPUs {
		g.Free(m.r.perGPUWA)
	}
}

// beginMember uploads the member's WA to every GPU and seeds its frontier —
// the member-scoped half of Algorithm 1's initialization, at join time.
func (d *sharedDriver) beginMember(p *sim.Proc, m *groupMember) {
	r := m.r
	m.joinedAt = d.env.Now()
	r.parallelGPUs(p, func(p *sim.Proc, i int) {
		t0 := d.env.Now()
		err := r.withRetry(p, i, -1, "WA upload", func() error {
			return d.machine.GPUs[i].CopyChunkIn(p, r.perGPUWA)
		})
		if err != nil {
			r.fail(err)
			return
		}
		r.bytesToGPU += r.perGPUWA
		r.eng.opts.Trace.Add(trace.Span{GPU: i, Stream: -1, Kind: trace.CopyWA, Page: -1, Level: -1, Start: t0, End: d.env.Now()})
	})
	if r.abort != nil {
		return
	}
	g := r.eng.graph
	m.bfsLike = r.k.Class() == kernels.BFSLike
	m.backKernel, m.wantBackward = r.k.(kernels.BackwardKernel)
	m.next = r.getPidSet()
	if m.bfsLike {
		home := g.HomeOf(r.eng.opts.Source)
		m.next.Set(int(home.PID))
		if g.Kind(home.PID) == slottedpage.LargePage {
			r.eng.expandLPRun(m.next, home.PID)
		}
		// Planning kernels replace the seed with the level-0 plan, exactly
		// as a solo framework run does.
		r.planLevel(0, m.next)
	} else {
		for pid := 0; pid < g.NumPages(); pid++ {
			m.next.Set(pid)
		}
	}
}

// beginWave precomputes one member's functional kernel work for the wave in
// the same deterministic order its solo run would: BeginLevel, then the
// small-page jobs, then the large-page jobs. Streaming never touches
// functional state, so computing both phases up front is equivalent to the
// solo interleaving.
func (d *sharedDriver) beginWave(m *groupMember) {
	r := m.r
	if r.abort != nil {
		return
	}
	if !m.backward && m.level > 32000 {
		r.fail(fmt.Errorf("core: traversal exceeded 32000 levels (level vectors are int16)"))
		return
	}
	lvl := m.waveLevel()
	r.curLevel = lvl
	m.stepStart = d.env.Now()
	m.beforePages = r.pagesStreamed
	m.beforeBytes = r.bytesToGPU
	m.stepActive = false
	r.levelUpdates = 0
	if r.fk != nil && !m.backward {
		r.dirs = append(r.dirs, r.curDir)
	}
	r.k.BeginLevel(r.states, lvl)
	for i := range m.locals {
		m.locals[i] = r.getPidSet()
	}

	pages := m.next
	if m.backward {
		pages = m.levelSets[m.backIdx]
	}
	g := r.eng.graph
	var sps, lps []slottedpage.PageID
	pages.ForEach(func(pid int) {
		if g.Kind(slottedpage.PageID(pid)) == slottedpage.SmallPage {
			sps = append(sps, slottedpage.PageID(pid))
		} else {
			lps = append(lps, slottedpage.PageID(pid))
		}
	})
	nGPU := len(d.machine.GPUs)
	r.kres = make(map[pageKey]kernels.Result, nGPU*(len(sps)+len(lps)))
	for phase, list := range [2][]slottedpage.PageID{0: sps, 1: lps} {
		m.parts[phase] = d.partition(list)
		jobs := r.jobs[:0]
		for i, part := range m.parts[phase] {
			for _, pid := range part {
				jobs = append(jobs, pageKey{i, pid})
			}
		}
		r.jobs = jobs
		if len(jobs) > 0 {
			r.computeKernels(jobs, lvl, m.locals, m.backward)
		}
	}
}

// partition splits a page list across GPUs exactly as a solo phase() does:
// page j to GPU j mod N under multi-GPU Strategy-P, every page to every GPU
// otherwise.
func (d *sharedDriver) partition(pages []slottedpage.PageID) [][]slottedpage.PageID {
	nGPU := len(d.machine.GPUs)
	parts := make([][]slottedpage.PageID, nGPU)
	for i := 0; i < nGPU; i++ {
		parts[i] = pages
		if d.eng.opts.Strategy == StrategyP && nGPU > 1 {
			parts[i] = nil
			for _, pid := range pages {
				if int(pid)%nGPU == i {
					parts[i] = append(parts[i], pid)
				}
			}
		}
	}
	return parts
}

// streamPhase streams one phase's union page demand to the GPUs. Per GPU,
// the demands of all live members merge into one page list (ascending page
// ID, members in join order per page) and fan out over the stream procs.
func (d *sharedDriver) streamPhase(p *sim.Proc, phase int) {
	nGPU := len(d.machine.GPUs)
	streams := d.eng.opts.Streams
	grp := sim.NewGroup(d.env)
	for i := 0; i < nGPU; i++ {
		byPid := make(map[slottedpage.PageID][]*groupMember)
		var pids []slottedpage.PageID
		for _, m := range d.active {
			if m.r.abort != nil {
				continue
			}
			for _, pid := range m.parts[phase][i] {
				if byPid[pid] == nil {
					pids = append(pids, pid)
				}
				byPid[pid] = append(byPid[pid], m)
			}
		}
		sort.Slice(pids, func(a, b int) bool { return pids[a] < pids[b] })
		n := streams
		if n > len(pids) {
			n = len(pids)
		}
		for s := 0; s < n; s++ {
			i, s := i, s
			grp.Add(1)
			d.env.Process(fmt.Sprintf("gpu%d/stream%d", i, s), func(p *sim.Proc) {
				for idx := s; idx < len(pids); idx += streams {
					d.processDemand(p, i, s, pids[idx], byPid[pids[idx]])
				}
				grp.Done()
			})
		}
	}
	grp.Wait(p)
}

// processDemand is the shared analogue of run.page for one (GPU, page)
// union demand: resolve residency once, pay the topology copy once (the
// first live demander is the issuer; if its fault budget exhausts, the next
// takes over with a fresh budget), then serve every live member's RA copy
// and kernel launch in join order.
func (d *sharedDriver) processDemand(p *sim.Proc, gpuIdx, stream int, pid slottedpage.PageID, dem []*groupMember) {
	gpu := d.machine.GPUs[gpuIdx]
	g := d.eng.graph
	pageSize := int64(g.Config().PageSize)
	_, count := g.VertexRange(pid)

	live := make([]*groupMember, 0, len(dem))
	for _, m := range dem {
		if m.r.abort == nil {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return
	}

	cache := d.caches[gpuIdx]
	resident := cache != nil && cache.Contains(uint64(pid))
	var payer *groupMember
	// release drops the payer's host-pool pin. The whole wave group shares
	// that single pin: it is held from the payer's fetch until every
	// member's serving is done, so the host frame cannot be evicted while
	// any member still consumes the page.
	var release func()
	var copyStart, copyEnd sim.Time
	if resident {
		for _, m := range live {
			m.r.cacheHits++
		}
	} else {
		rest := live
		for len(rest) > 0 {
			m := rest[0]
			raBytes := int64(count) * m.r.raPerV
			copyStart = d.env.Now()
			rel, err := d.copyPageFor(p, m, gpuIdx, stream, pid, pageSize+raBytes)
			if err != nil {
				m.r.fail(err)
				rest = rest[1:]
				continue
			}
			release = rel
			copyEnd = d.env.Now()
			m.r.pagesStreamed++
			payer = m
			break
		}
		if payer == nil {
			return // every demander's budget exhausted on this page
		}
		d.stats.PageCopies++
		d.stats.PageBytesStreamed += pageSize
		alive := live[:0]
		for _, m := range live {
			if m.r.abort == nil {
				alive = append(alive, m)
			}
		}
		live = alive
		if extra := len(live) - 1; extra > 0 {
			d.stats.SharedPageCopies++
			d.stats.BytesSaved += int64(extra) * pageSize
			gpu.NoteSharedCopy(extra, int64(extra)*pageSize)
		}
		// Re-read the cache: a sibling's OOM degradation may have dropped it.
		if cache := d.caches[gpuIdx]; cache != nil {
			cache.Insert(uint64(pid))
		}
	}
	d.stats.Servings += int64(len(live))

	for _, m := range live {
		r := m.r
		if r.abort != nil {
			continue
		}
		if m != payer {
			if !resident {
				r.sharedPagesIn++
				r.eng.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.SharedCopy,
					Page: int64(pid), Level: r.curLevel, Start: copyStart, End: copyEnd})
			}
			// RA is member-specific attribute data and always streams per
			// member — only the topology bytes are shared.
			if raBytes := int64(count) * r.raPerV; raBytes > 0 {
				if err := r.streamCopy(p, gpu, gpuIdx, stream, pid, raBytes); err != nil {
					r.fail(err)
					continue
				}
			}
		}
		res := r.kres[pageKey{gpuIdx, pid}]
		t0 := d.env.Now()
		if err := r.launchKernel(p, gpuIdx, stream, pid, res.Cycles); err != nil {
			r.fail(err)
			continue
		}
		r.eng.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.Kernel,
			Page: int64(pid), Level: r.curLevel, Start: t0, End: d.env.Now()})
		r.kernelBusy += gpu.KernelTime(res.Cycles)
		r.edgesTraversed += res.Edges
		r.updates += res.Updates
		r.levelUpdates += res.Updates
		if res.Active {
			m.stepActive = true
		}
	}
	if release != nil {
		release()
	}
}

// copyPageFor fetches pid into host residency (the shared pool or the
// main-memory buffer) and streams n bytes to the GPU on behalf of member
// m, with m's retry budget and fault attribution. On success it returns
// the release func for the host-pool pin the fetch took (a no-op without
// a pool); processDemand holds it until every member has been served.
func (d *sharedDriver) copyPageFor(p *sim.Proc, m *groupMember, gpuIdx, stream int, pid slottedpage.PageID, n int64) (func(), error) {
	r := m.r
	release := noRelease
	if r.inMemory {
		r.buffer.Contains(uint64(pid)) // counts the MMBuf hit
	} else {
		rel, err := r.fetchPin(p, pid, gpuIdx, stream)
		if err != nil {
			return nil, err
		}
		release = rel
	}
	if err := r.streamCopy(p, d.machine.GPUs[gpuIdx], gpuIdx, stream, pid, n); err != nil {
		release()
		return nil, err
	}
	return release, nil
}

// endWave finishes one member's superstep: cross-GPU sync, frontier merge
// (BFS-like) or iteration bookkeeping (scans), backward-sweep stepping, and
// completion.
func (d *sharedDriver) endWave(p *sim.Proc, m *groupMember) {
	r := m.r
	release := func() {
		for i := range m.locals {
			r.putPidSet(m.locals[i])
			m.locals[i] = nil
		}
	}
	if r.abort != nil {
		release()
		return
	}
	lvl := m.waveLevel()
	r.sync(p, lvl, m.bfsLike)
	now := d.env.Now()
	r.eng.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Superstep, Page: -1, Level: lvl, Dir: int8(r.curDir), Start: m.stepStart, End: now})
	r.eng.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Wave, Page: d.wave, Level: lvl, Start: m.stepStart, End: now})
	if r.abort != nil {
		release()
		return
	}
	if !m.backward {
		r.levelPages = append(r.levelPages, r.pagesStreamed-m.beforePages)
		r.levelBytes = append(r.levelBytes, r.bytesToGPU-m.beforeBytes)
	}

	if m.backward {
		release()
		m.backIdx--
		if m.backIdx < 0 {
			d.finishMember(p, m)
		}
		return
	}
	if m.bfsLike {
		if m.wantBackward {
			m.levelSets = append(m.levelSets, m.next.Clone())
		}
		merged := r.getPidSet()
		for _, l := range m.locals {
			merged.Or(l)
		}
		g := r.eng.graph
		merged.ForEach(func(pid int) {
			if g.Kind(slottedpage.PageID(pid)) == slottedpage.LargePage {
				r.eng.expandLPRun(merged, slottedpage.PageID(pid))
			}
		})
		// Planning kernels rebuild the next frontier before the emptiness
		// test, mirroring the solo framework loop.
		r.planLevel(m.level+1, merged)
		release()
		r.putPidSet(m.next)
		m.next = merged
		m.level++
		if !m.next.Any() {
			if m.wantBackward && len(m.levelSets) > 0 {
				m.backKernel.BeginBackward(r.states, m.level-1)
				m.backward = true
				m.backIdx = len(m.levelSets) - 1
			} else {
				d.finishMember(p, m)
			}
		}
		return
	}
	// Scan-like: every iteration revisits the full set, which m.next
	// already holds.
	m.level++
	active := m.stepActive
	release()
	if !r.k.EndIteration(r.states, active) {
		d.finishMember(p, m)
		return
	}
	// Per-iteration WA sync back to the host (Eq. 1's 2|WA|).
	r.copyWAOut(p)
}

// finishMember performs the member's final WA copy-back and closes its Run
// span. The member retires from the roster at the wave boundary.
func (d *sharedDriver) finishMember(p *sim.Proc, m *groupMember) {
	r := m.r
	r.curLevel = -1
	r.copyWAOut(p)
	if r.abort != nil {
		return
	}
	r.levels = m.level
	r.eng.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Run, Page: -1, Level: -1,
		Start: m.joinedAt, End: d.env.Now()})
	m.done = true
}

// retireFinished removes finished and aborted members from the roster,
// filling their outcomes and releasing their WA.
func (d *sharedDriver) retireFinished() {
	alive := d.active[:0]
	for _, m := range d.active {
		if m.done || m.r.abort != nil {
			d.retire(m)
			continue
		}
		alive = append(alive, m)
	}
	d.active = alive
}

func (d *sharedDriver) retire(m *groupMember) {
	r := m.r
	d.freeMemberWA(m)
	if r.abort != nil {
		d.outcomes[m.idx] = SharedOutcome{Err: r.abort}
	} else {
		d.outcomes[m.idx] = SharedOutcome{Report: d.memberReport(m)}
	}
	d.stats.BytesToGPU += r.bytesToGPU
	d.stats.StorageBytes += r.storageRead
	d.stats.EdgesTraversed += r.edgesTraversed
}

// memberReport assembles a member's per-job Report. The shared machine's
// GPU and storage counters aggregate every member, so the report draws from
// the member's own accumulators instead (kernelBusy, storageRead).
func (d *sharedDriver) memberReport(m *groupMember) *Report {
	r := m.r
	elapsed := d.env.Now() - m.joinedAt
	hits := r.cacheHits
	misses := r.pagesStreamed + r.sharedPagesIn
	cacheRate := 0.0
	if hits+misses > 0 {
		cacheRate = float64(hits) / float64(hits+misses)
	}
	rep := &Report{
		State:          r.states[0],
		Elapsed:        elapsed,
		Levels:         r.levels,
		PagesStreamed:  r.pagesStreamed,
		CacheHits:      r.cacheHits,
		BytesToGPU:     r.bytesToGPU,
		EdgesTraversed: r.edgesTraversed,
		Updates:        r.updates,
		CacheHitRate:   cacheRate,
		BufferHitRate:  r.bufferHitRate(),
		TransferTime:   r.transferTime,
		KernelTime:     r.kernelBusy,
		StorageBytes:   r.storageRead,
		WABytes:        r.states[0].WABytes(),
		LevelPages:     r.levelPages,
		LevelBytes:     r.levelBytes,
		LevelDirs:      r.dirs,
		HostWorkers:    r.workers,
		HostKernelWall: r.hostKernelWall,
		PoolHits:       r.poolHits,
		PoolLoads:      r.poolLoads,
		PoolWaits:      r.poolWaits,
	}
	rep.Faults = r.inj.Stats()
	rep.Faults.Add(r.fstats)
	rep.MTEPS = trace.MTEPS(r.edgesTraversed, elapsed)
	return rep
}
