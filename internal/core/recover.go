package core

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// Recovery policy for injected (or modeled) hardware faults: bounded retry
// with exponential virtual-time backoff. Kernels run functionally before
// their simulated launch and faults only perturb the hardware model, so
// every recovery path yields results byte-identical to a fault-free run —
// faults cost time and counters, never correctness.
const (
	// maxAttempts bounds tries per operation (1 initial + 4 retries).
	maxAttempts = 5
	// retryBackoff is the first retry delay; it doubles per attempt.
	retryBackoff = 100 * sim.Microsecond
)

// fail latches the first unrecoverable error. Streams poll r.abort and
// wind down; the framework surfaces it as the run's error.
func (r *run) fail(err error) {
	if r.abort == nil {
		r.abort = err
	}
}

// traceMark records a zero-duration marker span (fault/retry instants).
func (r *run) traceMark(kind trace.Kind, gpu, stream int, page int64) {
	now := r.env.Now()
	r.eng.opts.Trace.Add(trace.Span{GPU: gpu, Stream: stream, Kind: kind, Page: page, Level: r.curLevel, Start: now, End: now})
}

// withRetry runs fn until it succeeds or the attempt budget is exhausted,
// backing off exponentially in virtual time between attempts. Exhaustion
// wraps the last error in ErrHardwareFault.
func (r *run) withRetry(p *sim.Proc, gpu, stream int, what string, fn func() error) error {
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		err := fn()
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
			}
			return nil
		}
		r.traceMark(trace.Fault, gpu, stream, -1)
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: %s failed %d times: %v", ErrHardwareFault, what, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpu, stream, -1)
		p.Delay(backoff)
		backoff *= 2
	}
}

// launchKernel launches one kernel with recovery. A device-OOM failure
// degrades gracefully by shrinking the GPU's page cache budget in half
// (freeing the difference for the launch) rather than abandoning caching:
// the cache keeps serving its hottest half while the transient memory
// pressure lasts, and once a retry succeeds the budget re-grows toward
// its configured target — the run gets slower, not wrong, and caching
// survives the fault. Only when the cache is already at its one-page
// floor is it dropped entirely. Other failures retry with backoff.
func (r *run) launchKernel(p *sim.Proc, gpuIdx, stream int, pid slottedpage.PageID, cycles float64) error {
	gpu := r.machine.GPUs[gpuIdx]
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		err := gpu.LaunchKernel(p, cycles, nil)
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
				r.regrowCache(gpuIdx)
			}
			return nil
		}
		r.traceMark(trace.Fault, gpuIdx, stream, int64(pid))
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: kernel launch for page %d on GPU%d failed %d times: %v",
				ErrHardwareFault, pid, gpuIdx, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpuIdx, stream, int64(pid))
		if errors.Is(err, hw.ErrOutOfDeviceMemory) && r.caches[gpuIdx] != nil {
			r.shrinkCache(gpuIdx)
			r.fstats.Degradations++
			continue // relaunch immediately with the freed memory
		}
		p.Delay(backoff)
		backoff *= 2
	}
}

// shrinkCache halves GPU gpuIdx's page-cache byte budget, evicting LRU
// pages beyond the new capacity and freeing the device memory for the
// failed launch. A cache already at one page is dropped entirely.
func (r *run) shrinkCache(gpuIdx int) {
	gpu := r.machine.GPUs[gpuIdx]
	pageSize := int64(r.eng.graph.Config().PageSize)
	cur := r.cacheBytes[gpuIdx]
	newPages := cur / 2 / pageSize
	if newPages < 1 {
		gpu.Free(cur)
		r.caches[gpuIdx] = nil
		r.cacheBytes[gpuIdx] = 0
		return
	}
	r.caches[gpuIdx].Shrink(int(newPages))
	gpu.Free(cur - newPages*pageSize)
	r.cacheBytes[gpuIdx] = newPages * pageSize
}

// regrowCache re-allocates device memory toward the cache's configured
// target after a successful retry: the transient pressure that caused the
// OOM has passed, so the budget an earlier shrinkCache surrendered comes
// back (as far as free device memory allows). Evicted pages are not
// restored — they re-enter through normal streaming.
func (r *run) regrowCache(gpuIdx int) {
	if r.caches[gpuIdx] == nil || r.cacheTarget == nil {
		return
	}
	target := r.cacheTarget[gpuIdx]
	cur := r.cacheBytes[gpuIdx]
	if cur >= target {
		return
	}
	gpu := r.machine.GPUs[gpuIdx]
	pageSize := int64(r.eng.graph.Config().PageSize)
	want := target - cur
	if free := gpu.MemFree(); want > free {
		want = free
	}
	pages := want / pageSize
	if pages < 1 {
		return
	}
	if gpu.Alloc(pages*pageSize) != nil {
		return
	}
	r.cacheBytes[gpuIdx] = cur + pages*pageSize
	r.caches[gpuIdx].Grow(int(r.cacheBytes[gpuIdx] / pageSize))
}

// readPage reads pid from the storage array with recovery: failed reads
// retry with backoff, and pages that arrive corrupt are caught by the
// per-page CRC (slottedpage.VerifyPageBytes) and re-read. The caller
// inserts into the main-memory buffer on success.
func (r *run) readPage(p *sim.Proc, pid slottedpage.PageID, gpuIdx, stream int) error {
	g := r.eng.graph
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		t0 := r.env.Now()
		corrupt, err := r.machine.Storage.ReadPage(p, uint64(pid))
		r.eng.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.StorageIO,
			Page: int64(pid), Level: r.curLevel, Start: t0, End: r.env.Now()})
		if err == nil && corrupt {
			// The injector damaged the bytes in flight. Run the real
			// verification machinery against a corrupted copy of the page
			// so detection exercises the same checksum path a production
			// read would.
			buf := append([]byte(nil), g.PageBytes(pid)...)
			buf[int(uint64(pid))%len(buf)] ^= 0xA5
			err = g.VerifyPageBytes(pid, buf)
		}
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
			}
			return nil
		}
		r.traceMark(trace.Fault, gpuIdx, stream, int64(pid))
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: reading page %d failed %d times: %v", ErrHardwareFault, pid, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpuIdx, stream, int64(pid))
		p.Delay(backoff)
		backoff *= 2
	}
}
