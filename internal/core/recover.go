package core

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// Recovery policy for injected (or modeled) hardware faults: bounded retry
// with exponential virtual-time backoff. Kernels run functionally before
// their simulated launch and faults only perturb the hardware model, so
// every recovery path yields results byte-identical to a fault-free run —
// faults cost time and counters, never correctness.
const (
	// maxAttempts bounds tries per operation (1 initial + 4 retries).
	maxAttempts = 5
	// retryBackoff is the first retry delay; it doubles per attempt.
	retryBackoff = 100 * sim.Microsecond
)

// fail latches the first unrecoverable error. Streams poll r.abort and
// wind down; the framework surfaces it as the run's error.
func (r *run) fail(err error) {
	if r.abort == nil {
		r.abort = err
	}
}

// traceMark records a zero-duration marker span (fault/retry instants).
func (r *run) traceMark(kind trace.Kind, gpu, stream int, page int64) {
	now := r.env.Now()
	r.eng.opts.Trace.Add(trace.Span{GPU: gpu, Stream: stream, Kind: kind, Page: page, Level: r.curLevel, Start: now, End: now})
}

// withRetry runs fn until it succeeds or the attempt budget is exhausted,
// backing off exponentially in virtual time between attempts. Exhaustion
// wraps the last error in ErrHardwareFault.
func (r *run) withRetry(p *sim.Proc, gpu, stream int, what string, fn func() error) error {
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		err := fn()
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
			}
			return nil
		}
		r.traceMark(trace.Fault, gpu, stream, -1)
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: %s failed %d times: %v", ErrHardwareFault, what, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpu, stream, -1)
		p.Delay(backoff)
		backoff *= 2
	}
}

// launchKernel launches one kernel with recovery. A device-OOM failure
// degrades gracefully: the GPU's page cache is dropped (its memory freed
// for the launch) and every subsequent page on this GPU spills back to the
// streaming path — the run gets slower, not wrong. Other failures retry
// with backoff.
func (r *run) launchKernel(p *sim.Proc, gpuIdx, stream int, pid slottedpage.PageID, cycles float64) error {
	gpu := r.machine.GPUs[gpuIdx]
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		err := gpu.LaunchKernel(p, cycles, nil)
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
			}
			return nil
		}
		r.traceMark(trace.Fault, gpuIdx, stream, int64(pid))
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: kernel launch for page %d on GPU%d failed %d times: %v",
				ErrHardwareFault, pid, gpuIdx, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpuIdx, stream, int64(pid))
		if errors.Is(err, hw.ErrOutOfDeviceMemory) && r.caches[gpuIdx] != nil {
			gpu.Free(r.cacheBytes[gpuIdx])
			r.caches[gpuIdx] = nil
			r.cacheBytes[gpuIdx] = 0
			r.fstats.Degradations++
			continue // relaunch immediately with the freed memory
		}
		p.Delay(backoff)
		backoff *= 2
	}
}

// readPage reads pid from the storage array with recovery: failed reads
// retry with backoff, and pages that arrive corrupt are caught by the
// per-page CRC (slottedpage.VerifyPageBytes) and re-read. The caller
// inserts into the main-memory buffer on success.
func (r *run) readPage(p *sim.Proc, pid slottedpage.PageID, gpuIdx, stream int) error {
	g := r.eng.graph
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		r.armFaults()
		t0 := r.env.Now()
		corrupt, err := r.machine.Storage.ReadPage(p, uint64(pid))
		r.eng.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.StorageIO,
			Page: int64(pid), Level: r.curLevel, Start: t0, End: r.env.Now()})
		if err == nil && corrupt {
			// The injector damaged the bytes in flight. Run the real
			// verification machinery against a corrupted copy of the page
			// so detection exercises the same checksum path a production
			// read would.
			buf := append([]byte(nil), g.PageBytes(pid)...)
			buf[int(uint64(pid))%len(buf)] ^= 0xA5
			err = g.VerifyPageBytes(pid, buf)
		}
		if err == nil {
			if attempt > 1 {
				r.fstats.Recoveries++
			}
			return nil
		}
		r.traceMark(trace.Fault, gpuIdx, stream, int64(pid))
		if attempt >= maxAttempts {
			return fmt.Errorf("%w: reading page %d failed %d times: %v", ErrHardwareFault, pid, attempt, err)
		}
		r.fstats.Retries++
		r.traceMark(trace.Retry, gpuIdx, stream, int64(pid))
		p.Delay(backoff)
		backoff *= 2
	}
}
