package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kernels"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// traceGoldenCase is one pinned trace fixture: an algorithm over the seeded
// RMAT27 proxy graph on a 1-GPU/1-SSD machine (so storage I/O spans appear),
// clean and under the chaos fault plan.
type traceGoldenCase struct {
	name    string
	faulted bool
	// wantDir marks cases whose superstep spans must carry the planned
	// direction attribute (direction-optimizing kernels only; plain-kernel
	// traces must stay byte-identical to their pre-direction fixtures).
	wantDir bool
	make    func(sp *slottedpage.Graph) kernels.Kernel
}

func traceGoldenCases() []traceGoldenCase {
	mkBFS := func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewBFS(sp) }
	mkPR := func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewPageRank(sp, 0.85, 5) }
	mkDir := func(sp *slottedpage.Graph) kernels.Kernel { return kernels.NewDirBFS(sp) }
	return []traceGoldenCase{
		{"bfs_clean", false, false, mkBFS},
		{"bfs_faulted", true, false, mkBFS},
		{"pagerank_clean", false, false, mkPR},
		{"pagerank_faulted", true, false, mkPR},
		{"bfs_diropt_clean", false, true, mkDir},
		{"bfs_diropt_faulted", true, true, mkDir},
	}
}

// traceExports runs one case at the given worker count and returns the two
// export encodings: Chrome trace_event JSON and gts-trace JSONL.
func traceExports(t *testing.T, sp *slottedpage.Graph, tc traceGoldenCase, workers int) (chrome, jsonl []byte) {
	t.Helper()
	rec := trace.NewWithID(tc.name)
	opts := Options{Source: 0, HostWorkers: workers, Trace: rec}
	if tc.faulted {
		opts.Faults = chaosPlan()
	}
	mustRun(t, newEngine(t, sp, opts, 1, 1), tc.make(sp))
	var cb, jb bytes.Buffer
	if err := rec.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

func traceGoldenPath(name, ext string) string {
	return filepath.Join("testdata", "trace_"+name+"."+ext)
}

// TestGoldenTraces pins the exported timelines byte-for-byte: the virtual
// machine is deterministic and host workers never emit spans, so both the
// Chrome JSON and the JSONL exports must be identical across reruns AND
// across HostWorkers settings — clean and mid-fault alike. A diff means the
// observable execution schedule changed; if intentional, re-pin with
// `go test ./internal/core/ -run GoldenTraces -update-golden`.
func TestGoldenTraces(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)

	if *updateGolden {
		for _, tc := range traceGoldenCases() {
			chrome, jsonl := traceExports(t, sp, tc, 1)
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(traceGoldenPath(tc.name, "json"), chrome, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(traceGoldenPath(tc.name, "jsonl"), jsonl, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (.json %d bytes, .jsonl %d bytes)", traceGoldenPath(tc.name, "*"), len(chrome), len(jsonl))
		}
		return
	}

	for _, tc := range traceGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			wantChrome, err := os.ReadFile(traceGoldenPath(tc.name, "json"))
			if err != nil {
				t.Fatalf("reading golden (run -update-golden to create): %v", err)
			}
			wantJSONL, err := os.ReadFile(traceGoldenPath(tc.name, "jsonl"))
			if err != nil {
				t.Fatalf("reading golden (run -update-golden to create): %v", err)
			}
			for _, workers := range []int{1, 8} {
				chrome, jsonl := traceExports(t, sp, tc, workers)
				if !bytes.Equal(chrome, wantChrome) {
					t.Errorf("workers=%d: Chrome export differs from golden (%d vs %d bytes)", workers, len(chrome), len(wantChrome))
				}
				if !bytes.Equal(jsonl, wantJSONL) {
					t.Errorf("workers=%d: JSONL export differs from golden (%d vs %d bytes)", workers, len(jsonl), len(wantJSONL))
				}
			}
			// The pinned bytes must round-trip through the parser: spans
			// survive both encodings with identical kind/level structure.
			recC, err := trace.Parse(wantChrome)
			if err != nil {
				t.Fatalf("golden Chrome export unparseable: %v", err)
			}
			recJ, err := trace.Parse(wantJSONL)
			if err != nil {
				t.Fatalf("golden JSONL export unparseable: %v", err)
			}
			if recC.ID() != tc.name || recJ.ID() != tc.name {
				t.Errorf("parsed IDs = %q / %q, want %q", recC.ID(), recJ.ID(), tc.name)
			}
			assertTraceShape(t, tc, recJ)
		})
	}
}

// assertTraceShape checks the hierarchy invariants of a pinned trace: one
// run span, at least one superstep, kernels and copies inside supersteps
// (level >= 0), storage reads present (the machine has an SSD), and fault
// markers exactly when the chaos plan was armed.
func assertTraceShape(t *testing.T, tc traceGoldenCase, rec *trace.Recorder) {
	t.Helper()
	var runs, steps, kernelsN, copies, storage, faults, dirs int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.Run:
			runs++
		case trace.Superstep:
			steps++
			if s.Level < 0 {
				t.Errorf("superstep span with level %d", s.Level)
			}
			if s.Dir != 0 {
				dirs++
			}
		case trace.Kernel:
			kernelsN++
			if s.Level < 0 {
				t.Errorf("kernel span outside any superstep (level %d)", s.Level)
			}
		case trace.CopyPage:
			copies++
		case trace.StorageIO:
			storage++
		case trace.Fault:
			faults++
		}
		if s.End < s.Start {
			t.Errorf("span %v ends before it starts: [%v, %v]", s.Kind, s.Start, s.End)
		}
	}
	if runs != 1 {
		t.Errorf("run spans = %d, want exactly 1", runs)
	}
	if steps == 0 || kernelsN == 0 || copies == 0 {
		t.Errorf("missing hierarchy spans: supersteps=%d kernels=%d copies=%d", steps, kernelsN, copies)
	}
	if storage == 0 {
		t.Errorf("no storage I/O spans on a 1-SSD machine")
	}
	if tc.faulted && faults == 0 {
		t.Errorf("chaos run recorded no fault spans")
	}
	if !tc.faulted && faults != 0 {
		t.Errorf("clean run recorded %d fault spans", faults)
	}
	if tc.wantDir && dirs == 0 {
		t.Errorf("direction-optimizing run recorded no superstep direction attributes")
	}
	if !tc.wantDir && dirs != 0 {
		t.Errorf("plain-kernel run recorded %d superstep direction attributes", dirs)
	}
}

// TestTraceRenderDeterministic pins the human-facing view too: the ASCII
// timeline rendered from a golden trace is itself stable.
func TestTraceRenderDeterministic(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	tc := traceGoldenCases()[0]
	var first string
	for i := 0; i < 2; i++ {
		chrome, _ := traceExports(t, sp, tc, 1+i*7)
		rec, err := trace.Parse(chrome)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.RenderTimeline(&buf, 72); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			if first == "" {
				t.Fatal("empty timeline")
			}
			continue
		}
		if got := buf.String(); got != first {
			t.Errorf("timeline differs between runs:\n%s\nvs\n%s", first, got)
		}
	}
}
