package core

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
)

// BenchmarkSuperstepWorkers measures a full engine run per iteration at a
// sweep of host worker-pool sizes — wall-clock ns/op is the quantity
// HostWorkers shrinks on a multi-core host (on a single-core runner the
// sweep degenerates but stays honest). allocs/op tracks the pooled hot
// path; "hkw-ms" reports the host kernel wall-clock alone.
func BenchmarkSuperstepWorkers(b *testing.B) {
	g := rmatGraph(&testing.T{})
	sp, err := slottedpage.Build(g, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []string{"BFS", "PageRank"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				b.ReportAllocs()
				var wall float64
				for i := 0; i < b.N; i++ {
					var k kernels.Kernel
					if algo == "BFS" {
						k = kernels.NewBFS(sp)
					} else {
						k = kernels.NewPageRank(sp, 0.85, 5)
					}
					e, err := New(hw.Workstation(1, 0), sp, Options{Source: 0, HostWorkers: workers})
					if err != nil {
						b.Fatal(err)
					}
					rep, err := e.Run(k)
					if err != nil {
						b.Fatal(err)
					}
					wall = float64(rep.HostKernelWall.Microseconds()) / 1000
				}
				b.ReportMetric(wall, "hkw-ms")
			})
		}
	}
}

// benchRun assembles a run context outside the simulation loop so the
// compute path can be exercised (and its allocations counted) in
// isolation: computeKernels never touches the sim, so this is exactly the
// state it sees mid-phase.
func benchRun(tb testing.TB, sp *slottedpage.Graph, k kernels.Kernel, workers int) (*run, []pageKey, []pidSet) {
	tb.Helper()
	e, err := New(hw.Workstation(1, 0), sp, Options{Source: 0, HostWorkers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	r := &run{eng: e, k: k, env: sim.NewEnv(), inflight: map[slottedpage.PageID]*sim.Signal{}}
	r.workers = e.opts.HostWorkers
	numPages := e.graph.NumPages()
	r.pidPool.New = func() any { return bitset.New(numPages) }
	r.inj = fault.NewInjector(nil)
	m, err := hw.NewMachine(r.env, e.spec, int64(e.graph.Config().PageSize))
	if err != nil {
		tb.Fatal(err)
	}
	r.machine = m
	m.InjectFaults(r.inj)
	if err := r.setup(); err != nil {
		tb.Fatal(err)
	}
	var jobs []pageKey
	for pid := 0; pid < numPages; pid++ {
		jobs = append(jobs, pageKey{0, slottedpage.PageID(pid)})
	}
	locals := []pidSet{bitset.New(numPages)}
	r.kres = make(map[pageKey]kernels.Result, len(jobs))
	return r, jobs, locals
}

// TestGatherApplyAllocBudget pins the pooled hot path: after one warm-up
// phase (which populates the deferred pool, the gather scratch, and the
// result map), a steady-state computeKernels phase must stay within a
// small fixed allocation budget — the serial path allocation-free, the
// parallel path paying only its per-wave goroutine launches.
func TestGatherApplyAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation perturbs allocation counts")
	}
	g := rmatGraph(t)
	sp := buildPages(t, g)

	measure := func(workers int) float64 {
		k := kernels.NewPageRank(sp, 0.85, 5)
		r, jobs, locals := benchRun(t, sp, k, workers)
		phase := func() {
			for key := range r.kres {
				delete(r.kres, key)
			}
			locals[0].Reset()
			r.computeKernels(jobs, 0, locals, false)
		}
		phase() // warm pools and scratch
		return testing.AllocsPerRun(20, phase)
	}

	if got := measure(1); got > 0 {
		t.Errorf("serial phase allocates %.1f objects/run, want 0 (pooled hot path regressed)", got)
	}
	// The parallel path launches up to `workers` goroutines per wave; with
	// 8 workers, waveFactor 8 and this graph's page count that is a few
	// dozen closures. 128 leaves headroom without masking a regression to
	// per-page or per-op allocation (which would be thousands).
	if got := measure(8); got > 128 {
		t.Errorf("parallel phase allocates %.1f objects/run, want <= 128", got)
	}
}
