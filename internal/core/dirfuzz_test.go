package core

import (
	"bytes"
	"testing"

	"repro/internal/csr"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// fuzzGraph decodes arbitrary fuzz bytes into a small directed graph: the
// first byte sizes the vertex set, the rest is consumed pairwise as
// (src, dst) edges. Any byte string decodes to a valid graph, so the
// fuzzer explores frontier shapes — empty levels, full levels, hubs,
// chains — rather than input validation.
func fuzzGraph(data []byte) *csr.Graph {
	nv := 2
	if len(data) > 0 {
		nv = 2 + int(data[0])%254
		data = data[1:]
	}
	var edges []csr.Edge
	for i := 0; i+1 < len(data) && len(edges) < 4096; i += 2 {
		edges = append(edges, csr.Edge{
			Src: uint32(int(data[i]) % nv),
			Dst: uint32(int(data[i+1]) % nv),
		})
	}
	return csr.MustFromEdges(nv, edges)
}

// chainBytes, starBytes and oscillatingBytes build seed corpus entries with
// adversarial frontier densities: a sparse chain keeps every frontier at
// one vertex (push stays optimal), a star saturates level 1 (pull wins
// immediately), and a chain of hubs oscillates between the two so the
// adaptive planner must switch direction repeatedly.
func chainBytes(n int) []byte {
	out := []byte{byte(n)}
	for i := 0; i+1 < n; i++ {
		out = append(out, byte(i), byte(i+1))
	}
	return out
}

func starBytes(n int) []byte {
	out := []byte{byte(n)}
	for i := 1; i < n; i++ {
		out = append(out, 0, byte(i))
	}
	return out
}

func oscillatingBytes(hubs, fan int) []byte {
	n := hubs * (fan + 1)
	out := []byte{byte(n)}
	for h := 0; h < hubs; h++ {
		hub := h * (fan + 1)
		for i := 1; i <= fan; i++ {
			out = append(out, byte(hub), byte(hub+i))
		}
		if h+1 < hubs {
			// One narrow bridge from the fan back down to the next hub.
			out = append(out, byte(hub+1), byte((h+1)*(fan+1)))
		}
	}
	return out
}

// FuzzDirectionSwitch feeds adversarial frontier densities through the
// direction-optimizing BFS and asserts push-only, pull-only, and adaptive
// runs all reproduce the plain kernel's levels, serially and in parallel.
// A divergence means the pull path's phase-stability argument (or the
// Beamer switch itself) broke for some frontier shape.
func FuzzDirectionSwitch(f *testing.F) {
	f.Add([]byte{1}, uint16(0))               // single vertex, no edges: frontier empties at level 0
	f.Add([]byte{8}, uint16(3))               // isolated vertices: nothing reachable
	f.Add(chainBytes(64), uint16(0))          // sparse frontiers: push-only territory
	f.Add(starBytes(120), uint16(0))          // level 1 is the whole graph: pull territory
	f.Add(oscillatingBytes(6, 30), uint16(0)) // hub fans force repeated direction switches
	f.Add(append(chainBytes(32), starBytes(32)[1:]...), uint16(5))

	f.Fuzz(func(t *testing.T, data []byte, src uint16) {
		g := fuzzGraph(data)
		source := uint64(src) % g.NumVertices()
		sp, err := slottedpage.Build(g, testConfig())
		if err != nil {
			t.Skip("unpageable fuzz graph")
		}

		plain := kernels.NewBFS(sp)
		rep := mustRun(t, newEngine(t, sp, Options{Source: source, HostWorkers: 1}, 1, 0), plain)
		want := encodeVec(plain.Levels(rep.State))

		for _, mode := range []kernels.DirMode{kernels.DirAuto, kernels.DirForcePush, kernels.DirForcePull} {
			for _, workers := range []int{1, 4} {
				k := kernels.NewDirBFS(sp)
				k.SetMode(mode)
				drep := mustRun(t, newEngine(t, sp, Options{Source: source, HostWorkers: workers}, 1, 0), k)
				if got := encodeVec(k.Levels(drep.State)); !bytes.Equal(got, want) {
					t.Errorf("mode=%v workers=%d: levels diverge from plain BFS (graph %d vertices, %d edges, source %d)",
						mode, workers, g.NumVertices(), g.NumEdges(), source)
				}
				// Superstep count is a schedule metric, not a value: pull
				// levels with no unvisited vertices left plan zero pages and
				// skip the trailing no-op superstep push executes, so depth
				// may come in one under the plain kernel's. Only the level
				// vector is pinned.
			}
		}
	})
}
