package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// sharedEngine builds an engine for RunShared (the engine-level Source is
// irrelevant; members carry their own).
func sharedEngine(t *testing.T, sp *slottedpage.Graph, opts Options, gpus, ssds int) *Engine {
	t.Helper()
	return newEngine(t, sp, opts, gpus, ssds)
}

func mustRunShared(t *testing.T, e *Engine, jobs []SharedJob, admit func() []SharedJob) ([]SharedOutcome, SharedStats) {
	t.Helper()
	outs, stats, err := e.RunShared(jobs, admit)
	if err != nil {
		t.Fatal(err)
	}
	return outs, stats
}

// TestSharedMatchesSoloAllKernels is the tentpole's acceptance test: a
// mixed wave group running every built-in kernel at once must leave each
// member's final state byte-identical to its solo run — topology sharing
// perturbs virtual timing only, never results.
func TestSharedMatchesSoloAllKernels(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	cases := kernelCases()
	opts := Options{Source: 7}

	var jobs []SharedJob
	made := make([]kernels.Kernel, len(cases))
	for i, kc := range cases {
		made[i] = kc.make(sp)
		jobs = append(jobs, SharedJob{Kernel: made[i], Source: 7})
	}
	outs, stats := mustRunShared(t, sharedEngine(t, sp, opts, 1, 0), jobs, nil)
	if stats.Members != len(cases) {
		t.Fatalf("Members = %d, want %d", stats.Members, len(cases))
	}
	if stats.Waves == 0 {
		t.Fatal("no waves executed")
	}
	for i, kc := range cases {
		if outs[i].Err != nil || outs[i].Declined {
			t.Fatalf("%s: outcome err=%v declined=%v", kc.name, outs[i].Err, outs[i].Declined)
		}
		soloDigest, soloRep := runDigest(t, sp, kc, opts, 1, 0)
		got := kc.enc(made[i], outs[i].Report.State)
		if !bytes.Equal(got, soloDigest) {
			t.Errorf("%s: shared state differs from solo", kc.name)
		}
		if outs[i].Report.Levels != soloRep.Levels {
			t.Errorf("%s: Levels = %d, solo %d", kc.name, outs[i].Report.Levels, soloRep.Levels)
		}
		if outs[i].Report.EdgesTraversed != soloRep.EdgesTraversed {
			t.Errorf("%s: EdgesTraversed = %d, solo %d", kc.name, outs[i].Report.EdgesTraversed, soloRep.EdgesTraversed)
		}
		if outs[i].Report.Updates != soloRep.Updates {
			t.Errorf("%s: Updates = %d, solo %d", kc.name, outs[i].Report.Updates, soloRep.Updates)
		}
	}
	// Mixed algorithms still share: at least some pages must have been
	// served to more than one member.
	if stats.SharedPageCopies == 0 {
		t.Error("mixed group recorded no shared page copies")
	}
	if stats.BytesSaved <= 0 {
		t.Error("BytesSaved not accounted")
	}
}

// bfsSources returns n distinct BFS sources spread across the vertex set.
// Distinct sources matter: at the service layer identical requests would be
// absorbed by single-flight dedup rather than exercising wave sharing.
func bfsSources(n int, nV uint64) []uint64 {
	stride := nV / uint64(n)
	if stride == 0 {
		stride = 1
	}
	src := make([]uint64, n)
	for i := range src {
		src[i] = uint64(i) * stride % nV
	}
	return src
}

// TestShared32BFSAmortizesBytes is the ISSUE's headline acceptance: 32
// concurrent BFS jobs from distinct sources on one graph must stream at
// most 2x the topology bytes of one solo run, record shared copies, and
// leave every member byte-identical to its solo counterpart.
func TestShared32BFSAmortizesBytes(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pageSize := int64(sp.Config().PageSize)
	sources := bfsSources(32, sp.NumVertices())

	solo := make(map[uint64][]int16)
	var soloBytes int64
	for _, s := range sources {
		if _, ok := solo[s]; ok {
			continue
		}
		k := kernels.NewBFS(sp)
		rep := mustRun(t, newEngine(t, sp, Options{Source: s}, 1, 0), k)
		solo[s] = append([]int16(nil), k.Levels(rep.State)...)
		if b := rep.PagesStreamed * pageSize; b > soloBytes {
			soloBytes = b
		}
	}

	var jobs []SharedJob
	made := make([]*kernels.BFS, len(sources))
	for i, s := range sources {
		made[i] = kernels.NewBFS(sp)
		jobs = append(jobs, SharedJob{Kernel: made[i], Source: s})
	}
	outs, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 0), jobs, nil)

	for i, s := range sources {
		if outs[i].Err != nil || outs[i].Declined {
			t.Fatalf("job %d: err=%v declined=%v", i, outs[i].Err, outs[i].Declined)
		}
		got := made[i].Levels(outs[i].Report.State)
		want := solo[s]
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("job %d (source %d): vertex %d level = %d, solo %d", i, s, v, got[v], want[v])
			}
		}
	}
	if stats.SharedPageCopies == 0 {
		t.Error("32-way BFS group recorded no shared page copies")
	}
	if stats.PageBytesStreamed > 2*soloBytes {
		t.Errorf("group streamed %d topology bytes, want <= 2x solo (%d)", stats.PageBytesStreamed, 2*soloBytes)
	}
	if got := stats.AmortizedBytesPerJob(); got <= 0 {
		t.Errorf("AmortizedBytesPerJob = %v", got)
	}
	// The whole point: each member paid far less than a solo run's traffic.
	if stats.BytesSaved == 0 {
		t.Error("no bytes saved across 32 members")
	}
}

// TestSharedFaultedMatchesClean: members with per-member chaos plans must
// produce results byte-identical to a clean shared run and to solo runs.
func TestSharedFaultedMatchesClean(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	sources := []uint64{0, 512, 1024, 1536}

	run := func(withFaults bool) ([][]int16, SharedStats) {
		var jobs []SharedJob
		made := make([]*kernels.BFS, len(sources))
		for i, s := range sources {
			made[i] = kernels.NewBFS(sp)
			j := SharedJob{Kernel: made[i], Source: s}
			if withFaults {
				plan := chaosPlan()
				plan.Seed = int64(100 + i) // distinct fault sequences per member
				j.Faults = plan
			}
			jobs = append(jobs, j)
		}
		outs, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 1), jobs, nil)
		res := make([][]int16, len(sources))
		for i := range sources {
			if outs[i].Err != nil {
				t.Fatalf("job %d: %v", i, outs[i].Err)
			}
			res[i] = append([]int16(nil), made[i].Levels(outs[i].Report.State)...)
			if withFaults && outs[i].Report.Faults.Injected() == 0 && i == 0 {
				t.Log("note: member 0 drew no injections (rates are low)")
			}
		}
		return res, stats
	}

	clean, _ := run(false)
	faulted, _ := run(true)
	for i := range sources {
		if !bytes.Equal(encodeVec(clean[i]), encodeVec(faulted[i])) {
			t.Errorf("member %d: faulted shared run differs from clean shared run", i)
		}
	}
	for i, s := range sources {
		k := kernels.NewBFS(sp)
		rep := mustRun(t, newEngine(t, sp, Options{Source: s}, 1, 1), k)
		if !bytes.Equal(encodeVec(k.Levels(rep.State)), encodeVec(clean[i])) {
			t.Errorf("member %d: shared run differs from solo", i)
		}
	}
}

// TestSharedFaultedMemberDoesNotStallGroup: a member whose storage reads
// always corrupt exhausts its retry budget and aborts, but the next live
// demander of each page takes over the copy with a fresh budget, so the
// rest of the group completes and matches solo.
func TestSharedFaultedMemberDoesNotStallGroup(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	poison := &fault.Plan{Seed: 7, CorruptionRate: 1}

	// The poisoned member joins FIRST, so it is the issuer for every page
	// the group demands at wave 1 until it aborts.
	jobs := []SharedJob{
		{Kernel: kernels.NewBFS(sp), Source: 0, Faults: poison},
		{Kernel: kernels.NewBFS(sp), Source: 0},
		{Kernel: kernels.NewBFS(sp), Source: 512},
	}
	outs, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 1), jobs, nil)

	if outs[0].Err == nil {
		t.Fatal("poisoned member did not fail")
	}
	if !errors.Is(outs[0].Err, ErrHardwareFault) {
		t.Fatalf("poisoned member error = %v, want ErrHardwareFault", outs[0].Err)
	}
	for i := 1; i < 3; i++ {
		if outs[i].Err != nil || outs[i].Declined {
			t.Fatalf("survivor %d: err=%v declined=%v", i, outs[i].Err, outs[i].Declined)
		}
	}
	for i, src := range []uint64{0, 512} {
		k := kernels.NewBFS(sp)
		rep := mustRun(t, newEngine(t, sp, Options{Source: src}, 1, 1), k)
		got := jobs[i+1].Kernel.(*kernels.BFS).Levels(outs[i+1].Report.State)
		if !bytes.Equal(encodeVec(got), encodeVec(k.Levels(rep.State))) {
			t.Errorf("survivor %d differs from solo", i+1)
		}
	}
	if stats.Elapsed <= 0 {
		t.Error("group made no progress")
	}
}

// TestSharedAdmitJoinsAtWaveBoundary: a job handed to the admit callback
// mid-run joins at the next wave boundary and still matches its solo run.
func TestSharedAdmitJoinsAtWaveBoundary(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)

	bfs := kernels.NewBFS(sp)
	pr := kernels.NewPageRank(sp, 0.85, 5)
	polls := 0
	admit := func() []SharedJob {
		polls++
		if polls == 2 {
			return []SharedJob{{Kernel: pr, Source: 0}}
		}
		return nil
	}
	outs, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 0),
		[]SharedJob{{Kernel: bfs, Source: 0}}, admit)

	if len(outs) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outs))
	}
	if stats.Members != 2 {
		t.Fatalf("Members = %d, want 2", stats.Members)
	}
	for i, o := range outs {
		if o.Err != nil || o.Declined {
			t.Fatalf("outcome %d: err=%v declined=%v", i, o.Err, o.Declined)
		}
	}
	soloBFS := kernels.NewBFS(sp)
	repB := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), soloBFS)
	if !bytes.Equal(encodeVec(bfs.Levels(outs[0].Report.State)), encodeVec(soloBFS.Levels(repB.State))) {
		t.Error("initial BFS member differs from solo")
	}
	soloPR := kernels.NewPageRank(sp, 0.85, 5)
	repP := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), soloPR)
	if !bytes.Equal(encodeVec(pr.Ranks(outs[1].Report.State)), encodeVec(soloPR.Ranks(repP.State))) {
		t.Error("late-joining PageRank member differs from solo")
	}
}

// TestSharedMultiGPUStrategies: wave groups must stay byte-identical to
// solo under both placement strategies with multiple GPUs and storage.
func TestSharedMultiGPUStrategies(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	for _, cfg := range []config{
		{"P-2gpu-mem", StrategyP, 2, 0},
		{"S-2gpu-mem", StrategyS, 2, 0},
		{"P-2gpu-2ssd", StrategyP, 2, 2},
		{"S-2gpu-2ssd", StrategyS, 2, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			opts := Options{Strategy: cfg.strategy}
			bfs := kernels.NewBFS(sp)
			pr := kernels.NewPageRank(sp, 0.85, 5)
			outs, _ := mustRunShared(t, sharedEngine(t, sp, opts, cfg.gpus, cfg.ssds), []SharedJob{
				{Kernel: bfs, Source: 0},
				{Kernel: pr, Source: 0},
			}, nil)
			for i, o := range outs {
				if o.Err != nil || o.Declined {
					t.Fatalf("outcome %d: err=%v declined=%v", i, o.Err, o.Declined)
				}
			}
			soloBFS := kernels.NewBFS(sp)
			opts.Source = 0
			repB := mustRun(t, newEngine(t, sp, opts, cfg.gpus, cfg.ssds), soloBFS)
			if !bytes.Equal(encodeVec(bfs.Levels(outs[0].Report.State)), encodeVec(soloBFS.Levels(repB.State))) {
				t.Error("BFS differs from solo")
			}
			soloPR := kernels.NewPageRank(sp, 0.85, 5)
			repP := mustRun(t, newEngine(t, sp, opts, cfg.gpus, cfg.ssds), soloPR)
			if !bytes.Equal(encodeVec(pr.Ranks(outs[1].Report.State)), encodeVec(soloPR.Ranks(repP.State))) {
				t.Error("PageRank differs from solo")
			}
		})
	}
}

// TestSharedDeclineWhenWAWontFit: when a joiner's WA cannot fit even after
// the cache is gone, it is declined (solo fallback) rather than sinking the
// group.
func TestSharedDeclineWhenWAWontFit(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pageSize := int64(sp.Config().PageSize)

	probe := kernels.NewPageRank(sp, 0.85, 5)
	st := probe.NewState()
	probe.Init(st, 0)
	wa := st.WABytes()

	raBuf := int64(sp.Config().MaxSlotsPerPage()) * sharedRABudget
	bufBytes := 1 * (2*pageSize + raBuf) // Streams: 1 below
	spec := hw.Workstation(1, 0)
	spec.GPUs[0].DeviceMemory = bufBytes + 2*wa + wa/2 // room for two WAs, not three

	e, err := New(spec, sp, Options{Streams: 1, CacheBytes: CacheDisabled})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []SharedJob{
		{Kernel: kernels.NewPageRank(sp, 0.85, 5), Source: 0},
		{Kernel: kernels.NewPageRank(sp, 0.85, 5), Source: 0},
		{Kernel: kernels.NewPageRank(sp, 0.85, 5), Source: 0},
	}
	outs, stats, err := e.RunShared(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("fitting members failed: %v / %v", outs[0].Err, outs[1].Err)
	}
	if !outs[2].Declined {
		t.Fatalf("third member not declined: %+v", outs[2])
	}
	if stats.Declined != 1 || stats.Members != 2 {
		t.Errorf("stats Declined=%d Members=%d, want 1/2", stats.Declined, stats.Members)
	}
}

// TestSharedDeterminism: the same group replayed from scratch lands on the
// identical virtual makespan and accounting.
func TestSharedDeterminism(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	sources := bfsSources(8, sp.NumVertices())

	run := func() SharedStats {
		var jobs []SharedJob
		for _, s := range sources {
			jobs = append(jobs, SharedJob{Kernel: kernels.NewBFS(sp), Source: s})
		}
		_, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 1), jobs, nil)
		return stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestSharedEmitsWaveSpans: per-member recorders carry the new Wave and
// SharedCopy span kinds.
func TestSharedEmitsWaveSpans(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	rec0 := trace.NewWithID("member0")
	rec1 := trace.NewWithID("member1")
	jobs := []SharedJob{
		{Kernel: kernels.NewBFS(sp), Source: 0, Trace: rec0},
		{Kernel: kernels.NewBFS(sp), Source: 512, Trace: rec1},
	}
	outs, stats := mustRunShared(t, sharedEngine(t, sp, Options{}, 1, 0), jobs, nil)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
	}
	count := func(rec *trace.Recorder, kind trace.Kind) int {
		n := 0
		for _, s := range rec.Spans() {
			if s.Kind == kind {
				n++
			}
		}
		return n
	}
	if count(rec0, trace.Wave) == 0 {
		t.Error("member 0 recorded no wave spans")
	}
	if stats.SharedPageCopies > 0 && count(rec0, trace.SharedCopy)+count(rec1, trace.SharedCopy) == 0 {
		t.Error("shared copies happened but no SharedCopy spans recorded")
	}
	if count(rec0, trace.Run) != 1 {
		t.Errorf("member 0 Run spans = %d, want 1", count(rec0, trace.Run))
	}
}
