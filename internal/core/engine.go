// Package core implements the GTS framework of the paper's §3-§4: it
// streams slotted-page topology from main memory or SSDs to (simulated)
// GPUs over asynchronous streams, runs page kernels against device-resident
// attribute data, and orchestrates level-by-level traversal for BFS-like
// algorithms or full scans for PageRank-like ones (Algorithm 1).
//
// Multi-GPU execution follows the paper's two schemes: Strategy-P
// (replicated attribute data, partitioned topology, peer-to-peer merge,
// §4.1) and Strategy-S (partitioned attribute data, broadcast topology,
// §4.2). Spare device memory becomes an LRU topology-page cache (§3.3), and
// a main-memory buffer pool front-ends the SSD array (bufferPIDMap).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bufpool"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// Strategy selects the multi-GPU scheme (paper §4).
type Strategy int

// Strategies.
const (
	// StrategyP copies the same attribute data to all GPUs and a different
	// part of the topology to each: high performance, WA must fit one GPU.
	StrategyP Strategy = iota
	// StrategyS copies a different attribute chunk to each GPU and the
	// same topology to all: scales WA across GPUs at some performance cost.
	StrategyS
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	if s == StrategyS {
		return "Strategy-S"
	}
	return "Strategy-P"
}

// CacheDisabled turns the device-memory page cache off when assigned to
// Options.CacheBytes.
const CacheDisabled int64 = -1

// ErrWontFit reports that the run cannot be configured within device
// memory; the message says which strategy or resource was exceeded.
var ErrWontFit = errors.New("core: working set exceeds device memory")

// ErrHardwareFault reports that an injected (or modeled) hardware fault
// persisted beyond the engine's retry budget and the run was abandoned.
// Recoverable faults never surface this error — they cost virtual time and
// show up in Report.Faults instead.
var ErrHardwareFault = errors.New("core: hardware fault persisted beyond retry budget")

// Options configure an engine run.
type Options struct {
	// Strategy selects the multi-GPU scheme. Default StrategyP.
	Strategy Strategy
	// Streams is the number of asynchronous GPU streams per GPU, 1-32
	// (paper §3.2). Default 32.
	Streams int
	// Technique selects the micro-level parallel scheme (paper §6.2).
	// Default EdgeCentric (the paper's default, VWC).
	Technique kernels.Technique
	// Source is the start vertex for BFS-like kernels.
	Source uint64
	// CacheBytes bounds the per-GPU topology page cache: 0 (the default)
	// uses all free device memory as the paper's §3.3 does, CacheDisabled
	// turns caching off, and a positive value sets the exact byte budget.
	CacheBytes int64
	// MMBufBytes bounds the main-memory page buffer when streaming from
	// storage; 0 defaults to 20% of the topology (the paper's RMAT31/32
	// setting). Ignored when the machine has no storage (fully in-memory).
	MMBufBytes int64
	// Prefetch enables a read-ahead process for storage-backed runs: it
	// fetches the superstep's pages into the main-memory buffer in page-ID
	// order ahead of the GPU streams, turning the devices' access pattern
	// sequential (which spinning disks in particular reward). The paper's
	// Algorithm 1 fetches on demand (line 23); this is an extension.
	Prefetch bool
	// Trace, when non-nil, records per-stream spans for Figure 4.
	Trace *trace.Recorder
	// Faults, when non-nil, injects hardware failures from a seeded plan:
	// PCI-E transfer errors/stalls, device OOM at kernel launch, storage
	// read errors, and page corruption. The engine retries, re-reads, and
	// degrades as needed; since kernels run functionally and faults only
	// perturb the simulated hardware, a recovered run's results are
	// byte-identical to a fault-free run's.
	Faults *fault.Plan
	// HostWorkers sizes the pool of host goroutines that execute the
	// functional kernel work of each phase (mirroring the simulated stream
	// slots). 0 (the default) uses GOMAXPROCS; 1 forces the serial path.
	// Results are byte-identical at every setting: pages gather in parallel
	// against phase-start state and their deferred writes are applied in the
	// same deterministic (GPU, page) order the serial path uses. Kernels
	// that cannot gather safely (SSSP) always run serially.
	HostWorkers int
	// HostPool, when non-nil, replaces the run-private main-memory buffer
	// with a shared, ref-counted host page pool for storage-backed runs:
	// every engine and wave group handed the same pool keeps at most one
	// host copy of each hot page. The pool's page size must match the
	// graph's. MMBufBytes is ignored when a pool is set (the pool's own
	// budget governs). Ignored for fully in-memory runs. Since the pool
	// only decides which reads hit host memory — never what a kernel
	// computes — results are byte-identical with and without it.
	HostPool *bufpool.Pool
}

func (o Options) withDefaults() Options {
	if o.Streams == 0 {
		o.Streams = 32
	}
	if o.HostWorkers == 0 {
		o.HostWorkers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.Streams < 1 || o.Streams > 32 {
		return fmt.Errorf("core: %d streams out of range [1,32]", o.Streams)
	}
	if o.HostWorkers < 1 || o.HostWorkers > 1024 {
		return fmt.Errorf("core: %d host workers out of range [1,1024]", o.HostWorkers)
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Report summarizes a finished run.
type Report struct {
	// State is the merged final attribute state; decode it with the
	// kernel's accessor (e.g. (*kernels.BFS).Levels).
	State kernels.State
	// Elapsed is the virtual wall-clock time of the run.
	Elapsed sim.Time
	// Levels counts traversal levels (BFS-like) or iterations
	// (PageRank-like).
	Levels int32
	// PagesStreamed counts page copies into GPUs (cache hits excluded).
	PagesStreamed int64
	// CacheHits counts pages served from the device-memory page cache.
	CacheHits int64
	// BytesToGPU is total host-to-device traffic.
	BytesToGPU int64
	// EdgesTraversed counts adjacency entries the kernels scanned.
	EdgesTraversed int64
	// Updates counts attribute writes.
	Updates int64
	// CacheHitRate is the device page-cache hit fraction (Fig. 11).
	CacheHitRate float64
	// BufferHitRate is the main-memory buffer hit fraction.
	BufferHitRate float64
	// TransferTime is summed service time of streaming page copies and
	// KernelTime summed kernel execution — their ratio is Table 1.
	TransferTime sim.Time
	KernelTime   sim.Time
	// StorageBytes is total bytes fetched from SSDs/HDDs.
	StorageBytes int64
	// WABytes is the device-resident attribute footprint (Table 4).
	WABytes int64
	// MTEPS is millions of traversed edges per second of elapsed time.
	MTEPS float64
	// LevelPages and LevelBytes record, per traversal level (BFS-like) or
	// iteration (PageRank-like), how many pages and bytes streamed to the
	// GPUs — the per-level quantities Eq. 2 consumes.
	LevelPages []int64
	LevelBytes []int64
	// LevelDirs records, per forward traversal level, the direction a
	// FrontierKernel planned (push or pull). Nil for kernels without
	// direction optimization.
	LevelDirs []kernels.Direction
	// Faults counts injected hardware faults and the recovery work
	// (retries, recoveries, degradations) the run performed. All zero
	// when Options.Faults is nil.
	Faults fault.Stats
	// HostWorkers is the host worker-pool size the run executed with
	// (Options.HostWorkers after defaulting).
	HostWorkers int
	// HostKernelWall is the real (not virtual) wall-clock time the host
	// spent in functional kernel execution — the quantity HostWorkers
	// parallelism shrinks. Measured around each phase's precompute.
	HostKernelWall time.Duration
	// PoolHits, PoolLoads and PoolWaits are this run's shared host-pool
	// traffic when Options.HostPool is set (all zero otherwise): pins
	// served from a resident page, pins that paid a storage read, and pins
	// denied (frame busy in another run, or every frame pinned) that fell
	// back to a bypass read.
	PoolHits  int64
	PoolLoads int64
	PoolWaits int64
}

// Engine runs kernels over one graph on one machine specification. Each Run
// builds a fresh simulation, so runs are independent and deterministic.
type Engine struct {
	spec  hw.MachineSpec
	graph *slottedpage.Graph
	opts  Options
}

// New validates the configuration and returns an engine.
func New(spec hw.MachineSpec, graph *slottedpage.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if graph.NumPages() == 0 {
		return nil, fmt.Errorf("core: graph has no pages")
	}
	if opts.HostPool != nil {
		if got, want := opts.HostPool.PageSize(), int64(graph.Config().PageSize); got != want {
			return nil, fmt.Errorf("core: host pool page size %d does not match the graph's %d", got, want)
		}
	}
	return &Engine{spec: spec, graph: graph, opts: opts}, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *slottedpage.Graph { return e.graph }

// ceilDiv is integer division rounding up.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// expandLPRun adds every page of the LP run starting at pid (kernels mark
// only a large vertex's first page — its home RID).
func (e *Engine) expandLPRun(set pidSet, pid slottedpage.PageID) {
	owner := e.graph.RVT(pid).StartVID
	for p := pid; int(p) < e.graph.NumPages() &&
		e.graph.Kind(p) == slottedpage.LargePage &&
		e.graph.RVT(p).StartVID == owner; p++ {
		set.Set(int(p))
	}
}
