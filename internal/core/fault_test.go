package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
)

// chaosPlan injects every fault kind: transfer errors and stalls, storage
// read errors, page corruption, and one device OOM at the tenth kernel
// launch. Rates are low enough that the retry budget (5 attempts) always
// wins for this seed.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Seed:              42,
		TransferErrorRate: 0.05,
		TransferStallRate: 0.05,
		StorageErrorRate:  0.05,
		CorruptionRate:    0.10,
		OOMKernelLaunches: []int64{10},
	}
}

// TestBFSByteIdenticalUnderFaults is the acceptance test for the fault
// layer: a run that absorbs transfer errors, storage errors, page
// corruption, and a device OOM must produce results byte-identical to a
// fault-free run — faults cost virtual time, never correctness.
func TestBFSByteIdenticalUnderFaults(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewBFS(sp)
	clean := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 1), k)
	cleanLevels := append([]int16(nil), k.Levels(clean.State)...)
	if clean.Faults.Injected() != 0 {
		t.Fatalf("fault-free run reports injections: %+v", clean.Faults)
	}

	k2 := kernels.NewBFS(sp)
	faulted := mustRun(t, newEngine(t, sp, Options{Source: 0, Faults: chaosPlan()}, 1, 1), k2)
	got := k2.Levels(faulted.State)
	for v := range cleanLevels {
		if got[v] != cleanLevels[v] {
			t.Fatalf("vertex %d level = %d under faults, want %d", v, got[v], cleanLevels[v])
		}
	}

	fs := faulted.Faults
	if fs.Injected() == 0 {
		t.Fatal("chaos plan injected nothing — the test is vacuous")
	}
	if fs.DeviceOOMs != 1 {
		t.Errorf("DeviceOOMs = %d, want 1", fs.DeviceOOMs)
	}
	if fs.Degradations != 1 {
		t.Errorf("Degradations = %d, want 1 (OOM should spill the page cache)", fs.Degradations)
	}
	if fs.Retries == 0 || fs.Recoveries == 0 {
		t.Errorf("no recovery activity: %+v", fs)
	}
	if faulted.Elapsed <= clean.Elapsed {
		t.Errorf("faulted run (%v) not slower than clean run (%v)", faulted.Elapsed, clean.Elapsed)
	}
}

// TestPageRankByteIdenticalUnderFaults repeats the acceptance check for an
// iterative (non-traversal) kernel, where per-iteration WA copy-backs add
// more faultable transfers.
func TestPageRankByteIdenticalUnderFaults(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewPageRank(sp, 0.85, 5)
	clean := mustRun(t, newEngine(t, sp, Options{}, 1, 1), k)
	cleanRanks := append([]float32(nil), k.Ranks(clean.State)...)

	k2 := kernels.NewPageRank(sp, 0.85, 5)
	faulted := mustRun(t, newEngine(t, sp, Options{Faults: chaosPlan()}, 1, 1), k2)
	got := k2.Ranks(faulted.State)
	for v := range cleanRanks {
		if got[v] != cleanRanks[v] { // exact: recovery must not re-apply updates
			t.Fatalf("vertex %d rank = %v under faults, want %v (bit-exact)", v, got[v], cleanRanks[v])
		}
	}
	if faulted.Faults.Injected() == 0 {
		t.Fatal("chaos plan injected nothing")
	}
}

// TestFaultReplayIsDeterministic: the same plan against the same engine
// configuration must inject the same faults and cost the same virtual time.
func TestFaultReplayIsDeterministic(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	run := func() (*Report, []int16) {
		k := kernels.NewBFS(sp)
		rep := mustRun(t, newEngine(t, sp, Options{Source: 0, Faults: chaosPlan()}, 2, 2), k)
		return rep, k.Levels(rep.State)
	}
	a, al := run()
	b, bl := run()
	if a.Faults != b.Faults {
		t.Fatalf("fault stats diverged across replays:\n  %+v\n  %+v", a.Faults, b.Faults)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("virtual time diverged across replays: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for v := range al {
		if al[v] != bl[v] {
			t.Fatalf("results diverged at vertex %d", v)
		}
	}
}

// TestPersistentTransferFaultAborts: a rate-1 transfer fault exhausts the
// retry budget and surfaces as ErrHardwareFault, not a hang or a panic.
func TestPersistentTransferFaultAborts(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	plan := &fault.Plan{Seed: 1, TransferErrorRate: 1}
	e := newEngine(t, sp, Options{Source: 0, Faults: plan}, 1, 0)
	_, err := e.Run(kernels.NewBFS(sp))
	if !errors.Is(err, ErrHardwareFault) {
		t.Fatalf("persistent transfer fault: err = %v, want ErrHardwareFault", err)
	}
}

// TestPersistentStorageFaultAborts: same give-up path through the storage
// read + checksum machinery.
func TestPersistentStorageFaultAborts(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	plan := &fault.Plan{Seed: 1, StorageErrorRate: 1}
	e := newEngine(t, sp, Options{Source: 0, Faults: plan}, 1, 1)
	_, err := e.Run(kernels.NewBFS(sp))
	if !errors.Is(err, ErrHardwareFault) {
		t.Fatalf("persistent storage fault: err = %v, want ErrHardwareFault", err)
	}
}

// TestBoundedFaultBurstRecovers: a persistent-looking fault capped by
// MaxPerKind lets recovery finish the run with correct results.
func TestBoundedFaultBurstRecovers(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	k := kernels.NewBFS(sp)
	clean := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 0), k)
	cleanLevels := append([]int16(nil), k.Levels(clean.State)...)

	plan := &fault.Plan{Seed: 3, TransferErrorRate: 1, MaxPerKind: 3}
	k2 := kernels.NewBFS(sp)
	rep := mustRun(t, newEngine(t, sp, Options{Source: 0, Faults: plan}, 1, 0), k2)
	if rep.Faults.TransferErrors != 3 {
		t.Errorf("TransferErrors = %d, want 3 (capped)", rep.Faults.TransferErrors)
	}
	if rep.Faults.Recoveries == 0 {
		t.Error("no recoveries recorded")
	}
	got := k2.Levels(rep.State)
	for v := range cleanLevels {
		if got[v] != cleanLevels[v] {
			t.Fatalf("vertex %d level = %d after burst, want %d", v, got[v], cleanLevels[v])
		}
	}
}

// TestInvalidFaultPlanRejected: plan validation happens at engine
// construction, before any simulation starts.
func TestInvalidFaultPlanRejected(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	bad := &fault.Plan{TransferErrorRate: 2}
	if _, err := New(hw.Workstation(1, 0), sp, Options{Faults: bad}); err == nil {
		t.Fatal("engine accepted an out-of-range fault plan")
	}
}
