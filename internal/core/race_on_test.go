//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation perturbs allocation counts, so alloc-budget assertions
// skip under -race.
const raceEnabled = true
