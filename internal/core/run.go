package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/bufpool"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// pidSet is a set of page IDs (the paper's nextPIDSet).
type pidSet = *bitset.Set

// run carries one execution's mutable context.
type run struct {
	eng     *Engine
	k       kernels.Kernel
	env     *sim.Env
	machine *hw.Machine

	// states holds one replica per GPU under Strategy-P, or a single
	// shared state under Strategy-S.
	states []kernels.State
	// owned[i] is GPU i's attribute ownership range [lo, hi).
	owned [][2]uint64

	caches      []*hw.BufferPool // per-GPU page caches; nil = disabled
	cacheBytes  []int64          // device bytes held by each cache (for OOM spill)
	cacheTarget []int64          // each cache's configured byte budget (re-grow goal after an OOM shrink)
	buffer      *hw.BufferPool   // main-memory page buffer (bufferPIDMap); nil when pooled
	// pool, when non-nil, is the shared host page pool that replaces the
	// private main-memory buffer for storage-backed runs (Options.HostPool).
	// It may be shared with concurrently executing runs in other simulation
	// environments, so every interaction goes through its non-blocking
	// pin/unpin API (see fetchPin).
	pool     *bufpool.Pool
	inMemory bool // whole graph resident in main memory
	inflight map[slottedpage.PageID]*sim.Signal
	// kres memoizes the current phase's functional kernel results, computed
	// in deterministic (GPU, page) order before the streams start (see phase).
	kres map[pageKey]kernels.Result

	// Host worker pool (see parallel.go). workers is Options.HostWorkers
	// after defaulting; jobs, gatherRes and gatherDefs are per-phase scratch
	// reused across waves; pidPool recycles page-ID bitsets (nextPIDSet
	// locals and level frontiers); hostKernelWall accrues the real time
	// spent in functional kernel execution.
	workers        int
	jobs           []pageKey
	gatherRes      []kernels.Result
	gatherDefs     []*kernels.Deferred
	pidPool        sync.Pool
	hostKernelWall time.Duration
	// argScratch backs the serial paths' kernels.Args so passing &args to
	// an interface method does not heap-allocate once per page.
	argScratch kernels.Args

	// Fault injection and recovery. The sim scheduler runs one process at
	// a time, so these need no locking. abort latches the first
	// unrecoverable error; streams poll it and wind down.
	inj    *fault.Injector
	fstats fault.Stats // recovery counters (injection counts live in inj)
	abort  error

	// sharedMode marks this run as one member of a multi-query wave group
	// (see shared.go): the machine, caches, main-memory buffer and inflight
	// map are shared with sibling members, and every hardware operation
	// re-arms the machine's injectors with this member's (armFaults) so
	// fault attribution stays per-job.
	sharedMode bool

	perGPUWA    int64
	raPerV      int64
	waPerVertex int64
	levels      int32

	// Direction-optimized traversal (kernels.FrontierKernel): fk is the
	// kernel's planning interface (nil otherwise), curDir the direction the
	// executing superstep was planned in (stamped onto its Superstep span),
	// and dirs the per-level record for the report. PlanLevel runs between
	// supersteps on the framework process, so none of this needs locking.
	fk     kernels.FrontierKernel
	curDir kernels.Direction
	dirs   []kernels.Direction

	// curLevel is the superstep currently executing, stamped onto every
	// span the run emits; -1 outside any superstep (WA upload, final
	// copy-back). The sim scheduler runs one process at a time and host
	// workers never emit spans, so no locking is needed.
	curLevel int32

	// phaseConsumed counts pages processed in the current phase, which
	// throttles the prefetcher's lead.
	phaseConsumed int64

	// Accumulators for the report.
	levelPages     []int64
	levelBytes     []int64
	pagesStreamed  int64
	cacheHits      int64
	bytesToGPU     int64
	edgesTraversed int64
	levelUpdates   int64
	updates        int64
	transferTime   sim.Time
	// Shared-mode accumulators: pages this member consumed off a sibling's
	// copy, bytes it read from storage, and its kernels' summed service
	// time (a shared machine's GPU stats aggregate all members, so member
	// reports need their own).
	sharedPagesIn int64
	storageRead   int64
	kernelBusy    sim.Time
	// Shared host-pool accounting (zero when r.pool is nil).
	poolHits  int64
	poolLoads int64
	poolWaits int64
}

// armFaults points the shared machine's fault injectors at this member.
// Solo runs arm the machine once at Run and never re-arm; shared members
// re-arm immediately before every hardware operation attempt so injected
// faults are drawn from — and attributed to — the member whose virtual
// operation is in flight. The sim scheduler runs one process at a time
// and the hw models read their injector synchronously at call entry, so
// arming here cannot race a sibling's in-flight operation.
func (r *run) armFaults() {
	if r.sharedMode {
		r.machine.InjectFaults(r.inj)
	}
}

// Run executes kernel k to completion and reports timing and metrics.
func (e *Engine) Run(k kernels.Kernel) (*Report, error) {
	r := &run{eng: e, k: k, env: sim.NewEnv(), inflight: map[slottedpage.PageID]*sim.Signal{}, curLevel: -1}
	r.workers = e.opts.HostWorkers
	numPages := e.graph.NumPages()
	r.pidPool.New = func() any { return bitset.New(numPages) }
	m, err := hw.NewMachine(r.env, e.spec, int64(e.graph.Config().PageSize))
	if err != nil {
		return nil, err
	}
	r.machine = m
	// Each run gets its own injector from the shared plan: pooled runs stay
	// independent and each replays the same fault sequence for its seed.
	r.inj = fault.NewInjector(e.opts.Faults)
	m.InjectFaults(r.inj)
	if err := r.setup(); err != nil {
		return nil, err
	}

	var runErr error
	r.env.Process("gts-framework", func(p *sim.Proc) {
		runErr = r.framework(p)
	})
	elapsed, err := r.env.Run()
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return r.report(elapsed), nil
}

// setup performs Algorithm 1's initialization: allocate WABuf, the
// streaming buffers and the page cache in each GPU's device memory, create
// the attribute states, and size the main-memory buffer.
func (r *run) setup() error {
	e, m := r.eng, r.machine
	pageSize := int64(e.graph.Config().PageSize)

	r.setupStates()

	// Streaming buffers: SPBuf + LPBuf per stream plus an RABuf sized for
	// the densest page's subvector. A solo run reserves WA and buffers in
	// one allocation; shared runs allocate group buffers once and per-member
	// WA separately (see shared.go).
	raBuf := int64(e.graph.Config().MaxSlotsPerPage()) * r.raPerV
	bufBytes := int64(e.opts.Streams) * (2*pageSize + raBuf)
	for _, g := range m.GPUs {
		if err := g.Alloc(r.perGPUWA + bufBytes); err != nil {
			hint := "use Strategy-S to spread WA across GPUs or add GPUs"
			if e.opts.Strategy == StrategyS {
				hint = "the graph's WA exceeds the machine's total device memory"
			}
			return fmt.Errorf("%w: WA %d + buffers %d on %s (%s): %v",
				ErrWontFit, r.perGPUWA, bufBytes, g.Spec.Name, hint, err)
		}
	}

	return r.setupMachine()
}

// setupStates derives the per-job half of setup from the strategy: the
// kernel's attribute states (one replica per GPU under Strategy-P, a single
// shared state under Strategy-S), the per-GPU ownership ranges, and the
// WA/RA sizing. It performs no device allocation.
func (r *run) setupStates() {
	e, k := r.eng, r.k
	nGPU := len(r.machine.GPUs)
	nV := e.graph.NumVertices()
	r.fk, _ = k.(kernels.FrontierKernel)

	proto := k.NewState()
	k.Init(proto, e.opts.Source)
	waBytes := proto.WABytes()
	r.raPerV = k.RAPerVertex()
	if nV > 0 {
		r.waPerVertex = waBytes / int64(nV)
	}

	switch e.opts.Strategy {
	case StrategyP:
		r.perGPUWA = waBytes
		r.states = []kernels.State{proto}
		for i := 1; i < nGPU; i++ {
			r.states = append(r.states, proto.Clone())
		}
		for i := 0; i < nGPU; i++ {
			r.owned = append(r.owned, [2]uint64{0, nV})
		}
	case StrategyS:
		r.perGPUWA = ceilDiv(waBytes, int64(nGPU))
		r.states = []kernels.State{proto}
		chunk := (nV + uint64(nGPU) - 1) / uint64(nGPU)
		for i := 0; i < nGPU; i++ {
			lo := uint64(i) * chunk
			hi := lo + chunk
			if lo > nV {
				lo = nV
			}
			if hi > nV {
				hi = nV
			}
			r.owned = append(r.owned, [2]uint64{lo, hi})
		}
	}
}

// setupMachine builds the machine-plant half of setup — the per-GPU page
// caches and the main-memory buffer — which depends only on the engine
// options and the memory left after WA/stream-buffer allocation. Shared
// runs call it once for the whole group.
func (r *run) setupMachine() error {
	e, m := r.eng, r.machine
	nGPU := len(m.GPUs)
	pageSize := int64(e.graph.Config().PageSize)

	// Page cache in the remaining device memory (paper §3.3).
	r.caches = make([]*hw.BufferPool, nGPU)
	r.cacheBytes = make([]int64, nGPU)
	r.cacheTarget = make([]int64, nGPU)
	for i, g := range m.GPUs {
		budget := e.opts.CacheBytes
		if budget < 0 { // CacheDisabled
			continue
		}
		if budget == 0 || budget > g.MemFree() {
			budget = g.MemFree()
		}
		pages := budget / pageSize
		if pages > 0 {
			if err := g.Alloc(pages * pageSize); err != nil {
				return err
			}
			r.caches[i] = hw.NewBufferPool(int(pages))
			r.cacheBytes[i] = pages * pageSize
			r.cacheTarget[i] = pages * pageSize
		}
	}

	// Main-memory buffer: everything resident when there is no storage;
	// otherwise the shared host pool when one is configured, or a
	// run-private bounded buffer front-ending the SSD/HDD array.
	if m.Storage == nil {
		r.inMemory = true
		if err := m.Host.Alloc(e.graph.TopologyBytes()); err != nil {
			return fmt.Errorf("core: graph does not fit in main memory and no storage is configured: %w", err)
		}
		r.buffer = hw.NewBufferPool(0)
		for pid := 0; pid < e.graph.NumPages(); pid++ {
			r.buffer.Insert(uint64(pid))
		}
	} else if e.opts.HostPool != nil {
		// The pool's pages live in host memory once, however many machines
		// share it; each machine still accounts the full budget so a
		// configuration that could not actually hold the pool fails here.
		r.pool = e.opts.HostPool
		if err := m.Host.Alloc(r.pool.Budget()); err != nil {
			return err
		}
	} else {
		mmBytes := e.opts.MMBufBytes
		if mmBytes == 0 {
			mmBytes = e.graph.TopologyBytes() / 5 // the paper's 20% buffer
		}
		pages := mmBytes / pageSize
		if pages < 1 {
			pages = 1
		}
		if err := m.Host.Alloc(pages * pageSize); err != nil {
			return err
		}
		r.buffer = hw.NewBufferPool(int(pages))
	}
	return nil
}

// framework is Algorithm 1's repeat-until loop, run as the controlling CPU
// thread.
func (r *run) framework(p *sim.Proc) error {
	e, k := r.eng, r.k
	g := e.graph
	nGPU := len(r.machine.GPUs)
	numPages := g.NumPages()

	// Step 1 (Fig. 5): upload WA chunks to every GPU concurrently.
	r.parallelGPUs(p, func(p *sim.Proc, i int) {
		t0 := r.env.Now()
		err := r.withRetry(p, i, -1, "WA upload", func() error {
			return r.machine.GPUs[i].CopyChunkIn(p, r.perGPUWA)
		})
		if err != nil {
			r.fail(err)
			return
		}
		r.bytesToGPU += r.perGPUWA
		e.opts.Trace.Add(trace.Span{GPU: i, Stream: -1, Kind: trace.CopyWA, Page: -1, Level: r.curLevel, Start: t0, End: r.env.Now()})
	})
	if r.abort != nil {
		return r.abort
	}

	bfsLike := k.Class() == kernels.BFSLike
	next := r.getPidSet()
	if bfsLike {
		home := g.HomeOf(e.opts.Source)
		next.Set(int(home.PID))
		if g.Kind(home.PID) == slottedpage.LargePage {
			r.eng.expandLPRun(next, home.PID)
		}
		// A planning kernel owns its frontier: replace the seed with the
		// level-0 plan (direction choice + exact page set).
		r.planLevel(0, next)
	} else {
		for pid := 0; pid < numPages; pid++ {
			next.Set(pid)
		}
	}

	backKernel, wantBackward := k.(kernels.BackwardKernel)
	var levelSets []pidSet // forward per-level page sets, for the backward sweep

	var level int32
	locals := make([]pidSet, nGPU)
	for {
		if level > 32000 {
			return fmt.Errorf("core: traversal exceeded 32000 levels (level vectors are int16)")
		}
		r.curLevel = level
		stepStart := r.env.Now()
		if r.fk != nil {
			r.dirs = append(r.dirs, r.curDir)
		}
		k.BeginLevel(r.states, level)
		for i := range locals {
			locals[i] = r.getPidSet()
		}
		beforePages, beforeBytes := r.pagesStreamed, r.bytesToGPU
		anyActive := r.superstep(p, next, level, locals, false)
		r.levelPages = append(r.levelPages, r.pagesStreamed-beforePages)
		r.levelBytes = append(r.levelBytes, r.bytesToGPU-beforeBytes)
		r.sync(p, level, bfsLike)
		// The Superstep container span: one traversal level / iteration
		// including its cross-GPU sync, on the framework track. Dir carries
		// the planned traversal direction (0 for plain kernels).
		e.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Superstep, Page: -1, Level: level, Dir: int8(r.curDir), Start: stepStart, End: r.env.Now()})
		if r.abort != nil {
			return r.abort
		}

		if bfsLike {
			if wantBackward {
				levelSets = append(levelSets, next.Clone())
			}
			merged := r.getPidSet()
			for _, l := range locals {
				merged.Or(l)
			}
			// Expand LP runs: kernels mark a large vertex's first page.
			merged.ForEach(func(pid int) {
				if g.Kind(slottedpage.PageID(pid)) == slottedpage.LargePage {
					r.eng.expandLPRun(merged, slottedpage.PageID(pid))
				}
			})
			// A planning kernel rebuilds the next frontier itself — this must
			// run before the emptiness test, because bucketed kernels
			// (DeltaSSSP) carry pending work in attribute state even when no
			// page kernel marked a next page.
			r.planLevel(level+1, merged)
			r.putPidSet(next)
			next = merged
			level++
			if !next.Any() {
				break
			}
		} else {
			level++
			if !k.EndIteration(r.states, anyActive) {
				break
			}
			// Per-iteration WA sync: the updated vector streams back so
			// the host can feed it as next iteration's RA (Eq. 1's 2|WA|).
			r.copyWAOut(p)
			if r.abort != nil {
				return r.abort
			}
			// Full-scan kernels revisit every page; next is already the
			// full set, so it carries over unchanged.
		}
		for i := range locals {
			r.putPidSet(locals[i])
			locals[i] = nil
		}
	}

	// Backward sweep (Betweenness Centrality): replay recorded levels in
	// reverse, deepest first.
	if wantBackward {
		backKernel.BeginBackward(r.states, level-1)
		for l := len(levelSets) - 1; l >= 0; l-- {
			r.curLevel = int32(l)
			stepStart := r.env.Now()
			k.BeginLevel(r.states, int32(l))
			for i := range locals {
				locals[i] = r.getPidSet()
			}
			r.superstep(p, levelSets[l], int32(l), locals, true)
			r.sync(p, int32(l), true)
			e.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Superstep, Page: -1, Level: int32(l), Start: stepStart, End: r.env.Now()})
			for i := range locals {
				r.putPidSet(locals[i])
				locals[i] = nil
			}
			if r.abort != nil {
				return r.abort
			}
		}
	}

	// Final WA copy-back (data synchronization, Fig. 2 step 3).
	r.curLevel = -1
	r.copyWAOut(p)
	if r.abort != nil {
		return r.abort
	}
	r.levels = level
	// The Run container span covers the whole execution on the framework
	// track, closing the run → superstep → stream hierarchy.
	e.opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.Run, Page: -1, Level: -1, Start: 0, End: r.env.Now()})
	return nil
}

// planLevel asks a FrontierKernel to plan the coming level — rebuilding
// next as the exact page set its chosen direction streams — and records
// the direction for the superstep's span and the report. No-op for plain
// kernels, whose page kernels marked next themselves.
func (r *run) planLevel(level int32, next pidSet) {
	if r.fk == nil {
		return
	}
	r.curDir = r.fk.PlanLevel(r.states, level, next)
}

// bufferHitRate is the host-side page residency hit fraction: the private
// main-memory buffer's when the run owns one, or the run's own pool pin
// outcomes when it shares a host pool (the shared pool's global rate
// blends every run's traffic; a member report wants only its own).
func (r *run) bufferHitRate() float64 {
	if r.pool != nil {
		total := r.poolHits + r.poolLoads + r.poolWaits
		if total == 0 {
			return 0
		}
		return float64(r.poolHits) / float64(total)
	}
	return r.buffer.HitRate()
}

// parallelGPUs runs fn once per GPU concurrently and joins.
func (r *run) parallelGPUs(p *sim.Proc, fn func(p *sim.Proc, i int)) {
	grp := sim.NewGroup(r.env)
	grp.Add(len(r.machine.GPUs))
	for i := range r.machine.GPUs {
		i := i
		r.env.Process(fmt.Sprintf("gpu%d", i), func(p *sim.Proc) {
			fn(p, i)
			grp.Done()
		})
	}
	grp.Wait(p)
}
