package core

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// superstep streams the page set to the GPUs and runs the kernels against
// it: all small pages first, then all large pages, to avoid switching
// between the two kernel variants (paper §3.2). It reports whether any
// kernel changed state.
func (r *run) superstep(p *sim.Proc, set pidSet, level int32, locals []pidSet, backward bool) bool {
	g := r.eng.graph
	var sps, lps []slottedpage.PageID
	set.ForEach(func(pid int) {
		if g.Kind(slottedpage.PageID(pid)) == slottedpage.SmallPage {
			sps = append(sps, slottedpage.PageID(pid))
		} else {
			lps = append(lps, slottedpage.PageID(pid))
		}
	})
	r.levelUpdates = 0
	active := false
	for _, pages := range [][]slottedpage.PageID{sps, lps} {
		if len(pages) == 0 {
			continue
		}
		if r.phase(p, pages, level, locals, backward) {
			active = true
		}
	}
	return active
}

// pageKey addresses one (GPU, page) kernel execution within a phase.
type pageKey struct {
	gpu int
	pid slottedpage.PageID
}

// phase fans one page list out to every GPU's streams and joins. Under
// Strategy-P with multiple GPUs, page j goes to GPU h(j) = j mod N (§4.1);
// under Strategy-S every page goes to every GPU (§4.2).
//
// The kernels' functional work runs up front in deterministic (GPU, page)
// order and is memoized; the stream processes then only model when each
// execution happens on the hardware. Decoupling "what the kernels compute"
// from "when the simulation schedules them" makes results bit-identical
// across stream interleavings — including interleavings perturbed by
// injected faults and their retries.
func (r *run) phase(p *sim.Proc, pages []slottedpage.PageID, level int32, locals []pidSet, backward bool) bool {
	nGPU := len(r.machine.GPUs)
	active := false
	grp := sim.NewGroup(r.env)
	r.phaseConsumed = 0

	parts := make([][]slottedpage.PageID, nGPU)
	for i := 0; i < nGPU; i++ {
		parts[i] = pages
		if r.eng.opts.Strategy == StrategyP && nGPU > 1 {
			parts[i] = nil
			for _, pid := range pages {
				if int(pid)%nGPU == i {
					parts[i] = append(parts[i], pid)
				}
			}
		}
	}
	r.kres = make(map[pageKey]kernels.Result, nGPU*len(pages))
	jobs := r.jobs[:0]
	for i := 0; i < nGPU; i++ {
		for _, pid := range parts[i] {
			jobs = append(jobs, pageKey{i, pid})
		}
	}
	r.jobs = jobs
	r.computeKernels(jobs, level, locals, backward)

	if r.eng.opts.Prefetch && !r.inMemory {
		grp.Add(1)
		r.env.Process("prefetcher", func(p *sim.Proc) {
			r.prefetch(p, pages)
			grp.Done()
		})
	}
	for i := 0; i < nGPU; i++ {
		mine := parts[i]
		streams := r.eng.opts.Streams
		if streams > len(mine) {
			streams = len(mine)
		}
		for s := 0; s < streams; s++ {
			i, s, mine := i, s, mine
			grp.Add(1)
			r.env.Process(fmt.Sprintf("gpu%d/stream%d", i, s), func(p *sim.Proc) {
				for idx := s; idx < len(mine); idx += r.eng.opts.Streams {
					if r.abort != nil {
						break // an unrecoverable fault ended the run
					}
					if r.page(p, i, s, mine[idx], level, locals[i], backward) {
						active = true
					}
				}
				grp.Done()
			})
		}
	}
	grp.Wait(p)
	return active
}

// runKernel executes one (GPU, page) kernel functionally, mutating the
// GPU's attribute state and next-page set. Called only from computeKernels'
// deterministic serial path.
func (r *run) runKernel(gpuIdx int, pid slottedpage.PageID, level int32, local pidSet, backward bool) kernels.Result {
	g := r.eng.graph
	// argScratch lives on the (already heap-allocated) run so the serial
	// hot loop performs zero allocations per page.
	r.argScratch = r.kernelArgs(gpuIdx, pid, level, local)
	args := &r.argScratch
	isLP := g.Kind(pid) == slottedpage.LargePage
	if backward {
		bk := r.k.(kernels.BackwardKernel)
		if isLP {
			return bk.RunLPBack(args)
		}
		return bk.RunSPBack(args)
	}
	if isLP {
		return r.k.RunLP(args)
	}
	return r.k.RunSP(args)
}

// page handles one page on one GPU stream: the cache / main-memory-buffer /
// storage decision chain of Algorithm 1 lines 16-26, the streaming copy,
// and the kernel call.
func (r *run) page(p *sim.Proc, gpuIdx, stream int, pid slottedpage.PageID, level int32, local pidSet, backward bool) bool {
	e, g := r.eng, r.eng.graph
	gpu := r.machine.GPUs[gpuIdx]
	pageSize := int64(g.Config().PageSize)
	_, count := g.VertexRange(pid)
	raBytes := int64(count) * r.raPerV

	cache := r.caches[gpuIdx]
	if cache != nil && cache.Contains(uint64(pid)) {
		// Algorithm 1 line 16: the page is already in device memory.
		r.cacheHits++
		if raBytes > 0 {
			if err := r.streamCopy(p, gpu, gpuIdx, stream, pid, raBytes); err != nil {
				r.fail(err)
				return false
			}
		}
	} else {
		var release func()
		if r.inMemory {
			r.buffer.Contains(uint64(pid)) // counts the MMBuf hit
		} else {
			rel, err := r.fetchPin(p, pid, gpuIdx, stream)
			if err != nil {
				r.fail(err)
				return false
			}
			release = rel
		}
		// The pin (when pooled) spans the streaming copy so eviction cannot
		// reclaim the host frame mid-transfer.
		err := r.streamCopy(p, gpu, gpuIdx, stream, pid, pageSize+raBytes)
		if release != nil {
			release()
		}
		if err != nil {
			r.fail(err)
			return false
		}
		r.pagesStreamed++
		// Re-read the cache: an OOM spill on a sibling stream may have
		// dropped it since the lookup above.
		if cache := r.caches[gpuIdx]; cache != nil {
			cache.Insert(uint64(pid))
		}
	}

	// The functional work already ran in deterministic order at phase start
	// (see phase); here its memoized cycle count occupies the simulated SM
	// pool at whatever virtual time this stream reached the page.
	res := r.kres[pageKey{gpuIdx, pid}]
	t0 := r.env.Now()
	if err := r.launchKernel(p, gpuIdx, stream, pid, res.Cycles); err != nil {
		// The functional mutation already ran exactly once above; only the
		// simulated launch failed, so abandoning the run stays consistent.
		r.fail(err)
		return false
	}
	e.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.Kernel, Page: int64(pid), Level: level, Start: t0, End: r.env.Now()})
	r.edgesTraversed += res.Edges
	r.updates += res.Updates
	r.levelUpdates += res.Updates
	r.phaseConsumed++
	return res.Active
}

// prefetch reads the phase's pages into the main-memory buffer in page-ID
// order, staying a bounded window ahead of the GPU streams so it cannot
// evict pages before they are consumed.
func (r *run) prefetch(p *sim.Proc, pages []slottedpage.PageID) {
	capPages := 0
	if r.pool != nil {
		capPages = r.pool.Capacity()
	} else {
		capPages = r.buffer.Capacity()
	}
	window := int64(capPages / 2)
	if window < 8 {
		window = 8
	}
	pause := r.eng.spec.PCIe.Latency + sim.ByteTime(int64(r.eng.graph.Config().PageSize), r.eng.spec.PCIe.StreamRate)
	if pause <= 0 {
		pause = sim.Microsecond
	}
	for i, pid := range pages {
		for int64(i) > r.phaseConsumed+window {
			if r.abort != nil {
				return
			}
			p.Delay(pause)
		}
		release, err := r.fetchPin(p, pid, -1, -1)
		if err != nil {
			// Stop prefetching; the on-demand path retries with its own
			// budget and surfaces the error if the fault is persistent.
			return
		}
		// Release immediately: the page stays resident (just evictable)
		// and the demand path re-pins it.
		if release != nil {
			release()
		}
	}
}

// streamCopy moves n bytes to the GPU in streaming mode with bounded
// retry, recording trace and transfer accounting.
func (r *run) streamCopy(p *sim.Proc, gpu *hw.GPU, gpuIdx, stream int, pid slottedpage.PageID, n int64) error {
	t0 := r.env.Now()
	err := r.withRetry(p, gpuIdx, stream, fmt.Sprintf("stream copy of page %d", pid), func() error {
		return gpu.CopyStreamIn(p, n)
	})
	if err != nil {
		return err
	}
	r.eng.opts.Trace.Add(trace.Span{GPU: gpuIdx, Stream: stream, Kind: trace.CopyPage, Page: int64(pid), Level: r.curLevel, Start: t0, End: r.env.Now()})
	r.bytesToGPU += n
	r.transferTime += r.eng.spec.PCIe.Latency + sim.ByteTime(n, r.eng.spec.PCIe.StreamRate)
	return nil
}

// fetch ensures pid is resident in the main-memory buffer, reading it from
// the storage array on a miss. Concurrent requests for the same page (all
// GPUs want it under Strategy-S) coalesce onto one storage read. A waiter
// re-checks after the reader finishes: if the read failed, the waiter
// takes over with its own retry budget rather than trusting a page that
// never arrived.
func (r *run) fetch(p *sim.Proc, pid slottedpage.PageID, gpuIdx, stream int) error {
	for {
		if r.buffer.Contains(uint64(pid)) {
			return nil
		}
		if sig, ok := r.inflight[pid]; ok {
			sig.Wait(p)
			continue
		}
		sig := sim.NewSignal(r.env)
		r.inflight[pid] = sig
		err := r.readPage(p, pid, gpuIdx, stream)
		if err == nil {
			r.buffer.Insert(uint64(pid))
			r.storageRead += int64(r.eng.graph.Config().PageSize)
		}
		delete(r.inflight, pid)
		sig.Fire()
		return err
	}
}

// noRelease is fetchPin's release func for paths that pin nothing.
func noRelease() {}

// fetchPin is the pooled counterpart of fetch: it ensures pid is resident
// on the host and returns a release func the caller must invoke once the
// page's streaming copy is done. Without a pool it delegates to fetch
// (the release is a no-op).
//
// Pin never blocks the simulation: same-env duplicate loads (sibling
// streams, wave-group members) coalesce on the run's inflight table
// before the pool is consulted, exactly like the private-buffer path. A
// frame busy in a different env (another System loading the same page
// concurrently) or a pool with every frame pinned yields a bypass read —
// the page streams from a transient host buffer without entering the
// pool. A real cross-env wait could deadlock two cooperative schedulers
// loading each other's pages, so the pool's API never offers one.
func (r *run) fetchPin(p *sim.Proc, pid slottedpage.PageID, gpuIdx, stream int) (func(), error) {
	if r.pool == nil {
		return noRelease, r.fetch(p, pid, gpuIdx, stream)
	}
	pageSize := int64(r.eng.graph.Config().PageSize)
	for {
		if sig, ok := r.inflight[pid]; ok {
			sig.Wait(p)
			continue
		}
		switch r.pool.Pin(uint64(pid)) {
		case bufpool.Hit:
			r.poolHits++
			r.traceMark(trace.PoolHit, gpuIdx, stream, int64(pid))
			return func() { r.pool.Unpin(uint64(pid)) }, nil
		case bufpool.Load:
			sig := sim.NewSignal(r.env)
			r.inflight[pid] = sig
			err := r.readPage(p, pid, gpuIdx, stream)
			delete(r.inflight, pid)
			sig.Fire()
			if err != nil {
				r.pool.Abort(uint64(pid))
				return nil, err
			}
			r.pool.Ready(uint64(pid))
			r.poolLoads++
			r.storageRead += pageSize
			r.traceMark(trace.PoolLoad, gpuIdx, stream, int64(pid))
			return func() { r.pool.Unpin(uint64(pid)) }, nil
		default: // Busy in another env, or no evictable frame: bypass.
			r.poolWaits++
			r.traceMark(trace.PoolWait, gpuIdx, stream, int64(pid))
			if err := r.readPage(p, pid, gpuIdx, stream); err != nil {
				return nil, err
			}
			r.storageRead += pageSize
			return noRelease, nil
		}
	}
}

// copyWAOut synchronizes attribute data back to the host: under Strategy-P
// the replicas were already peer-merged into the master GPU, so only it
// copies the full WA out (Fig. 5 step 4); under Strategy-S every GPU ships
// its disjoint chunk concurrently. Persistent transfer failure aborts the
// run via r.fail.
func (r *run) copyWAOut(p *sim.Proc) {
	if r.eng.opts.Strategy == StrategyP {
		t0 := r.env.Now()
		err := r.withRetry(p, 0, -1, "WA copy-out", func() error {
			return r.machine.GPUs[0].CopyOut(p, r.perGPUWA)
		})
		if err != nil {
			r.fail(err)
			return
		}
		r.eng.opts.Trace.Add(trace.Span{GPU: 0, Stream: -1, Kind: trace.Sync, Page: -1, Level: r.curLevel, Start: t0, End: r.env.Now()})
		return
	}
	r.parallelGPUs(p, func(p *sim.Proc, i int) {
		t0 := r.env.Now()
		err := r.withRetry(p, i, -1, "WA copy-out", func() error {
			return r.machine.GPUs[i].CopyOut(p, r.perGPUWA)
		})
		if err != nil {
			r.fail(err)
			return
		}
		r.eng.opts.Trace.Add(trace.Span{GPU: i, Stream: -1, Kind: trace.Sync, Page: -1, Level: r.curLevel, Start: t0, End: r.env.Now()})
	})
}

// stateFor returns the attribute state GPU i operates on.
func (r *run) stateFor(i int) kernels.State {
	if r.eng.opts.Strategy == StrategyP {
		return r.states[i]
	}
	return r.states[0]
}

// sync performs the end-of-superstep attribute synchronization across GPUs
// (Fig. 5 steps 3-4). With one GPU there is nothing to merge; full-scan
// iteration sync to the host is handled by the framework loop.
func (r *run) sync(p *sim.Proc, level int32, bfsLike bool) {
	nGPU := len(r.machine.GPUs)
	if nGPU < 2 {
		return
	}
	switch r.eng.opts.Strategy {
	case StrategyP:
		// Peer-to-peer merge into the master GPU. Full-scan algorithms
		// move the whole WA; traversal algorithms move only the entries
		// they touched, which is why the paper's Eq. 2 has no sync term.
		bytes := r.perGPUWA
		if bfsLike {
			bytes = r.levelUpdates * r.waPerVertex
		}
		for i := 1; i < nGPU; i++ {
			t0 := r.env.Now()
			i := i
			err := r.withRetry(p, i, -1, "peer WA merge", func() error {
				return r.machine.GPUs[i].CopyPeer(p, r.machine.GPUs[0], bytes)
			})
			if err != nil {
				r.fail(err)
				return
			}
			r.eng.opts.Trace.Add(trace.Span{GPU: i, Stream: -1, Kind: trace.Sync, Page: -1, Level: level, Start: t0, End: r.env.Now()})
		}
		r.k.MergeStates(r.states)
	case StrategyS:
		// WA chunks are disjoint; each GPU ships its local nextPIDSet (a
		// page-count bit vector) back to the host for the global merge.
		if bfsLike {
			small := int64(r.eng.graph.NumPages()/8 + 1)
			r.parallelGPUs(p, func(p *sim.Proc, i int) {
				err := r.withRetry(p, i, -1, "nextPIDSet copy-out", func() error {
					return r.machine.GPUs[i].CopyOut(p, small)
				})
				if err != nil {
					r.fail(err)
				}
			})
		}
	}
}

// report assembles the final Report.
func (r *run) report(elapsed sim.Time) *Report {
	var kernelTime sim.Time
	for _, g := range r.machine.GPUs {
		kernelTime += g.Stats().KernelTime
	}
	var hits, misses int64
	for _, c := range r.caches {
		if c != nil {
			hits += c.Hits()
			misses += c.Misses()
		}
	}
	cacheRate := 0.0
	if hits+misses > 0 {
		cacheRate = float64(hits) / float64(hits+misses)
	}
	var storageBytes int64
	if r.machine.Storage != nil {
		storageBytes = r.machine.Storage.BytesRead()
	}
	rep := &Report{
		State:          r.states[0],
		Elapsed:        elapsed,
		Levels:         r.levels,
		PagesStreamed:  r.pagesStreamed,
		CacheHits:      r.cacheHits,
		BytesToGPU:     r.bytesToGPU,
		EdgesTraversed: r.edgesTraversed,
		Updates:        r.updates,
		CacheHitRate:   cacheRate,
		BufferHitRate:  r.bufferHitRate(),
		TransferTime:   r.transferTime,
		KernelTime:     kernelTime,
		StorageBytes:   storageBytes,
		WABytes:        r.states[0].WABytes(),
		LevelPages:     r.levelPages,
		LevelBytes:     r.levelBytes,
		LevelDirs:      r.dirs,
		HostWorkers:    r.workers,
		HostKernelWall: r.hostKernelWall,
		PoolHits:       r.poolHits,
		PoolLoads:      r.poolLoads,
		PoolWaits:      r.poolWaits,
	}
	// Injection counts come from the injector, recovery counts from the
	// run's policy; fstats' injection fields are zero, so Add merges cleanly.
	rep.Faults = r.inj.Stats()
	rep.Faults.Add(r.fstats)
	rep.MTEPS = trace.MTEPS(r.edgesTraversed, elapsed)
	return rep
}
