package core

import (
	"testing"

	"repro/internal/bufpool"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernels"
)

// newTestPool builds a host pool matching the test graph's page size.
func newTestPool(t *testing.T, sp interface{ TopologyBytes() int64 }, pageSize int64, bytes int64, policy string) *bufpool.Pool {
	t.Helper()
	if bytes == 0 {
		bytes = sp.TopologyBytes()
	}
	p, err := bufpool.New(bufpool.Config{PageSize: pageSize, Bytes: bytes, Policy: policy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPooledRunByteIdentical: a storage-backed run through the shared host
// pool produces results byte-identical to the private-buffer run, for
// every eviction policy, and leaves no pins behind.
func TestPooledRunByteIdentical(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pageSize := int64(sp.Config().PageSize)

	base := kernels.NewBFS(sp)
	baseRep := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 1), base)
	want := append([]int16(nil), base.Levels(baseRep.State)...)

	for _, policy := range bufpool.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			pool := newTestPool(t, sp, pageSize, sp.TopologyBytes()/4, policy)
			k := kernels.NewBFS(sp)
			rep := mustRun(t, newEngine(t, sp, Options{Source: 0, HostPool: pool}, 1, 1), k)
			got := k.Levels(rep.State)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d level = %d with %s pool, want %d", v, got[v], policy, want[v])
				}
			}
			if rep.PoolLoads == 0 {
				t.Fatal("pooled storage run reports zero pool loads")
			}
			if err := pool.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if st := pool.Stats(); st.Pinned != 0 {
				t.Fatalf("run finished with %d pages still pinned", st.Pinned)
			}
		})
	}
}

// TestWarmPoolServesSecondRun pins the no-double-buffering property at the
// engine level: a second engine sharing the pool reads nothing from
// storage for pages the first run already loaded — at most one host copy
// per hot page.
func TestWarmPoolServesSecondRun(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pageSize := int64(sp.Config().PageSize)
	pool := newTestPool(t, sp, pageSize, 0, "lru") // whole topology fits

	k1 := kernels.NewBFS(sp)
	rep1 := mustRun(t, newEngine(t, sp, Options{Source: 0, HostPool: pool}, 1, 1), k1)
	if rep1.PoolLoads == 0 {
		t.Fatal("cold run loaded nothing through the pool")
	}

	k2 := kernels.NewBFS(sp)
	rep2 := mustRun(t, newEngine(t, sp, Options{Source: 0, HostPool: pool}, 1, 1), k2)
	if rep2.PoolLoads != 0 {
		t.Fatalf("warm run re-read %d pages from storage, want 0", rep2.PoolLoads)
	}
	if rep2.PoolHits == 0 {
		t.Fatal("warm run reports zero pool hits")
	}
	if rep2.StorageBytes != 0 {
		t.Fatalf("warm run read %d storage bytes, want 0", rep2.StorageBytes)
	}
	wantL, gotL := k1.Levels(rep1.State), k2.Levels(rep2.State)
	for v := range wantL {
		if gotL[v] != wantL[v] {
			t.Fatalf("warm run diverged at vertex %d", v)
		}
	}
}

// TestPooledSharedGroup: a wave group over the shared pool matches solo
// results, and the group's members share one pin per demanded page (the
// pool sees at most one load per page, however many members demand it).
func TestPooledSharedGroup(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	pageSize := int64(sp.Config().PageSize)
	pool := newTestPool(t, sp, pageSize, 0, "2q")

	solo := kernels.NewBFS(sp)
	soloRep := mustRun(t, newEngine(t, sp, Options{Source: 0}, 1, 1), solo)
	want := append([]int16(nil), solo.Levels(soloRep.State)...)

	e := newEngine(t, sp, Options{Source: 0, HostPool: pool}, 1, 1)
	jobs := []SharedJob{
		{Kernel: kernels.NewBFS(sp), Source: 0},
		{Kernel: kernels.NewBFS(sp), Source: 0},
		{Kernel: kernels.NewBFS(sp), Source: 0},
	}
	outs, _, err := e.RunShared(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil || out.Declined {
			t.Fatalf("member %d: err=%v declined=%v", i, out.Err, out.Declined)
		}
		got := jobs[i].Kernel.(*kernels.BFS).Levels(out.Report.State)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("member %d diverged at vertex %d", i, v)
			}
		}
	}
	st := pool.Stats()
	if st.Loads > int64(sp.NumPages()) {
		t.Fatalf("group loaded %d pages through the pool, want <= %d (one host copy per page)",
			st.Loads, sp.NumPages())
	}
	if st.Pinned != 0 {
		t.Fatalf("group finished with %d pages still pinned", st.Pinned)
	}
	if err := pool.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOOMRecoveryKeepsCaching is the regression test for the recover.go
// degradation path: a device OOM at the very first kernel launch used to
// drop the page cache for the rest of the run (post-recovery cache hits
// were impossible); now the cache shrinks by half, the launch retries,
// and the budget re-grows — so a multi-iteration kernel still hits the
// cache after recovery.
func TestOOMRecoveryKeepsCaching(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)

	k := kernels.NewPageRank(sp, 0.85, 5)
	clean := mustRun(t, newEngine(t, sp, Options{}, 1, 1), k)
	wantRanks := append([]float32(nil), k.Ranks(clean.State)...)
	if clean.CacheHits == 0 {
		t.Fatal("clean run has no cache hits — the regression check is vacuous")
	}

	plan := &fault.Plan{Seed: 7, OOMKernelLaunches: []int64{1}}
	k2 := kernels.NewPageRank(sp, 0.85, 5)
	rep := mustRun(t, newEngine(t, sp, Options{Faults: plan}, 1, 1), k2)
	if rep.Faults.DeviceOOMs != 1 || rep.Faults.Degradations != 1 {
		t.Fatalf("fault stats: %+v, want exactly one OOM and one degradation", rep.Faults)
	}
	// The OOM hits the first launch, before any page could be re-read from
	// the cache — so every hit below happened after recovery.
	if rep.CacheHits == 0 {
		t.Fatal("no cache hits after OOM recovery: the degradation disabled caching for the run")
	}
	got := k2.Ranks(rep.State)
	for v := range wantRanks {
		if got[v] != wantRanks[v] {
			t.Fatalf("vertex %d rank = %v after OOM recovery, want %v (bit-exact)", v, got[v], wantRanks[v])
		}
	}
}

// TestPoolPageSizeMismatchRejected: engine construction validates the
// pool's page size against the graph's.
func TestPoolPageSizeMismatchRejected(t *testing.T) {
	g := rmatGraph(t)
	sp := buildPages(t, g)
	wrong, err := bufpool.New(bufpool.Config{PageSize: int64(sp.Config().PageSize) * 2, Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(hw.Workstation(1, 1), sp, Options{HostPool: wrong}); err == nil {
		t.Fatal("engine accepted a pool with mismatched page size")
	}
}
