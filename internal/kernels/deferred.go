package kernels

// This file defines the gather/apply execution contract that lets the GTS
// framework run page kernels on a pool of host worker goroutines while
// keeping results byte-identical to serial execution.
//
// The problem with naive parallelism: page kernels mutate shared attribute
// state (BFS sets levels, PageRank accumulates float contributions), and a
// page's kernel can observe mutations made by earlier pages of the same
// phase. Running pages concurrently would change what each kernel sees —
// float addition order, update counts, even control flow — and race.
//
// The contract splits one page-kernel execution into two halves:
//
//   - Gather: compute the page against phase-start state WITHOUT mutating
//     anything, recording intended attribute writes as Ops in a Deferred
//     buffer. Gathers for different pages are independent and run
//     concurrently. A gather must only read quantities that are stable for
//     the whole phase (frontier membership, the read-only prev/RA vectors,
//     lane counts) or emit candidate writes that Apply re-validates.
//   - Apply: commit one page's Ops in their recorded order, mutating state
//     and NextPIDs exactly as the serial kernel would have, and
//     accumulating the order-dependent Result fields (Updates, Active).
//
// The framework gathers a wave of pages in parallel, then applies the wave
// serially in deterministic (GPU, page) order. Two properties make this
// byte-identical to the serial path:
//
//  1. Stability: everything a gather bakes into Ops or the Result (cycle
//     counts, edge counts, float contributions) depends only on state that
//     no same-phase apply mutates — e.g. BFS's frontier (this level's
//     vertices) is disjoint from its writes (next level's vertices), and
//     PageRank's contributions read prev while writes go to next.
//  2. Superset + recheck: conditional writes (BFS's "if unvisited",
//     CC's "if smaller") are emitted whenever the condition holds at
//     gather time — a superset of the serial writes, because these
//     conditions only turn false monotonically as the phase applies — and
//     Apply re-tests the condition against live state, reproducing the
//     serial decision, update count, and write order exactly.
//
// Plain SSSP is the one built-in kernel that cannot satisfy (1): a
// relaxation can improve a *frontier* vertex mid-phase (re-marking it
// active for the next level), which changes a later page's frontier check
// and therefore its simulated cycle count. Plain SSSP deliberately does not
// implement GatherKernel and runs on the serial path. DeltaSSSP recovers
// stability — and with it the parallel path — by restating the frontier as
// a delta-stepping bucket frozen at plan time (see frontier.go): the
// frontier flags and the base distance snapshot its relaxations read are
// written only between phases, so a mid-phase improvement merely re-pends
// the vertex for a later bucket round instead of perturbing this phase.

// OpKind discriminates a kernel's deferred-write variants where one kernel
// needs more than one (e.g. DegreeDist's set vs add).
type OpKind uint8

// Op is one deferred attribute write. The fields' meaning is owned by the
// kernel that emitted the op: Idx is a target index (vertex ID or a
// kernel-specific flattened index), Val carries value bits (float32/float64
// bits, a level, a label, a mask), and PID is a page to propose in
// NextPIDs when the apply succeeds (-1 = none).
type Op struct {
	Idx  uint64
	Val  uint64
	PID  int32
	Kind OpKind
}

// Deferred buffers one page's deferred writes between its Gather and its
// Apply. Buffers are reusable (Reset) and are recycled by the framework
// through a sync.Pool, so steady-state gathers allocate nothing.
type Deferred struct {
	Ops []Op
}

// Reset empties the buffer, keeping capacity.
func (d *Deferred) Reset() { d.Ops = d.Ops[:0] }

// Len reports the buffered op count.
func (d *Deferred) Len() int { return len(d.Ops) }

// push appends one op.
func (d *Deferred) push(op Op) { d.Ops = append(d.Ops, op) }

// GatherKernel is implemented by kernels whose page work can gather
// concurrently against phase-start state and commit through a deterministic
// serial apply. The framework falls back to fully serial execution for
// kernels that do not implement it.
type GatherKernel interface {
	Kernel
	// GatherSP and GatherLP are the concurrent halves of RunSP/RunLP: they
	// must not mutate State or NextPIDs, appending deferred writes to d
	// instead. The returned Result carries the phase-stable quantities
	// (Cycles, Edges where it counts scanned adjacency, and Active where
	// the serial kernel sets it unconditionally); Updates — and, for
	// kernels whose Edges follow the coverage convention (DirBFS) —
	// commit-gated Edges stay zero until Apply.
	GatherSP(a *Args, d *Deferred) Result
	GatherLP(a *Args, d *Deferred) Result
	// Apply commits one page's deferred writes in recorded order, mutating
	// State and NextPIDs exactly as the serial kernel would, and
	// accumulating Updates/Active into res.
	Apply(a *Args, d *Deferred, res *Result)
}

// GatherBackwardKernel extends the contract to a BackwardKernel's reverse
// sweep (Betweenness Centrality's dependency accumulation).
type GatherBackwardKernel interface {
	BackwardKernel
	GatherSPBack(a *Args, d *Deferred) Result
	GatherLPBack(a *Args, d *Deferred) Result
	ApplyBack(a *Args, d *Deferred, res *Result)
}

// Compile-time checks: every built-in kernel except plain SSSP supports
// the parallel gather/apply path (its frontier check is not phase-stable;
// see the package comment above — DeltaSSSP is the gatherable
// formulation).
var (
	_ GatherKernel         = (*BFS)(nil)
	_ GatherKernel         = (*DirBFS)(nil)
	_ FrontierKernel       = (*DirBFS)(nil)
	_ GatherKernel         = (*DeltaSSSP)(nil)
	_ FrontierKernel       = (*DeltaSSSP)(nil)
	_ GatherKernel         = (*PageRank)(nil)
	_ GatherKernel         = (*CC)(nil)
	_ GatherKernel         = (*BC)(nil)
	_ GatherBackwardKernel = (*BC)(nil)
	_ GatherKernel         = (*Neighborhood)(nil)
	_ GatherKernel         = (*CrossEdges)(nil)
	_ GatherKernel         = (*RWR)(nil)
	_ GatherKernel         = (*DegreeDist)(nil)
	_ GatherKernel         = (*KCore)(nil)
	_ GatherKernel         = (*Radius)(nil)
)
