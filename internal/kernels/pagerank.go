package kernels

import (
	"math"

	"repro/internal/slottedpage"
)

// PageRank implements the paper's K_PR_SP and K_PR_LP kernels (Algorithms 4
// and 5). Per the paper's split, nextPR is the read/write attribute vector
// kept in device memory (WA) and prevPR is the read-only vector streamed
// page-by-page alongside topology (RA). Both are float32, matching Table 4's
// 4 bytes/vertex WA footprint.
type PageRank struct {
	g          *slottedpage.Graph
	damping    float64
	iterations int32
	lpDeg      map[uint64]int
	cost       costParams
}

// NewPageRank returns a PageRank kernel running the given iteration count
// with damping factor df (the paper uses 10 iterations, df = 0.85).
func NewPageRank(g *slottedpage.Graph, df float64, iterations int) *PageRank {
	return &PageRank{
		g:          g,
		damping:    df,
		iterations: int32(iterations),
		lpDeg:      lpDegrees(g),
		cost:       costParams{laneCycles: 160, slotCycles: 50},
	}
}

type prState struct {
	prevPR []float32 // RA: streamed per page
	nextPR []float32 // WA: device-resident, atomically accumulated
	base   float32   // (1-df)/|V|, nextPR's per-iteration reset value
	iter   int32
}

func (s *prState) WABytes() int64 { return int64(len(s.nextPR)) * 4 }
func (s *prState) RABytes() int64 { return int64(len(s.prevPR)) * 4 }
func (s *prState) Clone() State {
	c := &prState{
		prevPR: make([]float32, len(s.prevPR)),
		nextPR: make([]float32, len(s.nextPR)),
		base:   s.base,
		iter:   s.iter,
	}
	copy(c.prevPR, s.prevPR)
	copy(c.nextPR, s.nextPR)
	return c
}

// Name implements Kernel.
func (k *PageRank) Name() string { return "PageRank" }

// Class implements Kernel: PageRank scans the whole topology per iteration.
func (k *PageRank) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel: 4 bytes of prevPR accompany each vertex.
func (k *PageRank) RAPerVertex() int64 { return 4 }

// NewState implements Kernel.
func (k *PageRank) NewState() State {
	n := k.g.NumVertices()
	return &prState{
		prevPR: make([]float32, n),
		nextPR: make([]float32, n),
		base:   float32((1 - k.damping) / float64(n)),
	}
}

// Init implements Kernel: uniform prior, nextPR primed with the teleport
// term (Appendix B.2).
func (k *PageRank) Init(st State, _ uint64) {
	s := st.(*prState)
	uniform := float32(1 / float64(len(s.prevPR)))
	for i := range s.prevPR {
		s.prevPR[i] = uniform
		s.nextPR[i] = s.base
	}
	s.iter = 0
}

// BeginLevel implements Kernel (no per-iteration preparation).
func (k *PageRank) BeginLevel([]State, int32) {}

// RunSP implements K_PR_SP (Algorithm 4): each frontier-free full scan; a
// warp takes one slot and atomically adds df*prevPR[v]/deg(v) to every
// out-neighbor's nextPR.
func (k *PageRank) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: contributions read only prevPR (stable
// for the whole iteration), so they defer exactly; Apply replays the adds
// in serial order, keeping float32 accumulation bit-identical.
func (k *PageRank) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *PageRank) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*prState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	df := float32(k.damping)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		deg := adj.Len()
		lanes.add(deg)
		if deg == 0 {
			continue
		}
		contrib := df * s.prevPR[vid] / float32(deg)
		k.scatter(a, s, adj, contrib, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	res.Active = true
	return res
}

// RunLP implements K_PR_LP (Algorithm 5): the page holds part of one
// vertex's adjacency; the contribution divides by the vertex's *total*
// degree, not the page-local count.
func (k *PageRank) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *PageRank) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *PageRank) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*prState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	contrib := float32(k.damping) * s.prevPR[vid] / float32(k.lpDeg[vid])
	k.scatter(a, s, adj, contrib, &res, d)
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	res.Active = true
	return res
}

// scatter performs the atomicAdd loop shared by both kernels; with d
// non-nil the adds are deferred in adjacency order.
func (k *PageRank) scatter(a *Args, s *prState, adj slottedpage.AdjView, contrib float32, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if !a.owns(nvid) {
			continue
		}
		if d != nil {
			d.push(Op{Idx: nvid, Val: uint64(math.Float32bits(contrib))})
			continue
		}
		s.nextPR[nvid] += contrib
		res.Updates++
	}
}

// Apply implements GatherKernel: replay the deferred adds in order.
func (k *PageRank) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*prState)
	for _, op := range d.Ops {
		s.nextPR[op.Idx] += math.Float32frombits(uint32(op.Val))
		res.Updates++
	}
}

// MergeStates implements Kernel: every replica started the superstep at the
// same nextPR (the teleport base after EndIteration), so the merged value
// is base plus the sum of each replica's accumulated contributions.
func (k *PageRank) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	merged := sts[0].(*prState)
	for _, other := range sts[1:] {
		o := other.(*prState)
		for v := range merged.nextPR {
			merged.nextPR[v] += o.nextPR[v] - o.base
		}
	}
	for _, other := range sts[1:] {
		o := other.(*prState)
		copy(o.nextPR, merged.nextPR)
	}
}

// EndIteration implements Kernel: nextPR becomes prevPR, nextPR resets to
// the teleport base, and the run continues until the iteration budget is
// spent (paper §3.4's note on repeating Lines 13-31).
func (k *PageRank) EndIteration(sts []State, _ bool) bool {
	for _, st := range sts {
		s := st.(*prState)
		copy(s.prevPR, s.nextPR)
		for i := range s.nextPR {
			s.nextPR[i] = s.base
		}
		s.iter++
	}
	return sts[0].(*prState).iter < k.iterations
}

// Ranks exposes the final PageRank vector (prevPR after the last swap).
func (k *PageRank) Ranks(st State) []float32 { return st.(*prState).prevPR }
