package kernels

import (
	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// This file exports the small planning helpers that incremental kernels
// (internal/incremental) need: reverse-CSR lookup, page marking for a
// seeded frontier, and the LP out-degree map PageRank-style kernels divide
// contributions by. They are thin wrappers over the package-private
// machinery the frontier kernels already use, so incremental and full
// kernels share one implementation of each invariant.

// Push appends a deferred write outside the kernels package. Incremental
// kernels live in internal/incremental but follow the same gather/apply
// contract as the kernels here: gathers push ops, Apply replays them in
// deterministic (GPU, page) order.
func (d *Deferred) Push(op Op) { d.push(op) }

// RevCSR is an exported handle on the reverse adjacency (in-neighbors)
// index. Incremental kernels use it to find which vertices can feed a
// dirty target: CC rescans in(changed), PageRank marks the pages of
// in(candidate) so every contribution a candidate receives is recomputed.
type RevCSR struct{ r *revAdj }

// NewRevCSR builds the reverse-CSR index for g (in-neighbor lists sorted
// by source VID).
func NewRevCSR(g *slottedpage.Graph) RevCSR { return RevCSR{r: buildRevAdj(g)} }

// In returns v's in-neighbors, ascending by source VID.
func (r RevCSR) In(v uint64) []uint32 { return r.r.in(v) }

// OutDeg returns v's out-degree as counted by the reverse-CSR build pass.
func (r RevCSR) OutDeg(v uint64) int32 { return r.r.outDeg[v] }

// MarkVertexPages marks the page(s) that must stream for vertex v to be
// scanned: its home page, plus the whole LP run when v is a large vertex
// and expandLP is set. Identical semantics to the planning done by the
// direction-optimizing BFS.
func MarkVertexPages(g *slottedpage.Graph, v uint64, next *bitset.Set, expandLP bool) {
	markVertexPages(g, v, next, expandLP)
}

// LPDegrees returns the total out-degree of every large vertex, keyed by
// VID — the divisor PageRank-style kernels must use for contributions
// scattered from LP sub-pages.
func LPDegrees(g *slottedpage.Graph) map[uint64]int { return lpDegrees(g) }
