package kernels

import "repro/internal/slottedpage"

// CC implements connected components (weakly connected, since the slotted
// page stores out-edges) by iterative label propagation, a PageRank-like
// full-scan algorithm in the paper's taxonomy: every iteration streams the
// whole topology and propagates the minimum component label across each
// edge in both directions until a fixpoint.
//
// The state keeps previous and next label vectors (8 bytes/vertex), the
// footprint the paper's Table 4 reports for CC.
type CC struct {
	g    *slottedpage.Graph
	cost costParams
}

// NewCC returns a connected-components kernel over g.
func NewCC(g *slottedpage.Graph) *CC {
	return &CC{g: g, cost: costParams{laneCycles: 110, slotCycles: 50}}
}

type ccState struct {
	prev []uint32
	next []uint32
}

func (s *ccState) WABytes() int64 { return int64(len(s.prev)) * 8 }
func (s *ccState) RABytes() int64 { return 0 }
func (s *ccState) Clone() State {
	c := &ccState{prev: make([]uint32, len(s.prev)), next: make([]uint32, len(s.next))}
	copy(c.prev, s.prev)
	copy(c.next, s.next)
	return c
}

// Name implements Kernel.
func (k *CC) Name() string { return "CC" }

// Class implements Kernel.
func (k *CC) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *CC) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *CC) NewState() State {
	n := k.g.NumVertices()
	return &ccState{prev: make([]uint32, n), next: make([]uint32, n)}
}

// Init implements Kernel: every vertex starts in its own component.
func (k *CC) Init(st State, _ uint64) {
	s := st.(*ccState)
	for i := range s.prev {
		s.prev[i] = uint32(i)
		s.next[i] = uint32(i)
	}
}

// BeginLevel implements Kernel.
func (k *CC) BeginLevel([]State, int32) {}

// RunSP propagates labels across each edge in both directions: the
// neighbor inherits the vertex's label and vice versa, whichever is
// smaller.
func (k *CC) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: candidate labels read only prev
// (stable per iteration); the min-writes to next are conditional-monotone,
// so gather-time candidates are a superset of serial writes and Apply
// re-tests against live state.
func (k *CC) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *CC) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*ccState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.propagate(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP propagates labels for one large vertex's page-local adjacency.
func (k *CC) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *CC) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *CC) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*ccState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	k.propagate(a, s, vid, adj, &res, d)
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *CC) propagate(a *Args, s *ccState, vid uint64, adj slottedpage.AdjView, res *Result, d *Deferred) {
	cv := s.prev[vid]
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if a.owns(nvid) && cv < s.next[nvid] {
			if d != nil {
				d.push(Op{Idx: nvid, Val: uint64(cv)})
			} else {
				s.next[nvid] = cv
				res.Updates++
				res.Active = true
			}
		}
		if cn := s.prev[nvid]; a.owns(vid) && cn < s.next[vid] {
			if d != nil {
				d.push(Op{Idx: vid, Val: uint64(cn)})
			} else {
				s.next[vid] = cn
				res.Updates++
				res.Active = true
			}
		}
	}
}

// Apply implements GatherKernel: commit the still-smaller labels in order.
func (k *CC) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*ccState)
	for _, op := range d.Ops {
		if c := uint32(op.Val); c < s.next[op.Idx] {
			s.next[op.Idx] = c
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates implements Kernel: labels merge by minimum.
func (k *CC) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*ccState)
	for _, other := range sts[1:] {
		o := other.(*ccState)
		for v, c := range o.next {
			if c < base.next[v] {
				base.next[v] = c
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*ccState).next, base.next)
	}
}

// EndIteration implements Kernel: next becomes prev; the fixpoint is
// reached when an iteration applies no update.
func (k *CC) EndIteration(sts []State, active bool) bool {
	for _, st := range sts {
		s := st.(*ccState)
		copy(s.prev, s.next)
	}
	return active
}

// Components exposes the final label vector.
func (k *CC) Components(st State) []uint32 { return st.(*ccState).prev }
