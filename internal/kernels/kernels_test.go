package kernels

import (
	"testing"
	"testing/quick"

	"repro/internal/graphgen"
	"repro/internal/slottedpage"
)

func TestClassAndTechniqueStrings(t *testing.T) {
	if BFSLike.String() != "BFS-like" || PageRankLike.String() != "PageRank-like" {
		t.Error("Class strings wrong")
	}
	if EdgeCentric.String() != "edge-centric" || VertexCentric.String() != "vertex-centric" || Hybrid.String() != "hybrid" {
		t.Error("Technique strings wrong")
	}
}

func TestLaneAccEdgeCentric(t *testing.T) {
	var l laneAcc
	l.add(1)  // 1 edge, 32 lanes
	l.add(33) // 33 edges, 64 lanes
	if l.edges != 34 || l.ecLanes != 96 {
		t.Fatalf("edges=%d ecLanes=%d", l.edges, l.ecLanes)
	}
	// eff = edges + 0.25*(lanes-edges) = 34 + 0.25*62 = 49.5
	if got := l.effectiveLanes(EdgeCentric); got != 49.5 {
		t.Errorf("effectiveLanes = %v, want 49.5", got)
	}
}

func TestLaneAccVertexCentricWindows(t *testing.T) {
	var l laneAcc
	// 32 vertices of degree 1 plus one window with a degree-100 hub.
	for i := 0; i < 32; i++ {
		l.add(1)
	}
	l.add(100) // partial second window
	// First window: 32*1 lanes; partial window flush: 32*100.
	want := float64(132) + vertexCentricWaste*float64(32+3200-132)
	if got := l.effectiveLanes(VertexCentric); got != want {
		t.Errorf("effectiveLanes = %v, want %v", got, want)
	}
}

func TestHybridPicksCheaper(t *testing.T) {
	f := func(degs []uint8) bool {
		var l laneAcc
		for _, d := range degs {
			l.add(int(d))
		}
		h := l.effectiveLanes(Hybrid)
		e := l.effectiveLanes(EdgeCentric)
		v := l.effectiveLanes(VertexCentric)
		min := e
		if v < min {
			min = v
		}
		return h == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVertexCentricSuffersOnSkew(t *testing.T) {
	// A window holding one hub and 31 leaves: vertex-centric stalls the
	// whole warp on the hub; edge-centric does not.
	var l laneAcc
	l.add(1000)
	for i := 0; i < 31; i++ {
		l.add(1)
	}
	if l.effectiveLanes(VertexCentric) <= l.effectiveLanes(EdgeCentric) {
		t.Error("vertex-centric not penalized on skewed window")
	}
}

func TestEdgeCentricSuffersOnVerySparse(t *testing.T) {
	// Uniform degree 2: edge-centric wastes 30/32 lanes per vertex;
	// vertex-centric windows are perfectly balanced.
	var l laneAcc
	for i := 0; i < 64; i++ {
		l.add(2)
	}
	if l.effectiveLanes(EdgeCentric) <= l.effectiveLanes(VertexCentric) {
		t.Error("edge-centric not penalized on uniform sparse page")
	}
}

func TestWeightDeterministicAndInRange(t *testing.T) {
	f := func(u, v uint32) bool {
		w := Weight(uint64(u), uint64(v))
		return w == Weight(uint64(u), uint64(v)) && w >= 1 && w <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Weight(1, 2) == Weight(2, 1) && Weight(3, 4) == Weight(4, 3) && Weight(5, 6) == Weight(6, 5) {
		t.Error("weights suspiciously symmetric")
	}
}

// buildTestGraph packs a small RMAT graph into pages for state-size tests.
func buildTestGraph(t *testing.T) *slottedpage.Graph {
	t.Helper()
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 10)
	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestWAFootprintsMatchTable4(t *testing.T) {
	// Paper Table 4's per-vertex WA: BFS 2 B, PageRank 4 B, CC 8 B.
	sp := buildTestGraph(t)
	v := int64(sp.NumVertices())
	cases := []struct {
		k    Kernel
		perV int64
	}{
		{NewBFS(sp), 2},
		{NewPageRank(sp, 0.85, 10), 4},
		{NewCC(sp), 8},
	}
	for _, tc := range cases {
		if got := tc.k.NewState().WABytes(); got != v*tc.perV {
			t.Errorf("%s WABytes = %d, want %d", tc.k.Name(), got, v*tc.perV)
		}
	}
	// SSSP additionally keeps the activity vector (dist 4 B + level 4 B).
	if got := NewSSSP(sp).NewState().WABytes(); got != v*8 {
		t.Errorf("SSSP WABytes = %d, want %d", got, v*8)
	}
}

func TestStateCloneIndependent(t *testing.T) {
	sp := buildTestGraph(t)
	for _, k := range []Kernel{NewBFS(sp), NewPageRank(sp, 0.85, 1), NewSSSP(sp), NewCC(sp), NewBC(sp)} {
		st := k.NewState()
		k.Init(st, 0)
		clone := st.Clone()
		k.Init(st, 1) // mutate original
		// Re-initializing from a different source must not affect the clone.
		if clone.WABytes() != st.WABytes() {
			t.Errorf("%s: clone size changed", k.Name())
		}
	}
}

func TestKernelClassesAndRA(t *testing.T) {
	sp := buildTestGraph(t)
	if NewBFS(sp).Class() != BFSLike || NewSSSP(sp).Class() != BFSLike || NewBC(sp).Class() != BFSLike {
		t.Error("traversal kernels must be BFS-like")
	}
	if NewPageRank(sp, 0.85, 1).Class() != PageRankLike || NewCC(sp).Class() != PageRankLike {
		t.Error("full-scan kernels must be PageRank-like")
	}
	if NewPageRank(sp, 0.85, 1).RAPerVertex() != 4 {
		t.Error("PageRank streams 4 bytes of prevPR per vertex")
	}
	if NewBFS(sp).RAPerVertex() != 0 {
		t.Error("BFS has no RA vector")
	}
}

func TestLPDegrees(t *testing.T) {
	sp := buildTestGraph(t)
	m := lpDegrees(sp)
	for v, d := range m {
		if got := sp.DegreeOf(v); got != d {
			t.Errorf("LP vertex %d degree %d, want %d", v, d, got)
		}
	}
}
