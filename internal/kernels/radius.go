package kernels

import (
	"math"

	"repro/internal/slottedpage"
)

// Radius implements the "radius estimations" entry of the paper's §3.3
// PageRank-like class, in the style of ANF (Palmer, Gibbons, Faloutsos,
// KDD'02): every vertex carries K Flajolet-Martin bitmask sketches of its
// reachable set; each full scan ORs in the out-neighbors' sketches,
// extending reach by one hop. A vertex's (out-)eccentricity estimate is the
// iteration at which its sketches stop growing, and the neighborhood
// function |N(v,h)| comes from the sketches' lowest-zero-bit positions.
//
// Sketch updates are idempotent bitwise ORs, so replica merges and
// ownership splitting work exactly like the other full-scan kernels.
type Radius struct {
	g        *slottedpage.Graph
	sketches int
	maxHops  int32
	cost     costParams
}

// NewRadius returns a radius-estimation kernel with the given sketch count
// (more sketches, tighter estimates; 8 is a good default) and a hop cap.
func NewRadius(g *slottedpage.Graph, sketches, maxHops int) *Radius {
	if sketches < 1 {
		sketches = 1
	}
	return &Radius{
		g:        g,
		sketches: sketches,
		maxHops:  int32(maxHops),
		cost:     costParams{laneCycles: 90, slotCycles: 40},
	}
}

type radiusState struct {
	// prev and next hold K uint32 bitmasks per vertex, flattened.
	prev []uint32
	next []uint32
	// radius[v] is the last hop at which v's sketches grew.
	radius []int32
	k      int
	iter   int32
}

func (s *radiusState) WABytes() int64 {
	return int64(len(s.next))*4 + int64(len(s.radius))*4
}
func (s *radiusState) RABytes() int64 { return 0 }
func (s *radiusState) Clone() State {
	return &radiusState{
		prev:   append([]uint32(nil), s.prev...),
		next:   append([]uint32(nil), s.next...),
		radius: append([]int32(nil), s.radius...),
		k:      s.k,
		iter:   s.iter,
	}
}

// fmBit returns the Flajolet-Martin bit for vertex v in sketch j: position
// = number of trailing zeros of a per-sketch hash, geometrically
// distributed.
func fmBit(v uint64, j int) uint32 {
	h := (v+1)*0x9E3779B97F4A7C15 ^ uint64(j+1)*0xD1B54A32D192ED03
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	pos := 0
	for pos < 31 && h&1 == 0 {
		h >>= 1
		pos++
	}
	return 1 << uint(pos)
}

// Name implements Kernel.
func (k *Radius) Name() string { return "Radius" }

// Class implements Kernel.
func (k *Radius) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *Radius) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *Radius) NewState() State {
	n := int(k.g.NumVertices())
	return &radiusState{
		prev:   make([]uint32, n*k.sketches),
		next:   make([]uint32, n*k.sketches),
		radius: make([]int32, n),
		k:      k.sketches,
	}
}

// Init implements Kernel: every vertex starts knowing only itself.
func (k *Radius) Init(st State, _ uint64) {
	s := st.(*radiusState)
	for v := 0; v < len(s.radius); v++ {
		s.radius[v] = 0
		for j := 0; j < s.k; j++ {
			b := fmBit(uint64(v), j)
			s.prev[v*s.k+j] = b
			s.next[v*s.k+j] = b
		}
	}
	s.iter = 0
}

// BeginLevel implements Kernel.
func (k *Radius) BeginLevel([]State, int32) {}

// RunSP ORs each vertex's out-neighbors' sketches into its own.
func (k *Radius) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: the OR-in source (prev) is stable; the
// "did the sketch grow" condition against next is conditional-monotone
// (bits only set), so gather-time candidates are a superset of serial
// writes and Apply recomputes the merge against live state.
func (k *Radius) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *Radius) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*radiusState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.absorb(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP handles one large vertex's page-local adjacency.
func (k *Radius) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *Radius) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *Radius) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*radiusState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	k.absorb(a, s, vid, adj, &res, d)
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *Radius) absorb(a *Args, s *radiusState, vid uint64, adj slottedpage.AdjView, res *Result, d *Deferred) {
	if !a.owns(vid) {
		return
	}
	base := int(vid) * s.k
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		nb := int(nvid) * s.k
		for j := 0; j < s.k; j++ {
			old := s.next[base+j]
			merged := old | s.prev[nb+j]
			if merged != old {
				if d != nil {
					d.push(Op{Idx: uint64(base + j), Val: uint64(s.prev[nb+j])})
					continue
				}
				s.next[base+j] = merged
				res.Updates++
				res.Active = true
			}
		}
	}
}

// Apply implements GatherKernel: redo the merge against live sketches.
func (k *Radius) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*radiusState)
	for _, op := range d.Ops {
		old := s.next[op.Idx]
		merged := old | uint32(op.Val)
		if merged != old {
			s.next[op.Idx] = merged
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates implements Kernel: sketches merge by OR; radii by maximum.
func (k *Radius) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*radiusState)
	for _, other := range sts[1:] {
		o := other.(*radiusState)
		for i := range base.next {
			base.next[i] |= o.next[i]
		}
		for v := range base.radius {
			if o.radius[v] > base.radius[v] {
				base.radius[v] = o.radius[v]
			}
		}
	}
	for _, other := range sts[1:] {
		o := other.(*radiusState)
		copy(o.next, base.next)
		copy(o.radius, base.radius)
	}
}

// EndIteration implements Kernel: record which vertices grew this hop, swap
// buffers, and continue until no sketch changes or the hop cap.
func (k *Radius) EndIteration(sts []State, active bool) bool {
	base := sts[0].(*radiusState)
	base.iter++
	for v := range base.radius {
		for j := 0; j < base.k; j++ {
			if base.next[v*base.k+j] != base.prev[v*base.k+j] {
				base.radius[v] = base.iter
				break
			}
		}
	}
	for _, st := range sts {
		s := st.(*radiusState)
		copy(s.prev, base.next)
		copy(s.next, base.next)
		copy(s.radius, base.radius)
		s.iter = base.iter
	}
	return active && base.iter < k.maxHops
}

// Radii exposes the per-vertex out-eccentricity estimates: the hop at
// which each vertex's reachable-set sketch last grew.
func (k *Radius) Radii(st State) []int32 { return st.(*radiusState).radius }

// NeighborhoodEstimate reports the estimated size of v's reachable set
// from the final sketches, using the Flajolet-Martin estimator
// 2^E[b] / 0.77351 where b is each sketch's lowest unset bit.
func (k *Radius) NeighborhoodEstimate(st State, v uint64) float64 {
	s := st.(*radiusState)
	sum := 0.0
	for j := 0; j < s.k; j++ {
		sum += float64(lowestZeroBit(s.prev[int(v)*s.k+j]))
	}
	return math.Pow(2, sum/float64(s.k)) / 0.77351
}

// EffectiveDiameter reports the smallest hop count within which the given
// fraction (e.g. 0.9) of vertices' sketches had stabilized.
func (k *Radius) EffectiveDiameter(st State, fraction float64) int32 {
	s := st.(*radiusState)
	if len(s.radius) == 0 {
		return 0
	}
	counts := make([]int, s.iter+1)
	for _, r := range s.radius {
		counts[r]++
	}
	need := int(math.Ceil(fraction * float64(len(s.radius))))
	acc := 0
	for h, c := range counts {
		acc += c
		if acc >= need {
			return int32(h)
		}
	}
	return s.iter
}

func lowestZeroBit(m uint32) int {
	for i := 0; i < 32; i++ {
		if m&(1<<uint(i)) == 0 {
			return i
		}
	}
	return 32
}
