package kernels

// This file defines the advance/filter operator layer: a FrontierKernel
// plans each traversal level itself — choosing a traversal direction and
// rebuilding the page frontier directly from attribute state — instead of
// having page kernels mark NextPIDs bit by bit. The plan step fuses the
// advance (which pages must stream) with the filter (which vertices are
// live) so no dense per-level bitset of candidate pages is materialized and
// then pruned: PlanLevel writes the exact page set in one pass over state.
//
// Two built-in kernels use the contract: DirBFS (direction-optimizing BFS,
// push/pull switching on frontier-edge density) and DeltaSSSP
// (delta-stepping SSSP with bucketed frontiers).

import (
	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// Direction labels how a superstep traverses edges.
type Direction int8

// Directions. DirNone marks levels outside a direction-optimized run (plain
// kernels) or a plan that found no work.
const (
	DirNone Direction = iota
	// DirPush is the sparse direction: frontier vertices scan their
	// out-edges and write discoveries forward.
	DirPush
	// DirPull is the dense direction: undiscovered vertices scan their
	// in-edges, stopping at the first frontier parent.
	DirPull
)

// String names the direction as the trace exporters spell it.
func (d Direction) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return "none"
	}
}

// DirMode forces or frees the per-level direction choice. The forced modes
// exist for tests and the fuzz harness; production runs use DirAuto.
type DirMode int

// Direction modes.
const (
	// DirAuto switches per level on frontier-edge density (Beamer's
	// heuristic as Ligra implements it: dense when the frontier's summed
	// out-degree exceeds |E|/20).
	DirAuto DirMode = iota
	// DirForcePush always advances frontier out-edges.
	DirForcePush
	// DirForcePull always scans unvisited in-edges.
	DirForcePull
)

// FrontierKernel is a kernel that plans its own levels. The engine calls
// PlanLevel after seeding and again after every superstep's merge, *before*
// testing the frontier for emptiness: the plan owns termination (an empty
// next set ends the run), which lets bucketed kernels keep running off
// pending state even when no page kernel marked a next page.
//
// PlanLevel must rebuild next from scratch (Reset, then mark), reading only
// the merged attribute state — replicas are identical again when it runs —
// and return the direction the coming level will execute in, or DirNone
// when no work remains. It runs single-threaded between supersteps, so it
// may mutate kernel-internal plan state (frontier flags, snapshots) that
// the page kernels then treat as read-only for the whole phase.
type FrontierKernel interface {
	Kernel
	PlanLevel(sts []State, level int32, next *bitset.Set) Direction
}

// revAdj is a host-side reverse CSR over the slotted pages, built once per
// kernel: pull-direction kernels scan in(v) instead of streaming every
// frontier page, and the out-degree array prices frontiers and coverage
// without re-decoding pages.
type revAdj struct {
	offsets []int64
	targets []uint32
	outDeg  []int32
}

// buildRevAdj decodes the graph's adjacency twice (count, then fill) into a
// reverse CSR. In-neighbors of each vertex end up sorted by source VID, so
// pull scans are deterministic.
func buildRevAdj(g *slottedpage.Graph) *revAdj {
	n := g.NumVertices()
	r := &revAdj{offsets: make([]int64, n+1), outDeg: make([]int32, n)}
	for v := uint64(0); v < n; v++ {
		d := int32(0)
		g.NeighborsOf(v, func(dst uint64) {
			r.offsets[dst+1]++
			d++
		})
		r.outDeg[v] = d
	}
	for i := uint64(0); i < n; i++ {
		r.offsets[i+1] += r.offsets[i]
	}
	r.targets = make([]uint32, r.offsets[n])
	fill := make([]int64, n)
	copy(fill, r.offsets[:n])
	for v := uint64(0); v < n; v++ {
		g.NeighborsOf(v, func(dst uint64) {
			r.targets[fill[dst]] = uint32(v)
			fill[dst]++
		})
	}
	return r
}

// in returns v's in-neighbors (sources of edges into v).
func (r *revAdj) in(v uint64) []uint32 { return r.targets[r.offsets[v]:r.offsets[v+1]] }

// markVertexPages sets the pages that must stream for vertex v: its home
// page, plus — when expandLP is set and v is a large vertex — the whole LP
// run, since push kernels expand the full adjacency. Pull kernels pass
// false: they read v's record only to test it, never its page-resident
// out-edges, so one page per vertex suffices.
func markVertexPages(g *slottedpage.Graph, v uint64, next *bitset.Set, expandLP bool) {
	home := g.HomeOf(v)
	next.Set(int(home.PID))
	if !expandLP || g.Kind(home.PID) != slottedpage.LargePage {
		return
	}
	for pid := home.PID + 1; int(pid) < g.NumPages() &&
		g.Kind(pid) == slottedpage.LargePage && g.RVT(pid).StartVID == v; pid++ {
		next.Set(int(pid))
	}
}
