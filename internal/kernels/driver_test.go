package kernels

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/csr"
	"repro/internal/graphgen"
	"repro/internal/slottedpage"
	"repro/internal/verify"
)

// drive is a minimal sequential implementation of the GTS framework loop
// (Algorithm 1) with no hardware model: it exists so the kernels are tested
// independently of internal/core — two separate drivers agreeing with the
// references pins both.
func drive(t *testing.T, k Kernel, g *slottedpage.Graph, source uint64) State {
	return driveMode(t, k, g, source, false)
}

// driveMode is drive with the execution path selectable: gather=true routes
// every page through the kernel's Gather/Apply halves (applied immediately,
// which a serial wave of size one makes equivalent) so the deferred-write
// contract is exercised by this driver too, not only by internal/core.
// FrontierKernels get their PlanLevel hook called exactly where the engine
// calls it: after seeding and after each level's merge, before the
// emptiness test.
func driveMode(t *testing.T, k Kernel, g *slottedpage.Graph, source uint64, gather bool) State {
	t.Helper()
	st := k.NewState()
	k.Init(st, source)
	sts := []State{st}
	numPages := g.NumPages()
	bfsLike := k.Class() == BFSLike

	expandLP := func(set *bitset.Set, pid slottedpage.PageID) {
		owner := g.RVT(pid).StartVID
		for p := pid; int(p) < numPages && g.Kind(p) == slottedpage.LargePage && g.RVT(p).StartVID == owner; p++ {
			set.Set(int(p))
		}
	}
	all := func() *bitset.Set {
		s := bitset.New(numPages)
		for i := 0; i < numPages; i++ {
			s.Set(i)
		}
		return s
	}
	next := bitset.New(numPages)
	if bfsLike {
		home := g.HomeOf(source)
		next.Set(int(home.PID))
		if g.Kind(home.PID) == slottedpage.LargePage {
			expandLP(next, home.PID)
		}
	} else {
		next = all()
	}

	gk, _ := k.(GatherKernel)
	bgk, _ := k.(GatherBackwardKernel)
	d := &Deferred{}
	runSet := func(set *bitset.Set, level int32, backward bool) (*bitset.Set, bool) {
		local := bitset.New(numPages)
		active := false
		set.ForEach(func(pid int) {
			a := &Args{
				Graph:   g,
				PID:     slottedpage.PageID(pid),
				Page:    g.Page(slottedpage.PageID(pid)),
				State:   st,
				Level:   level,
				OwnedLo: 0, OwnedHi: g.NumVertices(),
				Tech:     EdgeCentric,
				NextPIDs: local,
			}
			var res Result
			isLP := g.Kind(slottedpage.PageID(pid)) == slottedpage.LargePage
			if backward {
				if gather && bgk != nil {
					d.Reset()
					if isLP {
						res = bgk.GatherLPBack(a, d)
					} else {
						res = bgk.GatherSPBack(a, d)
					}
					bgk.ApplyBack(a, d, &res)
				} else {
					bk := k.(BackwardKernel)
					if isLP {
						res = bk.RunLPBack(a)
					} else {
						res = bk.RunSPBack(a)
					}
				}
			} else if gather && gk != nil {
				d.Reset()
				if isLP {
					res = gk.GatherLP(a, d)
				} else {
					res = gk.GatherSP(a, d)
				}
				gk.Apply(a, d, &res)
			} else if isLP {
				res = k.RunLP(a)
			} else {
				res = k.RunSP(a)
			}
			if res.Active {
				active = true
			}
			if res.Cycles < 0 {
				t.Fatalf("negative cycles from %s on page %d", k.Name(), pid)
			}
		})
		merged := bitset.New(numPages)
		merged.Or(local)
		merged.ForEach(func(pid int) {
			if g.Kind(slottedpage.PageID(pid)) == slottedpage.LargePage {
				expandLP(merged, slottedpage.PageID(pid))
			}
		})
		return merged, active
	}

	fk, _ := k.(FrontierKernel)
	if fk != nil && bfsLike {
		fk.PlanLevel(sts, 0, next)
	}
	back, wantBackward := k.(BackwardKernel)
	var levelSets []*bitset.Set
	var level int32
	for {
		k.BeginLevel(sts, level)
		merged, active := runSet(next, level, false)
		if bfsLike {
			if wantBackward {
				levelSets = append(levelSets, next.Clone())
			}
			if fk != nil {
				fk.PlanLevel(sts, level+1, merged)
			}
			next = merged
			level++
			if !next.Any() {
				break
			}
		} else {
			level++
			if !k.EndIteration(sts, active) {
				break
			}
			next = all()
		}
		if level > 30000 {
			t.Fatal("driver did not converge")
		}
	}
	if wantBackward {
		back.BeginBackward(sts, level-1)
		for l := len(levelSets) - 1; l >= 0; l-- {
			k.BeginLevel(sts, int32(l))
			runSet(levelSets[l], int32(l), true)
		}
	}
	return st
}

func driverGraph(t *testing.T) (*csr.Graph, *slottedpage.Graph) {
	t.Helper()
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	return g, sp
}

func TestDriverBFS(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewBFS(sp)
	st := drive(t, k, sp, 0)
	want := verify.BFS(g, 0)
	got := k.Levels(st)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d level = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestDriverPageRank(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewPageRank(sp, 0.85, 5)
	st := drive(t, k, sp, 0)
	want := verify.PageRank(g, 0.85, 5)
	got := k.Ranks(st)
	for v := range want {
		if math.Abs(float64(got[v])-want[v]) > 1e-4*math.Max(want[v], 1e-9)+1e-7 {
			t.Fatalf("vertex %d rank = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDriverSSSP(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewSSSP(sp)
	st := drive(t, k, sp, 0)
	want := verify.SSSP(g, 0, Weight)
	got := k.Distances(st)
	for v := range want {
		if math.IsInf(want[v], 1) {
			if got[v] != float32(math.MaxFloat32) {
				t.Fatalf("vertex %d should be unreachable", v)
			}
			continue
		}
		if float64(got[v]) != want[v] {
			t.Fatalf("vertex %d dist = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDriverCC(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewCC(sp)
	st := drive(t, k, sp, 0)
	want := verify.WCC(g)
	got := k.Components(st)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d label = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestDriverBC(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewBC(sp)
	st := drive(t, k, sp, 0)
	want := verify.BC(g, 0)
	got := k.Centrality(st, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*math.Max(want[v], 1)+1e-9 {
			t.Fatalf("vertex %d bc = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDriverRWR(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewRWR(sp, 0.15, 5)
	st := drive(t, k, sp, 9)
	want := verify.RWR(g, 9, 0.15, 5)
	got := k.Scores(st)
	for v := range want {
		if math.Abs(float64(got[v])-want[v]) > 1e-5 {
			t.Fatalf("vertex %d score = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDriverDegreeDist(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewDegreeDist(sp)
	st := drive(t, k, sp, 0)
	got := k.Degrees(st)
	for v := uint64(0); v < g.NumVertices(); v++ {
		if int(got[v]) != g.Degree(v) {
			t.Fatalf("vertex %d degree = %d, want %d", v, got[v], g.Degree(v))
		}
	}
}

func TestDriverKCore(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewKCore(sp, 6)
	st := drive(t, k, sp, 0)
	want := verify.KCore(g, 6)
	got := k.InCore(st)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d in-core = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDriverNeighborhood(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewNeighborhood(sp, 2)
	st := drive(t, k, sp, 0)
	full := verify.BFS(g, 0)
	got := k.Members(st)
	for v := range full {
		want := full[v]
		if int(want) > 2 {
			want = -1
		}
		if got[v] != want {
			t.Fatalf("vertex %d = %d, want %d", v, got[v], want)
		}
	}
}

func TestDriverCrossEdges(t *testing.T) {
	g, sp := driverGraph(t)
	pivot := g.NumVertices() / 2
	side := func(v uint64) bool { return v < pivot }
	k := NewCrossEdges(sp, side)
	st := drive(t, k, sp, 0)
	var want int64
	for v := uint64(0); v < g.NumVertices(); v++ {
		vs := side(v)
		g.Neighbors(v, func(d uint64) {
			if side(d) != vs {
				want++
			}
		})
	}
	if got := k.Total(st); got != want {
		t.Fatalf("cross edges = %d, want %d", got, want)
	}
}

func TestDriverRadiusInvariants(t *testing.T) {
	g, sp := driverGraph(t)
	k := NewRadius(sp, 8, 64)
	st := drive(t, k, sp, 0)
	radii := k.Radii(st)
	// Radius never exceeds eccentricity (spot check a few sources).
	for v := uint32(0); v < 16; v++ {
		lv := verify.BFS(g, v)
		ecc := int32(0)
		for _, l := range lv {
			if int32(l) > ecc {
				ecc = int32(l)
			}
		}
		if radii[v] > ecc {
			t.Fatalf("vertex %d radius %d > eccentricity %d", v, radii[v], ecc)
		}
	}
	if d := k.EffectiveDiameter(st, 0.9); d < 1 {
		t.Errorf("effective diameter %d", d)
	}
	if est := k.NeighborhoodEstimate(st, 0); est < 1 {
		t.Errorf("neighborhood estimate %v", est)
	}
}

func TestDriverTechniquesAgree(t *testing.T) {
	// A different micro-level technique changes only the cycle count.
	_, sp := driverGraph(t)
	for _, tech := range []Technique{VertexCentric, Hybrid} {
		k := NewBFS(sp)
		st := k.NewState()
		k.Init(st, 0)
		local := bitset.New(sp.NumPages())
		home := sp.HomeOf(0)
		a := &Args{Graph: sp, PID: home.PID, Page: sp.Page(home.PID), State: st,
			OwnedLo: 0, OwnedHi: sp.NumVertices(), Tech: tech, NextPIDs: local}
		res := k.RunSP(a)
		if res.Cycles <= 0 {
			t.Errorf("%v: no cycles", tech)
		}
	}
}
