package kernels

import (
	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// DirBFS is the direction-optimizing variant of BFS: a FrontierKernel that
// plans each level as either sparse push (frontier vertices expand their
// out-edges, exactly K_BFS_SP/LP) or dense pull (unvisited vertices scan
// their in-edges and stop at the first frontier parent), switching on
// frontier-edge density with the Beamer-style threshold the Ligra baseline
// uses (internal/baselines/cpu/ligra.go): pull when the frontier's summed
// out-degree exceeds |E|/20. Dense levels touch a small fraction of the
// edges push would, because most scans early-exit after a handful of
// in-neighbors.
//
// The advance+filter step is fused: page kernels never mark NextPIDs — the
// plan rebuilds the exact page frontier from the level vector, so no dense
// candidate bitset is materialized and filtered. Discovered levels are
// byte-identical to plain BFS in every mode (a vertex's BFS level does not
// depend on which direction found it), which the differential and fuzz
// suites pin.
//
// Result.Edges uses the Graph500/Gunrock coverage convention — each
// discovered vertex contributes its out-degree at commit time, in both
// directions — so MTEPS stays comparable across direction switches (pull's
// scanned-edge count would undercount the traversal it performs).
// Result.Cycles still prices the work actually executed: early-exiting
// pull scans cost only the lanes they touched.
type DirBFS struct {
	g    *slottedpage.Graph
	rev  *revAdj
	cost costParams
	mode DirMode
	// dir is the current level's planned direction. PlanLevel writes it
	// between supersteps; page kernels only read it, so the gather pool
	// never races it.
	dir Direction
	// denseThreshold is Ligra's |E|/20 switch point.
	denseThreshold int64
}

// NewDirBFS returns a direction-optimizing BFS kernel over g, planning in
// DirAuto mode. Construction builds the host-side reverse CSR pull scans.
func NewDirBFS(g *slottedpage.Graph) *DirBFS {
	return &DirBFS{
		g:              g,
		rev:            buildRevAdj(g),
		cost:           costParams{laneCycles: 40, slotCycles: 10},
		denseThreshold: int64(g.NumEdges() / 20),
	}
}

// SetMode forces every level's direction (DirForcePush/DirForcePull) or
// restores density switching (DirAuto). Call before Run.
func (k *DirBFS) SetMode(m DirMode) { k.mode = m }

// Mode reports the planning mode.
func (k *DirBFS) Mode() DirMode { return k.mode }

// Name implements Kernel.
func (k *DirBFS) Name() string { return "BFS-diropt" }

// Class implements Kernel.
func (k *DirBFS) Class() Class { return BFSLike }

// RAPerVertex implements Kernel.
func (k *DirBFS) RAPerVertex() int64 { return 0 }

// NewState implements Kernel: the state is plain BFS's level vector.
func (k *DirBFS) NewState() State {
	return &bfsState{lv: make([]int16, k.g.NumVertices())}
}

// Init implements Kernel.
func (k *DirBFS) Init(st State, source uint64) {
	s := st.(*bfsState)
	for i := range s.lv {
		s.lv[i] = unvisited
	}
	s.lv[source] = 0
}

// BeginLevel implements Kernel (PlanLevel carries the per-level setup).
func (k *DirBFS) BeginLevel([]State, int32) {}

// PlanLevel implements FrontierKernel: price the frontier (vertices at
// `level`), pick a direction, and rebuild next as exactly the pages that
// direction streams — frontier home pages (with LP runs) for push, the
// home pages of every unvisited vertex for pull.
func (k *DirBFS) PlanLevel(sts []State, level int32, next *bitset.Set) Direction {
	s := sts[0].(*bfsState)
	next.Reset()
	lv := int16(level)
	var frontierEdges int64
	empty := true
	for v, l := range s.lv {
		if l == lv {
			empty = false
			frontierEdges += int64(k.rev.outDeg[v])
		}
	}
	if empty {
		k.dir = DirNone
		return DirNone
	}
	dir := DirPush
	switch k.mode {
	case DirForcePull:
		dir = DirPull
	case DirAuto:
		if frontierEdges > k.denseThreshold {
			dir = DirPull
		}
	}
	k.dir = dir
	if dir == DirPush {
		for v, l := range s.lv {
			if l == lv {
				markVertexPages(k.g, uint64(v), next, true)
			}
		}
	} else {
		for v, l := range s.lv {
			if l == unvisited {
				markVertexPages(k.g, uint64(v), next, false)
			}
		}
	}
	return dir
}

// RunSP implements Kernel, dispatching on the planned direction.
func (k *DirBFS) RunSP(a *Args) Result { return k.dispatchSP(a, nil) }

// GatherSP implements GatherKernel. Both directions are phase-stable: push
// reads the frontier (this level's vertices, which no same-phase apply
// writes); pull additionally reads each page-local vertex's own unvisited
// flag, which only that page's apply flips — and each page gathers once
// per phase.
func (k *DirBFS) GatherSP(a *Args, d *Deferred) Result { return k.dispatchSP(a, d) }

func (k *DirBFS) dispatchSP(a *Args, d *Deferred) Result {
	if k.dir == DirPull {
		return k.pullSP(a, d)
	}
	return k.pushSP(a, d)
}

// RunLP implements Kernel.
func (k *DirBFS) RunLP(a *Args) Result { return k.dispatchLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *DirBFS) GatherLP(a *Args, d *Deferred) Result { return k.dispatchLP(a, d) }

func (k *DirBFS) dispatchLP(a *Args, d *Deferred) Result {
	if k.dir == DirPull {
		return k.pullLP(a, d)
	}
	return k.pushLP(a, d)
}

// pushSP is K_BFS_SP with fused filtering: discoveries are committed (or
// deferred) without marking NextPIDs.
func (k *DirBFS) pushSP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.lv[vid] != level {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.expand(a, s, adj, level, &res, d)
	}
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// pushLP is K_BFS_LP with the same fused filtering.
func (k *DirBFS) pushLP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.lv[vid] == int16(a.Level) {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.expand(a, s, adj, int16(a.Level), &res, d)
	}
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

// expand visits one frontier vertex's adjacency, discovering unvisited
// owned neighbors. Coverage (out-degree of the discovery) accrues at
// commit; deferred ops re-test and accrue in Apply.
func (k *DirBFS) expand(a *Args, s *bfsState, adj slottedpage.AdjView, level int16, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if !a.owns(nvid) {
			continue
		}
		if s.lv[nvid] == unvisited {
			if d != nil {
				d.push(Op{Idx: nvid, Val: uint64(level + 1), PID: -1})
				continue
			}
			s.lv[nvid] = level + 1
			res.Edges += int64(k.rev.outDeg[nvid])
			res.Updates++
			res.Active = true
		}
	}
}

// pullSP scans each unvisited owned vertex's in-edges, early-exiting at the
// first parent on the frontier. Lane costs count only the scanned prefix.
func (k *DirBFS) pullSP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.lv[vid] != unvisited || !a.owns(vid) {
			continue
		}
		k.pullVertex(a, s, vid, level, &lanes, &res, d)
	}
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// pullLP handles a large vertex: only its home page is planned in pull
// mode (the scan reads the reverse CSR, not the page's out-edges), so the
// LP run's continuation pages never stream.
func (k *DirBFS) pullLP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.lv[vid] == unvisited && a.owns(vid) {
		k.pullVertex(a, s, vid, int16(a.Level), &lanes, &res, d)
	}
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

// pullVertex scans vid's in-neighbors for a frontier parent. The frontier
// test (lv == level) is phase-stable: same-phase applies only move
// vertices from unvisited to level+1, never onto the current frontier.
func (k *DirBFS) pullVertex(a *Args, s *bfsState, vid uint64, level int16, lanes *laneAcc, res *Result, d *Deferred) {
	scanned := 0
	found := false
	for _, u := range k.rev.in(vid) {
		scanned++
		if s.lv[u] == level {
			found = true
			break
		}
	}
	lanes.add(scanned)
	if !found {
		return
	}
	if d != nil {
		d.push(Op{Idx: vid, Val: uint64(level + 1), PID: -1})
		return
	}
	s.lv[vid] = level + 1
	res.Edges += int64(k.rev.outDeg[vid])
	res.Updates++
	res.Active = true
}

// Apply implements GatherKernel: commit still-unvisited discoveries in
// recorded order, accruing coverage edges exactly as the serial commit
// does.
func (k *DirBFS) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*bfsState)
	for _, op := range d.Ops {
		if s.lv[op.Idx] != unvisited {
			continue
		}
		s.lv[op.Idx] = int16(op.Val)
		res.Edges += int64(k.rev.outDeg[op.Idx])
		res.Updates++
		res.Active = true
	}
}

// MergeStates implements Kernel: same min-merge as plain BFS.
func (k *DirBFS) MergeStates(sts []State) { mergeLevelStates(sts) }

// EndIteration implements Kernel: termination belongs to PlanLevel.
func (k *DirBFS) EndIteration([]State, bool) bool { return false }

// Levels exposes the result vector of a finished run.
func (k *DirBFS) Levels(st State) []int16 { return st.(*bfsState).lv }
