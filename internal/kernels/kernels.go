// Package kernels implements the GPU kernel functions of the paper's
// Appendix B — K_BFS_SP/LP and K_PR_SP/LP — plus the additional algorithms
// of Appendix D (SSSP, Connected Components, Betweenness Centrality), all
// operating directly on slotted-page bytes.
//
// Each kernel executes *functionally* (it really computes the algorithm, in
// Go, against the attribute state) and *reports its cost* in model cycles,
// which internal/hw's GPU turns into virtual time. Cost depends on the
// micro-level parallel technique (paper §6.2): edge-centric virtual-warp
// processing, vertex-centric one-thread-per-vertex processing, or the
// per-page hybrid.
package kernels

import (
	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// Class separates the paper's two algorithm families (§3.3): traversal
// algorithms stream only the pages on the frontier, level by level;
// full-scan algorithms stream the whole topology once per iteration.
type Class int

// Algorithm classes.
const (
	BFSLike Class = iota
	PageRankLike
)

// String names the class as the paper does.
func (c Class) String() string {
	if c == PageRankLike {
		return "PageRank-like"
	}
	return "BFS-like"
}

// Technique selects the micro-level parallel processing scheme applied to
// each page (paper §6.2 and Appendix E).
type Technique int

// Techniques.
const (
	// EdgeCentric is the virtual-warp-centric default: a warp's threads
	// process one vertex's out-edges together. Balanced for dense pages,
	// wasteful (idle lanes) for very sparse ones.
	EdgeCentric Technique = iota
	// VertexCentric assigns one thread per vertex. Fine for uniform sparse
	// pages; SIMT lockstep makes every warp wait for its highest-degree
	// vertex, so skewed pages stall.
	VertexCentric
	// Hybrid picks the cheaper of the two per page, using the page's
	// density.
	Hybrid
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case VertexCentric:
		return "vertex-centric"
	case Hybrid:
		return "hybrid"
	default:
		return "edge-centric"
	}
}

// warpSize is the SIMT width the lane model uses.
const warpSize = 32

// Waste factors: an idle lane still occupies SIMT issue slots but performs
// no memory traffic, so it costs a fraction of an active lane. Vertex-
// centric divergence is costlier because the stalled lanes wait on another
// lane's dependent memory chain.
const (
	edgeCentricWaste   = 0.25
	vertexCentricWaste = 0.60
)

// laneAcc accumulates SIMT lane counts for the processed vertices of one
// page under both techniques, so Hybrid can pick the cheaper.
type laneAcc struct {
	edges   int64
	ecLanes int64 // edge-centric: ceil(d/32)*32 per vertex
	vcLanes int64 // vertex-centric: 32*max(d) per 32-vertex window
	winFill int
	winMax  int64
}

// add records one processed vertex with out-degree d.
func (l *laneAcc) add(d int) {
	l.edges += int64(d)
	l.ecLanes += int64((d + warpSize - 1) / warpSize * warpSize)
	if int64(d) > l.winMax {
		l.winMax = int64(d)
	}
	l.winFill++
	if l.winFill == warpSize {
		l.vcLanes += warpSize * l.winMax
		l.winFill, l.winMax = 0, 0
	}
}

// effectiveLanes reports the cost-weighted lane count under tech.
func (l *laneAcc) effectiveLanes(tech Technique) float64 {
	vc := l.vcLanes
	if l.winFill > 0 {
		vc += warpSize * l.winMax // flush the partial window
	}
	effEC := float64(l.edges) + edgeCentricWaste*float64(l.ecLanes-l.edges)
	effVC := float64(l.edges) + vertexCentricWaste*float64(vc-l.edges)
	switch tech {
	case VertexCentric:
		return effVC
	case Hybrid:
		if effVC < effEC {
			return effVC
		}
		return effEC
	default:
		return effEC
	}
}

// costParams calibrate an algorithm's per-lane and per-slot cycle costs.
// They are chosen so that the paper's Table 1 shape emerges: PageRank page
// kernels are an order of magnitude more compute-intensive than BFS page
// kernels (atomicAdd plus random float traffic vs. a level compare).
type costParams struct {
	laneCycles float64 // per effective SIMT lane
	slotCycles float64 // per slot visited (frontier check, slot decode)
}

func (c costParams) cycles(slots int64, l *laneAcc, tech Technique) float64 {
	return float64(slots)*c.slotCycles + c.laneCycles*l.effectiveLanes(tech)
}

// Args carries one page-kernel invocation's inputs (paper Algorithm 1
// lines 16-26).
type Args struct {
	Graph *slottedpage.Graph
	PID   slottedpage.PageID
	Page  slottedpage.Page
	State State
	// Level is the traversal level (BFS-like) or iteration (PageRank-like).
	Level int32
	// OwnedLo/OwnedHi bound the vertex range whose attribute entries this
	// GPU owns. Strategy-S partitions WA this way (§4.2); otherwise the
	// range covers all vertices.
	OwnedLo, OwnedHi uint64
	Tech             Technique
	// NextPIDs is this GPU's local nextPIDSet; BFS-like kernels set bits
	// for pages to visit at the next level. Nil for PageRank-like runs.
	NextPIDs *bitset.Set
}

// owns reports whether vertex v's attribute entry belongs to this GPU.
func (a *Args) owns(v uint64) bool { return v >= a.OwnedLo && v < a.OwnedHi }

// Result reports one page-kernel execution.
type Result struct {
	// Cycles is the simulated GPU work.
	Cycles float64
	// Edges counts adjacency entries traversed (for MTEPS metrics).
	Edges int64
	// Updates counts attribute writes (for metrics).
	Updates int64
	// Active reports whether the kernel changed any state (the paper's
	// inverted `finished` flag).
	Active bool
}

// State is an algorithm's attribute data. Strategy-P clones one replica per
// GPU and merges them after each superstep; Strategy-S shares one state and
// bounds updates by ownership.
type State interface {
	// WABytes is the device-resident (read/write) attribute footprint —
	// what the paper's Table 4 tabulates.
	WABytes() int64
	// RABytes is the streamed read-only attribute footprint (0 for
	// algorithms without an RA vector).
	RABytes() int64
	// Clone returns an independent deep copy.
	Clone() State
}

// Kernel is one graph algorithm's pair of page kernels plus its state
// management, the unit the GTS framework (internal/core) schedules.
type Kernel interface {
	Name() string
	Class() Class
	// NewState allocates zeroed attribute state for the kernel's graph.
	NewState() State
	// Init seeds st for a run from source (PageRank-like kernels ignore
	// source).
	Init(st State, source uint64)
	// RAPerVertex is the per-vertex size of the streamed read-only
	// attribute subvector accompanying each page (0 if none).
	RAPerVertex() int64
	// RunSP and RunLP are the small-page and large-page kernels.
	RunSP(a *Args) Result
	RunLP(a *Args) Result
	// BeginLevel runs on each GPU's replica set at the start of a
	// level/iteration (before any page kernel).
	BeginLevel(sts []State, level int32)
	// MergeStates combines the per-GPU replicas' superstep updates and
	// makes every replica identical again (Strategy-P's steps 3-4).
	MergeStates(sts []State)
	// EndIteration advances state between full-scan iterations
	// (PageRank's prev/next swap); active reports whether any page kernel
	// changed state this iteration. It returns whether another iteration
	// is wanted. BFS-like kernels return false (the engine stops on an
	// empty nextPIDSet instead).
	EndIteration(sts []State, active bool) bool
}

// BackwardKernel is implemented by BFS-like kernels that need a reverse
// level sweep after the forward traversal finishes — Betweenness
// Centrality's dependency accumulation. The engine replays the per-level
// page sets it recorded during the forward phase, in descending level
// order.
type BackwardKernel interface {
	// BeginBackward runs once between the phases.
	BeginBackward(sts []State, maxLevel int32)
	// RunSPBack and RunLPBack are the backward-phase page kernels.
	RunSPBack(a *Args) Result
	RunLPBack(a *Args) Result
}

// lpDegrees precomputes total out-degrees of large-page vertices: an LP
// record's ADJLIST_SZ is page-local, but kernels such as PageRank divide by
// the vertex's full degree (Appendix B, K_PR_LP).
func lpDegrees(g *slottedpage.Graph) map[uint64]int {
	m := make(map[uint64]int)
	for _, pid := range g.LPIDs() {
		adj := g.Page(pid).Adj(0)
		m[g.RVT(pid).StartVID] += adj.Len()
	}
	return m
}

// Weight is the deterministic synthetic edge weight used by SSSP: the
// slotted page format carries no edge values (the paper's SSSP runs store
// them likewise out of band), so weights derive from the endpoint IDs.
// The range is [1, 16].
func Weight(u, v uint64) float32 {
	h := u*0x9E3779B97F4A7C15 + v*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return float32(h%16 + 1)
}
