package kernels

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// The merge-algebra tests pin Strategy-P's correctness contract in
// isolation: replicas that each process a disjoint page subset must merge
// to exactly the state a single replica produces processing everything.

// splitDrive runs one level/iteration of kernel k with the page set split
// across n replicas, merges, and returns replica 0's state; whole runs the
// same pages on one state for comparison.
func splitDrive(t *testing.T, k Kernel, g *slottedpage.Graph, source uint64, n int) (split, whole State) {
	t.Helper()
	run := func(st State, pids []slottedpage.PageID) {
		local := bitset.New(g.NumPages())
		for _, pid := range pids {
			a := &Args{
				Graph: g, PID: pid, Page: g.Page(pid), State: st,
				OwnedLo: 0, OwnedHi: g.NumVertices(), Tech: EdgeCentric, NextPIDs: local,
			}
			if g.Kind(pid) == slottedpage.LargePage {
				k.RunLP(a)
			} else {
				k.RunSP(a)
			}
		}
	}
	var allPages []slottedpage.PageID
	for pid := 0; pid < g.NumPages(); pid++ {
		allPages = append(allPages, slottedpage.PageID(pid))
	}

	// Split execution.
	proto := k.NewState()
	k.Init(proto, source)
	sts := []State{proto}
	for i := 1; i < n; i++ {
		sts = append(sts, proto.Clone())
	}
	k.BeginLevel(sts, 0)
	for i, st := range sts {
		var mine []slottedpage.PageID
		for _, pid := range allPages {
			if int(pid)%n == i {
				mine = append(mine, pid)
			}
		}
		run(st, mine)
	}
	k.MergeStates(sts)

	// Whole execution.
	ref := k.NewState()
	k.Init(ref, source)
	k.BeginLevel([]State{ref}, 0)
	run(ref, allPages)
	return sts[0], ref
}

func TestMergeAlgebraPageRank(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewPageRank(sp, 0.85, 1)
	split, whole := splitDrive(t, k, sp, 0, 3)
	a, b := split.(*prState).nextPR, whole.(*prState).nextPR
	for v := range a {
		if math.Abs(float64(a[v]-b[v])) > 1e-6 {
			t.Fatalf("vertex %d: split %v vs whole %v", v, a[v], b[v])
		}
	}
}

func TestMergeAlgebraBFSFirstLevel(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewBFS(sp)
	split, whole := splitDrive(t, k, sp, 0, 2)
	a, b := split.(*bfsState).lv, whole.(*bfsState).lv
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: split %d vs whole %d", v, a[v], b[v])
		}
	}
}

func TestMergeAlgebraCC(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewCC(sp)
	split, whole := splitDrive(t, k, sp, 0, 4)
	a, b := split.(*ccState).next, whole.(*ccState).next
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: split %d vs whole %d", v, a[v], b[v])
		}
	}
}

func TestMergeAlgebraRadius(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewRadius(sp, 4, 8)
	split, whole := splitDrive(t, k, sp, 0, 3)
	a, b := split.(*radiusState).next, whole.(*radiusState).next
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sketch word %d: split %x vs whole %x", i, a[i], b[i])
		}
	}
}

func TestMergeAlgebraKCore(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewKCore(sp, 4)
	split, whole := splitDrive(t, k, sp, 0, 2)
	a, b := split.(*kcoreState).count, whole.(*kcoreState).count
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: split %d vs whole %d", v, a[v], b[v])
		}
	}
}

func TestMergeSingleReplicaIsNoop(t *testing.T) {
	_, sp := driverGraph(t)
	for _, k := range []Kernel{NewBFS(sp), NewPageRank(sp, 0.85, 1), NewSSSP(sp), NewCC(sp), NewBC(sp), NewRWR(sp, 0.15, 1), NewKCore(sp, 3), NewRadius(sp, 4, 4), NewDegreeDist(sp), NewCrossEdges(sp, func(v uint64) bool { return v%2 == 0 })} {
		st := k.NewState()
		k.Init(st, 0)
		k.MergeStates([]State{st}) // must not panic or mutate
	}
}
