package kernels

import "repro/internal/slottedpage"

// Neighborhood computes the k-hop out-neighborhood of a source vertex —
// the "neighborhood / egonet / induced subgraph" family of the paper's
// §3.3 BFS-like class. It is a depth-capped traversal: levels beyond
// MaxHops are not explored, so only the pages within the ball stream.
type Neighborhood struct {
	g       *slottedpage.Graph
	maxHops int16
	cost    costParams
}

// NewNeighborhood returns a k-hop neighborhood kernel.
func NewNeighborhood(g *slottedpage.Graph, maxHops int) *Neighborhood {
	return &Neighborhood{g: g, maxHops: int16(maxHops), cost: costParams{laneCycles: 40, slotCycles: 10}}
}

// Name implements Kernel.
func (k *Neighborhood) Name() string { return "Neighborhood" }

// Class implements Kernel.
func (k *Neighborhood) Class() Class { return BFSLike }

// RAPerVertex implements Kernel.
func (k *Neighborhood) RAPerVertex() int64 { return 0 }

// NewState implements Kernel (the state is BFS's level vector).
func (k *Neighborhood) NewState() State {
	return &bfsState{lv: make([]int16, k.g.NumVertices())}
}

// Init implements Kernel.
func (k *Neighborhood) Init(st State, source uint64) {
	s := st.(*bfsState)
	for i := range s.lv {
		s.lv[i] = unvisited
	}
	s.lv[source] = 0
}

// BeginLevel implements Kernel.
func (k *Neighborhood) BeginLevel([]State, int32) {}

// RunSP expands frontier vertices but stops proposing pages once the next
// level would exceed the hop cap.
func (k *Neighborhood) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: same stability argument as BFS; the hop
// cap is a constant, baked into the op's PID (-1 = outside the ball).
func (k *Neighborhood) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *Neighborhood) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.lv[vid] != level {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.expand(a, s, adj, level, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP expands one large frontier vertex's page-local adjacency.
func (k *Neighborhood) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *Neighborhood) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *Neighborhood) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.lv[vid] == int16(a.Level) {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.expand(a, s, adj, int16(a.Level), &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *Neighborhood) expand(a *Args, s *bfsState, adj slottedpage.AdjView, level int16, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		rid := adj.At(i)
		nvid := k.g.VIDOf(rid)
		if !a.owns(nvid) {
			continue
		}
		if s.lv[nvid] == unvisited {
			if d != nil {
				pid := int32(-1)
				if level+1 < k.maxHops {
					pid = int32(rid.PID)
				}
				d.push(Op{Idx: nvid, Val: uint64(level + 1), PID: pid})
				continue
			}
			s.lv[nvid] = level + 1
			res.Updates++
			res.Active = true
			if level+1 < k.maxHops {
				// Only propose further expansion inside the ball.
				a.NextPIDs.Set(int(rid.PID))
			}
		}
	}
}

// Apply implements GatherKernel.
func (k *Neighborhood) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*bfsState)
	for _, op := range d.Ops {
		if s.lv[op.Idx] != unvisited {
			continue
		}
		s.lv[op.Idx] = int16(op.Val)
		res.Updates++
		res.Active = true
		if op.PID >= 0 {
			a.NextPIDs.Set(int(op.PID))
		}
	}
}

// MergeStates implements Kernel (minimum, as BFS).
func (k *Neighborhood) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*bfsState)
	for _, other := range sts[1:] {
		o := other.(*bfsState)
		for v, l := range o.lv {
			if l != unvisited && (base.lv[v] == unvisited || l < base.lv[v]) {
				base.lv[v] = l
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*bfsState).lv, base.lv)
	}
}

// EndIteration implements Kernel.
func (k *Neighborhood) EndIteration([]State, bool) bool { return false }

// Members exposes the vertices inside the ball with their hop distance
// (-1 = outside).
func (k *Neighborhood) Members(st State) []int16 { return st.(*bfsState).lv }

// CrossEdges counts the edges crossing a bipartition of the vertices —
// §3.3's "cross-edges" full-scan algorithm. Side is the partition
// predicate (e.g. shard membership); the kernel scans every adjacency
// entry once.
type CrossEdges struct {
	g    *slottedpage.Graph
	side func(v uint64) bool
	cost costParams
}

// NewCrossEdges returns a cross-edge counter for the given bipartition.
func NewCrossEdges(g *slottedpage.Graph, side func(v uint64) bool) *CrossEdges {
	return &CrossEdges{g: g, side: side, cost: costParams{laneCycles: 25, slotCycles: 10}}
}

type crossState struct {
	// count holds per-vertex crossing-edge tallies so ownership splitting
	// and replica merging stay trivial (sum at the end).
	count []int64
}

func (s *crossState) WABytes() int64 { return int64(len(s.count)) * 8 }
func (s *crossState) RABytes() int64 { return 0 }
func (s *crossState) Clone() State {
	return &crossState{count: append([]int64(nil), s.count...)}
}

// Name implements Kernel.
func (k *CrossEdges) Name() string { return "CrossEdges" }

// Class implements Kernel.
func (k *CrossEdges) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *CrossEdges) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *CrossEdges) NewState() State {
	return &crossState{count: make([]int64, k.g.NumVertices())}
}

// Init implements Kernel.
func (k *CrossEdges) Init(st State, _ uint64) {
	s := st.(*crossState)
	for i := range s.count {
		s.count[i] = 0
	}
}

// BeginLevel implements Kernel.
func (k *CrossEdges) BeginLevel([]State, int32) {}

// RunSP tallies crossing edges for the page's vertices.
func (k *CrossEdges) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: the bipartition predicate is pure, so
// the tally is a function of topology alone — every increment defers.
func (k *CrossEdges) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *CrossEdges) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*crossState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.tally(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	res.Active = true
	return res
}

// RunLP tallies one large vertex's page-local adjacency.
func (k *CrossEdges) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *CrossEdges) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *CrossEdges) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*crossState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	k.tally(a, s, vid, adj, &res, d)
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	res.Active = true
	return res
}

func (k *CrossEdges) tally(a *Args, s *crossState, vid uint64, adj slottedpage.AdjView, res *Result, d *Deferred) {
	if !a.owns(vid) {
		return
	}
	vs := k.side(vid)
	for i := 0; i < adj.Len(); i++ {
		if k.side(k.g.VIDOf(adj.At(i))) != vs {
			if d != nil {
				d.push(Op{Idx: vid})
				continue
			}
			s.count[vid]++
			res.Updates++
		}
	}
}

// Apply implements GatherKernel.
func (k *CrossEdges) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*crossState)
	for _, op := range d.Ops {
		s.count[op.Idx]++
		res.Updates++
	}
}

// MergeStates implements Kernel: per-vertex tallies are written by exactly
// one replica (the one that processed the vertex's pages), merged by sum
// (LP runs may split across replicas).
func (k *CrossEdges) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*crossState)
	for _, other := range sts[1:] {
		o := other.(*crossState)
		for v := range base.count {
			base.count[v] += o.count[v]
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*crossState).count, base.count)
	}
}

// EndIteration implements Kernel: one scan suffices.
func (k *CrossEdges) EndIteration([]State, bool) bool { return false }

// Total reports the crossing-edge count.
func (k *CrossEdges) Total(st State) int64 {
	s := st.(*crossState)
	var sum int64
	for _, c := range s.count {
		sum += c
	}
	return sum
}
