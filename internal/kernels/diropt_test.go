package kernels

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/slottedpage"
	"repro/internal/verify"
)

// TestDriverDirBFS drives the direction-optimizing BFS through the
// package-local framework loop in every mode, on the serial and the
// gather/apply path, against the float-free reference.
func TestDriverDirBFS(t *testing.T) {
	g, sp := driverGraph(t)
	want := verify.BFS(g, 0)
	for _, mode := range []DirMode{DirAuto, DirForcePush, DirForcePull} {
		for _, gather := range []bool{false, true} {
			k := NewDirBFS(sp)
			k.SetMode(mode)
			if k.Mode() != mode {
				t.Fatalf("Mode() = %v after SetMode(%v)", k.Mode(), mode)
			}
			st := driveMode(t, k, sp, 0, gather)
			got := k.Levels(st)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("mode=%v gather=%v: vertex %d level = %d, want %d",
						mode, gather, v, got[v], want[v])
				}
			}
		}
	}
}

// TestDriverDeltaSSSP drives delta-stepping SSSP on both paths against the
// float64 reference (exact: the synthetic weights and float32 adds make
// every path sum deterministic).
func TestDriverDeltaSSSP(t *testing.T) {
	g, sp := driverGraph(t)
	want := verify.SSSP(g, 0, Weight)
	for _, gather := range []bool{false, true} {
		k := NewDeltaSSSP(sp)
		st := driveMode(t, k, sp, 0, gather)
		got := k.Distances(st)
		for v := range want {
			if math.IsInf(want[v], 1) {
				if got[v] != float32(math.MaxFloat32) {
					t.Fatalf("gather=%v: vertex %d should be unreachable, got %v", gather, v, got[v])
				}
				continue
			}
			if float64(got[v]) != want[v] {
				t.Fatalf("gather=%v: vertex %d dist = %v, want %v", gather, v, got[v], want[v])
			}
		}
	}
}

// TestDriverGatherMatchesSerial runs every gatherable kernel through both
// driver paths and requires identical final state — the package-local
// statement of the stability + superset/recheck contract, independent of
// internal/core's engine.
func TestDriverGatherMatchesSerial(t *testing.T) {
	_, sp := driverGraph(t)
	cases := []struct {
		name string
		make func() Kernel
		src  uint64
	}{
		{"BFS", func() Kernel { return NewBFS(sp) }, 0},
		{"DirBFS", func() Kernel { return NewDirBFS(sp) }, 0},
		{"DeltaSSSP", func() Kernel { return NewDeltaSSSP(sp) }, 0},
		{"PageRank", func() Kernel { return NewPageRank(sp, 0.85, 4) }, 0},
		{"CC", func() Kernel { return NewCC(sp) }, 0},
		{"BC", func() Kernel { return NewBC(sp) }, 0},
		{"Neighborhood", func() Kernel { return NewNeighborhood(sp, 2) }, 0},
		{"CrossEdges", func() Kernel { return NewCrossEdges(sp, func(v uint64) bool { return v%2 == 0 }) }, 0},
		{"RWR", func() Kernel { return NewRWR(sp, 0.15, 4) }, 9},
		{"DegreeDist", func() Kernel { return NewDegreeDist(sp) }, 0},
		{"KCore", func() Kernel { return NewKCore(sp, 4) }, 0},
		{"Radius", func() Kernel { return NewRadius(sp, 4, 16) }, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serialK := tc.make()
			serial := driveMode(t, serialK, sp, tc.src, false)
			gatherK := tc.make()
			gathered := driveMode(t, gatherK, sp, tc.src, true)
			if !reflect.DeepEqual(serial, gathered) {
				t.Errorf("%s: gather/apply state differs from serial state", tc.name)
			}
		})
	}
}

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{DirNone: "none", DirPush: "push", DirPull: "pull", Direction(9): "none"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Direction(%d).String() = %q, want %q", d, got, want)
		}
	}
}

// TestRevAdj checks the host-side reverse CSR against a transpose built
// straight from the CSR source: same in-neighbor multisets, sorted by
// source VID, and out-degrees matching the forward graph.
func TestRevAdj(t *testing.T) {
	g, sp := driverGraph(t)
	rev := buildRevAdj(sp)
	tr := g.Transpose()
	for v := uint64(0); v < g.NumVertices(); v++ {
		if int(rev.outDeg[v]) != g.Degree(v) {
			t.Fatalf("vertex %d outDeg = %d, want %d", v, rev.outDeg[v], g.Degree(v))
		}
		got := append([]uint32(nil), rev.in(v)...)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("vertex %d in-neighbors not sorted: %v", v, got)
		}
		want := append([]uint32(nil), tr.Out(uint32(v))...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d in-neighbors = %v, want %v", v, got, want)
		}
	}
}

// TestMarkVertexPages: a vertex always marks its home page; a large vertex
// marks its whole LP run only when the direction expands adjacency.
func TestMarkVertexPages(t *testing.T) {
	_, sp := driverGraph(t)
	var small, large uint64
	foundLarge := false
	for v := uint64(0); v < sp.NumVertices(); v++ {
		if sp.Kind(sp.HomeOf(v).PID) == slottedpage.LargePage {
			large, foundLarge = v, true
		} else {
			small = v
		}
	}

	set := bitset.New(sp.NumPages())
	markVertexPages(sp, small, set, true)
	if !set.Get(int(sp.HomeOf(small).PID)) {
		t.Fatalf("small vertex %d home page not marked", small)
	}
	if n := set.Count(); n != 1 {
		t.Fatalf("small vertex marked %d pages, want 1", n)
	}

	if !foundLarge {
		t.Skip("test graph has no large vertex at this page scale")
	}
	home := sp.HomeOf(large).PID
	runLen := 0
	for pid := home; int(pid) < sp.NumPages() &&
		sp.Kind(pid) == slottedpage.LargePage && sp.RVT(pid).StartVID == large; pid++ {
		runLen++
	}
	expanded := bitset.New(sp.NumPages())
	markVertexPages(sp, large, expanded, true)
	if got := expanded.Count(); got != runLen {
		t.Errorf("expandLP marked %d pages of vertex %d's run, want %d", got, large, runLen)
	}
	homeOnly := bitset.New(sp.NumPages())
	markVertexPages(sp, large, homeOnly, false)
	if got := homeOnly.Count(); got != 1 {
		t.Errorf("home-only marking set %d pages, want 1", got)
	}
}

// TestDirOptKernelMetadata pins the identity surface the engine and the
// bench record key on.
func TestDirOptKernelMetadata(t *testing.T) {
	_, sp := driverGraph(t)
	bk := NewDirBFS(sp)
	if bk.Name() != "BFS-diropt" || bk.Class() != BFSLike || bk.RAPerVertex() != 0 {
		t.Errorf("DirBFS metadata: %q %v %d", bk.Name(), bk.Class(), bk.RAPerVertex())
	}
	sk := NewDeltaSSSP(sp)
	if sk.Name() != "SSSP-delta" || sk.Class() != BFSLike || sk.RAPerVertex() != 0 {
		t.Errorf("DeltaSSSP metadata: %q %v %d", sk.Name(), sk.Class(), sk.RAPerVertex())
	}
	// Termination belongs to PlanLevel for both.
	if bk.EndIteration(nil, true) || sk.EndIteration(nil, true) {
		t.Error("frontier kernels must not extend runs via EndIteration")
	}
	bk.BeginLevel(nil, 0)
	sk.BeginLevel(nil, 0)
}

// TestDeltaStateContract covers the delta-stepping state's size accounting
// and replica cloning.
func TestDeltaStateContract(t *testing.T) {
	_, sp := driverGraph(t)
	k := NewDeltaSSSP(sp)
	st := k.NewState()
	k.Init(st, 3)
	if st.WABytes() <= 0 || st.RABytes() != 0 {
		t.Errorf("WABytes=%d RABytes=%d", st.WABytes(), st.RABytes())
	}
	clone := st.Clone()
	if !reflect.DeepEqual(st, clone) {
		t.Error("clone differs from original")
	}
	// Mutating the clone must not alias the original.
	k.Init(clone, 5)
	if reflect.DeepEqual(st, clone) {
		t.Error("clone aliases original state")
	}
	// Merge keeps the minimum distance and its pending flag.
	a := st.(*deltaState)
	b := st.Clone().(*deltaState)
	a.dist[7], a.pend[7] = 4, false
	b.dist[7], b.pend[7] = 2, true
	k.MergeStates([]State{a, b})
	if a.dist[7] != 2 || !a.pend[7] {
		t.Errorf("merge kept dist=%v pend=%v, want 2/true", a.dist[7], a.pend[7])
	}
}
