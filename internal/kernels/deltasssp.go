package kernels

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/slottedpage"
)

// ssspDelta is the bucket width of DeltaSSSP. Weights span [1, 16]
// (kernels.Weight), so delta = 8 keeps buckets a couple of relaxation
// rounds deep without degenerating into Dijkstra (delta→0, one vertex per
// round) or Bellman-Ford (delta→∞, everything every round).
const ssspDelta = 8

// DeltaSSSP is delta-stepping single-source shortest paths as a
// FrontierKernel: pending vertices sit in distance buckets of width
// ssspDelta, and each superstep relaxes exactly the lowest non-empty
// bucket. The plan snapshots the distance vector before the phase, and
// every relaxation — serial or gathered — reads source distances from that
// snapshot, which is what makes the classic SSSP stability problem
// disappear: plain SSSP's frontier check (active == level) could be
// re-marked by an earlier page of the same phase, but DeltaSSSP's frontier
// flags and base distances are frozen at plan time, so gathers depend on
// nothing a same-phase apply mutates. Improvements found mid-phase simply
// re-pend the vertex for a later bucket round. That satisfies the gather
// contract's stability requirement (deferred.go property 1), and the
// superset+recheck property 2 holds because "nd < base distance" at gather
// time is implied by "nd < live distance" at apply time (live only
// decreases within a phase). The result is byte-identical to the serial
// path at every worker count — pinned by the differential and golden
// suites — and bitwise equal to plain SSSP's fixpoint: both converge to
// the same minimum over float32 path sums evaluated source→v.
type DeltaSSSP struct {
	g    *slottedpage.Graph
	cost costParams
	// frontier flags this level's bucket members and base snapshots the
	// distance vector; both are written by PlanLevel between supersteps
	// and read-only during the phase.
	frontier []bool
	base     []float32
}

// NewDeltaSSSP returns a delta-stepping SSSP kernel over g.
func NewDeltaSSSP(g *slottedpage.Graph) *DeltaSSSP {
	return &DeltaSSSP{g: g, cost: costParams{laneCycles: 50, slotCycles: 12}}
}

// deltaState is the attribute data: tentative distances plus a pending flag
// (the vertex improved and has not been bucket-relaxed since).
type deltaState struct {
	dist []float32
	pend []bool
}

func (s *deltaState) WABytes() int64 { return int64(len(s.dist)) * (4 + 1) }
func (s *deltaState) RABytes() int64 { return 0 }
func (s *deltaState) Clone() State {
	c := &deltaState{dist: make([]float32, len(s.dist)), pend: make([]bool, len(s.pend))}
	copy(c.dist, s.dist)
	copy(c.pend, s.pend)
	return c
}

// Name implements Kernel.
func (k *DeltaSSSP) Name() string { return "SSSP-delta" }

// Class implements Kernel.
func (k *DeltaSSSP) Class() Class { return BFSLike }

// RAPerVertex implements Kernel.
func (k *DeltaSSSP) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *DeltaSSSP) NewState() State {
	n := k.g.NumVertices()
	return &deltaState{dist: make([]float32, n), pend: make([]bool, n)}
}

// Init implements Kernel.
func (k *DeltaSSSP) Init(st State, source uint64) {
	s := st.(*deltaState)
	for i := range s.dist {
		s.dist[i] = inf
		s.pend[i] = false
	}
	s.dist[source] = 0
	s.pend[source] = true
}

// BeginLevel implements Kernel (PlanLevel carries the per-level setup).
func (k *DeltaSSSP) BeginLevel([]State, int32) {}

// PlanLevel implements FrontierKernel: pick the lowest non-empty distance
// bucket, freeze it as this level's frontier (clearing those pending flags
// in every replica), snapshot distances, and mark the frontier's pages.
// All relaxations push out-edges; DirPull never applies to SSSP here.
func (k *DeltaSSSP) PlanLevel(sts []State, level int32, next *bitset.Set) Direction {
	s := sts[0].(*deltaState)
	next.Reset()
	minBucket := int64(-1)
	for v, p := range s.pend {
		if !p {
			continue
		}
		b := int64(s.dist[v] / ssspDelta)
		if minBucket < 0 || b < minBucket {
			minBucket = b
		}
	}
	if minBucket < 0 {
		return DirNone
	}
	if k.frontier == nil {
		k.frontier = make([]bool, len(s.dist))
		k.base = make([]float32, len(s.dist))
	}
	copy(k.base, s.dist)
	for v := range k.frontier {
		on := s.pend[v] && int64(s.dist[v]/ssspDelta) == minBucket
		k.frontier[v] = on
		if on {
			for _, st := range sts {
				st.(*deltaState).pend[v] = false
			}
			markVertexPages(k.g, uint64(v), next, true)
		}
	}
	return DirPush
}

// RunSP relaxes the out-edges of the page's frontier vertices against the
// plan's distance snapshot.
func (k *DeltaSSSP) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: frontier flags and base distances are
// frozen for the phase, so cycles and edges are exact; relaxations defer.
func (k *DeltaSSSP) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *DeltaSSSP) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*deltaState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if !k.frontier[vid] {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.relax(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP relaxes the page-local portion of one frontier vertex's adjacency.
func (k *DeltaSSSP) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *DeltaSSSP) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *DeltaSSSP) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*deltaState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if k.frontier[vid] {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.relax(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

// relax proposes nd = base[vid] + w(vid, n) for each owned out-neighbor.
// The serial commit and the deferred path both evaluate nd from the
// snapshot, so their proposed values are identical; only the accept test
// differs in when it runs (here against live dist, or re-run in Apply).
func (k *DeltaSSSP) relax(a *Args, s *deltaState, vid uint64, adj slottedpage.AdjView, res *Result, d *Deferred) {
	base := k.base[vid]
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if !a.owns(nvid) {
			continue
		}
		nd := base + Weight(vid, nvid)
		if d != nil {
			// Superset test against the snapshot; Apply re-tests live.
			if nd < k.base[nvid] {
				d.push(Op{Idx: nvid, Val: uint64(math.Float32bits(nd)), PID: -1})
			}
			continue
		}
		if nd < s.dist[nvid] {
			s.dist[nvid] = nd
			s.pend[nvid] = true
			res.Updates++
			res.Active = true
		}
	}
}

// Apply implements GatherKernel: re-test each proposed distance against
// live state and commit improvements in recorded order.
func (k *DeltaSSSP) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*deltaState)
	for _, op := range d.Ops {
		nd := math.Float32frombits(uint32(op.Val))
		if nd < s.dist[op.Idx] {
			s.dist[op.Idx] = nd
			s.pend[op.Idx] = true
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates implements Kernel: the shorter distance wins and carries its
// pending flag; at equal distance the pending flags union, so a replica
// that improved a vertex to a distance another replica already held cannot
// lose the re-relaxation.
func (k *DeltaSSSP) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*deltaState)
	for _, other := range sts[1:] {
		o := other.(*deltaState)
		for v := range base.dist {
			switch {
			case o.dist[v] < base.dist[v]:
				base.dist[v] = o.dist[v]
				base.pend[v] = o.pend[v]
			case o.dist[v] == base.dist[v] && o.pend[v]:
				base.pend[v] = true
			}
		}
	}
	for _, other := range sts[1:] {
		o := other.(*deltaState)
		copy(o.dist, base.dist)
		copy(o.pend, base.pend)
	}
}

// EndIteration implements Kernel: termination belongs to PlanLevel (no
// pending vertex in any bucket).
func (k *DeltaSSSP) EndIteration([]State, bool) bool { return false }

// Distances exposes the result vector; unreachable vertices hold +Inf
// (math.MaxFloat32).
func (k *DeltaSSSP) Distances(st State) []float32 { return st.(*deltaState).dist }
