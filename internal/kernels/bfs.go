package kernels

import "repro/internal/slottedpage"

// BFS implements the paper's K_BFS_SP and K_BFS_LP kernels (Algorithms 2
// and 3): level-synchronous breadth-first search whose only attribute
// vector is LV, the per-vertex traversal level.
type BFS struct {
	g    *slottedpage.Graph
	cost costParams
}

// NewBFS returns a BFS kernel over g.
func NewBFS(g *slottedpage.Graph) *BFS {
	return &BFS{g: g, cost: costParams{laneCycles: 40, slotCycles: 10}}
}

// unvisited marks a vertex not yet reached (the paper's NULL level).
const unvisited = -1

type bfsState struct {
	lv []int16
}

func (s *bfsState) WABytes() int64 { return int64(len(s.lv)) * 2 }
func (s *bfsState) RABytes() int64 { return 0 }
func (s *bfsState) Clone() State {
	c := &bfsState{lv: make([]int16, len(s.lv))}
	copy(c.lv, s.lv)
	return c
}

// Name implements Kernel.
func (k *BFS) Name() string { return "BFS" }

// Class implements Kernel: BFS streams only frontier pages.
func (k *BFS) Class() Class { return BFSLike }

// RAPerVertex implements Kernel: BFS has no read-only attribute vector.
func (k *BFS) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *BFS) NewState() State {
	return &bfsState{lv: make([]int16, k.g.NumVertices())}
}

// Init implements Kernel: all levels NULL except the source at 0.
func (k *BFS) Init(st State, source uint64) {
	s := st.(*bfsState)
	for i := range s.lv {
		s.lv[i] = unvisited
	}
	s.lv[source] = 0
}

// BeginLevel implements Kernel (no per-level preparation).
func (k *BFS) BeginLevel([]State, int32) {}

// RunSP implements K_BFS_SP (Algorithm 2): each warp takes one slot; if the
// vertex is on the current frontier its adjacency expands, discovering
// unvisited neighbors and marking their pages in the local nextPIDSet.
func (k *BFS) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: the frontier check (lv == level) and
// lane counts are phase-stable (same-phase writes only move vertices from
// unvisited to level+1), so cycles and edges are exact; discoveries defer.
func (k *BFS) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *BFS) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.lv[vid] != level {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.expand(a, s, adj, level, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP implements K_BFS_LP (Algorithm 3): the page holds one frontier
// vertex's partial adjacency, expanded by many warps together.
func (k *BFS) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *BFS) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *BFS) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*bfsState)
	vid, _ := a.Page.Slot(0)
	var res Result
	var lanes laneAcc
	if s.lv[vid] == int16(a.Level) {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.expand(a, s, adj, int16(a.Level), &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

// expand is the expand_warp device routine: visit every adjacency entry,
// set LV and the next page set for undiscovered neighbors. With d non-nil
// the discoveries are deferred instead of committed: unvisited-at-gather is
// a superset of unvisited-at-apply, and Apply re-tests.
func (k *BFS) expand(a *Args, s *bfsState, adj slottedpage.AdjView, level int16, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		rid := adj.At(i)
		nvid := k.g.VIDOf(rid)
		if !a.owns(nvid) {
			continue
		}
		if s.lv[nvid] == unvisited {
			if d != nil {
				d.push(Op{Idx: nvid, Val: uint64(level + 1), PID: int32(rid.PID)})
				continue
			}
			s.lv[nvid] = level + 1
			a.NextPIDs.Set(int(rid.PID))
			res.Updates++
			res.Active = true
		}
	}
}

// Apply implements GatherKernel: commit still-unvisited discoveries in
// recorded order.
func (k *BFS) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*bfsState)
	for _, op := range d.Ops {
		if s.lv[op.Idx] != unvisited {
			continue
		}
		s.lv[op.Idx] = int16(op.Val)
		a.NextPIDs.Set(int(op.PID))
		res.Updates++
		res.Active = true
	}
}

// MergeStates implements Kernel: levels merge by minimum (an earlier
// discovery wins; unvisited is the identity).
func (k *BFS) MergeStates(sts []State) { mergeLevelStates(sts) }

// mergeLevelStates min-merges bfsState replicas and makes them identical
// again; shared between BFS and DirBFS.
func mergeLevelStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*bfsState)
	for _, other := range sts[1:] {
		o := other.(*bfsState)
		for v, l := range o.lv {
			if l != unvisited && (base.lv[v] == unvisited || l < base.lv[v]) {
				base.lv[v] = l
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*bfsState).lv, base.lv)
	}
}

// EndIteration implements Kernel: BFS terminates on an empty nextPIDSet,
// not by iteration count.
func (k *BFS) EndIteration([]State, bool) bool { return false }

// Levels exposes the result vector of a finished run.
func (k *BFS) Levels(st State) []int16 { return st.(*bfsState).lv }
