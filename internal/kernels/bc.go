package kernels

import (
	"math"

	"repro/internal/slottedpage"
)

// BC implements single-source betweenness centrality (Brandes) as the paper
// evaluates it in Appendix D ("the single node mode"): a forward
// level-synchronous traversal counting shortest paths (sigma), then a
// backward sweep over the recorded levels accumulating dependencies
// (delta). Both phases are BFS-like: only pages holding the level's
// vertices stream.
type BC struct {
	g    *slottedpage.Graph
	cost costParams
}

// NewBC returns a betweenness-centrality kernel over g.
func NewBC(g *slottedpage.Graph) *BC {
	return &BC{g: g, cost: costParams{laneCycles: 55, slotCycles: 15}}
}

type bcState struct {
	dist  []int16
	sigma []float64
	delta []float64
	// Snapshots taken at BeginLevel allow the additive sigma/delta merges
	// Strategy-P needs: replicas start a level identical, so the merged
	// value is snapshot + sum of per-replica deltas.
	snapSigma []float64
	snapDelta []float64
}

func (s *bcState) WABytes() int64 { return int64(len(s.dist)) * (2 + 8 + 8) }
func (s *bcState) RABytes() int64 { return 0 }
func (s *bcState) Clone() State {
	c := &bcState{
		dist:      append([]int16(nil), s.dist...),
		sigma:     append([]float64(nil), s.sigma...),
		delta:     append([]float64(nil), s.delta...),
		snapSigma: append([]float64(nil), s.snapSigma...),
		snapDelta: append([]float64(nil), s.snapDelta...),
	}
	return c
}

// Name implements Kernel.
func (k *BC) Name() string { return "BC" }

// Class implements Kernel.
func (k *BC) Class() Class { return BFSLike }

// RAPerVertex implements Kernel.
func (k *BC) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *BC) NewState() State {
	n := k.g.NumVertices()
	return &bcState{
		dist:  make([]int16, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
	}
}

// Init implements Kernel.
func (k *BC) Init(st State, source uint64) {
	s := st.(*bcState)
	for i := range s.dist {
		s.dist[i] = unvisited
		s.sigma[i] = 0
		s.delta[i] = 0
	}
	s.dist[source] = 0
	s.sigma[source] = 1
}

// BeginLevel implements Kernel: with multiple replicas, snapshot the
// additive vectors so MergeStates can sum per-replica contributions.
func (k *BC) BeginLevel(sts []State, _ int32) {
	if len(sts) < 2 {
		return
	}
	for _, st := range sts {
		s := st.(*bcState)
		s.snapSigma = append(s.snapSigma[:0], s.sigma...)
		s.snapDelta = append(s.snapDelta[:0], s.delta...)
	}
}

// BeginBackward implements BackwardKernel (snapshots are refreshed per
// level by BeginLevel; nothing else to prepare).
func (k *BC) BeginBackward([]State, int32) {}

// RunSP is the forward kernel: discover neighbors and accumulate shortest-
// path counts across frontier edges.
func (k *BC) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: the frontier check reads dist at the
// current level and sigma adds read sigma of frontier vertices — neither is
// mutated by same-phase applies (writes touch level+1 vertices only). A
// neighbor's dist is in {unvisited, level+1} at gather iff it is at apply
// (the only same-phase transition is unvisited→level+1), so Apply can
// re-run the serial discover-then-accumulate pair exactly.
func (k *BC) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *BC) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*bcState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.dist[vid] != level {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.forward(a, s, vid, adj, level, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP is the forward kernel for a large vertex's page-local adjacency.
func (k *BC) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *BC) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *BC) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*bcState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.dist[vid] == int16(a.Level) {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.forward(a, s, vid, adj, int16(a.Level), &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *BC) forward(a *Args, s *bcState, vid uint64, adj slottedpage.AdjView, level int16, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		rid := adj.At(i)
		nvid := k.g.VIDOf(rid)
		if !a.owns(nvid) {
			continue
		}
		if d != nil {
			if s.dist[nvid] == unvisited || s.dist[nvid] == level+1 {
				d.push(Op{Idx: nvid, Val: math.Float64bits(s.sigma[vid]), PID: int32(rid.PID)})
			}
			continue
		}
		if s.dist[nvid] == unvisited {
			s.dist[nvid] = level + 1
			a.NextPIDs.Set(int(rid.PID))
			res.Active = true
		}
		if s.dist[nvid] == level+1 {
			s.sigma[nvid] += s.sigma[vid]
			res.Updates++
		}
	}
}

// Apply implements GatherKernel: replay the serial discover/accumulate pair
// per deferred edge against live state.
func (k *BC) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*bcState)
	level := int16(a.Level)
	for _, op := range d.Ops {
		if s.dist[op.Idx] == unvisited {
			s.dist[op.Idx] = level + 1
			a.NextPIDs.Set(int(op.PID))
			res.Active = true
		}
		if s.dist[op.Idx] == level+1 {
			s.sigma[op.Idx] += math.Float64frombits(op.Val)
			res.Updates++
		}
	}
}

// RunSPBack is the backward kernel: vertices at the current level pull
// dependencies from their successors one level deeper (Brandes'
// delta(v) = sum over successors w of sigma(v)/sigma(w) * (1 + delta(w))).
func (k *BC) RunSPBack(a *Args) Result { return k.runSPBack(a, nil) }

// GatherSPBack implements GatherBackwardKernel: the backward sweep reads
// dist/sigma (frozen after the forward pass) and delta of level+1 vertices,
// while it writes delta of level vertices — reads and writes are on
// disjoint levels, so every term is phase-stable and defers exactly.
func (k *BC) GatherSPBack(a *Args, d *Deferred) Result { return k.runSPBack(a, d) }

func (k *BC) runSPBack(a *Args, d *Deferred) Result {
	s := a.State.(*bcState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	level := int16(a.Level)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.dist[vid] != level || !a.owns(vid) {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.backward(s, vid, adj, level, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLPBack is the backward kernel for a large vertex's page-local
// adjacency.
func (k *BC) RunLPBack(a *Args) Result { return k.runLPBack(a, nil) }

// GatherLPBack implements GatherBackwardKernel.
func (k *BC) GatherLPBack(a *Args, d *Deferred) Result { return k.runLPBack(a, d) }

func (k *BC) runLPBack(a *Args, d *Deferred) Result {
	s := a.State.(*bcState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.dist[vid] == int16(a.Level) && a.owns(vid) {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.backward(s, vid, adj, int16(a.Level), &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *BC) backward(s *bcState, vid uint64, adj slottedpage.AdjView, level int16, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if s.dist[nvid] == level+1 && s.sigma[nvid] > 0 {
			if d != nil {
				d.push(Op{Idx: vid, Val: math.Float64bits(s.sigma[vid] / s.sigma[nvid] * (1 + s.delta[nvid]))})
				continue
			}
			s.delta[vid] += s.sigma[vid] / s.sigma[nvid] * (1 + s.delta[nvid])
			res.Updates++
			res.Active = true
		}
	}
}

// ApplyBack implements GatherBackwardKernel: replay the dependency adds in
// recorded order.
func (k *BC) ApplyBack(a *Args, d *Deferred, res *Result) {
	s := a.State.(*bcState)
	for _, op := range d.Ops {
		s.delta[op.Idx] += math.Float64frombits(op.Val)
		res.Updates++
		res.Active = true
	}
}

// MergeStates implements Kernel: distances merge by minimum; sigma and
// delta merge additively relative to the BeginLevel snapshots.
func (k *BC) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*bcState)
	for _, other := range sts[1:] {
		o := other.(*bcState)
		for v := range base.dist {
			if o.dist[v] != unvisited && (base.dist[v] == unvisited || o.dist[v] < base.dist[v]) {
				base.dist[v] = o.dist[v]
			}
			base.sigma[v] += o.sigma[v] - o.snapSigma[v]
			base.delta[v] += o.delta[v] - o.snapDelta[v]
		}
	}
	for _, other := range sts[1:] {
		o := other.(*bcState)
		copy(o.dist, base.dist)
		copy(o.sigma, base.sigma)
		copy(o.delta, base.delta)
	}
}

// EndIteration implements Kernel.
func (k *BC) EndIteration([]State, bool) bool { return false }

// Centrality exposes the dependency scores; the source's own score is zero
// by definition.
func (k *BC) Centrality(st State, source uint64) []float64 {
	s := st.(*bcState)
	out := append([]float64(nil), s.delta...)
	out[source] = 0
	return out
}
