package kernels

import (
	"math"

	"repro/internal/slottedpage"
)

// This file implements the further algorithms the paper's §3.3 lists in its
// two classes beyond the evaluated five: Random Walk with Restart and
// degree distribution (PageRank-like full scans) and K-core decomposition
// (iterative full scans).

// RWR implements Random Walk with Restart: PageRank's iteration with the
// teleport mass concentrated on a single query vertex. It reuses the
// K_PR-style scatter kernels; only the restart vector differs.
type RWR struct {
	g          *slottedpage.Graph
	restart    float64
	iterations int32
	lpDeg      map[uint64]int
	cost       costParams
}

// NewRWR returns an RWR kernel with restart probability c (typically 0.15)
// running the given iteration count.
func NewRWR(g *slottedpage.Graph, c float64, iterations int) *RWR {
	return &RWR{
		g:          g,
		restart:    c,
		iterations: int32(iterations),
		lpDeg:      lpDegrees(g),
		cost:       costParams{laneCycles: 160, slotCycles: 50},
	}
}

type rwrState struct {
	prev   []float32
	next   []float32
	source uint64
	iter   int32
}

func (s *rwrState) WABytes() int64 { return int64(len(s.next)) * 4 }
func (s *rwrState) RABytes() int64 { return int64(len(s.prev)) * 4 }
func (s *rwrState) Clone() State {
	c := &rwrState{
		prev:   append([]float32(nil), s.prev...),
		next:   append([]float32(nil), s.next...),
		source: s.source,
		iter:   s.iter,
	}
	return c
}

// restartMass is the teleport value of vertex v for a walk restarting at
// src.
func (k *RWR) restartMass(v, src uint64) float32 {
	if v == src {
		return float32(k.restart)
	}
	return 0
}

// Name implements Kernel.
func (k *RWR) Name() string { return "RWR" }

// Class implements Kernel.
func (k *RWR) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *RWR) RAPerVertex() int64 { return 4 }

// NewState implements Kernel.
func (k *RWR) NewState() State {
	n := k.g.NumVertices()
	return &rwrState{prev: make([]float32, n), next: make([]float32, n)}
}

// Init implements Kernel: all mass starts at the query vertex.
func (k *RWR) Init(st State, source uint64) {
	s := st.(*rwrState)
	s.source = source
	for i := range s.prev {
		s.prev[i] = 0
		s.next[i] = k.restartMass(uint64(i), source)
	}
	s.prev[source] = 1
	s.iter = 0
}

// BeginLevel implements Kernel.
func (k *RWR) BeginLevel([]State, int32) {}

// RunSP scatters (1-c) * prev[v]/deg(v) along out-edges.
func (k *RWR) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: contributions read only prev (stable
// for the iteration); Apply replays the float32 adds in serial order.
func (k *RWR) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *RWR) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*rwrState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	walk := float32(1 - k.restart)
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		deg := adj.Len()
		lanes.add(deg)
		if deg == 0 || s.prev[vid] == 0 {
			continue
		}
		contrib := walk * s.prev[vid] / float32(deg)
		k.scatter(a, s, adj, contrib, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	res.Active = true
	return res
}

// RunLP scatters one large vertex's page-local portion.
func (k *RWR) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *RWR) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *RWR) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*rwrState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	if s.prev[vid] != 0 {
		contrib := float32(1-k.restart) * s.prev[vid] / float32(k.lpDeg[vid])
		k.scatter(a, s, adj, contrib, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	res.Active = true
	return res
}

func (k *RWR) scatter(a *Args, s *rwrState, adj slottedpage.AdjView, contrib float32, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if !a.owns(nvid) {
			continue
		}
		if d != nil {
			d.push(Op{Idx: nvid, Val: uint64(math.Float32bits(contrib))})
			continue
		}
		s.next[nvid] += contrib
		res.Updates++
	}
}

// Apply implements GatherKernel.
func (k *RWR) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*rwrState)
	for _, op := range d.Ops {
		s.next[op.Idx] += math.Float32frombits(uint32(op.Val))
		res.Updates++
	}
}

// MergeStates implements Kernel: base-relative additive merge, like
// PageRank's.
func (k *RWR) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	merged := sts[0].(*rwrState)
	for _, other := range sts[1:] {
		o := other.(*rwrState)
		for v := range merged.next {
			merged.next[v] += o.next[v] - k.restartMass(uint64(v), o.source)
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*rwrState).next, merged.next)
	}
}

// EndIteration implements Kernel.
func (k *RWR) EndIteration(sts []State, _ bool) bool {
	for _, st := range sts {
		s := st.(*rwrState)
		copy(s.prev, s.next)
		for i := range s.next {
			s.next[i] = k.restartMass(uint64(i), s.source)
		}
		s.iter++
	}
	return sts[0].(*rwrState).iter < k.iterations
}

// Scores exposes the final proximity vector.
func (k *RWR) Scores(st State) []float32 { return st.(*rwrState).prev }

// DegreeDist computes per-vertex out-degrees in one full scan — the
// simplest PageRank-like algorithm the paper lists. Degrees come straight
// from the records' ADJLIST_SZ fields (summed across an LP run).
type DegreeDist struct {
	g    *slottedpage.Graph
	cost costParams
}

// NewDegreeDist returns the kernel.
func NewDegreeDist(g *slottedpage.Graph) *DegreeDist {
	return &DegreeDist{g: g, cost: costParams{laneCycles: 0, slotCycles: 15}}
}

type degState struct {
	deg []int32
}

func (s *degState) WABytes() int64 { return int64(len(s.deg)) * 4 }
func (s *degState) RABytes() int64 { return 0 }
func (s *degState) Clone() State {
	return &degState{deg: append([]int32(nil), s.deg...)}
}

// Name implements Kernel.
func (k *DegreeDist) Name() string { return "DegreeDist" }

// Class implements Kernel.
func (k *DegreeDist) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *DegreeDist) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *DegreeDist) NewState() State {
	return &degState{deg: make([]int32, k.g.NumVertices())}
}

// Init implements Kernel.
func (k *DegreeDist) Init(st State, _ uint64) {
	s := st.(*degState)
	for i := range s.deg {
		s.deg[i] = 0
	}
}

// BeginLevel implements Kernel.
func (k *DegreeDist) BeginLevel([]State, int32) {}

// degOpSet and degOpAdd discriminate DegreeDist's two deferred writes: SP
// pages set a small vertex's degree outright; LP pages accumulate one large
// vertex's page-local partial counts.
const (
	degOpSet OpKind = iota
	degOpAdd
)

// RunSP records each slot's ADJLIST_SZ.
func (k *DegreeDist) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: degrees come straight from topology, so
// every write defers unconditionally.
func (k *DegreeDist) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *DegreeDist) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*degState)
	pg := a.Page
	n := pg.NumSlots()
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if !a.owns(vid) {
			continue
		}
		if d != nil {
			d.push(Op{Idx: vid, Val: uint64(pg.Adj(slot).Len()), Kind: degOpSet})
			continue
		}
		s.deg[vid] = int32(pg.Adj(slot).Len())
		res.Updates++
	}
	var lanes laneAcc
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	res.Active = true
	return res
}

// RunLP accumulates an LP run's page-local counts.
func (k *DegreeDist) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *DegreeDist) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *DegreeDist) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*degState)
	vid, _ := a.Page.Slot(0)
	var res Result
	if a.owns(vid) {
		if d != nil {
			d.push(Op{Idx: vid, Val: uint64(a.Page.Adj(0).Len()), Kind: degOpAdd})
		} else {
			s.deg[vid] += int32(a.Page.Adj(0).Len())
			res.Updates++
		}
	}
	var lanes laneAcc
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	res.Active = true
	return res
}

// Apply implements GatherKernel.
func (k *DegreeDist) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*degState)
	for _, op := range d.Ops {
		if op.Kind == degOpAdd {
			s.deg[op.Idx] += int32(op.Val)
		} else {
			s.deg[op.Idx] = int32(op.Val)
		}
		res.Updates++
	}
}

// MergeStates implements Kernel: each replica touched disjoint pages, so
// degrees merge by maximum (unwritten entries are zero)... except LP runs,
// whose partial sums land on different replicas — so merge by sum over
// large vertices and by max elsewhere.
func (k *DegreeDist) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	large := map[uint64]bool{}
	for _, pid := range k.g.LPIDs() {
		large[k.g.RVT(pid).StartVID] = true
	}
	base := sts[0].(*degState)
	for _, other := range sts[1:] {
		o := other.(*degState)
		for v := range base.deg {
			if large[uint64(v)] {
				base.deg[v] += o.deg[v]
			} else if o.deg[v] > base.deg[v] {
				base.deg[v] = o.deg[v]
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*degState).deg, base.deg)
	}
}

// EndIteration implements Kernel: one scan suffices.
func (k *DegreeDist) EndIteration([]State, bool) bool { return false }

// Degrees exposes the per-vertex out-degrees.
func (k *DegreeDist) Degrees(st State) []int32 { return st.(*degState).deg }

// Histogram folds the degrees into counts[d] = #vertices of degree d.
func (k *DegreeDist) Histogram(st State) []int64 {
	s := st.(*degState)
	max := int32(0)
	for _, d := range s.deg {
		if d > max {
			max = d
		}
	}
	h := make([]int64, max+1)
	for _, d := range s.deg {
		h[d]++
	}
	return h
}

// KCore computes the K-core membership of every vertex over the
// *undirected* view of the graph: iteratively peel vertices with fewer
// than K alive neighbors (counting both edge directions) until a fixpoint.
// Each peel round is a full scan, making this PageRank-like.
type KCore struct {
	g    *slottedpage.Graph
	K    int32
	cost costParams
}

// NewKCore returns a K-core kernel for the given K.
func NewKCore(g *slottedpage.Graph, k int) *KCore {
	return &KCore{g: g, K: int32(k), cost: costParams{laneCycles: 60, slotCycles: 20}}
}

type kcoreState struct {
	alive []bool
	count []int32 // alive-neighbor counts accumulated this round
}

func (s *kcoreState) WABytes() int64 { return int64(len(s.alive)) * (1 + 4) }
func (s *kcoreState) RABytes() int64 { return 0 }
func (s *kcoreState) Clone() State {
	return &kcoreState{
		alive: append([]bool(nil), s.alive...),
		count: append([]int32(nil), s.count...),
	}
}

// Name implements Kernel.
func (k *KCore) Name() string { return "KCore" }

// Class implements Kernel.
func (k *KCore) Class() Class { return PageRankLike }

// RAPerVertex implements Kernel.
func (k *KCore) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *KCore) NewState() State {
	n := k.g.NumVertices()
	return &kcoreState{alive: make([]bool, n), count: make([]int32, n)}
}

// Init implements Kernel.
func (k *KCore) Init(st State, _ uint64) {
	s := st.(*kcoreState)
	for i := range s.alive {
		s.alive[i] = true
		s.count[i] = 0
	}
}

// BeginLevel implements Kernel: reset this round's counts.
func (k *KCore) BeginLevel(sts []State, _ int32) {
	for _, st := range sts {
		s := st.(*kcoreState)
		for i := range s.count {
			s.count[i] = 0
		}
	}
}

// RunSP counts alive neighbors across each edge in both directions.
func (k *KCore) RunSP(a *Args) Result { return k.runSP(a, nil) }

// GatherSP implements GatherKernel: alive flags only change in
// EndIteration, never mid-phase, so the tallies defer unconditionally.
func (k *KCore) GatherSP(a *Args, d *Deferred) Result { return k.runSP(a, d) }

func (k *KCore) runSP(a *Args, d *Deferred) Result {
	s := a.State.(*kcoreState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.tally(a, s, vid, adj, &res, d)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	res.Active = true
	return res
}

// RunLP counts one large vertex's page-local adjacency.
func (k *KCore) RunLP(a *Args) Result { return k.runLP(a, nil) }

// GatherLP implements GatherKernel.
func (k *KCore) GatherLP(a *Args, d *Deferred) Result { return k.runLP(a, d) }

func (k *KCore) runLP(a *Args, d *Deferred) Result {
	s := a.State.(*kcoreState)
	vid, _ := a.Page.Slot(0)
	adj := a.Page.Adj(0)
	var lanes laneAcc
	lanes.add(adj.Len())
	var res Result
	k.tally(a, s, vid, adj, &res, d)
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	res.Active = true
	return res
}

func (k *KCore) tally(a *Args, s *kcoreState, vid uint64, adj slottedpage.AdjView, res *Result, d *Deferred) {
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		if s.alive[vid] && a.owns(nvid) {
			if d != nil {
				d.push(Op{Idx: nvid})
			} else {
				s.count[nvid]++
				res.Updates++
			}
		}
		if s.alive[nvid] && a.owns(vid) {
			if d != nil {
				d.push(Op{Idx: vid})
			} else {
				s.count[vid]++
				res.Updates++
			}
		}
	}
}

// Apply implements GatherKernel.
func (k *KCore) Apply(a *Args, d *Deferred, res *Result) {
	s := a.State.(*kcoreState)
	for _, op := range d.Ops {
		s.count[op.Idx]++
		res.Updates++
	}
}

// MergeStates implements Kernel: counts are additive per superstep (each
// replica saw disjoint pages); alive flags are identical going in.
func (k *KCore) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*kcoreState)
	for _, other := range sts[1:] {
		o := other.(*kcoreState)
		for v := range base.count {
			base.count[v] += o.count[v]
		}
	}
	for _, other := range sts[1:] {
		o := other.(*kcoreState)
		copy(o.count, base.count)
	}
}

// EndIteration implements Kernel: peel under-degree vertices; another
// round runs if anything was peeled.
func (k *KCore) EndIteration(sts []State, _ bool) bool {
	peeled := false
	base := sts[0].(*kcoreState)
	for v := range base.alive {
		if base.alive[v] && base.count[v] < k.K {
			base.alive[v] = false
			peeled = true
		}
	}
	for _, st := range sts[1:] {
		copy(st.(*kcoreState).alive, base.alive)
	}
	return peeled
}

// InCore exposes the membership vector: true means the vertex survives in
// the K-core.
func (k *KCore) InCore(st State) []bool { return st.(*kcoreState).alive }
