package kernels

import (
	"math"

	"repro/internal/slottedpage"
)

// SSSP implements single-source shortest paths as a frontier-driven
// Bellman-Ford, the BFS-like formulation the paper's §3.3 groups it under:
// a vertex whose distance improved at level L relaxes its out-edges at
// level L+1, and only the pages holding active vertices stream.
//
// Edge weights come from kernels.Weight (deterministic, derived from the
// endpoints) because the slotted page format carries topology only.
//
// This plain formulation deliberately does NOT implement GatherKernel (see
// deferred.go): a relaxation can improve a vertex that is *on the current
// frontier* (re-marking it active for this very level via
// active[nvid] = Level+1 while dist keeps improving), so a later page's
// frontier check — and with it the page's simulated cycle/edge counts —
// depends on earlier pages' same-phase writes, violating the gather
// contract's stability requirement. It therefore always runs on the serial
// path and survives as the reference oracle. DeltaSSSP (deltasssp.go) is
// the parallelizable restatement: the frontier becomes the lowest
// non-empty delta-stepping distance bucket, frozen — together with a
// distance snapshot every relaxation reads — by PlanLevel before the phase
// starts, so gathers depend on nothing a same-phase apply mutates and the
// kernel rides the HostWorkers gather/apply path with byte-identical
// results.
type SSSP struct {
	g    *slottedpage.Graph
	cost costParams
}

// NewSSSP returns an SSSP kernel over g.
func NewSSSP(g *slottedpage.Graph) *SSSP {
	return &SSSP{g: g, cost: costParams{laneCycles: 50, slotCycles: 12}}
}

const inf = float32(math.MaxFloat32)

type ssspState struct {
	dist   []float32
	active []int32 // level at which the vertex last improved
}

func (s *ssspState) WABytes() int64 { return int64(len(s.dist)) * (4 + 4) }
func (s *ssspState) RABytes() int64 { return 0 }
func (s *ssspState) Clone() State {
	c := &ssspState{dist: make([]float32, len(s.dist)), active: make([]int32, len(s.active))}
	copy(c.dist, s.dist)
	copy(c.active, s.active)
	return c
}

// Name implements Kernel.
func (k *SSSP) Name() string { return "SSSP" }

// Class implements Kernel.
func (k *SSSP) Class() Class { return BFSLike }

// RAPerVertex implements Kernel.
func (k *SSSP) RAPerVertex() int64 { return 0 }

// NewState implements Kernel.
func (k *SSSP) NewState() State {
	n := k.g.NumVertices()
	return &ssspState{dist: make([]float32, n), active: make([]int32, n)}
}

// Init implements Kernel.
func (k *SSSP) Init(st State, source uint64) {
	s := st.(*ssspState)
	for i := range s.dist {
		s.dist[i] = inf
		s.active[i] = -1
	}
	s.dist[source] = 0
	s.active[source] = 0
}

// BeginLevel implements Kernel.
func (k *SSSP) BeginLevel([]State, int32) {}

// RunSP relaxes the out-edges of every vertex in the page that improved at
// the current level.
func (k *SSSP) RunSP(a *Args) Result {
	s := a.State.(*ssspState)
	pg := a.Page
	n := pg.NumSlots()
	var lanes laneAcc
	var res Result
	for slot := 0; slot < n; slot++ {
		vid, _ := pg.Slot(slot)
		if s.active[vid] != a.Level {
			continue
		}
		adj := pg.Adj(slot)
		lanes.add(adj.Len())
		k.relax(a, s, vid, adj, &res)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(int64(n), &lanes, a.Tech)
	return res
}

// RunLP relaxes the page-local portion of one active vertex's adjacency.
func (k *SSSP) RunLP(a *Args) Result {
	s := a.State.(*ssspState)
	vid, _ := a.Page.Slot(0)
	var lanes laneAcc
	var res Result
	if s.active[vid] == a.Level {
		adj := a.Page.Adj(0)
		lanes.add(adj.Len())
		k.relax(a, s, vid, adj, &res)
	}
	res.Edges = lanes.edges
	res.Cycles = k.cost.cycles(1, &lanes, a.Tech)
	return res
}

func (k *SSSP) relax(a *Args, s *ssspState, vid uint64, adj slottedpage.AdjView, res *Result) {
	base := s.dist[vid]
	for i := 0; i < adj.Len(); i++ {
		rid := adj.At(i)
		nvid := k.g.VIDOf(rid)
		if !a.owns(nvid) {
			continue
		}
		nd := base + Weight(vid, nvid)
		if nd < s.dist[nvid] {
			s.dist[nvid] = nd
			s.active[nvid] = a.Level + 1
			a.NextPIDs.Set(int(rid.PID))
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates implements Kernel: the shorter distance wins; its activity
// mark comes along so the owning replica's frontier survives the merge.
func (k *SSSP) MergeStates(sts []State) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*ssspState)
	for _, other := range sts[1:] {
		o := other.(*ssspState)
		for v := range base.dist {
			switch {
			case o.dist[v] < base.dist[v]:
				base.dist[v] = o.dist[v]
				base.active[v] = o.active[v]
			case o.dist[v] == base.dist[v] && o.active[v] > base.active[v]:
				base.active[v] = o.active[v]
			}
		}
	}
	for _, other := range sts[1:] {
		o := other.(*ssspState)
		copy(o.dist, base.dist)
		copy(o.active, base.active)
	}
}

// EndIteration implements Kernel.
func (k *SSSP) EndIteration([]State, bool) bool { return false }

// Distances exposes the result vector; unreachable vertices hold +Inf
// (math.MaxFloat32).
func (k *SSSP) Distances(st State) []float32 { return st.(*ssspState).dist }
