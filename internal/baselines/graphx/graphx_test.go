package graphx

import (
	"errors"
	"math"
	"testing"

	"repro/internal/baselines/pregel"
	"repro/internal/cluster"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/verify"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(cluster.Paper())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBFSMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	want := verify.BFS(g, 0)
	res, err := Run(testEngine(t), g, pregel.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d level = %d, want %d", v, res.Values[v], want[v])
		}
	}
	if res.ShuffleBytes == 0 {
		t.Error("no shuffle accounted")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	want := verify.PageRank(g, 0.85, 5)
	res, err := Run(testEngine(t), g, pregel.PRProgram{Damping: 0.85, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d rank = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestJobOverheadDominatesSmallGraphs(t *testing.T) {
	// Deep, tiny graph: GraphX pays a job per level, so elapsed must be at
	// least levels * JobOverhead — the per-iteration cost the paper's Fig. 6
	// shows for GraphX on traversals.
	g := graphgen.Path(50)
	res, err := Run(testEngine(t), g, pregel.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	min := Spark().JobOverhead * 49
	if res.Elapsed < min {
		t.Errorf("elapsed %v below job-overhead floor %v", res.Elapsed, min)
	}
}

func TestOOMOnTinyCluster(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	small := cluster.Paper()
	small.MemoryPerWorker = 1 << 8
	e, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, g, pregel.BFSProgram{Source: 0}); !errors.Is(err, hw.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestGraphXHungrierThanPowerGraphProfile(t *testing.T) {
	// GraphX's object overhead exceeds PowerGraph's 2.5x (paper: GraphX
	// OOMs earlier).
	if Spark().ObjectOverhead <= 2.5 {
		t.Error("GraphX object overhead implausibly low")
	}
}
