// Package graphx implements a GraphX-style engine: Pregel semantics
// compiled onto a Spark-like dataflow where every superstep is a job of
// joins — replicate vertex attributes to edge partitions (building
// triplets), aggregate messages by destination, and join the aggregates
// back into a new vertex table. Each materialization carries RDD object
// overhead and lineage bookkeeping, which is why GraphX pays a high
// per-iteration cost and a large memory footprint relative to the raw data
// (paper §7.2).
//
// It reuses the vertex programs of internal/baselines/pregel — GraphX's
// Pregel API computes the same functions — but with Spark's cost and
// memory model.
package graphx

import (
	"fmt"

	"repro/internal/baselines/pregel"
	"repro/internal/bitset"
	"repro/internal/cluster"
	"repro/internal/csr"
	"repro/internal/sim"
)

// Profile holds the Spark/GraphX runtime constants.
type Profile struct {
	// JobOverhead is the per-superstep Spark scheduling latency (driver
	// planning, task launch waves).
	JobOverhead sim.Time
	// CyclesPerEdge / CyclesPerVertex price the Scala-side work.
	CyclesPerEdge   float64
	CyclesPerVertex float64
	Efficiency      float64
	// ObjectOverhead multiplies raw bytes for resident RDDs; LineageRDDs
	// counts how many vertex-RDD generations stay cached.
	ObjectOverhead float64
	LineageRDDs    int64
}

// Spark returns the paper-calibrated GraphX profile.
func Spark() Profile {
	return Profile{
		JobOverhead:     900 * sim.Millisecond,
		CyclesPerEdge:   6000,
		CyclesPerVertex: 3000,
		Efficiency:      0.6,
		ObjectOverhead:  8.0,
		LineageRDDs:     3,
	}
}

// Engine binds the profile to a cluster.
type Engine struct {
	Cluster cluster.Spec
	Profile Profile
}

// New returns an engine; it validates the cluster spec.
func New(c cluster.Spec) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cluster: c, Profile: Spark()}, nil
}

// Result reports a finished run.
type Result[V any] struct {
	Values       []V
	Elapsed      sim.Time
	Supersteps   int
	ShuffleBytes int64
}

// Run executes prog (a Pregel vertex program) under GraphX's dataflow cost
// model.
func Run[V, M any](e *Engine, g *csr.Graph, prog pregel.Program[V, M]) (*Result[V], error) {
	n := int(g.NumVertices())
	w := int64(e.Cluster.Workers)

	// Rough vertex replication across edge partitions: a vertex is shipped
	// to every partition holding one of its edges, at most W.
	var repSum float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(uint64(v)))
		if d > float64(w) {
			d = float64(w)
		}
		if d < 1 {
			d = 1
		}
		repSum += d
	}
	replication := repSum / float64(n)

	// Resident memory: edge RDD + LineageRDDs generations of the vertex
	// RDD + the replicated triplet attributes, all at RDD object overhead.
	valBytes := prog.ValueBytes()
	raw := int64(g.NumEdges())*8 + e.Profile.LineageRDDs*int64(n)*(valBytes+8) +
		int64(replication*float64(n))*(valBytes+8)
	perWorker := int64(float64(raw) * e.Profile.ObjectOverhead / float64(w))
	if err := e.Cluster.CheckMemory(perWorker, "GraphX RDDs"); err != nil {
		return nil, err
	}

	values := make([]V, n)
	active := bitset.New(n)
	for v := 0; v < n; v++ {
		val, act := prog.Init(uint32(v), g)
		values[v] = val
		if act {
			active.Set(v)
		}
	}

	inbox := make([][]M, n)
	res := &Result[V]{}
	var elapsed sim.Time
	for {
		if res.Supersteps > 100000 {
			return nil, fmt.Errorf("graphx: did not converge in 100000 supersteps")
		}
		anyWork := active.Any()
		if !anyWork {
			for v := range inbox {
				if len(inbox[v]) > 0 {
					anyWork = true
					break
				}
			}
		}
		if !anyWork {
			break
		}

		next := make([][]M, n)
		var cycles float64
		var sent int64
		var computed int64
		nextActive := bitset.New(n)
		for v := 0; v < n; v++ {
			if !active.Get(v) && len(inbox[v]) == 0 {
				continue
			}
			vv := uint32(v)
			send := func(dst uint32, m M) {
				sent++
				if len(next[dst]) > 0 {
					if c, ok := prog.Combine(next[dst][len(next[dst])-1], m); ok {
						next[dst][len(next[dst])-1] = c
						return
					}
				}
				next[dst] = append(next[dst], m)
			}
			val, act := prog.Compute(res.Supersteps, vv, values[v], inbox[v], g, send)
			values[v] = val
			if act {
				nextActive.Set(v)
			}
			computed++
			cycles += e.Profile.CyclesPerVertex + float64(g.Degree(uint64(v)))*e.Profile.CyclesPerEdge
		}

		// Three shuffles per job: attribute replication to edge partitions,
		// message aggregation, and the vertex join.
		shuffle := computed*int64(replication)*(valBytes+8) + // triplet build
			sent*prog.MessageBytes() + // aggregateMessages
			computed*(valBytes+8) // join back
		elapsed += e.Cluster.Fixed(e.Profile.JobOverhead)
		elapsed += e.Cluster.ComputeTime(cycles, e.Profile.Efficiency)
		elapsed += e.Cluster.ShuffleTime(shuffle, 3)
		res.ShuffleBytes += shuffle
		res.Supersteps++
		inbox = next
		active = nextActive
	}
	res.Values = values
	res.Elapsed = elapsed
	return res, nil
}
