// Package gpu implements the paper's GPU-resident baselines (§7.4): TOTEM
// (hybrid CPU+GPU processing over a partitioned in-memory graph), CuSha
// (G-Shards entirely in device memory) and MapGraph (GAS over a
// space-inefficient COO/Matrix-Market representation). All run functionally
// over CSR with their architecture's partitioning, memory-capacity and
// cost behaviour.
package gpu

import (
	"fmt"
	"sort"

	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/verify"
)

// TOTEM is the hybrid engine of Gharaibeh et al. (PACT'12): the graph is
// split into a device-memory partition processed by the GPUs and a
// main-memory partition processed by the CPUs, synchronized by boundary
// messages over PCI-E each superstep. Its two structural drawbacks in the
// paper (§8) fall out of this model: the GPU share shrinks as graphs grow
// (fixed device memory), and the whole graph must still fit in main memory.
type TOTEM struct {
	Device  hw.GPUSpec
	NumGPUs int
	Host    cpu.Workstation
	PCIe    hw.PCIeSpec
}

// NewTOTEM returns the engine with the given GPU count.
func NewTOTEM(gpus int, dev hw.GPUSpec, host cpu.Workstation) *TOTEM {
	return &TOTEM{Device: dev, NumGPUs: gpus, Host: host, PCIe: hw.PCIe3x16()}
}

// Cost constants: effective processing rates and the per-superstep
// coordination cost.
const (
	totemGPUEdgesPerSec = 2.0e9 // per-GPU effective edge throughput (irregular access)
	totemCPUEdgeCycles  = 18.0
	totemEfficiency     = 0.75
	totemBarrier        = 120 * sim.Microsecond
	totemEdgeBytes      = 8
	totemMsgBytes       = 8
)

// Name identifies the engine.
func (t *TOTEM) Name() string { return "TOTEM" }

// stateBytesPerVertex is the per-vertex device state each algorithm keeps.
func stateBytesPerVertex(algo string) int64 {
	switch algo {
	case "PageRank":
		return 16 // prev + next rank
	case "SSSP":
		return 8
	case "CC":
		return 8
	case "BC":
		return 24
	default: // BFS
		return 4
	}
}

// Partition assigns vertices to the GPU side lowest-degree-first (TOTEM's
// placement: many small vertices exploit GPU parallelism best; hubs stay
// on the CPU) until the device memory budget is filled. It returns the
// in-GPU marker per vertex and the edge fraction placed on GPUs — the
// GPU%:CPU% ratio of the paper's Table 5.
func (t *TOTEM) Partition(g *csr.Graph, algo string) (inGPU []bool, gpuEdgeFrac float64) {
	n := int(g.NumVertices())
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(uint64(order[i])), g.Degree(uint64(order[j]))
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	// Roughly half of device memory is usable for the partition; the rest
	// holds TOTEM's message aggregation buffers and kernel state, which is
	// why the paper's recommended ratios sit well below the memory maximum.
	budget := int64(float64(t.Device.DeviceMemory*int64(t.NumGPUs)) * 0.55)
	stateB := stateBytesPerVertex(algo)
	inGPU = make([]bool, n)
	var used, gpuEdges int64
	for _, v := range order {
		need := stateB + 8 + int64(g.Degree(uint64(v)))*totemEdgeBytes
		if used+need > budget {
			break
		}
		used += need
		inGPU[v] = true
		gpuEdges += int64(g.Degree(uint64(v)))
	}
	if g.NumEdges() == 0 {
		return inGPU, 1
	}
	return inGPU, float64(gpuEdges) / float64(g.NumEdges())
}

// checkHost verifies the whole graph fits main memory — TOTEM's in-memory
// CSR needs a contiguous array (the reason it cannot process RMAT30-32).
func (t *TOTEM) checkHost(g *csr.Graph, extra int64) error {
	// TOTEM's in-memory format needs one contiguous 8-byte-ID edge array
	// plus vertex offsets — the reason the paper's TOTEM cannot load
	// RMAT30-32.
	raw := int64(g.NumVertices())*8 + int64(g.NumEdges())*8
	return t.Host.CheckMemory(raw+extra, "TOTEM in-memory graph")
}

// superstep prices one BSP round given the per-partition edge work and the
// boundary message count.
func (t *TOTEM) superstep(gpuEdges, cpuEdges, boundaryMsgs int64) sim.Time {
	gpuT := sim.Seconds(float64(gpuEdges) / (totemGPUEdgesPerSec * float64(t.NumGPUs)))
	cpuT := t.Host.Time(float64(cpuEdges)*totemCPUEdgeCycles, cpuEdges*64, totemEfficiency)
	step := gpuT
	if cpuT > step {
		step = cpuT
	}
	xfer := sim.ByteTime(boundaryMsgs*totemMsgBytes, t.PCIe.StreamRate)
	return step + xfer + t.Host.Fixed(totemBarrier)
}

// levelWork tallies one frontier's work split across the partitions.
func levelWork(g *csr.Graph, frontier []uint32, inGPU []bool) (gpuEdges, cpuEdges, boundary int64) {
	for _, v := range frontier {
		d := int64(g.Degree(uint64(v)))
		if inGPU[v] {
			gpuEdges += d
		} else {
			cpuEdges += d
		}
		for _, tgt := range g.Out(v) {
			if inGPU[tgt] != inGPU[v] {
				boundary++
			}
		}
	}
	return gpuEdges, cpuEdges, boundary
}

// BFS traverses from src.
func (t *TOTEM) BFS(g, rev *csr.Graph, src uint32) (*cpu.BFSResult, error) {
	if err := t.checkHost(g, int64(g.NumVertices())*4); err != nil {
		return nil, err
	}
	inGPU, _ := t.Partition(g, "BFS")
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	frontier := []uint32{src}
	res := &cpu.BFSResult{}
	var elapsed sim.Time
	for level := int16(0); len(frontier) > 0; level++ {
		gpuE, cpuE, boundary := levelWork(g, frontier, inGPU)
		var next []uint32
		for _, v := range frontier {
			for _, tgt := range g.Out(v) {
				res.EdgesScanned++
				if lv[tgt] == -1 {
					lv[tgt] = level + 1
					next = append(next, tgt)
				}
			}
		}
		elapsed += t.superstep(gpuE, cpuE, boundary)
		res.Depth++
		frontier = next
	}
	res.Levels = lv
	res.Elapsed = elapsed
	return res, nil
}

// PageRank runs the fixed-iteration formulation.
func (t *TOTEM) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*cpu.PRResult, error) {
	if err := t.checkHost(g, int64(g.NumVertices())*16); err != nil {
		return nil, err
	}
	inGPU, _ := t.Partition(g, "PageRank")
	ranks := verify.PageRank(g, damping, iterations)
	var gpuE, cpuE, boundary int64
	for v := 0; v < int(g.NumVertices()); v++ {
		d := int64(g.Degree(uint64(v)))
		if inGPU[v] {
			gpuE += d
		} else {
			cpuE += d
		}
		for _, tgt := range g.Out(uint32(v)) {
			if inGPU[tgt] != inGPU[v] {
				boundary++
			}
		}
	}
	var elapsed sim.Time
	for it := 0; it < iterations; it++ {
		elapsed += t.superstep(gpuE, cpuE, boundary)
	}
	return &cpu.PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}

// SSSPResult reports an SSSP run.
type SSSPResult struct {
	Dist    []float64
	Elapsed sim.Time
}

// SSSP computes shortest paths from src under kernels.Weight.
func (t *TOTEM) SSSP(g, rev *csr.Graph, src uint32) (*SSSPResult, error) {
	if err := t.checkHost(g, int64(g.NumVertices())*8); err != nil {
		return nil, err
	}
	inGPU, _ := t.Partition(g, "SSSP")
	n := int(g.NumVertices())
	dist := make([]float64, n)
	active := make([]bool, n)
	for i := range dist {
		dist[i] = 1e30
	}
	dist[src] = 0
	active[src] = true
	frontier := []uint32{src}
	var elapsed sim.Time
	for len(frontier) > 0 {
		gpuE, cpuE, boundary := levelWork(g, frontier, inGPU)
		var next []uint32
		nextSet := make(map[uint32]bool)
		for _, v := range frontier {
			active[v] = false
			for _, tgt := range g.Out(v) {
				nd := dist[v] + float64(kernels.Weight(uint64(v), uint64(tgt)))
				if nd < dist[tgt] {
					dist[tgt] = nd
					if !nextSet[tgt] {
						nextSet[tgt] = true
						next = append(next, tgt)
					}
				}
			}
		}
		elapsed += t.superstep(gpuE, cpuE, boundary)
		frontier = next
	}
	return &SSSPResult{Dist: dist, Elapsed: elapsed}, nil
}

// CCResult reports a connected-components run.
type CCResult struct {
	Labels  []uint32
	Elapsed sim.Time
}

// CC computes weakly connected components by label propagation.
func (t *TOTEM) CC(g, rev *csr.Graph) (*CCResult, error) {
	if err := t.checkHost(g, rev.Bytes()+int64(g.NumVertices())*8); err != nil {
		return nil, err
	}
	inGPU, _ := t.Partition(g, "CC")
	n := int(g.NumVertices())
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	var allGPU, allCPU, boundary int64
	for v := 0; v < n; v++ {
		d := int64(g.Degree(uint64(v)) + rev.Degree(uint64(v)))
		if inGPU[v] {
			allGPU += d
		} else {
			allCPU += d
		}
	}
	for _, e := range g.Edges() {
		if inGPU[e.Src] != inGPU[e.Dst] {
			boundary += 2
		}
	}
	var elapsed sim.Time
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			c := labels[v]
			relax := func(o uint32) {
				if labels[o] < c {
					c = labels[o]
				}
			}
			for _, tgt := range g.Out(uint32(v)) {
				relax(tgt)
			}
			for _, s := range rev.Out(uint32(v)) {
				relax(s)
			}
			if c < labels[v] {
				labels[v] = c
				changed = true
			}
		}
		elapsed += t.superstep(allGPU, allCPU, boundary)
	}
	return &CCResult{Labels: labels, Elapsed: elapsed}, nil
}

// BCResult reports a betweenness-centrality run.
type BCResult struct {
	Scores  []float64
	Elapsed sim.Time
}

// BC computes single-source betweenness from src (Brandes forward +
// backward, both partitioned).
func (t *TOTEM) BC(g, rev *csr.Graph, src uint32) (*BCResult, error) {
	if err := t.checkHost(g, int64(g.NumVertices())*24); err != nil {
		return nil, err
	}
	inGPU, _ := t.Partition(g, "BC")
	scores := verify.BC(g, src)
	// Time both sweeps: levels derive from the functional BFS.
	lv := verify.BFS(g, src)
	maxLv := 0
	byLevel := map[int][]uint32{}
	for v, l := range lv {
		if l >= 0 {
			byLevel[int(l)] = append(byLevel[int(l)], uint32(v))
			if int(l) > maxLv {
				maxLv = int(l)
			}
		}
	}
	var elapsed sim.Time
	for l := 0; l <= maxLv; l++ { // forward
		gpuE, cpuE, boundary := levelWork(g, byLevel[l], inGPU)
		elapsed += t.superstep(gpuE, cpuE, boundary)
	}
	for l := maxLv; l >= 0; l-- { // backward
		gpuE, cpuE, boundary := levelWork(g, byLevel[l], inGPU)
		elapsed += t.superstep(gpuE, cpuE, boundary)
	}
	return &BCResult{Scores: scores, Elapsed: elapsed}, nil
}

// RatioString formats a partition as the paper's Table 5 "GPU%:CPU%".
func RatioString(gpuFrac float64) string {
	g := int(gpuFrac*100 + 0.5)
	return fmt.Sprintf("%d:%d", g, 100-g)
}
