package gpu

import (
	"errors"
	"math"
	"testing"

	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/verify"
)

func testGraph() (*csr.Graph, *csr.Graph) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	return g, g.Transpose()
}

func totem() *TOTEM { return NewTOTEM(2, hw.TitanX(), cpu.Paper()) }

func TestTOTEMBFSMatchesReference(t *testing.T) {
	g, rev := testGraph()
	want := verify.BFS(g, 0)
	res, err := totem().BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("vertex %d level = %d, want %d", v, res.Levels[v], want[v])
		}
	}
	if res.Elapsed <= 0 {
		t.Error("no time accounted")
	}
}

func TestTOTEMPageRankMatchesReference(t *testing.T) {
	g, rev := testGraph()
	want := verify.PageRank(g, 0.85, 5)
	res, err := totem().PageRank(g, rev, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Ranks[v] != want[v] {
			t.Fatalf("vertex %d rank mismatch", v)
		}
	}
}

func TestTOTEMSSSPMatchesReference(t *testing.T) {
	g, rev := testGraph()
	want := verify.SSSP(g, 0, kernels.Weight)
	res, err := totem().SSSP(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		w := want[v]
		if math.IsInf(w, 1) {
			if res.Dist[v] < 1e29 {
				t.Fatalf("vertex %d should be unreachable", v)
			}
			continue
		}
		if res.Dist[v] != w {
			t.Fatalf("vertex %d dist = %v, want %v", v, res.Dist[v], w)
		}
	}
}

func TestTOTEMCCMatchesReference(t *testing.T) {
	g, rev := testGraph()
	want := verify.WCC(g)
	res, err := totem().CC(g, rev)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("vertex %d label = %d, want %d", v, res.Labels[v], want[v])
		}
	}
}

func TestTOTEMBCMatchesReference(t *testing.T) {
	g, rev := testGraph()
	want := verify.BC(g, 0)
	res, err := totem().BC(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(res.Scores[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d bc = %v, want %v", v, res.Scores[v], want[v])
		}
	}
}

func TestTOTEMPartitionShrinksWithGraph(t *testing.T) {
	// Table 5's pattern: as graphs grow, the GPU share falls.
	d, _ := graphgen.ByName("RMAT27")
	small := d.MustGenerate(27 - 12) // scale 12
	big := d.MustGenerate(27 - 15)   // scale 15
	// Scale device memory so even the small graph does not fully fit.
	dev := hw.TitanX()
	dev.DeviceMemory = small.Bytes()
	eng := NewTOTEM(1, dev, cpu.Paper())
	_, fSmall := eng.Partition(small, "BFS")
	_, fBig := eng.Partition(big, "BFS")
	if fBig >= fSmall {
		t.Errorf("GPU share did not shrink: %v -> %v", fSmall, fBig)
	}
	// PageRank keeps more state per vertex, so its GPU share is no larger.
	_, fPR := eng.Partition(small, "PageRank")
	if fPR > fSmall {
		t.Errorf("PageRank share %v above BFS share %v", fPR, fSmall)
	}
}

func TestTOTEMHostOOM(t *testing.T) {
	g, rev := testGraph()
	eng := NewTOTEM(2, hw.TitanX(), cpu.Paper().Scale(1<<40))
	if _, err := eng.BFS(g, rev, 0); !errors.Is(err, hw.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory (in-memory format)", err)
	}
}

func TestRatioString(t *testing.T) {
	if got := RatioString(0.654); got != "65:35" {
		t.Errorf("RatioString = %q", got)
	}
}

func TestCuShaMatchesReferenceWhenFits(t *testing.T) {
	g, rev := testGraph()
	c := NewCuSha(1, hw.TitanX())
	bfs, err := c.BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := verify.BFS(g, 0)
	for v := range want {
		if bfs.Levels[v] != want[v] {
			t.Fatalf("vertex %d level mismatch", v)
		}
	}
	pr, err := c.PageRank(g, rev, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantPR := verify.PageRank(g, 0.85, 3)
	for v := range wantPR {
		if pr.Ranks[v] != wantPR[v] {
			t.Fatalf("vertex %d rank mismatch", v)
		}
	}
}

func TestCuShaPageRankOOMsBeforeBFS(t *testing.T) {
	// Paper: CuSha ran BFS on Twitter but PageRank on nothing — the PR
	// footprint must exceed the BFS footprint.
	g, rev := testGraph()
	dev := hw.TitanX()
	// Device sized between the two footprints.
	bfsBytes := int64(g.NumEdges())*cushaEdgeBytes + int64(g.NumVertices())*cushaVertexBytes
	prBytes := int64(g.NumEdges())*cushaPREdgeBytes + int64(g.NumVertices())*cushaPRVertexBytes
	dev.DeviceMemory = (bfsBytes + prBytes) / 2
	c := NewCuSha(1, dev)
	if _, err := c.BFS(g, rev, 0); err != nil {
		t.Errorf("BFS should fit: %v", err)
	}
	if _, err := c.PageRank(g, rev, 0.85, 3); !errors.Is(err, hw.ErrOutOfDeviceMemory) {
		t.Errorf("PR err = %v, want ErrOutOfDeviceMemory", err)
	}
}

func TestMapGraphLeastScalable(t *testing.T) {
	// MapGraph's per-edge footprint dwarfs CuSha's.
	if mapgraphEdgeBytes <= cushaEdgeBytes {
		t.Error("MapGraph must be less space-efficient than CuSha")
	}
	g, rev := testGraph()
	mg := NewMapGraph(1, hw.TitanX())
	res, err := mg.BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := verify.BFS(g, 0)
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("vertex %d level mismatch", v)
		}
	}
	// A device sized to CuSha-BFS fit rejects MapGraph.
	dev := hw.TitanX()
	dev.DeviceMemory = int64(g.NumEdges())*cushaEdgeBytes + int64(g.NumVertices())*cushaVertexBytes
	if _, err := NewMapGraph(1, dev).BFS(g, rev, 0); !errors.Is(err, hw.ErrOutOfDeviceMemory) {
		t.Errorf("err = %v, want ErrOutOfDeviceMemory", err)
	}
}

func TestCuShaFullSweepsCostlyOnDeepGraphs(t *testing.T) {
	// CuSha sweeps all shards per level; on a deep path, frontier engines
	// like MapGraph's GAS steps do far less edge work.
	g := graphgen.Path(3000)
	rev := g.Transpose()
	cu, err := NewCuSha(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMapGraph(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cu.EdgesScanned <= mg.EdgesScanned {
		t.Errorf("CuSha scanned %d <= MapGraph %d on deep path", cu.EdgesScanned, mg.EdgesScanned)
	}
}
