package gpu

import (
	"fmt"

	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/verify"
)

// CuSha is the G-Shards engine of Khorasani et al. (HPDC'14): edges are
// laid out in destination-windowed shards so GPU warps stream them with
// fully coalesced access. The whole representation must fit in device
// memory — the paper finds CuSha handles BFS only up to Twitter and
// PageRank on none of the tested graphs (§7.4) — and every iteration
// processes all shards (no frontier), which hurts traversals on deep
// graphs.
type CuSha struct {
	Device  hw.GPUSpec
	NumGPUs int
	// OverheadScale divides the fixed per-iteration overhead for
	// scaled-down runs (0 or 1 = full size).
	OverheadScale int64
}

// NewCuSha returns the engine.
func NewCuSha(gpus int, dev hw.GPUSpec) *CuSha {
	return &CuSha{Device: dev, NumGPUs: gpus}
}

// Footprint constants: a shard entry keeps the source index, the in-window
// destination and the edge value; PageRank additionally duplicates vertex
// values into every shard window it appears in.
const (
	cushaEdgeBytes         = 8
	cushaPREdgeBytes       = 12
	cushaVertexBytes       = 8
	cushaPRVertexBytes     = 24
	cushaEdgesPerSec       = 5.0e9 // coalesced shard streaming is fast
	cushaIterationOverhead = 150 * sim.Microsecond
)

// Name identifies the engine.
func (c *CuSha) Name() string { return "CuSha" }

func (c *CuSha) checkFit(bytes int64, what string) error {
	cap := c.Device.DeviceMemory * int64(c.NumGPUs)
	if bytes > cap {
		return fmt.Errorf("%w: CuSha %s needs %d bytes of device memory, have %d",
			hw.ErrOutOfDeviceMemory, what, bytes, cap)
	}
	return nil
}

// BFS traverses from src. CuSha sweeps all shards once per level.
func (c *CuSha) BFS(g, rev *csr.Graph, src uint32) (*cpu.BFSResult, error) {
	bytes := int64(g.NumEdges())*cushaEdgeBytes + int64(g.NumVertices())*cushaVertexBytes
	if err := c.checkFit(bytes, "G-Shards (BFS)"); err != nil {
		return nil, err
	}
	lv := verify.BFS(g, src)
	depth := 0
	for _, l := range lv {
		if int(l) > depth {
			depth = int(l)
		}
	}
	levels := depth + 1
	perLevel := sim.Seconds(float64(g.NumEdges())/(cushaEdgesPerSec*float64(c.NumGPUs))) +
		c.fixed(cushaIterationOverhead)
	return &cpu.BFSResult{
		Levels:       lv,
		Elapsed:      sim.Time(levels) * perLevel,
		EdgesScanned: int64(levels) * int64(g.NumEdges()),
		Depth:        levels,
	}, nil
}

// PageRank runs fixed iterations over all shards.
func (c *CuSha) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*cpu.PRResult, error) {
	bytes := int64(g.NumEdges())*cushaPREdgeBytes + int64(g.NumVertices())*cushaPRVertexBytes
	if err := c.checkFit(bytes, "G-Shards (PageRank)"); err != nil {
		return nil, err
	}
	ranks := verify.PageRank(g, damping, iterations)
	perIter := sim.Seconds(float64(g.NumEdges())/(cushaEdgesPerSec*float64(c.NumGPUs))) +
		c.fixed(cushaIterationOverhead)
	return &cpu.PRResult{Ranks: ranks, Elapsed: sim.Time(iterations) * perIter}, nil
}

// fixed scales a constant per-iteration cost for scaled-down runs.
func (c *CuSha) fixed(t sim.Time) sim.Time {
	if c.OverheadScale > 1 {
		return t / sim.Time(c.OverheadScale)
	}
	return t
}
