package gpu

import (
	"fmt"

	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/verify"
)

// MapGraph is the GAS-on-GPU engine of Fu, Personick & Thompson
// (GRADES'14). Its Matrix-Market-derived storage is markedly less
// space-efficient than CuSha's G-Shards — the paper notes it cannot even
// run BFS on Twitter, only on tiny graphs (§7.4).
type MapGraph struct {
	Device  hw.GPUSpec
	NumGPUs int
	// OverheadScale divides the fixed per-step overhead for scaled-down
	// runs (0 or 1 = full size).
	OverheadScale int64
}

// NewMapGraph returns the engine.
func NewMapGraph(gpus int, dev hw.GPUSpec) *MapGraph {
	return &MapGraph{Device: dev, NumGPUs: gpus}
}

// Footprint constants: COO triples plus GAS frontier/gather workspaces.
const (
	mapgraphEdgeBytes    = 24
	mapgraphVertexBytes  = 32
	mapgraphEdgesPerSec  = 3.5e9
	mapgraphStepOverhead = 200 * sim.Microsecond
)

// Name identifies the engine.
func (m *MapGraph) Name() string { return "MapGraph" }

func (m *MapGraph) checkFit(g *csr.Graph, what string) error {
	bytes := int64(g.NumEdges())*mapgraphEdgeBytes + int64(g.NumVertices())*mapgraphVertexBytes
	cap := m.Device.DeviceMemory * int64(m.NumGPUs)
	if bytes > cap {
		return fmt.Errorf("%w: MapGraph %s needs %d bytes of device memory, have %d",
			hw.ErrOutOfDeviceMemory, what, bytes, cap)
	}
	return nil
}

// BFS traverses from src with frontier-based GAS steps.
func (m *MapGraph) BFS(g, rev *csr.Graph, src uint32) (*cpu.BFSResult, error) {
	if err := m.checkFit(g, "BFS"); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	frontier := []uint32{src}
	res := &cpu.BFSResult{}
	var elapsed sim.Time
	for level := int16(0); len(frontier) > 0; level++ {
		var scanned int64
		var next []uint32
		for _, v := range frontier {
			for _, tgt := range g.Out(v) {
				scanned++
				if lv[tgt] == -1 {
					lv[tgt] = level + 1
					next = append(next, tgt)
				}
			}
		}
		elapsed += sim.Seconds(float64(scanned)/(mapgraphEdgesPerSec*float64(m.NumGPUs))) +
			m.fixed(mapgraphStepOverhead)
		res.EdgesScanned += scanned
		res.Depth++
		frontier = next
	}
	res.Levels = lv
	res.Elapsed = elapsed
	return res, nil
}

// PageRank runs fixed GAS iterations.
func (m *MapGraph) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*cpu.PRResult, error) {
	if err := m.checkFit(g, "PageRank"); err != nil {
		return nil, err
	}
	ranks := verify.PageRank(g, damping, iterations)
	perIter := sim.Seconds(float64(g.NumEdges())/(mapgraphEdgesPerSec*float64(m.NumGPUs))) +
		m.fixed(mapgraphStepOverhead)
	return &cpu.PRResult{Ranks: ranks, Elapsed: sim.Time(iterations) * perIter}, nil
}

// fixed scales a constant per-step cost for scaled-down runs.
func (m *MapGraph) fixed(t sim.Time) sim.Time {
	if m.OverheadScale > 1 {
		return t / sim.Time(m.OverheadScale)
	}
	return t
}
