package cpu

import (
	"repro/internal/csr"
	"repro/internal/sim"
)

// Galois is the asynchronous worklist engine of Nguyen, Lenharth & Pingali
// (SOSP'13): no level barriers — workers drain a chunked worklist, so
// traversals avoid synchronization at the cost of some redundant work on
// vertices relaxed more than once.
type Galois struct {
	WS Workstation
}

// NewGalois returns the engine.
func NewGalois(ws Workstation) *Galois { return &Galois{WS: ws} }

// Cost constants: the compiled C++ core is lean, and the asynchronous
// scheduler keeps cores busier than level-synchronous engines.
const (
	galoisEdgeCycles   = 16.0
	galoisVertexCycles = 22.0 // worklist push/pop and conflict detection
	galoisEfficiency   = 0.85
	galoisStartup      = 200 * sim.Microsecond
)

// Name implements Engine.
func (ga *Galois) Name() string { return "Galois" }

// BFS implements Engine as an asynchronous label-correcting traversal: a
// FIFO worklist without level barriers; a vertex re-enters when its level
// improves, so the scanned-edge count includes the redundant corrections a
// real asynchronous run performs.
func (ga *Galois) BFS(g, rev *csr.Graph, src uint32) (*BFSResult, error) {
	// Loading keeps the raw edge list alive while the CSR builds, so the
	// transient footprint is about twice the resident one.
	if err := ga.WS.CheckMemory(2*rawBytes(g)+int64(g.NumVertices())*8, "Galois graph"); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	work := []uint32{src}
	res := &BFSResult{}
	var pops int64
	for len(work) > 0 {
		v := work[0]
		work = work[1:]
		pops++
		base := lv[v]
		for _, t := range g.Out(v) {
			res.EdgesScanned++
			if lv[t] == -1 || base+1 < lv[t] {
				lv[t] = base + 1
				work = append(work, t)
			}
		}
	}
	for _, l := range lv {
		if int(l) > res.Depth {
			res.Depth = int(l)
		}
	}
	cycles := float64(res.EdgesScanned)*galoisEdgeCycles + float64(pops)*galoisVertexCycles
	res.Elapsed = ga.WS.Fixed(galoisStartup) + ga.WS.Time(cycles, res.EdgesScanned*cacheLine, galoisEfficiency)
	res.Levels = lv
	return res, nil
}

// PageRank implements Engine (pull-based; Galois' PageRank is typically
// topology-driven over in-edges).
func (ga *Galois) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*PRResult, error) {
	bytes := rawBytes(g) + rawBytes(rev) + int64(g.NumVertices())*16
	if err := ga.WS.CheckMemory(bytes, "Galois graph"); err != nil {
		return nil, err
	}
	ranks, scanned := pageRankPull(g, rev, damping, iterations)
	cycles := float64(scanned)*(galoisEdgeCycles+6) +
		float64(int(g.NumVertices())*iterations)*galoisVertexCycles
	elapsed := ga.WS.Fixed(galoisStartup) + ga.WS.Time(cycles, scanned*cacheLine, galoisEfficiency)
	return &PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}
