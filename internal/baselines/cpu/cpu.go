// Package cpu implements the paper's shared-memory CPU baselines (§7.3):
// Ligra (direction-optimizing frontier processing), Ligra+ (the same engine
// over byte-delta-compressed adjacency), Galois (asynchronous worklist
// execution) and MTGL (plain parallel vertex loops without frontier
// optimization).
//
// All engines execute functionally over CSR and charge their measured work
// (edges actually scanned, vertices actually touched) against the paper's
// dual-Xeon workstation model. Memory accounting reproduces the paper's
// finding that the CPU systems cannot load the larger graphs at all.
package cpu

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Workstation models the paper's CPU-side testbed: two 8-core Xeon
// E5-2687W, 128 GB of memory (16 threads, HT off).
type Workstation struct {
	Cores        int
	CyclesPerSec float64 // per core
	MemBandwidth float64 // aggregate bytes/second
	Memory       int64
	// TimeScale divides fixed per-level costs for scaled-down runs; Scale
	// sets it. Zero means 1.
	TimeScale int64
}

// Paper returns the paper's workstation.
func Paper() Workstation {
	return Workstation{Cores: 16, CyclesPerSec: 6e9, MemBandwidth: 50e9, Memory: 128 << 30}
}

// Scale divides the memory capacity by factor (bandwidths stay), matching
// dataset down-scaling.
func (w Workstation) Scale(factor int64) Workstation {
	if factor <= 0 {
		panic("cpu: scale factor must be positive")
	}
	w.Memory /= factor
	w.TimeScale = factor
	return w
}

// Fixed scales a fixed per-level or per-run cost (a parallel_for barrier,
// engine startup) for scaled-down runs.
func (w Workstation) Fixed(t sim.Time) sim.Time {
	if w.TimeScale > 1 {
		return t / sim.Time(w.TimeScale)
	}
	return t
}

// Time converts work into elapsed time: the compute bound (cycles across
// cores at the given parallel efficiency) or the memory-bandwidth bound,
// whichever binds.
func (w Workstation) Time(cycles float64, bytesTouched int64, efficiency float64) sim.Time {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = 1
	}
	compute := sim.Seconds(cycles / (float64(w.Cores) * w.CyclesPerSec * efficiency))
	mem := sim.ByteTime(bytesTouched, w.MemBandwidth)
	if mem > compute {
		return mem
	}
	return compute
}

// CheckMemory reports hw.ErrOutOfMemory when bytes exceed the machine.
func (w Workstation) CheckMemory(bytes int64, what string) error {
	if bytes > w.Memory {
		return fmt.Errorf("%w: %s needs %d bytes, machine has %d", hw.ErrOutOfMemory, what, bytes, w.Memory)
	}
	return nil
}

// BFSResult reports a traversal run.
type BFSResult struct {
	Levels       []int16
	Elapsed      sim.Time
	EdgesScanned int64
	Depth        int
}

// PRResult reports a PageRank run.
type PRResult struct {
	Ranks   []float64
	Elapsed sim.Time
}

// Engine is the interface the experiment harness drives.
type Engine interface {
	Name() string
	// BFS traverses from src; rev is the transpose for pull-based engines
	// (push-only engines ignore it).
	BFS(g, rev *csr.Graph, src uint32) (*BFSResult, error)
	// PageRank runs the fixed-iteration formulation of verify.PageRank.
	PageRank(g, rev *csr.Graph, damping float64, iterations int) (*PRResult, error)
}

// cacheLine is the memory traffic of one random access: graph engines
// touching prev[u] or levels[t] per edge pull a whole line, which is why
// real shared-memory engines run far below streaming bandwidth.
const cacheLine = 64

// rawBytes is the resident size of one adjacency direction as the real
// systems store it: 8-byte offsets per vertex and 8-byte edge entries
// (Ligra and Galois default to 64-bit IDs at billion scale).
func rawBytes(g *csr.Graph) int64 {
	return int64(g.NumVertices())*8 + int64(g.NumEdges())*8
}

// pageRankPull computes PageRank by gathering over in-edges (shared by the
// engines; they differ only in cost constants). It returns the ranks and
// the edges scanned.
func pageRankPull(g, rev *csr.Graph, damping float64, iterations int) ([]float64, int64) {
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	base := (1 - damping) / float64(n)
	for i := range prev {
		prev[i] = 1 / float64(n)
	}
	var scanned int64
	for it := 0; it < iterations; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range rev.Out(uint32(v)) {
				sum += prev[u] / float64(g.Degree(uint64(u)))
				scanned++
			}
			next[v] = base + damping*sum
		}
		prev, next = next, prev
	}
	return prev, scanned
}
