package cpu

import (
	"repro/internal/csr"
	"repro/internal/sim"
)

// MTGL is the MultiThreaded Graph Library baseline (Barrett et al.,
// IPDPS'09): parallel vertex loops over qthreads with no frontier data
// structure — every level rescans all vertices to find the frontier, which
// is why the paper's Fig. 7 shows it far behind Ligra and Galois.
type MTGL struct {
	WS Workstation
}

// NewMTGL returns the engine.
func NewMTGL(ws Workstation) *MTGL { return &MTGL{WS: ws} }

// Cost constants: the qthreads abstraction and generic visitor interfaces
// carry heavy per-touch overhead.
const (
	mtglEdgeCycles   = 90.0
	mtglVertexCycles = 45.0
	mtglEfficiency   = 0.5
	mtglLevelSync    = 400 * sim.Microsecond
)

// Name implements Engine.
func (m *MTGL) Name() string { return "MTGL" }

// BFS implements Engine: level-synchronous without a frontier list, so
// each level scans every vertex (the full-V term dominates on deep
// graphs).
func (m *MTGL) BFS(g, rev *csr.Graph, src uint32) (*BFSResult, error) {
	if err := m.WS.CheckMemory(rawBytes(g)*2+int64(g.NumVertices())*8, "MTGL graph"); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	res := &BFSResult{}
	var elapsed sim.Time
	for level := int16(0); ; level++ {
		var scanned int64
		changed := false
		for v := 0; v < n; v++ {
			if lv[v] != level {
				continue
			}
			for _, t := range g.Out(uint32(v)) {
				scanned++
				if lv[t] == -1 {
					lv[t] = level + 1
					changed = true
				}
			}
		}
		cycles := float64(n)*mtglVertexCycles + float64(scanned)*mtglEdgeCycles
		elapsed += m.WS.Time(cycles, int64(n)*2+scanned*cacheLine, mtglEfficiency) + m.WS.Fixed(mtglLevelSync)
		res.EdgesScanned += scanned
		res.Depth++
		if !changed {
			break
		}
	}
	res.Levels = lv
	res.Elapsed = elapsed
	return res, nil
}

// PageRank implements Engine.
func (m *MTGL) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*PRResult, error) {
	bytes := rawBytes(g) + rawBytes(rev) + int64(g.NumVertices())*16
	if err := m.WS.CheckMemory(bytes*2, "MTGL graph"); err != nil {
		return nil, err
	}
	ranks, scanned := pageRankPull(g, rev, damping, iterations)
	cycles := float64(scanned)*mtglEdgeCycles +
		float64(int(g.NumVertices())*iterations)*mtglVertexCycles
	elapsed := m.WS.Time(cycles, scanned*cacheLine, mtglEfficiency) +
		sim.Time(iterations)*m.WS.Fixed(mtglLevelSync)
	return &PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}
