package cpu

import (
	"errors"
	"math"
	"testing"

	"repro/internal/csr"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/verify"
)

func engines() []Engine {
	ws := Paper()
	return []Engine{NewLigra(ws), NewLigraPlus(ws), NewGalois(ws), NewMTGL(ws)}
}

func testGraph() (*csr.Graph, *csr.Graph) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	return g, g.Transpose()
}

func TestBFSMatchesReferenceAllEngines(t *testing.T) {
	g, rev := testGraph()
	want := verify.BFS(g, 0)
	for _, e := range engines() {
		res, err := e.BFS(g, rev, 0)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for v := range want {
			if res.Levels[v] != want[v] {
				t.Fatalf("%s: vertex %d level = %d, want %d", e.Name(), v, res.Levels[v], want[v])
			}
		}
		if res.Elapsed <= 0 || res.EdgesScanned == 0 {
			t.Errorf("%s: missing accounting", e.Name())
		}
	}
}

func TestPageRankMatchesReferenceAllEngines(t *testing.T) {
	g, rev := testGraph()
	want := verify.PageRank(g, 0.85, 5)
	for _, e := range engines() {
		res, err := e.PageRank(g, rev, 0.85, 5)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for v := range want {
			if math.Abs(res.Ranks[v]-want[v]) > 1e-12 {
				t.Fatalf("%s: vertex %d rank = %v, want %v", e.Name(), v, res.Ranks[v], want[v])
			}
		}
	}
}

func TestBFSOnDeepPath(t *testing.T) {
	g := graphgen.Path(2000)
	rev := g.Transpose()
	for _, e := range engines() {
		res, err := e.BFS(g, rev, 0)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Levels[1999] != 1999 {
			t.Fatalf("%s: tail level = %d", e.Name(), res.Levels[1999])
		}
	}
}

func TestMTGLSlowestOnDeepGraphs(t *testing.T) {
	// MTGL rescans all vertices per level; on a deep path it must be far
	// slower than the frontier engines (the paper's Fig. 7 gap).
	g := graphgen.Path(2000)
	rev := g.Transpose()
	ws := Paper()
	ligra, err := NewLigra(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	mtgl, err := NewMTGL(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mtgl.Elapsed < 2*ligra.Elapsed {
		t.Errorf("MTGL (%v) not clearly slower than Ligra (%v)", mtgl.Elapsed, ligra.Elapsed)
	}
}

func TestLigraDirectionSwitchReducesScans(t *testing.T) {
	// On a skewed RMAT graph the dense pull with early exit must scan
	// fewer edges than push-only traversal (Galois scans every frontier
	// out-edge at least once).
	g, rev := testGraph()
	ws := Paper()
	ligra, err := NewLigra(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	galois, err := NewGalois(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ligra.EdgesScanned >= galois.EdgesScanned {
		t.Errorf("direction optimization did not reduce scans: %d vs %d", ligra.EdgesScanned, galois.EdgesScanned)
	}
}

func TestLigraPlusSmallerFootprint(t *testing.T) {
	g, rev := testGraph()
	plain := NewLigra(Paper()).graphBytes(g, rev)
	comp := NewLigraPlus(Paper()).graphBytes(g, rev)
	if comp >= plain {
		t.Errorf("compressed %d not below plain %d", comp, plain)
	}
}

func TestCompressedBytesSane(t *testing.T) {
	// A path's deltas are tiny: 1 byte per edge plus offsets.
	g := graphgen.Path(100)
	got := compressedBytes(g)
	want := int64(101)*8 + 99 // offsets + one byte per delta
	if got != want {
		t.Errorf("compressedBytes = %d, want %d", got, want)
	}
}

func TestVarintLen(t *testing.T) {
	cases := map[uint64]int{0: 1, 127: 1, 128: 2, 1 << 14: 3, 1 << 62: 9}
	for v, want := range cases {
		if got := varintLen(v); got != want {
			t.Errorf("varintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestOOMOnSmallWorkstation(t *testing.T) {
	g, rev := testGraph()
	tiny := Paper().Scale(1 << 40)
	for _, e := range []Engine{NewLigra(tiny), NewGalois(tiny), NewMTGL(tiny)} {
		if _, err := e.BFS(g, rev, 0); !errors.Is(err, hw.ErrOutOfMemory) {
			t.Errorf("%s: err = %v, want ErrOutOfMemory", e.Name(), err)
		}
		if _, err := e.PageRank(g, rev, 0.85, 1); !errors.Is(err, hw.ErrOutOfMemory) {
			t.Errorf("%s PR: err = %v, want ErrOutOfMemory", e.Name(), err)
		}
	}
}

func TestWorkstationTimeBounds(t *testing.T) {
	ws := Paper()
	// Compute-bound: tiny bytes.
	ct := ws.Time(9.6e10, 1, 1) // 16 cores x 6e9 = 9.6e10 cycles/s
	if ct.Seconds() < 0.99 || ct.Seconds() > 1.01 {
		t.Errorf("compute bound = %v, want ~1s", ct)
	}
	// Memory-bound: huge bytes.
	mt := ws.Time(1, 50e9, 1)
	if mt.Seconds() < 0.99 || mt.Seconds() > 1.01 {
		t.Errorf("memory bound = %v, want ~1s", mt)
	}
}
