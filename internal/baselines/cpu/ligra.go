package cpu

import (
	"repro/internal/csr"
	"repro/internal/sim"
)

// Ligra is the direction-optimizing frontier engine of Shun & Blelloch
// (PPoPP'13): sparse levels push along out-edges of the frontier, dense
// levels pull over in-edges of unvisited vertices with early exit. With
// Compressed set it becomes Ligra+ (DCC'15): adjacency lists stored as
// byte-coded deltas, shrinking memory at a per-edge decode cost.
type Ligra struct {
	WS         Workstation
	Compressed bool
}

// NewLigra returns the plain engine.
func NewLigra(ws Workstation) *Ligra { return &Ligra{WS: ws} }

// NewLigraPlus returns the compressed (Ligra+) engine.
func NewLigraPlus(ws Workstation) *Ligra { return &Ligra{WS: ws, Compressed: true} }

// Cost constants: cycles per scanned edge for push and pull, per-vertex
// touch cost, and the parallel-for overhead per level.
const (
	ligraPushCycles  = 14.0
	ligraPullCycles  = 11.0
	ligraVertexCost  = 6.0
	ligraDecodeExtra = 1.35 // Ligra+ varint decode multiplier
	ligraLevelSync   = 25 * sim.Microsecond
	ligraEfficiency  = 0.8
)

// Name implements Engine.
func (l *Ligra) Name() string {
	if l.Compressed {
		return "Ligra+"
	}
	return "Ligra"
}

// edgeCycles applies the decode multiplier for Ligra+.
func (l *Ligra) edgeCycles(base float64) float64 {
	if l.Compressed {
		return base * ligraDecodeExtra
	}
	return base
}

// graphBytes is the resident footprint: both directions of the adjacency
// (pull needs the transpose), compressed when Ligra+.
func (l *Ligra) graphBytes(g, rev *csr.Graph) int64 {
	if l.Compressed {
		return compressedBytes(g) + compressedBytes(rev) + int64(g.NumVertices())*16
	}
	return rawBytes(g) + rawBytes(rev)
}

// compressedBytes computes the exact byte-code size of delta-encoded
// adjacency: each list sorted, first target as a varint of v-relative
// delta, the rest as consecutive-difference varints.
func compressedBytes(g *csr.Graph) int64 {
	var total int64 = int64(g.NumVertices()+1) * 8 // offsets
	for v := 0; v < int(g.NumVertices()); v++ {
		adj := append([]uint32(nil), g.Out(uint32(v))...)
		for i := 1; i < len(adj); i++ { // insertion sort: lists are short
			for j := i; j > 0 && adj[j] < adj[j-1]; j-- {
				adj[j], adj[j-1] = adj[j-1], adj[j]
			}
		}
		prev := uint32(v)
		for i, t := range adj {
			var delta int64
			if i == 0 {
				delta = int64(t) - int64(prev) // signed first delta
				if delta < 0 {
					delta = -2*delta + 1
				} else {
					delta = 2 * delta
				}
			} else {
				delta = int64(t - prev)
			}
			total += int64(varintLen(uint64(delta)))
			prev = t
		}
	}
	return total
}

func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// FootprintBytes reports the engine's resident graph footprint (both
// adjacency directions; compressed for Ligra+) — the quantity the
// compression ablation tabulates.
func (l *Ligra) FootprintBytes(g, rev *csr.Graph) int64 { return l.graphBytes(g, rev) }

// BFS implements Engine with Beamer-style direction switching.
func (l *Ligra) BFS(g, rev *csr.Graph, src uint32) (*BFSResult, error) {
	if err := l.WS.CheckMemory(l.graphBytes(g, rev), l.Name()+" graph"); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	frontier := []uint32{src}
	denseThreshold := int64(g.NumEdges() / 20)

	res := &BFSResult{}
	var elapsed sim.Time
	for level := int16(0); len(frontier) > 0; level++ {
		var frontierEdges int64
		for _, v := range frontier {
			frontierEdges += int64(g.Degree(uint64(v)))
		}
		var scanned int64
		var next []uint32
		if frontierEdges > denseThreshold {
			// Dense pull: every unvisited vertex scans in-edges, stopping
			// at the first frontier parent.
			for v := 0; v < n; v++ {
				if lv[v] != -1 {
					continue
				}
				for _, u := range rev.Out(uint32(v)) {
					scanned++
					if lv[u] == level {
						lv[v] = level + 1
						next = append(next, uint32(v))
						break
					}
				}
			}
			elapsed += l.WS.Time(
				float64(n)*ligraVertexCost+float64(scanned)*l.edgeCycles(ligraPullCycles),
				scanned*cacheLine, ligraEfficiency)
		} else {
			// Sparse push over the frontier's out-edges.
			for _, v := range frontier {
				for _, t := range g.Out(v) {
					scanned++
					if lv[t] == -1 {
						lv[t] = level + 1
						next = append(next, t)
					}
				}
			}
			elapsed += l.WS.Time(
				float64(len(frontier))*ligraVertexCost+float64(scanned)*l.edgeCycles(ligraPushCycles),
				scanned*cacheLine, ligraEfficiency)
		}
		elapsed += l.WS.Fixed(ligraLevelSync)
		res.EdgesScanned += scanned
		res.Depth++
		frontier = next
	}
	res.Levels = lv
	res.Elapsed = elapsed
	return res, nil
}

// PageRank implements Engine (pull-based dense iterations).
func (l *Ligra) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*PRResult, error) {
	if err := l.WS.CheckMemory(l.graphBytes(g, rev)+int64(g.NumVertices())*16, l.Name()+" graph"); err != nil {
		return nil, err
	}
	ranks, scanned := pageRankPull(g, rev, damping, iterations)
	cycles := float64(scanned)*l.edgeCycles(ligraPullCycles+4) +
		float64(int(g.NumVertices())*iterations)*ligraVertexCost
	elapsed := l.WS.Time(cycles, scanned*cacheLine, ligraEfficiency) +
		sim.Time(iterations)*l.WS.Fixed(ligraLevelSync)
	return &PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}
