package gas

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/verify"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(cluster.Paper())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBFSMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	want := verify.BFS(g, 0)
	res, err := Run(testEngine(t), g, rev, BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d level = %d, want %d", v, res.Values[v], want[v])
		}
	}
	if res.ReplicationFactor <= 1 {
		t.Errorf("replication factor = %v, want > 1 on 30 workers", res.ReplicationFactor)
	}
	if res.NetworkBytes == 0 || res.Elapsed <= 0 {
		t.Error("missing accounting")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	want := verify.PageRank(g, 0.85, 5)
	prog := PRProgram{Damping: 0.85, Sweeps: 5, NumVertices: float64(g.NumVertices())}
	res, err := Run(testEngine(t), g, rev, prog)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d rank = %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	rev := g.Transpose()
	want := verify.SSSP(g, 0, kernels.Weight)
	res, err := Run(testEngine(t), g, rev, SSSPProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d dist = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestBFSOnPathTerminates(t *testing.T) {
	g := graphgen.Path(200)
	res, err := Run(testEngine(t), g, g.Transpose(), BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 200; v++ {
		if res.Values[v] != int16(v) {
			t.Fatalf("vertex %d level = %d", v, res.Values[v])
		}
	}
	if res.Iterations < 199 {
		t.Errorf("iterations = %d, want >= 199 (one per level)", res.Iterations)
	}
}

func TestReplicationGrowsWithWorkers(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	_, small := replication(g, 2)
	_, large := replication(g, 30)
	if large <= small {
		t.Errorf("replication 30 workers (%v) not above 2 workers (%v)", large, small)
	}
}

func TestOOMOnTinyCluster(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	small := cluster.Paper()
	small.MemoryPerWorker = 1 << 8
	e, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, g, g.Transpose(), BFSProgram{Source: 0}); !errors.Is(err, hw.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestCCMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	u := g.Undirected()
	want := verify.WCC(g)
	res, err := Run(testEngine(t), u, u, CCProgram{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d label = %d, want %d", v, res.Values[v], want[v])
		}
	}
}
