// Package gas implements a PowerGraph-style engine: edges are
// vertex-cut-partitioned across the cluster's workers and computation
// follows the Gather-Apply-Scatter model — Gather folds over a vertex's
// in-edges, Apply installs the new value at the vertex's master replica,
// and Scatter activates out-neighbors. Mirror synchronization traffic is
// derived from the actual replication factor of the hash vertex-cut, the
// quantity PowerGraph's design optimizes.
//
// The paper finds PowerGraph the fastest and most scalable of the
// distributed systems it compares against (§7.2); this engine's cost
// profile reflects that (compiled C++ core, lean barriers, low object
// overhead).
package gas

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/cluster"
	"repro/internal/csr"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// Program is a GAS vertex program over value type V and gather type G.
type Program[V, G any] interface {
	// Init returns a vertex's initial value and whether it starts active.
	Init(v uint32, g *csr.Graph) (V, bool)
	// Gather folds src's contribution (for the in-edge src -> v) into the
	// accumulator.
	Gather(g *csr.Graph, src uint32, srcVal V, v uint32) G
	// Sum combines two gather accumulators.
	Sum(a, b G) G
	// Apply computes v's new value from the gathered accumulator; gathered
	// is false when the vertex had no in-edges. changed gates Scatter.
	Apply(v uint32, old V, acc G, gathered bool) (val V, changed bool)
	// ScatterActivates reports whether a changed vertex activates its
	// out-neighbors for the next iteration (traversal algorithms) or the
	// engine runs a fixed number of sweeps (fixed-point algorithms).
	ScatterActivates() bool
	// Iterations bounds the run for fixed-sweep programs; 0 means run
	// until the active set drains.
	Iterations() int
	// ValueBytes sizes memory and mirror-sync accounting.
	ValueBytes() int64
}

// Profile holds PowerGraph's cost constants.
type Profile struct {
	Barrier        sim.Time
	CyclesPerEdge  float64
	CyclesPerApply float64
	Efficiency     float64
	ObjectOverhead float64
	GatherMsgBytes int64
}

// PowerGraph returns the paper-calibrated profile.
func PowerGraph() Profile {
	return Profile{
		Barrier:        120 * sim.Millisecond,
		CyclesPerEdge:  1800,
		CyclesPerApply: 900,
		Efficiency:     0.75,
		ObjectOverhead: 2.5,
		GatherMsgBytes: 8,
	}
}

// Engine binds the profile to a cluster.
type Engine struct {
	Cluster cluster.Spec
	Profile Profile
}

// New returns an engine; it validates the cluster spec.
func New(c cluster.Spec) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cluster: c, Profile: PowerGraph()}, nil
}

// Result reports a finished GAS run.
type Result[V any] struct {
	Values     []V
	Elapsed    sim.Time
	Iterations int
	// ReplicationFactor is the measured average replicas per vertex under
	// the hash vertex-cut — PowerGraph's key scalability metric.
	ReplicationFactor float64
	NetworkBytes      int64
}

// replication assigns each edge to worker hash(u,v) mod W and counts, for
// every vertex, the distinct workers its edges land on (its replicas).
func replication(g *csr.Graph, workers int) (perVertex []int, avg float64) {
	n := int(g.NumVertices())
	words := (workers + 63) / 64
	marks := make([]uint64, n*words)
	mark := func(v uint32, w int) {
		marks[int(v)*words+w/64] |= 1 << (uint(w) % 64)
	}
	for u := 0; u < n; u++ {
		for _, t := range g.Out(uint32(u)) {
			w := int((uint64(u)*0x9E3779B97F4A7C15 ^ uint64(t)*0xBF58476D1CE4E5B9) % uint64(workers))
			mark(uint32(u), w)
			mark(t, w)
		}
	}
	perVertex = make([]int, n)
	var total int
	for v := 0; v < n; v++ {
		c := 0
		for w := 0; w < words; w++ {
			c += popcount(marks[v*words+w])
		}
		if c == 0 {
			c = 1 // isolated vertices live on their hash worker only
		}
		perVertex[v] = c
		total += c
	}
	return perVertex, float64(total) / float64(n)
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Run executes prog over g. The gather direction is in-edges, supplied by
// rev = g.Transpose() (callers typically share one transpose across runs).
func Run[V, G any](e *Engine, g, rev *csr.Graph, prog Program[V, G]) (*Result[V], error) {
	n := int(g.NumVertices())
	w := e.Cluster.Workers

	perVertex, avgRep := replication(g, w)

	// Memory: each worker holds its edge partition plus a replica row per
	// vertex replica (value + metadata).
	var replicaBytes int64
	for _, c := range perVertex {
		replicaBytes += int64(c) * (prog.ValueBytes() + 16)
	}
	perWorker := (int64(g.NumEdges())*8 + replicaBytes) / int64(w)
	perWorker = int64(float64(perWorker) * e.Profile.ObjectOverhead)
	if err := e.Cluster.CheckMemory(perWorker, "PowerGraph vertex-cut partition"); err != nil {
		return nil, err
	}

	values := make([]V, n)
	active := bitset.New(n)
	for v := 0; v < n; v++ {
		val, act := prog.Init(uint32(v), g)
		values[v] = val
		if act {
			active.Set(v)
		}
	}

	res := &Result[V]{ReplicationFactor: avgRep}
	var elapsed sim.Time
	maxIters := prog.Iterations()
	for iter := 0; ; iter++ {
		if maxIters > 0 && iter >= maxIters {
			break
		}
		if maxIters == 0 && !active.Any() {
			break
		}
		if iter > 100000 {
			return nil, fmt.Errorf("gas: did not converge in 100000 iterations")
		}

		next := bitset.New(n)
		var gatherEdges, applies, scatterEdges, syncMsgs int64
		first := iter == 0
		// Fixed-sweep programs (PageRank) are Jacobi iterations: gathers
		// read the previous sweep's values, not in-place updates.
		readVals := values
		if maxIters > 0 {
			readVals = append([]V(nil), values...)
		}
		process := func(v int) {
			vv := uint32(v)
			var acc G
			gathered := false
			for _, src := range rev.Out(vv) {
				contrib := prog.Gather(g, src, readVals[src], vv)
				if gathered {
					acc = prog.Sum(acc, contrib)
				} else {
					acc = contrib
					gathered = true
				}
			}
			gatherEdges += int64(rev.Degree(uint64(vv)))
			val, changed := prog.Apply(vv, values[v], acc, gathered)
			values[v] = val
			applies++
			// Mirror sync: gather partials flow in, the applied value
			// flows back out — 2*(replicas-1) messages.
			syncMsgs += 2 * int64(perVertex[v]-1)
			// A signaled vertex scatters on its first activation even if
			// Apply saw no change (the source's level is already 0).
			if (changed || first) && prog.ScatterActivates() {
				for _, t := range g.Out(vv) {
					next.Set(int(t))
				}
				scatterEdges += int64(g.Degree(uint64(vv)))
			}
		}
		if maxIters > 0 {
			for v := 0; v < n; v++ {
				process(v)
			}
		} else {
			active.ForEach(process)
		}

		cycles := float64(gatherEdges+scatterEdges)*e.Profile.CyclesPerEdge +
			float64(applies)*e.Profile.CyclesPerApply
		netBytes := syncMsgs * e.Profile.GatherMsgBytes
		elapsed += e.Cluster.Fixed(e.Profile.Barrier)
		elapsed += e.Cluster.ComputeTime(cycles, e.Profile.Efficiency)
		elapsed += e.Cluster.ShuffleTime(netBytes, 2)
		res.NetworkBytes += netBytes
		res.Iterations++
		active = next
	}
	res.Values = values
	res.Elapsed = elapsed
	return res, nil
}

// The concrete programs below mirror the Pregel ones so every distributed
// engine computes identical answers.

// BFSProgram computes levels from Source.
type BFSProgram struct{ Source uint32 }

// Init implements Program.
func (p BFSProgram) Init(v uint32, _ *csr.Graph) (int16, bool) {
	if v == p.Source {
		return 0, true
	}
	return -1, false
}

// Gather implements Program: propose level srcVal+1 (or -1 if src unseen).
func (p BFSProgram) Gather(_ *csr.Graph, src uint32, srcVal int16, _ uint32) int16 {
	if srcVal < 0 {
		return -1
	}
	return srcVal + 1
}

// Sum implements Program (minimum over non-negative proposals).
func (p BFSProgram) Sum(a, b int16) int16 {
	if a < 0 {
		return b
	}
	if b < 0 || a < b {
		return a
	}
	return b
}

// Apply implements Program.
func (p BFSProgram) Apply(v uint32, old int16, acc int16, gathered bool) (int16, bool) {
	if v == p.Source {
		return 0, old != 0 // changed only on the first application
	}
	if gathered && acc >= 0 && (old < 0 || acc < old) {
		return acc, true
	}
	return old, false
}

// ScatterActivates implements Program.
func (p BFSProgram) ScatterActivates() bool { return true }

// Iterations implements Program.
func (p BFSProgram) Iterations() int { return 0 }

// ValueBytes implements Program.
func (p BFSProgram) ValueBytes() int64 { return 2 }

// PRProgram computes PageRank for a fixed sweep count, matching
// verify.PageRank's formulation.
type PRProgram struct {
	Damping float64
	Sweeps  int
	// NumVertices must be the graph's vertex count (Apply has no graph
	// access).
	NumVertices float64
}

// Init implements Program: everyone starts at the uniform prior.
func (p PRProgram) Init(_ uint32, g *csr.Graph) (float64, bool) {
	return 1 / float64(g.NumVertices()), true
}

// Gather implements Program: srcVal/outdeg(src) flows along src -> v.
func (p PRProgram) Gather(g *csr.Graph, src uint32, srcVal float64, _ uint32) float64 {
	return srcVal / float64(g.Degree(uint64(src)))
}

// Sum implements Program.
func (p PRProgram) Sum(a, b float64) float64 { return a + b }

// Apply implements Program: the damped update with teleport term.
func (p PRProgram) Apply(v uint32, old float64, acc float64, gathered bool) (float64, bool) {
	base := (1 - p.Damping) / p.NumVertices
	if !gathered {
		return base, true
	}
	return base + p.Damping*acc, true
}

// ScatterActivates implements Program.
func (p PRProgram) ScatterActivates() bool { return false }

// Iterations implements Program.
func (p PRProgram) Iterations() int { return p.Sweeps }

// ValueBytes implements Program.
func (p PRProgram) ValueBytes() int64 { return 8 }

// SSSPProgram computes shortest paths from Source with kernels.Weight.
type SSSPProgram struct{ Source uint32 }

// Init implements Program.
func (p SSSPProgram) Init(v uint32, _ *csr.Graph) (float64, bool) {
	if v == p.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Gather implements Program.
func (p SSSPProgram) Gather(_ *csr.Graph, src uint32, srcVal float64, v uint32) float64 {
	return srcVal + float64(kernels.Weight(uint64(src), uint64(v)))
}

// Sum implements Program.
func (p SSSPProgram) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (p SSSPProgram) Apply(v uint32, old float64, acc float64, gathered bool) (float64, bool) {
	if v == p.Source {
		return 0, old != 0
	}
	if gathered && acc < old {
		return acc, true
	}
	return old, false
}

// ScatterActivates implements Program.
func (p SSSPProgram) ScatterActivates() bool { return true }

// Iterations implements Program.
func (p SSSPProgram) Iterations() int { return 0 }

// ValueBytes implements Program.
func (p SSSPProgram) ValueBytes() int64 { return 8 }

// CCProgram computes weakly-connected components by min-label flooding.
// Run it over the *undirected* view of the graph (pass it as both g and
// rev) so labels traverse edges in both directions.
type CCProgram struct{}

// Init implements Program: every vertex starts as its own component,
// active so the first iteration floods all labels.
func (p CCProgram) Init(v uint32, _ *csr.Graph) (uint32, bool) { return v, true }

// Gather implements Program.
func (p CCProgram) Gather(_ *csr.Graph, _ uint32, srcVal uint32, _ uint32) uint32 { return srcVal }

// Sum implements Program (minimum).
func (p CCProgram) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Apply implements Program.
func (p CCProgram) Apply(_ uint32, old uint32, acc uint32, gathered bool) (uint32, bool) {
	if gathered && acc < old {
		return acc, true
	}
	return old, false
}

// ScatterActivates implements Program.
func (p CCProgram) ScatterActivates() bool { return true }

// Iterations implements Program.
func (p CCProgram) Iterations() int { return 0 }

// ValueBytes implements Program.
func (p CCProgram) ValueBytes() int64 { return 4 }
