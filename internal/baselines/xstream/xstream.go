// Package xstream implements the edge-centric scatter-shuffle-gather engine
// of Roy, Mihailovic & Zwaenepoel (SOSP'13), the streaming design the
// paper's §8 contrasts GTS against. Every scatter phase streams the entire
// edge list sequentially — even when almost no vertex is active — so
// traversal algorithms on high-diameter graphs run one full-edge sweep per
// level and "do not finish in a reasonable amount of time". GTS's
// page-level hybrid of sequential and random access exists precisely to
// avoid this.
package xstream

import (
	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/sim"
	"repro/internal/verify"
)

// XStream binds the engine to a host and an optional storage stream rate.
type XStream struct {
	WS cpu.Workstation
	// StreamRate is the sequential storage bandwidth for out-of-core runs
	// (bytes/second); 0 means the edge list streams from main memory.
	StreamRate float64
}

// New returns an in-memory engine; NewOutOfCore one streaming from disk.
func New(ws cpu.Workstation) *XStream { return &XStream{WS: ws} }

// NewOutOfCore returns an engine streaming edges at rate bytes/second.
func NewOutOfCore(ws cpu.Workstation, rate float64) *XStream {
	return &XStream{WS: ws, StreamRate: rate}
}

// Cost constants.
const (
	xstreamEdgeBytes    = 8  // on-stream edge record
	xstreamUpdateBytes  = 8  // scatter output record
	xstreamEdgeCycles   = 7  // sequential streaming is cheap per edge
	xstreamUpdateCycles = 12 // shuffle bucketing + gather apply
	xstreamEfficiency   = 0.8
	xstreamPhaseSync    = 100 * sim.Microsecond
)

// Name identifies the engine.
func (x *XStream) Name() string { return "X-Stream" }

// iteration prices one scatter-shuffle-gather pass: the whole edge list
// streams in, updates stream out and back in.
func (x *XStream) iteration(edges, updates int64) sim.Time {
	readBytes := edges * xstreamEdgeBytes
	updateBytes := 2 * updates * xstreamUpdateBytes // write then read back
	cycles := float64(edges)*xstreamEdgeCycles + float64(updates)*xstreamUpdateCycles
	t := x.WS.Time(cycles, readBytes+updateBytes, xstreamEfficiency)
	if x.StreamRate > 0 {
		if st := sim.ByteTime(readBytes+updateBytes, x.StreamRate); st > t {
			t = st
		}
	}
	return t + 3*x.WS.Fixed(xstreamPhaseSync)
}

// BFS traverses from src. Every level scans the full edge list; only
// frontier sources emit updates.
func (x *XStream) BFS(g, rev *csr.Graph, src uint32) (*cpu.BFSResult, error) {
	if x.StreamRate == 0 {
		if err := x.WS.CheckMemory(g.Bytes()+int64(g.NumVertices())*8, "X-Stream edge list"); err != nil {
			return nil, err
		}
	} else if err := x.WS.CheckMemory(int64(g.NumVertices())*16, "X-Stream vertex state"); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	lv := make([]int16, n)
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	res := &cpu.BFSResult{}
	var elapsed sim.Time
	for level := int16(0); ; level++ {
		var updates int64
		changed := false
		// Scatter: stream every edge, emit an update when the source is
		// on the frontier.
		for v := 0; v < n; v++ {
			if lv[v] != level {
				continue
			}
			for _, t := range g.Out(uint32(v)) {
				updates++
				if lv[t] == -1 { // gather
					lv[t] = level + 1
					changed = true
				}
			}
		}
		res.EdgesScanned += int64(g.NumEdges()) // full sweep regardless
		elapsed += x.iteration(int64(g.NumEdges()), updates)
		res.Depth++
		if !changed {
			break
		}
	}
	res.Levels = lv
	res.Elapsed = elapsed
	return res, nil
}

// PageRank runs fixed iterations; every edge emits an update each pass.
func (x *XStream) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*cpu.PRResult, error) {
	if x.StreamRate == 0 {
		if err := x.WS.CheckMemory(g.Bytes()+int64(g.NumVertices())*16, "X-Stream edge list"); err != nil {
			return nil, err
		}
	}
	ranks := verify.PageRank(g, damping, iterations)
	var elapsed sim.Time
	for it := 0; it < iterations; it++ {
		elapsed += x.iteration(int64(g.NumEdges()), int64(g.NumEdges()))
	}
	return &cpu.PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}
