package xstream

import (
	"repro/internal/baselines/cpu"
	"repro/internal/csr"
	"repro/internal/sim"
	"repro/internal/verify"
)

// GraphChi is the parallel-sliding-windows engine of Kyrola, Blelloch &
// Guestrin (OSDI'12), the other out-of-core single-machine system the
// paper's §8 discusses. Its two structural handicaps there: each interval's
// shard must be *fully loaded* before computation starts (no streaming),
// and disk I/O does not overlap with computation — so every iteration pays
// load + compute + write serially, shard by shard.
type GraphChi struct {
	WS cpu.Workstation
	// StreamRate is the storage bandwidth (bytes/second); GraphChi always
	// runs out of core.
	StreamRate float64
	// Shards is the number of intervals the vertex range is split into
	// (each shard's vertex data must fit in memory).
	Shards int
}

// NewGraphChi returns the engine over the given storage bandwidth.
func NewGraphChi(ws cpu.Workstation, rate float64, shards int) *GraphChi {
	if shards < 1 {
		shards = 1
	}
	return &GraphChi{WS: ws, StreamRate: rate, Shards: shards}
}

// Cost constants. The per-edge compute is cheap (sequential shard order);
// the pain is serialized I/O and the per-shard load barrier.
const (
	graphchiEdgeBytes  = 12 // edge with in-shard value
	graphchiEdgeCycles = 10
	graphchiEfficiency = 0.75
	graphchiShardSetup = 2 * sim.Millisecond
)

// Name identifies the engine.
func (gc *GraphChi) Name() string { return "GraphChi" }

// iteration prices one full pass: for each of the Shards intervals, load
// the shard + its sliding windows (about 2x the interval's edges), compute,
// and write updated edge values back — all serialized.
func (gc *GraphChi) iteration(edges int64) sim.Time {
	perShardEdges := edges / int64(gc.Shards)
	var t sim.Time
	for s := 0; s < gc.Shards; s++ {
		loadBytes := 2 * perShardEdges * graphchiEdgeBytes // shard + windows
		writeBytes := perShardEdges * graphchiEdgeBytes
		io := sim.ByteTime(loadBytes+writeBytes, gc.StreamRate)
		compute := gc.WS.Time(float64(perShardEdges)*graphchiEdgeCycles,
			perShardEdges*graphchiEdgeBytes, graphchiEfficiency)
		// No overlap: I/O then compute, plus the shard switch barrier.
		t += io + compute + gc.WS.Fixed(graphchiShardSetup)
	}
	return t
}

// BFS traverses from src; like X-Stream, every level is a full pass.
func (gc *GraphChi) BFS(g, rev *csr.Graph, src uint32) (*cpu.BFSResult, error) {
	if err := gc.WS.CheckMemory(int64(g.NumVertices())*16/int64(gc.Shards), "GraphChi interval"); err != nil {
		return nil, err
	}
	lv := verify.BFS(g, src)
	depth := 0
	for _, l := range lv {
		if int(l) > depth {
			depth = int(l)
		}
	}
	levels := depth + 1
	res := &cpu.BFSResult{Levels: lv, Depth: levels}
	for i := 0; i < levels; i++ {
		res.Elapsed += gc.iteration(int64(g.NumEdges()))
		res.EdgesScanned += int64(g.NumEdges())
	}
	return res, nil
}

// PageRank runs fixed full passes.
func (gc *GraphChi) PageRank(g, rev *csr.Graph, damping float64, iterations int) (*cpu.PRResult, error) {
	if err := gc.WS.CheckMemory(int64(g.NumVertices())*16/int64(gc.Shards), "GraphChi interval"); err != nil {
		return nil, err
	}
	ranks := verify.PageRank(g, damping, iterations)
	var elapsed sim.Time
	for i := 0; i < iterations; i++ {
		elapsed += gc.iteration(int64(g.NumEdges()))
	}
	return &cpu.PRResult{Ranks: ranks, Elapsed: elapsed}, nil
}
