package xstream

import (
	"testing"

	"repro/internal/baselines/cpu"
	"repro/internal/graphgen"
	"repro/internal/verify"
)

func TestBFSMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	want := verify.BFS(g, 0)
	res, err := New(cpu.Paper()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("vertex %d level = %d, want %d", v, res.Levels[v], want[v])
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	want := verify.PageRank(g, 0.85, 3)
	res, err := New(cpu.Paper()).PageRank(g, g.Transpose(), 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Ranks[v] != want[v] {
			t.Fatalf("vertex %d rank mismatch", v)
		}
	}
}

func TestFullSweepPerLevel(t *testing.T) {
	// The defining pathology: every BFS level streams ALL edges.
	g := graphgen.Path(500)
	res, err := New(cpu.Paper()).BFS(g, g.Transpose(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantScans := int64(res.Depth) * int64(g.NumEdges())
	if res.EdgesScanned != wantScans {
		t.Errorf("EdgesScanned = %d, want %d (full sweep per level)", res.EdgesScanned, wantScans)
	}
}

func TestHighDiameterCatastrophicVsShallow(t *testing.T) {
	// A deep path costs vastly more per reached vertex than a shallow
	// star of the same edge count — the §8 argument for GTS's page-level
	// random access.
	n := 2000
	deep, err := New(cpu.Paper()).BFS(graphgen.Path(n), graphgen.Path(n).Transpose(), 0)
	if err != nil {
		t.Fatal(err)
	}
	star := graphgen.Star(n)
	shallow, err := New(cpu.Paper()).BFS(star, star.Transpose(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Elapsed < 100*shallow.Elapsed {
		t.Errorf("deep (%v) not >> shallow (%v)", deep.Elapsed, shallow.Elapsed)
	}
}

func TestOutOfCoreBoundByStreamRate(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	fast, err := New(cpu.Paper()).PageRank(g, rev, 0.85, 2)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewOutOfCore(cpu.Paper(), 50e6).PageRank(g, rev, 0.85, 2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed <= fast.Elapsed {
		t.Errorf("out-of-core (%v) not slower than in-memory (%v)", slow.Elapsed, fast.Elapsed)
	}
}

func TestGraphChiMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	gc := NewGraphChi(cpu.Paper(), 5e9, 4)
	bfs, err := gc.BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := verify.BFS(g, 0)
	for v := range want {
		if bfs.Levels[v] != want[v] {
			t.Fatalf("vertex %d level mismatch", v)
		}
	}
	pr, err := gc.PageRank(g, rev, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantPR := verify.PageRank(g, 0.85, 3)
	for v := range wantPR {
		if pr.Ranks[v] != wantPR[v] {
			t.Fatalf("vertex %d rank mismatch", v)
		}
	}
}

func TestGraphChiSlowerThanXStream(t *testing.T) {
	// Paper §8: GraphChi "shows a worse performance than X-Stream, due to
	// requiring fully loading (not streaming) a shard file and no
	// overlapping between disk I/O and computation."
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	rev := g.Transpose()
	ws := cpu.Paper()
	xs, err := NewOutOfCore(ws, 5e9).PageRank(g, rev, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGraphChi(ws, 5e9, 4).PageRank(g, rev, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Elapsed <= xs.Elapsed {
		t.Errorf("GraphChi (%v) not slower than X-Stream (%v)", gc.Elapsed, xs.Elapsed)
	}
}

func TestGraphChiShardFloor(t *testing.T) {
	gc := NewGraphChi(cpu.Paper(), 5e9, 0)
	if gc.Shards != 1 {
		t.Errorf("Shards = %d, want floor 1", gc.Shards)
	}
}
