// Package pregel implements a Bulk-Synchronous-Parallel vertex-centric
// framework in the style of Google's Pregel: vertex programs run in
// supersteps, exchanging messages that are delivered at the next superstep,
// with optional sender-side combiners.
//
// Two of the paper's distributed baselines execute on it with different
// runtime profiles: Apache Giraph (JVM object overhead, heavyweight
// Hadoop-coordinated barriers) and Naiad (lean timely-dataflow coordination
// but the largest in-memory state, which is why the paper finds it the
// least scalable). Execution is functional — results are exact — while
// compute, shuffle and barrier costs accrue against a cluster.Spec.
package pregel

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cluster"
	"repro/internal/csr"
	"repro/internal/sim"
)

// Program is a vertex program over value type V and message type M.
// Compute runs for every vertex that is active or has incoming messages.
type Program[V, M any] interface {
	// Init returns a vertex's initial value and whether it starts active.
	Init(v uint32, g *csr.Graph) (V, bool)
	// Compute consumes the previous superstep's messages and returns the
	// new value and whether the vertex stays active. send queues a message
	// for delivery at the next superstep.
	Compute(superstep int, v uint32, val V, msgs []M, g *csr.Graph, send func(dst uint32, m M)) (V, bool)
	// Combine merges two messages for the same destination; ok=false means
	// the program has no combiner and messages accumulate individually.
	Combine(a, b M) (m M, ok bool)
	// MessageBytes and ValueBytes size network and memory accounting.
	MessageBytes() int64
	ValueBytes() int64
}

// Profile captures one BSP runtime's cost characteristics.
type Profile struct {
	Name string
	// Barrier is the per-superstep global coordination overhead.
	Barrier sim.Time
	// CyclesPerEdge / CyclesPerVertex / CyclesPerMessage price the compute.
	CyclesPerEdge    float64
	CyclesPerVertex  float64
	CyclesPerMessage float64
	// Efficiency in (0,1] is parallel efficiency across cores.
	Efficiency float64
	// ObjectOverhead multiplies raw graph bytes for resident memory (JVM
	// boxing, framework metadata).
	ObjectOverhead float64
	// MessageOverhead multiplies raw message bytes for peak buffer memory.
	MessageOverhead float64
}

// Giraph returns the Apache Giraph runtime profile: the paper finds it the
// slowest of the distributed systems (Hadoop-style barriers, JVM objects).
func Giraph() Profile {
	return Profile{
		Name:             "Giraph",
		Barrier:          1200 * sim.Millisecond,
		CyclesPerEdge:    9000,
		CyclesPerVertex:  4000,
		CyclesPerMessage: 14000,
		Efficiency:       0.55,
		ObjectOverhead:   6.0,
		MessageOverhead:  8.0,
	}
}

// Naiad returns the Naiad runtime profile: low coordination overhead and a
// fast compiled core, but the whole dataflow's state and buffers stay
// resident — the paper finds it the least scalable, failing with O.O.M.
// where others still run (§7.1, §7.2).
func Naiad() Profile {
	return Profile{
		Name:             "Naiad",
		Barrier:          40 * sim.Millisecond,
		CyclesPerEdge:    2500,
		CyclesPerVertex:  1200,
		CyclesPerMessage: 3500,
		Efficiency:       0.7,
		ObjectOverhead:   11.0,
		MessageOverhead:  14.0,
	}
}

// Engine binds a profile to a cluster.
type Engine struct {
	Cluster cluster.Spec
	Profile Profile
}

// New returns an engine; it validates the cluster spec.
func New(c cluster.Spec, p Profile) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cluster: c, Profile: p}, nil
}

// Result reports a finished BSP run.
type Result[V any] struct {
	Values     []V
	Elapsed    sim.Time
	Supersteps int
	// Messages counts sends before combining; NetworkBytes the shuffled
	// volume (remote messages only).
	Messages     int64
	NetworkBytes int64
}

// Run executes prog over g on the engine's cluster until no vertex is
// active and no messages are in flight. It returns hw.ErrOutOfMemory
// (wrapped) if any worker's peak footprint exceeds its budget.
func Run[V, M any](e *Engine, g *csr.Graph, prog Program[V, M]) (*Result[V], error) {
	n := int(g.NumVertices())
	w := e.Cluster.Workers
	owner := func(v uint32) int { return int(v) % w }

	// Static per-worker footprint: the hash-partitioned vertex values and
	// edges, inflated by the runtime's object overhead.
	rawPerWorker := (int64(n)*prog.ValueBytes() + int64(g.NumEdges())*8 + int64(n)*8) / int64(w)
	static := int64(float64(rawPerWorker) * e.Profile.ObjectOverhead)
	if err := e.Cluster.CheckMemory(static, e.Profile.Name+" graph partition"); err != nil {
		return nil, err
	}

	values := make([]V, n)
	active := bitset.New(n)
	for v := 0; v < n; v++ {
		val, act := prog.Init(uint32(v), g)
		values[v] = val
		if act {
			active.Set(v)
		}
	}

	inbox := make([][]M, n)
	res := &Result[V]{}
	var elapsed sim.Time
	for {
		if res.Supersteps > 100000 {
			return nil, fmt.Errorf("pregel: %s did not converge in 100000 supersteps", e.Profile.Name)
		}
		// Anything to do this superstep?
		anyWork := active.Any()
		if !anyWork {
			for v := range inbox {
				if len(inbox[v]) > 0 {
					anyWork = true
					break
				}
			}
		}
		if !anyWork {
			break
		}

		next := make([][]M, n)
		var cycles float64
		var sent, remote, msgsProcessed int64
		nextActive := bitset.New(n)
		for v := 0; v < n; v++ {
			if !active.Get(v) && len(inbox[v]) == 0 {
				continue
			}
			vv := uint32(v)
			send := func(dst uint32, m M) {
				sent++
				if owner(dst) != owner(vv) {
					remote++
				}
				if len(next[dst]) > 0 {
					if c, ok := prog.Combine(next[dst][len(next[dst])-1], m); ok {
						next[dst][len(next[dst])-1] = c
						return
					}
				}
				next[dst] = append(next[dst], m)
			}
			val, act := prog.Compute(res.Supersteps, vv, values[v], inbox[v], g, send)
			values[v] = val
			if act {
				nextActive.Set(v)
			}
			cycles += e.Profile.CyclesPerVertex + float64(g.Degree(uint64(v)))*e.Profile.CyclesPerEdge
			msgsProcessed += int64(len(inbox[v]))
		}
		cycles += float64(msgsProcessed+sent) * e.Profile.CyclesPerMessage

		// Peak per-worker message buffer this superstep.
		msgBytes := sent * prog.MessageBytes()
		peak := static + int64(float64(msgBytes)/float64(w)*e.Profile.MessageOverhead)
		if err := e.Cluster.CheckMemory(peak, e.Profile.Name+" message buffers"); err != nil {
			return nil, err
		}

		netBytes := remote * prog.MessageBytes()
		elapsed += e.Cluster.Fixed(e.Profile.Barrier)
		elapsed += e.Cluster.ComputeTime(cycles, e.Profile.Efficiency)
		elapsed += e.Cluster.ShuffleTime(netBytes, 1)

		res.Messages += sent
		res.NetworkBytes += netBytes
		res.Supersteps++
		inbox = next
		active = nextActive
	}
	res.Values = values
	res.Elapsed = elapsed
	return res, nil
}
