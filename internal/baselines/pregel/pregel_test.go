package pregel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/verify"
)

func testEngine(t *testing.T, p Profile) *Engine {
	t.Helper()
	e, err := New(cluster.Paper(), p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBFSMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	want := verify.BFS(g, 0)
	for _, prof := range []Profile{Giraph(), Naiad()} {
		e := testEngine(t, prof)
		res, err := Run(e, g, BFSProgram{Source: 0})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%s: vertex %d level = %d, want %d", prof.Name, v, res.Values[v], want[v])
			}
		}
		if res.Supersteps < 2 || res.Messages == 0 || res.Elapsed <= 0 {
			t.Errorf("%s: degenerate run %+v", prof.Name, res)
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	want := verify.PageRank(g, 0.85, 5)
	e := testEngine(t, Giraph())
	res, err := Run(e, g, PRProgram{Damping: 0.85, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d rank = %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Supersteps != 6 { // seed + 5 iterations
		t.Errorf("supersteps = %d, want 6", res.Supersteps)
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	want := verify.SSSP(g, 0, kernels.Weight)
	e := testEngine(t, Naiad())
	res, err := Run(e, g, SSSPProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d dist = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 12)
	want := verify.WCC(g)
	e := testEngine(t, Giraph())
	res, err := Run(e, g, CCProgram{Rev: g.Transpose()})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d label = %d, want %d", v, res.Values[v], want[v])
		}
	}
}

func TestNaiadFasterButHungrier(t *testing.T) {
	// The paper: Naiad is quick when it fits but the least scalable.
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	giraph, err := Run(testEngine(t, Giraph()), g, BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	naiad, err := Run(testEngine(t, Naiad()), g, BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if naiad.Elapsed >= giraph.Elapsed {
		t.Errorf("Naiad (%v) not faster than Giraph (%v)", naiad.Elapsed, giraph.Elapsed)
	}
	if Naiad().ObjectOverhead <= Giraph().ObjectOverhead {
		t.Error("Naiad must have the larger memory footprint")
	}
}

func TestOOMOnTinyCluster(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	small := cluster.Paper()
	small.MemoryPerWorker = 1 << 10
	e, err := New(small, Giraph())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, g, BFSProgram{Source: 0}); !errors.Is(err, hw.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestCombinerKeepsOneMessagePerDest(t *testing.T) {
	// On a star every spoke gets one combined message regardless of how
	// the hub fans out. Reaching all spokes in 2 supersteps proves
	// delivery works with combining.
	g := graphgen.Star(100)
	e := testEngine(t, Giraph())
	res, err := Run(e, g, BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", res.Supersteps)
	}
	for v := 1; v < 100; v++ {
		if res.Values[v] != 1 {
			t.Fatalf("spoke %d level = %d", v, res.Values[v])
		}
	}
}

func TestInvalidClusterRejected(t *testing.T) {
	if _, err := New(cluster.Spec{}, Giraph()); err == nil {
		t.Error("empty cluster accepted")
	}
}

// uncombined strips a program's combiner, for the combiner ablation.
type uncombined struct{ BFSProgram }

func (u uncombined) Combine(a, b int16) (int16, bool) { return a, false }

func TestCombinerAblation(t *testing.T) {
	// Without the sender-side combiner, a skewed graph delivers one
	// message per in-edge instead of one per vertex: more network bytes,
	// more compute, same answer — the reason Pregel systems ship
	// combiners at all.
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	with, err := Run(testEngine(t, Giraph()), g, BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(testEngine(t, Giraph()), g, uncombined{BFSProgram{Source: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range with.Values {
		if with.Values[v] != without.Values[v] {
			t.Fatalf("combiner changed vertex %d's level", v)
		}
	}
	if without.Elapsed <= with.Elapsed {
		t.Errorf("no combiner (%v) not slower than combiner (%v)", without.Elapsed, with.Elapsed)
	}
}
