package pregel

import (
	"math"

	"repro/internal/csr"
	"repro/internal/kernels"
)

// BFSProgram computes traversal levels from Source. Values are levels
// (-1 = unvisited); messages propose levels, combined by minimum.
type BFSProgram struct {
	Source uint32
}

// Init implements Program.
func (p BFSProgram) Init(v uint32, _ *csr.Graph) (int16, bool) {
	if v == p.Source {
		return 0, true
	}
	return -1, false
}

// Compute implements Program.
func (p BFSProgram) Compute(ss int, v uint32, val int16, msgs []int16, g *csr.Graph, send func(uint32, int16)) (int16, bool) {
	improved := false
	if val == -1 {
		for _, m := range msgs {
			if val == -1 || m < val {
				val = m
			}
		}
		improved = val != -1
	}
	if (ss == 0 && v == p.Source) || improved {
		for _, t := range g.Out(v) {
			send(t, val+1)
		}
	}
	return val, false
}

// Combine implements Program (minimum).
func (p BFSProgram) Combine(a, b int16) (int16, bool) {
	if a < b {
		return a, true
	}
	return b, true
}

// MessageBytes implements Program.
func (p BFSProgram) MessageBytes() int64 { return 2 }

// ValueBytes implements Program.
func (p BFSProgram) ValueBytes() int64 { return 2 }

// PRProgram computes PageRank for a fixed iteration count with damping df,
// matching verify.PageRank's formulation. Messages are rank contributions,
// combined by sum. Superstep 0 seeds the uniform prior; supersteps 1..k
// apply the update; the run ends after k+1 supersteps.
type PRProgram struct {
	Damping    float64
	Iterations int
}

// Init implements Program.
func (p PRProgram) Init(uint32, *csr.Graph) (float64, bool) { return 0, true }

// Compute implements Program.
func (p PRProgram) Compute(ss int, v uint32, val float64, msgs []float64, g *csr.Graph, send func(uint32, float64)) (float64, bool) {
	n := float64(g.NumVertices())
	if ss == 0 {
		val = 1 / n
	} else {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		val = (1-p.Damping)/n + p.Damping*sum
	}
	if ss < p.Iterations {
		if out := g.Out(v); len(out) > 0 {
			c := val / float64(len(out))
			for _, t := range out {
				send(t, c)
			}
		}
		return val, true
	}
	return val, false
}

// Combine implements Program (sum).
func (p PRProgram) Combine(a, b float64) (float64, bool) { return a + b, true }

// MessageBytes implements Program.
func (p PRProgram) MessageBytes() int64 { return 8 }

// ValueBytes implements Program.
func (p PRProgram) ValueBytes() int64 { return 8 }

// SSSPProgram computes shortest paths from Source with the repository's
// deterministic edge weights (kernels.Weight). Messages propose distances,
// combined by minimum.
type SSSPProgram struct {
	Source uint32
}

// Init implements Program.
func (p SSSPProgram) Init(v uint32, _ *csr.Graph) (float64, bool) {
	if v == p.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program.
func (p SSSPProgram) Compute(ss int, v uint32, val float64, msgs []float64, g *csr.Graph, send func(uint32, float64)) (float64, bool) {
	best := val
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if (ss == 0 && v == p.Source) || best < val {
		for _, t := range g.Out(v) {
			send(t, best+float64(kernels.Weight(uint64(v), uint64(t))))
		}
	}
	return best, false
}

// Combine implements Program (minimum).
func (p SSSPProgram) Combine(a, b float64) (float64, bool) { return math.Min(a, b), true }

// MessageBytes implements Program.
func (p SSSPProgram) MessageBytes() int64 { return 8 }

// ValueBytes implements Program.
func (p SSSPProgram) ValueBytes() int64 { return 8 }

// CCProgram computes weakly-connected components by min-label propagation
// over both edge directions (the transpose view supplies in-edges).
type CCProgram struct {
	// Rev must be g.Transpose(); label floods need both directions to
	// match weak connectivity on a directed graph.
	Rev *csr.Graph
}

// Init implements Program.
func (p CCProgram) Init(v uint32, _ *csr.Graph) (uint32, bool) { return v, true }

// Compute implements Program.
func (p CCProgram) Compute(ss int, v uint32, val uint32, msgs []uint32, g *csr.Graph, send func(uint32, uint32)) (uint32, bool) {
	best := val
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if ss == 0 || best < val {
		for _, t := range g.Out(v) {
			send(t, best)
		}
		for _, t := range p.Rev.Out(v) {
			send(t, best)
		}
	}
	return best, false
}

// Combine implements Program (minimum).
func (p CCProgram) Combine(a, b uint32) (uint32, bool) {
	if a < b {
		return a, true
	}
	return b, true
}

// MessageBytes implements Program.
func (p CCProgram) MessageBytes() int64 { return 4 }

// ValueBytes implements Program.
func (p CCProgram) ValueBytes() int64 { return 4 }
