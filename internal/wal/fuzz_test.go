package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary byte streams — torn records, bit flips,
// truncations, garbage — to Replay and checks the recovery contract:
// never panic, recover only a valid committed prefix, and be idempotent
// (re-encoding the recovered batches and replaying again yields the same
// history, which is exactly what Open's truncate-then-reopen path does).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, 1, nil))
	f.Add(AppendFrame(nil, 1, []Op{{Src: 1, Dst: 2}}))
	two := AppendFrame(nil, 1, []Op{{Src: 1, Dst: 2}, {Del: true, Src: 3, Dst: 4}})
	two = AppendFrame(two, 2, []Op{{Src: 5, Dst: 6}})
	f.Add(two)
	f.Add(two[:len(two)-5])                   // torn tail
	f.Add(append([]byte{0xde, 0xad}, two...)) // leading garbage
	f.Add(bytes.Repeat([]byte{0x57, 0x4c, 0x54, 0x47}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, validLen := Replay(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		// LSNs must be dense from 1.
		total := 0
		for i, b := range batches {
			if b.LSN != uint64(i+1) {
				t.Fatalf("batch %d has LSN %d", i, b.LSN)
			}
			total += frameSize(len(b.Ops))
		}
		if total != validLen {
			t.Fatalf("recovered frames span %d bytes but validLen = %d", total, validLen)
		}
		// Idempotence: re-encode the recovered history and replay it.
		var img []byte
		for _, b := range batches {
			img = AppendFrame(img, b.LSN, b.Ops)
		}
		if !bytes.Equal(img, data[:validLen]) {
			t.Fatal("re-encoded committed prefix differs from on-disk bytes")
		}
		again, againLen := Replay(img)
		if againLen != len(img) || len(again) != len(batches) {
			t.Fatalf("replay of committed prefix: %d batches / %d bytes, want %d / %d",
				len(again), againLen, len(batches), len(img))
		}
	})
}
