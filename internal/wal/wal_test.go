package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

func tmpWAL(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func mustOpen(t *testing.T, path string, opts Options) (*Log, []Batch) {
	t.Helper()
	l, batches, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, batches
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := tmpWAL(t)
	l, batches := mustOpen(t, path, Options{})
	if len(batches) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(batches))
	}
	want := [][]Op{
		{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
		{{Del: true, Src: 0, Dst: 1}},
		{{Src: 7, Dst: 7}, {Src: 2, Dst: 0}, {Del: true, Src: 9, Dst: 9}},
	}
	for i, ops := range want {
		lsn, err := l.Append(ops)
		if err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append #%d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i, b := range got {
		if b.LSN != uint64(i+1) {
			t.Errorf("batch %d: LSN = %d, want %d", i, b.LSN, i+1)
		}
		if len(b.Ops) != len(want[i]) {
			t.Fatalf("batch %d: %d ops, want %d", i, len(b.Ops), len(want[i]))
		}
		for j, op := range b.Ops {
			if op != (Op{Del: want[i][j].Del, Src: want[i][j].Src, Dst: want[i][j].Dst}) {
				t.Errorf("batch %d op %d: %+v, want %+v", i, j, op, want[i][j])
			}
		}
	}
	if l2.LSN() != 3 {
		t.Errorf("reopened LSN = %d, want 3", l2.LSN())
	}
	st := l2.Stats()
	if st.ReplayedBatches != 3 || st.TruncatedBytes != 0 {
		t.Errorf("reopen stats = %+v, want 3 replayed / 0 truncated", st)
	}
}

func TestEmptyBatchCommits(t *testing.T) {
	path := tmpWAL(t)
	l, _ := mustOpen(t, path, Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	l.Close()
	l2, batches := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(batches) != 1 || batches[0].LSN != 1 || len(batches[0].Ops) != 0 {
		t.Fatalf("replayed %+v, want one empty batch at LSN 1", batches)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := tmpWAL(t)
	l, _ := mustOpen(t, path, Options{})
	l.Append([]Op{{Src: 1, Dst: 2}})
	l.Append([]Op{{Src: 3, Dst: 4}})
	l.Close()

	// Simulate a torn third record: append a strict prefix of a valid frame.
	frame := AppendFrame(nil, 3, []Op{{Src: 5, Dst: 6}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	goodLen := len(data)
	data = append(data, frame[:len(frame)-3]...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, batches := mustOpen(t, path, Options{})
	if len(batches) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(batches))
	}
	st := l2.Stats()
	if st.TruncatedBytes != int64(len(frame)-3) {
		t.Errorf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(frame)-3)
	}
	// The torn tail is physically gone: appending LSN 3 lands where the torn
	// record started, and a reopen sees 3 clean batches.
	if _, err := l2.Append([]Op{{Src: 5, Dst: 6}}); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	l2.Close()
	onDisk, _ := os.ReadFile(path)
	if len(onDisk) != goodLen+len(frame) {
		t.Errorf("file length = %d, want %d", len(onDisk), goodLen+len(frame))
	}
	l3, batches3 := mustOpen(t, path, Options{})
	defer l3.Close()
	if len(batches3) != 3 {
		t.Errorf("final replay got %d batches, want 3", len(batches3))
	}
}

func TestReplayRejectsCorruption(t *testing.T) {
	var img []byte
	img = AppendFrame(img, 1, []Op{{Src: 1, Dst: 2}})
	img = AppendFrame(img, 2, []Op{{Del: true, Src: 1, Dst: 2}})
	good := len(img)
	img = AppendFrame(img, 3, []Op{{Src: 9, Dst: 9}})

	cases := map[string]func([]byte) []byte{
		"bit flip in third frame body": func(b []byte) []byte {
			b[good+headerLen] ^= 0xff
			return b
		},
		"bad magic": func(b []byte) []byte {
			b[good] ^= 0x01
			return b
		},
		"lsn gap": func(b []byte) []byte {
			b[good+4] = 9 // lsn 3 -> garbage
			return b
		},
		"truncated mid-header": func(b []byte) []byte { return b[:good+5] },
		"truncated mid-crc":    func(b []byte) []byte { return b[:len(b)-2] },
		"giant count": func(b []byte) []byte {
			// count field implies more ops than bytes present.
			b[good+12] = 0xff
			b[good+13] = 0xff
			b[good+14] = 0xff
			b[good+15] = 0xff
			return b
		},
	}
	for name, mutate := range cases {
		data := mutate(append([]byte(nil), img...))
		batches, validLen := Replay(data)
		if len(batches) != 2 || validLen != good {
			t.Errorf("%s: recovered %d batches / %d bytes, want 2 / %d", name, len(batches), validLen, good)
		}
	}
}

func TestGroupCommit(t *testing.T) {
	path := tmpWAL(t)
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]Op{{Src: uint64(i), Dst: uint64(i + 1)}}); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.Fsyncs > st.Appends {
		t.Errorf("Fsyncs = %d > Appends = %d", st.Fsyncs, st.Appends)
	}
	// Every record is durable regardless of grouping.
	l.Close()
	l2, batches := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(batches) != n {
		t.Fatalf("replayed %d batches, want %d", len(batches), n)
	}
	seen := map[uint64]bool{}
	for _, b := range batches {
		seen[b.Ops[0].Src] = true
	}
	if len(seen) != n {
		t.Errorf("recovered %d distinct batches, want %d", len(seen), n)
	}
}

func TestCrashBeforeAppendLeavesNoTrace(t *testing.T) {
	path := tmpWAL(t)
	inj := fault.NewInjector(&fault.Plan{Seed: 1, WALCrashAppends: []int64{2}})
	l, _ := mustOpen(t, path, Options{Faults: inj})
	if _, err := l.Append([]Op{{Src: 1, Dst: 2}}); err != nil {
		t.Fatalf("Append #1: %v", err)
	}
	if _, err := l.Append([]Op{{Src: 3, Dst: 4}}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("Append #2 = %v, want ErrCrash", err)
	}
	if !l.Dead() {
		t.Fatal("log not dead after crash")
	}
	// Dead log rejects everything.
	if _, err := l.Append([]Op{{Src: 5, Dst: 6}}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("Append on dead log = %v, want ErrCrash", err)
	}
	l.Close()
	l2, batches := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(batches) != 1 || batches[0].Ops[0].Src != 1 {
		t.Fatalf("recovered %+v, want only batch 1", batches)
	}
	if l2.Stats().TruncatedBytes != 0 {
		t.Errorf("clean crash should tear nothing; truncated %d bytes", l2.Stats().TruncatedBytes)
	}
}

func TestCrashTornAppendRecoversPrefix(t *testing.T) {
	path := tmpWAL(t)
	inj := fault.NewInjector(&fault.Plan{Seed: 42, WALTornAppends: []int64{2}})
	l, _ := mustOpen(t, path, Options{Faults: inj})
	l.Append([]Op{{Src: 1, Dst: 2}})
	if _, err := l.Append([]Op{{Src: 3, Dst: 4}}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("torn append = %v, want ErrCrash", err)
	}
	l.Close()

	l2, batches := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(batches) != 1 {
		t.Fatalf("recovered %d batches, want 1", len(batches))
	}
	if l2.Stats().TruncatedBytes == 0 {
		t.Error("torn append left no tail to truncate — tear did not reach the file")
	}
	if inj.Stats().TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", inj.Stats().TornWrites)
	}
}

func TestCrashDuringFsyncIsDurable(t *testing.T) {
	// A crash during fsync loses the ack but not the bytes: recovery MUST
	// replay the batch (the ambiguity a WAL resolves toward durability).
	path := tmpWAL(t)
	inj := fault.NewInjector(&fault.Plan{Seed: 7, WALCrashSyncs: []int64{1}})
	l, _ := mustOpen(t, path, Options{Faults: inj})
	if _, err := l.Append([]Op{{Src: 1, Dst: 2}}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("Append = %v, want ErrCrash", err)
	}
	l.Close()
	l2, batches := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(batches) != 1 {
		t.Fatalf("recovered %d batches, want 1 (fsync crash loses the ack, not the record)", len(batches))
	}
}

func TestReopenIdempotent(t *testing.T) {
	path := tmpWAL(t)
	l, _ := mustOpen(t, path, Options{})
	l.Append([]Op{{Src: 1, Dst: 2}})
	l.Append([]Op{{Src: 3, Dst: 4}})
	l.Close()
	first, _ := os.ReadFile(path)
	for i := 0; i < 3; i++ {
		l2, batches := mustOpen(t, path, Options{})
		if len(batches) != 2 {
			t.Fatalf("reopen #%d: %d batches", i, len(batches))
		}
		l2.Close()
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(first, after) {
		t.Error("reopening without appends changed the file")
	}
}

func TestTraceSpans(t *testing.T) {
	path := tmpWAL(t)
	rec := trace.New()
	l, _ := mustOpen(t, path, Options{Trace: rec})
	l.Append([]Op{{Src: 1, Dst: 2}})
	l.Close()
	var appends, syncs, replays int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.WALAppend:
			appends++
		case trace.WALFsync:
			syncs++
		case trace.WALReplay:
			replays++
		}
	}
	if replays != 1 || appends != 1 || syncs < 1 {
		t.Errorf("spans: %d replay / %d append / %d fsync, want 1/1/>=1", replays, appends, syncs)
	}
}

func TestAccessorsAndClose(t *testing.T) {
	path := tmpWAL(t)
	l, _ := mustOpen(t, path, Options{})
	if l.Path() != path {
		t.Errorf("Path() = %q, want %q", l.Path(), path)
	}
	if l.Size() != 0 || l.LSN() != 0 {
		t.Errorf("fresh log: size %d lsn %d, want 0/0", l.Size(), l.LSN())
	}
	if _, err := l.Append([]Op{{Src: 1, Dst: 2}, {Del: true, Src: 3, Dst: 4}}); err != nil {
		t.Fatal(err)
	}
	wantSize := int64(headerLen + 2*opLen + crcLen)
	if l.Size() != wantSize {
		t.Errorf("Size() = %d, want %d", l.Size(), wantSize)
	}
	// Explicit Sync on an already-durable log is a no-op success.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent; a closed log refuses writes and syncs.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]Op{{Src: 5, Dst: 6}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
}
