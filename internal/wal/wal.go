// Package wal is the write-ahead log behind mutable slotted-page graphs:
// every edge-ingest batch is framed, CRC-32 protected, appended, and
// group-committed to a log file BEFORE it is applied to the in-memory page
// store, so a crash at any point during ingest — between two appends,
// mid-record, during an fsync, or during the page swap — recovers to the
// exact prefix of batches that reached the disk intact.
//
// Frame layout (little-endian):
//
//	magic  uint32   0x4754_4C57 ("WLTG" on disk)
//	lsn    uint64   1-based, strictly sequential
//	count  uint32   ops in the batch
//	ops    count ×  (op uint8 | src uint64 | dst uint64)
//	crc    uint32   CRC-32 (IEEE) over lsn..ops
//
// A batch is committed iff its whole frame is on disk with a valid magic,
// a sequential LSN, and a matching CRC. Replay scans frames in order and
// stops at the first violation: whatever follows — a torn record, random
// corruption, a stale tail from a recycled file — is discarded, which
// makes the committed history exactly the longest valid frame prefix.
// Open truncates the file to that prefix, so a recovered log is
// byte-identical to one that never crashed.
//
// Crash injection (internal/fault CrashPoint / TornWrite kinds) is
// consulted at every append and fsync; an injected crash marks the log
// dead — the process is "killed", and recovery happens by reopening the
// file, exactly as it would after a real crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// frameMagic marks the start of every record frame.
const frameMagic uint32 = 0x47544C57

// Frame layout constants.
const (
	headerLen = 4 + 8 + 4 // magic + lsn + count
	opLen     = 1 + 8 + 8 // op + src + dst
	crcLen    = 4
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Op is one edge mutation: an insert (Del false) or a delete (Del true)
// of the directed edge Src -> Dst.
type Op struct {
	Del bool   `json:"del,omitempty"`
	Src uint64 `json:"src"`
	Dst uint64 `json:"dst"`
}

// Batch is one committed record: a batch of ops with its log sequence
// number. LSNs are 1-based and dense; the LSN doubles as the graph's
// version/epoch after the batch is applied.
type Batch struct {
	LSN uint64
	Ops []Op
}

// frameSize is the on-disk size of a batch with n ops.
func frameSize(n int) int { return headerLen + n*opLen + crcLen }

// AppendFrame encodes one record frame onto dst and returns the extended
// slice. It is exported for tests and fuzz-corpus construction; Append is
// the durable path.
func AppendFrame(dst []byte, lsn uint64, ops []Op) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, frameSize(len(ops)))...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:], frameMagic)
	binary.LittleEndian.PutUint64(b[4:], lsn)
	binary.LittleEndian.PutUint32(b[12:], uint32(len(ops)))
	p := headerLen
	for _, op := range ops {
		if op.Del {
			b[p] = 1
		}
		binary.LittleEndian.PutUint64(b[p+1:], op.Src)
		binary.LittleEndian.PutUint64(b[p+9:], op.Dst)
		p += opLen
	}
	crc := crc32.ChecksumIEEE(b[4:p])
	binary.LittleEndian.PutUint32(b[p:], crc)
	return dst
}

// Replay decodes the longest valid committed prefix of a log image. It
// never panics and never over-allocates on hostile input: frames are
// validated (magic, sequential LSN, bounded count, CRC) before their ops
// are materialized. It returns the committed batches and the byte length
// of the valid prefix; data[validLen:] is the torn/corrupt tail a recovery
// discards.
func Replay(data []byte) (batches []Batch, validLen int) {
	off := 0
	lsn := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < headerLen+crcLen {
			return batches, off
		}
		if binary.LittleEndian.Uint32(rest[0:]) != frameMagic {
			return batches, off
		}
		gotLSN := binary.LittleEndian.Uint64(rest[4:])
		if gotLSN != lsn+1 {
			return batches, off
		}
		count := int64(binary.LittleEndian.Uint32(rest[12:]))
		need := int64(headerLen) + count*opLen + crcLen
		if need > int64(len(rest)) {
			return batches, off
		}
		body := rest[:need]
		want := binary.LittleEndian.Uint32(body[need-crcLen:])
		if crc32.ChecksumIEEE(body[4:need-crcLen]) != want {
			return batches, off
		}
		ops := make([]Op, count)
		p := headerLen
		for i := range ops {
			ops[i] = Op{
				Del: body[p] != 0,
				Src: binary.LittleEndian.Uint64(body[p+1:]),
				Dst: binary.LittleEndian.Uint64(body[p+9:]),
			}
			p += opLen
		}
		lsn = gotLSN
		batches = append(batches, Batch{LSN: lsn, Ops: ops})
		off += int(need)
	}
}

// Stats counts a log's lifetime activity.
type Stats struct {
	// Appends is committed Append calls; AppendedBytes their frame bytes.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	// Fsyncs counts physical fsync calls; GroupCommits the appends whose
	// durability was covered by another append's fsync (the group-commit
	// win: Appends - Fsyncs when every append rides a group).
	Fsyncs       int64 `json:"fsyncs"`
	GroupCommits int64 `json:"group_commits"`
	// ReplayedBatches and TruncatedBytes describe the last Open: committed
	// batches recovered, and torn-tail bytes discarded.
	ReplayedBatches int64 `json:"replayed_batches"`
	TruncatedBytes  int64 `json:"truncated_bytes"`
	// Crashes counts injected crash points this log absorbed.
	Crashes int64 `json:"crashes"`
}

// Options configures Open.
type Options struct {
	// Faults, when non-nil, injects crash points into appends and fsyncs.
	Faults *fault.Injector
	// Trace, when non-nil, receives walappend/walfsync/walreplay spans
	// (wall-clock durations on the host track).
	Trace *trace.Recorder
}

// Log is an append-only, CRC-framed write-ahead log. All methods are safe
// for concurrent use; concurrent Appends group-commit onto one fsync.
type Log struct {
	path string
	inj  *fault.Injector
	rec  *trace.Recorder

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when a sync round completes
	f       *os.File
	lsn     uint64 // last written (not necessarily synced) LSN
	size    int64  // valid bytes written
	written uint64 // last written LSN (== lsn)
	synced  uint64 // last durable LSN
	syncing bool   // an fsync is in flight
	dead    bool   // injected crash: the "process" is gone
	closed  bool
	stats   Stats
}

// Open opens (creating if absent) the log at path, replays its committed
// prefix, truncates any torn tail, and returns the recovered batches in
// LSN order. The caller applies them to its base state before appending
// new batches.
func Open(path string, opts Options) (*Log, []Batch, error) {
	start := time.Now()
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	batches, validLen := Replay(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	if int64(validLen) < int64(len(data)) {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{path: path, inj: opts.Faults, rec: opts.Trace, f: f, size: int64(validLen)}
	l.cond = sync.NewCond(&l.mu)
	if n := len(batches); n > 0 {
		l.lsn = batches[n-1].LSN
	}
	l.written, l.synced = l.lsn, l.lsn
	l.stats.ReplayedBatches = int64(len(batches))
	l.stats.TruncatedBytes = int64(len(data) - validLen)
	l.span(trace.WALReplay, start)
	return l, batches, nil
}

// span records a wall-clock trace span starting at start and ending now.
func (l *Log) span(kind trace.Kind, start time.Time) {
	if l.rec == nil {
		return
	}
	s, e := sim.Time(start.UnixNano()), sim.Time(time.Now().UnixNano())
	l.rec.Add(trace.Span{GPU: -1, Stream: -1, Kind: kind, Page: -1, Level: -1, Start: s, End: e})
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// LSN returns the last written LSN (the next Append gets LSN()+1).
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Size returns the log's valid byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dead reports whether an injected crash killed this log. A dead log
// refuses all further writes; recovery is reopening the file.
func (l *Log) Dead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// Append frames ops, writes the record, and group-commits: it returns once
// the record is durable (its own fsync or a concurrent appender's). The
// returned LSN is the batch's commit version. Under an injected crash the
// log goes dead and Append returns an error wrapping fault.ErrCrash; bytes
// already written (a torn prefix, or a full record whose fsync crashed)
// stay in the file for recovery to judge.
func (l *Log) Append(ops []Op) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.dead {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log is dead after a crash: %w", fault.ErrCrash)
	}
	frame := AppendFrame(nil, l.lsn+1, ops)
	mode, frac := l.inj.WALAppendPoint()
	switch mode {
	case fault.CrashBefore:
		l.dead = true
		l.stats.Crashes++
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: crash before append: %w", fault.ErrCrash)
	case fault.CrashTorn:
		// A strict prefix of the frame reaches the file, then the process
		// dies. The tear lands mid-record by construction: at least one
		// byte written, at least one byte missing.
		n := int(frac * float64(len(frame)))
		if n < 1 {
			n = 1
		}
		if n >= len(frame) {
			n = len(frame) - 1
		}
		if _, err := l.f.Write(frame[:n]); err != nil {
			l.mu.Unlock()
			return 0, err
		}
		l.f.Sync()
		l.dead = true
		l.stats.Crashes++
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: crash mid-record (%d/%d bytes): %w", n, len(frame), fault.ErrCrash)
	}
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.lsn++
	l.written = l.lsn
	l.size += int64(len(frame))
	l.stats.Appends++
	l.stats.AppendedBytes += int64(len(frame))
	lsn := l.lsn
	l.span(trace.WALAppend, start)
	err := l.syncLocked(lsn)
	l.mu.Unlock()
	return lsn, err
}

// Sync forces durability of everything written so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked(l.written)
}

// syncLocked blocks until LSN lsn is durable, performing the fsync itself
// if no other appender is already flushing past it. Callers hold l.mu.
func (l *Log) syncLocked(lsn uint64) error {
	for {
		if l.dead {
			return fmt.Errorf("wal: crash during fsync: %w", fault.ErrCrash)
		}
		if l.synced >= lsn {
			return nil
		}
		if l.syncing {
			// Another appender's fsync will cover this record: group commit.
			l.stats.GroupCommits++
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.written
		crash := l.inj.WALSyncPoint()
		start := time.Now()
		var err error
		l.mu.Unlock()
		// The write already reached the file; fsync only orders it. An
		// injected crash here models dying during the fsync: the bytes are
		// durable (we fsync anyway, deterministically) but no ack returns.
		syncErr := l.f.Sync()
		l.mu.Lock()
		l.syncing = false
		l.stats.Fsyncs++
		l.synced = target
		l.span(trace.WALFsync, start)
		if crash {
			l.dead = true
			l.stats.Crashes++
			err = fmt.Errorf("wal: crash during fsync: %w", fault.ErrCrash)
		} else if syncErr != nil {
			err = syncErr
		}
		l.cond.Broadcast()
		if err != nil {
			return err
		}
	}
}

// Close syncs and closes the file. A dead log closes without syncing (the
// "process" already died).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.dead {
		return l.f.Close()
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
