package service_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	gts "repro"
	"repro/internal/service"
	"repro/internal/trace"
)

// chaosServer hosts two pools over the same graph: "chaos" runs under a
// moderate fault plan the engine's retry budget can absorb, and "doomed"
// under a persistent transfer fault that exhausts it on every run. Both
// pools run the host-parallel kernel path (HostWorkers=8) so the byte
// comparisons against the serial fault-free reference also pin the
// deterministic merge under faults and concurrency.
func chaosServer(t *testing.T) (*httptest.Server, *gts.Graph) {
	t.Helper()
	g, _ := testGraphPair(t)
	srv := service.New(service.Config{Workers: 4, QueueDepth: 32})

	absorb := &gts.FaultPlan{Seed: 7, TransferErrorRate: 0.05, TransferStallRate: 0.05,
		StorageErrorRate: 0.05, CorruptionRate: 0.05}
	chaosPool, err := gts.NewSystemPool(g, gts.Config{Faults: absorb, HostWorkers: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("chaos", chaosPool); err != nil {
		t.Fatal(err)
	}
	doomed := &gts.FaultPlan{Seed: 7, TransferErrorRate: 1}
	doomedPool, err := gts.NewSystemPool(g, gts.Config{Faults: doomed, HostWorkers: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("doomed", doomedPool); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, g
}

// TestChaosConcurrentClients hammers a fault-injected service from
// concurrent clients. The contract under fault injection: every response
// is either a correct result (byte-equal to the fault-free reference) or a
// typed error status — never a corrupt payload, never a 500, and 503s
// carry Retry-After. Run under -race via `make test-race`.
func TestChaosConcurrentClients(t *testing.T) {
	ts, g := chaosServer(t)

	// Fault-free references for every request shape the clients send,
	// computed on the serial path: the service's HostWorkers=8 pools must
	// reproduce these bytes exactly.
	clean, err := gts.NewSystem(g, gts.Config{HostWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sources := []uint64{0, 1, 5}
	wantLevels := make(map[uint64][]int16)
	for _, s := range sources {
		res, err := clean.BFS(s)
		if err != nil {
			t.Fatal(err)
		}
		wantLevels[s] = res.Levels
	}
	prRes, err := clean.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantRanks := prRes.Ranks

	const clients = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		successes int
		failures  int
	)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var (
					url string
					src uint64
					alg string
				)
				switch (c + i) % 5 {
				case 0, 1:
					alg, src = "bfs", sources[(c+i)%len(sources)]
					url = fmt.Sprintf("%s/v1/graphs/chaos/bfs", ts.URL)
				case 2:
					alg = "pagerank"
					url = ts.URL + "/v1/graphs/chaos/pagerank"
				case 3:
					alg = "doomed"
					url = ts.URL + "/v1/graphs/doomed/bfs"
				case 4:
					alg = "missing"
					url = ts.URL + "/v1/graphs/chaos/nosuchalgo"
				}
				body := "{}"
				if alg == "bfs" || alg == "doomed" {
					body = fmt.Sprintf(`{"source":%d}`, src)
				} else if alg == "pagerank" {
					body = `{"damping":0.85,"iterations":5}`
				}
				resp, err := http.Post(url, "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()

				switch resp.StatusCode {
				case http.StatusOK:
					var doc struct {
						Result json.RawMessage `json:"result"`
					}
					if err := json.Unmarshal(raw, &doc); err != nil {
						t.Errorf("200 with unparsable body: %v", err)
						return
					}
					switch alg {
					case "bfs":
						var out struct{ Levels []int16 }
						if err := json.Unmarshal(doc.Result, &out); err != nil {
							t.Errorf("corrupt BFS payload: %v", err)
							return
						}
						for v, want := range wantLevels[src] {
							if out.Levels[v] != want {
								t.Errorf("BFS(src=%d) vertex %d = %d, want %d (corrupt result under faults)",
									src, v, out.Levels[v], want)
								return
							}
						}
					case "pagerank":
						var out struct{ Ranks []float32 }
						if err := json.Unmarshal(doc.Result, &out); err != nil {
							t.Errorf("corrupt PageRank payload: %v", err)
							return
						}
						for v, want := range wantRanks {
							if out.Ranks[v] != want {
								t.Errorf("PageRank vertex %d = %v, want %v (corrupt result under faults)",
									v, out.Ranks[v], want)
								return
							}
						}
					case "doomed":
						t.Error("doomed graph returned 200; its faults are persistent")
						return
					case "missing":
						t.Error("unknown algorithm returned 200")
						return
					}
					mu.Lock()
					successes++
					mu.Unlock()
				case http.StatusNotFound:
					if alg != "missing" {
						t.Errorf("%s returned 404", alg)
						return
					}
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
						return
					}
					mu.Lock()
					failures++
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					// Load shedding and deadline expiry are legitimate
					// under concurrency.
				default:
					t.Errorf("%s: unexpected status %d: %s", alg, resp.StatusCode, raw)
					return
				}
			}
		}()
	}
	wg.Wait()

	if successes == 0 {
		t.Fatal("no request survived the absorbable fault plan")
	}
	if failures == 0 {
		t.Fatal("no request hit the persistent fault plan")
	}

	// The daemon's metrics must reflect the chaos it just absorbed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gtsd_faults_injected_total", "gtsd_fault_retries_total",
		"gtsd_fault_recoveries_total", "gtsd_hw_failures_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// Both pools were configured with HostWorkers=8; the gauge must say so.
	if !strings.Contains(string(metrics), "gtsd_host_workers 8") {
		t.Error("/metrics missing gtsd_host_workers 8")
	}
	if !metricAbove(string(metrics), "gtsd_faults_injected_total", 0) {
		t.Error("gtsd_faults_injected_total is zero after a chaos run")
	}
	if !metricAbove(string(metrics), "gtsd_hw_failures_total", 0) {
		t.Error("gtsd_hw_failures_total is zero despite the doomed pool")
	}
}

// TestChaosTraceExportMidFault proves the recorder is race-free under
// concurrent span emission: while a fault-injected HostWorkers=8 engine is
// mid-run (streams emitting copy/kernel/fault spans), a second goroutine
// continuously exports the live recorder in both encodings and aggregates
// it. Run under -race via `make test-race`. The final export must still be
// a complete, parseable timeline containing the injected faults.
func TestChaosTraceExportMidFault(t *testing.T) {
	g, _ := testGraphPair(t)
	rec := trace.New()
	rec.SetID("chaos-mid-fault")
	sys, err := gts.NewSystem(g, gts.Config{HostWorkers: 8, Trace: rec,
		Faults: &gts.FaultPlan{Seed: 7, TransferErrorRate: 0.05, TransferStallRate: 0.05,
			StorageErrorRate: 0.05, CorruptionRate: 0.05}})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	exported := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-done:
				exported <- n
				return
			default:
			}
			if err := rec.WriteChrome(io.Discard); err != nil {
				t.Errorf("mid-run WriteChrome: %v", err)
			}
			if err := rec.WriteJSONL(io.Discard); err != nil {
				t.Errorf("mid-run WriteJSONL: %v", err)
			}
			rec.Summary()
			n++
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := sys.BFS(uint64(i)); err != nil {
			t.Fatalf("BFS(%d) under absorbable faults: %v", i, err)
		}
	}
	close(done)
	if n := <-exported; n == 0 {
		t.Fatal("exporter goroutine never ran — the test is vacuous")
	}

	var buf strings.Builder
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse([]byte(buf.String()))
	if err != nil {
		t.Fatalf("final export unparseable: %v", err)
	}
	if parsed.Len() != rec.Len() {
		t.Errorf("parsed %d spans, recorder holds %d", parsed.Len(), rec.Len())
	}
	var faults, runs int
	for _, s := range parsed.Spans() {
		switch s.Kind {
		case trace.Fault:
			faults++
		case trace.Run:
			runs++
		}
	}
	if faults == 0 {
		t.Error("chaos run exported no fault spans")
	}
	if runs != 3 {
		t.Errorf("exported %d run spans, want 3", runs)
	}
}

// metricAbove reports whether the exposition contains `name <v>` with
// v > floor.
func metricAbove(metrics, name string, floor float64) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil && v > floor {
			return true
		}
	}
	return false
}
