package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	gts "repro"
	"repro/internal/service"
)

func httpServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server, *gts.SystemPool) {
	t.Helper()
	g, _ := testGraphPair(t)
	srv := service.New(cfg)
	pool, err := gts.NewSystemPool(g, gts.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("social", pool); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, pool
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, doc
}

func TestHTTPSyncRunAndCache(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{})

	resp, doc := postJSON(t, ts.URL+"/v1/graphs/social/pagerank", map[string]any{"iterations": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync pagerank status = %d (%v)", resp.StatusCode, doc)
	}
	if doc["state"] != "done" || doc["graph"] != "social" || doc["algo"] != "pagerank" {
		t.Errorf("job doc = %v", doc)
	}
	result, ok := doc["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result payload: %v", doc)
	}
	ranks, ok := result["Ranks"].([]any)
	if !ok || len(ranks) == 0 {
		t.Errorf("no ranks in result: %v", result)
	}
	if cached, _ := doc["cached"].(bool); cached {
		t.Error("first request claims cached")
	}

	// The identical request must come back cached.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/social/pagerank", map[string]any{"iterations": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second pagerank status = %d", resp.StatusCode)
	}
	if cached, _ := doc["cached"].(bool); !cached {
		t.Error("identical request not served from cache")
	}
}

func TestHTTPAsyncFlow(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{})
	resp, doc := postJSON(t, ts.URL+"/v1/graphs/social/bfs?mode=async", map[string]any{"source": 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d (%v)", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", doc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jd map[string]any
		if err := json.NewDecoder(r.Body).Decode(&jd); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if jd["state"] == "done" {
			if _, ok := jd["result"]; !ok {
				t.Errorf("done job has no result: %v", jd)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v", id, jd["state"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPGraphLoadAndList(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{})

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/tiny",
		strings.NewReader(`{"spec":"RMAT26@15","pool":1}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info service.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.Name != "tiny" || info.Vertices == 0 {
		t.Fatalf("load: %d %+v", resp.StatusCode, info)
	}

	r, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs     []service.GraphInfo `json:"graphs"`
		Algorithms []string            `json:"algorithms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(listing.Graphs) != 2 || len(listing.Algorithms) == 0 {
		t.Errorf("listing = %+v", listing)
	}

	// The fresh graph must serve jobs.
	resp2, doc := postJSON(t, ts.URL+"/v1/graphs/tiny/cc", nil)
	if resp2.StatusCode != http.StatusOK || doc["state"] != "done" {
		t.Errorf("cc on loaded graph: %d %v", resp2.StatusCode, doc)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	_, ts, pool := httpServer(t, service.Config{Workers: 1, QueueDepth: 1})

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/graphs/ghost/bfs", "", http.StatusNotFound},
		{"POST", "/v1/graphs/social/zork", "", http.StatusNotFound},
		{"GET", "/v1/jobs/job-424242", "", http.StatusNotFound},
		{"POST", "/v1/graphs/social/bfs", "{not json", http.StatusBadRequest},
		{"POST", "/v1/graphs/social/bfs?timeout=banana", "", http.StatusBadRequest},
		{"PUT", "/v1/graphs/bad", `{"spec":"NotADataset"}`, http.StatusInternalServerError},
		{"PUT", "/v1/graphs/bad", `{}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}

	// Deterministic 429 and 504: hold the pool's engines so the single
	// worker blocks, fill the queue, then overflow it.
	s1, ok1 := pool.TryAcquire()
	s2, ok2 := pool.TryAcquire()
	if !ok1 || !ok2 {
		t.Fatal("could not exhaust pool")
	}

	// First async job occupies the worker.
	resp, doc := postJSON(t, ts.URL+"/v1/graphs/social/bfs?mode=async", map[string]any{"source": 50})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d (%v)", resp.StatusCode, doc)
	}
	waitForHTTP(t, func() bool {
		return metricsValue(t, ts.URL, "gtsd_queue_depth") == 0
	}, "worker pickup")

	// Fill the queue (depth 1), then overflow.
	resp, _ = postJSON(t, ts.URL+"/v1/graphs/social/bfs?mode=async", map[string]any{"source": 51})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill = %d", resp.StatusCode)
	}
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/social/bfs?mode=async", map[string]any{"source": 52})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow = %d (%v), want 429", resp.StatusCode, doc)
	}

	// Sync request with a short deadline while the pool is exhausted: 504.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/social/pagerank?timeout=40ms", nil)
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("deadline run = %d (%v), want 504 (or 429 if the queue was still full)", resp.StatusCode, doc)
	}

	pool.Release(s1)
	pool.Release(s2)
}

// metricsValue scrapes one un-labeled numeric series from /metrics.
func metricsValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func waitForHTTP(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricsEndpointConsistency cross-checks the rendered exposition
// against the Stats snapshot after a known workload.
func TestMetricsEndpointConsistency(t *testing.T) {
	srv, ts, _ := httpServer(t, service.Config{})
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/graphs/social/bfs", map[string]any{"source": 7})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bfs run %d = %d", i, resp.StatusCode)
		}
	}
	st := srv.Stats()
	if st.Completed != 3 || st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	checks := map[string]float64{
		"gtsd_jobs_submitted_total": float64(st.Submitted),
		"gtsd_jobs_completed_total": float64(st.Completed),
		"gtsd_cache_hits_total":     float64(st.CacheHits),
		"gtsd_cache_misses_total":   float64(st.CacheMisses),
		"gtsd_inflight_jobs":        0,
		"gtsd_queue_depth":          0,
		"gtsd_graphs_loaded":        1,
	}
	for name, want := range checks {
		if got := metricsValue(t, ts.URL, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Histogram sanity: bfs count matches completions, +Inf bucket is
	// cumulative.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `gtsd_job_latency_seconds_count{algo="bfs"} 3`) {
		t.Errorf("latency count line missing:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf(`gtsd_job_latency_seconds_bucket{algo="bfs",le="+Inf"} %d`, 3)) {
		t.Errorf("+Inf bucket missing:\n%s", text)
	}
	if !strings.Contains(text, `gtsd_job_virtual_seconds_total{algo="bfs"}`) {
		t.Error("virtual seconds series missing")
	}
}
