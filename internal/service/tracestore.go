package service

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// ErrNoTrace reports a trace query the store cannot answer: tracing is
// disabled, the job was never traced (cache hit, timed out in queue), or
// its trace was evicted by newer jobs.
var ErrNoTrace = fmt.Errorf("service: no trace for job")

// traceStore retains the exported Chrome trace_event JSON of the most
// recently traced jobs, bounded by capacity in job count. Traces are
// rendered to bytes at put time so the store holds no live recorders.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	data  map[string][]byte
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{cap: capacity, data: make(map[string][]byte, capacity)}
}

// put renders rec to Chrome trace JSON and stores it under the job ID,
// evicting the oldest traces beyond capacity.
func (t *traceStore) put(id string, rec *trace.Recorder) {
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.data[id]; !exists {
		t.order = append(t.order, id)
	}
	t.data[id] = buf.Bytes()
	for len(t.order) > t.cap {
		delete(t.data, t.order[0])
		t.order = t.order[1:]
	}
}

// get returns the stored Chrome trace JSON for a job ID.
func (t *traceStore) get(id string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.data[id]
	return b, ok
}

// JobTrace returns the Chrome trace_event JSON recorded for a computed
// job, if tracing is enabled and the trace is still retained.
func (s *Server) JobTrace(id string) ([]byte, error) {
	if s.traces == nil {
		return nil, fmt.Errorf("%w: tracing disabled (Config.TraceJobs)", ErrNoTrace)
	}
	if b, ok := s.traces.get(id); ok {
		return b, nil
	}
	return nil, fmt.Errorf("%w %q", ErrNoTrace, id)
}
