package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/trace"
)

// TestRunWallQuantilesAgainstOracle pins the /metrics run-wall histogram to
// an exact oracle: every computed job reports its exact wall time in
// Result.Wall, so the service-level quantiles must bracket the sorted-
// sample quantiles within one log bucket (factor obs.Gamma) — the bound
// internal/obs documents.
func TestRunWallQuantilesAgainstOracle(t *testing.T) {
	srv := twoGraphServer(t, service.Config{Workers: 2, CacheEntries: -1})
	const jobs = 12
	var walls []float64
	for i := 0; i < jobs; i++ {
		job, err := srv.Run(context.Background(), service.Request{
			Graph: "social", Algo: "bfs", Params: service.Params{Source: uint64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := job.Result()
		walls = append(walls, res.Wall.Seconds())
	}
	st := srv.Stats()
	if st.RunWall.Count != jobs {
		t.Fatalf("RunWall.Count = %d, want %d", st.RunWall.Count, jobs)
	}
	if st.QueueWait.Count != jobs {
		t.Fatalf("QueueWait.Count = %d, want %d (every dequeued job observes its wait)", st.QueueWait.Count, jobs)
	}
	sort.Float64s(walls)
	const eps = 1e-9
	for _, c := range []struct {
		q   float64
		got float64
	}{{0.5, st.RunWall.P50}, {0.9, st.RunWall.P90}, {0.99, st.RunWall.P99}} {
		exact := walls[int(math.Ceil(c.q*float64(jobs)))-1]
		if c.got < exact*(1-eps) {
			t.Errorf("p%v = %v underestimates exact %v", c.q*100, c.got, exact)
		}
		if exact > 0 && c.got > exact*obs.Gamma*(1+eps) {
			t.Errorf("p%v = %v exceeds exact %v by more than one bucket (Gamma %v)", c.q*100, c.got, exact, obs.Gamma)
		}
	}
	if !(st.RunWall.P50 <= st.RunWall.P90 && st.RunWall.P90 <= st.RunWall.P99) {
		t.Errorf("run-wall quantiles not monotone: %+v", st.RunWall)
	}
	if !(st.QueueWait.P50 <= st.QueueWait.P90 && st.QueueWait.P90 <= st.QueueWait.P99) {
		t.Errorf("queue-wait quantiles not monotone: %+v", st.QueueWait)
	}
}

// TestMetricsHistogramSeries asserts /metrics exposes the new histogram
// families with coherent _count lines.
func TestMetricsHistogramSeries(t *testing.T) {
	srv, ts, _ := httpServer(t, service.Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := srv.Run(context.Background(), service.Request{
			Graph: "social", Algo: "bfs", Params: service.Params{Source: uint64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE gtsd_job_queue_wait_seconds histogram",
		"gtsd_job_queue_wait_seconds_count 3",
		"# TYPE gtsd_job_run_wall_seconds histogram",
		"gtsd_job_run_wall_seconds_count 3",
		"# TYPE gtsd_job_latency_seconds histogram",
		`gtsd_job_latency_seconds_count{algo="bfs"} 3`,
		`gtsd_job_queue_wait_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestJobTraceEndpoint: with TraceJobs enabled, a computed job's trace is
// retrievable as valid Chrome trace JSON carrying the job's ID and the
// run → superstep → kernel hierarchy; cache hits and unknown jobs 404.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{TraceJobs: 4})
	resp, doc := postJSON(t, ts.URL+"/v1/graphs/social/bfs", map[string]any{"source": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("no job id in response: %v", doc)
	}

	tr, err := http.Get(ts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tr.StatusCode)
	}
	raw, _ := io.ReadAll(tr.Body)
	rec, err := trace.Parse(raw)
	if err != nil {
		t.Fatalf("trace endpoint served unparseable bytes: %v", err)
	}
	if rec.ID() != id {
		t.Errorf("trace ID = %q, want job ID %q", rec.ID(), id)
	}
	var haveRun, haveStep, haveKernel bool
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.Run:
			haveRun = true
		case trace.Superstep:
			haveStep = true
		case trace.Kernel:
			haveKernel = true
		}
	}
	if !haveRun || !haveStep || !haveKernel {
		t.Errorf("trace missing hierarchy spans: run=%v superstep=%v kernel=%v", haveRun, haveStep, haveKernel)
	}
	// Perfetto-shape check: top-level object with a traceEvents array.
	var chromeDoc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chromeDoc); err != nil || len(chromeDoc.TraceEvents) == 0 {
		t.Errorf("trace is not chrome://tracing-loadable: err=%v events=%d", err, len(chromeDoc.TraceEvents))
	}

	// A cache-hit job never runs an engine, so it has no trace.
	resp2, doc2 := postJSON(t, ts.URL+"/v1/graphs/social/bfs", map[string]any{"source": 1})
	if resp2.StatusCode != http.StatusOK || doc2["cached"] != true {
		t.Fatalf("expected cached rerun, got status %d cached=%v", resp2.StatusCode, doc2["cached"])
	}
	if tr2, _ := http.Get(fmt.Sprintf("%s/debug/trace/%s", ts.URL, doc2["id"])); tr2.StatusCode != http.StatusNotFound {
		t.Errorf("cache-hit trace status %d, want 404", tr2.StatusCode)
	}
	if tr3, _ := http.Get(ts.URL + "/debug/trace/job-999999"); tr3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status %d, want 404", tr3.StatusCode)
	}
}

// TestTraceDisabled404: without TraceJobs the endpoint answers 404 even
// for real jobs.
func TestTraceDisabled404(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{})
	resp, doc := postJSON(t, ts.URL+"/v1/graphs/social/bfs", map[string]any{"source": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if tr, _ := http.Get(fmt.Sprintf("%s/debug/trace/%s", ts.URL, doc["id"])); tr.StatusCode != http.StatusNotFound {
		t.Errorf("trace status %d with tracing disabled, want 404", tr.StatusCode)
	}
}

// TestTraceStoreEviction: the store retains only the most recent TraceJobs
// traces.
func TestTraceStoreEviction(t *testing.T) {
	srv := twoGraphServer(t, service.Config{Workers: 1, CacheEntries: -1, TraceJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		job, err := srv.Run(context.Background(), service.Request{
			Graph: "social", Algo: "bfs", Params: service.Params{Source: uint64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
	}
	for i, id := range ids {
		_, err := srv.JobTrace(id)
		if i < 2 && err == nil {
			t.Errorf("trace %d (%s) should have been evicted", i, id)
		}
		if i >= 2 && err != nil {
			t.Errorf("trace %d (%s) missing: %v", i, id, err)
		}
	}
}

// TestWithPprof: the wrapper serves the pprof index and still routes the
// service surface.
func TestWithPprof(t *testing.T) {
	srv := twoGraphServer(t, service.Config{})
	ts := httptest.NewServer(service.WithPprof(srv.Handler()))
	t.Cleanup(ts.Close)
	for path, wantStatus := range map[string]int{
		"/debug/pprof/":        http.StatusOK,
		"/debug/pprof/symbol":  http.StatusOK,
		"/healthz":             http.StatusOK,
		"/metrics":             http.StatusOK,
		"/debug/trace/job-001": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
}

// TestPerAlgoLatencyQuantiles: the Stats per-algo view carries monotone
// latency quantiles covering every completed job.
func TestPerAlgoLatencyQuantiles(t *testing.T) {
	srv := twoGraphServer(t, service.Config{Workers: 2})
	for i := 0; i < 4; i++ {
		if _, err := srv.Run(context.Background(), service.Request{
			Graph: "social", Algo: "pagerank", Params: service.Params{Damping: 0.85, Iterations: i + 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	a, ok := st.PerAlgo["pagerank"]
	if !ok || a.Jobs != 4 {
		t.Fatalf("pagerank stats = %+v, ok=%v", a, ok)
	}
	if a.LatencyP50 <= 0 || a.LatencyP50 > a.LatencyP90 || a.LatencyP90 > a.LatencyP99 {
		t.Errorf("latency quantiles wrong: p50=%v p90=%v p99=%v", a.LatencyP50, a.LatencyP90, a.LatencyP99)
	}
}
