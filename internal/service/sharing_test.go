package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	gts "repro"
	"repro/internal/service"
)

// TestCoalesceIdenticalSubmissions pins single-flight dedup: identical
// requests submitted while the first is still in flight ride on it instead
// of recomputing, and the coalesced counter says so.
func TestCoalesceIdenticalSubmissions(t *testing.T) {
	g, _ := testGraphPair(t)
	srv := service.New(service.Config{Workers: 1, QueueDepth: 8})
	pool, err := gts.NewSystemPool(g, gts.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("g", pool); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hold the only engine so the leader cannot finish while the followers
	// submit — the dedup window stays deterministically open.
	held, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("could not claim the pool's engine")
	}

	req := service.Request{Graph: "g", Algo: "bfs", Params: service.Params{Source: 7}}
	leader, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	followers := make([]*service.Job, 3)
	for i := range followers {
		if followers[i], err = srv.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().Coalesced; got != uint64(len(followers)) {
		t.Errorf("coalesced = %d, want %d", got, len(followers))
	}

	pool.Release(held)
	<-leader.Done()
	lres, err := leader.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(lres.Output)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range followers {
		<-f.Done()
		fres, err := f.Result()
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		if !f.Cached() {
			t.Errorf("follower %d not marked as a shared answer", i)
		}
		got, err := json.Marshal(fres.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("follower %d output differs from leader", i)
		}
	}

	// A submission after the leader finished is a cache hit, not a coalesce.
	after, err := srv.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Cached() {
		t.Error("post-completion repeat not served from cache")
	}
	if got := srv.Stats().Coalesced; got != uint64(len(followers)) {
		t.Errorf("coalesced moved to %d after completion, want %d", got, len(followers))
	}
}

// TestChaosSharedWaveGroups is the service-level acceptance test for
// multi-query stream sharing: 32 concurrent jobs (16 BFS sources + 16
// PageRank iteration counts) on one ShareStreams graph under an absorbable
// fault plan. Every answer must be byte-identical to a clean solo run, the
// wave-group counters must show pages were shared, and /metrics must expose
// the new series. Run under -race via `make test-race`.
func TestChaosSharedWaveGroups(t *testing.T) {
	g, _ := testGraphPair(t)
	srv := service.New(service.Config{Workers: 32, QueueDepth: 64})
	plan := &gts.FaultPlan{Seed: 21, TransferErrorRate: 0.05, TransferStallRate: 0.05}
	pool, err := gts.NewSystemPool(g, gts.Config{ShareStreams: true, Faults: plan}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("shared", pool); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Clean solo references on an unshared, fault-free system.
	clean, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantLevels := make([][]int16, 16)
	for i := range wantLevels {
		res, err := clean.BFS(uint64(i * 128))
		if err != nil {
			t.Fatal(err)
		}
		wantLevels[i] = res.Levels
	}
	wantRanks := make([][]float32, 16)
	for i := range wantRanks {
		res, err := clean.PageRank(0.85, i+1)
		if err != nil {
			t.Fatal(err)
		}
		wantRanks[i] = res.Ranks
	}

	const n = 32
	jobs := make([]*service.Job, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		req := service.Request{Graph: "shared", Algo: "bfs", Params: service.Params{Source: uint64(i * 128)}}
		if i >= 16 {
			req = service.Request{Graph: "shared", Algo: "pagerank", Params: service.Params{Iterations: i - 15}}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs[i], errs[i] = srv.Run(context.Background(), req)
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		res, err := jobs[i].Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if i < 16 {
			out := res.Output.(*gts.BFSResult)
			if !equalLevels(out.Levels, wantLevels[i]) {
				t.Errorf("BFS job %d differs from clean solo run", i)
			}
		} else {
			out := res.Output.(*gts.PageRankResult)
			if !equalRanks(out.Ranks, wantRanks[i-16]) {
				t.Errorf("PageRank job %d differs from clean solo run", i)
			}
		}
	}

	st := srv.Stats()
	if st.Sharing.WaveGroups == 0 || st.Sharing.GroupJobs == 0 {
		t.Errorf("no wave groups ran: %+v", st.Sharing)
	}
	if st.Sharing.GroupJobs > 1 && st.Sharing.SharedPageCopies == 0 {
		t.Errorf("grouped %d jobs but shared no pages: %+v", st.Sharing.GroupJobs, st.Sharing)
	}
	if st.Sharing.AmortizedBytesPerJob() <= 0 {
		t.Errorf("AmortizedBytesPerJob = %v", st.Sharing.AmortizedBytesPerJob())
	}
	if st.Faults.Injected() == 0 {
		t.Error("fault plan injected nothing through the shared path")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gtsd_jobs_coalesced_total", "gtsd_wave_groups_total",
		"gtsd_shared_page_copies_total", "gtsd_shared_bytes_saved_total",
		"gtsd_amortized_bytes_per_job",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if st.Sharing.SharedPageCopies > 0 && !metricAbove(string(metrics), "gtsd_shared_page_copies_total", 0) {
		t.Error("gtsd_shared_page_copies_total is zero on /metrics despite shared copies")
	}
}

func equalLevels(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalRanks(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSharedGraphServesSoloAlgorithms: a ShareStreams graph still answers
// every registered algorithm correctly through the scheduler path.
func TestSharedGraphServesSoloAlgorithms(t *testing.T) {
	g, _ := testGraphPair(t)
	srv := service.New(service.Config{Workers: 4})
	pool, err := gts.NewSystemPool(g, gts.Config{ShareStreams: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("shared", pool); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clean, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range service.Algorithms() {
		job, err := srv.Run(context.Background(), service.Request{Graph: "shared", Algo: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		res, err := job.Result()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got, err := json.Marshal(res.Output)
		if err != nil {
			t.Fatal(err)
		}
		var want any
		switch algo {
		case "bfs":
			want, err = clean.BFS(0)
		case "pagerank":
			want, err = clean.PageRank(0.85, 10)
		case "sssp":
			want, err = clean.SSSP(0)
		case "cc":
			want, err = clean.CC()
		case "bc":
			want, err = clean.BC(0)
		case "rwr":
			want, err = clean.RWR(0, 0.15, 10)
		case "degree":
			want, err = clean.DegreeDistribution()
		case "kcore":
			want, err = clean.KCore(3)
		case "radius":
			want, err = clean.Radius(8, 256)
		case "ball":
			want, err = clean.Neighborhood(0, 2)
		default:
			t.Fatalf("no reference for %q", algo)
		}
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutput(got, wantJSON) {
			t.Errorf("%s via shared path differs from clean solo run", algo)
		}
	}
}

// sameOutput compares two result JSON documents ignoring the embedded
// Metrics (wave-group data movement legitimately differs from solo; the
// functional payload must not).
func sameOutput(a, b []byte) bool {
	var ma, mb map[string]json.RawMessage
	if json.Unmarshal(a, &ma) != nil || json.Unmarshal(b, &mb) != nil {
		return false
	}
	// "Levels" stays: it is the functional depth/iteration count (and BFS's
	// payload field), identical between shared and solo by the engine's
	// determinism invariant.
	metricsFields := map[string]bool{
		"Elapsed": true, "PagesStreamed": true, "CacheHitRate": true,
		"BufferHitRate": true, "BytesToGPU": true, "StorageBytes": true,
		"TransferTime": true, "KernelTime": true, "WABytes": true, "MTEPS": true,
		"LevelPages": true, "LevelBytes": true, "Faults": true, "HostWorkers": true,
	}
	for k := range metricsFields {
		delete(ma, k)
		delete(mb, k)
	}
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if !bytes.Equal(v, mb[k]) {
			return false
		}
	}
	return true
}
