package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	gts "repro"
)

// Handler returns the service's HTTP/JSON surface:
//
//	GET  /healthz                      liveness: 200 + per-graph states
//	GET  /readyz                       readiness: 200 only when every
//	                                   graph is serving, else 503
//	GET  /metrics                      Prometheus text exposition
//	GET  /v1/graphs                    registered graphs
//	PUT  /v1/graphs/{name}             load a graph from a spec (add a
//	                                   "wal" path for a mutable graph)
//	POST /v1/graphs/{name}/ingest      commit an edge-mutation batch
//	POST /v1/graphs/{name}/{algo}      run an algorithm (sync by default;
//	                                   ?mode=async returns 202 + job ID;
//	                                   ?timeout=500ms bounds the deadline)
//	GET  /v1/jobs/{id}                 job status / result
//	GET  /debug/trace/{id}             per-job Chrome trace JSON
//	                                   (404 unless Config.TraceJobs > 0)
//
// Typed service errors map to statuses: ErrOverloaded → 429, unknown
// graph/algorithm/job → 404, ErrTimeout → 504, ErrShuttingDown and
// ErrGraphNotReady → 503, ErrImmutableGraph → 409.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness is always 200: the process is up; per-graph states tell
		// the rest of the story (a graph mid-recovery is alive, not ready).
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": s.Health()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		if !s.Ready() {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{"ready": status == http.StatusOK, "graphs": s.Health()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.write(w, s.Stats())
	})
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Graphs(), "algorithms": Algorithms()})
	})
	mux.HandleFunc("PUT /v1/graphs/{name}", s.handleLoadGraph)
	mux.HandleFunc("POST /v1/graphs/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/graphs/{name}/{algo}", s.handleRun)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	return mux
}

// handleTrace serves a traced job's Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	b, err := s.JobTrace(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// WithPprof wraps a handler, additionally serving the net/http/pprof
// profiling surface under /debug/pprof/. cmd/gtsd mounts it behind the
// -pprof flag: profiling endpoints expose stacks and heap contents, so
// they are opt-in.
func WithPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// loadRequest is the PUT /v1/graphs/{name} body.
type loadRequest struct {
	// Spec is a gts.Open graph spec: a .gts store file or "dataset[@shrink]".
	Spec string `json:"spec"`
	// Pool is the engine-pool width (default 4).
	Pool int `json:"pool,omitempty"`
	// GPUs, Strategy ("p"|"s"), and Streams configure the pooled engines.
	GPUs     int    `json:"gpus,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Streams  int    `json:"streams,omitempty"`
	// HostWorkers sizes the host kernel worker pool per engine
	// (0 = GOMAXPROCS, 1 = serial; results identical at every setting).
	HostWorkers int `json:"host_workers,omitempty"`
	// Faults arms deterministic fault injection on every engine in this
	// graph's pool (chaos testing; see gts.FaultPlan).
	Faults *gts.FaultPlan `json:"faults,omitempty"`
	// ShareStreams opts this graph into multi-query topology sharing:
	// concurrent jobs coalesce into wave groups that stream each page once
	// (see gts.Config.ShareStreams).
	ShareStreams bool `json:"share_streams,omitempty"`
	// WAL, when set, loads the graph as mutable: the file at this path is
	// the graph's write-ahead log (created if absent, replayed if present)
	// and the graph accepts POST /v1/graphs/{name}/ingest.
	WAL string `json:"wal,omitempty"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad load request: %w", err))
		return
	}
	if req.Spec == "" {
		httpError(w, http.StatusBadRequest, errors.New("load request needs a \"spec\""))
		return
	}
	if err := req.Faults.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cfg := gts.Config{GPUs: req.GPUs, Streams: req.Streams, HostWorkers: req.HostWorkers, Faults: req.Faults, ShareStreams: req.ShareStreams}
	if strings.EqualFold(req.Strategy, "s") {
		cfg.Strategy = gts.StrategyS
	}
	load := func() error { return s.LoadGraph(name, req.Spec, cfg, req.Pool) }
	if req.WAL != "" {
		load = func() error { return s.LoadMutableGraph(name, req.Spec, req.WAL, cfg, req.Pool) }
	}
	if err := load(); err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	for _, info := range s.Graphs() {
		if info.Name == name {
			writeJSON(w, http.StatusCreated, info)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name})
}

// ingestRequest is the POST /v1/graphs/{name}/ingest body.
type ingestRequest struct {
	Edges []struct {
		Src uint64 `json:"src"`
		Dst uint64 `json:"dst"`
		// Del deletes every occurrence of src->dst instead of inserting.
		Del bool `json:"del,omitempty"`
	} `json:"edges"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad ingest request: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("ingest request needs a non-empty \"edges\" list"))
		return
	}
	ops := make([]gts.EdgeOp, len(req.Edges))
	for i, e := range req.Edges {
		ops[i] = gts.EdgeOp{Del: e.Del, Src: e.Src, Dst: e.Dst}
	}
	epoch, err := s.Ingest(r.PathValue("name"), ops)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "applied": len(ops)})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req := Request{Graph: r.PathValue("name"), Algo: r.PathValue("algo")}
	// An absent or empty body means default parameters. The incremental
	// flag rides beside the params in the body but lands on the Request:
	// it selects an execution strategy, not a different result, so it must
	// stay out of the cache key Params become.
	var body struct {
		Params
		Incremental bool `json:"incremental,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad params: %w", err))
		return
	}
	req.Params = body.Params
	req.Incremental = body.Incremental
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: %w", t, err))
			return
		}
		req.Timeout = d
	}

	if r.URL.Query().Get("mode") == "async" {
		job, err := s.Submit(req)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id":    job.ID(),
			"state": job.State().String(),
			"href":  "/v1/jobs/" + job.ID(),
		})
		return
	}

	job, err := s.Run(r.Context(), req)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(job, true))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.Lookup(r.PathValue("id"))
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(job, true))
}

// jobJSON renders a job's status document; withResult includes the full
// output payload (result vectors can be large).
func jobJSON(job *Job, withResult bool) map[string]any {
	req := job.Request()
	doc := map[string]any{
		"id":     job.ID(),
		"graph":  req.Graph,
		"algo":   req.Algo,
		"params": req.Params,
		"state":  job.State().String(),
	}
	res, err := job.Result()
	if err != nil {
		doc["error"] = err.Error()
	}
	if res != nil {
		doc["cached"] = job.Cached()
		doc["latency_ms"] = float64(job.Latency().Microseconds()) / 1000
		doc["wall_ms"] = float64(res.Wall.Microseconds()) / 1000
		doc["virtual_seconds"] = res.Metrics.Elapsed.Seconds()
		doc["mteps"] = res.Metrics.MTEPS
		if withResult {
			doc["result"] = res.Output
		}
	}
	return doc
}

// statusOf maps service errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownAlgo), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrShuttingDown), errors.Is(err, gts.ErrHardwareFault), errors.Is(err, ErrGraphNotReady):
		// A hardware fault that survived the engine's retry budget, like a
		// graph still recovering, is a transient failure: 503 + Retry-After.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrImmutableGraph), errors.Is(err, ErrDuplicateGraph):
		return http.StatusConflict
	case errors.Is(err, gts.ErrCrashed):
		// An injected ingest crash killed the mutable graph; reload (replay)
		// to recover.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}
