package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	gts "repro"
	"repro/internal/obs"
	"repro/internal/sim"
)

// algoMetrics accumulates one algorithm's serving stats.
type algoMetrics struct {
	jobs    uint64
	wall    time.Duration // wall-clock compute time, cache hits excluded
	virtual sim.Time      // virtual time on the modeled hardware
	latency obs.Histogram // per-job wall latency, cache hits included
}

// metrics is the server's observability state. The counters are guarded by
// one mutex (observation paths are short and the contention is dwarfed by
// the runs themselves); the latency distributions live in mergeable
// log-bucketed obs.Histograms, which carry their own locks.
type metrics struct {
	mu        sync.Mutex
	submitted uint64
	completed uint64
	failed    uint64
	rejected  uint64
	timedOut  uint64
	// coalesced counts submissions answered by piggybacking on an identical
	// in-flight job (single-flight dedup) instead of computing again.
	coalesced uint64
	inFlight  int64
	// faults accumulates the engine's fault-injection and recovery
	// counters across runs; hwFailures counts jobs abandoned because a
	// hardware fault persisted beyond the engine's retry budget.
	faults     gts.FaultStats
	hwFailures uint64
	// ingestBatches/ingestEdges count committed mutation batches and the
	// edge ops they carried; ingestFailures counts batches that errored
	// (including injected crashes).
	ingestBatches  uint64
	ingestEdges    uint64
	ingestFailures uint64
	// incHits/incFallbacks count requests served from retained epoch state
	// vs. requests that asked for incremental but fell back to a full run;
	// incSaved accumulates page-scans avoided relative to from-scratch
	// cost.
	incHits      uint64
	incFallbacks uint64
	incSaved     uint64
	perAlgo      map[string]*algoMetrics

	// queueWait is dequeue-time minus submission for every job that went
	// through the queue; runWall the engine compute time of computed jobs.
	queueWait obs.Histogram
	runWall   obs.Histogram
}

func newMetrics() *metrics {
	return &metrics{perAlgo: make(map[string]*algoMetrics)}
}

func (m *metrics) algo(name string) *algoMetrics {
	a := m.perAlgo[name]
	if a == nil {
		a = &algoMetrics{}
		m.perAlgo[name] = a
	}
	return a
}

func (m *metrics) addSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) addRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) addTimedOut()  { m.mu.Lock(); m.timedOut++; m.mu.Unlock() }
func (m *metrics) addFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) addCoalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

func (m *metrics) runStarted()  { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *metrics) runFinished() { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

func (m *metrics) observeQueueWait(d time.Duration) { m.queueWait.ObserveDuration(d) }
func (m *metrics) observeRunWall(d time.Duration)   { m.runWall.ObserveDuration(d) }

// addFaults folds one run's fault/recovery counters into the totals.
func (m *metrics) addFaults(fs gts.FaultStats) {
	m.mu.Lock()
	m.faults.Add(fs)
	m.mu.Unlock()
}

func (m *metrics) addHWFailure() { m.mu.Lock(); m.hwFailures++; m.mu.Unlock() }

// addIngested records one committed ingest batch of edges edge ops.
func (m *metrics) addIngested(edges int64) {
	m.mu.Lock()
	m.ingestBatches++
	m.ingestEdges += uint64(edges)
	m.mu.Unlock()
}

func (m *metrics) addIngestFailure() { m.mu.Lock(); m.ingestFailures++; m.mu.Unlock() }

// addIncHit records one job served from retained epoch state and the
// page-scans it saved relative to a from-scratch run.
func (m *metrics) addIncHit(savedPages int64) {
	m.mu.Lock()
	m.incHits++
	if savedPages > 0 {
		m.incSaved += uint64(savedPages)
	}
	m.mu.Unlock()
}

// addIncFallback records one incremental request that fell back to a full
// recompute.
func (m *metrics) addIncFallback() { m.mu.Lock(); m.incFallbacks++; m.mu.Unlock() }

// jobCompleted records one successfully answered job. For computed jobs,
// wall and virtual carry the run's cost; for cache hits both are zero and
// only the end-to-end latency lands in the histogram.
func (m *metrics) jobCompleted(algo string, latency, wall time.Duration, virtual sim.Time) {
	m.mu.Lock()
	m.completed++
	a := m.algo(algo)
	a.jobs++
	a.wall += wall
	a.virtual += virtual
	m.mu.Unlock()
	a.latency.ObserveDuration(latency)
}

// AlgoStats is the public per-algorithm slice of a Stats snapshot.
type AlgoStats struct {
	Jobs           uint64        `json:"jobs"`
	WallCompute    time.Duration `json:"wall_compute"`
	VirtualElapsed sim.Time      `json:"virtual_elapsed"`
	// LatencyP50/P90/P99 are end-to-end job latency quantiles in seconds
	// (upper bounds, within one log bucket of exact — see internal/obs).
	LatencyP50 float64 `json:"latency_p50"`
	LatencyP90 float64 `json:"latency_p90"`
	LatencyP99 float64 `json:"latency_p99"`
}

// LatencySummary is the quantile view of one latency histogram, in seconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func summarize(h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{Count: s.Count, P50: s.Quantile(0.5), P90: s.Quantile(0.9), P99: s.Quantile(0.99)}
}

// SharingStats aggregates the per-graph wave-group schedulers' lifetime
// counters (zero when no graph serves with ShareStreams).
type SharingStats struct {
	// WaveGroups is how many shared groups ran; GroupJobs how many jobs they
	// served; SoloFallbacks how many declined jobs re-ran privately.
	WaveGroups    int64 `json:"wave_groups"`
	GroupJobs     int64 `json:"group_jobs"`
	SoloFallbacks int64 `json:"solo_fallbacks"`
	// Waves counts superstep waves across groups; PageCopies host-to-device
	// page transfers; SharedPageCopies the member servings satisfied by a
	// page another member already paid to stream (the sharing win).
	Waves            int64 `json:"waves"`
	PageCopies       int64 `json:"page_copies"`
	SharedPageCopies int64 `json:"shared_page_copies"`
	BytesSaved       int64 `json:"bytes_saved"`
	BytesToGPU       int64 `json:"bytes_to_gpu"`
}

// AmortizedBytesPerJob is the mean host-to-device traffic per group-served
// job.
func (s SharingStats) AmortizedBytesPerJob() float64 {
	if s.GroupJobs == 0 {
		return 0
	}
	return float64(s.BytesToGPU) / float64(s.GroupJobs)
}

// Stats is a point-in-time snapshot of the server's counters, exposed both
// programmatically and (rendered) at /metrics.
type Stats struct {
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	InFlight   int64  `json:"in_flight"`
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`
	TimedOut   uint64 `json:"timed_out"`
	// Coalesced counts submissions deduplicated onto an identical in-flight
	// job (single-flight).
	Coalesced   uint64 `json:"coalesced"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`
	Graphs      int    `json:"graphs"`
	// HostWorkers is the largest effective engine host worker-pool size
	// across the loaded graphs (0 when no graph is loaded).
	HostWorkers int            `json:"host_workers"`
	Faults      gts.FaultStats `json:"faults"`
	HWFailures  uint64         `json:"hw_failures"`
	// Sharing aggregates wave-group activity across graphs serving with
	// ShareStreams.
	Sharing SharingStats `json:"sharing"`
	// Pool holds each pooled graph's shared host page-pool snapshot, keyed
	// by graph name (nil when no graph uses a BufferPool).
	Pool map[string]gts.PoolStats `json:"pool,omitempty"`
	// IngestBatches/IngestEdges count committed mutation batches and edge
	// ops; IngestFailures counts batches that errored (including crashes).
	IngestBatches  uint64 `json:"ingest_batches"`
	IngestEdges    uint64 `json:"ingest_edges"`
	IngestFailures uint64 `json:"ingest_failures"`
	// IncrementalHits counts jobs served from retained epoch state;
	// IncrementalFallbacks counts incremental requests that fell back to a
	// full recompute; IncrementalSavedSupersteps accumulates the page-scans
	// those hits avoided relative to from-scratch cost.
	IncrementalHits            uint64 `json:"incremental_hits"`
	IncrementalFallbacks       uint64 `json:"incremental_fallbacks"`
	IncrementalSavedSupersteps uint64 `json:"incremental_saved_supersteps"`
	// Retained holds each incremental graph's live retained-entry count.
	Retained map[string]int `json:"retained,omitempty"`
	// WAL holds each mutable graph's write-ahead-log counters, keyed by
	// graph name (nil when no graph is mutable).
	WAL map[string]gts.WALStats `json:"wal,omitempty"`
	// Epochs holds each mutable graph's mutation epoch (last applied LSN).
	Epochs map[string]uint64 `json:"epochs,omitempty"`
	// QueueWait and RunWall summarize the admission-queue wait and engine
	// compute-time distributions.
	QueueWait LatencySummary       `json:"queue_wait"`
	RunWall   LatencySummary       `json:"run_wall"`
	PerAlgo   map[string]AlgoStats `json:"per_algo"`
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// writeMetrics renders the Prometheus text exposition of a snapshot plus
// the latency histograms. Hand-rolled: the repo takes no dependencies
// beyond the standard library.
func (m *metrics) write(w io.Writer, s Stats) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gtsd_queue_depth", "Jobs waiting in the admission queue.", s.QueueDepth)
	gauge("gtsd_queue_capacity", "Admission queue capacity.", s.QueueCap)
	gauge("gtsd_inflight_jobs", "Jobs currently executing on an engine.", s.InFlight)
	gauge("gtsd_graphs_loaded", "Graphs in the registry.", s.Graphs)
	gauge("gtsd_host_workers", "Largest effective engine host worker-pool size across loaded graphs.", s.HostWorkers)
	counter("gtsd_jobs_submitted_total", "Jobs admitted to the queue or served from cache.", s.Submitted)
	counter("gtsd_jobs_completed_total", "Jobs answered successfully (computed or cached).", s.Completed)
	counter("gtsd_jobs_failed_total", "Jobs that errored during execution.", s.Failed)
	counter("gtsd_jobs_rejected_total", "Submissions refused because the queue was full.", s.Rejected)
	counter("gtsd_jobs_timedout_total", "Jobs whose deadline expired before execution.", s.TimedOut)
	counter("gtsd_cache_hits_total", "Result-cache hits.", s.CacheHits)
	counter("gtsd_cache_misses_total", "Result-cache misses.", s.CacheMisses)
	gauge("gtsd_cache_entries", "Live result-cache entries.", s.CacheSize)
	gauge("gtsd_cache_hit_rate", "Result-cache hit rate.", fmt.Sprintf("%.4f", s.CacheHitRate()))
	counter("gtsd_faults_injected_total", "Hardware faults injected into engine runs.", uint64(s.Faults.Injected()))
	counter("gtsd_fault_retries_total", "Engine retries of faulted operations.", uint64(s.Faults.Retries))
	counter("gtsd_fault_recoveries_total", "Faulted operations that eventually succeeded.", uint64(s.Faults.Recoveries))
	counter("gtsd_fault_degradations_total", "Device-OOM spills from the cached to the streaming path.", uint64(s.Faults.Degradations))
	counter("gtsd_hw_failures_total", "Jobs abandoned after the engine's retry budget was exhausted.", s.HWFailures)
	counter("gtsd_jobs_coalesced_total", "Submissions deduplicated onto an identical in-flight job.", s.Coalesced)
	counter("gtsd_wave_groups_total", "Shared wave groups run across ShareStreams graphs.", uint64(s.Sharing.WaveGroups))
	counter("gtsd_wave_group_jobs_total", "Jobs served inside shared wave groups.", uint64(s.Sharing.GroupJobs))
	counter("gtsd_solo_fallbacks_total", "Declined wave-group members re-run privately.", uint64(s.Sharing.SoloFallbacks))
	counter("gtsd_waves_total", "Superstep waves across shared groups.", uint64(s.Sharing.Waves))
	counter("gtsd_page_copies_total", "Topology pages streamed to GPUs by shared groups.", uint64(s.Sharing.PageCopies))
	counter("gtsd_shared_page_copies_total", "Member page servings satisfied by a copy another member paid for.", uint64(s.Sharing.SharedPageCopies))
	counter("gtsd_shared_bytes_saved_total", "Host-to-device bytes avoided by multi-query page sharing.", uint64(s.Sharing.BytesSaved))
	counter("gtsd_shared_bytes_to_gpu_total", "Host-to-device bytes moved by shared groups.", uint64(s.Sharing.BytesToGPU))
	gauge("gtsd_amortized_bytes_per_job", "Mean host-to-device bytes per wave-group job.", fmt.Sprintf("%.1f", s.Sharing.AmortizedBytesPerJob()))
	counter("gtsd_ingest_batches_total", "Committed edge-mutation batches across mutable graphs.", s.IngestBatches)
	counter("gtsd_ingest_edges_total", "Edge ops carried by committed ingest batches.", s.IngestEdges)
	counter("gtsd_ingest_failures_total", "Ingest batches that errored, including injected crashes.", s.IngestFailures)
	counter("gtsd_incremental_hits_total", "Jobs served by delta-expansion from retained epoch state.", s.IncrementalHits)
	counter("gtsd_incremental_fallbacks_total", "Incremental requests that fell back to a full recompute.", s.IncrementalFallbacks)
	counter("gtsd_incremental_saved_supersteps_total", "Page-scan supersteps avoided by incremental runs vs from-scratch cost.", s.IncrementalSavedSupersteps)

	if len(s.WAL) > 0 {
		graphs := make([]string, 0, len(s.WAL))
		for name := range s.WAL {
			graphs = append(graphs, name)
		}
		sort.Strings(graphs)
		walCounter := func(name, help string, v func(gts.WALStats) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, g := range graphs {
				fmt.Fprintf(w, "%s{graph=%q} %d\n", name, g, v(s.WAL[g]))
			}
		}
		walCounter("gtsd_wal_appends_total", "Batches appended to the write-ahead log.", func(ws gts.WALStats) int64 { return ws.Appends })
		walCounter("gtsd_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", func(ws gts.WALStats) int64 { return ws.AppendedBytes })
		walCounter("gtsd_wal_fsyncs_total", "Physical fsyncs issued by the write-ahead log.", func(ws gts.WALStats) int64 { return ws.Fsyncs })
		walCounter("gtsd_wal_group_commits_total", "Appends made durable by another waiter's fsync (group commit).", func(ws gts.WALStats) int64 { return ws.GroupCommits })
		walCounter("gtsd_wal_replayed_batches", "Committed batches replayed at the last open.", func(ws gts.WALStats) int64 { return ws.ReplayedBatches })
		walCounter("gtsd_wal_truncated_bytes_total", "Torn-tail bytes truncated at the last open.", func(ws gts.WALStats) int64 { return ws.TruncatedBytes })
		fmt.Fprintf(w, "# HELP gtsd_graph_epoch Mutation epoch (last applied WAL LSN) per mutable graph.\n# TYPE gtsd_graph_epoch gauge\n")
		for _, g := range graphs {
			fmt.Fprintf(w, "gtsd_graph_epoch{graph=%q} %d\n", g, s.Epochs[g])
		}
	}

	if len(s.Pool) > 0 {
		graphs := make([]string, 0, len(s.Pool))
		for name := range s.Pool {
			graphs = append(graphs, name)
		}
		sort.Strings(graphs)
		poolCounter := func(name, help string, v func(gts.PoolStats) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, g := range graphs {
				fmt.Fprintf(w, "%s{graph=%q,policy=%q} %d\n", name, g, s.Pool[g].Policy, v(s.Pool[g]))
			}
		}
		poolGauge := func(name, help string, v func(gts.PoolStats) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, g := range graphs {
				fmt.Fprintf(w, "%s{graph=%q,policy=%q} %d\n", name, g, s.Pool[g].Policy, v(s.Pool[g]))
			}
		}
		poolCounter("gtsd_pool_hits_total", "Host page-pool pins served from a resident page.", func(p gts.PoolStats) int64 { return p.Hits })
		poolCounter("gtsd_pool_loads_total", "Host page-pool pins that paid a storage read.", func(p gts.PoolStats) int64 { return p.Loads })
		poolCounter("gtsd_pool_evictions_total", "Pages evicted from the host page pool.", func(p gts.PoolStats) int64 { return p.Evictions })
		poolCounter("gtsd_pool_pin_waits_total", "Pins denied (frame busy or all frames pinned) that bypassed the pool.", func(p gts.PoolStats) int64 { return p.PinWaits })
		poolGauge("gtsd_pool_resident_pages", "Pages currently resident in the host page pool.", func(p gts.PoolStats) int64 { return int64(p.Resident) })
		poolGauge("gtsd_pool_pinned_pages", "Resident pages currently pinned by a run.", func(p gts.PoolStats) int64 { return int64(p.Pinned) })
		poolGauge("gtsd_pool_resident_bytes", "Host bytes the pool's resident pages occupy.", func(p gts.PoolStats) int64 { return p.ResidentBytes })
		poolGauge("gtsd_pool_budget_bytes", "Configured host page-pool budget.", func(p gts.PoolStats) int64 { return p.BudgetBytes })
	}

	fmt.Fprintf(w, "# HELP gtsd_job_queue_wait_seconds Admission-queue wait per dequeued job.\n# TYPE gtsd_job_queue_wait_seconds histogram\n")
	_ = m.queueWait.WritePrometheus(w, "gtsd_job_queue_wait_seconds", "")
	fmt.Fprintf(w, "# HELP gtsd_job_run_wall_seconds Engine compute wall time per computed job.\n# TYPE gtsd_job_run_wall_seconds histogram\n")
	_ = m.runWall.WritePrometheus(w, "gtsd_job_run_wall_seconds", "")

	// Copy the counter fields under the lock; the latency histograms carry
	// their own locks, so only their pointers are captured here.
	m.mu.Lock()
	names := make([]string, 0, len(m.perAlgo))
	walls := make(map[string]float64, len(m.perAlgo))
	virtuals := make(map[string]float64, len(m.perAlgo))
	algos := make(map[string]*algoMetrics, len(m.perAlgo))
	for name, a := range m.perAlgo {
		names = append(names, name)
		walls[name] = a.wall.Seconds()
		virtuals[name] = a.virtual.Seconds()
		algos[name] = a
	}
	m.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP gtsd_job_wall_seconds_total Wall-clock compute time per algorithm (cache hits excluded).\n# TYPE gtsd_job_wall_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "gtsd_job_wall_seconds_total{algo=%q} %.6f\n", name, walls[name])
	}
	fmt.Fprintf(w, "# HELP gtsd_job_virtual_seconds_total Virtual time on the modeled hardware per algorithm.\n# TYPE gtsd_job_virtual_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "gtsd_job_virtual_seconds_total{algo=%q} %.6f\n", name, virtuals[name])
	}
	fmt.Fprintf(w, "# HELP gtsd_job_latency_seconds End-to-end job latency per algorithm.\n# TYPE gtsd_job_latency_seconds histogram\n")
	for _, name := range names {
		_ = algos[name].latency.WritePrometheus(w, "gtsd_job_latency_seconds", fmt.Sprintf("algo=%q", name))
	}
}

// snapshotPerAlgo copies the per-algorithm totals for Stats.
func (m *metrics) snapshotPerAlgo() map[string]AlgoStats {
	m.mu.Lock()
	algos := make(map[string]*algoMetrics, len(m.perAlgo))
	counts := make(map[string]AlgoStats, len(m.perAlgo))
	for name, a := range m.perAlgo {
		algos[name] = a
		counts[name] = AlgoStats{Jobs: a.jobs, WallCompute: a.wall, VirtualElapsed: a.virtual}
	}
	m.mu.Unlock()
	out := make(map[string]AlgoStats, len(algos))
	for name, a := range algos {
		st := counts[name]
		sum := summarize(&a.latency)
		st.LatencyP50, st.LatencyP90, st.LatencyP99 = sum.P50, sum.P90, sum.P99
		out[name] = st
	}
	return out
}
