package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	gts "repro"
	"repro/internal/sim"
)

// latencyBuckets are the upper bounds (seconds) of the wall-clock latency
// histogram, exponential so one set covers sub-millisecond cache hits and
// multi-second storage-backed runs.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []uint64 // len(latencyBuckets)+1; last bucket = +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets)+1)
	}
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// algoMetrics accumulates one algorithm's serving stats.
type algoMetrics struct {
	jobs    uint64
	wall    time.Duration // wall-clock compute time, cache hits excluded
	virtual sim.Time      // virtual time on the modeled hardware
	latency histogram     // per-job wall latency, cache hits included
}

// metrics is the server's observability state. Everything is guarded by
// one mutex: observation paths are short and the contention is dwarfed by
// the runs themselves.
type metrics struct {
	mu        sync.Mutex
	submitted uint64
	completed uint64
	failed    uint64
	rejected  uint64
	timedOut  uint64
	inFlight  int64
	// faults accumulates the engine's fault-injection and recovery
	// counters across runs; hwFailures counts jobs abandoned because a
	// hardware fault persisted beyond the engine's retry budget.
	faults     gts.FaultStats
	hwFailures uint64
	perAlgo    map[string]*algoMetrics
}

func newMetrics() *metrics {
	return &metrics{perAlgo: make(map[string]*algoMetrics)}
}

func (m *metrics) algo(name string) *algoMetrics {
	a := m.perAlgo[name]
	if a == nil {
		a = &algoMetrics{}
		m.perAlgo[name] = a
	}
	return a
}

func (m *metrics) addSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) addRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) addTimedOut()  { m.mu.Lock(); m.timedOut++; m.mu.Unlock() }
func (m *metrics) addFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }

func (m *metrics) runStarted()  { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *metrics) runFinished() { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

// addFaults folds one run's fault/recovery counters into the totals.
func (m *metrics) addFaults(fs gts.FaultStats) {
	m.mu.Lock()
	m.faults.Add(fs)
	m.mu.Unlock()
}

func (m *metrics) addHWFailure() { m.mu.Lock(); m.hwFailures++; m.mu.Unlock() }

// jobCompleted records one successfully answered job. For computed jobs,
// wall and virtual carry the run's cost; for cache hits both are zero and
// only the end-to-end latency lands in the histogram.
func (m *metrics) jobCompleted(algo string, latency, wall time.Duration, virtual sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	a := m.algo(algo)
	a.jobs++
	a.wall += wall
	a.virtual += virtual
	a.latency.observe(latency.Seconds())
}

// AlgoStats is the public per-algorithm slice of a Stats snapshot.
type AlgoStats struct {
	Jobs           uint64        `json:"jobs"`
	WallCompute    time.Duration `json:"wall_compute"`
	VirtualElapsed sim.Time      `json:"virtual_elapsed"`
}

// Stats is a point-in-time snapshot of the server's counters, exposed both
// programmatically and (rendered) at /metrics.
type Stats struct {
	QueueDepth  int                  `json:"queue_depth"`
	QueueCap    int                  `json:"queue_cap"`
	InFlight    int64                `json:"in_flight"`
	Submitted   uint64               `json:"submitted"`
	Completed   uint64               `json:"completed"`
	Failed      uint64               `json:"failed"`
	Rejected    uint64               `json:"rejected"`
	TimedOut    uint64               `json:"timed_out"`
	CacheHits   uint64               `json:"cache_hits"`
	CacheMisses uint64               `json:"cache_misses"`
	CacheSize   int                  `json:"cache_size"`
	Graphs      int                  `json:"graphs"`
	// HostWorkers is the largest effective engine host worker-pool size
	// across the loaded graphs (0 when no graph is loaded).
	HostWorkers int `json:"host_workers"`
	Faults      gts.FaultStats       `json:"faults"`
	HWFailures  uint64               `json:"hw_failures"`
	PerAlgo     map[string]AlgoStats `json:"per_algo"`
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// writeMetrics renders the Prometheus text exposition of a snapshot plus
// the per-algorithm histograms. Hand-rolled: the repo takes no
// dependencies beyond the standard library.
func (m *metrics) write(w io.Writer, s Stats) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gtsd_queue_depth", "Jobs waiting in the admission queue.", s.QueueDepth)
	gauge("gtsd_queue_capacity", "Admission queue capacity.", s.QueueCap)
	gauge("gtsd_inflight_jobs", "Jobs currently executing on an engine.", s.InFlight)
	gauge("gtsd_graphs_loaded", "Graphs in the registry.", s.Graphs)
	gauge("gtsd_host_workers", "Largest effective engine host worker-pool size across loaded graphs.", s.HostWorkers)
	counter("gtsd_jobs_submitted_total", "Jobs admitted to the queue or served from cache.", s.Submitted)
	counter("gtsd_jobs_completed_total", "Jobs answered successfully (computed or cached).", s.Completed)
	counter("gtsd_jobs_failed_total", "Jobs that errored during execution.", s.Failed)
	counter("gtsd_jobs_rejected_total", "Submissions refused because the queue was full.", s.Rejected)
	counter("gtsd_jobs_timedout_total", "Jobs whose deadline expired before execution.", s.TimedOut)
	counter("gtsd_cache_hits_total", "Result-cache hits.", s.CacheHits)
	counter("gtsd_cache_misses_total", "Result-cache misses.", s.CacheMisses)
	gauge("gtsd_cache_entries", "Live result-cache entries.", s.CacheSize)
	gauge("gtsd_cache_hit_rate", "Result-cache hit rate.", fmt.Sprintf("%.4f", s.CacheHitRate()))
	counter("gtsd_faults_injected_total", "Hardware faults injected into engine runs.", uint64(s.Faults.Injected()))
	counter("gtsd_fault_retries_total", "Engine retries of faulted operations.", uint64(s.Faults.Retries))
	counter("gtsd_fault_recoveries_total", "Faulted operations that eventually succeeded.", uint64(s.Faults.Recoveries))
	counter("gtsd_fault_degradations_total", "Device-OOM spills from the cached to the streaming path.", uint64(s.Faults.Degradations))
	counter("gtsd_hw_failures_total", "Jobs abandoned after the engine's retry budget was exhausted.", s.HWFailures)

	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.perAlgo))
	for name := range m.perAlgo {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP gtsd_job_wall_seconds_total Wall-clock compute time per algorithm (cache hits excluded).\n# TYPE gtsd_job_wall_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "gtsd_job_wall_seconds_total{algo=%q} %.6f\n", name, m.perAlgo[name].wall.Seconds())
	}
	fmt.Fprintf(w, "# HELP gtsd_job_virtual_seconds_total Virtual time on the modeled hardware per algorithm.\n# TYPE gtsd_job_virtual_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "gtsd_job_virtual_seconds_total{algo=%q} %.6f\n", name, m.perAlgo[name].virtual.Seconds())
	}
	fmt.Fprintf(w, "# HELP gtsd_job_latency_seconds End-to-end job latency per algorithm.\n# TYPE gtsd_job_latency_seconds histogram\n")
	for _, name := range names {
		h := &m.perAlgo[name].latency
		if h.counts == nil {
			continue
		}
		var cum uint64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "gtsd_job_latency_seconds_bucket{algo=%q,le=%q} %d\n", name, trimFloat(le), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "gtsd_job_latency_seconds_bucket{algo=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "gtsd_job_latency_seconds_sum{algo=%q} %.6f\n", name, h.sum)
		fmt.Fprintf(w, "gtsd_job_latency_seconds_count{algo=%q} %d\n", name, h.total)
	}
}

// snapshotPerAlgo copies the per-algorithm totals for Stats.
func (m *metrics) snapshotPerAlgo() map[string]AlgoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]AlgoStats, len(m.perAlgo))
	for name, a := range m.perAlgo {
		out[name] = AlgoStats{Jobs: a.jobs, WallCompute: a.wall, VirtualElapsed: a.virtual}
	}
	return out
}

// trimFloat formats bucket bounds the Prometheus way ("0.001", not "1e-03").
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4f", f)
	for len(s) > 1 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
