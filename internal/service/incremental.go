package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	gts "repro"
	"repro/internal/incremental"
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file is the service half of incremental recompute: it resolves a
// job against the graph's retained-state store (hit, fallback, or plain
// capture), runs the chosen kernel through the solo or wave-group path,
// and captures fresh state on completion. Results are byte-identical to
// the normal path by the incremental package's exactness contract, so
// they share the same result cache and single-flight keys.

// incAlgos is the set of algorithms with a retained-state representation.
func incSupported(algo string) bool {
	return algo == "bfs" || algo == "cc" || algo == "pagerank"
}

// incKey keys retained entries by (algo, normalized params); the epoch is
// carried on the entry, not the key, so a stale entry is found (and
// migrated) rather than orphaned.
func incKey(algo string, p Params) string {
	buf, _ := json.Marshal(p)
	return algo + "?" + string(buf)
}

// incPlan is one resolved incremental-path execution: the kernel to run,
// the result decoder, and the state capture to perform on success.
type incPlan struct {
	kernel  gts.Kernel
	source  uint64
	decode  func(gts.KernelState, gts.Metrics) any
	capture func(gts.KernelState, gts.Metrics)
	// hit marks a delta-expansion run; seeds is its seed count (for the
	// incseed span) and priorFull the retained from-scratch page cost.
	hit       bool
	seeds     int
	priorFull int64
	// fallback carries the reason an incremental request could not be
	// served from retained state ("" when not requested or when hit).
	fallback string
}

// executeIncremental serves one dequeued job through the incremental
// path. It returns false — leaving the job untouched — when the graph has
// no retained-state store, the algorithm has no incremental form, or the
// configuration is outside the supported envelope (multi-GPU replicas
// merge state in ways the delta planners do not model).
func (s *Server) executeIncremental(job *Job) bool {
	entry := job.entry
	if entry.inc == nil || !incSupported(job.req.Algo) {
		return false
	}
	cfg := entry.pool.Config()
	if cfg.GPUs > 1 {
		if job.req.Incremental {
			s.met.addIncFallback()
			entry.inc.AddFallback()
		}
		return false
	}
	g := entry.pool.Graph()
	plan := s.planIncremental(entry, g, cfg, job.req)
	if plan.kernel == nil {
		return false
	}

	var rec *trace.Recorder
	if s.traces != nil {
		rec = trace.NewWithID(job.id)
		if plan.hit {
			rec.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.IncSeed, Page: int64(plan.seeds), Level: -1})
		} else if plan.fallback != "" {
			rec.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.IncFallback, Page: -1, Level: -1})
		}
	}

	var out gts.KernelState
	var m gts.Metrics
	var err error
	var wall time.Duration
	if entry.sched != nil {
		job.setRunning()
		s.met.runStarted()
		start := time.Now()
		res, serr := entry.sched.Run(job.ctx, sched.Job{Kernel: plan.kernel, Source: plan.source, Trace: rec})
		wall = time.Since(start)
		s.met.runFinished()
		s.met.observeRunWall(wall)
		if serr != nil {
			err = serr
		} else {
			out, m = res.State, res.Metrics
		}
	} else {
		sys, aerr := entry.pool.Acquire(job.ctx)
		if aerr != nil {
			s.met.addTimedOut()
			job.fail(fmt.Errorf("%w (waiting for an engine)", ErrTimeout), JobTimedOut)
			if rec != nil {
				s.traces.put(job.id, rec)
			}
			return true
		}
		job.setRunning()
		var prevRec *trace.Recorder
		if rec != nil {
			prevRec = sys.SetTrace(rec)
		}
		s.met.runStarted()
		start := time.Now()
		out, m, err = sys.RunKernel(plan.kernel, plan.source)
		wall = time.Since(start)
		s.met.runFinished()
		s.met.observeRunWall(wall)
		if rec != nil {
			sys.SetTrace(prevRec)
		}
		entry.pool.Release(sys)
	}
	if rec != nil {
		s.traces.put(job.id, rec)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.met.addTimedOut()
			job.fail(fmt.Errorf("%w (incremental run)", ErrTimeout), JobTimedOut)
			return true
		}
		s.met.addFailed()
		if errors.Is(err, gts.ErrHardwareFault) {
			s.met.addHWFailure()
		}
		job.fail(err, JobFailed)
		return true
	}

	// Accounting: a hit saved (from-scratch pages - streamed pages); a
	// fallback on an explicit incremental request counts against it.
	if plan.hit {
		saved := plan.priorFull - m.PagesStreamed
		s.met.addIncHit(saved)
		entry.inc.AddHit(saved)
	} else if plan.fallback != "" {
		s.met.addIncFallback()
		entry.inc.AddFallback()
	}
	plan.capture(out, m)

	s.met.addFaults(m.Faults)
	res := &Result{
		Graph:   job.req.Graph,
		Algo:    job.req.Algo,
		Params:  job.req.Params,
		Metrics: m,
		Output:  plan.decode(out, m),
		Wall:    wall,
	}
	s.cache.put(job.key, res)
	job.complete(res, false)
	s.met.jobCompleted(job.req.Algo, job.Latency(), wall, m.Elapsed)
	return true
}

// planIncremental resolves how to run the job: delta-expansion from a
// retained entry when requested and safe, otherwise a full run that
// captures fresh state.
func (s *Server) planIncremental(entry *graphEntry, g *gts.Graph, cfg gts.Config, req Request) incPlan {
	p := req.Params
	key := incKey(req.Algo, p)
	fallback := ""
	if req.Incremental {
		if prior, delta, ok := entry.inc.Lookup(key); ok {
			plan, reason := buildIncKernel(entry, g, key, req.Algo, p, prior, delta)
			if reason == "" {
				return plan
			}
			fallback = reason
		} else {
			fallback = "no-retained-state"
		}
	}
	plan := buildFullCapture(entry, g, cfg, key, req.Algo, p)
	plan.fallback = fallback
	return plan
}

// buildIncKernel plans a delta-expansion kernel for one algorithm, or
// reports why it cannot be exact.
func buildIncKernel(entry *graphEntry, g *gts.Graph, key, algo string, p Params, prior *incremental.Entry, delta incremental.Delta) (incPlan, string) {
	epoch := entry.epoch
	inc := entry.inc
	switch algo {
	case "bfs":
		if prior.Source != p.Source {
			return incPlan{}, "source-mismatch"
		}
		k, reason := incremental.PlanBFS(g, prior, delta)
		if reason != "" {
			return incPlan{}, reason
		}
		return incPlan{
			kernel:    k,
			source:    p.Source,
			hit:       true,
			seeds:     k.Seeds,
			priorFull: prior.FullPages,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.BFSResult{Metrics: m, Levels: k.Levels(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindBFS, Epoch: epoch, Source: p.Source,
					Levels:    append([]int16(nil), k.Levels(st)...),
					FullPages: prior.FullPages,
				})
			},
		}, ""
	case "cc":
		k, reason := incremental.PlanCC(g, prior, delta)
		if reason != "" {
			return incPlan{}, reason
		}
		return incPlan{
			kernel:    k,
			hit:       true,
			seeds:     k.Seeds,
			priorFull: prior.FullPages,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.CCResult{Metrics: m, Labels: k.Components(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindCC, Epoch: epoch,
					Labels:    append([]uint32(nil), k.Components(st)...),
					FullPages: prior.FullPages,
				})
			},
		}, ""
	case "pagerank":
		k, reason := incremental.PlanPageRank(g, prior, delta, p.Damping, p.Iterations)
		if reason != "" {
			return incPlan{}, reason
		}
		return incPlan{
			kernel:    k,
			hit:       true,
			seeds:     k.Seeds,
			priorFull: prior.FullPages,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.PageRankResult{Metrics: m, Ranks: k.Ranks(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindPageRank, Epoch: epoch,
					Traj: k.Trajectory(), Damping: p.Damping, Iterations: p.Iterations,
					FullPages: prior.FullPages,
				})
			},
		}, ""
	}
	return incPlan{}, "unsupported"
}

// buildFullCapture builds the from-scratch kernel for one algorithm plus
// the capture that retains its completed state for later incremental runs.
func buildFullCapture(entry *graphEntry, g *gts.Graph, cfg gts.Config, key, algo string, p Params) incPlan {
	epoch := entry.epoch
	inc := entry.inc
	switch algo {
	case "bfs":
		var k interface {
			gts.Kernel
			Levels(gts.KernelState) []int16
		}
		if cfg.DirectionOpt {
			k = kernels.NewDirBFS(g)
		} else {
			k = kernels.NewBFS(g)
		}
		return incPlan{
			kernel: k,
			source: p.Source,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.BFSResult{Metrics: m, Levels: k.Levels(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindBFS, Epoch: epoch, Source: p.Source,
					Levels:    append([]int16(nil), k.Levels(st)...),
					FullPages: m.PagesStreamed,
				})
			},
		}
	case "cc":
		k := kernels.NewCC(g)
		return incPlan{
			kernel: k,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.CCResult{Metrics: m, Labels: k.Components(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindCC, Epoch: epoch,
					Labels:    append([]uint32(nil), k.Components(st)...),
					FullPages: m.PagesStreamed,
				})
			},
		}
	case "pagerank":
		k := incremental.NewRecordingPageRank(g, p.Damping, p.Iterations)
		return incPlan{
			kernel: k,
			decode: func(st gts.KernelState, m gts.Metrics) any {
				return &gts.PageRankResult{Metrics: m, Ranks: k.Ranks(st)}
			},
			capture: func(st gts.KernelState, m gts.Metrics) {
				inc.Capture(key, &incremental.Entry{
					Kind: incremental.KindPageRank, Epoch: epoch,
					Traj: k.Traj, Damping: p.Damping, Iterations: p.Iterations,
					FullPages: m.PagesStreamed,
				})
			},
		}
	}
	return incPlan{}
}
