package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"
)

// cacheKey canonicalizes a request into the string that keys the result
// cache AND the single-flight table: graph name, the graph's load
// generation (re-loading a name invalidates stale entries), the graph's
// mutation epoch (an ingested batch invalidates stale entries and prevents
// a new-epoch job from coalescing behind an old-epoch leader), algorithm,
// and the normalized parameters.
func cacheKey(graph string, gen, epoch uint64, algo string, p Params) string {
	buf, _ := json.Marshal(p) // Params marshals deterministically (fixed field order)
	return fmt.Sprintf("%s#%d@%d/%s?%s", graph, gen, epoch, algo, buf)
}

// resultCache is an LRU over completed job results, the service-level
// analogue of the engine's cachedPIDMap: the engine caches topology pages
// in spare device memory, the service caches whole answers in spare host
// memory. Hit/miss counters feed /metrics.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// newResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result for key, updating recency and counters.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return nil, false
}

// peek returns the cached result without touching recency or the hit/miss
// counters (used for the workers' second-chance lookup, which would
// otherwise double-count each computed job as a miss).
func (c *resultCache) peek(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// put stores res under key, evicting the least recently used entry when
// full. Results are shared across callers and must be treated as
// immutable.
func (c *resultCache) put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// stats returns (hits, misses, live entries).
func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
