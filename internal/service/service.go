// Package service is the concurrent analytics layer over the GTS engine:
// a long-lived Server that holds named, pre-loaded slotted-page graphs
// (each fronted by a gts.SystemPool), admits algorithm jobs through a
// bounded FIFO queue, executes them on a worker pool with per-job
// deadlines, memoizes completed answers in an LRU result cache — the
// service-level analogue of the engine's cachedPIDMap — and exports
// queue/cache/latency metrics. cmd/gtsd wraps it in an HTTP daemon; it is
// equally usable in-process (see ServiceBench in the root package's
// benchmarks).
//
// Lifecycle of a job: Submit validates the request, normalizes parameters,
// and consults the cache — a hit completes the job immediately; a miss
// enqueues it or, if the queue is full, rejects it with ErrOverloaded.
// A worker dequeues the job, re-checks its deadline (a job whose deadline
// expired while queued times out without running), claims a System from
// the graph's pool, and runs the algorithm. Runs are not preempted: a
// deadline that expires mid-run does not cancel the engine, it only
// bounds queue and pool wait.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	gts "repro"
	"repro/internal/incremental"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Typed errors; the HTTP layer maps each to a status code.
var (
	// ErrOverloaded reports that the admission queue was full (HTTP 429).
	ErrOverloaded = errors.New("service: overloaded, queue full")
	// ErrUnknownGraph reports a request against a graph name that was
	// never loaded (HTTP 404).
	ErrUnknownGraph = errors.New("service: unknown graph")
	// ErrUnknownAlgo reports an unrecognized algorithm name (HTTP 404).
	ErrUnknownAlgo = errors.New("service: unknown algorithm")
	// ErrUnknownJob reports a status query for an unknown job ID (404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrShuttingDown reports a submission after Shutdown began (503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrTimeout is the outcome of a job whose deadline expired before it
	// could run (HTTP 504).
	ErrTimeout = errors.New("service: job deadline expired")
	// ErrDuplicateGraph reports AddGraph over an existing name without
	// replace semantics (HTTP 409).
	ErrDuplicateGraph = errors.New("service: graph already loaded")
	// ErrGraphNotReady reports a job against a graph still loading or
	// recovering, or one degraded by an ingest crash (HTTP 503).
	ErrGraphNotReady = errors.New("service: graph not ready")
	// ErrImmutableGraph reports an ingest against a graph loaded without a
	// WAL (HTTP 409).
	ErrImmutableGraph = errors.New("service: graph is immutable (loaded without a WAL)")
)

// Config sizes a Server. The zero value is serviceable: 4 workers, a
// 64-deep queue, a 256-entry result cache, no default deadline.
type Config struct {
	// Workers is the number of concurrent executors (default 4).
	Workers int
	// QueueDepth bounds the admission FIFO (default 64). Submissions
	// beyond it fail fast with ErrOverloaded.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 256; negative disables).
	CacheEntries int
	// DefaultTimeout applies to requests without an explicit deadline;
	// 0 means no deadline.
	DefaultTimeout time.Duration
	// JobHistory bounds how many finished jobs remain queryable by ID
	// (default 1024).
	JobHistory int
	// TraceJobs, when positive, records a request-scoped engine trace for
	// each computed job and retains the Chrome trace_event JSON of the most
	// recent TraceJobs jobs, served at /debug/trace/{id}. 0 disables
	// tracing.
	TraceJobs int
	// Incremental, when true, retains completed BFS/CC/PageRank state on
	// mutable graphs and serves `incremental: true` requests by
	// delta-expansion from it (falling back to a full run whenever
	// exactness cannot be guaranteed). Results are byte-identical to
	// from-scratch recompute either way.
	Incremental bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	return c
}

// Request names one algorithm invocation.
type Request struct {
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`
	Params Params `json:"params"`
	// Timeout bounds queueing + pool wait; 0 inherits
	// Config.DefaultTimeout, negative means no deadline.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Incremental asks the server to answer from retained epoch state via
	// delta-expansion when it can (Config.Incremental graphs only). The
	// result is byte-identical to a full recompute; the flag only changes
	// how much of the graph is re-streamed.
	Incremental bool `json:"incremental,omitempty"`
}

// Result is a completed job's immutable answer. Cached results are shared
// between jobs; callers must not mutate Output.
type Result struct {
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`
	Params Params `json:"params"`
	// Metrics are the run's engine measurements (virtual elapsed time,
	// pages streamed, MTEPS, ...).
	Metrics gts.Metrics `json:"metrics"`
	// Output is the algorithm's public result struct (*gts.BFSResult,
	// *gts.PageRankResult, ...), exactly what the matching gts.System
	// method returned.
	Output any `json:"output"`
	// Wall is the compute time of the run that produced this result.
	Wall time.Duration `json:"wall"`
}

// JobState is a job's lifecycle position.
type JobState int32

// Job states.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
	JobTimedOut
)

// String names the state for JSON and logs.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return "timedout"
	}
}

// Job tracks one submission through the queue. All accessors are safe for
// concurrent use.
type Job struct {
	id        string
	req       Request // normalized params
	key       string
	entry     *graphEntry
	algo      algorithm
	ctx       context.Context
	cancel    context.CancelFunc
	submitted time.Time

	mu       sync.Mutex
	state    JobState
	cached   bool
	result   *Result
	err      error
	finished time.Time
	done     chan struct{}
}

// ID returns the job's server-unique identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submission with normalized parameters.
func (j *Job) Request() Request { return j.req }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle position.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cached reports whether the answer came from the result cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// Result returns the answer (nil until done) and the terminal error, if
// any.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Err returns the terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Latency returns submission-to-finish wall time (0 until done).
func (j *Job) Latency() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.submitted)
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

func (j *Job) complete(res *Result, cached bool) {
	j.mu.Lock()
	j.state = JobDone
	j.result = res
	j.cached = cached
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(err error, state JobState) {
	j.mu.Lock()
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// GraphState is a registered graph's serving condition, reported by
// /healthz and gating /readyz.
type GraphState int32

// Graph states.
const (
	// GraphLoading: the base graph is being opened/generated and its engine
	// pool built.
	GraphLoading GraphState = iota
	// GraphRecovering: the WAL's committed batches are being replayed onto
	// the base graph.
	GraphRecovering
	// GraphServing: queries are admitted.
	GraphServing
	// GraphDegraded: an ingest crash (or a failed pool rebuild) left the
	// graph read-only-at-best; reload to recover.
	GraphDegraded
)

// String names the state for /healthz JSON.
func (g GraphState) String() string {
	switch g {
	case GraphLoading:
		return "loading"
	case GraphRecovering:
		return "recovering"
	case GraphServing:
		return "serving"
	default:
		return "degraded"
	}
}

// graphEntry is one registered graph with its engine pool. Entries are
// immutable after publication except for state; a mutation publishes a
// whole new entry (new pool over the new snapshot, same MutableGraph), so
// jobs holding an old entry keep computing against the consistent old
// snapshot.
type graphEntry struct {
	name  string
	gen   uint64 // load generation, part of the cache key
	epoch uint64 // mutation epoch (last applied WAL LSN), part of the cache key
	pool  *gts.SystemPool
	// sched coalesces concurrent jobs into shared wave groups; nil unless
	// the pool was configured with ShareStreams.
	sched *sched.Scheduler
	// mg is the mutable backing (nil for immutable graphs).
	mg *gts.MutableGraph
	// inc is the retained-state store for incremental recompute (nil
	// unless Config.Incremental and the graph is mutable). It is carried
	// across ingest republishes — the commit hook migrates its chain — and
	// rebuilt from scratch on graph reload, so crash recovery can never
	// resurrect pre-crash state.
	inc   *incremental.Store
	state atomicState
}

// atomicState is a small typed wrapper over the entry's state word.
type atomicState struct{ v int32 }

func (a *atomicState) load() GraphState { return GraphState(atomic.LoadInt32(&a.v)) }
func (a *atomicState) store(s GraphState) {
	atomic.StoreInt32(&a.v, int32(s))
}

// GraphInfo describes a registered graph for listings.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices uint64 `json:"vertices"`
	Edges    uint64 `json:"edges"`
	Pool     int    `json:"pool"`
	// HostWorkers is the effective host worker-pool size this graph's
	// engines execute kernels with (the engine's HostWorkers after
	// defaulting 0 to GOMAXPROCS).
	HostWorkers int `json:"host_workers"`
	// PoolPolicy and PoolBytes describe the graph's shared host page pool
	// — the single pinned buffer all pooled Systems stream through.
	// Empty/zero when the graph serves from the classic per-run buffer.
	PoolPolicy string `json:"pool_policy,omitempty"`
	PoolBytes  int64  `json:"pool_bytes,omitempty"`
	// State is the serving state ("loading"/"recovering"/"serving"/
	// "degraded"); Mutable and Epoch describe WAL-backed graphs.
	State   string `json:"state"`
	Mutable bool   `json:"mutable,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// effectiveHostWorkers resolves a pool's HostWorkers setting the way the
// engine does: 0 means one worker per CPU.
func effectiveHostWorkers(cfg gts.Config) int {
	if cfg.HostWorkers > 0 {
		return cfg.HostWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Server is the concurrent analytics service. Create with New, populate
// with AddGraph/LoadGraph, submit with Submit (async) or Run (sync), and
// stop with Shutdown.
type Server struct {
	cfg    Config
	queue  chan *Job
	cache  *resultCache
	met    *metrics
	traces *traceStore // nil when Config.TraceJobs == 0

	mu       sync.Mutex // graphs, jobs, inflight, nextID, nextGen, closed
	graphs   map[string]*graphEntry
	jobs     map[string]*Job
	jobOrder []*Job
	// inflight maps a cache key to the queued or running job computing it;
	// identical concurrent submissions coalesce behind it (single-flight).
	inflight map[string]*Job
	nextID   uint64
	nextGen  uint64
	closed   bool

	workers   sync.WaitGroup
	followers sync.WaitGroup // coalesced-job mirror goroutines
}

// New starts a Server with cfg's worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries),
		met:      newMetrics(),
		graphs:   make(map[string]*graphEntry),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if cfg.TraceJobs > 0 {
		s.traces = newTraceStore(cfg.TraceJobs)
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// AddGraph registers a pre-built engine pool under name. The pool's graph
// must not be mutated afterwards (slotted-page graphs are immutable once
// built). Re-registering a name replaces the previous graph and, via the
// generation in the cache key, implicitly invalidates its cached results.
// Pools configured with gts.Config.ShareStreams get a wave-group scheduler:
// concurrent jobs on the graph coalesce into shared topology streams.
func (s *Server) AddGraph(name string, pool *gts.SystemPool) error {
	if name == "" || pool == nil {
		return fmt.Errorf("service: AddGraph needs a name and a pool")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	s.nextGen++
	entry := &graphEntry{name: name, gen: s.nextGen, pool: pool}
	entry.state.store(GraphServing)
	if pool.Config().ShareStreams {
		entry.sched = sched.New(pool, sched.Config{})
	}
	if old := s.graphs[name]; old != nil && old.sched != nil {
		// Drain the replaced graph's scheduler off the lock; in-flight jobs
		// against the old entry still complete through it.
		go old.sched.Close()
	}
	s.graphs[name] = entry
	return nil
}

// LoadMutableGraph opens spec as a crash-recoverable mutable graph whose
// mutation history lives in the WAL at walPath (created if absent,
// replayed if present), builds a poolSize-wide engine pool over the
// recovered snapshot, and registers it under name. While the load runs the
// graph is visible to Health in the "loading" (fresh WAL) or "recovering"
// (non-empty WAL) state and rejects jobs with ErrGraphNotReady; it flips
// to "serving" when the pool is up.
func (s *Server) LoadMutableGraph(name, spec, walPath string, engineCfg gts.Config, poolSize int) error {
	if name == "" || spec == "" || walPath == "" {
		return fmt.Errorf("service: LoadMutableGraph needs a name, a spec and a WAL path")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.nextGen++
	placeholder := &graphEntry{name: name, gen: s.nextGen}
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > 0 {
		placeholder.state.store(GraphRecovering)
	} else {
		placeholder.state.store(GraphLoading)
	}
	prev := s.graphs[name]
	s.graphs[name] = placeholder
	s.mu.Unlock()
	if prev != nil && prev.sched != nil {
		go prev.sched.Close()
	}

	fail := func(err error) error {
		s.mu.Lock()
		if s.graphs[name] == placeholder {
			delete(s.graphs, name)
		}
		s.mu.Unlock()
		return err
	}
	mg, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{Faults: engineCfg.Faults})
	if err != nil {
		return fail(err)
	}
	// Per-job fault plans still apply through requests; the graph-level
	// plan was consumed by the WAL/ingest injector above. Keeping it on the
	// engines too would double-inject every storage fault.
	pool, err := gts.NewSystemPool(mg.Snapshot(), engineCfg, poolSize)
	if err != nil {
		mg.Close()
		return fail(err)
	}
	entry := &graphEntry{name: name, gen: placeholder.gen, epoch: mg.Epoch(), pool: pool, mg: mg}
	if s.cfg.Incremental {
		// A fresh store per load: recovery discards every pre-crash entry
		// by construction (epoch-mismatch safety without trusting the
		// recovered LSN counter). The commit hook runs under the ingest
		// lock, so the chain records commits in order.
		inc := incremental.NewStore(mg.Epoch())
		mg.OnCommitOps(func(prev, epoch uint64, ops []gts.EdgeOp, old, _ *gts.Graph) {
			inc.Commit(prev, epoch, ops, old)
		})
		entry.inc = inc
	}
	entry.state.store(GraphServing)
	if pool.Config().ShareStreams {
		entry.sched = sched.New(pool, sched.Config{})
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		mg.Close()
		if entry.sched != nil {
			entry.sched.Close()
		}
		return ErrShuttingDown
	}
	if s.graphs[name] == placeholder {
		s.graphs[name] = entry
	}
	s.mu.Unlock()
	return nil
}

// Ingest commits one batch of edge mutations against a mutable graph:
// WAL-append + fsync, apply, then republish the graph at its new epoch —
// a fresh engine pool over the new snapshot sharing the old host page pool
// (stale frames invalidated via AdvanceEpoch), a fresh wave-group
// scheduler (the old one is fenced and drained), and a new cache-key
// epoch so no stale result or old-epoch leader can serve new-epoch jobs.
func (s *Server) Ingest(name string, ops []gts.EdgeOp) (epoch uint64, err error) {
	s.mu.Lock()
	entry, ok := s.graphs[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	if entry.mg == nil {
		return 0, fmt.Errorf("%w: %q", ErrImmutableGraph, name)
	}
	if st := entry.state.load(); st != GraphServing {
		return 0, fmt.Errorf("%w: %q is %s", ErrGraphNotReady, name, st)
	}
	epoch, err = entry.mg.Ingest(ops)
	if err != nil {
		s.met.addIngestFailure()
		if errors.Is(err, gts.ErrCrashed) {
			entry.state.store(GraphDegraded)
		}
		return 0, err
	}
	s.met.addIngested(int64(len(ops)))

	// Fence the running scheduler so no pre-mutation wave group admits a
	// post-mutation job, invalidate the shared host pool's superseded
	// frames, and publish a new entry over the new snapshot.
	if entry.sched != nil {
		entry.sched.Fence()
	}
	cfg := entry.pool.Config()
	if hp := entry.pool.HostPool(); hp != nil {
		hp.AdvanceEpoch()
		cfg.HostPool = hp // keep sharing the same pool across the rebuild
	}
	pool, perr := gts.NewSystemPool(entry.mg.Snapshot(), cfg, entry.pool.Size())
	if perr != nil {
		entry.state.store(GraphDegraded)
		return epoch, fmt.Errorf("service: batch %d committed but pool rebuild failed: %w", epoch, perr)
	}
	next := &graphEntry{name: name, gen: entry.gen, epoch: epoch, pool: pool, mg: entry.mg, inc: entry.inc}
	next.state.store(GraphServing)
	if cfg.ShareStreams {
		next.sched = sched.New(pool, sched.Config{})
	}
	s.mu.Lock()
	if s.graphs[name] == entry {
		s.graphs[name] = next
	}
	s.mu.Unlock()
	if entry.sched != nil {
		// Jobs already inside the old scheduler finish against the old
		// snapshot (their results are keyed to the old epoch and stay
		// correct); Close drains them off the lock.
		go entry.sched.Close()
	}
	return epoch, nil
}

// GraphHealth is one graph's /healthz row.
type GraphHealth struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Epoch uint64 `json:"epoch"`
	// Mutable reports whether the graph accepts ingest.
	Mutable bool `json:"mutable"`
	// ReplayedBatches is how many committed WAL batches the load replayed.
	ReplayedBatches int `json:"replayed_batches,omitempty"`
	// Incremental reports whether the graph retains state for incremental
	// recompute; RetainedEntries is the live retained-entry count.
	Incremental     bool `json:"incremental,omitempty"`
	RetainedEntries int  `json:"retained_entries,omitempty"`
}

// Health reports every registered graph's serving state, sorted by name.
func (s *Server) Health() []GraphHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphHealth, 0, len(s.graphs))
	for _, e := range s.graphs {
		h := GraphHealth{Name: e.name, State: e.state.load().String(), Epoch: e.epoch, Mutable: e.mg != nil}
		if e.mg != nil {
			h.Epoch = e.mg.Epoch()
			h.ReplayedBatches = e.mg.ReplayedBatches()
		}
		if e.inc != nil {
			h.Incremental = true
			h.RetainedEntries = e.inc.Len()
		}
		out = append(out, h)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Ready reports whether every registered graph is serving (readiness: a
// server with no graphs is ready; one mid-recovery or degraded is not).
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.graphs {
		if e.state.load() != GraphServing {
			return false
		}
	}
	return true
}

// LoadGraph opens a graph spec (see gts.Open: a .gts store file or
// "dataset[@shrink]"), builds a poolSize-wide engine pool with engineCfg,
// and registers it under name.
func (s *Server) LoadGraph(name, spec string, engineCfg gts.Config, poolSize int) error {
	g, err := gts.Open(spec)
	if err != nil {
		return err
	}
	pool, err := gts.NewSystemPool(g, engineCfg, poolSize)
	if err != nil {
		return err
	}
	return s.AddGraph(name, pool)
}

// Graphs lists the registered graphs, sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		info := GraphInfo{Name: e.name, State: e.state.load().String(), Mutable: e.mg != nil, Epoch: e.epoch}
		if e.pool != nil { // placeholder entries mid-load have no pool yet
			g := e.pool.Graph()
			info.Vertices, info.Edges = g.NumVertices(), g.NumEdges()
			info.Pool = e.pool.Size()
			info.HostWorkers = effectiveHostWorkers(e.pool.Config())
			if hp := e.pool.HostPool(); hp != nil {
				info.PoolPolicy = hp.Policy()
				info.PoolBytes = hp.Budget()
			}
		}
		out = append(out, info)
	}
	sortGraphInfo(out)
	return out
}

func sortGraphInfo(infos []GraphInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Submit validates req and either answers it from the cache (the returned
// job is already done), enqueues it, or rejects it with ErrOverloaded.
// The returned Job is also queryable via Lookup until evicted from the
// history.
func (s *Server) Submit(req Request) (*Job, error) {
	algo, err := lookupAlgo(req.Algo)
	if err != nil {
		return nil, err
	}
	req.Params = algo.normalize(req.Params)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	entry, ok := s.graphs[req.Graph]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, req.Graph)
	}
	if st := entry.state.load(); st != GraphServing {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q is %s", ErrGraphNotReady, req.Graph, st)
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	job := &Job{
		id:        id,
		req:       req,
		key:       cacheKey(entry.name, entry.gen, entry.epoch, req.Algo, req.Params),
		entry:     entry,
		algo:      algo,
		ctx:       ctx,
		cancel:    cancel,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}

	if res, ok := s.cache.get(job.key); ok {
		s.met.addSubmitted()
		job.cancel()
		job.complete(res, true)
		s.met.jobCompleted(req.Algo, job.Latency(), 0, 0)
		s.remember(job)
		return job, nil
	}

	// Admission control: the send must happen under the lock so Shutdown
	// cannot close the queue between the closed check and the send.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job.cancel()
		return nil, ErrShuttingDown
	}
	// Single-flight: an identical request already queued or running becomes
	// this job's leader; the follower never enters the queue, it mirrors the
	// leader's outcome when it lands.
	if leader, ok := s.inflight[job.key]; ok {
		s.rememberLocked(job)
		s.mu.Unlock()
		s.met.addSubmitted()
		s.met.addCoalesced()
		s.followers.Add(1)
		go func() {
			defer s.followers.Done()
			s.mirror(job, leader)
		}()
		return job, nil
	}
	select {
	case s.queue <- job:
		s.inflight[job.key] = job
		s.rememberLocked(job)
		s.mu.Unlock()
		s.met.addSubmitted()
		return job, nil
	default:
		s.mu.Unlock()
		s.met.addRejected()
		job.cancel()
		return nil, ErrOverloaded
	}
}

// mirror completes a coalesced follower with its leader's outcome (or a
// timeout if the follower's own deadline expires first).
func (s *Server) mirror(job, leader *Job) {
	defer job.cancel()
	select {
	case <-leader.Done():
	case <-job.ctx.Done():
		s.met.addTimedOut()
		job.fail(fmt.Errorf("%w (coalesced behind %s)", ErrTimeout, leader.id), JobTimedOut)
		return
	}
	res, err := leader.Result()
	if err != nil {
		s.met.addFailed()
		job.fail(fmt.Errorf("coalesced behind %s: %w", leader.id, err), JobFailed)
		return
	}
	job.complete(res, true)
	s.met.jobCompleted(job.req.Algo, job.Latency(), 0, 0)
}

// clearInflight drops the single-flight registration once the leader
// reaches a terminal state, so later identical submissions go through the
// cache (or recompute) instead of chaining onto a finished job.
func (s *Server) clearInflight(job *Job) {
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.mu.Unlock()
}

// Run submits req and waits for the job to finish or ctx to expire. On
// success the returned job is done; on error the job (when non-nil) may
// still complete in the background.
func (s *Server) Run(ctx context.Context, req Request) (*Job, error) {
	job, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		return job, job.Err()
	case <-ctx.Done():
		return job, ctx.Err()
	}
}

// Lookup returns a submitted job by ID while it remains in the bounded
// history.
func (s *Server) Lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return job, nil
}

func (s *Server) remember(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rememberLocked(job)
}

// rememberLocked registers a job in the history, evicting the oldest
// finished jobs beyond the cap. Unfinished jobs are never evicted (their
// count is bounded by queue depth + workers).
func (s *Server) rememberLocked(job *Job) {
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job)
	for len(s.jobs) > s.cfg.JobHistory {
		evicted := false
		for i, old := range s.jobOrder {
			select {
			case <-old.Done():
				delete(s.jobs, old.id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			break
		}
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	hits, misses, size := s.cache.stats()
	s.mu.Lock()
	graphs := len(s.graphs)
	hostWorkers := 0
	var sharing SharingStats
	var pools map[string]gts.PoolStats
	var walStats map[string]gts.WALStats
	var epochs map[string]uint64
	var retained map[string]int
	for _, e := range s.graphs {
		if e.inc != nil {
			if retained == nil {
				retained = make(map[string]int)
			}
			retained[e.name] = e.inc.Len()
		}
		if e.mg != nil {
			if walStats == nil {
				walStats = make(map[string]gts.WALStats)
				epochs = make(map[string]uint64)
			}
			walStats[e.name] = e.mg.WALStats()
			epochs[e.name] = e.mg.Epoch()
		}
		if e.pool == nil { // placeholder entry mid-load
			continue
		}
		if hw := effectiveHostWorkers(e.pool.Config()); hw > hostWorkers {
			hostWorkers = hw
		}
		if hp := e.pool.HostPool(); hp != nil {
			if pools == nil {
				pools = make(map[string]gts.PoolStats)
			}
			pools[e.name] = hp.Stats()
		}
		if e.sched != nil {
			ss := e.sched.Stats()
			sharing.WaveGroups += ss.Groups
			sharing.GroupJobs += ss.GroupJobs
			sharing.SoloFallbacks += ss.SoloRuns
			sharing.Waves += ss.Waves
			sharing.PageCopies += ss.PageCopies
			sharing.SharedPageCopies += ss.SharedPageCopies
			sharing.BytesSaved += ss.BytesSaved
			sharing.BytesToGPU += ss.BytesToGPU
		}
	}
	s.mu.Unlock()
	m := s.met
	m.mu.Lock()
	st := Stats{
		QueueDepth:  len(s.queue),
		QueueCap:    cap(s.queue),
		InFlight:    m.inFlight,
		Submitted:   m.submitted,
		Completed:   m.completed,
		Failed:      m.failed,
		Rejected:    m.rejected,
		TimedOut:    m.timedOut,
		Coalesced:   m.coalesced,
		CacheHits:   hits,
		CacheMisses: misses,
		CacheSize:   size,
		Graphs:      graphs,
		HostWorkers: hostWorkers,
		Faults:      m.faults,
		HWFailures:  m.hwFailures,
		Sharing:     sharing,
		Pool:        pools,

		IngestBatches:  m.ingestBatches,
		IngestEdges:    m.ingestEdges,
		IngestFailures: m.ingestFailures,
		WAL:            walStats,
		Epochs:         epochs,

		IncrementalHits:            m.incHits,
		IncrementalFallbacks:       m.incFallbacks,
		IncrementalSavedSupersteps: m.incSaved,
		Retained:                   retained,
	}
	m.mu.Unlock()
	st.QueueWait = summarize(&m.queueWait)
	st.RunWall = summarize(&m.runWall)
	st.PerAlgo = m.snapshotPerAlgo()
	return st
}

// Shutdown stops admissions, drains queued and in-flight jobs, and waits
// for the workers to exit or ctx to expire. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.followers.Wait()
		// Drain the per-graph wave-group schedulers after the workers: no
		// worker is left to submit into them, and Close blocks until their
		// in-flight groups finish.
		s.mu.Lock()
		scheds := make([]*sched.Scheduler, 0, len(s.graphs))
		for _, e := range s.graphs {
			if e.sched != nil {
				scheds = append(scheds, e.sched)
			}
		}
		s.mu.Unlock()
		for _, sc := range scheds {
			sc.Close()
		}
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown interrupted with jobs in flight: %w", ctx.Err())
	}
}

// Close is Shutdown without a deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// execute runs one dequeued job to a terminal state.
func (s *Server) execute(job *Job) {
	defer job.cancel()
	defer s.clearInflight(job)
	s.met.observeQueueWait(time.Since(job.submitted))
	if job.ctx.Err() != nil {
		s.met.addTimedOut()
		job.fail(fmt.Errorf("%w (queued %v)", ErrTimeout, time.Since(job.submitted).Round(time.Microsecond)), JobTimedOut)
		return
	}
	// Second chance: an identical job may have populated the cache while
	// this one queued. Peek without touching the hit/miss counters — the
	// admission-time lookup already counted this job's miss.
	if res, ok := s.cache.peek(job.key); ok {
		job.complete(res, true)
		s.met.jobCompleted(job.req.Algo, job.Latency(), 0, 0)
		return
	}
	// Graphs with a retained-state store route BFS/CC/PageRank through the
	// incremental path: it serves `incremental: true` requests by
	// delta-expansion when safe and captures fresh state either way. It
	// reuses the wave-group scheduler when the graph has one.
	if s.executeIncremental(job) {
		return
	}
	// Graphs serving with ShareStreams route through the wave-group
	// scheduler so concurrent jobs coalesce onto shared topology streams.
	if job.entry.sched != nil && job.algo.shared != nil {
		s.executeShared(job)
		return
	}
	sys, err := job.entry.pool.Acquire(job.ctx)
	if err != nil {
		s.met.addTimedOut()
		job.fail(fmt.Errorf("%w (waiting for an engine)", ErrTimeout), JobTimedOut)
		return
	}
	job.setRunning()
	// Request-scoped tracing: retarget the pooled System's recorder to this
	// job for the duration of the run, then export and restore. The trace
	// is stored even for failed runs — a timeline that ends mid-fault is
	// the one worth looking at.
	var rec *trace.Recorder
	var prevRec *trace.Recorder
	if s.traces != nil {
		rec = trace.NewWithID(job.id)
		prevRec = sys.SetTrace(rec)
	}
	s.met.runStarted()
	start := time.Now()
	out, m, err := job.algo.run(sys, job.req.Params)
	wall := time.Since(start)
	s.met.runFinished()
	s.met.observeRunWall(wall)
	if rec != nil {
		sys.SetTrace(prevRec)
		s.traces.put(job.id, rec)
	}
	job.entry.pool.Release(sys)
	if err != nil {
		s.met.addFailed()
		if errors.Is(err, gts.ErrHardwareFault) {
			s.met.addHWFailure()
		}
		job.fail(err, JobFailed)
		return
	}
	s.met.addFaults(m.Faults)
	res := &Result{
		Graph:   job.req.Graph,
		Algo:    job.req.Algo,
		Params:  job.req.Params,
		Metrics: m,
		Output:  out,
		Wall:    wall,
	}
	s.cache.put(job.key, res)
	job.complete(res, false)
	s.met.jobCompleted(job.req.Algo, job.Latency(), wall, m.Elapsed)
}

// executeShared serves one job through its graph's wave-group scheduler.
// The result is byte-identical to the solo path (the engine's shared-run
// invariant); only the data-movement accounting and virtual timing reflect
// the sharing.
func (s *Server) executeShared(job *Job) {
	k, source, decode := job.algo.shared(job.entry.pool.Graph(), job.entry.pool.Config(), job.req.Params)
	sj := sched.Job{Kernel: k, Source: source}
	var rec *trace.Recorder
	if s.traces != nil {
		rec = trace.NewWithID(job.id)
		sj.Trace = rec
	}
	job.setRunning()
	s.met.runStarted()
	start := time.Now()
	out, err := job.entry.sched.Run(job.ctx, sj)
	wall := time.Since(start)
	s.met.runFinished()
	s.met.observeRunWall(wall)
	if rec != nil {
		s.traces.put(job.id, rec)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.met.addTimedOut()
			job.fail(fmt.Errorf("%w (in wave group)", ErrTimeout), JobTimedOut)
			return
		}
		s.met.addFailed()
		if errors.Is(err, gts.ErrHardwareFault) {
			s.met.addHWFailure()
		}
		job.fail(err, JobFailed)
		return
	}
	s.met.addFaults(out.Metrics.Faults)
	res := &Result{
		Graph:   job.req.Graph,
		Algo:    job.req.Algo,
		Params:  job.req.Params,
		Metrics: out.Metrics,
		Output:  decode(out.State, out.Metrics),
		Wall:    wall,
	}
	s.cache.put(job.key, res)
	job.complete(res, false)
	s.met.jobCompleted(job.req.Algo, job.Latency(), wall, out.Metrics.Elapsed)
}
