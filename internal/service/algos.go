package service

import (
	"fmt"
	"sort"

	gts "repro"
	"repro/internal/kernels"
)

// Params carries one algorithm request's inputs. Unset fields take
// per-algorithm defaults (see normalize); fields an algorithm does not use
// are zeroed during normalization so equivalent requests share one cache
// entry.
type Params struct {
	// Source is the start vertex for bfs, sssp, bc, rwr, and ball.
	Source uint64 `json:"source,omitempty"`
	// Damping is PageRank's damping factor (default 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Iterations bounds pagerank and rwr (default 10).
	Iterations int `json:"iterations,omitempty"`
	// K is the core number for kcore (default 3).
	K int `json:"k,omitempty"`
	// Hops is the ball radius for ball (default 2).
	Hops int `json:"hops,omitempty"`
	// Restart is rwr's restart probability (default 0.15).
	Restart float64 `json:"restart,omitempty"`
	// Sketches and MaxHops tune radius (defaults 8 and 256).
	Sketches int `json:"sketches,omitempty"`
	MaxHops  int `json:"maxhops,omitempty"`
}

// algorithm binds a name to its parameter normalization and its run paths.
type algorithm struct {
	// normalize fills defaults and zeroes unused fields, returning the
	// canonical Params that key the result cache.
	normalize func(Params) Params
	// run executes on a (serialized) System; output is the public result
	// struct the matching gts.System method returns.
	run func(*gts.System, Params) (output any, m gts.Metrics, err error)
	// shared builds the job's kernel for a wave-group run plus a decoder
	// that assembles the same public result struct from the group outcome.
	// The decoder is bound to the kernel instance it is returned with. cfg
	// is the graph's registered Config, so kernel-variant switches
	// (DirectionOpt) apply on the shared path exactly as on the solo path.
	shared func(g *gts.Graph, cfg gts.Config, p Params) (k gts.Kernel, source uint64, decode func(gts.KernelState, gts.Metrics) any)
}

var algorithms = map[string]algorithm{
	"bfs": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.BFS(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, cfg gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			if cfg.DirectionOpt {
				k := kernels.NewDirBFS(g)
				return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
					return &gts.BFSResult{Metrics: m, Levels: k.Levels(st)}
				}
			}
			k := kernels.NewBFS(g)
			return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.BFSResult{Metrics: m, Levels: k.Levels(st)}
			}
		},
	},
	"pagerank": {
		normalize: func(p Params) Params {
			out := Params{Damping: p.Damping, Iterations: p.Iterations}
			if out.Damping == 0 {
				out.Damping = 0.85
			}
			if out.Iterations == 0 {
				out.Iterations = 10
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.PageRank(p.Damping, p.Iterations)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewPageRank(g, p.Damping, p.Iterations)
			return k, 0, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.PageRankResult{Metrics: m, Ranks: k.Ranks(st)}
			}
		},
	},
	"sssp": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.SSSP(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, cfg gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			if cfg.DirectionOpt {
				k := kernels.NewDeltaSSSP(g)
				return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
					return &gts.SSSPResult{Metrics: m, Dist: k.Distances(st)}
				}
			}
			k := kernels.NewSSSP(g)
			return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.SSSPResult{Metrics: m, Dist: k.Distances(st)}
			}
		},
	},
	"cc": {
		normalize: func(Params) Params { return Params{} },
		run: func(s *gts.System, _ Params) (any, gts.Metrics, error) {
			r, err := s.CC()
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, _ Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewCC(g)
			return k, 0, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.CCResult{Metrics: m, Labels: k.Components(st)}
			}
		},
	},
	"bc": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.BC(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewBC(g)
			return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.BCResult{Metrics: m, Scores: k.Centrality(st, p.Source)}
			}
		},
	},
	"rwr": {
		normalize: func(p Params) Params {
			out := Params{Source: p.Source, Restart: p.Restart, Iterations: p.Iterations}
			if out.Restart == 0 {
				out.Restart = 0.15
			}
			if out.Iterations == 0 {
				out.Iterations = 10
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.RWR(p.Source, p.Restart, p.Iterations)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewRWR(g, p.Restart, p.Iterations)
			return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.RWRResult{Metrics: m, Scores: k.Scores(st)}
			}
		},
	},
	"degree": {
		normalize: func(Params) Params { return Params{} },
		run: func(s *gts.System, _ Params) (any, gts.Metrics, error) {
			r, err := s.DegreeDistribution()
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, _ Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewDegreeDist(g)
			return k, 0, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.DegreeResult{Metrics: m, Degrees: k.Degrees(st), Histogram: k.Histogram(st)}
			}
		},
	},
	"kcore": {
		normalize: func(p Params) Params {
			out := Params{K: p.K}
			if out.K == 0 {
				out.K = 3
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.KCore(p.K)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewKCore(g, p.K)
			return k, 0, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.KCoreResult{Metrics: m, InCore: k.InCore(st)}
			}
		},
	},
	"radius": {
		normalize: func(p Params) Params {
			out := Params{Sketches: p.Sketches, MaxHops: p.MaxHops}
			if out.Sketches == 0 {
				out.Sketches = 8
			}
			if out.MaxHops == 0 {
				out.MaxHops = 256
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.Radius(p.Sketches, p.MaxHops)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewRadius(g, p.Sketches, p.MaxHops)
			return k, 0, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.RadiusResult{Metrics: m, Radii: k.Radii(st), EffectiveDiameter: k.EffectiveDiameter(st, 0.9)}
			}
		},
	},
	"ball": {
		normalize: func(p Params) Params {
			out := Params{Source: p.Source, Hops: p.Hops}
			if out.Hops == 0 {
				out.Hops = 2
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.Neighborhood(p.Source, p.Hops)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
		shared: func(g *gts.Graph, _ gts.Config, p Params) (gts.Kernel, uint64, func(gts.KernelState, gts.Metrics) any) {
			k := kernels.NewNeighborhood(g, p.Hops)
			return k, p.Source, func(st gts.KernelState, m gts.Metrics) any {
				return &gts.NeighborhoodResult{Metrics: m, Hops: k.Members(st)}
			}
		},
	},
}

// Algorithms lists the service's algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupAlgo resolves a request's algorithm name.
func lookupAlgo(name string) (algorithm, error) {
	a, ok := algorithms[name]
	if !ok {
		return algorithm{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownAlgo, name, Algorithms())
	}
	return a, nil
}
