package service

import (
	"fmt"
	"sort"

	gts "repro"
)

// Params carries one algorithm request's inputs. Unset fields take
// per-algorithm defaults (see normalize); fields an algorithm does not use
// are zeroed during normalization so equivalent requests share one cache
// entry.
type Params struct {
	// Source is the start vertex for bfs, sssp, bc, rwr, and ball.
	Source uint64 `json:"source,omitempty"`
	// Damping is PageRank's damping factor (default 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Iterations bounds pagerank and rwr (default 10).
	Iterations int `json:"iterations,omitempty"`
	// K is the core number for kcore (default 3).
	K int `json:"k,omitempty"`
	// Hops is the ball radius for ball (default 2).
	Hops int `json:"hops,omitempty"`
	// Restart is rwr's restart probability (default 0.15).
	Restart float64 `json:"restart,omitempty"`
	// Sketches and MaxHops tune radius (defaults 8 and 256).
	Sketches int `json:"sketches,omitempty"`
	MaxHops  int `json:"maxhops,omitempty"`
}

// algorithm binds a name to its parameter normalization and its run path.
type algorithm struct {
	// normalize fills defaults and zeroes unused fields, returning the
	// canonical Params that key the result cache.
	normalize func(Params) Params
	// run executes on a (serialized) System; output is the public result
	// struct the matching gts.System method returns.
	run func(*gts.System, Params) (output any, m gts.Metrics, err error)
}

var algorithms = map[string]algorithm{
	"bfs": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.BFS(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"pagerank": {
		normalize: func(p Params) Params {
			out := Params{Damping: p.Damping, Iterations: p.Iterations}
			if out.Damping == 0 {
				out.Damping = 0.85
			}
			if out.Iterations == 0 {
				out.Iterations = 10
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.PageRank(p.Damping, p.Iterations)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"sssp": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.SSSP(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"cc": {
		normalize: func(Params) Params { return Params{} },
		run: func(s *gts.System, _ Params) (any, gts.Metrics, error) {
			r, err := s.CC()
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"bc": {
		normalize: func(p Params) Params { return Params{Source: p.Source} },
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.BC(p.Source)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"rwr": {
		normalize: func(p Params) Params {
			out := Params{Source: p.Source, Restart: p.Restart, Iterations: p.Iterations}
			if out.Restart == 0 {
				out.Restart = 0.15
			}
			if out.Iterations == 0 {
				out.Iterations = 10
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.RWR(p.Source, p.Restart, p.Iterations)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"degree": {
		normalize: func(Params) Params { return Params{} },
		run: func(s *gts.System, _ Params) (any, gts.Metrics, error) {
			r, err := s.DegreeDistribution()
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"kcore": {
		normalize: func(p Params) Params {
			out := Params{K: p.K}
			if out.K == 0 {
				out.K = 3
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.KCore(p.K)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"radius": {
		normalize: func(p Params) Params {
			out := Params{Sketches: p.Sketches, MaxHops: p.MaxHops}
			if out.Sketches == 0 {
				out.Sketches = 8
			}
			if out.MaxHops == 0 {
				out.MaxHops = 256
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.Radius(p.Sketches, p.MaxHops)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
	"ball": {
		normalize: func(p Params) Params {
			out := Params{Source: p.Source, Hops: p.Hops}
			if out.Hops == 0 {
				out.Hops = 2
			}
			return out
		},
		run: func(s *gts.System, p Params) (any, gts.Metrics, error) {
			r, err := s.Neighborhood(p.Source, p.Hops)
			if err != nil {
				return nil, gts.Metrics{}, err
			}
			return r, r.Metrics, nil
		},
	},
}

// Algorithms lists the service's algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupAlgo resolves a request's algorithm name.
func lookupAlgo(name string) (algorithm, error) {
	a, ok := algorithms[name]
	if !ok {
		return algorithm{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownAlgo, name, Algorithms())
	}
	return a, nil
}
