package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	gts "repro"
	"repro/internal/service"
)

// incServerPair starts two servers over the same deterministic mutable
// spec: one with retained-state incremental recompute, one plain server
// acting as the from-scratch oracle. Both disable the result cache so
// every request actually executes (a cached answer would neither capture
// nor count against the incremental path).
func incServerPair(t *testing.T) (inc, orc *service.Server) {
	t.Helper()
	inc = service.New(service.Config{Incremental: true, CacheEntries: -1, TraceJobs: 16})
	orc = service.New(service.Config{CacheEntries: -1})
	t.Cleanup(func() { inc.Close(); orc.Close() })
	if err := inc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "inc.wal"), gts.Config{}, 2); err != nil {
		t.Fatal(err)
	}
	if err := orc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "orc.wal"), gts.Config{}, 2); err != nil {
		t.Fatal(err)
	}
	return inc, orc
}

func runSync(t *testing.T, srv *service.Server, req service.Request) (*service.Result, string) {
	t.Helper()
	job, err := srv.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("%s run: %v", req.Algo, err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatalf("%s result: %v", req.Algo, err)
	}
	return res, job.ID()
}

func equalLabels(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bitEqualRanks(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// checkIncEpoch runs all three retained algorithms on both servers at the
// current epoch — incremental on inc, from-scratch on orc — and requires
// byte-identical outputs. It returns the inc-side job IDs keyed by algo.
func checkIncEpoch(t *testing.T, inc, orc *service.Server, tag string) map[string]string {
	t.Helper()
	ids := make(map[string]string)
	for _, algo := range []string{"bfs", "cc", "pagerank"} {
		req := service.Request{Graph: "mut", Algo: algo, Incremental: true}
		got, id := runSync(t, inc, req)
		ids[algo] = id
		req.Incremental = false
		want, _ := runSync(t, orc, req)
		switch algo {
		case "bfs":
			if !equalLevels(want.Output.(*gts.BFSResult).Levels, got.Output.(*gts.BFSResult).Levels) {
				t.Fatalf("%s: incremental bfs diverges from full recompute", tag)
			}
		case "cc":
			if !equalLabels(want.Output.(*gts.CCResult).Labels, got.Output.(*gts.CCResult).Labels) {
				t.Fatalf("%s: incremental cc diverges from full recompute", tag)
			}
		case "pagerank":
			if !bitEqualRanks(want.Output.(*gts.PageRankResult).Ranks, got.Output.(*gts.PageRankResult).Ranks) {
				t.Fatalf("%s: incremental pagerank diverges from full recompute", tag)
			}
		}
	}
	return ids
}

// TestServiceIncrementalDifferential drives the whole service-level
// incremental path across ingest epochs: first queries capture (and count
// as fallbacks), post-ingest queries are served by delta-expansion
// byte-identically to a from-scratch oracle server, unsafe deltas fall
// back, and the counters, health fields, and trace spans all report it.
func TestServiceIncrementalDifferential(t *testing.T) {
	inc, orc := incServerPair(t)

	// Epoch 0: no retained state yet — every incremental request must fall
	// back to (and capture) a full run.
	ids0 := checkIncEpoch(t, inc, orc, "epoch0")

	// An insert-only batch keeps all three algorithms on the delta-
	// expansion path.
	insertOnly := []gts.EdgeOp{{Src: 5, Dst: 9}, {Src: 9, Dst: 5}, {Src: 7, Dst: 11}}
	if _, err := inc.Ingest("mut", insertOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := orc.Ingest("mut", insertOnly); err != nil {
		t.Fatal(err)
	}
	ids1 := checkIncEpoch(t, inc, orc, "epoch1")

	// A delete invalidates CC's retained state (any delete may split a
	// component); the other algorithms decide per the invalidation matrix.
	withDelete := []gts.EdgeOp{{Src: 5, Dst: 9, Del: true}, {Src: 12, Dst: 13}}
	if _, err := inc.Ingest("mut", withDelete); err != nil {
		t.Fatal(err)
	}
	if _, err := orc.Ingest("mut", withDelete); err != nil {
		t.Fatal(err)
	}
	checkIncEpoch(t, inc, orc, "epoch2")

	st := inc.Stats()
	if st.IncrementalHits < 3 {
		t.Errorf("incremental hits = %d, want >= 3 (the insert-only epoch)", st.IncrementalHits)
	}
	// 3 cold-start fallbacks at epoch 0 plus at least CC's delete fallback.
	if st.IncrementalFallbacks < 4 {
		t.Errorf("incremental fallbacks = %d, want >= 4", st.IncrementalFallbacks)
	}
	if st.Retained["mut"] != 3 {
		t.Errorf("retained entries = %d, want 3", st.Retained["mut"])
	}

	found := false
	for _, h := range inc.Health() {
		if h.Name == "mut" {
			found = true
			if !h.Incremental || h.RetainedEntries != 3 {
				t.Errorf("health: incremental=%v retained=%d, want true/3", h.Incremental, h.RetainedEntries)
			}
		}
	}
	if !found {
		t.Fatal("graph missing from health report")
	}

	// Trace conformance: cold-start runs carry the incfallback marker,
	// delta-expansion runs the incseed marker.
	if b, err := inc.JobTrace(ids0["bfs"]); err != nil || !strings.Contains(string(b), "incfallback") {
		t.Errorf("epoch-0 bfs trace missing incfallback span (err=%v)", err)
	}
	if b, err := inc.JobTrace(ids1["bfs"]); err != nil || !strings.Contains(string(b), "incseed") {
		t.Errorf("epoch-1 bfs trace missing incseed span (err=%v)", err)
	}

	// The oracle server never touched the incremental machinery.
	ost := orc.Stats()
	if ost.IncrementalHits != 0 || ost.IncrementalFallbacks != 0 || len(ost.Retained) != 0 {
		t.Errorf("oracle server reports incremental activity: %+v", ost)
	}
}

// TestServiceIncrementalWorkerWidths repeats the differential check at
// serial and wide host-parallel engine configurations: the service path
// must stay byte-identical to the from-scratch oracle at every width.
func TestServiceIncrementalWorkerWidths(t *testing.T) {
	for _, workers := range []int{1, 8} {
		inc := service.New(service.Config{Incremental: true, CacheEntries: -1})
		orc := service.New(service.Config{CacheEntries: -1})
		cfg := gts.Config{HostWorkers: workers}
		if err := inc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "inc.wal"), cfg, 2); err != nil {
			t.Fatal(err)
		}
		if err := orc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "orc.wal"), cfg, 2); err != nil {
			t.Fatal(err)
		}
		checkIncEpoch(t, inc, orc, "cold")
		batch := []gts.EdgeOp{{Src: 3, Dst: 17}, {Src: 17, Dst: 29}}
		if _, err := inc.Ingest("mut", batch); err != nil {
			t.Fatal(err)
		}
		if _, err := orc.Ingest("mut", batch); err != nil {
			t.Fatal(err)
		}
		checkIncEpoch(t, inc, orc, "warm")
		if st := inc.Stats(); st.IncrementalHits < 3 {
			t.Errorf("workers=%d: hits = %d, want >= 3", workers, st.IncrementalHits)
		}
		inc.Close()
		orc.Close()
	}
}

// TestHTTPIncremental drives the incremental path over the wire: the
// `"incremental": true` body field must reach the job (it rides beside
// the params but never enters the cache key), fallbacks and hits must
// show in /metrics, and /healthz must report the retained entries.
func TestHTTPIncremental(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{Incremental: true, CacheEntries: -1, TraceJobs: 8})
	walPath := filepath.Join(t.TempDir(), "mut.wal")
	if resp, doc := putJSON(t, ts.URL+"/v1/graphs/mut", map[string]any{"spec": mutSpec, "wal": walPath, "pool": 2}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutable load status = %d (%v)", resp.StatusCode, doc)
	}

	// Cold: captures state, counts as a fallback.
	if resp, doc := postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0, "incremental": true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold bfs status = %d (%v)", resp.StatusCode, doc)
	}
	if resp, doc := postJSON(t, ts.URL+"/v1/graphs/mut/ingest", map[string]any{
		"edges": []map[string]any{{"src": 5, "dst": 9}, {"src": 9, "dst": 5}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d (%v)", resp.StatusCode, doc)
	}
	// Warm: served by delta expansion, byte-identical to a plain run.
	respInc, docInc := postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0, "incremental": true})
	if respInc.StatusCode != http.StatusOK {
		t.Fatalf("warm bfs status = %d (%v)", respInc.StatusCode, docInc)
	}
	respFull, docFull := postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0})
	if respFull.StatusCode != http.StatusOK {
		t.Fatalf("full bfs status = %d (%v)", respFull.StatusCode, docFull)
	}
	incOut, _ := json.Marshal(docInc["output"])
	fullOut, _ := json.Marshal(docFull["output"])
	if !bytes.Equal(incOut, fullOut) {
		t.Error("incremental HTTP result differs from full recompute")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gtsd_incremental_hits_total 1",
		"gtsd_incremental_fallbacks_total 1",
		"gtsd_incremental_saved_supersteps_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if resp, doc := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d (%v)", resp.StatusCode, doc)
	} else {
		graphs, _ := doc["graphs"].([]any)
		found := false
		for _, gr := range graphs {
			row, _ := gr.(map[string]any)
			if row["name"] == "mut" {
				found = true
				if row["incremental"] != true {
					t.Errorf("healthz graph doc missing incremental: %v", row)
				}
				if n, _ := row["retained_entries"].(float64); n < 1 {
					t.Errorf("healthz retained_entries = %v, want >= 1", row["retained_entries"])
				}
			}
		}
		if !found {
			t.Fatal("mut missing from healthz")
		}
	}
}

// TestServiceIncrementalMultiGPUGate: multi-GPU pools merge replica state
// in ways the delta planners do not model, so incremental requests must be
// refused (counted as fallbacks) and answered by the normal full path.
func TestServiceIncrementalMultiGPUGate(t *testing.T) {
	inc := service.New(service.Config{Incremental: true, CacheEntries: -1})
	orc := service.New(service.Config{CacheEntries: -1})
	t.Cleanup(func() { inc.Close(); orc.Close() })
	cfg := gts.Config{GPUs: 2}
	if err := inc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "inc.wal"), cfg, 2); err != nil {
		t.Fatal(err)
	}
	if err := orc.LoadMutableGraph("mut", mutSpec, filepath.Join(t.TempDir(), "orc.wal"), cfg, 2); err != nil {
		t.Fatal(err)
	}
	checkIncEpoch(t, inc, orc, "multigpu")
	st := inc.Stats()
	if st.IncrementalHits != 0 {
		t.Errorf("multi-GPU pool served %d incremental hits", st.IncrementalHits)
	}
	if st.IncrementalFallbacks == 0 {
		t.Error("multi-GPU incremental requests not counted as fallbacks")
	}
	if st.Retained["mut"] != 0 {
		t.Errorf("multi-GPU pool captured %d retained entries", st.Retained["mut"])
	}
}
