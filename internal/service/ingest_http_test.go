package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	gts "repro"
	"repro/internal/service"
)

// mutSpec is the deterministic generator spec mutable-graph tests use as
// their base: reopening it always yields the same graph, so the WAL's
// deltas replay onto identical ground.
const mutSpec = "RMAT26@15"

func putJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, doc
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, doc
}

// graphState extracts one graph's state string from a /healthz or /readyz
// document.
func graphState(doc map[string]any, name string) string {
	graphs, _ := doc["graphs"].([]any)
	for _, g := range graphs {
		row, _ := g.(map[string]any)
		if row["name"] == name {
			s, _ := row["state"].(string)
			return s
		}
	}
	return ""
}

// TestHTTPIngestAndEpochCache drives the full mutable-graph HTTP surface:
// load with a WAL, query, ingest a batch, and require the cache to miss at
// the new epoch (the ingest invalidated it) while health and metrics
// report the mutation.
func TestHTTPIngestAndEpochCache(t *testing.T) {
	_, ts, _ := httpServer(t, service.Config{})
	walPath := filepath.Join(t.TempDir(), "mut.wal")

	resp, doc := putJSON(t, ts.URL+"/v1/graphs/mut", map[string]any{"spec": mutSpec, "wal": walPath, "pool": 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutable load status = %d (%v)", resp.StatusCode, doc)
	}
	if doc["state"] != "serving" || doc["mutable"] != true {
		t.Fatalf("loaded graph doc = %v", doc)
	}

	// First query computes, identical repeat hits the cache.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bfs status = %d (%v)", resp.StatusCode, doc)
	}
	if cached, _ := doc["cached"].(bool); cached {
		t.Error("first bfs claims cached")
	}
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0})
	if resp.StatusCode != http.StatusOK || doc["cached"] != true {
		t.Fatalf("repeat bfs not cached: status %d, %v", resp.StatusCode, doc)
	}

	// Commit a mutation batch.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/mut/ingest", map[string]any{
		"edges": []map[string]any{
			{"src": 1, "dst": 2},
			{"src": 2, "dst": 1},
			{"src": 3, "dst": 4, "del": true},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d (%v)", resp.StatusCode, doc)
	}
	if doc["epoch"] != float64(1) || doc["applied"] != float64(3) {
		t.Fatalf("ingest doc = %v", doc)
	}

	// The same query at the new epoch must recompute, not hit the stale
	// cached answer.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest bfs status = %d (%v)", resp.StatusCode, doc)
	}
	if cached, _ := doc["cached"].(bool); cached {
		t.Error("post-ingest bfs served from the pre-ingest cache")
	}

	// Health reports the epoch; metrics export the ingest/WAL series.
	resp, doc = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || graphState(doc, "mut") != "serving" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, doc)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gtsd_ingest_batches_total 1",
		"gtsd_ingest_edges_total 3",
		`gtsd_wal_appends_total{graph="mut"} 1`,
		`gtsd_graph_epoch{graph="mut"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Ingest against an immutable graph is a 409; unknown graph a 404.
	resp, _ = postJSON(t, ts.URL+"/v1/graphs/social/ingest", map[string]any{"edges": []map[string]any{{"src": 0, "dst": 1}}})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("ingest on immutable graph status = %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/graphs/nosuch/ingest", map[string]any{"edges": []map[string]any{{"src": 0, "dst": 1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ingest on unknown graph status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPReadyzRecoveringTransition pre-builds a WAL with a long committed
// history, then watches /readyz while the graph reloads: the probe must
// report 503/"recovering" during the replay and 200/"serving" after it.
func TestHTTPReadyzRecoveringTransition(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "recover.wal")

	// Write a history long enough that the recovery replay is observable.
	m, err := gts.OpenMutable(mutSpec, walPath, gts.MutableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 200
	for i := 0; i < batches; i++ {
		ops := []gts.EdgeOp{
			{Src: uint64(i % 997), Dst: uint64((i*7 + 1) % 997)},
			{Src: uint64((i * 13) % 997), Dst: uint64((i*3 + 2) % 997)},
		}
		if _, err := m.Ingest(ops); err != nil {
			t.Fatalf("seeding batch %d: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	srv, ts, _ := httpServer(t, service.Config{})

	// An empty registry plus the immutable "social" graph is ready.
	if resp, doc := getJSON(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || doc["ready"] != true {
		t.Fatalf("pre-load readyz = %d %v", resp.StatusCode, doc)
	}

	// Poll /readyz while the load replays the WAL in the background.
	done := make(chan error, 1)
	go func() { done <- srv.LoadMutableGraph("mut", mutSpec, walPath, gts.Config{}, 2) }()
	sawRecovering, sawNotReady := false, false
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("LoadMutableGraph: %v", err)
			}
			break poll
		default:
		}
		resp, doc := getJSON(t, ts.URL+"/readyz")
		if state := graphState(doc, "mut"); state == "recovering" {
			sawRecovering = true
			if resp.StatusCode != http.StatusServiceUnavailable || doc["ready"] != false {
				t.Fatalf("readyz while recovering = %d %v", resp.StatusCode, doc)
			}
			sawNotReady = true
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !sawRecovering || !sawNotReady {
		t.Skip("recovery replay finished before a poll observed it; transition not exercised")
	}

	// After the load: serving and ready, at the replayed epoch.
	resp, doc := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || doc["ready"] != true || graphState(doc, "mut") != "serving" {
		t.Fatalf("post-load readyz = %d %v", resp.StatusCode, doc)
	}
	for _, h := range srv.Health() {
		if h.Name == "mut" {
			if h.Epoch != batches || h.ReplayedBatches != batches {
				t.Fatalf("recovered health = %+v, want epoch/replayed %d", h, batches)
			}
			if !h.Mutable {
				t.Fatal("recovered graph not reported mutable")
			}
		}
	}
	// A job against the recovered graph computes at the recovered epoch.
	resp, doc = postJSON(t, ts.URL+"/v1/graphs/mut/bfs", map[string]any{"source": 0})
	if resp.StatusCode != http.StatusOK || doc["state"] != "done" {
		t.Fatalf("post-recovery bfs = %d %v", resp.StatusCode, doc)
	}
}

// TestIngestEpochNoCrossEpochCoalescing asserts the single-flight table
// cannot hand a post-ingest submission to a pre-ingest leader: the epoch is
// part of the key, so the second job computes fresh.
func TestIngestEpochNoCrossEpochCoalescing(t *testing.T) {
	srv := service.New(service.Config{Workers: 2})
	defer srv.Close()
	walPath := filepath.Join(t.TempDir(), "coalesce.wal")
	if err := srv.LoadMutableGraph("mut", mutSpec, walPath, gts.Config{}, 2); err != nil {
		t.Fatal(err)
	}

	req := service.Request{Graph: "mut", Algo: "pagerank", Params: service.Params{Iterations: 20}}
	before, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Ingest("mut", []gts.EdgeOp{{Src: 5, Dst: 6}, {Src: 6, Dst: 5}}); err != nil {
		t.Fatal(err)
	}
	after, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-before.Done()
	<-after.Done()
	if err := before.Err(); err != nil {
		t.Fatalf("pre-ingest job: %v", err)
	}
	if err := after.Err(); err != nil {
		t.Fatalf("post-ingest job: %v", err)
	}
	if after.Cached() {
		t.Fatal("post-ingest job reused a pre-ingest answer (cache or coalescing across epochs)")
	}
	st := srv.Stats()
	if st.Coalesced != 0 {
		t.Fatalf("post-ingest job coalesced behind a pre-ingest leader (coalesced=%d)", st.Coalesced)
	}
	if st.IngestBatches != 1 || st.IngestEdges != 2 || st.Epochs["mut"] != 1 {
		t.Fatalf("ingest stats = batches %d edges %d epoch %d", st.IngestBatches, st.IngestEdges, st.Epochs["mut"])
	}
}
