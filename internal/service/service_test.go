package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	gts "repro"
	"repro/internal/service"
)

// testGraphs caches the two tiny proxy graphs every test shares.
var (
	graphOnce sync.Once
	graphA    *gts.Graph // "social": RMAT27 proxy, 2048 vertices
	graphB    *gts.Graph // "web": RMAT26 proxy, 2048 vertices
)

func testGraphPair(t *testing.T) (*gts.Graph, *gts.Graph) {
	t.Helper()
	graphOnce.Do(func() {
		var err error
		if graphA, err = gts.Open("RMAT27@16"); err != nil {
			t.Fatal(err)
		}
		if graphB, err = gts.Open("RMAT26@15"); err != nil {
			t.Fatal(err)
		}
	})
	if graphA == nil || graphB == nil {
		t.Fatal("graph generation failed in an earlier test")
	}
	return graphA, graphB
}

// twoGraphServer builds a server with graphs "social" and "web" registered
// over fresh pools.
func twoGraphServer(t *testing.T, cfg service.Config) *service.Server {
	t.Helper()
	ga, gb := testGraphPair(t)
	srv := service.New(cfg)
	poolA, err := gts.NewSystemPool(ga, gts.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	poolB, err := gts.NewSystemPool(gb, gts.Config{GPUs: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("social", poolA); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("web", poolB); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// directOutput runs the request's algorithm on a standalone System with
// the same engine config the named pool uses, returning the result's JSON.
func directOutput(t *testing.T, req service.Request) []byte {
	t.Helper()
	ga, gb := testGraphPair(t)
	g, cfg := ga, gts.Config{}
	if req.Graph == "web" {
		g, cfg = gb, gts.Config{GPUs: 2}
	}
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out any
	switch req.Algo {
	case "bfs":
		out, err = sys.BFS(req.Params.Source)
	case "pagerank":
		out, err = sys.PageRank(0.85, 10)
	case "sssp":
		out, err = sys.SSSP(req.Params.Source)
	case "cc":
		out, err = sys.CC()
	case "kcore":
		out, err = sys.KCore(3)
	default:
		t.Fatalf("directOutput: no reference path for %q", req.Algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestServiceEndToEnd is the acceptance test from ISSUE 1: ≥16 concurrent
// jobs across 2 graphs and 5 algorithms, byte-identical to direct System
// calls, with the cache serving repeats and consistent counters.
func TestServiceEndToEnd(t *testing.T) {
	srv := twoGraphServer(t, service.Config{Workers: 4, QueueDepth: 64})

	var reqs []service.Request
	for _, graph := range []string{"social", "web"} {
		for _, algo := range []string{"bfs", "pagerank", "sssp", "cc", "kcore"} {
			reqs = append(reqs, service.Request{Graph: graph, Algo: algo})
		}
		// Distinct sources make distinct cache keys.
		for _, src := range []uint64{1, 2, 3} {
			reqs = append(reqs, service.Request{Graph: graph, Algo: "bfs", Params: service.Params{Source: src}})
		}
	}
	if len(reqs) < 16 {
		t.Fatalf("only %d requests", len(reqs))
	}

	// Round 1: all concurrent, all computed.
	jobs := make([]*service.Job, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req service.Request) {
			defer wg.Done()
			job, err := srv.Run(context.Background(), req)
			if err != nil {
				t.Errorf("%s/%s: %v", req.Graph, req.Algo, err)
				return
			}
			jobs[i] = job
		}(i, req)
	}
	wg.Wait()

	for i, job := range jobs {
		if job == nil {
			continue
		}
		if job.State() != service.JobDone {
			t.Errorf("job %d state = %v", i, job.State())
			continue
		}
		if job.Cached() {
			t.Errorf("job %d unexpectedly served from cache on first round", i)
		}
		res, err := job.Result()
		if err != nil || res == nil {
			t.Errorf("job %d result: %v", i, err)
			continue
		}
		got, err := json.Marshal(res.Output)
		if err != nil {
			t.Fatal(err)
		}
		if want := directOutput(t, reqs[i]); !bytes.Equal(got, want) {
			t.Errorf("%s/%s #%d: service result not byte-identical to direct run", reqs[i].Graph, reqs[i].Algo, i)
		}
		if res.Metrics.Elapsed <= 0 {
			t.Errorf("job %d: no virtual time recorded", i)
		}
	}

	// Round 2: identical requests must be cache hits — including
	// parameter-normalized variants (explicit defaults share the entry).
	st1 := srv.Stats()
	round2 := append([]service.Request{}, reqs...)
	round2 = append(round2,
		service.Request{Graph: "social", Algo: "pagerank", Params: service.Params{Damping: 0.85, Iterations: 10}},
		service.Request{Graph: "web", Algo: "kcore", Params: service.Params{K: 3}},
	)
	for _, req := range round2 {
		job, err := srv.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("round 2 %s/%s: %v", req.Graph, req.Algo, err)
		}
		if !job.Cached() {
			t.Errorf("round 2 %s/%s %+v not served from cache", req.Graph, req.Algo, req.Params)
		}
	}
	st2 := srv.Stats()
	if hits := st2.CacheHits - st1.CacheHits; hits != uint64(len(round2)) {
		t.Errorf("round 2 cache hits = %d, want %d", hits, len(round2))
	}
	if st2.CacheHits == 0 {
		t.Error("cache hit counter is zero")
	}

	// Counter consistency.
	if want := uint64(len(reqs) + len(round2)); st2.Submitted != want {
		t.Errorf("submitted = %d, want %d", st2.Submitted, want)
	}
	if st2.Completed != st2.Submitted {
		t.Errorf("completed = %d, submitted = %d", st2.Completed, st2.Submitted)
	}
	if st2.Failed != 0 || st2.TimedOut != 0 || st2.Rejected != 0 {
		t.Errorf("failed/timedout/rejected = %d/%d/%d, want 0", st2.Failed, st2.TimedOut, st2.Rejected)
	}
	if st2.CacheMisses != uint64(len(reqs)) {
		t.Errorf("cache misses = %d, want %d (one per computed job)", st2.CacheMisses, len(reqs))
	}
	if st2.InFlight != 0 || st2.QueueDepth != 0 {
		t.Errorf("inflight/queue = %d/%d after drain", st2.InFlight, st2.QueueDepth)
	}
	var jobsSum uint64
	for _, a := range st2.PerAlgo {
		jobsSum += a.Jobs
	}
	if jobsSum != st2.Completed {
		t.Errorf("per-algo jobs sum = %d, completed = %d", jobsSum, st2.Completed)
	}
	if st2.PerAlgo["pagerank"].VirtualElapsed <= 0 {
		t.Error("pagerank virtual time not accumulated")
	}
}

// TestOverloadAndTimeout pins admission control and deadline outcomes
// deterministically by exhausting a one-engine pool from the outside.
func TestOverloadAndTimeout(t *testing.T) {
	g, _ := testGraphPair(t)
	srv := service.New(service.Config{Workers: 1, QueueDepth: 2})
	pool, err := gts.NewSystemPool(g, gts.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("g", pool); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hold the only engine so every dequeued job blocks in Acquire.
	held, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("could not claim the pool's engine")
	}

	// Job A occupies the single worker once dequeued.
	jobA, err := srv.Submit(service.Request{Graph: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().QueueDepth == 0 }, "worker to dequeue job A")

	// B and C fill the queue; D must be rejected.
	for _, src := range []uint64{10, 11} {
		if _, err := srv.Submit(service.Request{Graph: "g", Algo: "bfs", Params: service.Params{Source: src}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Submit(service.Request{Graph: "g", Algo: "bfs", Params: service.Params{Source: 12}}); err != service.ErrOverloaded {
		t.Errorf("overflow submit = %v, want ErrOverloaded", err)
	}
	if srv.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", srv.Stats().Rejected)
	}

	// A deadline that expires while the engine is unavailable times out.
	jobT, err := srv.Submit(service.Request{Graph: "g", Algo: "pagerank", Timeout: 30 * time.Millisecond})
	if err != service.ErrOverloaded {
		// Queue is full (B, C): this submission must also be rejected.
		t.Errorf("submit into full queue = %v", err)
	}
	_ = jobT

	// Release the engine: A, B, C drain.
	pool.Release(held)
	<-jobA.Done()
	if jobA.State() != service.JobDone {
		t.Errorf("job A = %v (%v)", jobA.State(), jobA.Err())
	}
	waitFor(t, func() bool { return srv.Stats().Completed == 3 }, "queue to drain")

	// Now exhaust the pool again for a deterministic timeout outcome.
	held, ok = pool.TryAcquire()
	if !ok {
		t.Fatal("could not reclaim the engine")
	}
	jobT, err = srv.Submit(service.Request{Graph: "g", Algo: "pagerank", Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-jobT.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout job never finished")
	}
	if jobT.State() != service.JobTimedOut {
		t.Errorf("deadline job state = %v, want timedout", jobT.State())
	}
	if err := jobT.Err(); err == nil || !isTimeout(err) {
		t.Errorf("deadline job error = %v, want ErrTimeout", err)
	}
	if srv.Stats().TimedOut != 1 {
		t.Errorf("timedout counter = %d, want 1", srv.Stats().TimedOut)
	}
	pool.Release(held)

	// Final ledger: every admitted job reached exactly one terminal state.
	st := srv.Stats()
	if st.Submitted != st.Completed+st.Failed+st.TimedOut {
		t.Errorf("ledger mismatch: submitted %d != completed %d + failed %d + timedout %d",
			st.Submitted, st.Completed, st.Failed, st.TimedOut)
	}
}

func isTimeout(err error) bool { return errors.Is(err, service.ErrTimeout) }

// TestSubmitValidation covers the typed admission errors.
func TestSubmitValidation(t *testing.T) {
	srv := twoGraphServer(t, service.Config{})
	if _, err := srv.Submit(service.Request{Graph: "nope", Algo: "bfs"}); err == nil {
		t.Error("unknown graph accepted")
	}
	if _, err := srv.Submit(service.Request{Graph: "social", Algo: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := srv.Lookup("job-999999"); err == nil {
		t.Error("unknown job looked up")
	}
}

// TestAsyncLifecycle follows a job through Submit → Lookup → Done.
func TestAsyncLifecycle(t *testing.T) {
	srv := twoGraphServer(t, service.Config{})
	job, err := srv.Submit(service.Request{Graph: "social", Algo: "degree"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Lookup(job.ID())
	if err != nil || got != job {
		t.Fatalf("Lookup(%s) = %v, %v", job.ID(), got, err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("async job never finished")
	}
	res, err := job.Result()
	if err != nil || res == nil {
		t.Fatalf("result: %v", err)
	}
	if res.Algo != "degree" || job.Latency() <= 0 {
		t.Errorf("result algo %q, latency %v", res.Algo, job.Latency())
	}
}

// TestShutdownDrains verifies queued jobs finish during Shutdown and new
// submissions are refused.
func TestShutdownDrains(t *testing.T) {
	srv := twoGraphServer(t, service.Config{Workers: 2, QueueDepth: 32})
	var jobs []*service.Job
	for i := 0; i < 8; i++ {
		job, err := srv.Submit(service.Request{Graph: "social", Algo: "bfs", Params: service.Params{Source: uint64(100 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		select {
		case <-job.Done():
		default:
			t.Fatalf("job %d not finished after Shutdown", i)
		}
		if job.State() != service.JobDone {
			t.Errorf("job %d = %v after drain", i, job.State())
		}
	}
	if _, err := srv.Submit(service.Request{Graph: "social", Algo: "bfs"}); err != service.ErrShuttingDown {
		t.Errorf("post-shutdown submit = %v, want ErrShuttingDown", err)
	}
	// Shutdown is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGraphReplaceInvalidatesCache reloads a name and checks the old
// cached answers are not served for the new graph.
func TestGraphReplaceInvalidatesCache(t *testing.T) {
	ga, gb := testGraphPair(t)
	srv := service.New(service.Config{})
	defer srv.Close()
	pool, err := gts.NewSystemPool(ga, gts.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("g", pool); err != nil {
		t.Fatal(err)
	}
	job1, err := srv.Run(context.Background(), service.Request{Graph: "g", Algo: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	res1, _ := job1.Result()

	pool2, err := gts.NewSystemPool(gb, gts.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGraph("g", pool2); err != nil {
		t.Fatal(err)
	}
	job2, err := srv.Run(context.Background(), service.Request{Graph: "g", Algo: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	if job2.Cached() {
		t.Error("replaced graph served the old graph's cached result")
	}
	res2, _ := job2.Result()
	b1, _ := json.Marshal(res1.Output)
	b2, _ := json.Marshal(res2.Output)
	if bytes.Equal(b1, b2) {
		t.Error("expected different CC results for different graphs")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAlgorithmsList pins the service's algorithm registry.
func TestAlgorithmsList(t *testing.T) {
	want := []string{"ball", "bc", "bfs", "cc", "degree", "kcore", "pagerank", "radius", "rwr", "sssp"}
	got := service.Algorithms()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Algorithms() = %v, want %v", got, want)
	}
}
