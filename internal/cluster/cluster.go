// Package cluster models the distributed testbed the paper runs GraphX,
// Giraph, PowerGraph and Naiad on (§7.1): one master and 30 slave nodes,
// each with two 8-core Xeons and 64 GB of memory, connected by Infiniband
// QDR (40 Gbps). The distributed baseline engines execute functionally
// in-process and charge their compute, shuffle and coordination work
// against this model; exceeding a worker's memory budget yields the same
// O.O.M. outcome the paper's figures tabulate.
package cluster

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Spec describes a homogeneous worker cluster.
type Spec struct {
	// Workers is the number of slave nodes.
	Workers int
	// CoresPerWorker is the physical core count per node.
	CoresPerWorker int
	// MemoryPerWorker is the usable heap per node in bytes (the paper
	// configures 60 GB executors on 64 GB nodes).
	MemoryPerWorker int64
	// CyclesPerSec is per-core model-cycle throughput.
	CyclesPerSec float64
	// NetBandwidth is each node's NIC bandwidth in bytes/second.
	NetBandwidth float64
	// NetLatency is the per-round message latency.
	NetLatency sim.Time
	// TimeScale divides fixed per-superstep costs (barriers, job-launch
	// overheads) for scaled-down runs; Scale sets it. Zero means 1.
	TimeScale int64
}

// Paper returns the paper's 30-slave Infiniband cluster.
func Paper() Spec {
	return Spec{
		Workers:         30,
		CoresPerWorker:  16,
		MemoryPerWorker: 60 << 30,
		CyclesPerSec:    5e9,
		NetBandwidth:    5e9, // 40 Gbps QDR
		NetLatency:      30 * sim.Microsecond,
	}
}

// Scale returns a copy with every memory capacity divided by factor,
// matching the dataset down-scaling (bandwidths and core counts stay).
func (s Spec) Scale(factor int64) Spec {
	if factor <= 0 {
		panic(fmt.Sprintf("cluster: scale factor %d must be positive", factor))
	}
	s.MemoryPerWorker /= factor
	s.NetLatency /= sim.Time(factor)
	s.TimeScale = factor
	return s
}

// Fixed scales a fixed per-superstep cost (a barrier, a job launch) for
// scaled-down runs, so extrapolating proxy times by the scale factor does
// not multiply costs that are constant in reality.
func (s Spec) Fixed(t sim.Time) sim.Time {
	if s.TimeScale > 1 {
		return t / sim.Time(s.TimeScale)
	}
	return t
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Workers < 1 || s.CoresPerWorker < 1 || s.MemoryPerWorker <= 0 ||
		s.CyclesPerSec <= 0 || s.NetBandwidth <= 0 {
		return fmt.Errorf("cluster: invalid spec %+v", s)
	}
	return nil
}

// TotalCores reports the cluster-wide core count.
func (s Spec) TotalCores() int { return s.Workers * s.CoresPerWorker }

// ComputeTime reports how long `cycles` of perfectly parallel work take
// across the cluster, degraded by a parallel efficiency in (0,1].
func (s Spec) ComputeTime(cycles, efficiency float64) sim.Time {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = 1
	}
	return sim.Seconds(cycles / (float64(s.TotalCores()) * s.CyclesPerSec * efficiency))
}

// ShuffleTime reports an all-to-all exchange of `bytes` total: every node
// sends and receives its share concurrently, plus per-round latency.
func (s Spec) ShuffleTime(bytes int64, rounds int) sim.Time {
	perNode := float64(bytes) / float64(s.Workers)
	return sim.ByteTime(int64(perNode), s.NetBandwidth) + sim.Time(rounds)*s.NetLatency
}

// CheckMemory reports hw.ErrOutOfMemory when a worker's peak usage exceeds
// its budget. what names the allocation for the error message.
func (s Spec) CheckMemory(perWorkerBytes int64, what string) error {
	if perWorkerBytes > s.MemoryPerWorker {
		return fmt.Errorf("%w: %s needs %d bytes/worker, budget %d",
			hw.ErrOutOfMemory, what, perWorkerBytes, s.MemoryPerWorker)
	}
	return nil
}
