package cluster

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestPaperSpec(t *testing.T) {
	s := Paper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Workers != 30 || s.TotalCores() != 480 {
		t.Errorf("cluster = %d workers / %d cores, want 30/480", s.Workers, s.TotalCores())
	}
}

func TestComputeTime(t *testing.T) {
	s := Paper()
	// 480 cores * 5e9 cycles/s = 2.4e12 cycles/s at efficiency 1.
	if got := s.ComputeTime(2.4e12, 1); got != sim.Second {
		t.Errorf("ComputeTime = %v, want 1s", got)
	}
	// Half efficiency doubles it.
	if got := s.ComputeTime(2.4e12, 0.5); got != 2*sim.Second {
		t.Errorf("ComputeTime at 0.5 = %v, want 2s", got)
	}
	// Out-of-range efficiency clamps to 1.
	if got := s.ComputeTime(2.4e12, 7); got != sim.Second {
		t.Errorf("clamped ComputeTime = %v", got)
	}
}

func TestShuffleTime(t *testing.T) {
	s := Paper()
	// 150 GB all-to-all over 30 nodes at 5 GB/s each: 1 s + latency.
	got := s.ShuffleTime(150e9, 1)
	want := sim.Second + s.NetLatency
	if got != want {
		t.Errorf("ShuffleTime = %v, want %v", got, want)
	}
}

func TestCheckMemory(t *testing.T) {
	s := Paper()
	if err := s.CheckMemory(s.MemoryPerWorker, "fits"); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	err := s.CheckMemory(s.MemoryPerWorker+1, "overflows")
	if !errors.Is(err, hw.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestScale(t *testing.T) {
	s := Paper().Scale(1 << 10)
	if s.MemoryPerWorker != (60<<30)/1024 {
		t.Errorf("memory = %d", s.MemoryPerWorker)
	}
	if s.NetBandwidth != 5e9 {
		t.Error("bandwidth must not scale")
	}
}

func TestFixedCostScaling(t *testing.T) {
	s := Paper()
	if got := s.Fixed(sim.Second); got != sim.Second {
		t.Errorf("unscaled Fixed = %v", got)
	}
	scaled := s.Scale(1000)
	if got := scaled.Fixed(sim.Second); got != sim.Millisecond {
		t.Errorf("scaled Fixed = %v, want 1ms", got)
	}
	if scaled.NetLatency != Paper().NetLatency/1000 {
		t.Errorf("latency = %v", scaled.NetLatency)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Paper().Scale(0)
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Workers: 1, CoresPerWorker: 0, MemoryPerWorker: 1, CyclesPerSec: 1, NetBandwidth: 1},
		{Workers: 1, CoresPerWorker: 1, MemoryPerWorker: 0, CyclesPerSec: 1, NetBandwidth: 1},
		{Workers: 1, CoresPerWorker: 1, MemoryPerWorker: 1, CyclesPerSec: 0, NetBandwidth: 1},
		{Workers: 1, CoresPerWorker: 1, MemoryPerWorker: 1, CyclesPerSec: 1, NetBandwidth: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}
