package costmodel

import (
	"testing"

	"repro/internal/graphgen"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/slottedpage"

	"repro/internal/core"
)

func TestPageRankLikeBackOfEnvelope(t *testing.T) {
	// The paper's §7.5 check: RMAT30's 114 GB topology over 10 iterations
	// at c2 = 6 GB/s is ~190 s; one iteration is therefore ~19 s plus the
	// WA terms. The model must reproduce that arithmetic.
	in := Inputs{
		WABytes:        4 << 30,   // PageRank WA for RMAT30 (Table 4)
		SPBytes:        114 << 30, // topology
		NumSP:          1786,      // Table 3
		GPUs:           1,
		KernelPageTime: 10 * sim.Millisecond,
		CallOverhead:   8 * sim.Microsecond,
	}
	got := PageRankLike(in, hw.PCIe3x16())
	// Dominant term: 114 GiB / 6 GB/s ~ 20.4 s; plus 2*4 GiB/16 GB/s ~ 0.54 s.
	lo, hi := sim.Seconds(20), sim.Seconds(22)
	if got < lo || got > hi {
		t.Errorf("Eq.1 = %v, want in [%v, %v]", got, lo, hi)
	}
}

func TestPageRankLikeScalesWithGPUs(t *testing.T) {
	in := Inputs{WABytes: 1 << 30, SPBytes: 64 << 30, NumSP: 1000, GPUs: 1, CallOverhead: sim.Microsecond}
	one := PageRankLike(in, hw.PCIe3x16())
	in.GPUs = 2
	two := PageRankLike(in, hw.PCIe3x16())
	if two >= one {
		t.Errorf("2 GPUs (%v) not faster than 1 (%v)", two, one)
	}
	// The 2|WA|/c1 term does not shrink with N, so speedup is sublinear.
	if two*2 <= one {
		t.Errorf("speedup superlinear: %v vs %v", two, one)
	}
}

func TestBFSLikeCachingAndSkew(t *testing.T) {
	levels := []LevelInputs{
		{SPBytes: 1 << 30, NumSP: 1024},
		{SPBytes: 8 << 30, NumSP: 8192},
		{SPBytes: 2 << 30, NumSP: 2048},
	}
	base := BFSLike(1<<28, levels, 1, 1, 0, sim.Microsecond, hw.PCIe3x16())
	cached := BFSLike(1<<28, levels, 1, 1, 0.5, sim.Microsecond, hw.PCIe3x16())
	if cached >= base {
		t.Errorf("cache hit rate did not help: %v vs %v", cached, base)
	}
	skewed := BFSLike(1<<28, levels, 2, 0.5, 0, sim.Microsecond, hw.PCIe3x16())
	balanced := BFSLike(1<<28, levels, 2, 1, 0, sim.Microsecond, hw.PCIe3x16())
	if balanced >= skewed {
		t.Errorf("balanced (%v) not faster than skewed (%v)", balanced, skewed)
	}
	// Fully imbalanced 2 GPUs = 1 GPU.
	worst := BFSLike(1<<28, levels, 2, 0.5, 0, sim.Microsecond, hw.PCIe3x16())
	if worst != base {
		t.Errorf("d_skew=1/N should equal single GPU: %v vs %v", worst, base)
	}
}

func TestNaiveCacheHitRate(t *testing.T) {
	if got := NaiveCacheHitRate(50, 100); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
	if got := NaiveCacheHitRate(200, 100); got != 1 {
		t.Errorf("clamped rate = %v", got)
	}
	if got := NaiveCacheHitRate(5, 0); got != 0 {
		t.Errorf("empty graph rate = %v", got)
	}
}

// TestModelTracksSimulationPageRank cross-checks Eq. 1 against the event
// simulation for an in-memory PageRank iteration: the model must land
// within a factor band of the measured time (the paper's own check shows
// ~20% gaps, §7.5).
func TestModelTracksSimulationPageRank(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 11)
	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(hw.Workstation(1, 0), sp, core.Options{CacheBytes: core.CacheDisabled})
	if err != nil {
		t.Fatal(err)
	}
	iters := 10
	rep, err := eng.Run(kernels.NewPageRank(sp, 0.85, iters))
	if err != nil {
		t.Fatal(err)
	}

	var spBytes, lpBytes int64
	pageSize := int64(sp.Config().PageSize)
	spBytes = int64(sp.NumSP()) * pageSize
	lpBytes = int64(sp.NumLP()) * pageSize
	in := Inputs{
		WABytes:        rep.WABytes,
		RABytes:        int64(g.NumVertices()) * 4,
		SPBytes:        spBytes,
		LPBytes:        lpBytes,
		NumSP:          int64(sp.NumSP()),
		NumLP:          int64(sp.NumLP()),
		GPUs:           1,
		CallOverhead:   8 * sim.Microsecond,
		KernelPageTime: 0,
	}
	predicted := sim.Time(int64(PageRankLike(in, hw.PCIe3x16())) * int64(iters))
	ratio := rep.Elapsed.Seconds() / predicted.Seconds()
	// The simulation adds kernel time the model hides and overlap the
	// model ignores; the paper's comparable check is within ~25%.
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("simulated %v vs Eq.1 %v (ratio %.2f) — model diverged", rep.Elapsed, predicted, ratio)
	}
}

func TestSuggestStreams(t *testing.T) {
	// Paper Table 1 ratios: BFS on Twitter is 1:3 (kernel 3x transfer), so
	// ~4 streams keep the engine fed; PageRank's 1:20 wants the maximum.
	if got := SuggestStreams(sim.Millisecond, 3*sim.Millisecond); got != 4 {
		t.Errorf("1:3 ratio -> %d streams, want 4", got)
	}
	if got := SuggestStreams(sim.Millisecond, 20*sim.Millisecond); got != 21 {
		t.Errorf("1:20 ratio -> %d streams, want 21", got)
	}
	if got := SuggestStreams(sim.Millisecond, 100*sim.Millisecond); got != 32 {
		t.Errorf("huge ratio must clamp to 32, got %d", got)
	}
	if got := SuggestStreams(0, sim.Millisecond); got != 32 {
		t.Errorf("zero transfer -> %d, want 32", got)
	}
	if got := SuggestStreams(4*sim.Millisecond, sim.Millisecond); got != 2 {
		t.Errorf("transfer-bound -> %d streams, want 2", got)
	}
}
