// Package costmodel implements the analytic cost models of the paper's §5:
// Eq. 1 for PageRank-like full-scan algorithms and Eq. 2 for BFS-like
// traversals. The models predict elapsed time from data sizes and machine
// rates; the tests cross-check them against the event simulation the same
// way §7.5 sanity-checks measured times against back-of-envelope numbers
// (e.g. 114 GB x 10 iterations / 6 GB/s ~ 190 s).
package costmodel

import (
	"repro/internal/hw"
	"repro/internal/sim"
)

// Inputs gathers the quantities both equations consume.
type Inputs struct {
	// WABytes is |WA|: device-resident attribute bytes.
	WABytes int64
	// RABytes is |RA|: streamed read-only attribute bytes (whole graph).
	RABytes int64
	// SPBytes and LPBytes are the small/large topology page totals.
	SPBytes int64
	LPBytes int64
	// NumSP and NumLP are the page counts (S and L).
	NumSP int64
	NumLP int64
	// GPUs is N.
	GPUs int
	// KernelPageTime is t_kernel(SP_|1| + LP_|1|): the execution time of
	// the final small and large page kernels that nothing can hide.
	KernelPageTime sim.Time
	// CallOverhead is the per-kernel-call overhead behind t_call.
	CallOverhead sim.Time
	// SyncTime is t_sync(N).
	SyncTime sim.Time
}

// PageRankLike evaluates Eq. 1 for one full-scan iteration:
//
//	2|WA|/c1 + (|RA|+|SP|+|LP|)/(c2*N) + t_call((S+L)/N)
//	  + t_kernel(SP_1 + LP_1) + t_sync(N)
func PageRankLike(in Inputs, pcie hw.PCIeSpec) sim.Time {
	n := int64(in.GPUs)
	t := 2 * sim.ByteTime(in.WABytes, pcie.ChunkRate)
	t += sim.ByteTime((in.RABytes+in.SPBytes+in.LPBytes)/n, pcie.StreamRate)
	t += sim.Time((in.NumSP + in.NumLP) / n * int64(in.CallOverhead))
	t += in.KernelPageTime
	t += in.SyncTime
	return t
}

// LevelInputs describes one traversal level for Eq. 2.
type LevelInputs struct {
	// RABytes, SPBytes, LPBytes cover only the pages visited at this level
	// (RA{l}, SP{l}, LP{l}).
	RABytes int64
	SPBytes int64
	LPBytes int64
	// NumSP and NumLP are the visited page counts (S{l}, L{l}).
	NumSP int64
	NumLP int64
}

// BFSLike evaluates Eq. 2 over a traversal:
//
//	2|WA|/c1 + sum over levels of
//	  ( (|RA{l}|+|SP{l}|+|LP{l}|) / (c2*N*d_skew) * (1-r_hit)
//	    + t_call((S{l}+L{l}) / (N*d_skew)) )
//
// dskew in (0,1] is the workload balance across GPUs (1 = perfectly
// balanced) and rhit in [0,1] the page-cache hit rate (B/(S+L) for a cache
// of B pages, §3.3).
func BFSLike(waBytes int64, levels []LevelInputs, gpus int, dskew, rhit float64, callOverhead sim.Time, pcie hw.PCIeSpec) sim.Time {
	if dskew <= 0 {
		dskew = 1
	}
	t := 2 * sim.ByteTime(waBytes, pcie.ChunkRate)
	div := float64(gpus) * dskew
	for _, l := range levels {
		bytes := float64(l.RABytes+l.SPBytes+l.LPBytes) * (1 - rhit) / div
		t += sim.ByteTime(int64(bytes), pcie.StreamRate)
		calls := float64(l.NumSP+l.NumLP) / div * (1 - rhit)
		t += sim.Time(calls * float64(callOverhead))
	}
	return t
}

// NaiveCacheHitRate is the paper's B/(S+L) approximation of the page-cache
// hit rate for a cache of cachePages pages over a graph of totalPages.
func NaiveCacheHitRate(cachePages, totalPages int64) float64 {
	if totalPages <= 0 {
		return 0
	}
	r := float64(cachePages) / float64(totalPages)
	if r > 1 {
		return 1
	}
	return r
}

// SuggestStreams applies the paper's §3.2 rule for the stream count k: with
// a kernel-to-transfer time ratio r per page, k = ceil(r) + 1 streams keep
// the copy engine busy while kernels execute. The paper notes practice
// rewards up to the CUDA maximum of 32 because queued pages also speed the
// kernels themselves, so callers may treat this as a lower bound.
func SuggestStreams(transferPerPage, kernelPerPage sim.Time) int {
	if transferPerPage <= 0 {
		return 32
	}
	k := int((kernelPerPage+transferPerPage-1)/transferPerPage) + 1
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return k
}
