// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and the appendices) over the scaled-down proxy datasets.
// Each experiment returns a Table that cmd/gtsbench prints and that the
// root bench_test.go drives; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Scaling discipline: a dataset shrunk by 2^k runs against hardware whose
// *capacities* (device memory, main memory, cluster heaps) are divided by
// the dataset's scale factor while bandwidths stay at the paper's values.
// Capacity crossovers (O.O.M. entries, strategy switches) therefore land
// where the paper's do, and virtual times extrapolate to paper scale by
// multiplying back.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/csr"
	"repro/internal/graphgen"
	"repro/internal/sim"
	"repro/internal/slottedpage"
)

// Table is one experiment's formatted result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (no notes).
func (t *Table) WriteCSV(w io.Writer) error {
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		esc := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(esc, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Options scale the harness. The zero value uses defaults.
type Options struct {
	// Shrink is the power-of-two dataset down-scaling (default 13; the
	// benches use larger shrinks for speed).
	Shrink int
	// PRIterations is the PageRank iteration count (paper: 10).
	PRIterations int
}

func (o Options) withDefaults() Options {
	if o.Shrink == 0 {
		o.Shrink = 13
	}
	if o.PRIterations == 0 {
		o.PRIterations = 10
	}
	return o
}

// Runner executes experiments, caching generated graphs across them.
type Runner struct {
	opts  Options
	csrs  map[string]*csr.Graph
	revs  map[string]*csr.Graph
	pages map[string]*slottedpage.Graph
}

// New returns a runner.
func New(opts Options) *Runner {
	return &Runner{
		opts:  opts.withDefaults(),
		csrs:  map[string]*csr.Graph{},
		revs:  map[string]*csr.Graph{},
		pages: map[string]*slottedpage.Graph{},
	}
}

// IDs lists every experiment in paper order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return registry[ids[i]].order < registry[ids[j]].order })
	return ids
}

// Describe returns an experiment's one-line description.
func Describe(id string) string {
	if e, ok := registry[id]; ok {
		return e.desc
	}
	return ""
}

type experiment struct {
	order int
	desc  string
	run   func(r *Runner) (*Table, error)
}

var registry = map[string]experiment{
	"table1":    {10, "transfer:kernel time ratios for BFS and PageRank on the real-graph proxies", (*Runner).table1},
	"table2":    {20, "three (p,q) configurations of the 6-byte physical ID", (*Runner).table2},
	"table3":    {30, "dataset statistics: #SP and #LP per configuration", (*Runner).table3},
	"table4":    {40, "WA size versus topology size per algorithm", (*Runner).table4},
	"table5":    {50, "TOTEM GPU%:CPU% partition ratios", (*Runner).table5},
	"fig4":      {60, "per-stream copy/kernel timeline for BFS and PageRank (16 streams)", (*Runner).fig4},
	"fig6":      {70, "GTS vs GraphX/Giraph/PowerGraph/Naiad (BFS, PageRank x10)", (*Runner).fig6},
	"fig7":      {80, "GTS vs MTGL/Galois/Ligra/Ligra+ (BFS, PageRank x10)", (*Runner).fig7},
	"fig8":      {90, "GTS vs MapGraph/CuSha/TOTEM (BFS, PageRank x10)", (*Runner).fig8},
	"fig9":      {100, "Strategy-P vs Strategy-S across storage types (RMAT30)", (*Runner).fig9},
	"fig10":     {110, "elapsed time vs number of GPU streams (RMAT26-29)", (*Runner).fig10},
	"fig11":     {120, "BFS page-cache effectiveness: time and hit rate vs cache size", (*Runner).fig11},
	"fig13":     {130, "additional algorithms: SSSP, CC, BC across engines", (*Runner).fig13},
	"fig14":     {140, "micro-level technique vs graph density (vertex/edge/hybrid)", (*Runner).fig14},
	"costmodel": {150, "Eq.1/Eq.2 analytic predictions vs simulation (the paper's 7.5 checks)", (*Runner).costmodel},
	"xstream":   {160, "GTS page streaming vs X-Stream edge streaming (related work, 8)", (*Runner).xstream},
	"scaleup":   {165, "speedup from adding a GPU or an SSD (the paper's 1 scalability claim)", (*Runner).scaleup},
	"ablations": {170, "design-choice ablations: GPU thermal throttling, Pregel combiner, Ligra+ compression", (*Runner).ablations},
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(r)
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := r.Run(id)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// dataset fetches metadata, panicking on registry bugs.
func dataset(name string) graphgen.Dataset {
	d, ok := graphgen.ByName(name)
	if !ok {
		panic("experiments: unknown dataset " + name)
	}
	return d
}

// csrOf generates (and caches) the proxy CSR graph.
func (r *Runner) csrOf(name string) (*csr.Graph, error) {
	if g, ok := r.csrs[name]; ok {
		return g, nil
	}
	g, err := dataset(name).Generate(r.opts.Shrink)
	if err != nil {
		return nil, err
	}
	r.csrs[name] = g
	return g, nil
}

// revOf returns the cached transpose.
func (r *Runner) revOf(name string) (*csr.Graph, error) {
	if g, ok := r.revs[name]; ok {
		return g, nil
	}
	g, err := r.csrOf(name)
	if err != nil {
		return nil, err
	}
	rev := g.Transpose()
	r.revs[name] = rev
	return rev, nil
}

// factor is the hardware down-scaling for a dataset at the runner's shrink.
func (r *Runner) factor(name string) int64 {
	return int64(dataset(name).ScaleFactor(r.opts.Shrink))
}

// fmtTime renders a virtual duration the way the paper's figures label
// elapsed times.
func fmtTime(t sim.Time) string {
	s := t.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.1fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fus", s*1e6)
	}
}

// extrapolate scales a proxy time back to paper scale.
func extrapolate(t sim.Time, factor int64) sim.Time { return t * sim.Time(factor) }

// oom is the figure label for out-of-memory outcomes.
const oom = "O.O.M."

// fmtBytes renders byte counts human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
