package experiments

import (
	"math"
	"testing"

	gts "repro"
	"repro/internal/baselines/cpu"
	"repro/internal/baselines/gas"
	gpubase "repro/internal/baselines/gpu"
	"repro/internal/baselines/graphx"
	"repro/internal/baselines/pregel"
	"repro/internal/baselines/xstream"
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/slottedpage"
	"repro/internal/verify"
)

// TestEveryEngineAgreesOnBFS pins all fourteen engines in the repository —
// GTS plus the thirteen baselines — to identical BFS levels on one graph.
// Each engine is separately verified against internal/verify in its own
// package; this cross-check additionally catches harness-level divergence
// (wrong source, wrong graph view).
func TestEveryEngineAgreesOnBFS(t *testing.T) {
	r := testRunner()
	g, err := r.csrOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.revOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	want := verify.BFS(g, 0)
	check := func(name string, got []int16) {
		t.Helper()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d level = %d, want %d", name, v, got[v], want[v])
			}
		}
	}

	// GTS.
	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gts.NewSystem(sp, gts.Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	check("GTS", res.Levels)

	// Distributed engines.
	cl := cluster.Paper()
	for _, prof := range []pregel.Profile{pregel.Giraph(), pregel.Naiad()} {
		eng, err := pregel.New(cl, prof)
		if err != nil {
			t.Fatal(err)
		}
		out, err := pregel.Run(eng, g, pregel.BFSProgram{Source: 0})
		if err != nil {
			t.Fatal(err)
		}
		check(prof.Name, out.Values)
	}
	gx, err := graphx.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	gxOut, err := graphx.Run(gx, g, pregel.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	check("GraphX", gxOut.Values)
	pg, err := gas.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	pgOut, err := gas.Run(pg, g, rev, gas.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	check("PowerGraph", pgOut.Values)

	// CPU engines.
	ws := cpu.Paper()
	for _, eng := range []cpu.Engine{cpu.NewLigra(ws), cpu.NewLigraPlus(ws), cpu.NewGalois(ws), cpu.NewMTGL(ws)} {
		out, err := eng.BFS(g, rev, 0)
		if err != nil {
			t.Fatal(err)
		}
		check(eng.Name(), out.Levels)
	}

	// GPU engines.
	totem := gpubase.NewTOTEM(2, hw.TitanX(), ws)
	tOut, err := totem.BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("TOTEM", tOut.Levels)
	cOut, err := gpubase.NewCuSha(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("CuSha", cOut.Levels)
	mOut, err := gpubase.NewMapGraph(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("MapGraph", mOut.Levels)

	// Streaming engines.
	xOut, err := xstream.New(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("X-Stream", xOut.Levels)
	gcOut, err := xstream.NewGraphChi(ws, 5e9, 4).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("GraphChi", gcOut.Levels)
}

// TestEveryEngineAgreesOnPageRank does the same for the full-scan class
// (engines that implement PageRank), within floating-point tolerance.
func TestEveryEngineAgreesOnPageRank(t *testing.T) {
	r := testRunner()
	g, err := r.csrOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.revOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 4
	want := verify.PageRank(g, 0.85, iters)
	check := func(name string, got []float64, tol float64) {
		t.Helper()
		for v := range want {
			if math.Abs(got[v]-want[v]) > tol {
				t.Fatalf("%s: vertex %d rank = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
	toF64 := func(in []float32) []float64 {
		out := make([]float64, len(in))
		for i, x := range in {
			out[i] = float64(x)
		}
		return out
	}

	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gts.NewSystem(sp, gts.Config{GPUs: 2, Strategy: gts.StrategyS})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.PageRank(0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	check("GTS", toF64(res.Ranks), 1e-4)

	cl := cluster.Paper()
	eng, err := pregel.New(cl, pregel.Giraph())
	if err != nil {
		t.Fatal(err)
	}
	pOut, err := pregel.Run(eng, g, pregel.PRProgram{Damping: 0.85, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	check("Giraph", pOut.Values, 1e-12)

	pg, err := gas.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	prog := gas.PRProgram{Damping: 0.85, Sweeps: iters, NumVertices: float64(g.NumVertices())}
	gOut, err := gas.Run(pg, g, rev, prog)
	if err != nil {
		t.Fatal(err)
	}
	check("PowerGraph", gOut.Values, 1e-12)

	ws := cpu.Paper()
	for _, e := range []cpu.Engine{cpu.NewLigra(ws), cpu.NewGalois(ws), cpu.NewMTGL(ws)} {
		out, err := e.PageRank(g, rev, 0.85, iters)
		if err != nil {
			t.Fatal(err)
		}
		check(e.Name(), out.Ranks, 1e-12)
	}
}
