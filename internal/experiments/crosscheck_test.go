package experiments

import (
	"fmt"
	"math"
	"testing"

	gts "repro"
	"repro/internal/baselines/cpu"
	"repro/internal/baselines/gas"
	gpubase "repro/internal/baselines/gpu"
	"repro/internal/baselines/graphx"
	"repro/internal/baselines/pregel"
	"repro/internal/baselines/xstream"
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/rmat"
	"repro/internal/slottedpage"
	"repro/internal/verify"
)

// TestEveryEngineAgreesOnBFS pins all fourteen engines in the repository —
// GTS plus the thirteen baselines — to identical BFS levels on one graph.
// Each engine is separately verified against internal/verify in its own
// package; this cross-check additionally catches harness-level divergence
// (wrong source, wrong graph view).
func TestEveryEngineAgreesOnBFS(t *testing.T) {
	r := testRunner()
	g, err := r.csrOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.revOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	want := verify.BFS(g, 0)
	check := func(name string, got []int16) {
		t.Helper()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d level = %d, want %d", name, v, got[v], want[v])
			}
		}
	}

	// GTS.
	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gts.NewSystem(sp, gts.Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	check("GTS", res.Levels)

	// Distributed engines.
	cl := cluster.Paper()
	for _, prof := range []pregel.Profile{pregel.Giraph(), pregel.Naiad()} {
		eng, err := pregel.New(cl, prof)
		if err != nil {
			t.Fatal(err)
		}
		out, err := pregel.Run(eng, g, pregel.BFSProgram{Source: 0})
		if err != nil {
			t.Fatal(err)
		}
		check(prof.Name, out.Values)
	}
	gx, err := graphx.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	gxOut, err := graphx.Run(gx, g, pregel.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	check("GraphX", gxOut.Values)
	pg, err := gas.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	pgOut, err := gas.Run(pg, g, rev, gas.BFSProgram{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	check("PowerGraph", pgOut.Values)

	// CPU engines.
	ws := cpu.Paper()
	for _, eng := range []cpu.Engine{cpu.NewLigra(ws), cpu.NewLigraPlus(ws), cpu.NewGalois(ws), cpu.NewMTGL(ws)} {
		out, err := eng.BFS(g, rev, 0)
		if err != nil {
			t.Fatal(err)
		}
		check(eng.Name(), out.Levels)
	}

	// GPU engines.
	totem := gpubase.NewTOTEM(2, hw.TitanX(), ws)
	tOut, err := totem.BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("TOTEM", tOut.Levels)
	cOut, err := gpubase.NewCuSha(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("CuSha", cOut.Levels)
	mOut, err := gpubase.NewMapGraph(1, hw.TitanX()).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("MapGraph", mOut.Levels)

	// Streaming engines.
	xOut, err := xstream.New(ws).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("X-Stream", xOut.Levels)
	gcOut, err := xstream.NewGraphChi(ws, 5e9, 4).BFS(g, rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("GraphChi", gcOut.Levels)
}

// TestEveryEngineAgreesOnPageRank does the same for the full-scan class
// (engines that implement PageRank), within floating-point tolerance.
func TestEveryEngineAgreesOnPageRank(t *testing.T) {
	r := testRunner()
	g, err := r.csrOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.revOf("RMAT27")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 4
	want := verify.PageRank(g, 0.85, iters)
	check := func(name string, got []float64, tol float64) {
		t.Helper()
		for v := range want {
			if math.Abs(got[v]-want[v]) > tol {
				t.Fatalf("%s: vertex %d rank = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
	toF64 := func(in []float32) []float64 {
		out := make([]float64, len(in))
		for i, x := range in {
			out[i] = float64(x)
		}
		return out
	}

	sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gts.NewSystem(sp, gts.Config{GPUs: 2, Strategy: gts.StrategyS})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.PageRank(0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	check("GTS", toF64(res.Ranks), 1e-4)

	cl := cluster.Paper()
	eng, err := pregel.New(cl, pregel.Giraph())
	if err != nil {
		t.Fatal(err)
	}
	pOut, err := pregel.Run(eng, g, pregel.PRProgram{Damping: 0.85, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	check("Giraph", pOut.Values, 1e-12)

	pg, err := gas.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	prog := gas.PRProgram{Damping: 0.85, Sweeps: iters, NumVertices: float64(g.NumVertices())}
	gOut, err := gas.Run(pg, g, rev, prog)
	if err != nil {
		t.Fatal(err)
	}
	check("PowerGraph", gOut.Values, 1e-12)

	ws := cpu.Paper()
	for _, e := range []cpu.Engine{cpu.NewLigra(ws), cpu.NewGalois(ws), cpu.NewMTGL(ws)} {
		out, err := e.PageRank(g, rev, 0.85, iters)
		if err != nil {
			t.Fatal(err)
		}
		check(e.Name(), out.Ranks, 1e-12)
	}
}

// TestRandomGraphsDifferential is a property-based cross-check: random
// small R-MAT graphs across seeds, every GTS algorithm against the
// internal/verify references and (where the baseline implements the
// algorithm) a Ligra run over the same topology. Engine configuration
// rotates with the seed so the property covers the strategy x GPU matrix,
// and one seed runs with fault injection armed — recovered runs must stay
// on the same differential equalities as clean ones.
func TestRandomGraphsDifferential(t *testing.T) {
	ws := cpu.Paper()
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			params := rmat.Default(7 + int(seed%2)) // 128 or 256 vertices
			params.Seed = seed
			g, err := rmat.Generate(params)
			if err != nil {
				t.Fatal(err)
			}
			rev := g.Transpose()
			sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 1024))
			if err != nil {
				t.Fatal(err)
			}
			cfg := gts.Config{GPUs: 1 + int(seed%2)}
			if seed%4 == 3 {
				cfg.Strategy = gts.StrategyS
			}
			if seed == 2 {
				cfg.Faults = &gts.FaultPlan{Seed: seed, TransferErrorRate: 0.02,
					CorruptionRate: 0.05, TransferStallRate: 0.05}
			}
			sys, err := gts.NewSystem(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := uint64(seed*31) % g.NumVertices()

			// BFS: GTS vs reference vs baseline, all exact.
			wantL := verify.BFS(g, uint32(src))
			bres, err := sys.BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			lig, err := cpu.NewLigra(ws).BFS(g, rev, uint32(src))
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantL {
				if bres.Levels[v] != wantL[v] {
					t.Fatalf("BFS: GTS vertex %d level = %d, want %d", v, bres.Levels[v], wantL[v])
				}
				if lig.Levels[v] != wantL[v] {
					t.Fatalf("BFS: Ligra vertex %d level = %d, want %d", v, lig.Levels[v], wantL[v])
				}
			}

			// PageRank: float32 engine vs float64 references, within tolerance.
			const iters = 4
			wantPR := verify.PageRank(g, 0.85, iters)
			pres, err := sys.PageRank(0.85, iters)
			if err != nil {
				t.Fatal(err)
			}
			ligPR, err := cpu.NewLigra(ws).PageRank(g, rev, 0.85, iters)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantPR {
				if math.Abs(float64(pres.Ranks[v])-wantPR[v]) > 1e-4 {
					t.Fatalf("PageRank: GTS vertex %d rank = %v, want %v", v, pres.Ranks[v], wantPR[v])
				}
				if math.Abs(ligPR.Ranks[v]-wantPR[v]) > 1e-9 {
					t.Fatalf("PageRank: Ligra vertex %d rank = %v, want %v", v, ligPR.Ranks[v], wantPR[v])
				}
			}

			// SSSP under the deterministic synthetic weights: exact.
			wantD := verify.SSSP(g, uint32(src), kernels.Weight)
			sres, err := sys.SSSP(src)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantD {
				if math.IsInf(wantD[v], 1) {
					if sres.Dist[v] != math.MaxFloat32 {
						t.Fatalf("SSSP: vertex %d reachable (%v), want unreachable", v, sres.Dist[v])
					}
				} else if float64(sres.Dist[v]) != wantD[v] {
					t.Fatalf("SSSP: vertex %d dist = %v, want %v", v, sres.Dist[v], wantD[v])
				}
			}

			// Connected components: exact label match.
			wantCC := verify.WCC(g)
			cres, err := sys.CC()
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantCC {
				if cres.Labels[v] != wantCC[v] {
					t.Fatalf("CC: vertex %d label = %d, want %d", v, cres.Labels[v], wantCC[v])
				}
			}

			// Betweenness centrality: float tolerance.
			wantBC := verify.BC(g, uint32(src))
			bcres, err := sys.BC(src)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantBC {
				if math.Abs(bcres.Scores[v]-wantBC[v]) > 1e-6*math.Max(wantBC[v], 1)+1e-9 {
					t.Fatalf("BC: vertex %d score = %v, want %v", v, bcres.Scores[v], wantBC[v])
				}
			}

			// Random walk with restart: float tolerance.
			wantRWR := verify.RWR(g, uint32(src), 0.15, 5)
			rres, err := sys.RWR(src, 0.15, 5)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantRWR {
				if math.Abs(float64(rres.Scores[v])-wantRWR[v]) > 1e-4 {
					t.Fatalf("RWR: vertex %d score = %v, want %v", v, rres.Scores[v], wantRWR[v])
				}
			}

			if seed == 2 && pres.Faults.Injected() == 0 && bres.Faults.Injected() == 0 {
				t.Error("fault-armed seed injected nothing across runs")
			}
		})
	}
}
