package experiments

import (
	"fmt"

	gts "repro"
	"repro/internal/baselines/cpu"
	"repro/internal/baselines/pregel"
	"repro/internal/baselines/xstream"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// costmodel reproduces the paper's §7.5 back-of-envelope checks: the Eq. 1
// analytic prediction against the simulation for PageRank, plus the naive
// topology/c2 arithmetic the paper quotes (e.g. 114 GB x 10 / 6 GB/s).
func (r *Runner) costmodel() (*Table, error) {
	t := &Table{
		ID:     "costmodel",
		Title:  "Analytic cost model vs simulation (paper Eq. 1 and the 7.5 checks)",
		Header: []string{"data", "algo", "topology", "naive t/c2 x iters", "Eq.1 predicted", "simulated", "sim/pred"},
	}
	pcie := hw.PCIe3x16()
	for _, ds := range []string{"RMAT27", "RMAT28", "RMAT29", "RMAT30"} {
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		cfg := r.gtsConfig(ds)
		cfg.GPUs = 1
		cfg.CacheBytes = gts.CacheDisabled
		m, err := r.gtsRun(ds, "PageRank", cfg)
		if err != nil {
			return nil, err
		}
		pageSize := int64(g.Config().PageSize)
		in := costmodel.Inputs{
			WABytes: m.WABytes,
			RABytes: int64(g.NumVertices()) * 4,
			SPBytes: int64(g.NumSP()) * pageSize,
			LPBytes: int64(g.NumLP()) * pageSize,
			NumSP:   int64(g.NumSP()),
			NumLP:   int64(g.NumLP()),
			GPUs:    1,
			// The launch overhead scales with the hardware, like the
			// simulation's (hw.MachineSpec.Scale).
			CallOverhead: 8 * sim.Microsecond / sim.Time(r.hwFactor(ds)),
		}
		iters := int64(r.opts.PRIterations)
		predicted := sim.Time(int64(costmodel.PageRankLike(in, pcie)) * iters)
		naive := sim.Time(int64(sim.ByteTime(g.TopologyBytes(), pcie.StreamRate)) * iters)
		t.Rows = append(t.Rows, []string{
			ds, "PageRank",
			fmtBytes(g.TopologyBytes()),
			fmtTime(naive),
			fmtTime(predicted),
			fmtTime(m.Elapsed),
			fmt.Sprintf("%.2f", m.Elapsed.Seconds()/predicted.Seconds()),
		})
	}
	// Eq. 2 check: feed a BFS run's measured per-level page sets back into
	// the analytic model and compare.
	for _, ds := range []string{"RMAT27", "RMAT29"} {
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		cfg := r.gtsConfig(ds)
		cfg.GPUs = 1
		cfg.CacheBytes = gts.CacheDisabled
		m, err := r.gtsBFSWithLevels(ds, cfg)
		if err != nil {
			return nil, err
		}
		var levels []costmodel.LevelInputs
		for i := range m.LevelPages {
			levels = append(levels, costmodel.LevelInputs{
				SPBytes: m.LevelBytes[i],
				NumSP:   m.LevelPages[i],
			})
		}
		call := 8 * sim.Microsecond / sim.Time(r.hwFactor(ds))
		predicted := costmodel.BFSLike(m.WABytes, levels, 1, 1, 0, call, pcie)
		naive := sim.ByteTime(m.BytesToGPU, pcie.StreamRate)
		t.Rows = append(t.Rows, []string{
			ds, "BFS",
			fmtBytes(g.TopologyBytes()),
			fmtTime(naive),
			fmtTime(predicted),
			fmtTime(m.Elapsed),
			fmt.Sprintf("%.2f", m.Elapsed.Seconds()/predicted.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"paper's check: measured 153s vs 114GBx10/6GB/s = 190s for RMAT30 (ratio 0.81); simulated/predicted landing near 1 reproduces that arithmetic",
		"the model hides kernel time behind streaming (Eq. 1 keeps only the final page's kernel), so compute-bound runs land above 1",
		"BFS rows evaluate Eq. 2 over the run's own per-level page sets (d_skew=1, r_hit=0)")
	return t, nil
}

// xstream reproduces the §8 discussion: GTS's hybrid page-level access
// versus X-Stream's edge-centric full-sweep streaming, on a high-diameter
// web graph and a low-diameter social graph.
func (r *Runner) xstream() (*Table, error) {
	t := &Table{
		ID:     "xstream",
		Title:  "GTS page streaming vs X-Stream/GraphChi edge streaming (paper 8)",
		Header: []string{"data", "algo", "GraphChi (2 SSDs)", "X-Stream (mem)", "X-Stream (2 SSDs)", "GTS", "GTS speedup"},
	}
	for _, ds := range []string{"RMAT27", "YahooWeb"} {
		factor := r.factor(ds)
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		rev, err := r.revOf(ds)
		if err != nil {
			return nil, err
		}
		ws := cpu.Paper().Scale(factor)
		inMem := xstream.New(ws)
		ooc := xstream.NewOutOfCore(ws, 5e9) // two PCI-E SSDs
		chi := xstream.NewGraphChi(ws, 5e9, 8)
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{ds, algo}
			var chiT, memT, oocT sim.Time
			if algo == "BFS" {
				c, err := chi.BFS(g, rev, 0)
				if err != nil {
					return nil, err
				}
				a, err := inMem.BFS(g, rev, 0)
				if err != nil {
					return nil, err
				}
				b, err := ooc.BFS(g, rev, 0)
				if err != nil {
					return nil, err
				}
				chiT, memT, oocT = c.Elapsed, a.Elapsed, b.Elapsed
			} else {
				c, err := chi.PageRank(g, rev, 0.85, r.opts.PRIterations)
				if err != nil {
					return nil, err
				}
				a, err := inMem.PageRank(g, rev, 0.85, r.opts.PRIterations)
				if err != nil {
					return nil, err
				}
				b, err := ooc.PageRank(g, rev, 0.85, r.opts.PRIterations)
				if err != nil {
					return nil, err
				}
				chiT, memT, oocT = c.Elapsed, a.Elapsed, b.Elapsed
			}
			m, err := r.gtsRun(ds, algo, r.gtsConfig(ds))
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmtTime(extrapolate(chiT, factor)),
				fmtTime(extrapolate(memT, factor)),
				fmtTime(extrapolate(oocT, factor)),
				fmtTime(extrapolate(m.Elapsed, factor)),
				fmt.Sprintf("%.1fx", oocT.Seconds()/m.Elapsed.Seconds()))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: X-Stream's full edge sweep per level is catastrophic on the high-diameter web graph's BFS; GTS streams only frontier pages",
		"GraphChi trails X-Stream (paper 8): shards load fully before compute and I/O never overlaps computation")
	return t, nil
}

// uncombinedBFS strips the Pregel BFS program's combiner.
type uncombinedBFS struct{ pregel.BFSProgram }

// Combine disables combining.
func (uncombinedBFS) Combine(a, b int16) (int16, bool) { return a, false }

// ablations quantifies three design choices DESIGN.md calls out: the GPU
// thermal model behind the paper's RMAT32 observation (§7.2), Pregel's
// sender-side combiner, and Ligra+'s byte-delta compression.
func (r *Runner) ablations() (*Table, error) {
	t := &Table{
		ID:     "ablations",
		Title:  "Design-choice ablations",
		Header: []string{"ablation", "data", "baseline", "variant", "effect"},
	}

	// 1. Thermal throttling: the paper attributes RMAT32's superlinear
	// PageRank time partly to GPU down-clocking under sustained load.
	{
		const ds = "RMAT32"
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		factor := r.hwFactor(ds)
		run := func(throttle bool) (sim.Time, error) {
			spec := hw.Workstation(2, 2).Scale(factor)
			if throttle {
				for i := range spec.GPUs {
					spec.GPUs[i].ThermalLimit = 5 * sim.Millisecond
					spec.GPUs[i].ThermalFactor = 0.5
				}
			}
			eng, err := core.New(spec, g, core.Options{Strategy: core.StrategyS, Streams: 16})
			if err != nil {
				return 0, err
			}
			rep, err := eng.Run(kernels.NewPageRank(g, 0.85, r.opts.PRIterations))
			if err != nil {
				return 0, err
			}
			return rep.Elapsed, nil
		}
		cool, err := run(false)
		if err != nil {
			return nil, err
		}
		hot, err := run(true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"GPU down-clocking", ds,
			fmtTime(extrapolate(cool, r.factor(ds))),
			fmtTime(extrapolate(hot, r.factor(ds))),
			fmt.Sprintf("+%.0f%%", 100*(hot.Seconds()/cool.Seconds()-1)),
		})
	}

	// 2. Pregel combiner: message volume and time without sender-side
	// combining.
	{
		const ds = "RMAT28"
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		eng, err := pregel.New(r.scaledCluster(ds), pregel.Giraph())
		if err != nil {
			return nil, err
		}
		with, err := pregel.Run(eng, g, pregel.BFSProgram{Source: 0})
		if err != nil {
			return nil, err
		}
		without, err := pregel.Run(eng, g, uncombinedBFS{pregel.BFSProgram{Source: 0}})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"Pregel combiner (Giraph BFS)", ds,
			fmtTime(extrapolate(with.Elapsed, r.factor(ds))),
			fmtTime(extrapolate(without.Elapsed, r.factor(ds))),
			fmt.Sprintf("+%.0f%% time without it", 100*(without.Elapsed.Seconds()/with.Elapsed.Seconds()-1)),
		})
	}

	// 3. Ligra+ compression: resident footprint vs plain Ligra.
	for _, ds := range []string{"Twitter", "RMAT28"} {
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		rev, err := r.revOf(ds)
		if err != nil {
			return nil, err
		}
		ws := cpu.Paper()
		plain := cpu.NewLigra(ws).FootprintBytes(g, rev)
		comp := cpu.NewLigraPlus(ws).FootprintBytes(g, rev)
		t.Rows = append(t.Rows, []string{
			"Ligra+ byte-delta compression", ds,
			fmtBytes(plain), fmtBytes(comp),
			fmt.Sprintf("-%.0f%% memory", 100*(1-float64(comp)/float64(plain))),
		})
	}
	// 4. Read-ahead prefetching (an engine extension): fetch the
	// superstep's pages into the buffer ahead of the streams.
	{
		const ds = "RMAT30"
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		factor := r.hwFactor(ds)
		run := func(streams int, prefetch bool) (sim.Time, error) {
			spec := hw.WorkstationHDD(1, 2).Scale(factor)
			eng, err := core.New(spec, g, core.Options{
				Streams:    streams,
				Prefetch:   prefetch,
				CacheBytes: core.CacheDisabled,
			})
			if err != nil {
				return 0, err
			}
			rep, err := eng.Run(kernels.NewPageRank(g, 0.85, r.opts.PRIterations))
			if err != nil {
				return 0, err
			}
			return rep.Elapsed, nil
		}
		for _, streams := range []int{1, 16} {
			off, err := run(streams, false)
			if err != nil {
				return nil, err
			}
			on, err := run(streams, true)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("read-ahead prefetch (HDD, %d streams)", streams), ds,
				fmtTime(extrapolate(off, r.factor(ds))),
				fmtTime(extrapolate(on, r.factor(ds))),
				fmt.Sprintf("%+.0f%%", 100*(on.Seconds()/off.Seconds()-1)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"read-ahead prefetch (extension): a large win when stream concurrency cannot hide storage latency; a wash at 16 streams, where on-demand fetches already overlap",
		"thermal model: sustained kernel load down-clocks the GPUs to 50% — the paper's explanation for RMAT32 PageRank exceeding linear scaling (7.2); the streaming overlap hides much of the slowdown, so the end-to-end effect is smaller than the clock drop",
		"combiner and compression ablations quantify why those mechanisms exist in the respective baselines")
	return t, nil
}
