package experiments

import (
	"errors"
	"fmt"

	"repro/internal/baselines/cpu"
	"repro/internal/baselines/gas"
	gpubase "repro/internal/baselines/gpu"
	"repro/internal/baselines/graphx"
	"repro/internal/baselines/pregel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
)

// fmtOutcome renders an elapsed time extrapolated to paper scale, or the
// figure's O.O.M. label when the engine ran out of memory. Other errors
// propagate.
func fmtOutcome(elapsed sim.Time, err error, factor int64) (string, error) {
	if err != nil {
		if errors.Is(err, hw.ErrOutOfMemory) || errors.Is(err, hw.ErrOutOfDeviceMemory) || errors.Is(err, core.ErrWontFit) {
			return oom, nil
		}
		return "", err
	}
	return fmtTime(extrapolate(elapsed, factor)), nil
}

// scaledCluster returns the paper's 30-node cluster scaled to a dataset.
func (r *Runner) scaledCluster(name string) cluster.Spec {
	return cluster.Paper().Scale(r.factor(name))
}

// distributedCell runs one engine/algorithm/dataset combination of Fig. 6.
func (r *Runner) distributedCell(engine, algo, ds string) (sim.Time, error) {
	g, err := r.csrOf(ds)
	if err != nil {
		return 0, err
	}
	cl := r.scaledCluster(ds)
	switch engine {
	case "Giraph", "Naiad":
		prof := pregel.Giraph()
		if engine == "Naiad" {
			prof = pregel.Naiad()
		}
		eng, err := pregel.New(cl, prof)
		if err != nil {
			return 0, err
		}
		switch algo {
		case "BFS":
			res, err := pregel.Run(eng, g, pregel.BFSProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "PageRank":
			res, err := pregel.Run(eng, g, pregel.PRProgram{Damping: 0.85, Iterations: r.opts.PRIterations})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "SSSP":
			res, err := pregel.Run(eng, g, pregel.SSSPProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "CC":
			rev, err := r.revOf(ds)
			if err != nil {
				return 0, err
			}
			res, err := pregel.Run(eng, g, pregel.CCProgram{Rev: rev})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		}
	case "GraphX":
		eng, err := graphx.New(cl)
		if err != nil {
			return 0, err
		}
		switch algo {
		case "BFS":
			res, err := graphx.Run(eng, g, pregel.BFSProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "PageRank":
			res, err := graphx.Run(eng, g, pregel.PRProgram{Damping: 0.85, Iterations: r.opts.PRIterations})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "SSSP":
			res, err := graphx.Run(eng, g, pregel.SSSPProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "CC":
			rev, err := r.revOf(ds)
			if err != nil {
				return 0, err
			}
			res, err := graphx.Run(eng, g, pregel.CCProgram{Rev: rev})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		}
	case "PowerGraph":
		eng, err := gas.New(cl)
		if err != nil {
			return 0, err
		}
		rev, err := r.revOf(ds)
		if err != nil {
			return 0, err
		}
		switch algo {
		case "BFS":
			res, err := gas.Run(eng, g, rev, gas.BFSProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "PageRank":
			prog := gas.PRProgram{Damping: 0.85, Sweeps: r.opts.PRIterations, NumVertices: float64(g.NumVertices())}
			res, err := gas.Run(eng, g, rev, prog)
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "SSSP":
			res, err := gas.Run(eng, g, rev, gas.SSSPProgram{Source: 0})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		case "CC":
			u := g.Undirected()
			res, err := gas.Run(eng, u, u, gas.CCProgram{})
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown distributed cell %s/%s", engine, algo)
}

// fig6 reproduces Figure 6: GTS against the distributed systems for BFS
// and PageRank across all datasets, extrapolated to paper scale, with
// O.O.M. entries where an engine's memory model overflows.
func (r *Runner) fig6() (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "GTS vs distributed methods, extrapolated elapsed time (paper Fig. 6)",
		Header: []string{"data", "algo", "GraphX", "Giraph", "PowerGraph", "Naiad", "GTS"},
	}
	datasets := []string{"Twitter", "UK2007", "YahooWeb", "RMAT28", "RMAT29", "RMAT30", "RMAT31", "RMAT32"}
	for _, ds := range datasets {
		factor := r.factor(ds)
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{ds, algo}
			for _, engine := range []string{"GraphX", "Giraph", "PowerGraph", "Naiad"} {
				el, err := r.distributedCell(engine, algo, ds)
				cell, err := fmtOutcome(el, err, factor)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", engine, algo, ds, err)
				}
				row = append(row, cell)
			}
			m, err := r.gtsRun(ds, algo, r.gtsConfig(ds))
			cell, err2 := fmtOutcome(m.Elapsed, err, factor)
			if err2 != nil {
				return nil, fmt.Errorf("GTS/%s/%s: %w", algo, ds, err2)
			}
			row = append(row, cell)
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: GTS beats every distributed engine by 10-100x; Giraph slowest, PowerGraph best distributed, Naiad least scalable; only GTS completes RMAT31-32",
		fmt.Sprintf("proxy runs shrunk 2^%d with per-dataset hardware scaling; times extrapolated back by the same factor", r.opts.Shrink))
	return t, nil
}

// fig7 reproduces Figure 7: GTS against the shared-memory CPU systems.
func (r *Runner) fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "GTS vs CPU-based methods, extrapolated elapsed time (paper Fig. 7)",
		Header: []string{"data", "algo", "MTGL", "Galois", "Ligra", "Ligra+", "GTS"},
	}
	datasets := []string{"Twitter", "UK2007", "YahooWeb", "RMAT27", "RMAT28", "RMAT29", "RMAT30"}
	for _, ds := range datasets {
		factor := r.factor(ds)
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		rev, err := r.revOf(ds)
		if err != nil {
			return nil, err
		}
		ws := cpu.Paper().Scale(factor)
		engines := []cpu.Engine{cpu.NewMTGL(ws), cpu.NewGalois(ws), cpu.NewLigra(ws), cpu.NewLigraPlus(ws)}
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{ds, algo}
			for _, eng := range engines {
				var el sim.Time
				var err error
				if algo == "BFS" {
					res, e := eng.BFS(g, rev, 0)
					if e == nil {
						el = res.Elapsed
					}
					err = e
				} else {
					res, e := eng.PageRank(g, rev, 0.85, r.opts.PRIterations)
					if e == nil {
						el = res.Elapsed
					}
					err = e
				}
				cell, err2 := fmtOutcome(el, err, factor)
				if err2 != nil {
					return nil, err2
				}
				row = append(row, cell)
			}
			m, err := r.gtsRun(ds, algo, r.gtsConfig(ds))
			cell, err2 := fmtOutcome(m.Elapsed, err, factor)
			if err2 != nil {
				return nil, err2
			}
			row = append(row, cell)
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Ligra/Galois edge GTS out on small-graph BFS; the CPU engines O.O.M. on the large graphs; GTS dominates PageRank throughout")
	return t, nil
}

// fig8 reproduces Figure 8: GTS against the GPU-based systems.
func (r *Runner) fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "GTS vs GPU-based methods, extrapolated elapsed time (paper Fig. 8)",
		Header: []string{"data", "algo", "MapGraph", "CuSha", "TOTEM", "GTS"},
	}
	datasets := []string{"Twitter", "UK2007", "YahooWeb", "RMAT27", "RMAT28", "RMAT29", "RMAT30"}
	for _, ds := range datasets {
		factor := r.factor(ds)
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		rev, err := r.revOf(ds)
		if err != nil {
			return nil, err
		}
		dev := hw.TitanX()
		dev.DeviceMemory /= factor
		host := cpu.Paper().Scale(factor)
		mapgraph := gpubase.NewMapGraph(1, dev)
		mapgraph.OverheadScale = factor
		cusha := gpubase.NewCuSha(1, dev)
		cusha.OverheadScale = factor
		totem := gpubase.NewTOTEM(2, dev, host)
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{ds, algo}
			cells := []func() (sim.Time, error){
				func() (sim.Time, error) {
					if algo == "BFS" {
						res, err := mapgraph.BFS(g, rev, 0)
						if err != nil {
							return 0, err
						}
						return res.Elapsed, nil
					}
					res, err := mapgraph.PageRank(g, rev, 0.85, r.opts.PRIterations)
					if err != nil {
						return 0, err
					}
					return res.Elapsed, nil
				},
				func() (sim.Time, error) {
					if algo == "BFS" {
						res, err := cusha.BFS(g, rev, 0)
						if err != nil {
							return 0, err
						}
						return res.Elapsed, nil
					}
					res, err := cusha.PageRank(g, rev, 0.85, r.opts.PRIterations)
					if err != nil {
						return 0, err
					}
					return res.Elapsed, nil
				},
				func() (sim.Time, error) {
					if algo == "BFS" {
						res, err := totem.BFS(g, rev, 0)
						if err != nil {
							return 0, err
						}
						return res.Elapsed, nil
					}
					res, err := totem.PageRank(g, rev, 0.85, r.opts.PRIterations)
					if err != nil {
						return 0, err
					}
					return res.Elapsed, nil
				},
			}
			for _, run := range cells {
				el, err := run()
				cell, err2 := fmtOutcome(el, err, factor)
				if err2 != nil {
					return nil, err2
				}
				row = append(row, cell)
			}
			m, err := r.gtsRun(ds, algo, r.gtsConfig(ds))
			cell, err2 := fmtOutcome(m.Elapsed, err, factor)
			if err2 != nil {
				return nil, err2
			}
			row = append(row, cell)
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: MapGraph fits almost nothing, CuSha only Twitter BFS; TOTEM competitive on small PageRank, GTS wins BFS throughout and large graphs everywhere")
	return t, nil
}

// fig13 reproduces Figure 13: SSSP and CC across the distributed engines
// plus TOTEM and GTS, and BC between TOTEM and GTS.
func (r *Runner) fig13() (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Additional algorithms: SSSP, CC, BC (paper Fig. 13)",
		Header: []string{"algo", "data", "GraphX", "Giraph", "PowerGraph", "TOTEM", "GTS"},
	}
	for _, algo := range []string{"SSSP", "CC"} {
		for _, ds := range []string{"Twitter", "RMAT28"} {
			factor := r.factor(ds)
			row := []string{algo, ds}
			for _, engine := range []string{"GraphX", "Giraph", "PowerGraph"} {
				el, err := r.distributedCell(engine, algo, ds)
				cell, err2 := fmtOutcome(el, err, factor)
				if err2 != nil {
					return nil, err2
				}
				row = append(row, cell)
			}
			el, err := r.totemCell(algo, ds)
			cell, err2 := fmtOutcome(el, err, factor)
			if err2 != nil {
				return nil, err2
			}
			row = append(row, cell)
			m, err := r.gtsRun(ds, algo, r.gtsConfig(ds))
			cell, err2 = fmtOutcome(m.Elapsed, err, factor)
			if err2 != nil {
				return nil, err2
			}
			row = append(row, cell)
			t.Rows = append(t.Rows, row)
		}
	}
	for _, ds := range []string{"Twitter", "RMAT27", "RMAT28"} {
		factor := r.factor(ds)
		row := []string{"BC", ds, "-", "-", "-"}
		el, err := r.totemCell("BC", ds)
		cell, err2 := fmtOutcome(el, err, factor)
		if err2 != nil {
			return nil, err2
		}
		row = append(row, cell)
		m, err := r.gtsRun(ds, "BC", r.gtsConfig(ds))
		cell, err2 = fmtOutcome(m.Elapsed, err, factor)
		if err2 != nil {
			return nil, err2
		}
		row = append(row, cell)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: GTS clearly ahead on SSSP and CC; BC compared against TOTEM only (single-source mode)")
	return t, nil
}

// totemCell runs TOTEM's extra algorithms for fig13.
func (r *Runner) totemCell(algo, ds string) (sim.Time, error) {
	g, err := r.csrOf(ds)
	if err != nil {
		return 0, err
	}
	rev, err := r.revOf(ds)
	if err != nil {
		return 0, err
	}
	dev := hw.TitanX()
	dev.DeviceMemory /= r.factor(ds)
	eng := gpubase.NewTOTEM(2, dev, cpu.Paper().Scale(r.factor(ds)))
	switch algo {
	case "SSSP":
		res, err := eng.SSSP(g, rev, 0)
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	case "CC":
		res, err := eng.CC(g, rev)
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	case "BC":
		res, err := eng.BC(g, rev, 0)
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	return 0, fmt.Errorf("experiments: unknown TOTEM algorithm %q", algo)
}
