package experiments

import (
	"fmt"
	"math"
	"testing"

	gts "repro"
	"repro/internal/baselines/cpu"
	"repro/internal/kernels"
	"repro/internal/rmat"
	"repro/internal/slottedpage"
	"repro/internal/verify"
)

// TestDirOptRandomGraphsDifferential sweeps the direction-optimizing
// kernels over random R-MAT graphs with the same seed-rotated engine
// matrix as TestRandomGraphsDifferential: BFS under Config.DirectionOpt
// must reproduce the plain serial kernel's levels exactly (and agree with
// the Ligra CPU baseline), and delta-stepping SSSP must reproduce plain
// SSSP bitwise and the float64 reference oracle, at serial and parallel
// worker counts, clean and with fault injection armed (seed 2).
func TestDirOptRandomGraphsDifferential(t *testing.T) {
	ws := cpu.Paper()
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			params := rmat.Default(7 + int(seed%2)) // 128 or 256 vertices
			params.Seed = seed
			g, err := rmat.Generate(params)
			if err != nil {
				t.Fatal(err)
			}
			rev := g.Transpose()
			sp, err := slottedpage.Build(g, slottedpage.ScaledConfig(2, 2, 1024))
			if err != nil {
				t.Fatal(err)
			}
			cfg := gts.Config{GPUs: 1 + int(seed%2)}
			if seed%4 == 3 {
				cfg.Strategy = gts.StrategyS
			}
			if seed == 2 {
				// Rates sit above the crosscheck template's: BFS and SSSP
				// stream far fewer pages than a PageRank sweep, so lower
				// rates can tick zero injections on a 128-vertex graph.
				cfg.Faults = &gts.FaultPlan{Seed: seed, TransferErrorRate: 0.10,
					CorruptionRate: 0.15, TransferStallRate: 0.10, StorageErrorRate: 0.10}
			}
			src := uint64(seed*31) % g.NumVertices()

			// Serial plain kernels are the ground truth the direction-
			// optimizing runs must match byte-for-byte.
			plainCfg := cfg
			plainCfg.HostWorkers = 1
			plainSys, err := gts.NewSystem(sp, plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			plainBFS, err := plainSys.BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			plainSSSP, err := plainSys.SSSP(src)
			if err != nil {
				t.Fatal(err)
			}
			lig, err := cpu.NewLigra(ws).BFS(g, rev, uint32(src))
			if err != nil {
				t.Fatal(err)
			}
			wantD := verify.SSSP(g, uint32(src), kernels.Weight)

			var injected int64
			for _, workers := range []int{1, 8} {
				dirCfg := cfg
				dirCfg.DirectionOpt = true
				dirCfg.HostWorkers = workers
				sys, err := gts.NewSystem(sp, dirCfg)
				if err != nil {
					t.Fatal(err)
				}

				bres, err := sys.BFS(src)
				if err != nil {
					t.Fatal(err)
				}
				for v := range plainBFS.Levels {
					if bres.Levels[v] != plainBFS.Levels[v] {
						t.Fatalf("workers=%d BFS: vertex %d level = %d, plain kernel %d",
							workers, v, bres.Levels[v], plainBFS.Levels[v])
					}
					if bres.Levels[v] != lig.Levels[v] {
						t.Fatalf("workers=%d BFS: vertex %d level = %d, Ligra %d",
							workers, v, bres.Levels[v], lig.Levels[v])
					}
				}
				if len(bres.LevelDirs) == 0 {
					t.Errorf("workers=%d BFS: no direction schedule recorded", workers)
				}

				sres, err := sys.SSSP(src)
				if err != nil {
					t.Fatal(err)
				}
				for v := range plainSSSP.Dist {
					if sres.Dist[v] != plainSSSP.Dist[v] {
						t.Fatalf("workers=%d SSSP: vertex %d dist = %v, plain kernel %v",
							workers, v, sres.Dist[v], plainSSSP.Dist[v])
					}
					if math.IsInf(wantD[v], 1) {
						if sres.Dist[v] != math.MaxFloat32 {
							t.Fatalf("workers=%d SSSP: vertex %d reachable (%v), want unreachable",
								workers, v, sres.Dist[v])
						}
					} else if float64(sres.Dist[v]) != wantD[v] {
						t.Fatalf("workers=%d SSSP: vertex %d dist = %v, reference %v",
							workers, v, sres.Dist[v], wantD[v])
					}
				}
				injected += bres.Faults.Injected() + sres.Faults.Injected()
			}
			if seed == 2 && injected == 0 {
				t.Error("fault-armed seed injected nothing across direction-opt runs")
			}
		})
	}
}
