package experiments

import (
	"fmt"

	gts "repro"
	"repro/internal/hw"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// pagesOf builds (and caches) the slotted-page store for a dataset, using
// the paper's page configuration for it scaled by the runner's shrink.
func (r *Runner) pagesOf(name string) (*slottedpage.Graph, error) {
	if g, ok := r.pages[name]; ok {
		return g, nil
	}
	raw, err := r.csrOf(name)
	if err != nil {
		return nil, err
	}
	g, err := slottedpage.Build(raw, gts.PageConfigFor(name, r.opts.Shrink))
	if err != nil {
		return nil, err
	}
	r.pages[name] = g
	return g, nil
}

// gtsConfig mirrors the paper's per-dataset setup: RMAT31 and RMAT32
// stream from two SSDs under Strategy-S with a 20% main-memory buffer
// (§7.2); every other dataset runs in-memory under Strategy-P. The
// workstation has two GPUs, scaled to the dataset's factor.
func (r *Runner) gtsConfig(name string) gts.Config {
	cfg := gts.Config{
		GPUs:        2,
		Streams:     16,
		ScaleFactor: r.hwFactor(name),
	}
	if name == "RMAT31" || name == "RMAT32" {
		cfg.Storage = gts.SSDs
		cfg.Devices = 2
		cfg.Strategy = gts.StrategyS
	}
	return cfg
}

// gtsRun executes one GTS algorithm on a dataset under cfg, returning the
// run metrics. algo is "BFS", "PageRank", "SSSP", "CC" or "BC".
func (r *Runner) gtsRun(name, algo string, cfg gts.Config) (gts.Metrics, error) {
	g, err := r.pagesOf(name)
	if err != nil {
		return gts.Metrics{}, err
	}
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		return gts.Metrics{}, err
	}
	switch algo {
	case "BFS":
		res, err := sys.BFS(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	case "PageRank":
		res, err := sys.PageRank(0.85, r.opts.PRIterations)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	case "SSSP":
		res, err := sys.SSSP(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	case "CC":
		res, err := sys.CC()
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	case "BC":
		res, err := sys.BC(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}
	return gts.Metrics{}, fmt.Errorf("experiments: unknown algorithm %q", algo)
}

// gtsTraced runs with a trace recorder attached and returns it.
func (r *Runner) gtsTraced(name, algo string) (*trace.Recorder, gts.Metrics, error) {
	cfg := r.gtsConfig(name)
	cfg.GPUs = 1
	rec := trace.New()
	cfg.Trace = rec
	m, err := r.gtsRun(name, algo, cfg)
	return rec, m, err
}

// hwFactor is the capacity down-scaling applied to the GTS machine for a
// dataset. It matches the data scale factor, but is capped so the scaled
// device memory still holds the 16 streaming buffers: page sizes floor at
// 4 KiB, so at extreme shrinks the fixed buffer footprint would otherwise
// dwarf a fully scaled GPU (a small-scale artifact, not a property of the
// system).
func (r *Runner) hwFactor(name string) int64 {
	f := r.factor(name)
	pageSize := int64(gts.PageConfigFor(name, r.opts.Shrink).PageSize)
	minDevice := 16 * 3 * pageSize * 4
	if maxF := hw.TitanX().DeviceMemory / minDevice; f > maxF {
		f = maxF
	}
	if f < 1 {
		f = 1
	}
	return f
}

// gtsBFSWithLevels runs BFS and returns the metrics including per-level
// streaming stats (for the Eq. 2 cross-check).
func (r *Runner) gtsBFSWithLevels(name string, cfg gts.Config) (gts.Metrics, error) {
	return r.gtsRun(name, "BFS", cfg)
}
