package experiments

import (
	"fmt"
	"strings"

	gts "repro"
	"repro/internal/graphgen"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
)

// fig4 reproduces Figure 4: the actual per-stream timeline of copy and
// kernel operations for BFS and PageRank with 16 streams.
func (r *Runner) fig4() (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Per-stream copy/kernel timelines, 16 streams (paper Fig. 4)",
		Header: []string{"algo", "copy total", "kernel total", "spans"},
	}
	for _, algo := range []string{"BFS", "PageRank"} {
		rec, _, err := r.gtsTraced("RMAT26", algo)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			algo,
			fmtTime(rec.Total(trace.CopyPage)),
			fmtTime(rec.Total(trace.Kernel)),
			fmt.Sprint(len(rec.Spans())),
		})
		var sb strings.Builder
		if err := rec.RenderTimeline(&sb, 96); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, algo+" timeline:")
		for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
			t.Notes = append(t.Notes, "  "+line)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: the PageRank timeline is denser with kernel bars (compute-intensive); BFS shows sparser kernels between copies")
	return t, nil
}

// fig9 reproduces Figure 9: Strategy-P vs Strategy-S across storage types
// for BFS and PageRank on RMAT30.
func (r *Runner) fig9() (*Table, error) {
	const ds = "RMAT30"
	t := &Table{
		ID:     "fig9",
		Title:  "Strategy-P vs Strategy-S across storage types, RMAT30 (paper Fig. 9)",
		Header: []string{"storage", "BFS P", "BFS S", "PageRank P", "PageRank S"},
	}
	storages := []struct {
		name    string
		storage gts.Storage
		devices int
	}{
		{"in-memory", gts.InMemory, 0},
		{"2 SSDs", gts.SSDs, 2},
		{"1 SSD", gts.SSDs, 1},
		{"2 HDDs", gts.HDDs, 2},
	}
	for _, st := range storages {
		row := []string{st.name}
		for _, algo := range []string{"BFS", "PageRank"} {
			for _, strat := range []gts.Strategy{gts.StrategyP, gts.StrategyS} {
				cfg := r.gtsConfig(ds)
				cfg.Storage = st.storage
				cfg.Devices = st.devices
				cfg.Strategy = strat
				m, err := r.gtsRun(ds, algo, cfg)
				cell, err2 := fmtOutcome(m.Elapsed, err, r.factor(ds))
				if err2 != nil {
					return nil, err2
				}
				row = append(row, cell)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: P and S converge when I/O is the bottleneck (1 SSD, HDDs); P leads slightly in memory and on 2 SSDs; HDDs are an order of magnitude worse")
	return t, nil
}

// fig10 reproduces Figure 10: elapsed time versus the number of GPU
// streams for RMAT26-29.
func (r *Runner) fig10() (*Table, error) {
	datasets := []string{"RMAT26", "RMAT27", "RMAT28", "RMAT29"}
	header := []string{"#streams"}
	for _, algo := range []string{"BFS", "PageRank"} {
		for _, ds := range datasets {
			header = append(header, fmt.Sprintf("%s %s", algo, ds))
		}
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Elapsed time vs number of streams (paper Fig. 10)",
		Header: header,
	}
	for _, streams := range []int{1, 2, 4, 8, 16, 32} {
		row := []string{fmt.Sprint(streams)}
		for _, algo := range []string{"BFS", "PageRank"} {
			for _, ds := range datasets {
				cfg := r.gtsConfig(ds)
				cfg.GPUs = 1
				cfg.Streams = streams
				m, err := r.gtsRun(ds, algo, cfg)
				cell, err2 := fmtOutcome(m.Elapsed, err, r.factor(ds))
				if err2 != nil {
					return nil, err2
				}
				row = append(row, cell)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: performance improves steadily with the stream count and flattens toward 32")
	return t, nil
}

// fig11 reproduces Figure 11: BFS elapsed time and cache hit rate as the
// device page-cache budget grows from 32 MB to 5120 MB (scaled).
func (r *Runner) fig11() (*Table, error) {
	datasets := []string{"RMAT26", "RMAT27", "RMAT28", "RMAT29"}
	header := []string{"cache (paper MB)"}
	for _, ds := range datasets {
		header = append(header, ds+" time", ds+" hit%")
	}
	t := &Table{
		ID:     "fig11",
		Title:  "BFS cache effectiveness vs cache size (paper Fig. 11)",
		Header: header,
	}
	for _, mb := range []int64{32, 1024, 2048, 3072, 4096, 5120} {
		row := []string{fmt.Sprint(mb)}
		for _, ds := range datasets {
			cfg := r.gtsConfig(ds)
			cfg.GPUs = 1
			cache := (mb << 20) / r.factor(ds)
			if cache < 1 {
				cache = 1
			}
			cfg.CacheBytes = cache
			m, err := r.gtsRun(ds, "BFS", cfg)
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmtTime(extrapolate(m.Elapsed, r.factor(ds))),
				fmt.Sprintf("%.0f%%", 100*m.CacheHitRate))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: hit rates grow linearly with cache size and fall as graphs grow; elapsed time falls accordingly")
	return t, nil
}

// fig14 reproduces Figure 14 (Appendix E): the micro-level parallel
// technique against graph density 1:4 .. 1:32.
func (r *Runner) fig14() (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Micro-level technique vs density, RMAT28 profile (paper Fig. 14)",
		Header: []string{"density", "algo", "vertex-centric", "edge-centric", "hybrid"},
	}
	scale := dataset("RMAT28").ProxyScale(r.opts.Shrink)
	factor := r.hwFactor("RMAT28")
	pageCfg := gts.PageConfigFor("RMAT28", r.opts.Shrink)
	for _, ef := range []int{4, 8, 16, 32} {
		raw, err := graphgen.Density(scale, ef)
		if err != nil {
			return nil, err
		}
		pages, err := slottedpage.Build(raw, pageCfg)
		if err != nil {
			return nil, err
		}
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{fmt.Sprintf("1:%d", ef), algo}
			for _, tech := range []gts.Technique{gts.VertexCentric, gts.EdgeCentric, gts.Hybrid} {
				cfg := gts.Config{GPUs: 1, Streams: 16, Tech: tech, ScaleFactor: factor}
				sys, err := gts.NewSystem(pages, cfg)
				if err != nil {
					return nil, err
				}
				var el sim.Time
				if algo == "BFS" {
					res, err := sys.BFS(0)
					if err != nil {
						return nil, err
					}
					el = res.Elapsed
				} else {
					res, err := sys.PageRank(0.85, r.opts.PRIterations)
					if err != nil {
						return nil, err
					}
					el = res.Elapsed
				}
				row = append(row, fmtTime(extrapolate(el, factor)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: the techniques tie on very sparse graphs; vertex-centric degrades steeply with density; hybrid tracks the better of the two")
	return t, nil
}

// scaleup quantifies the paper's §1 scalability claim: "GTS is fairly
// scalable in terms of the number of GPUs and SSDs, and so, shows a stable
// speedup when adding a GPU or an SSD to the machine."
func (r *Runner) scaleup() (*Table, error) {
	t := &Table{
		ID:     "scaleup",
		Title:  "Speedup from adding a GPU or an SSD (paper 1's scalability claim)",
		Header: []string{"data", "algo", "1 GPU", "2 GPUs", "GPU speedup", "1 SSD", "2 SSDs", "SSD speedup"},
	}
	for _, ds := range []string{"RMAT28", "RMAT30"} {
		for _, algo := range []string{"BFS", "PageRank"} {
			row := []string{ds, algo}
			var gpuTimes []sim.Time
			for _, gpus := range []int{1, 2} {
				cfg := r.gtsConfig(ds)
				cfg.Storage = gts.InMemory
				cfg.Strategy = gts.StrategyP
				cfg.GPUs = gpus
				m, err := r.gtsRun(ds, algo, cfg)
				if err != nil {
					return nil, err
				}
				gpuTimes = append(gpuTimes, m.Elapsed)
				row = append(row, fmtTime(extrapolate(m.Elapsed, r.factor(ds))))
			}
			row = append(row, fmt.Sprintf("%.2fx", gpuTimes[0].Seconds()/gpuTimes[1].Seconds()))
			var ssdTimes []sim.Time
			for _, ssds := range []int{1, 2} {
				cfg := r.gtsConfig(ds)
				cfg.Storage = gts.SSDs
				cfg.Devices = ssds
				cfg.Strategy = gts.StrategyP
				cfg.GPUs = 2
				cfg.CacheBytes = gts.CacheDisabled
				m, err := r.gtsRun(ds, algo, cfg)
				if err != nil {
					return nil, err
				}
				ssdTimes = append(ssdTimes, m.Elapsed)
				row = append(row, fmtTime(extrapolate(m.Elapsed, r.factor(ds))))
			}
			row = append(row, fmt.Sprintf("%.2fx", ssdTimes[0].Seconds()/ssdTimes[1].Seconds()))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: near-linear GPU speedup under Strategy-P while streaming keeps up; adding an SSD helps exactly when storage is the bottleneck",
		"super-linear cells are real model effects: a second GPU doubles the aggregate page cache, and a second SSD restores per-device sequentiality")
	return t, nil
}
