package experiments

import (
	"fmt"

	gts "repro"
	"repro/internal/baselines/cpu"
	gpubase "repro/internal/baselines/gpu"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// table1 reproduces Table 1: the ratio of streaming-transfer time to kernel
// execution time for BFS and PageRank on the real-graph proxies. The page
// cache is disabled so every page's transfer is visible.
func (r *Runner) table1() (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Transfer:kernel time ratios (paper Table 1)",
		Header: []string{"Algorithm", "Twitter", "UK2007", "YahooWeb"},
	}
	paper := map[string][]string{
		"BFS":      {"1:3", "1:1", "2:1"},
		"PageRank": {"1:20", "1:6", "1:4"},
	}
	for _, algo := range []string{"BFS", "PageRank"} {
		row := []string{algo}
		for _, ds := range []string{"Twitter", "UK2007", "YahooWeb"} {
			cfg := r.gtsConfig(ds)
			cfg.GPUs = 1
			cfg.CacheBytes = gts.CacheDisabled
			m, err := r.gtsRun(ds, algo, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, ratio(m.TransferTime.Seconds(), m.KernelTime.Seconds()))
		}
		t.Rows = append(t.Rows, row)
		t.Rows = append(t.Rows, append([]string{"  (paper)"}, paper[algo]...))
	}
	t.Notes = append(t.Notes,
		"measured over a full run with the device page cache disabled; the paper's key shape is PageRank being far more kernel-bound than BFS")
	return t, nil
}

// ratio formats a:b normalized so the smaller side reads 1.
func ratio(a, b float64) string {
	if a <= 0 || b <= 0 {
		return "n/a"
	}
	if a <= b {
		return fmt.Sprintf("1:%.0f", b/a)
	}
	return fmt.Sprintf("%.0f:1", a/b)
}

// table2 reproduces Table 2: the three possible configurations of a 6-byte
// physical ID. This is analytic — derived from the format itself.
func (r *Runner) table2() (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Configurations of the 6-byte physical ID (paper Table 2)",
		Header: []string{"p", "q", "max. page ID", "max. slot number", "max. page size"},
	}
	for _, cfg := range []slottedpage.Config{slottedpage.Config24(), slottedpage.Config33(), slottedpage.Config42()} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cfg.PIDBytes),
			fmt.Sprint(cfg.SlotBytes),
			fmtCount(cfg.MaxPages()),
			fmtCount(cfg.MaxSlotNumber()),
			fmtBytes(int64(cfg.MaxTheoreticalPageSize())),
		})
	}
	t.Notes = append(t.Notes, "paper values: 64K/4B/80GB, 16M/16M/320MB, 4B/64K/1.25MB — reproduced exactly")
	return t, nil
}

func fmtCount(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

// table3 reproduces Table 3: per-dataset page statistics under the paper's
// (p,q) assignments, on the scaled proxies.
func (r *Runner) table3() (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Graph dataset statistics (paper Table 3, scaled proxies)",
		Header: []string{"data", "#vertices", "#edges", "(p,q)", "#SP", "#LP", "paper #SP", "paper #LP"},
	}
	paper := map[string][2]string{
		"RMAT27": {"9724", "58"}, "RMAT28": {"19533", "62"}, "RMAT29": {"38747", "937"},
		"RMAT30": {"1786", "0"}, "RMAT31": {"3584", "0"}, "RMAT32": {"7175", "0"},
		"Twitter": {"5418", "1029"}, "UK2007": {"15484", "0"}, "YahooWeb": {"32807", "0"},
	}
	for _, ds := range []string{"RMAT27", "RMAT28", "RMAT29", "RMAT30", "RMAT31", "RMAT32", "Twitter", "UK2007", "YahooWeb"} {
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		cfg := g.Config()
		t.Rows = append(t.Rows, []string{
			ds,
			fmtCount(g.NumVertices()),
			fmtCount(g.NumEdges()),
			fmt.Sprintf("(%d,%d)", cfg.PIDBytes, cfg.SlotBytes),
			fmt.Sprint(g.NumSP()),
			fmt.Sprint(g.NumLP()),
			paper[ds][0],
			paper[ds][1],
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("proxies shrunk by 2^%d with page sizes shrunk alongside; shapes to compare: most pages are SP, LPs appear only on the skewed graphs", r.opts.Shrink))
	return t, nil
}

// table4 reproduces Table 4: the size of the WA attribute data versus the
// topology in the slotted page format, per algorithm.
func (r *Runner) table4() (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "WA size vs topology size (paper Table 4, scaled proxies)",
		Header: []string{"data", "topology", "BFS WA", "PageRank WA", "SSSP WA", "CC WA", "WA/topology"},
	}
	for _, ds := range []string{"RMAT28", "RMAT29", "RMAT30", "RMAT31", "RMAT32"} {
		g, err := r.pagesOf(ds)
		if err != nil {
			return nil, err
		}
		bfs := kernels.NewBFS(g).NewState().WABytes()
		pr := kernels.NewPageRank(g, 0.85, 1).NewState().WABytes()
		sssp := kernels.NewSSSP(g).NewState().WABytes()
		cc := kernels.NewCC(g).NewState().WABytes()
		topo := g.TopologyBytes()
		t.Rows = append(t.Rows, []string{
			ds, fmtBytes(topo), fmtBytes(bfs), fmtBytes(pr), fmtBytes(sssp), fmtBytes(cc),
			fmt.Sprintf("%.1f%%-%.1f%%", 100*float64(bfs)/float64(topo), 100*float64(cc)/float64(topo)),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: WA is 1.7%-10% of topology; per-vertex WA is 2B (BFS), 4B (PageRank), 8B (CC); our SSSP carries an extra 4B activity vector")
	return t, nil
}

// table5 reproduces Table 5: the GPU%:CPU% partition ratios TOTEM's
// partitioner picks per dataset and algorithm, for one and two GPUs.
func (r *Runner) table5() (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "TOTEM partition ratios GPU%:CPU% (paper Table 5)",
		Header: []string{"data", "1 GPU BFS", "1 GPU PageRank", "2 GPUs BFS", "2 GPUs PageRank"},
	}
	for _, ds := range []string{"RMAT27", "RMAT28", "RMAT29", "Twitter", "UK2007", "YahooWeb"} {
		g, err := r.csrOf(ds)
		if err != nil {
			return nil, err
		}
		factor := r.factor(ds)
		dev := hw.TitanX()
		dev.DeviceMemory /= factor
		host := cpu.Paper().Scale(factor)
		row := []string{ds}
		for _, gpus := range []int{1, 2} {
			eng := gpubase.NewTOTEM(gpus, dev, host)
			for _, algo := range []string{"BFS", "PageRank"} {
				_, frac := eng.Partition(g, algo)
				row = append(row, gpubase.RatioString(frac))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: the GPU share falls as graphs grow and rises with a second GPU; PageRank's larger per-vertex state lowers its share")
	return t, nil
}
