package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testRunner uses tiny proxies so the full suite stays fast.
func testRunner() *Runner {
	return New(Options{Shrink: 17, PRIterations: 3})
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "table3", "table4", "table5", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "costmodel", "xstream", "scaleup", "ablations"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("no description for %s", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("description for unknown id")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := testRunner().Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	r := testRunner()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := r.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id || len(tab.Header) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("degenerate table %+v", tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row width %d != header %d: %v", len(row), len(tab.Header), row)
				}
			}
			var buf bytes.Buffer
			if err := tab.Write(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), tab.Title) {
				t.Error("rendered output missing title")
			}
			buf.Reset()
			if err := tab.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if lines := strings.Count(buf.String(), "\n"); lines != len(tab.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", lines, len(tab.Rows)+1)
			}
		})
	}
}

func TestTable2ExactPaperValues(t *testing.T) {
	tab, err := testRunner().Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	flat := ""
	for _, row := range tab.Rows {
		flat += strings.Join(row, " ") + "\n"
	}
	for _, want := range []string{"64K", "4B", "80.0GB", "16M", "320.0MB", "1.2MB"} {
		if !strings.Contains(flat, want) {
			t.Errorf("table2 missing %q:\n%s", want, flat)
		}
	}
}

func TestFig6HasOOMAndGTSCompletes(t *testing.T) {
	tab, err := testRunner().Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	sawOOM := false
	for _, row := range tab.Rows {
		for i, cell := range row[2 : len(row)-1] {
			if cell == oom {
				sawOOM = true
				_ = i
			}
		}
		// GTS (last column) must always complete.
		if row[len(row)-1] == oom {
			t.Errorf("GTS OOMed on %s/%s", row[0], row[1])
		}
	}
	if !sawOOM {
		t.Error("no baseline hit O.O.M. — scaling is off")
	}
}

func TestFig9StorageOrdering(t *testing.T) {
	tab, err := testRunner().Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	// Row order: in-memory, 2 SSDs, 1 SSD, 2 HDDs. HDD PageRank must be
	// the slowest PageRank-P cell.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"x,y", "q\"z"}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"x,y\"") || !strings.Contains(buf.String(), "\"q\"\"z\"") {
		t.Errorf("CSV quoting broken: %s", buf.String())
	}
}

func TestRatioFormatting(t *testing.T) {
	if got := ratio(1, 3); got != "1:3" {
		t.Errorf("ratio = %s", got)
	}
	if got := ratio(4, 2); got != "2:1" {
		t.Errorf("ratio = %s", got)
	}
	if got := ratio(0, 2); got != "n/a" {
		t.Errorf("ratio = %s", got)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtCount(1<<32) != "4B" || fmtCount(1<<20) != "1M" || fmtCount(2048) != "2K" || fmtCount(12) != "12" {
		t.Error("fmtCount wrong")
	}
	if fmtBytes(1<<30) != "1.0GB" || fmtBytes(512) != "512B" {
		t.Error("fmtBytes wrong")
	}
}

func TestHarnessDeterministic(t *testing.T) {
	// Two fresh runners at the same options produce byte-identical tables.
	a, err := New(Options{Shrink: 17, PRIterations: 3}).Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Shrink: 17, PRIterations: 3}).Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Write(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Error("same options produced different tables")
	}
}
