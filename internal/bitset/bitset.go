// Package bitset provides a dense bit vector used for the GTS framework's
// nextPIDSet page sets (paper §3.3) and for the baseline engines' vertex
// frontiers.
package bitset

import "math/bits"

// Set is a fixed-size bit vector. The zero value is unusable; call New.
type Set struct {
	words []uint64
	n     int
}

// New returns a set over n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the set's capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (s *Set) Get(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count reports the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or merges other into s (s |= other). Both sets must have equal length.
func (s *Set) Or(other *Set) {
	if other.n != s.n {
		panic("bitset: length mismatch in Or")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// ForEach calls fn with each set bit's index in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}
