package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Any() || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Get(0) || !s.Get(64) || !s.Get(129) || s.Get(1) {
		t.Error("Get/Set broken")
	}
	if s.Count() != 3 || !s.Any() {
		t.Errorf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 2 {
		t.Error("Clear broken")
	}
	s.Reset()
	if s.Any() {
		t.Error("Reset broken")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOrAndClone(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	b.Set(2)
	c := a.Clone()
	c.Or(b)
	if !c.Get(1) || !c.Get(2) || c.Count() != 2 {
		t.Error("Or broken")
	}
	if a.Get(2) {
		t.Error("Clone aliases original")
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	New(10).Or(New(20))
}

func TestCountMatchesForEach(t *testing.T) {
	f := func(idxs []uint16) bool {
		s := New(1 << 16)
		for _, i := range idxs {
			s.Set(int(i))
		}
		n := 0
		s.ForEach(func(int) { n++ })
		return n == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
