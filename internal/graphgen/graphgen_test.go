package graphgen

import "testing"

func TestRegistryComplete(t *testing.T) {
	names := []string{"RMAT26", "RMAT27", "RMAT28", "RMAT29", "RMAT30", "RMAT31", "RMAT32", "Twitter", "UK2007", "YahooWeb"}
	if len(All()) != len(names) {
		t.Fatalf("registry has %d datasets, want %d", len(All()), len(names))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("dataset %s missing", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown dataset found")
	}
	if len(Synthetic()) != 7 {
		t.Errorf("Synthetic() = %d, want 7", len(Synthetic()))
	}
	if len(Real()) != 3 {
		t.Errorf("Real() = %d, want 3", len(Real()))
	}
}

func TestProxyScaleAndFactor(t *testing.T) {
	d, _ := ByName("RMAT30")
	if got := d.ProxyScale(12); got != 18 {
		t.Errorf("ProxyScale(12) = %d, want 18", got)
	}
	if got := d.ScaleFactor(12); got != float64(1<<12) {
		t.Errorf("ScaleFactor(12) = %v, want 4096", got)
	}
	// Shrinking below scale 4 clamps.
	if got := d.ProxyScale(100); got != 4 {
		t.Errorf("ProxyScale(100) = %d, want 4", got)
	}
}

func TestGenerateProxies(t *testing.T) {
	for _, d := range All() {
		g, err := d.Generate(d.scale - 10) // everything at scale 10
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.NumVertices() != 1<<10 {
			t.Errorf("%s: V = %d, want 1024", d.Name, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", d.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := ByName("Twitter")
	a := d.MustGenerate(15)
	b := d.MustGenerate(15)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic generation")
	}
	for v := uint64(0); v < a.NumVertices(); v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("vertex %d degree differs", v)
		}
	}
}

func TestYahooWebHasHighDiameterPath(t *testing.T) {
	d, _ := ByName("YahooWeb")
	g := d.MustGenerate(d.scale - 10)
	// The threaded path guarantees i -> i+1 for the first 10% of vertices.
	span := int(float64(g.NumVertices()) * 0.10)
	for i := 0; i+1 < span; i++ {
		found := false
		g.Neighbors(uint64(i), func(dst uint64) {
			if dst == uint64(i+1) {
				found = true
			}
		})
		if !found {
			t.Fatalf("path edge %d -> %d missing", i, i+1)
		}
	}
}

func TestDensitySweep(t *testing.T) {
	for _, ef := range []int{4, 8, 16, 32} {
		g, err := Density(8, ef)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.AvgDegree(); got != float64(ef) {
			t.Errorf("density 1:%d avg degree = %v", ef, got)
		}
	}
}

func TestTinyConstructors(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || p.Degree(4) != 0 || p.Degree(0) != 1 {
		t.Error("Path malformed")
	}
	c := Cycle(5)
	if c.NumEdges() != 5 || c.Degree(4) != 1 {
		t.Error("Cycle malformed")
	}
	s := Star(5)
	if s.Degree(0) != 4 || s.Degree(1) != 0 {
		t.Error("Star malformed")
	}
	k := Complete(4)
	if k.NumEdges() != 12 {
		t.Error("Complete malformed")
	}
	g := Grid(3, 4)
	if g.NumVertices() != 12 || g.NumEdges() != uint64(3*3+2*4) {
		t.Errorf("Grid V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRealProxiesKeepDegreeProfile(t *testing.T) {
	tw, _ := ByName("Twitter")
	ya, _ := ByName("YahooWeb")
	gt := tw.MustGenerate(tw.scale - 12)
	gy := ya.MustGenerate(ya.scale - 12)
	if gt.AvgDegree() < 30 {
		t.Errorf("Twitter proxy avg degree %.1f, want ~35", gt.AvgDegree())
	}
	if gy.AvgDegree() > 6 {
		t.Errorf("YahooWeb proxy avg degree %.1f, want ~4-5", gy.AvgDegree())
	}
}
